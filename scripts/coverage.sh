#!/bin/sh
# coverage.sh — per-package coverage ratchet for the deployment path and
# the fleet supervisor.
#
# The chaos harness (DESIGN.md §7.3) is only worth its keep while the
# protocol packages it exercises stay well covered, and the fleet
# supervisor's determinism contract (DESIGN.md §7.5) only while its shard /
# merge / snapshot paths are, so this gate fails the build when any
# ratcheted package's statement coverage drops below its recorded floor.
#
# Usage:
#   scripts/coverage.sh          check against scripts/coverage_floors.txt
#   scripts/coverage.sh update   re-measure and rewrite the floors (set a
#                                little below the measurement so unrelated
#                                refactors don't trip the gate)
#
# The floors file is one "import-path floor-percent" pair per line and is
# committed: lowering a floor is a reviewed decision, never an accident.
set -eu
cd "$(dirname "$0")/.."

PACKAGES="corropt/internal/backoff corropt/internal/ctlplane corropt/internal/detector corropt/internal/fleet corropt/internal/netchaos corropt/internal/scenario corropt/internal/snmplite"
FLOORS=scripts/coverage_floors.txt
MARGIN=2.0 # update mode records measured - MARGIN
mode="${1:-check}"

# measure prints "import-path percent" per package, e.g.
# "corropt/internal/snmplite 87.3".
measure() {
	# shellcheck disable=SC2086 # PACKAGES is a deliberate word list
	go test -count=1 -cover $PACKAGES |
		awk '/coverage:/ { pct = $5; gsub(/%/, "", pct); print $2, pct }'
}

measured="$(measure)"
if [ -z "$measured" ]; then
	echo "coverage: no coverage output parsed; did the tests fail?" >&2
	exit 1
fi

case "$mode" in
update)
	printf '%s\n' "$measured" | awk -v m="$MARGIN" '{
		floor = $2 - m
		if (floor < 0) floor = 0
		printf "%s %.1f\n", $1, floor
	}' >"$FLOORS"
	echo "coverage: floors updated:"
	cat "$FLOORS"
	;;
check)
	if [ ! -f "$FLOORS" ]; then
		echo "coverage: $FLOORS missing; run scripts/coverage.sh update" >&2
		exit 1
	fi
	status=0
	for pkg in $PACKAGES; do
		got="$(printf '%s\n' "$measured" | awk -v p="$pkg" '$1 == p { print $2 }')"
		floor="$(awk -v p="$pkg" '$1 == p { print $2 }' "$FLOORS")"
		if [ -z "$got" ]; then
			echo "coverage: $pkg: no measurement (package gone or tests failed)" >&2
			status=1
			continue
		fi
		if [ -z "$floor" ]; then
			echo "coverage: $pkg: no floor recorded; run scripts/coverage.sh update" >&2
			status=1
			continue
		fi
		if awk -v g="$got" -v f="$floor" 'BEGIN { exit !(g < f) }'; then
			echo "coverage: $pkg: ${got}% is below the ${floor}% floor" >&2
			status=1
		else
			echo "coverage: $pkg: ${got}% (floor ${floor}%)"
		fi
	done
	if [ "$status" -ne 0 ]; then
		echo "coverage: FAILED" >&2
		exit 1
	fi
	echo "coverage: OK"
	;;
*)
	echo "usage: scripts/coverage.sh [check|update]" >&2
	exit 2
	;;
esac
