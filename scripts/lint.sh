#!/bin/sh
# lint.sh — the full static-analysis gate run by `make lint` and CI.
#
# Three layers, strictest first:
#   1. go vet            — the stock toolchain checks.
#   2. corropt-lint      — this repository's own analyzer suite
#                          (nodeterminism, maprange, errwrap, mutexheld,
#                          lockorder, gorolife, aliasescape, stalecache,
#                          hotalloc, floatorder, ctxdeadline, reslife,
#                          escapes; DESIGN.md §8). Self-contained on the
#                          standard library — the escapes analyzer shells
#                          out to the pinned go toolchain for its
#                          optimization-diagnostics pass — so it runs
#                          offline and hermetically.
#   3. staticcheck       — run when the binary is on PATH; skipped with a
#                          warning otherwise so the gate stays green in
#                          hermetic environments without network access.
#                          CI and developer machines with staticcheck
#                          installed get the full check.
#
# Exit status is non-zero if any enabled layer reports a finding.
set -eu
cd "$(dirname "$0")/.."

status=0

echo "== go vet =="
go vet ./... || status=1

echo "== corropt-lint =="
go run ./cmd/corropt-lint ./... || status=1

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./... || status=1
else
	echo "staticcheck not installed; skipping (binary not on PATH)"
fi

if [ "$status" -ne 0 ]; then
	echo "lint: FAILED" >&2
	exit 1
fi
echo "lint: OK"
