#!/bin/sh
# bench_check.sh — enforce the committed performance floors in
# scripts/bench_floors.txt against the experiment suite benchmarks.
#
# Usage:
#   scripts/bench_check.sh                        # run the bench, then check
#   scripts/bench_check.sh BENCH_experiments.txt  # check an existing run
#
# Without an argument the script runs BenchmarkExperimentsSuite once
# (-benchtime=1x; each sub-benchmark does an untimed warmup replay first, so
# the measured numbers are exact steady-state costs). With an argument it
# parses a previously captured `go test -bench` transcript instead — CI uses
# this to check the same run it publishes as the BENCH_experiments artifact.
#
# Allocation floors are enforced unconditionally: allocs/op is a property of
# the code, not the machine. Speedup floors (serial vs parallel wall-clock)
# only hold on machines with enough cores; when GOMAXPROCS is below the
# ref_gomaxprocs recorded in the floors file, the measured ratios are
# printed as information and do not fail the check.
set -eu
cd "$(dirname "$0")/.."

FLOORS=scripts/bench_floors.txt
[ -f "$FLOORS" ] || {
	echo "bench_check: missing $FLOORS" >&2
	exit 2
}

if [ $# -ge 1 ]; then
	TXT=$1
	[ -f "$TXT" ] || {
		echo "bench_check: no such bench transcript: $TXT" >&2
		exit 2
	}
else
	TXT=$(mktemp)
	trap 'rm -f "$TXT"' EXIT
	echo "bench_check: running BenchmarkExperimentsSuite (steady-state, -benchtime=1x)"
	go test -run '^$' -bench 'ExperimentsSuite' -benchmem -benchtime=1x . | tee "$TXT"
fi

GOMAXPROCS=${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}

awk -v gomaxprocs="$GOMAXPROCS" '
# Pass 1: the floors file.
FNR == NR {
	if ($0 ~ /^[ \t]*(#|$)/) next
	if ($1 == "ref_gomaxprocs") ref = $2
	else if ($1 == "allocs") amax[$2] = $3
	else if ($1 == "speedup") smin[$2] = $3
	else if ($1 == "speedup_geomean") gmin = $2
	next
}
# Pass 2: the bench transcript. Lines look like
#   BenchmarkExperimentsSuite/ticketq/serial  1  20089337 ns/op  ... 23404 allocs/op
/^BenchmarkExperimentsSuite\// {
	split($1, parts, "/")
	driver = parts[2]
	mode = parts[3]
	sub(/-[0-9]+$/, "", mode)
	for (i = 3; i + 1 <= NF; i += 2) {
		if ($(i + 1) == "ns/op") ns[driver, mode] = $i
		if ($(i + 1) == "allocs/op") allocs[driver, mode] = $i
	}
	seen[driver] = 1
}
END {
	fail = 0

	# Allocation floors: machine-independent, always enforced.
	for (d in amax) {
		if (!((d, "serial") in allocs)) {
			printf("bench_check: FAIL %s: no serial allocs/op in bench output\n", d)
			fail = 1
			continue
		}
		a = allocs[d, "serial"]
		if (a + 0 > amax[d] + 0) {
			printf("bench_check: FAIL %s: %d allocs/op exceeds floor %d\n", d, a, amax[d])
			fail = 1
		} else {
			printf("bench_check: ok   %s: %d allocs/op (floor %d)\n", d, a, amax[d])
		}
	}

	# Speedup floors: only meaningful with enough cores to parallelize.
	enforce = (ref != "" && gomaxprocs + 0 >= ref + 0)
	if (!enforce)
		printf("bench_check: info: GOMAXPROCS=%d < ref_gomaxprocs=%d; speedup floors reported but not enforced\n", gomaxprocs, ref)
	n = 0
	logsum = 0
	for (d in seen) {
		if (!((d, "serial") in ns) || !((d, "parallel") in ns)) continue
		r = ns[d, "serial"] / ns[d, "parallel"]
		n++
		logsum += log(r)
		want = (d in smin) ? smin[d] : 0
		if (enforce && want > 0 && r < want + 0) {
			printf("bench_check: FAIL %s: parallel speedup %.2fx below floor %.2fx\n", d, r, want)
			fail = 1
		} else {
			printf("bench_check: %s %s: parallel speedup %.2fx%s\n",
				enforce && want > 0 ? "ok  " : "info", d, r,
				want > 0 ? sprintf(" (floor %.2fx)", want) : "")
		}
	}
	if (n > 0 && gmin != "") {
		g = exp(logsum / n)
		if (enforce && g < gmin + 0) {
			printf("bench_check: FAIL suite: geomean speedup %.2fx below floor %.2fx\n", g, gmin)
			fail = 1
		} else {
			printf("bench_check: %s suite: geomean speedup %.2fx (floor %.2fx)\n",
				enforce ? "ok  " : "info", g, gmin)
		}
	}
	exit fail
}
' "$FLOORS" "$TXT"
