#!/bin/sh
# bench_check.sh — enforce the committed performance floors in
# scripts/bench_floors.txt against captured benchmark transcripts.
#
# Usage:
#   scripts/bench_check.sh                        # run the experiments bench, then check
#   scripts/bench_check.sh BENCH_experiments.txt  # check an existing run
#   scripts/bench_check.sh BENCH_experiments.txt BENCH_fleet.txt
#                                                 # check both suites at once
#
# Without arguments the script runs BenchmarkExperimentsSuite once
# (-benchtime=1x; each sub-benchmark does an untimed warmup replay first, so
# the measured numbers are exact steady-state costs). With arguments it
# parses previously captured `go test -bench` transcripts instead — CI uses
# this to check the same runs it publishes as the BENCH_* artifacts. Each
# floor family is checked when its suite's benchmark lines appear in the
# given transcripts (so a fleet-only transcript checks only fleet floors);
# within a present suite a missing line is a failure, and transcripts with
# no recognized benchmark lines at all fail outright.
#
# Three floor families:
#   - Allocation floors (allocs <driver> <max>) are enforced unconditionally:
#     allocs/op is a property of the code, not the machine.
#   - Experiment speedup floors (speedup, speedup_geomean) compare serial vs
#     parallel wall-clock and only hold with enough cores: they are enforced
#     — CI FAILS, not informs — when GOMAXPROCS >= ref_gomaxprocs, and
#     reported as information below that.
#   - Hot-path zero-allocation floors (hotpath <root> <benchmark>) tie the
#     hotalloc analyzer's static allocation-freedom proof to measurement:
#     whenever the named benchmark appears in a checked transcript, its
#     allocs/op must be exactly 0 (machine-independent, so always enforced
#     when present). hotpath_exempt entries are bookkeeping for
#     TestHotpathFloorsCoverRoots and are ignored here.
#   - Fleet floors: fleet_events_sec is a throughput floor on the fleet
#     supervisor's serial events/sec metric, enforced whenever a
#     BenchmarkFleetThroughput transcript is given (the committed floor
#     carries ~4x headroom below the slowest machine measured, so it holds
#     even on single-core runners); fleet_speedup is the parallel/serial
#     events/sec scaling floor, gated on fleet_ref_gomaxprocs the same way
#     experiment speedups gate on ref_gomaxprocs.
set -eu
cd "$(dirname "$0")/.."

FLOORS=scripts/bench_floors.txt
[ -f "$FLOORS" ] || {
	echo "bench_check: missing $FLOORS" >&2
	exit 2
}

if [ $# -ge 1 ]; then
	for f in "$@"; do
		[ -f "$f" ] || {
			echo "bench_check: no such bench transcript: $f" >&2
			exit 2
		}
	done
else
	TXT=$(mktemp)
	trap 'rm -f "$TXT"' EXIT
	echo "bench_check: running BenchmarkExperimentsSuite (steady-state, -benchtime=1x)"
	go test -run '^$' -bench 'ExperimentsSuite' -benchmem -benchtime=1x . | tee "$TXT"
	set -- "$TXT"
fi

GOMAXPROCS=${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}

awk -v gomaxprocs="$GOMAXPROCS" '
# Pass 1: the floors file (always the first input file).
FNR == NR && FILENAME == ARGV[1] {
	if ($0 ~ /^[ \t]*(#|$)/) next
	if ($1 == "ref_gomaxprocs") ref = $2
	else if ($1 == "allocs") amax[$2] = $3
	else if ($1 == "speedup") smin[$2] = $3
	else if ($1 == "speedup_geomean") gmin = $2
	else if ($1 == "fleet_ref_gomaxprocs") fref = $2
	else if ($1 == "fleet_events_sec") fevmin = $2
	else if ($1 == "fleet_speedup") fsmin = $2
	else if ($1 == "hotpath") {
		if ($3 in hproots) hproots[$3] = hproots[$3] ", " $2
		else hproots[$3] = $2
	}
	else if ($1 == "hotpath_exempt") { } # bookkeeping for the selfcheck test
	next
}
# Any benchmark line: collect allocs/op per name for the hotpath floors.
/^Benchmark/ {
	bname = $1
	sub(/-[0-9]+$/, "", bname)
	bseen[bname] = 1
	for (i = 3; i + 1 <= NF; i += 2)
		if ($(i + 1) == "allocs/op") ballocs[bname] = $i
}
# Pass 2+: the bench transcripts. Experiment lines look like
#   BenchmarkExperimentsSuite/ticketq/serial  1  20089337 ns/op  ... 23404 allocs/op
/^BenchmarkExperimentsSuite\// {
	split($1, parts, "/")
	driver = parts[2]
	mode = parts[3]
	sub(/-[0-9]+$/, "", mode)
	for (i = 3; i + 1 <= NF; i += 2) {
		if ($(i + 1) == "ns/op") ns[driver, mode] = $i
		if ($(i + 1) == "allocs/op") allocs[driver, mode] = $i
	}
	seen[driver] = 1
	expseen = 1
}
# Fleet lines carry the custom events/sec metric:
#   BenchmarkFleetThroughput/serial-4  1  ... ns/op  30.00 dcns  590471 events/sec  1036800 links
/^BenchmarkFleetThroughput\// {
	split($1, parts, "/")
	mode = parts[2]
	sub(/-[0-9]+$/, "", mode)
	for (i = 3; i + 1 <= NF; i += 2)
		if ($(i + 1) == "events/sec") fev[mode] = $i
	fleetseen = 1
}
END {
	fail = 0

	hpseen = 0
	for (bn in hproots) if (bn in bseen) hpseen = 1
	if (!expseen && !fleetseen && !hpseen) {
		printf("bench_check: FAIL: no recognized benchmark lines in the given transcripts\n")
		exit 1
	}

	# Allocation floors: machine-independent, enforced whenever the
	# experiments suite was run.
	if (expseen) for (d in amax) {
		if (!((d, "serial") in allocs)) {
			printf("bench_check: FAIL %s: no serial allocs/op in bench output\n", d)
			fail = 1
			continue
		}
		a = allocs[d, "serial"]
		if (a + 0 > amax[d] + 0) {
			printf("bench_check: FAIL %s: %d allocs/op exceeds floor %d\n", d, a, amax[d])
			fail = 1
		} else {
			printf("bench_check: ok   %s: %d allocs/op (floor %d)\n", d, a, amax[d])
		}
	}

	# Hot-path zero-allocation floors: enforced whenever the named
	# benchmark ran in a checked transcript. The measured benches all call
	# b.ReportAllocs(), so a present line without allocs/op means the
	# harness regressed — fail rather than skip.
	for (bn in hproots) {
		if (!(bn in bseen)) continue
		if (!(bn in ballocs)) {
			printf("bench_check: FAIL hotpath %s: %s ran but reported no allocs/op\n", hproots[bn], bn)
			fail = 1
			continue
		}
		a = ballocs[bn] + 0
		if (a > 0) {
			printf("bench_check: FAIL hotpath %s: %s reports %d allocs/op, want 0\n", hproots[bn], bn, a)
			fail = 1
		} else {
			printf("bench_check: ok   hotpath %s: %s at 0 allocs/op\n", hproots[bn], bn)
		}
	}

	# Experiment speedup floors: only meaningful with enough cores.
	enforce = (ref != "" && gomaxprocs + 0 >= ref + 0)
	if (expseen && !enforce)
		printf("bench_check: info: GOMAXPROCS=%d < ref_gomaxprocs=%d; experiment speedup floors reported but not enforced\n", gomaxprocs, ref)
	n = 0
	logsum = 0
	for (d in seen) {
		if (!((d, "serial") in ns) || !((d, "parallel") in ns)) continue
		r = ns[d, "serial"] / ns[d, "parallel"]
		n++
		logsum += log(r)
		want = (d in smin) ? smin[d] : 0
		if (enforce && want > 0 && r < want + 0) {
			printf("bench_check: FAIL %s: parallel speedup %.2fx below floor %.2fx\n", d, r, want)
			fail = 1
		} else {
			printf("bench_check: %s %s: parallel speedup %.2fx%s\n",
				enforce && want > 0 ? "ok  " : "info", d, r,
				want > 0 ? sprintf(" (floor %.2fx)", want) : "")
		}
	}
	if (n > 0 && gmin != "") {
		g = exp(logsum / n)
		if (enforce && g < gmin + 0) {
			printf("bench_check: FAIL suite: geomean speedup %.2fx below floor %.2fx\n", g, gmin)
			fail = 1
		} else {
			printf("bench_check: %s suite: geomean speedup %.2fx (floor %.2fx)\n",
				enforce ? "ok  " : "info", g, gmin)
		}
	}

	# Fleet floors: skipped entirely when no fleet transcript was given.
	if (fleetseen) {
		if (fevmin != "") {
			if (!("serial" in fev)) {
				printf("bench_check: FAIL fleet: no serial events/sec in bench output\n")
				fail = 1
			} else if (fev["serial"] + 0 < fevmin + 0) {
				printf("bench_check: FAIL fleet: serial throughput %d events/sec below floor %d\n", fev["serial"], fevmin)
				fail = 1
			} else {
				printf("bench_check: ok   fleet: serial throughput %d events/sec (floor %d)\n", fev["serial"], fevmin)
			}
		}
		fenforce = (fref != "" && gomaxprocs + 0 >= fref + 0)
		if (("serial" in fev) && ("parallel" in fev) && fev["serial"] + 0 > 0) {
			fr = fev["parallel"] / fev["serial"]
			if (!fenforce) {
				printf("bench_check: info fleet: parallel scaling %.2fx (GOMAXPROCS=%d < fleet_ref_gomaxprocs=%s; floor %.2fx not enforced)\n", fr, gomaxprocs, fref, fsmin + 0)
			} else if (fsmin != "" && fr < fsmin + 0) {
				printf("bench_check: FAIL fleet: parallel scaling %.2fx below floor %.2fx\n", fr, fsmin)
				fail = 1
			} else {
				printf("bench_check: ok   fleet: parallel scaling %.2fx (floor %.2fx)\n", fr, fsmin + 0)
			}
		} else if (fenforce && fsmin != "") {
			printf("bench_check: FAIL fleet: missing serial/parallel events/sec for scaling floor\n")
			fail = 1
		}
	}
	exit fail
}
' "$FLOORS" "$@"
