#!/bin/sh
# bench.sh — run a benchmark suite and emit a parsed JSON summary (plus the
# raw `go test` output alongside it).
#
# Usage:
#   scripts/bench.sh              # core suite (default)
#   scripts/bench.sh core         # fast checker / optimizer / path counting
#   scripts/bench.sh experiments  # experiment drivers, serial vs parallel
#
# The core suite writes BENCH_core.{txt,json}; the experiments suite runs
# BenchmarkExperimentsSuite (each multi-scenario driver at ScaleSmall with
# Workers=1 and Workers=NumCPU) and writes BENCH_experiments.{txt,json}.
#
# One JSON object per benchmark line, keyed by the reported units, e.g.
#   {"name":"BenchmarkFastChecker-8","iterations":3504,
#    "ns/op":335399,"B/op":0,"allocs/op":0}
# Custom metrics (e.g. "cone-switches" from BenchmarkPathCountingScoped)
# come through under their own unit names.
set -eu
cd "$(dirname "$0")/.."

SUITE=${1:-core}
case "$SUITE" in
core)
	TXT=BENCH_core.txt
	JSON=BENCH_core.json
	PATTERN='FastChecker|Optimizer|PathCounting'
	COUNT=5
	;;
experiments)
	TXT=BENCH_experiments.txt
	JSON=BENCH_experiments.json
	PATTERN='ExperimentsSuite'
	# Each iteration replays whole experiments; one timed run per
	# sub-benchmark keeps the suite in minutes.
	COUNT=1
	;;
*)
	echo "bench.sh: unknown suite '$SUITE' (want core or experiments)" >&2
	exit 2
	;;
esac

go test -run '^$' -bench "$PATTERN" -benchmem -count="$COUNT" . | tee "$TXT"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ && NF >= 4 {
    if (!first) printf(",\n")
    first = 0
    printf("  {\"name\":\"%s\",\"iterations\":%s", $1, $2)
    for (i = 3; i + 1 <= NF; i += 2)
        printf(",\"%s\":%s", $(i + 1), $i)
    printf("}")
}
END { print "\n]" }
' "$TXT" > "$JSON"

echo "wrote $JSON"
