#!/bin/sh
# bench.sh — run the core mitigation-engine benchmarks and emit
# BENCH_core.json (plus the raw `go test` output in BENCH_core.txt).
#
# One JSON object per benchmark line, keyed by the reported units, e.g.
#   {"name":"BenchmarkFastChecker-8","iterations":3504,
#    "ns/op":335399,"B/op":0,"allocs/op":0}
# Custom metrics (e.g. "cone-switches" from BenchmarkPathCountingScoped)
# come through under their own unit names.
set -eu
cd "$(dirname "$0")/.."

TXT=BENCH_core.txt
JSON=BENCH_core.json
PATTERN='FastChecker|Optimizer|PathCounting'

go test -run '^$' -bench "$PATTERN" -benchmem -count=5 . | tee "$TXT"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ && NF >= 4 {
    if (!first) printf(",\n")
    first = 0
    printf("  {\"name\":\"%s\",\"iterations\":%s", $1, $2)
    for (i = 3; i + 1 <= NF; i += 2)
        printf(",\"%s\":%s", $(i + 1), $i)
    printf("}")
}
END { print "\n]" }
' "$TXT" > "$JSON"

echo "wrote $JSON"
