#!/bin/sh
# bench.sh — run a benchmark suite and emit a parsed JSON summary (plus the
# raw `go test` output alongside it).
#
# Usage:
#   scripts/bench.sh              # core suite (default)
#   scripts/bench.sh core         # fast checker / optimizer / path counting
#   scripts/bench.sh experiments  # experiment drivers, serial vs parallel
#   scripts/bench.sh fleet        # fleet supervisor events/sec, 1M-link fleet
#   scripts/bench.sh lint         # corropt-lint wall-time (load + analyze)
#
# The core suite writes BENCH_core.{txt,json}; the experiments suite runs
# BenchmarkExperimentsSuite (each multi-scenario driver at ScaleSmall with
# Workers=1 and Workers=NumCPU) and writes BENCH_experiments.{txt,json}; the
# fleet suite runs BenchmarkFleetThroughput (sustained corruption-event
# throughput over the 30-DCN / 1M-link synthetic fleet, serial vs parallel
# shard drains, events/sec as a custom metric) and writes
# BENCH_fleet.{txt,json}; the lint suite runs BenchmarkLintRepo /
# BenchmarkLintLoad in internal/analysis and writes BENCH_lint.{txt,json}.
#
# The JSON is an object: a "meta" block recording the machine the numbers
# came from (benchmark results are only comparable against floors recorded
# on a matching machine — see scripts/bench_check.sh), then one object per
# benchmark line under "benchmarks", keyed by the reported units, e.g.
#   {"meta":{"suite":"core","go":"go1.24.0","gomaxprocs":8,
#    "cpu":"Intel(R) Xeon(R) ...","count":5},
#    "benchmarks":[{"name":"BenchmarkFastChecker-8","iterations":3504,
#    "ns/op":335399,"B/op":0,"allocs/op":0}, ...]}
# Custom metrics (e.g. "cone-switches" from BenchmarkPathCountingScoped)
# come through under their own unit names.
#
# Benchmarks from a tree that fails `make lint` are not comparable (a
# nodeterminism or mutexheld violation can silently change what the code
# under test computes), so the script refuses to run unless the lint gate is
# clean. Pass -force (or set FORCE=1) to benchmark anyway.
set -eu
cd "$(dirname "$0")/.."

FORCE=${FORCE:-0}
ARGS=
for a in "$@"; do
	case "$a" in
	-force | --force) FORCE=1 ;;
	*) ARGS="$ARGS $a" ;;
	esac
done
# shellcheck disable=SC2086
set -- $ARGS

SUITE=${1:-core}
# PKG: the package directory whose benchmarks the suite runs.
PKG=.
case "$SUITE" in
core)
	TXT=BENCH_core.txt
	JSON=BENCH_core.json
	PATTERN='FastChecker|Optimizer|PathCounting'
	COUNT=5
	;;
experiments)
	TXT=BENCH_experiments.txt
	JSON=BENCH_experiments.json
	PATTERN='ExperimentsSuite|ExperimentsBatch'
	# Each iteration replays whole experiments; one timed run per
	# sub-benchmark keeps the suite in minutes.
	COUNT=1
	;;
fleet)
	TXT=BENCH_fleet.txt
	JSON=BENCH_fleet.json
	PATTERN='FleetThroughput'
	# Each iteration replays a 200K-event stream over the 1M-link fleet;
	# one timed run per sub-benchmark is plenty of signal.
	COUNT=1
	PKG=./internal/fleet
	;;
hotpath)
	TXT=BENCH_hotpath.txt
	JSON=BENCH_hotpath.json
	PATTERN='FastChecker$|PathCountingIncremental$|PenaltySum$|SimSettle$|FleetRoute$'
	COUNT=1
	PKG=". ./internal/core ./internal/sim ./internal/fleet"
	;;
lint)
	TXT=BENCH_lint.txt
	JSON=BENCH_lint.json
	PATTERN='LintRepo|LintLoad'
	COUNT=3
	PKG=./internal/analysis
	;;
*)
	echo "bench.sh: unknown suite '$SUITE' (want core, experiments, fleet, hotpath, or lint)" >&2
	exit 2
	;;
esac

if [ "$FORCE" != 1 ]; then
	echo "bench.sh: checking the lint gate before benchmarking (skip with -force or FORCE=1)"
	if ! ./scripts/lint.sh >/dev/null 2>&1; then
		echo "bench.sh: tree fails 'make lint'; refusing to record benchmark numbers from a dirty tree" >&2
		echo "bench.sh: fix the findings (run 'make lint') or rerun with -force to override" >&2
		exit 1
	fi
fi

# PKG is intentionally unquoted: the hotpath suite spans several packages.
# shellcheck disable=SC2086
go test -run '^$' -bench "$PATTERN" -benchmem -count="$COUNT" $PKG | tee "$TXT"

# Machine metadata: GOMAXPROCS (the effective worker count of the parallel
# sub-benchmarks), the CPU model from go test's own `cpu:` line, and the
# toolchain version. bench_check.sh uses gomaxprocs to decide whether the
# committed speedup floors apply to this machine.
GOMAXPROCS=${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)}
GOVERSION=$(go env GOVERSION)
CPU=$(awk -F': ' '/^cpu:/ { sub(/^cpu: */, ""); print; exit }' "$TXT")
[ -n "$CPU" ] || CPU=unknown

awk -v suite="$SUITE" -v gover="$GOVERSION" -v gomaxprocs="$GOMAXPROCS" \
	-v cpu="$CPU" -v count="$COUNT" '
BEGIN {
    printf("{\n  \"meta\":{\"suite\":\"%s\",\"go\":\"%s\",\"gomaxprocs\":%s,\"cpu\":\"%s\",\"count\":%s},\n", suite, gover, gomaxprocs, cpu, count)
    print "  \"benchmarks\":["
    first = 1
}
/^Benchmark/ && NF >= 4 {
    if (!first) printf(",\n")
    first = 0
    printf("    {\"name\":\"%s\",\"iterations\":%s", $1, $2)
    for (i = 3; i + 1 <= NF; i += 2)
        printf(",\"%s\":%s", $(i + 1), $i)
    printf("}")
}
END { print "\n  ]\n}" }
' "$TXT" > "$JSON"

echo "wrote $JSON"
