package corropt_test

import (
	"fmt"

	"corropt"
)

// ExampleNewEngine shows the core mitigation loop: a corruption report
// answered by the fast checker, a capacity refusal, and the optimizer
// reacting to a repair.
func ExampleNewEngine() {
	topo, _ := corropt.NewClos(corropt.ClosConfig{
		Pods: 1, ToRsPerPod: 2, AggsPerPod: 4, Spines: 4, SpineUplinksPerAgg: 1,
	})
	net, _ := corropt.NewNetwork(topo, 0.5) // every ToR keeps ≥50% of its paths
	engine := corropt.NewEngine(net, corropt.EngineConfig{})

	up := topo.Switch(topo.ToRs()[0]).Uplinks
	d1 := engine.ReportCorruption(up[0], 1e-3)
	d2 := engine.ReportCorruption(up[1], 1e-2)
	d3 := engine.ReportCorruption(up[2], 1e-4)
	fmt.Println("disabled:", d1.Disabled, d2.Disabled, d3.Disabled)

	// Repairing the first link frees capacity; the optimizer swaps in the
	// worst remaining corrupting link.
	newly := engine.LinkRepaired(up[0])
	fmt.Println("optimizer disabled", len(newly), "more")
	// Output:
	// disabled: true true false
	// optimizer disabled 1 more
}

// ExampleRecommend shows Algorithm 1 mapping optical symptoms to repairs.
func ExampleRecommend() {
	tech := corropt.DefaultTechnologies()[1] // 40G-LR4

	// One starved receiver with healthy transmitters: dirt on a connector.
	d := corropt.Diagnostics{
		HasOptics: true,
		Rx1:       tech.RxThreshold - 3,
		Rx2:       tech.NominalTx - 3,
		Tx2:       tech.NominalTx,
		Tech:      tech,
	}
	fmt.Println(corropt.Recommend(d))

	// Both receivers starved: the fiber itself.
	d.Rx2 = tech.RxThreshold - 2
	fmt.Println(corropt.Recommend(d))
	// Output:
	// clean-fiber
	// replace-fiber
}

// ExampleNewPathCounter shows the valley-free capacity metric CorrOpt's
// constraints are built on.
func ExampleNewPathCounter() {
	topo, _ := corropt.NewClos(corropt.ClosConfig{
		Pods: 1, ToRsPerPod: 1, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 2,
	})
	pc := corropt.NewPathCounter(topo)
	tor := topo.ToRs()[0]
	fmt.Println("total paths:", pc.Total()[tor])

	// Disabling one of the ToR's two uplinks halves them.
	dead := topo.Switch(tor).Uplinks[0]
	counts := pc.Count(func(l corropt.LinkID) bool { return l == dead })
	fmt.Println("after one uplink down:", counts[tor])
	// Output:
	// total paths: 4
	// after one uplink down: 2
}

// ExampleBuildGadget shows the Appendix A reduction solving 3-SAT with the
// optimizer.
func ExampleBuildGadget() {
	f := corropt.Formula{
		NumVars: 2,
		Clauses: []corropt.Clause{{1, 2, 2}, {-1, 2, 2}},
	}
	g, _ := corropt.BuildGadget(f)
	n := g.MaxDisabled(corropt.OptimizerConfig{})
	fmt.Println("disabled", n, "of", len(g.FaultyLinks), "faulty links; satisfiable:", n == f.NumVars)
	// Output:
	// disabled 2 of 4 faulty links; satisfiable: true
}
