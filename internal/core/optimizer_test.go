package core

import (
	"fmt"
	"math"
	"testing"

	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

// fig11 builds the topology-pruning example of Figure 11: four ToRs G–J
// sharing two aggregation switches, a 50% capacity constraint, and four
// corrupting links of which only ToR J's are at risk — the other three can
// be pruned away and disabled unconditionally.
func fig11(t *testing.T) (*Network, map[string]topology.LinkID) {
	t.Helper()
	b := topology.NewBuilder()
	s1 := b.AddSwitch("S1", 2, -1)
	s2 := b.AddSwitch("S2", 2, -1)
	aggA := b.AddSwitch("A", 1, 0)
	aggB := b.AddSwitch("B", 1, 0)
	links := make(map[string]topology.LinkID)
	for _, name := range []string{"G", "H", "I", "J"} {
		tor := b.AddSwitch(name, 0, 0)
		links[name+"-A"] = b.AddLink(tor, aggA, -1)
		links[name+"-B"] = b.AddLink(tor, aggB, -1)
	}
	links["A-S1"] = b.AddLink(aggA, s1, -1)
	links["B-S2"] = b.AddLink(aggB, s2, -1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(topo, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupting: G-A, H-A, I-B (safe), and both of J's uplinks (contested).
	net.SetCorruption(links["G-A"], 1e-3)
	net.SetCorruption(links["H-A"], 1e-3)
	net.SetCorruption(links["I-B"], 1e-3)
	net.SetCorruption(links["J-A"], 1e-2) // the worse of J's two
	net.SetCorruption(links["J-B"], 1e-4)
	return net, links
}

func TestFig11Pruning(t *testing.T) {
	net, links := fig11(t)
	opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{})
	disabled, st := opt.Run(1e-6)

	// Pruning identifies J as the only endangered ToR and disables the
	// three links not upstream of it unconditionally.
	if st.SafelyDisabled != 3 {
		t.Fatalf("safely disabled = %d, want 3 (stats %+v)", st.SafelyDisabled, st)
	}
	if st.Segments != 1 {
		t.Fatalf("segments = %d, want 1", st.Segments)
	}
	// Of J's two corrupting uplinks exactly one (the worse) goes down.
	if !net.Disabled(links["J-A"]) {
		t.Fatal("the higher-rate J uplink should be disabled")
	}
	if net.Disabled(links["J-B"]) {
		t.Fatal("disabling both of J's uplinks would disconnect it")
	}
	if len(disabled) != 4 {
		t.Fatalf("disabled %d links, want 4", len(disabled))
	}
	if net.WorstToRFraction() < 0.5 {
		t.Fatal("constraint violated")
	}
}

func TestOptimizerDisablesEverythingWhenFeasible(t *testing.T) {
	topo := smallClos(t)
	net, _ := NewNetwork(topo, 0.25)
	// Corrupt one agg uplink per pod; with c=25% all can go.
	for _, tor := range topo.ToRs() {
		net.SetCorruption(topo.Switch(tor).Uplinks[0], 1e-4)
	}
	opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{})
	disabled, st := opt.Run(1e-6)
	if len(disabled) != len(topo.ToRs()) {
		t.Fatalf("disabled %d, want %d", len(disabled), len(topo.ToRs()))
	}
	if st.FeasibilityChecks != 0 && st.Segments != 0 {
		// All-feasible path short-circuits before segmentation.
		t.Logf("stats: %+v", st)
	}
	if got := net.TotalPenalty(LinearPenalty); got != 0 {
		t.Fatalf("penalty after full disable = %v", got)
	}
}

func TestOptimizerNoCorruption(t *testing.T) {
	topo := smallClos(t)
	net, _ := NewNetwork(topo, 0.5)
	opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{})
	disabled, st := opt.Run(1e-6)
	if disabled != nil || st.Active != 0 {
		t.Fatalf("optimizer invented work: %v %+v", disabled, st)
	}
}

// bruteForceBest enumerates every subset of the active corrupting links and
// returns the maximum total penalty that can be disabled while keeping all
// ToRs feasible. Exponential; only for small tests.
func bruteForceBest(net *Network, threshold float64, pen PenaltyFunc) float64 {
	active := net.ActiveCorrupting(threshold)
	if len(active) > 20 {
		panic("bruteForceBest: too many active links")
	}
	best := 0.0
	extra := make(map[topology.LinkID]bool)
	for mask := 0; mask < 1<<uint(len(active)); mask++ {
		for k := range extra {
			delete(extra, k)
		}
		sum := 0.0
		for i, l := range active {
			if mask&(1<<uint(i)) != 0 {
				extra[l] = true
				sum += pen(net.CorruptionRate(l))
			}
		}
		if sum > best && net.Feasible(extra) {
			best = sum
		}
	}
	return best
}

func disabledPenalty(net *Network, disabled []topology.LinkID, pen PenaltyFunc) float64 {
	sum := 0.0
	for _, l := range disabled {
		sum += pen(net.CorruptionRate(l))
	}
	return sum
}

func randomCorruptionScenario(t *testing.T, seed uint64, nCorrupt int) *Network {
	t.Helper()
	rng := rngutil.New(seed)
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 2, ToRsPerPod: 3, AggsPerPod: 3, Spines: 6, SpineUplinksPerAgg: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(topo, 0.5+0.25*rng.Float64())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[topology.LinkID]bool)
	for len(seen) < nCorrupt {
		l := topology.LinkID(rng.Intn(topo.NumLinks()))
		if !seen[l] {
			seen[l] = true
			net.SetCorruption(l, math.Pow(10, rng.Range(-6, -2)))
		}
	}
	return net
}

func TestOptimizerMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		net := randomCorruptionScenario(t, seed, 10)
		want := bruteForceBest(net, 1e-7, LinearPenalty)
		opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{})
		disabled, st := opt.Run(1e-7)
		got := disabledPenalty(net, disabled, LinearPenalty)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("seed %d: optimizer penalty %v, brute force %v (stats %+v)", seed, got, want, st)
		}
		if !net.Feasible(nil) {
			t.Fatalf("seed %d: optimizer left the network infeasible", seed)
		}
	}
}

func TestOptimizerExactUnderAllAblations(t *testing.T) {
	// Pruning, segmentation and the reject cache are accelerations: they
	// must never change the answer.
	configs := []OptimizerConfig{
		{DisablePruning: true},
		{DisableSegmentation: true},
		{DisableRejectCache: true},
		{DisablePruning: true, DisableSegmentation: true, DisableRejectCache: true},
	}
	for seed := uint64(100); seed < 110; seed++ {
		net := randomCorruptionScenario(t, seed, 8)
		want := bruteForceBest(net, 1e-7, LinearPenalty)
		for ci, cfg := range configs {
			n2 := randomCorruptionScenario(t, seed, 8)
			opt := NewOptimizer(n2, LinearPenalty, cfg)
			disabled, _ := opt.Run(1e-7)
			got := disabledPenalty(n2, disabled, LinearPenalty)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("seed %d config %d: penalty %v, want %v", seed, ci, got, want)
			}
		}
		_ = net
	}
}

func TestRejectCacheReducesChecks(t *testing.T) {
	// On a constrained instance, the reject cache should save path counts.
	net, _ := fig10(t)
	optNoCache := NewOptimizer(net, LinearPenalty, OptimizerConfig{DisableRejectCache: true})
	_, stNo := optNoCache.Run(1e-6)

	net2, _ := fig10(t)
	optCache := NewOptimizer(net2, LinearPenalty, OptimizerConfig{})
	_, stYes := optCache.Run(1e-6)

	if stYes.RejectCacheHits == 0 {
		t.Logf("no cache hits on this instance (checks with=%d without=%d)", stYes.FeasibilityChecks, stNo.FeasibilityChecks)
	}
	if stYes.FeasibilityChecks > stNo.FeasibilityChecks {
		t.Fatalf("cache increased feasibility checks: %d > %d", stYes.FeasibilityChecks, stNo.FeasibilityChecks)
	}
}

func TestGreedyFallbackOnHugeSegment(t *testing.T) {
	net, _ := fig10(t)
	opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{MaxExactLinks: 4})
	disabled, st := opt.Run(1e-6)
	if st.GreedyFallbacks == 0 {
		t.Fatalf("expected greedy fallback with MaxExactLinks=4 (stats %+v)", st)
	}
	if !net.Feasible(nil) {
		t.Fatal("greedy fallback violated constraints")
	}
	if len(disabled) == 0 {
		t.Fatal("greedy fallback disabled nothing")
	}
}

func TestSegmentationSplitsIndependentGroups(t *testing.T) {
	// Two pods, each with its own endangered ToR: the contested links of
	// different pods must land in different segments.
	b := topology.NewBuilder()
	var spines []topology.SwitchID
	for i := 0; i < 4; i++ {
		spines = append(spines, b.AddSwitch(fmt.Sprintf("s%d", i), 2, -1))
	}
	var corrupt []topology.LinkID
	for p := 0; p < 2; p++ {
		aggA := b.AddSwitch(fmt.Sprintf("a%d-0", p), 1, p)
		aggB := b.AddSwitch(fmt.Sprintf("a%d-1", p), 1, p)
		tor := b.AddSwitch(fmt.Sprintf("t%d", p), 0, p)
		l1 := b.AddLink(tor, aggA, -1)
		l2 := b.AddLink(tor, aggB, -1)
		b.AddLink(aggA, spines[p*2], -1)
		b.AddLink(aggB, spines[p*2+1], -1)
		corrupt = append(corrupt, l1, l2)
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net, _ := NewNetwork(topo, 0.5)
	for _, l := range corrupt {
		net.SetCorruption(l, 1e-3)
	}
	opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{})
	disabled, st := opt.Run(1e-6)
	if st.Segments != 2 {
		t.Fatalf("segments = %d, want 2 (stats %+v)", st.Segments, st)
	}
	// Each ToR keeps one of its two uplinks: 2 disabled in total.
	if len(disabled) != 2 {
		t.Fatalf("disabled %d, want 2", len(disabled))
	}
	if !net.Feasible(nil) {
		t.Fatal("constraints violated")
	}
}

// TestParallelOptimizerMatchesSerial: segment-level parallelism is an
// implementation detail — the chosen sets must be identical.
func TestParallelOptimizerMatchesSerial(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		serial := randomCorruptionScenario(t, seed+3000, 14)
		parallel := randomCorruptionScenario(t, seed+3000, 14)

		so := NewOptimizer(serial, LinearPenalty, OptimizerConfig{})
		po := NewOptimizer(parallel, LinearPenalty, OptimizerConfig{Workers: 4})
		sd, sst := so.Run(1e-7)
		pd, pst := po.Run(1e-7)
		if disabledPenalty(serial, sd, LinearPenalty) != disabledPenalty(parallel, pd, LinearPenalty) {
			t.Fatalf("seed %d: parallel penalty differs", seed)
		}
		if len(sd) != len(pd) {
			t.Fatalf("seed %d: disabled counts differ: %d vs %d", seed, len(sd), len(pd))
		}
		for l := 0; l < serial.Topology().NumLinks(); l++ {
			if serial.Disabled(topology.LinkID(l)) != parallel.Disabled(topology.LinkID(l)) {
				t.Fatalf("seed %d: link %d state differs", seed, l)
			}
		}
		if sst.Segments != pst.Segments || sst.FeasibilityChecks != pst.FeasibilityChecks {
			t.Fatalf("seed %d: stats differ: %+v vs %+v", seed, sst, pst)
		}
	}
}
