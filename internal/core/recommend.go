package core

import (
	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/telemetry"
	"corropt/internal/topology"
)

// Diagnostics carries the inputs of Algorithm 1 for one corrupting link:
// the optical power levels around the corrupting direction, whether
// co-located links or the reverse direction also corrupt, and the link's
// repair history.
type Diagnostics struct {
	Link topology.LinkID
	// Dir is the (worst) corrupting direction.
	Dir topology.Direction
	// NeighborCorrupting reports whether other links sharing a component
	// (the same switch / breakout cable) corrupt too — the shared-
	// component signature.
	NeighborCorrupting bool
	// OppositeCorrupting reports whether the reverse direction of this
	// link also corrupts — the damaged-fiber signature.
	OppositeCorrupting bool
	// HasOptics reports whether power levels are available; some switch
	// types in the deployment expose none, in which case no
	// recommendation can be generated (§7.2).
	HasOptics bool
	// Rx1 is the receive power at the corrupting link's receive side.
	Rx1 optics.DBm
	// Rx2 and Tx2 are the receive and transmit power at the opposite
	// side.
	Rx2, Tx2 optics.DBm
	// RecentlyReseated reports whether a reseat was already attempted on
	// this link (the history input that separates reseat from replace).
	RecentlyReseated bool
	// Tech supplies PowerThreshRx and PowerThreshTx for the link's
	// optical technology.
	Tech optics.Technology
}

// Recommend implements Algorithm 1, CorrOpt's root-cause-aware repair
// recommendation engine. It returns the concrete action a technician
// should take, derived from the most likely symptom signatures of §4.
func Recommend(d Diagnostics) faults.RepairAction {
	// Lines 2–4: corruption on co-located links means a shared component
	// (breakout cable or switch backplane) is at fault.
	if d.NeighborCorrupting {
		return faults.ActionReplaceSharedComponent
	}
	// Lines 5–6: corruption in both directions points at the fiber.
	if d.OppositeCorrupting {
		return faults.ActionReplaceFiber
	}
	if !d.HasOptics {
		return faults.ActionUnknown
	}
	// Lines 10–11: a dim transmitter on the far side is a decaying laser.
	if d.Tx2 <= d.Tech.TxThreshold {
		return faults.ActionReplaceOppositeTransceiver
	}
	// Lines 12–13: both receivers starved — bent or damaged fiber.
	if d.Rx1 < d.Tech.RxThreshold && d.Rx2 < d.Tech.RxThreshold {
		return faults.ActionReplaceFiber
	}
	// Lines 14–15: one starved receiver — connector contamination.
	if d.Rx1 < d.Tech.RxThreshold {
		return faults.ActionCleanFiber
	}
	// Lines 16–20: good optics but corrupting — transceiver trouble;
	// reseat first, replace if that was already tried.
	if !d.RecentlyReseated {
		return faults.ActionReseatTransceiver
	}
	return faults.ActionReplaceTransceiver
}

// DeployedThresholds are the single, global power thresholds the early
// deployment used for every link regardless of its optical technology
// (§7.2: per-technology information "was not readily available"). Links
// whose technology has tighter or looser real thresholds get misclassified
// when their power sits between the global and the true value — one of the
// reasons the deployed accuracy underestimates the full design's.
var DeployedThresholds = optics.Technology{
	Name:        "deployed-global",
	TxThreshold: -4,
	RxThreshold: -10,
}

// RecommendDeployed mirrors the simplified engine actually deployed across
// the 70 data centers (§7.2): it compares power levels against
// DeployedThresholds instead of the link's per-technology values, and keeps
// no repair history, so it always suggests reseating before replacement and
// cannot escalate. The neighbor-corruption input remains available — it
// comes from the packet counters the monitoring system already collects,
// not from optics.
func RecommendDeployed(d Diagnostics) faults.RepairAction {
	if d.NeighborCorrupting {
		return faults.ActionReplaceSharedComponent
	}
	if d.OppositeCorrupting {
		return faults.ActionReplaceFiber
	}
	if !d.HasOptics {
		return faults.ActionUnknown
	}
	if d.Tx2 <= DeployedThresholds.TxThreshold {
		return faults.ActionReplaceOppositeTransceiver
	}
	if d.Rx1 < DeployedThresholds.RxThreshold && d.Rx2 < DeployedThresholds.RxThreshold {
		return faults.ActionReplaceFiber
	}
	if d.Rx1 < DeployedThresholds.RxThreshold {
		return faults.ActionCleanFiber
	}
	return faults.ActionReseatTransceiver
}

// Diagnose assembles Diagnostics for link l from the latest telemetry.
// threshold is the corruption rate at which a direction counts as
// corrupting; reseated reports prior reseat attempts on the link.
func Diagnose(c *telemetry.Collector, topo *topology.Topology, tech optics.Technology,
	l topology.LinkID, threshold float64, reseated bool) (Diagnostics, bool) {
	obs, ok := c.Latest(l)
	if !ok || obs.Disabled {
		return Diagnostics{}, false
	}
	dir := topology.Up
	if obs.CorruptionRate[topology.Down] > obs.CorruptionRate[topology.Up] {
		dir = topology.Down
	}
	if obs.CorruptionRate[dir] < threshold {
		return Diagnostics{}, false
	}
	d := Diagnostics{
		Link:             l,
		Dir:              dir,
		HasOptics:        true,
		RecentlyReseated: reseated,
		Tech:             tech,
	}
	d.OppositeCorrupting = obs.CorruptionRate[1-dir] >= threshold

	// Receive side of the corrupting direction.
	recv := optics.UpperSide
	if dir == topology.Down {
		recv = optics.LowerSide
	}
	d.Rx1 = obs.RxPower[recv]
	d.Rx2 = obs.RxPower[recv.Opposite()]
	d.Tx2 = obs.TxPower[recv.Opposite()]

	// Neighbor corruption: any other link sharing a switch with l
	// corrupting at the same time. The breakout-cable group is the
	// tightest shared component; fall back to the switch's links.
	for _, nb := range neighborLinks(topo, l) {
		if nb == l {
			continue
		}
		if nobs, ok := c.Latest(nb); ok && !nobs.Disabled {
			if nobs.CorruptionRate[topology.Up] >= threshold || nobs.CorruptionRate[topology.Down] >= threshold {
				d.NeighborCorrupting = true
				break
			}
		}
	}
	return d, true
}

// DiagnoseState assembles Diagnostics for link l straight from fault-state
// ground truth, bypassing the telemetry layer; simulations use it where the
// deployed system would read its monitoring database. The power readings
// are exactly the transceivers' current values (telemetry adds only
// counter noise, not power noise), so the two paths agree.
func DiagnoseState(st *faults.State, l topology.LinkID, threshold float64, reseated bool) (Diagnostics, bool) {
	up := st.CorruptionRate(l, topology.Up)
	down := st.CorruptionRate(l, topology.Down)
	dir := topology.Up
	if down > up {
		dir = topology.Down
	}
	if st.CorruptionRate(l, dir) < threshold {
		return Diagnostics{}, false
	}
	d := Diagnostics{
		Link:             l,
		Dir:              dir,
		HasOptics:        true,
		RecentlyReseated: reseated,
		Tech:             st.TechOf(l),
	}
	d.OppositeCorrupting = st.CorruptionRate(l, 1-dir) >= threshold
	recv := optics.UpperSide
	if dir == topology.Down {
		recv = optics.LowerSide
	}
	ol := st.Optics(l)
	d.Rx1 = ol.RxPower(recv)
	d.Rx2 = ol.RxPower(recv.Opposite())
	d.Tx2 = ol.TxPower(recv.Opposite())
	for _, nb := range neighborLinks(st.Topology(), l) {
		if nb != l && st.Corrupting(nb, threshold) {
			d.NeighborCorrupting = true
			break
		}
	}
	return d, true
}

// neighborLinks returns the links sharing a component with l: its breakout
// group if it has one, otherwise all links on either endpoint switch.
func neighborLinks(topo *topology.Topology, l topology.LinkID) []topology.LinkID {
	if group := topo.SameBreakout(l); len(group) > 1 {
		return group
	}
	lk := topo.Link(l)
	out := topo.LinksOnSwitch(lk.Lower)
	out = append(out, topo.LinksOnSwitch(lk.Upper)...)
	return out
}
