// Package core implements CorrOpt, the corruption-mitigation system of
// "Understanding and Mitigating Packet Corruption in Data Center Networks"
// (SIGCOMM 2017): the fast checker that decides in O(|E|) whether a newly
// corrupting link can be disabled without violating per-ToR capacity
// constraints, the optimizer that computes the exact optimal set of
// corrupting links to disable (topology pruning + segmentation + reject
// cache over an NP-complete search space), the switch-local baseline used in
// production before CorrOpt, and the root-cause-aware repair recommendation
// engine of Algorithm 1.
package core

import (
	"fmt"

	"corropt/internal/topology"
)

// Network is the mutable mitigation-facing view of a data center: which
// links are administratively disabled, which enabled links are corrupting
// and how badly, and the per-ToR capacity constraints.
//
// Network is not safe for concurrent use.
type Network struct {
	topo *topology.Topology
	pc   *topology.PathCounter
	// disabled marks administratively-down links.
	disabled []bool
	// rate holds the worst-direction corruption rate per link; zero for
	// healthy links. Disabled links keep their rate so that re-enabling a
	// still-broken link is visible to the caller.
	rate []float64
	// constraint is the per-ToR minimum fraction of valley-free spine
	// paths that must remain available, indexed by SwitchID (non-ToR
	// entries unused).
	constraint []float64
}

// constraintSlack absorbs float64 rounding when comparing exact integer
// path-count ratios against fractional constraints.
const constraintSlack = 1e-9

// NewNetwork returns a fully-enabled, fully-healthy Network with the same
// capacity constraint c (0 <= c <= 1) for every ToR.
func NewNetwork(topo *topology.Topology, c float64) (*Network, error) {
	if c < 0 || c > 1 {
		return nil, fmt.Errorf("core: capacity constraint %v out of [0,1]", c)
	}
	n := &Network{
		topo:       topo,
		pc:         topology.NewPathCounter(topo),
		disabled:   make([]bool, topo.NumLinks()),
		rate:       make([]float64, topo.NumLinks()),
		constraint: make([]float64, topo.NumSwitches()),
	}
	for _, tor := range topo.ToRs() {
		n.constraint[tor] = c
	}
	return n, nil
}

// Topology returns the underlying immutable topology.
func (n *Network) Topology() *topology.Topology { return n.topo }

// PathCounter exposes the network's path counter for callers computing
// custom capacity metrics. The counter shares scratch space with the
// Network; do not use it concurrently with Network methods.
func (n *Network) PathCounter() *topology.PathCounter { return n.pc }

// SetToRConstraint overrides the capacity constraint of one ToR. Traffic
// demand differs across ToRs (§5.1), so CorrOpt supports per-ToR thresholds.
func (n *Network) SetToRConstraint(tor topology.SwitchID, c float64) error {
	if c < 0 || c > 1 {
		return fmt.Errorf("core: capacity constraint %v out of [0,1]", c)
	}
	if n.topo.Switch(tor).Stage != 0 {
		return fmt.Errorf("core: switch %q is not a ToR", n.topo.Switch(tor).Name)
	}
	n.constraint[tor] = c
	return nil
}

// Constraint reports the capacity constraint of a ToR.
func (n *Network) Constraint(tor topology.SwitchID) float64 { return n.constraint[tor] }

// Disable administratively takes link l down (both directions).
func (n *Network) Disable(l topology.LinkID) { n.disabled[l] = true }

// Enable brings link l back up.
func (n *Network) Enable(l topology.LinkID) { n.disabled[l] = false }

// Disabled reports whether link l is administratively down.
func (n *Network) Disabled(l topology.LinkID) bool { return n.disabled[l] }

// DisabledFunc returns the link-disabled predicate for path counting.
func (n *Network) DisabledFunc() topology.DisabledFunc {
	return func(l topology.LinkID) bool { return n.disabled[l] }
}

// NumDisabled reports how many links are currently disabled.
func (n *Network) NumDisabled() int {
	c := 0
	for _, d := range n.disabled {
		if d {
			c++
		}
	}
	return c
}

// SetCorruption records the observed worst-direction corruption rate of
// link l; zero clears it (the link has been repaired or was misdetected).
func (n *Network) SetCorruption(l topology.LinkID, rate float64) { n.rate[l] = rate }

// CorruptionRate reports the recorded corruption rate of link l.
func (n *Network) CorruptionRate(l topology.LinkID) float64 { return n.rate[l] }

// ActiveCorrupting returns the enabled links whose corruption rate is at or
// above threshold — the set the optimizer works over.
func (n *Network) ActiveCorrupting(threshold float64) []topology.LinkID {
	var out []topology.LinkID
	for l := range n.rate {
		if !n.disabled[l] && n.rate[l] >= threshold {
			out = append(out, topology.LinkID(l))
		}
	}
	return out
}

// meets reports whether ToR tor meets its constraint given per-ToR counts
// and totals.
func (n *Network) meets(tor topology.SwitchID, counts, total []int64) bool {
	if total[tor] == 0 {
		return n.constraint[tor] <= 0
	}
	frac := float64(counts[tor]) / float64(total[tor])
	return frac+constraintSlack >= n.constraint[tor]
}

// ViolatedToRs returns the ToRs whose capacity constraints are violated
// when, in addition to the currently disabled links, every link in extra is
// disabled. A nil extra checks the current state.
func (n *Network) ViolatedToRs(extra map[topology.LinkID]bool) []topology.SwitchID {
	counts := n.pc.Count(n.composite(extra))
	total := n.pc.Total()
	var out []topology.SwitchID
	for _, tor := range n.topo.ToRs() {
		if !n.meets(tor, counts, total) {
			out = append(out, tor)
		}
	}
	return out
}

// FeasibleToRs reports whether every ToR in tors meets its constraint with
// the current disabled set plus extra. Restricting the check to affected
// ToRs is what keeps the optimizer's inner loop cheap.
func (n *Network) FeasibleToRs(tors []topology.SwitchID, extra map[topology.LinkID]bool) bool {
	return n.feasibleToRsWith(n.pc, tors, extra)
}

// feasibleToRsWith is FeasibleToRs evaluated on a caller-supplied path
// counter. The parallel optimizer gives each worker its own counter so
// feasibility checks can run concurrently; during that phase the disabled
// set and constraints are read-only, which is what makes this safe.
func (n *Network) feasibleToRsWith(pc *topology.PathCounter, tors []topology.SwitchID, extra map[topology.LinkID]bool) bool {
	counts := pc.Count(n.composite(extra))
	total := pc.Total()
	for _, tor := range tors {
		if !n.meets(tor, counts, total) {
			return false
		}
	}
	return true
}

// Feasible reports whether every ToR meets its constraint with the current
// disabled set plus extra.
func (n *Network) Feasible(extra map[topology.LinkID]bool) bool {
	return len(n.ViolatedToRs(extra)) == 0
}

// composite merges the persistent disabled set with a tentative extra set.
func (n *Network) composite(extra map[topology.LinkID]bool) topology.DisabledFunc {
	if extra == nil {
		return n.DisabledFunc()
	}
	return func(l topology.LinkID) bool { return n.disabled[l] || extra[l] }
}

// WorstToRFraction reports the minimum per-ToR available-path fraction in
// the current state (Figures 15 and 16).
func (n *Network) WorstToRFraction() float64 {
	return n.pc.WorstToRFraction(n.DisabledFunc())
}

// MeanToRFraction reports the average per-ToR available-path fraction in
// the current state (§7.3's capacity-cost metric).
func (n *Network) MeanToRFraction() float64 {
	return n.pc.MeanToRFraction(n.DisabledFunc())
}

// TotalPenalty sums penalty(rate) over enabled corrupting links: the
// objective Σ (1 - d_l) · I(f_l) of §5.1.
func (n *Network) TotalPenalty(p PenaltyFunc) float64 {
	sum := 0.0
	for l, r := range n.rate {
		if r > 0 && !n.disabled[l] {
			sum += p(r)
		}
	}
	return sum
}
