// Package core implements CorrOpt, the corruption-mitigation system of
// "Understanding and Mitigating Packet Corruption in Data Center Networks"
// (SIGCOMM 2017): the fast checker that decides in O(downstream cone)
// whether a newly corrupting link can be disabled without violating per-ToR
// capacity constraints, the optimizer that computes the exact optimal set of
// corrupting links to disable (topology pruning + segmentation + reject
// cache over an NP-complete search space), the switch-local baseline used in
// production before CorrOpt, and the root-cause-aware repair recommendation
// engine of Algorithm 1.
package core

import (
	"fmt"
	"math/bits"

	"corropt/internal/topology"
)

// Network is the mutable mitigation-facing view of a data center: which
// links are administratively disabled, which enabled links are corrupting
// and how badly, and the per-ToR capacity constraints.
//
// Network keeps its path counter in incremental mode, mirroring the
// disabled set at all times: Disable and Enable propagate exact count
// deltas through the toggled link's downstream cone instead of triggering
// full recounts, and the per-ToR constraint status (meets/violates) is
// maintained alongside. Capacity metrics over the *current* state —
// ViolatedToRs(nil), Feasible(nil), WorstToRFraction, MeanToRFraction —
// are therefore O(|ToRs|) reads, not O(|V|+|E|) sweeps.
//
// Network is not safe for concurrent use.
type Network struct {
	topo *topology.Topology
	pc   *topology.PathCounter
	// disabled is the administratively-down link set, aliasing the path
	// counter's incremental set (the counter owns it; Network mutates it
	// only through Apply/Revert).
	disabled *topology.LinkSet
	// numDisabled counts set bits in disabled, maintained on toggle so
	// NumDisabled is O(1).
	numDisabled int
	// rate holds the worst-direction corruption rate per link; zero for
	// healthy links. Disabled links keep their rate so that re-enabling a
	// still-broken link is visible to the caller.
	rate []float64
	// constraint is the per-ToR minimum fraction of valley-free spine
	// paths that must remain available, indexed by SwitchID (non-ToR
	// entries unused).
	constraint []float64
	// meetsNow caches, per ToR SwitchID, whether the ToR currently meets
	// its constraint under the incremental counts; numViolated counts the
	// ToRs that do not.
	meetsNow    []bool
	numViolated int

	// Incremental penalty accounting (§5.1's objective Σ (1-d_l)·I(f_l)),
	// active once RegisterPenalty installs an impact function. penalty is
	// that function; contrib[l] caches link l's current contribution
	// (p(rate[l]) when the link is enabled and corrupting, else 0);
	// penaltySum is Σ contrib, maintained in O(1) per SetCorruption /
	// Disable / Enable. corrupting tracks the links with a nonzero recorded
	// rate so exact rebuilds touch O(#corrupting) links, not O(#links).
	penalty    PenaltyFunc
	contrib    []float64
	penaltySum float64
	corrupting *topology.LinkSet
	// penaltyOps counts updates folded into penaltySum since the last
	// exact rebuild; PenaltySum re-sums the contributions (in link order,
	// matching the TotalPenalty scan) every penaltyRebuildEvery updates so
	// floating-point drift from incremental +=/-= never accumulates beyond
	// one epoch.
	penaltyOps int
}

// penaltyRebuildEvery bounds floating-point drift of the incremental
// penalty sum: after this many O(1) delta updates, the next PenaltySum read
// re-sums the cached contributions exactly. Rebuilds cost O(#corrupting
// links) and amortize to O(1) per update.
const penaltyRebuildEvery = 1024

// constraintSlack absorbs float64 rounding when comparing exact integer
// path-count ratios against fractional constraints.
const constraintSlack = 1e-9

// NewNetwork returns a fully-enabled, fully-healthy Network with the same
// capacity constraint c (0 <= c <= 1) for every ToR.
func NewNetwork(topo *topology.Topology, c float64) (*Network, error) {
	if c < 0 || c > 1 {
		return nil, fmt.Errorf("core: capacity constraint %v out of [0,1]", c)
	}
	pc := topology.NewPathCounter(topo)
	n := &Network{
		topo:       topo,
		pc:         pc,
		disabled:   pc.IncDisabled(),
		rate:       make([]float64, topo.NumLinks()),
		constraint: make([]float64, topo.NumSwitches()),
		meetsNow:   make([]bool, topo.NumSwitches()),
	}
	for _, tor := range topo.ToRs() {
		n.constraint[tor] = c
	}
	n.recomputeViolated()
	return n, nil
}

// Reset restores n to the state NewNetwork(n.Topology(), c) would
// construct — every link enabled and healthy, every ToR constrained to c,
// no penalty function registered — while reusing every allocation,
// including the path counter (one full incremental re-sweep) and the
// penalty contribution buffers (parked for the next RegisterPenalty).
// Pooled simulation scratch resets Networks between scenarios instead of
// rebuilding them; the scratch differential tests pin that the two paths
// are observationally identical.
func (n *Network) Reset(c float64) error {
	if c < 0 || c > 1 {
		return fmt.Errorf("core: capacity constraint %v out of [0,1]", c)
	}
	n.pc.ResetIncremental(nil)
	n.numDisabled = 0
	clear(n.rate)
	clear(n.constraint)
	for _, tor := range n.topo.ToRs() {
		n.constraint[tor] = c
	}
	n.recomputeViolated()
	// Unregister the penalty function but keep the buffers: RegisterPenalty
	// reuses them.
	n.penalty = nil
	n.penaltySum, n.penaltyOps = 0, 0
	return nil
}

// Topology returns the underlying immutable topology.
func (n *Network) Topology() *topology.Topology { return n.topo }

// PathCounter exposes the network's path counter for callers computing
// custom capacity metrics. The counter shares scratch space with the
// Network; do not use it concurrently with Network methods, and restore any
// Apply/Revert probes before returning control to the Network.
func (n *Network) PathCounter() *topology.PathCounter { return n.pc }

// SetToRConstraint overrides the capacity constraint of one ToR. Traffic
// demand differs across ToRs (§5.1), so CorrOpt supports per-ToR thresholds.
func (n *Network) SetToRConstraint(tor topology.SwitchID, c float64) error {
	if c < 0 || c > 1 {
		return fmt.Errorf("core: capacity constraint %v out of [0,1]", c)
	}
	if n.topo.Switch(tor).Stage != 0 {
		return fmt.Errorf("core: switch %q is not a ToR", n.topo.Switch(tor).Name)
	}
	n.constraint[tor] = c
	n.refreshToR(tor)
	return nil
}

// Constraint reports the capacity constraint of a ToR.
func (n *Network) Constraint(tor topology.SwitchID) float64 { return n.constraint[tor] }

// Disable administratively takes link l down (both directions), updating
// path counts incrementally through l's downstream cone.
func (n *Network) Disable(l topology.LinkID) {
	if n.disabled.Has(l) {
		return
	}
	n.numDisabled++
	n.penaltyOnToggle(l, true)
	n.refreshToRs(n.pc.Apply(l))
}

// Enable brings link l back up, updating path counts incrementally.
func (n *Network) Enable(l topology.LinkID) {
	if !n.disabled.Has(l) {
		return
	}
	n.numDisabled--
	n.penaltyOnToggle(l, false)
	n.refreshToRs(n.pc.Revert(l))
}

// Disabled reports whether link l is administratively down.
func (n *Network) Disabled(l topology.LinkID) bool { return n.disabled.Has(l) }

// DisabledLinks returns the disabled set as a bitset. The set is live and
// owned by the Network; callers must not mutate it.
func (n *Network) DisabledLinks() *topology.LinkSet { return n.disabled }

// DisabledFunc returns the link-disabled predicate for path counting.
func (n *Network) DisabledFunc() topology.DisabledFunc {
	return n.disabled.Func()
}

// NumDisabled reports how many links are currently disabled. O(1): the
// count is maintained by Disable/Enable.
func (n *Network) NumDisabled() int { return n.numDisabled }

// SetCorruption records the observed worst-direction corruption rate of
// link l; zero clears it (the link has been repaired or was misdetected).
// With a registered penalty function the running penalty sum is updated in
// O(1).
func (n *Network) SetCorruption(l topology.LinkID, rate float64) {
	if n.rate[l] == rate {
		return
	}
	n.rate[l] = rate
	if n.penalty == nil {
		return
	}
	if rate > 0 {
		n.corrupting.Add(l)
	} else {
		n.corrupting.Remove(l)
	}
	var c float64
	if rate > 0 && !n.disabled.Has(l) {
		c = n.penalty(rate)
	}
	n.setContrib(l, c)
}

// RegisterPenalty installs p as the network's impact function and switches
// penalty accounting to incremental mode: from now on SetCorruption,
// Disable, and Enable maintain Σ (1-d_l)·I(f_l) as running state, and
// PenaltySum reads it in O(1) instead of rescanning every link the way
// TotalPenalty does. Registering replaces any previous function and
// recomputes the sum from scratch.
func (n *Network) RegisterPenalty(p PenaltyFunc) {
	if p == nil {
		n.penalty, n.contrib, n.corrupting = nil, nil, nil
		n.penaltySum, n.penaltyOps = 0, 0
		return
	}
	n.penalty = p
	// Reuse the contribution buffers across registrations: Reset parks them
	// so a pooled Network's per-scenario RegisterPenalty allocates nothing.
	if len(n.contrib) == n.topo.NumLinks() {
		clear(n.contrib)
	} else {
		n.contrib = make([]float64, n.topo.NumLinks())
	}
	if n.corrupting != nil {
		n.corrupting.Clear()
	} else {
		n.corrupting = topology.NewLinkSet(n.topo.NumLinks())
	}
	for l, r := range n.rate {
		if r > 0 {
			n.corrupting.Add(topology.LinkID(l))
			if !n.disabled.Has(topology.LinkID(l)) {
				n.contrib[l] = p(r)
			}
		}
	}
	n.rebuildPenaltySum()
}

// PenaltyRegistered reports whether an impact function is installed.
func (n *Network) PenaltyRegistered() bool { return n.penalty != nil }

// PenaltySum returns the incrementally-maintained objective Σ (1-d_l)·I(f_l)
// for the registered penalty function. O(1) per read (amortized: every
// penaltyRebuildEvery updates the sum is re-summed exactly over the
// O(#corrupting) cached contributions, in the same link order as a fresh
// TotalPenalty scan, so incremental drift never outlives one epoch). It
// panics if no penalty function was registered.
//
// panicNoPenalty is pre-converted to an interface at package scope: a
// literal panic("...") performs a string-to-interface conversion whose
// operand the compiler heap-allocates at every call site, and PenaltySum
// inlines into every hot-path settle — the escapes analyzer holds those
// frames to zero compiler-reported escapes.
var panicNoPenalty any = "core: PenaltySum called without RegisterPenalty"

//lint:hotpath every Sim.settle and control-plane status read lands here
func (n *Network) PenaltySum() float64 {
	if n.penalty == nil {
		panic(panicNoPenalty)
	}
	if n.penaltyOps >= penaltyRebuildEvery {
		n.rebuildPenaltySum()
	}
	return n.penaltySum
}

// setContrib points link l's cached penalty contribution at c, folding the
// delta into the running sum.
//
//lint:hotpath O(1) fold on every SetCorruption / toggle event
func (n *Network) setContrib(l topology.LinkID, c float64) {
	if old := n.contrib[l]; old != c {
		n.penaltySum += c - old
		n.contrib[l] = c
		n.penaltyOps++
	}
}

// penaltyOnToggle updates the penalty state for link l transitioning to
// disabled (true) or enabled (false). Callers invoke it before the path
// counter's disabled set flips, so the new state is passed explicitly.
//
//lint:hotpath runs on every Disable/Enable event
func (n *Network) penaltyOnToggle(l topology.LinkID, nowDisabled bool) {
	if n.penalty == nil {
		return
	}
	var c float64
	if r := n.rate[l]; r > 0 && !nowDisabled {
		//lint:allow hotalloc registered PenaltyFunc values are pure arithmetic; a dynamic call is unprovable statically
		c = n.penalty(r)
	}
	n.setContrib(l, c)
}

// rebuildPenaltySum re-sums the cached contributions exactly, iterating the
// corrupting set in ascending link order — term-for-term the same additions
// as TotalPenalty's fresh scan, so the result is bit-identical to it. The
// bitset is walked word-by-word rather than through Each so the amortized
// rebuild inside PenaltySum stays closure-free (hotalloc's proof obligation).
func (n *Network) rebuildPenaltySum() {
	sum := 0.0
	for wi, w := range n.corrupting.Words() {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			sum += n.contrib[wi*64+b]
			w &= w - 1
		}
	}
	n.penaltySum = sum
	n.penaltyOps = 0
}

// CorruptionRate reports the recorded corruption rate of link l.
func (n *Network) CorruptionRate(l topology.LinkID) float64 { return n.rate[l] }

// ActiveCorrupting returns the enabled links whose corruption rate is at or
// above threshold — the set the optimizer works over.
func (n *Network) ActiveCorrupting(threshold float64) []topology.LinkID {
	return n.AppendActiveCorrupting(nil, threshold)
}

// AppendActiveCorrupting appends the enabled links whose corruption rate is
// at or above threshold to dst and returns the extended slice. Callers on
// hot paths pass a retained buffer (dst[:0]) to avoid re-allocating the set
// on every optimizer run.
func (n *Network) AppendActiveCorrupting(dst []topology.LinkID, threshold float64) []topology.LinkID {
	for l := range n.rate {
		if n.rate[l] >= threshold && !n.disabled.Has(topology.LinkID(l)) {
			dst = append(dst, topology.LinkID(l))
		}
	}
	return dst
}

// NumActiveCorrupting counts the enabled links whose corruption rate is at
// or above threshold, without materializing the set. The simulator's sample
// path and the control-plane status endpoint only need the count.
func (n *Network) NumActiveCorrupting(threshold float64) int {
	count := 0
	for l := range n.rate {
		if n.rate[l] >= threshold && !n.disabled.Has(topology.LinkID(l)) {
			count++
		}
	}
	return count
}

// panicToRRange is pre-converted at package scope for the same reason as
// panicNoPenalty: meets inlines into the CanDisable hot loop.
var panicToRRange any = "core: meets: ToR index out of range"

// meets reports whether ToR tor meets its constraint given per-ToR counts
// and totals. The single up-front range guard replaces the three implicit
// bounds checks the indexed reads would otherwise each carry inside
// CanDisable's probe loop (the escapes analyzer holds hot-path inner loops
// to zero compiler-inserted bounds checks); out-of-range ToRs still panic.
func (n *Network) meets(tor topology.SwitchID, counts, total []int64) bool {
	i := int(tor)
	if i < 0 || i >= len(counts) || i >= len(total) || i >= len(n.constraint) {
		panic(panicToRRange)
	}
	if total[i] == 0 {
		return n.constraint[i] <= 0
	}
	frac := float64(counts[i]) / float64(total[i])
	return frac+constraintSlack >= n.constraint[i]
}

// refreshToR re-evaluates one ToR's constraint status against the
// incremental counts, maintaining numViolated.
func (n *Network) refreshToR(tor topology.SwitchID) {
	now := n.meets(tor, n.pc.IncCounts(), n.pc.Total())
	if now != n.meetsNow[tor] {
		n.meetsNow[tor] = now
		if now {
			n.numViolated--
		} else {
			n.numViolated++
		}
	}
}

// refreshToRs re-evaluates the given ToRs (typically the changed set of an
// incremental toggle).
func (n *Network) refreshToRs(tors []topology.SwitchID) {
	for _, tor := range tors {
		n.refreshToR(tor)
	}
}

// recomputeViolated rebuilds the per-ToR constraint status from scratch.
func (n *Network) recomputeViolated() {
	n.numViolated = 0
	counts, total := n.pc.IncCounts(), n.pc.Total()
	for _, tor := range n.topo.ToRs() {
		ok := n.meets(tor, counts, total)
		n.meetsNow[tor] = ok
		if !ok {
			n.numViolated++
		}
	}
}

// resetState replaces the disabled set wholesale (used by LoadState): one
// full incremental re-sweep, then a constraint-status rebuild.
func (n *Network) resetState(disabled []topology.LinkID) {
	set := topology.NewLinkSet(n.topo.NumLinks())
	for _, l := range disabled {
		set.Add(l)
	}
	n.pc.ResetIncremental(set)
	n.numDisabled = n.disabled.Len()
	n.recomputeViolated()
	if n.penalty != nil {
		// The disabled set changed wholesale: refresh every corrupting
		// link's contribution, then re-sum exactly.
		n.corrupting.Each(func(l topology.LinkID) {
			var c float64
			if r := n.rate[l]; r > 0 && !n.disabled.Has(l) {
				c = n.penalty(r)
			}
			n.contrib[l] = c
		})
		n.rebuildPenaltySum()
	}
}

// ViolatedToRs returns the ToRs whose capacity constraints are violated
// when, in addition to the currently disabled links, every link in extra is
// disabled. A nil extra checks the current state in O(|ToRs|) using the
// incrementally-maintained constraint status.
func (n *Network) ViolatedToRs(extra map[topology.LinkID]bool) []topology.SwitchID {
	if extra == nil {
		var out []topology.SwitchID
		for _, tor := range n.topo.ToRs() {
			if !n.meetsNow[tor] {
				out = append(out, tor)
			}
		}
		return out
	}
	counts := n.pc.Count(n.composite(extra))
	total := n.pc.Total()
	var out []topology.SwitchID
	for _, tor := range n.topo.ToRs() {
		if !n.meets(tor, counts, total) {
			out = append(out, tor)
		}
	}
	return out
}

// violatedUnder returns the ToRs violated when, in addition to the current
// disabled set, every link in extra is disabled — evaluated by incremental
// Apply probes (one downstream-cone delta per link) instead of a full
// topology sweep, and fully reverted before returning. A nil tors scans every
// ToR; a non-nil tors restricts the scan to those switches, which is exact
// when every link in extra has all its downstream ToRs in tors (the segment
// boundary invariant). applied and out are optional scratch buffers
// (overwritten from length zero); the result slices alias them, so each
// caller must own its buffers and must not retain the result past its next
// call.
func (n *Network) violatedUnder(tors []topology.SwitchID, extra, applied []topology.LinkID, out []topology.SwitchID) ([]topology.SwitchID, []topology.LinkID) {
	applied = applied[:0]
	for _, l := range extra {
		if !n.disabled.Has(l) {
			n.pc.Apply(l)
			applied = append(applied, l)
		}
	}
	counts, total := n.pc.IncCounts(), n.pc.Total()
	out = out[:0]
	if tors == nil {
		tors = n.topo.ToRs()
	}
	for _, tor := range tors {
		if !n.meets(tor, counts, total) {
			out = append(out, tor)
		}
	}
	for _, l := range applied {
		n.pc.Revert(l)
	}
	return out, applied
}

// FeasibleToRs reports whether every ToR in tors meets its constraint with
// the current disabled set plus extra. The count is scoped to the upward
// closure of tors, so the check touches O(cone) switches, not O(|V|).
func (n *Network) FeasibleToRs(tors []topology.SwitchID, extra map[topology.LinkID]bool) bool {
	counts := n.pc.CountScoped(tors, n.composite(extra))
	return n.meetsAll(tors, counts, n.pc.Total())
}

// meetsAll reports whether every ToR in tors meets its constraint under the
// given counts.
func (n *Network) meetsAll(tors []topology.SwitchID, counts, total []int64) bool {
	for _, tor := range tors {
		if !n.meets(tor, counts, total) {
			return false
		}
	}
	return true
}

// Feasible reports whether every ToR meets its constraint with the current
// disabled set plus extra. A nil extra is O(1).
func (n *Network) Feasible(extra map[topology.LinkID]bool) bool {
	if extra == nil {
		return n.numViolated == 0
	}
	return len(n.ViolatedToRs(extra)) == 0
}

// composite merges the persistent disabled set with a tentative extra set.
func (n *Network) composite(extra map[topology.LinkID]bool) topology.DisabledFunc {
	if extra == nil {
		return n.DisabledFunc()
	}
	return func(l topology.LinkID) bool { return n.disabled.Has(l) || extra[l] }
}

// WorstToRFraction reports the minimum per-ToR available-path fraction in
// the current state (Figures 15 and 16). O(|ToRs|): reads the incremental
// counts directly.
func (n *Network) WorstToRFraction() float64 {
	counts, total := n.pc.IncCounts(), n.pc.Total()
	worst := 1.0
	for _, tor := range n.topo.ToRs() {
		var f float64
		if total[tor] > 0 {
			f = float64(counts[tor]) / float64(total[tor])
		}
		if f < worst {
			worst = f
		}
	}
	return worst
}

// MeanToRFraction reports the average per-ToR available-path fraction in
// the current state (§7.3's capacity-cost metric). O(|ToRs|).
func (n *Network) MeanToRFraction() float64 {
	tors := n.topo.ToRs()
	if len(tors) == 0 {
		return 0
	}
	counts, total := n.pc.IncCounts(), n.pc.Total()
	sum := 0.0
	for _, tor := range tors {
		if total[tor] > 0 {
			sum += float64(counts[tor]) / float64(total[tor])
		}
	}
	return sum / float64(len(tors))
}

// TotalPenalty sums penalty(rate) over enabled corrupting links: the
// objective Σ (1 - d_l) · I(f_l) of §5.1.
func (n *Network) TotalPenalty(p PenaltyFunc) float64 {
	sum := 0.0
	for l, r := range n.rate {
		if r > 0 && !n.disabled.Has(topology.LinkID(l)) {
			sum += p(r)
		}
	}
	return sum
}
