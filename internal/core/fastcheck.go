package core

import "corropt/internal/topology"

// FastChecker implements CorrOpt's first phase (§5.1): when a link starts
// corrupting packets, decide quickly — but using global path counts rather
// than a switch-local rule — whether it can be disabled without violating
// any ToR's capacity constraint.
//
// The check counts the valley-free paths of every ToR with the candidate
// link removed, one O(|V|+|E|) bottom-up sweep, so a decision takes
// milliseconds even on the largest data centers the paper studies.
type FastChecker struct {
	net *Network
}

// NewFastChecker returns a FastChecker over net.
func NewFastChecker(net *Network) *FastChecker { return &FastChecker{net: net} }

// CanDisable reports whether link l can be disabled right now without
// violating any ToR capacity constraint. Already-disabled links are
// trivially "disableable" (no state change).
func (fc *FastChecker) CanDisable(l topology.LinkID) bool {
	if fc.net.Disabled(l) {
		return true
	}
	// Only ToRs downstream of l can lose paths; checking just those is the
	// paper's "check the downstream of l" refinement.
	tors := fc.net.Topology().DownstreamToRs(l)
	return fc.net.FeasibleToRs(tors, map[topology.LinkID]bool{l: true})
}

// DisableIfSafe disables l if the capacity constraints allow it and reports
// whether it did.
func (fc *FastChecker) DisableIfSafe(l topology.LinkID) bool {
	if fc.net.Disabled(l) {
		return false
	}
	if !fc.CanDisable(l) {
		return false
	}
	fc.net.Disable(l)
	return true
}

// Sweep runs the fast check over every active corrupting link at or above
// threshold, in decreasing corruption-rate order (most harmful first, so
// when capacity is scarce it protects against the worst offenders), and
// disables those that pass. It returns the links it disabled.
//
// The paper notes that as long as no link was activated since the last run,
// the network is maximal after a sweep — no further link can be disabled —
// so Sweep only needs to run on new corrupting links or after activations.
func (fc *FastChecker) Sweep(threshold float64) []topology.LinkID {
	active := fc.net.ActiveCorrupting(threshold)
	// Sort by corruption rate, highest first.
	for i := 1; i < len(active); i++ {
		for j := i; j > 0 && fc.net.CorruptionRate(active[j]) > fc.net.CorruptionRate(active[j-1]); j-- {
			active[j], active[j-1] = active[j-1], active[j]
		}
	}
	var disabled []topology.LinkID
	for _, l := range active {
		if fc.DisableIfSafe(l) {
			disabled = append(disabled, l)
		}
	}
	return disabled
}
