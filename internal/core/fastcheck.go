package core

import (
	"sort"

	"corropt/internal/topology"
)

// FastChecker implements CorrOpt's first phase (§5.1): when a link starts
// corrupting packets, decide quickly — but using global path counts rather
// than a switch-local rule — whether it can be disabled without violating
// any ToR's capacity constraint.
//
// The check is incremental: disabling the candidate link is probed with an
// Apply/Revert delta pair on the network's path counter, touching only the
// link's downstream cone (one pod or less on a Clos topology) instead of
// re-sweeping the whole data center. The paper reports 100–300 ms per
// decision for its full-recount Python prototype on a 35K-link data center;
// the incremental engine answers in microseconds with zero allocations.
type FastChecker struct {
	net *Network
}

// NewFastChecker returns a FastChecker over net.
func NewFastChecker(net *Network) *FastChecker { return &FastChecker{net: net} }

// CanDisable reports whether link l can be disabled right now without
// violating any ToR capacity constraint. Already-disabled links are
// trivially "disableable" (no state change).
//
//lint:hotpath the per-corruption-event decision the paper budgets in §5.1
func (fc *FastChecker) CanDisable(l topology.LinkID) bool {
	n := fc.net
	if n.Disabled(l) {
		return true
	}
	pc := n.PathCounter()
	// Probe: apply the single-link delta, inspect, revert. Only ToRs
	// downstream of l can lose paths — the paper's "check the downstream of
	// l" refinement — and the propagation visits exactly those whose counts
	// actually change.
	changed := pc.Apply(l)
	counts, total := pc.IncCounts(), pc.Total()
	ok := true
	if n.numViolated == 0 {
		// Every ToR meets its constraint right now, so ToRs whose counts
		// did not change still do; checking the changed set is exact.
		for _, tor := range changed {
			if !n.meets(tor, counts, total) {
				ok = false
				break
			}
		}
	} else {
		// Rare path: some ToR is already in violation (links were forced
		// down or constraints tightened). Match the full-check semantics,
		// which refuses when any downstream ToR of l is infeasible even if
		// l does not change its count.
		//lint:allow hotalloc DownstreamToRs allocates on the rare already-violated path only
		for _, tor := range n.topo.DownstreamToRs(l) {
			if !n.meets(tor, counts, total) {
				ok = false
				break
			}
		}
	}
	pc.Revert(l)
	return ok
}

// DisableIfSafe disables l if the capacity constraints allow it and reports
// whether it did.
func (fc *FastChecker) DisableIfSafe(l topology.LinkID) bool {
	if fc.net.Disabled(l) {
		return false
	}
	if !fc.CanDisable(l) {
		return false
	}
	fc.net.Disable(l)
	return true
}

// Sweep runs the fast check over every active corrupting link at or above
// threshold, in decreasing corruption-rate order (most harmful first, so
// when capacity is scarce it protects against the worst offenders), and
// disables those that pass. It returns the links it disabled.
//
// The paper notes that as long as no link was activated since the last run,
// the network is maximal after a sweep — no further link can be disabled —
// so Sweep only needs to run on new corrupting links or after activations.
func (fc *FastChecker) Sweep(threshold float64) []topology.LinkID {
	active := fc.net.ActiveCorrupting(threshold)
	// Sort by corruption rate, highest first; ties broken by LinkID so the
	// sweep order (and therefore the disabled set) is deterministic.
	sort.Slice(active, func(i, j int) bool {
		ri, rj := fc.net.CorruptionRate(active[i]), fc.net.CorruptionRate(active[j])
		if ri != rj {
			return ri > rj
		}
		return active[i] < active[j]
	})
	var disabled []topology.LinkID
	for _, l := range active {
		if fc.DisableIfSafe(l) {
			disabled = append(disabled, l)
		}
	}
	return disabled
}
