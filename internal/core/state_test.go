package core

import (
	"bytes"
	"strings"
	"testing"

	"corropt/internal/topology"
)

func TestStateRoundTrip(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.5)
	n.Disable(1)
	n.Disable(3)
	n.SetCorruption(1, 1e-3)
	n.SetCorruption(5, 1e-4)
	tor := topo.ToRs()[0]
	if err := n.SetToRConstraint(tor, 0.9); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := n.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// A freshly built network over the same topology resumes identically.
	m, _ := NewNetwork(topo, 0.5)
	if err := m.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < topo.NumLinks(); l++ {
		id := topology.LinkID(l)
		if m.Disabled(id) != n.Disabled(id) {
			t.Fatalf("link %d disabled state differs", l)
		}
		if m.CorruptionRate(id) != n.CorruptionRate(id) {
			t.Fatalf("link %d rate differs", l)
		}
	}
	if m.Constraint(tor) != 0.9 {
		t.Fatalf("constraint = %v", m.Constraint(tor))
	}
}

func TestLoadStateClearsPrevious(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.5)
	var empty bytes.Buffer
	if err := n.SaveState(&empty); err != nil {
		t.Fatal(err)
	}
	m, _ := NewNetwork(topo, 0.5)
	m.Disable(2)
	m.SetCorruption(2, 1e-2)
	if err := m.LoadState(&empty); err != nil {
		t.Fatal(err)
	}
	if m.Disabled(2) || m.CorruptionRate(2) != 0 {
		t.Fatal("LoadState did not replace prior state")
	}
}

func TestLoadStateRejectsWrongTopology(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.5)
	var buf bytes.Buffer
	if err := n.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewNetwork(other, 0.5)
	if err := m.LoadState(&buf); err == nil {
		t.Fatal("state for a different topology accepted")
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.5)
	cases := []string{
		`{not json`,
		`{"fingerprint":1}`,
	}
	for i, c := range cases {
		if err := n.LoadState(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Valid fingerprint but invalid contents.
	var buf bytes.Buffer
	n.SaveState(&buf)
	s := strings.Replace(buf.String(), `"disabled": null`, `"disabled": [99999]`, 1)
	if err := n.LoadState(strings.NewReader(s)); err == nil {
		t.Error("out-of-range link id accepted")
	}
}
