package core

import (
	"math"
	"testing"
	"testing/quick"

	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

// TestFastCheckerNeverViolates: across random topologies, random corruption
// and random report orders, the fast checker never leaves any ToR below its
// constraint.
func TestFastCheckerNeverViolates(t *testing.T) {
	rng := rngutil.New(41)
	for trial := 0; trial < 25; trial++ {
		topo, err := topology.NewClos(topology.ClosConfig{
			Pods:               1 + rng.Intn(3),
			ToRsPerPod:         1 + rng.Intn(4),
			AggsPerPod:         1 + rng.Intn(4),
			Spines:             8,
			SpineUplinksPerAgg: 1 + rng.Intn(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		c := rng.Range(0.2, 0.9)
		net, err := NewNetwork(topo, c)
		if err != nil {
			t.Fatal(err)
		}
		// Heterogeneous thresholds on a few ToRs.
		for _, tor := range topo.ToRs() {
			if rng.Bool(0.3) {
				if err := net.SetToRConstraint(tor, rng.Range(0.1, 0.95)); err != nil {
					t.Fatal(err)
				}
			}
		}
		fc := NewFastChecker(net)
		for i := 0; i < topo.NumLinks()/2; i++ {
			l := topology.LinkID(rng.Intn(topo.NumLinks()))
			net.SetCorruption(l, math.Pow(10, rng.Range(-6, -2)))
			fc.DisableIfSafe(l)
			if violated := net.ViolatedToRs(nil); len(violated) != 0 {
				t.Fatalf("trial %d: fast checker violated constraints of %v", trial, violated)
			}
		}
	}
}

// TestFastCheckerSweepMaximal: after a sweep, no active corrupting link can
// be disabled — the maximality property §5.1 claims for the fast checker.
func TestFastCheckerSweepMaximal(t *testing.T) {
	rng := rngutil.New(42)
	for trial := 0; trial < 20; trial++ {
		net := randomCorruptionScenario(t, uint64(trial)+500, 12)
		fc := NewFastChecker(net)
		fc.Sweep(1e-7)
		for _, l := range net.ActiveCorrupting(1e-7) {
			if fc.CanDisable(l) {
				t.Fatalf("trial %d: link %d still disableable after sweep", trial, l)
			}
		}
	}
	_ = rng
}

// TestOptimizerNeverViolates: whatever the optimizer chooses, every ToR —
// including those with custom thresholds — stays within its constraint.
func TestOptimizerNeverViolates(t *testing.T) {
	rng := rngutil.New(43)
	for trial := 0; trial < 20; trial++ {
		net := randomCorruptionScenario(t, uint64(trial)+900, 12)
		topo := net.Topology()
		for _, tor := range topo.ToRs() {
			if rng.Bool(0.4) {
				if err := net.SetToRConstraint(tor, rng.Range(0.1, 0.95)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !net.Feasible(nil) {
			continue // random thresholds may start violated; skip
		}
		opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{})
		opt.Run(1e-7)
		if violated := net.ViolatedToRs(nil); len(violated) != 0 {
			t.Fatalf("trial %d: optimizer violated %v", trial, violated)
		}
	}
}

// TestOptimizerMatchesBruteForceHeterogeneous: exactness holds with
// per-ToR thresholds too.
func TestOptimizerMatchesBruteForceHeterogeneous(t *testing.T) {
	rng := rngutil.New(44)
	for trial := 0; trial < 15; trial++ {
		net := randomCorruptionScenario(t, uint64(trial)+1300, 9)
		topo := net.Topology()
		for _, tor := range topo.ToRs() {
			if rng.Bool(0.5) {
				if err := net.SetToRConstraint(tor, rng.Range(0.2, 0.9)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !net.Feasible(nil) {
			continue
		}
		want := bruteForceBest(net, 1e-7, LinearPenalty)
		opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{})
		disabled, st := opt.Run(1e-7)
		got := disabledPenalty(net, disabled, LinearPenalty)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: penalty %v, brute force %v (stats %+v)", trial, got, want, st)
		}
	}
}

// TestOptimizerMaximal: no single additional corrupting link can be
// disabled after an optimizer run (optimality implies maximality for
// strictly positive penalties).
func TestOptimizerMaximal(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		net := randomCorruptionScenario(t, uint64(trial)+1700, 12)
		opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{})
		opt.Run(1e-7)
		for _, l := range net.ActiveCorrupting(1e-7) {
			if net.Feasible(map[topology.LinkID]bool{l: true}) {
				t.Fatalf("trial %d: link %d (rate %v) could still be disabled",
					trial, l, net.CorruptionRate(l))
			}
		}
	}
}

// TestPathCountMonotone: disabling more links never increases any switch's
// path count — the monotonicity that makes the reject cache and pruning
// sound.
func TestPathCountMonotone(t *testing.T) {
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 2, ToRsPerPod: 3, AggsPerPod: 3, Spines: 6, SpineUplinksPerAgg: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc := topology.NewPathCounter(topo)
	f := func(seedA, seedB uint16) bool {
		rngA := rngutil.New(uint64(seedA))
		setA := make(map[topology.LinkID]bool)
		for i := 0; i < 5; i++ {
			setA[topology.LinkID(rngA.Intn(topo.NumLinks()))] = true
		}
		// setB ⊇ setA.
		setB := make(map[topology.LinkID]bool, len(setA))
		for l := range setA {
			setB[l] = true
		}
		rngB := rngutil.New(uint64(seedB))
		for i := 0; i < 5; i++ {
			setB[topology.LinkID(rngB.Intn(topo.NumLinks()))] = true
		}
		a := append([]int64(nil), pc.Count(func(l topology.LinkID) bool { return setA[l] })...)
		b := pc.Count(func(l topology.LinkID) bool { return setB[l] })
		for i := range a {
			if b[i] > a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSwitchLocalImpliesGlobal: the sc = c^(1/r) mapping is exactly strong
// enough — per-switch keep-fractions multiply along any ToR→spine path.
func TestSwitchLocalImpliesGlobal(t *testing.T) {
	f := func(cRaw uint8, pattern uint16) bool {
		c := 0.3 + 0.6*float64(cRaw)/255
		topo, err := topology.NewClos(topology.ClosConfig{
			Pods: 2, ToRsPerPod: 2, AggsPerPod: 4, Spines: 8, SpineUplinksPerAgg: 4,
		})
		if err != nil {
			return false
		}
		net, err := NewNetwork(topo, c)
		if err != nil {
			return false
		}
		sl, err := NewSwitchLocal(net, c)
		if err != nil {
			return false
		}
		// Corrupt a pseudo-random subset and sweep.
		for l := 0; l < topo.NumLinks(); l++ {
			if pattern&(1<<(uint(l)%16)) != 0 && l%3 == 0 {
				net.SetCorruption(topology.LinkID(l), 1e-3)
			}
		}
		sl.Sweep(1e-6)
		return net.WorstToRFraction()+1e-9 >= c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizerBudgetExhaustion: with a tiny feasibility budget the search
// still returns a feasible (if suboptimal) answer and reports the event.
func TestOptimizerBudgetExhaustion(t *testing.T) {
	net, _ := fig10(t)
	opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{MaxFeasibilityChecks: 3})
	disabled, st := opt.Run(1e-6)
	if st.BudgetExhausted == 0 {
		t.Fatalf("budget not exhausted: %+v", st)
	}
	if !net.Feasible(nil) {
		t.Fatal("budget-limited optimizer violated constraints")
	}
	_ = disabled
}
