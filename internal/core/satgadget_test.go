package core

import (
	"testing"

	"corropt/internal/rngutil"
)

func TestFormulaValidate(t *testing.T) {
	ok := Formula{NumVars: 2, Clauses: []Clause{{1, -2, 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Formula{
		{NumVars: 0, Clauses: []Clause{{1, 1, 1}}},
		{NumVars: 2},
		{NumVars: 2, Clauses: []Clause{{1, 2, 3}}},
		{NumVars: 2, Clauses: []Clause{{1, 0, 2}}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad formula %d accepted", i)
		}
	}
}

func TestSatisfiableBruteForce(t *testing.T) {
	sat := Formula{NumVars: 2, Clauses: []Clause{{1, 2, 2}, {-1, 2, 2}}}
	if !sat.Satisfiable() {
		t.Fatal("satisfiable formula rejected")
	}
	// x ∧ ¬x in every combination of a single variable.
	unsat := Formula{NumVars: 1, Clauses: []Clause{{1, 1, 1}, {-1, -1, -1}}}
	if unsat.Satisfiable() {
		t.Fatal("unsatisfiable formula accepted")
	}
}

func TestGadgetSatisfiable(t *testing.T) {
	// (x1 ∨ x2 ∨ ¬x3) ∧ (¬x1 ∨ x2 ∨ x3) ∧ (x1 ∨ ¬x2 ∨ x3): satisfiable.
	f := Formula{NumVars: 3, Clauses: []Clause{
		{1, 2, -3}, {-1, 2, 3}, {1, -2, 3},
	}}
	if !f.Satisfiable() {
		t.Fatal("test formula should be satisfiable")
	}
	g, err := BuildGadget(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.FaultyLinks); got != 2*f.NumVars {
		t.Fatalf("faulty links = %d, want %d", got, 2*f.NumVars)
	}
	n := g.MaxDisabled(OptimizerConfig{})
	if n != f.NumVars {
		t.Fatalf("optimizer disabled %d faulty links, want %d", n, f.NumVars)
	}
	if !g.AssignmentSatisfies() {
		t.Fatalf("extracted assignment %v does not satisfy the formula", g.Assignment())
	}
}

func TestGadgetUnsatisfiable(t *testing.T) {
	// Encode x1 ∧ ¬x1 via duplicated literals.
	f := Formula{NumVars: 1, Clauses: []Clause{{1, 1, 1}, {-1, -1, -1}}}
	g, err := BuildGadget(f)
	if err != nil {
		t.Fatal(err)
	}
	n := g.MaxDisabled(OptimizerConfig{})
	if n >= f.NumVars {
		t.Fatalf("optimizer disabled %d links on an unsatisfiable instance, want < %d", n, f.NumVars)
	}
}

// randomFormula builds a random 3-SAT instance with the given dimensions.
func randomFormula(rng *rngutil.Source, vars, clauses int) Formula {
	f := Formula{NumVars: vars}
	for i := 0; i < clauses; i++ {
		var c Clause
		for j := range c {
			v := rng.Intn(vars) + 1
			if rng.Bool(0.5) {
				v = -v
			}
			c[j] = Literal(v)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

func TestGadgetMatchesSATOracle(t *testing.T) {
	// Property: optimizer disables exactly NumVars faulty links iff the
	// formula is satisfiable (Lemma A.1), across random instances near the
	// sat/unsat threshold (clauses ≈ 4.3 × vars).
	rng := rngutil.New(2024)
	satSeen, unsatSeen := 0, 0
	for i := 0; i < 60; i++ {
		vars := 2 + rng.Intn(4)
		clauses := vars*4 + rng.Intn(4)
		f := randomFormula(rng, vars, clauses)
		g, err := BuildGadget(f)
		if err != nil {
			t.Fatal(err)
		}
		n := g.MaxDisabled(OptimizerConfig{})
		want := f.Satisfiable()
		if want {
			satSeen++
			if n != vars {
				t.Fatalf("instance %d: satisfiable but optimizer disabled %d of %d", i, n, vars)
			}
			if !g.AssignmentSatisfies() {
				t.Fatalf("instance %d: assignment does not satisfy", i)
			}
		} else {
			unsatSeen++
			if n >= vars {
				t.Fatalf("instance %d: unsatisfiable but optimizer disabled %d ≥ %d", i, n, vars)
			}
		}
	}
	if satSeen == 0 || unsatSeen == 0 {
		t.Fatalf("weak test coverage: %d sat / %d unsat instances", satSeen, unsatSeen)
	}
}

func TestGadgetNeverDisconnects(t *testing.T) {
	rng := rngutil.New(7)
	for i := 0; i < 20; i++ {
		f := randomFormula(rng, 3, 10)
		g, err := BuildGadget(f)
		if err != nil {
			t.Fatal(err)
		}
		g.MaxDisabled(OptimizerConfig{})
		// Every ToR must keep at least one path.
		counts := g.Net.PathCounter().Count(g.Net.DisabledFunc())
		for _, tor := range g.Net.Topology().ToRs() {
			if counts[tor] < 1 {
				t.Fatalf("instance %d: ToR %s disconnected", i, g.Net.Topology().Switch(tor).Name)
			}
		}
	}
}
