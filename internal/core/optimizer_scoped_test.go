package core

import (
	"slices"
	"testing"

	"corropt/internal/topology"
)

// scopedTestTopo is a 4-pod Clos whose pods partition into 4 independent
// segments, with enough corrupting links per pod that the optimizer has both
// safe disables and contested capacity decisions to make.
func scopedTestTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods:               4,
		ToRsPerPod:         6,
		AggsPerPod:         3,
		Spines:             9,
		SpineUplinksPerAgg: 3,
		BreakoutSize:       0,
	})
	if err != nil {
		t.Fatalf("NewClos: %v", err)
	}
	return topo
}

// corruptScopedPattern corrupts, in pods 0 and 2: every uplink of the pod's
// first ToR (so disabling all of them would violate capacity), plus a few
// agg→spine links.
func corruptScopedPattern(net *Network, topo *topology.Topology, segs []topology.Segment) {
	for _, si := range []int{0, 2} {
		seg := segs[si]
		tor := seg.ToRs[0]
		for _, l := range topo.Switch(tor).Uplinks {
			net.SetCorruption(l, 1e-3)
		}
		// Every third agg→spine link of the segment.
		n := 0
		for _, l := range seg.Links {
			if topo.Switch(topo.Link(l).Lower).Stage == 1 {
				if n%3 == 0 {
					net.SetCorruption(l, 1e-4)
				}
				n++
			}
		}
	}
}

// TestRunScopedMatchesRun pins the sharding contract: running the optimizer
// once per cone-closed segment (scoped links + scoped ToR scan) chooses
// exactly the links a single whole-topology Run would, and leaves the
// network in the same state.
func TestRunScopedMatchesRun(t *testing.T) {
	topo := scopedTestTopo(t)
	segs := topo.Partition()
	if len(segs) != 4 {
		t.Fatalf("got %d segments, want 4", len(segs))
	}

	const threshold = 1e-6
	build := func() *Network {
		net, err := NewNetwork(topo, 0.5)
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}
		corruptScopedPattern(net, topo, segs)
		return net
	}

	netFull := build()
	full, fullStats := NewOptimizer(netFull, nil, OptimizerConfig{}).Run(threshold)
	if fullStats.Active == 0 || len(full) == 0 {
		t.Fatalf("reference Run disabled nothing (stats %+v)", fullStats)
	}
	if len(full) == fullStats.Active {
		t.Fatalf("reference Run disabled every active link; pattern does not exercise capacity decisions")
	}

	netScoped := build()
	opt := NewOptimizer(netScoped, nil, OptimizerConfig{})
	var scoped []topology.LinkID
	activeTotal := 0
	for _, seg := range segs {
		scope := topology.NewLinkSet(topo.NumLinks())
		for _, l := range seg.Links {
			scope.Add(l)
		}
		chosen, st := opt.RunScoped(threshold, scope, seg.ToRs)
		scoped = append(scoped, chosen...)
		activeTotal += st.Active
	}
	if activeTotal != fullStats.Active {
		t.Errorf("scoped runs saw %d active links, full run %d", activeTotal, fullStats.Active)
	}

	sortedFull := slices.Clone(full)
	slices.Sort(sortedFull)
	sortedScoped := slices.Clone(scoped)
	slices.Sort(sortedScoped)
	if !slices.Equal(sortedFull, sortedScoped) {
		t.Fatalf("scoped disables %v != full-run disables %v", sortedScoped, sortedFull)
	}
	if got, want := netScoped.NumDisabled(), netFull.NumDisabled(); got != want {
		t.Fatalf("scoped network has %d disabled, full has %d", got, want)
	}
	if !netScoped.Feasible(nil) || !netFull.Feasible(nil) {
		t.Fatalf("networks left infeasible")
	}
}

// TestRunScopedNilIsRun pins that a nil scope and nil ToR list degrade to
// exactly Run, and that a full-topology scope does too.
func TestRunScopedNilIsRun(t *testing.T) {
	topo := scopedTestTopo(t)
	segs := topo.Partition()
	const threshold = 1e-6

	var want []topology.LinkID
	var wantStats OptimizeStats
	for mode := 0; mode < 3; mode++ {
		net, err := NewNetwork(topo, 0.5)
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}
		corruptScopedPattern(net, topo, segs)
		opt := NewOptimizer(net, nil, OptimizerConfig{})
		var got []topology.LinkID
		var st OptimizeStats
		switch mode {
		case 0:
			got, st = opt.Run(threshold)
		case 1:
			got, st = opt.RunScoped(threshold, nil, nil)
		case 2:
			all := topology.NewLinkSet(topo.NumLinks())
			topo.Links(func(l *topology.Link) { all.Add(l.ID) })
			got, st = opt.RunScoped(threshold, all, nil)
		}
		if mode == 0 {
			want, wantStats = got, st
			continue
		}
		if !slices.Equal(got, want) || st != wantStats {
			t.Fatalf("mode %d: got %v (%+v), want %v (%+v)", mode, got, st, want, wantStats)
		}
	}
}
