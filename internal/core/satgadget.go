package core

import (
	"fmt"

	"corropt/internal/topology"
)

// This file implements the Appendix A reduction proving Theorem 5.1:
// deciding which links to disable in a Clos topology so that the total
// corruption penalty is minimized under capacity constraints is NP-complete,
// via 3-SAT. Building the gadget as executable code serves two purposes:
// it documents the construction precisely, and it gives the test suite a
// family of adversarial inputs on which the optimizer's answer has a known
// ground truth (satisfiable ⟺ r faulty links can be disabled).

// Literal is a 3-SAT literal: +v for variable v, -v for its negation
// (variables are numbered from 1).
type Literal int

// Clause is a disjunction of exactly three literals.
type Clause [3]Literal

// Formula is a 3-SAT instance.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks that every literal references a declared variable.
func (f Formula) Validate() error {
	if f.NumVars <= 0 {
		return fmt.Errorf("core: formula needs at least one variable")
	}
	if len(f.Clauses) == 0 {
		return fmt.Errorf("core: formula needs at least one clause")
	}
	for i, c := range f.Clauses {
		for _, lit := range c {
			v := int(lit)
			if v < 0 {
				v = -v
			}
			if v == 0 || v > f.NumVars {
				return fmt.Errorf("core: clause %d references undeclared variable in literal %d", i, lit)
			}
		}
	}
	return nil
}

// Satisfiable decides the formula by brute force; it is exponential in
// NumVars and exists to cross-check the gadget in tests.
func (f Formula) Satisfiable() bool {
	for mask := 0; mask < 1<<uint(f.NumVars); mask++ {
		if f.satisfiedBy(mask) {
			return true
		}
	}
	return false
}

func (f Formula) satisfiedBy(mask int) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, lit := range c {
			v := int(lit)
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			val := mask&(1<<uint(v-1)) != 0
			if val != neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Gadget is the Appendix A construction instantiated for one formula.
type Gadget struct {
	// Net is the degraded pod: clause ToRs C_i wired to the aggregation
	// switches of their literals, helper ToRs H_j enforcing that at most
	// one of each literal pair loses its spine link, and one faulty
	// spine uplink per literal.
	Net *Network
	// FaultyLinks is L: the 2r corrupting aggregation→spine links, all
	// with identical corruption rates.
	FaultyLinks []topology.LinkID
	// LitLink maps each literal to its spine link; disabling the link
	// corresponds to assigning the literal false.
	LitLink map[Literal]topology.LinkID
	formula Formula
}

// gadgetRate is the common corruption rate of the faulty links; any
// positive value works since all penalties are equal.
const gadgetRate = 1e-3

// BuildGadget constructs the reduction for f. Following Lemma A.1 the
// gadget is the already-degraded pod: links the construction turns off are
// simply not built, and every ToR's capacity constraint demands only
// valley-free connectivity to the spine (at least one surviving path).
func BuildGadget(f Formula) (*Gadget, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	b := topology.NewBuilder()
	r := f.NumVars
	k := len(f.Clauses)

	// One spine switch and one aggregation switch per literal.
	aggOf := make(map[Literal]topology.SwitchID, 2*r)
	spineOf := make(map[Literal]topology.SwitchID, 2*r)
	for v := 1; v <= r; v++ {
		for _, lit := range []Literal{Literal(v), Literal(-v)} {
			aggOf[lit] = b.AddSwitch(fmt.Sprintf("agg-%s", litName(lit)), 1, 0)
			spineOf[lit] = b.AddSwitch(fmt.Sprintf("spine-%s", litName(lit)), 2, -1)
		}
	}
	// Clause ToRs: C_i links to the aggregation switches of its literals.
	for i, c := range f.Clauses {
		tor := b.AddSwitch(fmt.Sprintf("C%d", i+1), 0, 0)
		for _, lit := range c {
			b.AddLink(tor, aggOf[lit], -1)
		}
	}
	// Helper ToRs: H_j (j ≤ r) links to X_j and ¬X_j, forcing at least one
	// of each literal pair to stay connected. H_{r+1..k} link to X_1, ¬X_1
	// (they only pad the pod to the paper's 2k ToRs).
	helpers := k
	if helpers < r {
		helpers = r
	}
	for j := 1; j <= helpers; j++ {
		v := j
		if v > r {
			v = 1
		}
		tor := b.AddSwitch(fmt.Sprintf("H%d", j), 0, 0)
		b.AddLink(tor, aggOf[Literal(v)], -1)
		b.AddLink(tor, aggOf[Literal(-v)], -1)
	}
	// The faulty set L: one spine uplink per literal aggregation switch,
	// all with the same corruption properties.
	litLink := make(map[Literal]topology.LinkID, 2*r)
	var faulty []topology.LinkID
	for v := 1; v <= r; v++ {
		for _, lit := range []Literal{Literal(v), Literal(-v)} {
			l := b.AddLink(aggOf[lit], spineOf[lit], -1)
			litLink[lit] = l
			faulty = append(faulty, l)
		}
	}
	topo, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: gadget build: %w", err)
	}
	// Capacity constraint: every ToR must keep at least one valley-free
	// path to the spine. A tiny positive fraction encodes exactly that
	// since path counts are integers.
	net, err := NewNetwork(topo, 1e-6)
	if err != nil {
		return nil, err
	}
	for _, l := range faulty {
		net.SetCorruption(l, gadgetRate)
	}
	return &Gadget{Net: net, FaultyLinks: faulty, LitLink: litLink, formula: f}, nil
}

func litName(lit Literal) string {
	if lit < 0 {
		return fmt.Sprintf("not-x%d", -lit)
	}
	return fmt.Sprintf("x%d", lit)
}

// MaxDisabled runs the optimizer on the gadget and reports how many faulty
// links it disabled. By Lemma A.1 the answer is NumVars exactly when the
// formula is satisfiable, and strictly fewer otherwise.
func (g *Gadget) MaxDisabled(cfg OptimizerConfig) int {
	opt := NewOptimizer(g.Net, LinearPenalty, cfg)
	disabled, _ := opt.Run(gadgetRate / 2)
	return len(disabled)
}

// Assignment extracts the truth assignment encoded by the current disabled
// set: a literal is false when its spine link is disabled, and variables
// with neither or both links disabled default to true. Valid only after
// MaxDisabled on a satisfiable formula.
func (g *Gadget) Assignment() []bool {
	out := make([]bool, g.formula.NumVars)
	for v := 1; v <= g.formula.NumVars; v++ {
		posDown := g.Net.Disabled(g.LitLink[Literal(v)])
		out[v-1] = !posDown
	}
	return out
}

// AssignmentSatisfies reports whether the extracted assignment satisfies
// the formula.
func (g *Gadget) AssignmentSatisfies() bool {
	mask := 0
	for i, v := range g.Assignment() {
		if v {
			mask |= 1 << uint(i)
		}
	}
	return g.formula.satisfiedBy(mask)
}
