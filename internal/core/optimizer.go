package core

import (
	"sort"

	"corropt/internal/topology"
)

// OptimizerConfig toggles the optimizer's acceleration techniques; all
// default to on. The ablation benches flip them individually.
type OptimizerConfig struct {
	// DisablePruning turns off topology pruning (§5.1, Figure 11): the
	// step that disables unconditionally every corrupting link not
	// upstream of a capacity-endangered ToR.
	DisablePruning bool
	// DisableSegmentation turns off topology segmentation (§8, Figure
	// 20): solving independent groups of contested links separately.
	DisableSegmentation bool
	// DisableRejectCache turns off the reject cache: memoizing infeasible
	// link subsets so any superset is rejected without a path count.
	DisableRejectCache bool
	// MaxExactLinks caps the number of links in one segment solved by
	// exact search; larger segments fall back to a greedy maximal
	// solution. Default 24 (bitmask-bounded at 62).
	MaxExactLinks int
	// MaxFeasibilityChecks bounds the exact search's work per segment;
	// when exhausted, the best subset found so far is used. Default
	// 500000. The result is then maximal-feasible but possibly not
	// optimal; Stats.BudgetExhausted records the event.
	MaxFeasibilityChecks int
	// Workers solves independent segments concurrently when > 1, each
	// worker with its own path counter. 0 or 1 is serial. Segments are
	// independent by construction (§8's segmentation argument), so the
	// answer is identical to the serial one.
	Workers int
}

func (c *OptimizerConfig) fillDefaults() {
	if c.MaxExactLinks == 0 {
		c.MaxExactLinks = 24
	}
	if c.MaxExactLinks > 62 {
		c.MaxExactLinks = 62
	}
	if c.MaxFeasibilityChecks == 0 {
		c.MaxFeasibilityChecks = 500000
	}
}

// OptimizeStats describes one optimizer run.
type OptimizeStats struct {
	// Active is the number of enabled corrupting links considered.
	Active int
	// SafelyDisabled is how many were disabled unconditionally by
	// pruning.
	SafelyDisabled int
	// Segments is the number of independent contested groups.
	Segments int
	// LargestSegment is the size of the biggest contested group.
	LargestSegment int
	// FeasibilityChecks counts full path-count evaluations.
	FeasibilityChecks int
	// RejectCacheHits counts subsets rejected by the cache without a
	// path count.
	RejectCacheHits int
	// GreedyFallbacks counts segments too large for exact search.
	GreedyFallbacks int
	// BudgetExhausted counts segments whose exact search ran out of its
	// feasibility-check budget.
	BudgetExhausted int
}

// Optimizer implements CorrOpt's second phase (§5.1): when links are
// re-enabled after repair, compute the optimal subset of the remaining
// active corrupting links to disable — the exact solution to the
// NP-complete problem of Theorem 5.1 — using topology pruning, topology
// segmentation, and a reject cache to make practical instances fast.
type Optimizer struct {
	net     *Network
	penalty PenaltyFunc
	cfg     OptimizerConfig
}

// NewOptimizer returns an Optimizer over net minimizing the given penalty.
func NewOptimizer(net *Network, penalty PenaltyFunc, cfg OptimizerConfig) *Optimizer {
	cfg.fillDefaults()
	if penalty == nil {
		penalty = LinearPenalty
	}
	return &Optimizer{net: net, penalty: penalty, cfg: cfg}
}

// Run optimizes over all active corrupting links at or above threshold,
// disables the chosen subset on the network, and returns the disabled links
// along with run statistics.
func (o *Optimizer) Run(threshold float64) ([]topology.LinkID, OptimizeStats) {
	var st OptimizeStats
	active := o.net.ActiveCorrupting(threshold)
	st.Active = len(active)
	if len(active) == 0 {
		return nil, st
	}

	extra := make(map[topology.LinkID]bool, len(active))
	for _, l := range active {
		extra[l] = true
	}
	violated := o.net.ViolatedToRs(extra)
	if len(violated) == 0 {
		// Everything can go.
		for _, l := range active {
			o.net.Disable(l)
		}
		st.SafelyDisabled = len(active)
		return active, st
	}

	var safe, contested []topology.LinkID
	if o.cfg.DisablePruning {
		contested = active
	} else {
		upstream := o.net.Topology().UpstreamLinks(violated)
		for _, l := range active {
			if upstream[l] {
				contested = append(contested, l)
			} else {
				safe = append(safe, l)
			}
		}
		// Links not upstream of any endangered ToR cannot violate
		// anything: disable immediately.
		for _, l := range safe {
			o.net.Disable(l)
		}
		st.SafelyDisabled = len(safe)
	}

	disabled := append([]topology.LinkID(nil), safe...)
	violatedSet := make(map[topology.SwitchID]bool, len(violated))
	for _, t := range violated {
		violatedSet[t] = true
	}
	segs := o.segments(contested, violatedSet, &st)
	if o.cfg.Workers > 1 && len(segs) > 1 {
		for _, l := range o.solveParallel(segs, &st) {
			o.net.Disable(l)
			disabled = append(disabled, l)
		}
	} else {
		for _, seg := range segs {
			chosen := o.solveSegment(seg, o.net.PathCounter(), &st)
			for _, l := range chosen {
				o.net.Disable(l)
				disabled = append(disabled, l)
			}
		}
	}
	return disabled, st
}

// solveParallel fans the segments out over a bounded worker pool. The
// network's disabled set and constraints are read-only while workers run;
// every worker evaluates feasibility on its own path counter, and results
// are applied only after all workers return.
func (o *Optimizer) solveParallel(segs []segment, st *OptimizeStats) []topology.LinkID {
	workers := o.cfg.Workers
	if workers > len(segs) {
		workers = len(segs)
	}
	type result struct {
		chosen []topology.LinkID
		stats  OptimizeStats
	}
	results := make([]result, len(segs))
	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			pc := topology.NewPathCounter(o.net.Topology())
			for i := range jobs {
				var local OptimizeStats
				results[i].chosen = o.solveSegment(segs[i], pc, &local)
				results[i].stats = local
			}
		}()
	}
	for i := range segs {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
	var out []topology.LinkID
	for _, res := range results {
		out = append(out, res.chosen...)
		st.FeasibilityChecks += res.stats.FeasibilityChecks
		st.RejectCacheHits += res.stats.RejectCacheHits
		st.GreedyFallbacks += res.stats.GreedyFallbacks
		st.BudgetExhausted += res.stats.BudgetExhausted
	}
	return out
}

// segment is one independent group of contested links and the endangered
// ToRs they can affect.
type segment struct {
	links []topology.LinkID
	tors  []topology.SwitchID
}

// segments groups contested links such that two links sharing an endangered
// downstream ToR land in the same group; groups can then be optimized
// independently (§8's topology segmentation).
func (o *Optimizer) segments(contested []topology.LinkID, violated map[topology.SwitchID]bool, st *OptimizeStats) []segment {
	if len(contested) == 0 {
		return nil
	}
	affected := make([][]topology.SwitchID, len(contested))
	for i, l := range contested {
		for _, tor := range o.net.Topology().DownstreamToRs(l) {
			if violated[tor] {
				affected[i] = append(affected[i], tor)
			}
		}
	}
	parent := make([]int, len(contested))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	if o.cfg.DisableSegmentation {
		for i := 1; i < len(contested); i++ {
			union(0, i)
		}
	} else {
		torOwner := make(map[topology.SwitchID]int)
		for i := range contested {
			for _, tor := range affected[i] {
				if prev, ok := torOwner[tor]; ok {
					union(prev, i)
				} else {
					torOwner[tor] = i
				}
			}
		}
	}

	groups := make(map[int]*segment)
	for i, l := range contested {
		root := find(i)
		g, ok := groups[root]
		if !ok {
			g = &segment{}
			groups[root] = g
		}
		g.links = append(g.links, l)
		g.tors = append(g.tors, affected[i]...)
	}
	out := make([]segment, 0, len(groups))
	for _, g := range groups {
		g.tors = dedupToRs(g.tors)
		out = append(out, *g)
		if len(g.links) > st.LargestSegment {
			st.LargestSegment = len(g.links)
		}
	}
	// Deterministic order for reproducibility.
	sort.Slice(out, func(i, j int) bool { return out[i].links[0] < out[j].links[0] })
	st.Segments = len(out)
	return out
}

func dedupToRs(tors []topology.SwitchID) []topology.SwitchID {
	sort.Slice(tors, func(i, j int) bool { return tors[i] < tors[j] })
	out := tors[:0]
	for i, t := range tors {
		if i == 0 || t != tors[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// solveSegment picks the subset of seg.links to disable that maximizes the
// disabled penalty while keeping seg.tors feasible, evaluating feasibility
// on the supplied path counter.
func (o *Optimizer) solveSegment(seg segment, pc *topology.PathCounter, st *OptimizeStats) []topology.LinkID {
	// Highest-penalty links first: better bounds, and the greedy fallback
	// then prefers the worst offenders.
	links := append([]topology.LinkID(nil), seg.links...)
	sort.Slice(links, func(i, j int) bool {
		pi, pj := o.penalty(o.net.CorruptionRate(links[i])), o.penalty(o.net.CorruptionRate(links[j]))
		if pi != pj {
			return pi > pj
		}
		return links[i] < links[j]
	})

	if len(links) > o.cfg.MaxExactLinks {
		st.GreedyFallbacks++
		return o.greedy(links, seg.tors, pc, st)
	}

	s := &segSolver{
		net:      o.net,
		pc:       pc,
		tors:     seg.tors,
		links:    links,
		pen:      make([]float64, len(links)),
		suffix:   make([]float64, len(links)+1),
		extra:    make(map[topology.LinkID]bool, len(links)),
		useCache: !o.cfg.DisableRejectCache,
		budget:   o.cfg.MaxFeasibilityChecks,
	}
	for i, l := range links {
		s.pen[i] = o.penalty(o.net.CorruptionRate(l))
	}
	for i := len(links) - 1; i >= 0; i-- {
		s.suffix[i] = s.suffix[i+1] + s.pen[i]
	}
	s.dfs(0, 0, 0)
	st.FeasibilityChecks += s.checks
	st.RejectCacheHits += s.cacheHits
	if s.budget <= 0 {
		st.BudgetExhausted++
	}
	var chosen []topology.LinkID
	for i, l := range links {
		if s.bestMask&(1<<uint(i)) != 0 {
			chosen = append(chosen, l)
		}
	}
	return chosen
}

// greedy disables links one at a time, worst first, keeping each only if
// the segment's ToRs stay feasible. The result is maximal but not
// necessarily optimal; it is the fallback for segments beyond exact reach.
func (o *Optimizer) greedy(links []topology.LinkID, tors []topology.SwitchID, pc *topology.PathCounter, st *OptimizeStats) []topology.LinkID {
	extra := make(map[topology.LinkID]bool, len(links))
	var chosen []topology.LinkID
	for _, l := range links {
		extra[l] = true
		st.FeasibilityChecks++
		if o.net.feasibleToRsWith(pc, tors, extra) {
			chosen = append(chosen, l)
		} else {
			delete(extra, l)
		}
	}
	return chosen
}

// segSolver is the branch-and-bound exact search over one segment. Subsets
// are explored by including or excluding links in penalty order; the
// monotonicity of the capacity constraint (disabling more links never adds
// paths) makes infeasible-subset pruning and the reject cache sound.
type segSolver struct {
	net    *Network
	pc     *topology.PathCounter
	tors   []topology.SwitchID
	links  []topology.LinkID
	pen    []float64
	suffix []float64
	extra  map[topology.LinkID]bool

	useCache bool
	cache    []uint64
	budget   int

	best     float64
	bestMask uint64

	checks    int
	cacheHits int
}

func (s *segSolver) dfs(i int, mask uint64, got float64) {
	if got > s.best {
		s.best = got
		s.bestMask = mask
	}
	if i == len(s.links) || s.budget <= 0 {
		return
	}
	// Bound: even disabling every remaining link cannot beat the best.
	if got+s.suffix[i] <= s.best {
		return
	}
	// Branch 1: disable links[i].
	cand := mask | 1<<uint(i)
	if s.feasible(cand, s.links[i]) {
		s.extra[s.links[i]] = true
		s.dfs(i+1, cand, got+s.pen[i])
		delete(s.extra, s.links[i])
	}
	// Branch 2: keep links[i] active.
	s.dfs(i+1, mask, got)
}

// feasible tests whether the current subset plus link l keeps the
// segment's ToRs within their constraints, consulting the reject cache
// first.
func (s *segSolver) feasible(cand uint64, l topology.LinkID) bool {
	if s.useCache {
		for _, m := range s.cache {
			if cand&m == m {
				s.cacheHits++
				return false
			}
		}
	}
	s.extra[l] = true
	s.checks++
	s.budget--
	ok := s.net.feasibleToRsWith(s.pc, s.tors, s.extra)
	delete(s.extra, l)
	if !ok && s.useCache {
		s.cache = append(s.cache, cand)
	}
	return ok
}
