package core

import (
	"cmp"
	"math/bits"
	"slices"

	"corropt/internal/topology"
)

// OptimizerConfig toggles the optimizer's acceleration techniques; all
// default to on. The ablation benches flip them individually.
type OptimizerConfig struct {
	// DisablePruning turns off topology pruning (§5.1, Figure 11): the
	// step that disables unconditionally every corrupting link not
	// upstream of a capacity-endangered ToR.
	DisablePruning bool
	// DisableSegmentation turns off topology segmentation (§8, Figure
	// 20): solving independent groups of contested links separately.
	DisableSegmentation bool
	// DisableRejectCache turns off the reject cache: memoizing infeasible
	// link subsets so any superset is rejected without a path count.
	DisableRejectCache bool
	// MaxExactLinks caps the number of links in one segment solved by
	// exact search; larger segments fall back to a greedy maximal
	// solution. Default 24 (bitmask-bounded at 62).
	MaxExactLinks int
	// MaxFeasibilityChecks bounds the exact search's work per segment;
	// when exhausted, the best subset found so far is used. Default
	// 500000. The result is then maximal-feasible but possibly not
	// optimal; Stats.BudgetExhausted records the event.
	MaxFeasibilityChecks int
	// MaxRejectCacheEntries caps the per-segment reject cache; when full,
	// the least-general (largest) cached subset is evicted and
	// Stats.RejectCacheEvictions incremented. Default 4096.
	MaxRejectCacheEntries int
	// Workers solves independent segments concurrently when > 1, each
	// worker with its own path counter (incremental scratch included). 0
	// or 1 is serial. Segments are independent by construction (§8's
	// segmentation argument), so the answer is identical to the serial
	// one.
	Workers int
}

func (c *OptimizerConfig) fillDefaults() {
	if c.MaxExactLinks == 0 {
		c.MaxExactLinks = 24
	}
	if c.MaxExactLinks > 62 {
		c.MaxExactLinks = 62
	}
	if c.MaxFeasibilityChecks == 0 {
		c.MaxFeasibilityChecks = 500000
	}
	if c.MaxRejectCacheEntries == 0 {
		c.MaxRejectCacheEntries = 4096
	}
}

// OptimizeStats describes one optimizer run.
type OptimizeStats struct {
	// Active is the number of enabled corrupting links considered.
	Active int
	// SafelyDisabled is how many were disabled unconditionally by
	// pruning.
	SafelyDisabled int
	// Segments is the number of independent contested groups.
	Segments int
	// LargestSegment is the size of the biggest contested group.
	LargestSegment int
	// FeasibilityChecks counts feasibility evaluations (incremental
	// Apply/check probes; the legacy full path-count sweeps are gone from
	// this path).
	FeasibilityChecks int
	// RejectCacheHits counts subsets rejected by the cache without a
	// feasibility probe.
	RejectCacheHits int
	// RejectCacheEvictions counts cache entries dropped (or refused
	// admission) because a segment's cache hit MaxRejectCacheEntries.
	RejectCacheEvictions int
	// GreedyFallbacks counts segments too large for exact search.
	GreedyFallbacks int
	// BudgetExhausted counts segments whose exact search ran out of its
	// feasibility-check budget.
	BudgetExhausted int
}

// Optimizer implements CorrOpt's second phase (§5.1): when links are
// re-enabled after repair, compute the optimal subset of the remaining
// active corrupting links to disable — the exact solution to the
// NP-complete problem of Theorem 5.1 — using topology pruning, topology
// segmentation, and a reject cache to make practical instances fast. Every
// feasibility probe inside a segment is an incremental Apply/Revert delta
// on a path counter rather than a full topology sweep, so the per-probe
// cost scales with the toggled link's downstream cone.
type Optimizer struct {
	net     *Network
	penalty PenaltyFunc
	cfg     OptimizerConfig

	// Per-Run scratch, reused across invocations: an Optimizer lives for a
	// whole simulation and Run fires on every repair event, so these
	// buffers amortize what used to be per-Run allocations. None of them
	// escape Run — the returned disabled list is always freshly allocated.
	activeBuf    []topology.LinkID
	appliedBuf   []topology.LinkID
	violatedBuf  []topology.SwitchID
	contestedBuf []topology.LinkID
	safeBuf      []topology.LinkID
	torUpBuf     []*topology.LinkSet
	upstreamBuf  *topology.LinkSet
	affectedBuf  [][]topology.SwitchID
	parentBuf    []int
	walker       topology.UpstreamWalker
}

// NewOptimizer returns an Optimizer over net minimizing the given penalty.
func NewOptimizer(net *Network, penalty PenaltyFunc, cfg OptimizerConfig) *Optimizer {
	cfg.fillDefaults()
	if penalty == nil {
		penalty = LinearPenalty
	}
	return &Optimizer{net: net, penalty: penalty, cfg: cfg}
}

// Run optimizes over all active corrupting links at or above threshold,
// disables the chosen subset on the network, and returns the disabled links
// along with run statistics.
func (o *Optimizer) Run(threshold float64) ([]topology.LinkID, OptimizeStats) {
	return o.run(threshold, nil, nil)
}

// RunScoped is Run restricted to one shard segment: only active corrupting
// links in scope are considered for disabling, and the initial feasibility
// probe scans only tors instead of every ToR, so a run costs O(segment)
// rather than O(topology).
//
// Exactness requires the segment boundary invariant from
// topology.Partition: scope must be cone-closed (every scoped link's
// downstream ToRs are all in tors) and every ToR outside tors must currently
// meet its constraint. Under those preconditions the result is identical to
// what Run would choose from the scoped links. A nil scope with nil tors is
// exactly Run.
func (o *Optimizer) RunScoped(threshold float64, scope *topology.LinkSet, tors []topology.SwitchID) ([]topology.LinkID, OptimizeStats) {
	return o.run(threshold, scope, tors)
}

func (o *Optimizer) run(threshold float64, scope *topology.LinkSet, tors []topology.SwitchID) ([]topology.LinkID, OptimizeStats) {
	var st OptimizeStats
	active := o.net.AppendActiveCorrupting(o.activeBuf[:0], threshold)
	if scope != nil {
		kept := active[:0]
		for _, l := range active {
			if scope.Has(l) {
				kept = append(kept, l)
			}
		}
		active = kept
	}
	o.activeBuf = active
	st.Active = len(active)
	if len(active) == 0 {
		return nil, st
	}

	// What breaks if everything goes? One incremental probe per active
	// link, not a full sweep.
	violated, applied := o.net.violatedUnder(tors, active, o.appliedBuf, o.violatedBuf)
	o.violatedBuf, o.appliedBuf = violated, applied
	if len(violated) == 0 {
		// Everything can go. Copy out of the scratch buffer: the returned
		// list outlives this Run.
		for _, l := range active {
			o.net.Disable(l)
		}
		st.SafelyDisabled = len(active)
		return append([]topology.LinkID(nil), active...), st
	}

	// Per-endangered-ToR upstream cones as bitsets: torUp[i] holds every
	// link that can carry violated[i]'s traffic. Their union drives the
	// pruning step, and the per-ToR sets drive segmentation (l affects
	// tor ⟺ l ∈ upstream(tor) ⟺ tor ∈ downstream(l)) without the
	// map-based downstream walks of the old implementation.
	topo := o.net.Topology()
	for len(o.torUpBuf) < len(violated) {
		o.torUpBuf = append(o.torUpBuf, &topology.LinkSet{})
	}
	torUp := o.torUpBuf[:len(violated)]
	if o.upstreamBuf == nil {
		o.upstreamBuf = &topology.LinkSet{}
	}
	upstream := o.upstreamBuf
	upstream.Reset(topo.NumLinks())
	for i, tor := range violated {
		torUp[i].Reset(topo.NumLinks())
		o.walker.FromToR(topo, tor, torUp[i])
		upstream.Union(torUp[i])
	}

	safe, contested := o.safeBuf[:0], o.contestedBuf[:0]
	if o.cfg.DisablePruning {
		contested = append(contested, active...)
	} else {
		for _, l := range active {
			if upstream.Has(l) {
				contested = append(contested, l)
			} else {
				safe = append(safe, l)
			}
		}
		// Links not upstream of any endangered ToR cannot violate
		// anything: disable immediately.
		for _, l := range safe {
			o.net.Disable(l)
		}
		st.SafelyDisabled = len(safe)
	}
	o.safeBuf, o.contestedBuf = safe, contested

	disabled := append([]topology.LinkID(nil), safe...)
	segs := o.segments(contested, violated, torUp, &st)
	if o.cfg.Workers > 1 && len(segs) > 1 {
		for _, l := range o.solveParallel(segs, &st) {
			o.net.Disable(l)
			disabled = append(disabled, l)
		}
	} else {
		for _, seg := range segs {
			chosen := o.solveSegment(seg, o.net.PathCounter(), &st)
			for _, l := range chosen {
				o.net.Disable(l)
				disabled = append(disabled, l)
			}
		}
	}
	return disabled, st
}

// solveParallel fans the segments out over a bounded worker pool. The
// network's disabled set and constraints are read-only while workers run;
// every worker evaluates feasibility on its own incremental path counter
// seeded from the network's current disabled set, and results are applied
// only after all workers return.
func (o *Optimizer) solveParallel(segs []segment, st *OptimizeStats) []topology.LinkID {
	workers := o.cfg.Workers
	if workers > len(segs) {
		workers = len(segs)
	}
	type result struct {
		chosen []topology.LinkID
		stats  OptimizeStats
	}
	results := make([]result, len(segs))
	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			// Clone the network's counter: the worker inherits the
			// current disabled set and counts in O(|V|) copies with no
			// sweep. The source counter is read-only while workers run.
			pc := o.net.PathCounter().Clone()
			for i := range jobs {
				var local OptimizeStats
				results[i].chosen = o.solveSegment(segs[i], pc, &local)
				results[i].stats = local
			}
		}()
	}
	for i := range segs {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
	var out []topology.LinkID
	for _, res := range results {
		out = append(out, res.chosen...)
		st.FeasibilityChecks += res.stats.FeasibilityChecks
		st.RejectCacheHits += res.stats.RejectCacheHits
		st.RejectCacheEvictions += res.stats.RejectCacheEvictions
		st.GreedyFallbacks += res.stats.GreedyFallbacks
		st.BudgetExhausted += res.stats.BudgetExhausted
	}
	return out
}

// segment is one independent group of contested links and the endangered
// ToRs they can affect.
type segment struct {
	links []topology.LinkID
	tors  []topology.SwitchID
}

// segments groups contested links such that two links sharing an endangered
// downstream ToR land in the same group; groups can then be optimized
// independently (§8's topology segmentation). torUp[i] must be the upstream
// link cone of violated[i].
func (o *Optimizer) segments(contested []topology.LinkID, violated []topology.SwitchID, torUp []*topology.LinkSet, st *OptimizeStats) []segment {
	if len(contested) == 0 {
		return nil
	}
	// affected and parent live in optimizer-owned scratch: segments runs
	// once per optimizer invocation, and only the per-group link/ToR
	// slices escape into the returned segments.
	affected := o.affectedBuf
	if cap(affected) < len(contested) {
		affected = make([][]topology.SwitchID, len(contested))
	} else {
		affected = affected[:len(contested)]
	}
	o.affectedBuf = affected
	for i, l := range contested {
		affected[i] = affected[i][:0]
		for j, tor := range violated {
			if torUp[j].Has(l) {
				affected[i] = append(affected[i], tor)
			}
		}
	}
	parent := o.parentBuf
	if cap(parent) < len(contested) {
		parent = make([]int, len(contested))
	} else {
		parent = parent[:len(contested)]
	}
	o.parentBuf = parent
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	if o.cfg.DisableSegmentation {
		for i := 1; i < len(contested); i++ {
			union(0, i)
		}
	} else {
		torOwner := make(map[topology.SwitchID]int)
		for i := range contested {
			for _, tor := range affected[i] {
				if prev, ok := torOwner[tor]; ok {
					union(prev, i)
				} else {
					torOwner[tor] = i
				}
			}
		}
	}

	groups := make(map[int]*segment)
	for i, l := range contested {
		root := find(i)
		g, ok := groups[root]
		if !ok {
			g = &segment{}
			groups[root] = g
		}
		g.links = append(g.links, l)
		g.tors = append(g.tors, affected[i]...)
	}
	out := make([]segment, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	// Deterministic order for reproducibility (and to keep the map-order
	// collection above inside maprange's collect-then-sort idiom).
	slices.SortFunc(out, func(a, b segment) int { return cmp.Compare(a.links[0], b.links[0]) })
	for i := range out {
		out[i].tors = dedupToRs(out[i].tors)
		if len(out[i].links) > st.LargestSegment {
			st.LargestSegment = len(out[i].links)
		}
	}
	st.Segments = len(out)
	return out
}

func dedupToRs(tors []topology.SwitchID) []topology.SwitchID {
	slices.Sort(tors)
	out := tors[:0]
	for i, t := range tors {
		if i == 0 || t != tors[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// solveSegment picks the subset of seg.links to disable that maximizes the
// disabled penalty while keeping seg.tors feasible. pc must be an
// incremental path counter whose disabled set mirrors the network's current
// one; its state is restored before returning.
func (o *Optimizer) solveSegment(seg segment, pc *topology.PathCounter, st *OptimizeStats) []topology.LinkID {
	// The incremental probes below only check ToRs whose counts change,
	// which is exact while the running state stays feasible for seg.tors.
	// If some segment ToR is infeasible before anything is disabled, every
	// candidate subset is infeasible too (disabling links never adds
	// paths), so the result is empty — same answer the full recount gives.
	if !o.net.meetsAll(seg.tors, pc.IncCounts(), pc.Total()) {
		return nil
	}

	// Highest-penalty links first: better bounds, and the greedy fallback
	// then prefers the worst offenders.
	links := append([]topology.LinkID(nil), seg.links...)
	slices.SortFunc(links, func(a, b topology.LinkID) int {
		pa, pb := o.penalty(o.net.CorruptionRate(a)), o.penalty(o.net.CorruptionRate(b))
		if pa != pb {
			return cmp.Compare(pb, pa)
		}
		return cmp.Compare(a, b)
	})

	if len(links) > o.cfg.MaxExactLinks {
		st.GreedyFallbacks++
		return o.greedy(links, pc, st)
	}

	s := &segSolver{
		net:      o.net,
		pc:       pc,
		links:    links,
		pen:      make([]float64, len(links)),
		suffix:   make([]float64, len(links)+1),
		useCache: !o.cfg.DisableRejectCache,
		cacheCap: o.cfg.MaxRejectCacheEntries,
		budget:   o.cfg.MaxFeasibilityChecks,
	}
	for i, l := range links {
		s.pen[i] = o.penalty(o.net.CorruptionRate(l))
	}
	for i := len(links) - 1; i >= 0; i-- {
		s.suffix[i] = s.suffix[i+1] + s.pen[i]
	}
	s.dfs(0, 0, 0)
	st.FeasibilityChecks += s.checks
	st.RejectCacheHits += s.cacheHits
	st.RejectCacheEvictions += s.cacheEvictions
	if s.budget <= 0 {
		st.BudgetExhausted++
	}
	var chosen []topology.LinkID
	for i, l := range links {
		if s.bestMask&(1<<uint(i)) != 0 {
			chosen = append(chosen, l)
		}
	}
	return chosen
}

// greedy disables links one at a time, worst first, keeping each only if
// every ToR whose path count changes stays feasible. The result is maximal
// but not necessarily optimal; it is the fallback for segments beyond exact
// reach. The caller guarantees the starting state is feasible for the
// segment's ToRs, which makes the changed-ToRs check exact. pc's state is
// restored before returning.
func (o *Optimizer) greedy(links []topology.LinkID, pc *topology.PathCounter, st *OptimizeStats) []topology.LinkID {
	counts, total := pc.IncCounts(), pc.Total()
	var chosen []topology.LinkID
	for _, l := range links {
		st.FeasibilityChecks++
		ok := true
		for _, tor := range pc.Apply(l) {
			if !o.net.meets(tor, counts, total) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, l)
		} else {
			pc.Revert(l)
		}
	}
	// Restore the counter to the network's state; Run applies the chosen
	// links through Network.Disable.
	for _, l := range chosen {
		pc.Revert(l)
	}
	return chosen
}

// segSolver is the branch-and-bound exact search over one segment. Subsets
// are explored by including or excluding links in penalty order; the
// monotonicity of the capacity constraint (disabling more links never adds
// paths) makes infeasible-subset pruning and the reject cache sound.
//
// Feasibility is evaluated incrementally: trying a link is one Apply delta,
// abandoning it one Revert, and only the ToRs whose counts changed are
// re-checked (exact because the search only stands on feasible states).
type segSolver struct {
	net    *Network
	pc     *topology.PathCounter
	links  []topology.LinkID
	pen    []float64
	suffix []float64

	useCache bool
	// cache holds infeasible subset masks ordered by ascending popcount,
	// so a membership scan can stop as soon as cached subsets are larger
	// than the candidate (a larger set cannot be a subset of a smaller
	// one).
	cache          []uint64
	cacheCap       int
	cacheEvictions int
	budget         int

	best     float64
	bestMask uint64

	checks    int
	cacheHits int
}

// dfs explores subsets of links[i:] given the current mask (whose links are
// applied on pc). It restores pc's state before returning.
func (s *segSolver) dfs(i int, mask uint64, got float64) {
	if got > s.best {
		s.best = got
		s.bestMask = mask
	}
	if i == len(s.links) || s.budget <= 0 {
		return
	}
	// Bound: even disabling every remaining link cannot beat the best.
	if got+s.suffix[i] <= s.best {
		return
	}
	// Branch 1: disable links[i]. feasible leaves the link applied on
	// success; revert after exploring the branch.
	cand := mask | 1<<uint(i)
	if s.feasible(cand, s.links[i]) {
		s.dfs(i+1, cand, got+s.pen[i])
		s.pc.Revert(s.links[i])
	}
	// Branch 2: keep links[i] active.
	s.dfs(i+1, mask, got)
}

// feasible tests whether the current subset plus link l keeps the segment's
// ToRs within their constraints, consulting the reject cache first. On
// success the link remains applied on the counter; on failure the counter
// is restored.
func (s *segSolver) feasible(cand uint64, l topology.LinkID) bool {
	if s.useCache {
		candPop := bits.OnesCount64(cand)
		for _, m := range s.cache {
			if bits.OnesCount64(m) > candPop {
				break // sorted by popcount: no later entry can be a subset
			}
			if cand&m == m {
				s.cacheHits++
				return false
			}
		}
	}
	s.checks++
	s.budget--
	counts, total := s.pc.IncCounts(), s.pc.Total()
	ok := true
	for _, tor := range s.pc.Apply(l) {
		if !s.net.meets(tor, counts, total) {
			ok = false
			break
		}
	}
	if !ok {
		s.pc.Revert(l)
		if s.useCache {
			s.cacheInsert(cand)
		}
	}
	return ok
}

// cacheInsert records an infeasible subset, keeping the cache ordered by
// ascending popcount and bounded by cacheCap. At capacity the least-general
// entry (largest subset, pruning the fewest candidates) is sacrificed.
func (s *segSolver) cacheInsert(m uint64) {
	p := bits.OnesCount64(m)
	if len(s.cache) >= s.cacheCap {
		last := s.cache[len(s.cache)-1]
		if bits.OnesCount64(last) <= p {
			// New entry is no more general than the worst cached one:
			// refuse admission.
			s.cacheEvictions++
			return
		}
		s.cache = s.cache[:len(s.cache)-1]
		s.cacheEvictions++
	}
	// Binary search for the insertion point among ascending popcounts.
	lo, hi := 0, len(s.cache)
	for lo < hi {
		mid := (lo + hi) / 2
		if bits.OnesCount64(s.cache[mid]) <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.cache = append(s.cache, 0)
	copy(s.cache[lo+1:], s.cache[lo:])
	s.cache[lo] = m
}
