package core

// Differential tests for the scoped + incremental path-counting engine as
// wired through Network, FastChecker, and Optimizer: every fast path must
// agree bit-exactly with the legacy full-recount semantics, and the
// incremental bookkeeping (NumDisabled, per-ToR constraint status) must
// never drift from a from-scratch recomputation.

import (
	"bytes"
	"math"
	"testing"

	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

// referenceCanDisable is the pre-incremental fast check: one full path
// count sweep with the candidate disabled, restricted to its downstream
// ToRs.
func referenceCanDisable(net *Network, l topology.LinkID) bool {
	if net.Disabled(l) {
		return true
	}
	topo := net.Topology()
	pc := topology.NewPathCounter(topo)
	counts := pc.Count(func(x topology.LinkID) bool { return net.Disabled(x) || x == l })
	total := pc.Total()
	for _, tor := range topo.DownstreamToRs(l) {
		if !net.meets(tor, counts, total) {
			return false
		}
	}
	return true
}

func TestFastCheckerMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		net := randomCorruptionScenario(t, seed+500, 12)
		fc := NewFastChecker(net)
		rng := rngutil.New(seed)
		topo := net.Topology()
		for step := 0; step < 200; step++ {
			l := topology.LinkID(rng.Intn(topo.NumLinks()))
			got, want := fc.CanDisable(l), referenceCanDisable(net, l)
			if got != want {
				t.Fatalf("seed %d step %d: CanDisable(%d) = %v, reference %v (disabled=%d)",
					seed, step, l, got, want, net.NumDisabled())
			}
			// Mutate state: sometimes commit the disable, sometimes toggle
			// an arbitrary link to push the network into awkward corners
			// (including states with violated ToRs, which exercise the
			// slow path of the incremental check).
			switch rng.Intn(4) {
			case 0:
				if got {
					net.Disable(l)
				}
			case 1:
				net.Disable(topology.LinkID(rng.Intn(topo.NumLinks())))
			case 2:
				net.Enable(topology.LinkID(rng.Intn(topo.NumLinks())))
			}
		}
	}
}

// TestNetworkIncrementalConsistency drives random Disable/Enable sequences
// and asserts the incrementally-maintained state (NumDisabled, violated-ToR
// status, capacity metrics) matches a from-scratch recomputation.
func TestNetworkIncrementalConsistency(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		net := randomCorruptionScenario(t, seed+900, 8)
		topo := net.Topology()
		rng := rngutil.New(seed + 31)
		ref := topology.NewPathCounter(topo)
		for step := 0; step < 300; step++ {
			l := topology.LinkID(rng.Intn(topo.NumLinks()))
			if rng.Intn(2) == 0 {
				net.Disable(l)
			} else {
				net.Enable(l)
			}
			// NumDisabled vs scan.
			want := 0
			for x := 0; x < topo.NumLinks(); x++ {
				if net.Disabled(topology.LinkID(x)) {
					want++
				}
			}
			if got := net.NumDisabled(); got != want {
				t.Fatalf("seed %d step %d: NumDisabled = %d, scan = %d", seed, step, got, want)
			}
			// Capacity metrics vs fresh full sweep.
			counts := ref.Count(net.DisabledFunc())
			total := ref.Total()
			worst, sum := 1.0, 0.0
			violated := 0
			for _, tor := range topo.ToRs() {
				var f float64
				if total[tor] > 0 {
					f = float64(counts[tor]) / float64(total[tor])
				}
				if f < worst {
					worst = f
				}
				sum += f
				if !net.meets(tor, counts, total) {
					violated++
				}
			}
			if got := net.WorstToRFraction(); got != worst {
				t.Fatalf("seed %d step %d: WorstToRFraction = %v, want %v", seed, step, got, worst)
			}
			if got := net.MeanToRFraction(); math.Abs(got-sum/float64(len(topo.ToRs()))) > 1e-12 {
				t.Fatalf("seed %d step %d: MeanToRFraction = %v, want %v", seed, step, got, sum/float64(len(topo.ToRs())))
			}
			if got := len(net.ViolatedToRs(nil)); got != violated {
				t.Fatalf("seed %d step %d: ViolatedToRs = %d, recompute = %d", seed, step, got, violated)
			}
			if net.Feasible(nil) != (violated == 0) {
				t.Fatalf("seed %d step %d: Feasible(nil) inconsistent", seed, step)
			}
		}
	}
}

// TestLoadStateRebuildsIncrementalState round-trips through SaveState and
// checks the derived state is rebuilt, not stale.
func TestLoadStateRebuildsIncrementalState(t *testing.T) {
	src := randomCorruptionScenario(t, 1234, 10)
	topo := src.Topology()
	rng := rngutil.New(55)
	for i := 0; i < 20; i++ {
		src.Disable(topology.LinkID(rng.Intn(topo.NumLinks())))
	}
	var buf bytes.Buffer
	if err := src.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := NewNetwork(topo, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	dst.Disable(topology.LinkID(0)) // pre-existing state to be replaced
	if err := dst.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.NumDisabled() != src.NumDisabled() {
		t.Fatalf("NumDisabled after load = %d, want %d", dst.NumDisabled(), src.NumDisabled())
	}
	if got, want := dst.WorstToRFraction(), src.WorstToRFraction(); got != want {
		t.Fatalf("WorstToRFraction after load = %v, want %v", got, want)
	}
	if got, want := len(dst.ViolatedToRs(nil)), len(src.ViolatedToRs(nil)); got != want {
		t.Fatalf("ViolatedToRs after load = %d, want %d", got, want)
	}
}

// TestRejectCacheCapKeepsAnswer: capping the reject cache may cost probes
// but must never change the chosen subset; evictions are surfaced in stats.
func TestRejectCacheCapKeepsAnswer(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		uncapped := randomCorruptionScenario(t, seed+7000, 16)
		capped := randomCorruptionScenario(t, seed+7000, 16)
		uo := NewOptimizer(uncapped, LinearPenalty, OptimizerConfig{})
		co := NewOptimizer(capped, LinearPenalty, OptimizerConfig{MaxRejectCacheEntries: 1})
		ud, ust := uo.Run(1e-7)
		cd, cst := co.Run(1e-7)
		if disabledPenalty(uncapped, ud, LinearPenalty) != disabledPenalty(capped, cd, LinearPenalty) {
			t.Fatalf("seed %d: capped cache changed the answer", seed)
		}
		if ust.RejectCacheEvictions != 0 {
			t.Fatalf("seed %d: uncapped run evicted %d entries", seed, ust.RejectCacheEvictions)
		}
		if cst.RejectCacheHits > 0 && cst.RejectCacheEvictions == 0 && ust.RejectCacheHits > cst.RejectCacheHits {
			t.Fatalf("seed %d: cap reduced hits (%d -> %d) without recording evictions",
				seed, ust.RejectCacheHits, cst.RejectCacheHits)
		}
	}
}

// TestParallelOptimizerStress exercises the Workers>1 path on a larger
// random scenario; run under -race this validates that each worker's
// cloned scratch is truly independent of the network's counter.
func TestParallelOptimizerStress(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		serial := randomCorruptionScenario(t, seed+8800, 24)
		parallel := randomCorruptionScenario(t, seed+8800, 24)
		so := NewOptimizer(serial, LinearPenalty, OptimizerConfig{})
		po := NewOptimizer(parallel, LinearPenalty, OptimizerConfig{Workers: 4})
		sd, _ := so.Run(1e-7)
		pd, _ := po.Run(1e-7)
		if disabledPenalty(serial, sd, LinearPenalty) != disabledPenalty(parallel, pd, LinearPenalty) {
			t.Fatalf("seed %d: parallel penalty differs from serial", seed)
		}
		for l := 0; l < serial.Topology().NumLinks(); l++ {
			if serial.Disabled(topology.LinkID(l)) != parallel.Disabled(topology.LinkID(l)) {
				t.Fatalf("seed %d: link %d state differs", seed, l)
			}
		}
	}
}

// FuzzFastCheckDifferential fuzzes the incremental fast check against the
// full-recount reference across random disable states.
func FuzzFastCheckDifferential(f *testing.F) {
	f.Add(uint64(1), []byte{1, 2, 3})
	f.Add(uint64(9), []byte{0xff, 0x10})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		net := randomCorruptionScenario(t, seed, 6)
		fc := NewFastChecker(net)
		topo := net.Topology()
		for _, b := range ops {
			l := topology.LinkID(int(b) % topo.NumLinks())
			switch b % 3 {
			case 0:
				if fc.CanDisable(l) != referenceCanDisable(net, l) {
					t.Fatalf("CanDisable(%d) diverged", l)
				}
			case 1:
				net.Disable(l)
			case 2:
				net.Enable(l)
			}
		}
	})
}
