package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"corropt/internal/topology"
)

// This file persists a Network's mutable state — disabled links, corruption
// records, per-ToR constraints — so a controller restart (or a failover to
// a standby) resumes exactly where the previous instance stopped instead of
// re-enabling every disabled link into a corruption storm.

// stateFile is the on-disk representation.
type stateFile struct {
	// Fingerprint guards against loading state for a different topology.
	Fingerprint uint64 `json:"fingerprint"`
	// Disabled lists administratively-down links.
	Disabled []topology.LinkID `json:"disabled"`
	// Corruption maps links to recorded worst-direction rates.
	Corruption map[topology.LinkID]float64 `json:"corruption"`
	// Constraints maps ToR names to their capacity thresholds.
	Constraints map[string]float64 `json:"constraints"`
}

// fingerprint hashes the topology's structure (switch names in id order and
// link endpoints), so state saved against one fabric cannot be misapplied
// to another.
func fingerprint(t *topology.Topology) uint64 {
	h := fnv.New64a()
	t.Switches(func(s *topology.Switch) {
		h.Write([]byte(s.Name))
		h.Write([]byte{byte(s.Stage), 0})
	})
	var buf [8]byte
	t.Links(func(l *topology.Link) {
		putUint32(buf[:4], uint32(l.Lower))
		putUint32(buf[4:], uint32(l.Upper))
		h.Write(buf[:])
	})
	return h.Sum64()
}

func putUint32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// SaveState serializes the network's mutable state as JSON.
func (n *Network) SaveState(w io.Writer) error {
	sf := stateFile{
		Fingerprint: fingerprint(n.topo),
		Corruption:  make(map[topology.LinkID]float64),
		Constraints: make(map[string]float64),
	}
	for l := 0; l < n.topo.NumLinks(); l++ {
		id := topology.LinkID(l)
		if n.disabled.Has(id) {
			sf.Disabled = append(sf.Disabled, id)
		}
		if r := n.rate[id]; r > 0 {
			sf.Corruption[id] = r
		}
	}
	for _, tor := range n.topo.ToRs() {
		sf.Constraints[n.topo.Switch(tor).Name] = n.constraint[tor]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sf)
}

// LoadState restores state saved by SaveState onto a network over the same
// topology, replacing the current disabled set, corruption records, and
// ToR constraints.
func (n *Network) LoadState(r io.Reader) error {
	var sf stateFile
	if err := json.NewDecoder(r).Decode(&sf); err != nil {
		return fmt.Errorf("core: decode state: %w", err)
	}
	if sf.Fingerprint != fingerprint(n.topo) {
		return fmt.Errorf("core: state fingerprint %x does not match this topology (%x)",
			sf.Fingerprint, fingerprint(n.topo))
	}
	// Clear corruption records through SetCorruption, not by writing rate
	// directly: with a registered penalty function the incremental
	// contribution cache and corrupting-link set must stay in sync with the
	// rates (mutexheld pins this — direct n.rate writes here once left
	// PenaltySum stale after a load).
	for l := range n.rate {
		if n.rate[l] != 0 {
			n.SetCorruption(topology.LinkID(l), 0)
		}
	}
	for _, l := range sf.Disabled {
		if int(l) < 0 || int(l) >= n.topo.NumLinks() {
			return fmt.Errorf("core: state references unknown link %d", l)
		}
	}
	// Replace the disabled set wholesale: one incremental re-sweep rebuilds
	// counts and per-ToR constraint status.
	n.resetState(sf.Disabled)
	// Apply corruption records and constraints in sorted key order so that
	// partial application and error selection on invalid input are
	// deterministic, not map-iteration-ordered.
	links := make([]topology.LinkID, 0, len(sf.Corruption))
	for l := range sf.Corruption {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, l := range links {
		rate := sf.Corruption[l]
		if int(l) < 0 || int(l) >= n.topo.NumLinks() {
			return fmt.Errorf("core: state references unknown link %d", l)
		}
		if rate < 0 || rate > 1 {
			return fmt.Errorf("core: state has invalid rate %v for link %d", rate, l)
		}
		n.SetCorruption(l, rate)
	}
	names := make([]string, 0, len(sf.Constraints))
	for name := range sf.Constraints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		id, ok := n.topo.SwitchByName(name)
		if !ok {
			return fmt.Errorf("core: state references unknown ToR %q", name)
		}
		if err := n.SetToRConstraint(id, sf.Constraints[name]); err != nil {
			return err
		}
	}
	return nil
}
