package core

import (
	"fmt"

	"corropt/internal/topology"
)

// DefaultDetectionThreshold is the corruption rate at which operators act:
// IEEE 802.3 demands 1e-8, but production systems alarm near 1e-6 (§2).
const DefaultDetectionThreshold = 1e-6

// LossyFloor is the IEEE 802.3 lossy threshold of §2: corruption rates
// below 1e-8 are indistinguishable from a healthy link (the standard's
// residual bit-error budget) and are treated as zero wherever ground truth
// is mirrored into detection-facing state. stats.DefaultBuckets' lowest
// bucket boundary is the same floor.
const LossyFloor = 1e-8

// Decision records what the engine did with a corruption report.
type Decision struct {
	Link topology.LinkID
	// Disabled reports whether the link was taken down.
	Disabled bool
	// Reason explains a negative decision.
	Reason string
}

// Engine ties CorrOpt's pieces into the workflow of Figure 13: switches
// report corruption; the fast checker decides immediately whether the link
// can be disabled; when repaired links come back, the optimizer reconsiders
// every remaining active corrupting link.
type Engine struct {
	net       *Network
	fast      *FastChecker
	opt       *Optimizer
	threshold float64
}

// EngineConfig parameterizes an Engine.
type EngineConfig struct {
	// DetectionThreshold is the corruption rate that triggers mitigation;
	// default DefaultDetectionThreshold.
	DetectionThreshold float64
	// Penalty is the impact function; default LinearPenalty.
	Penalty PenaltyFunc
	// Optimizer tunes the second phase.
	Optimizer OptimizerConfig
}

// NewEngine returns an Engine over net.
func NewEngine(net *Network, cfg EngineConfig) *Engine {
	if cfg.DetectionThreshold == 0 {
		cfg.DetectionThreshold = DefaultDetectionThreshold
	}
	if cfg.Penalty == nil {
		cfg.Penalty = LinearPenalty
	}
	return &Engine{
		net:       net,
		fast:      NewFastChecker(net),
		opt:       NewOptimizer(net, cfg.Penalty, cfg.Optimizer),
		threshold: cfg.DetectionThreshold,
	}
}

// Network returns the engine's network state.
func (e *Engine) Network() *Network { return e.net }

// Threshold reports the detection threshold in use.
func (e *Engine) Threshold() float64 { return e.threshold }

// ReportCorruption handles a new corruption report for link l at the given
// worst-direction rate: it records the rate and, if the rate is at or above
// the detection threshold, runs the fast checker and disables the link when
// capacity allows. The whole decision is incremental — an Apply/Revert
// probe over l's downstream cone plus, on success, one Apply to commit —
// so a report costs microseconds even on the largest topologies, and the
// engine can absorb report storms (e.g. a breakout cable taking 8 links
// down at once) without re-sweeping the data center per link.
func (e *Engine) ReportCorruption(l topology.LinkID, rate float64) Decision {
	e.net.SetCorruption(l, rate)
	d := Decision{Link: l}
	switch {
	case rate < e.threshold:
		d.Reason = fmt.Sprintf("rate %.3g below detection threshold %.3g", rate, e.threshold)
	case e.net.Disabled(l):
		d.Disabled = true
		d.Reason = "already disabled"
	case e.fast.DisableIfSafe(l):
		d.Disabled = true
	default:
		d.Reason = "capacity constraints forbid disabling"
	}
	return d
}

// LinkRepaired handles a link coming back from repair: the link is enabled,
// its corruption record cleared (stillCorrupting rates get re-reported by
// monitoring), and the optimizer runs over the remaining active corrupting
// links, as link activations are what create room to disable more of them.
// It returns the links the optimizer newly disabled.
func (e *Engine) LinkRepaired(l topology.LinkID) []topology.LinkID {
	e.net.Enable(l)
	e.net.SetCorruption(l, 0)
	disabled, _ := e.opt.Run(e.threshold)
	return disabled
}

// Reoptimize runs the optimizer without any link state change, returning
// the links it disabled; exposed for periodic background optimization.
func (e *Engine) Reoptimize() ([]topology.LinkID, OptimizeStats) {
	return e.opt.Run(e.threshold)
}
