package core

import (
	"fmt"
	"testing"

	"corropt/internal/topology"
)

// fig10 builds the example of Figure 10: ToR T with five uplinks to
// aggregation switches A–E, each with five uplinks to distinct spines
// (25 ToR→spine paths), and a corrupting set of 16 links arranged so that
// the optimal solution disables 12 of them under a 60% capacity constraint:
// both of T's uplinks to A and B, all five spine uplinks of A and of B
// (free to disable once their ToR uplink is gone), plus four more corrupting
// links under C, D, and E that must stay.
func fig10(t *testing.T) (*Network, []topology.LinkID) {
	t.Helper()
	b := topology.NewBuilder()
	spines := make([]topology.SwitchID, 25)
	for i := range spines {
		spines[i] = b.AddSwitch(fmt.Sprintf("s%d", i), 2, -1)
	}
	aggs := make([]topology.SwitchID, 5)
	for i := range aggs {
		aggs[i] = b.AddSwitch(string(rune('A'+i)), 1, 0)
	}
	tor := b.AddSwitch("T", 0, 0)
	torUp := make([]topology.LinkID, 5)
	aggUp := make([][]topology.LinkID, 5)
	for i, agg := range aggs {
		torUp[i] = b.AddLink(tor, agg, -1)
		aggUp[i] = make([]topology.LinkID, 5)
		for j := 0; j < 5; j++ {
			aggUp[i][j] = b.AddLink(agg, spines[i*5+j], -1)
		}
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(topo, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	var corrupting []topology.LinkID
	corrupting = append(corrupting, torUp[0], torUp[1])       // T→A, T→B
	corrupting = append(corrupting, aggUp[0]...)              // A's five
	corrupting = append(corrupting, aggUp[1]...)              // B's five
	corrupting = append(corrupting, aggUp[2][0], aggUp[2][1]) // two under C
	corrupting = append(corrupting, aggUp[3][0], aggUp[4][0]) // one under D, E
	for _, l := range corrupting {
		net.SetCorruption(l, 1e-3)
	}
	if len(corrupting) != 16 {
		t.Fatalf("fig10 corrupting set has %d links, want 16", len(corrupting))
	}
	return net, corrupting
}

func TestFig10NaiveSwitchLocalViolatesConstraint(t *testing.T) {
	// Figure 10(a): mapping the 60% capacity constraint directly onto the
	// per-switch threshold (sc = c) lets every switch disable 2 of its 5
	// uplinks — and leaves ToR T with far fewer than 60% of its paths.
	net, _ := fig10(t)
	sl, err := NewSwitchLocalRaw(net, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	disabled := sl.Sweep(1e-6)
	if len(disabled) == 0 {
		t.Fatal("naive switch-local disabled nothing")
	}
	frac := net.WorstToRFraction()
	if frac >= 0.60 {
		t.Fatalf("naive switch-local kept fraction %v; the example requires a violation", frac)
	}
}

func TestFig10ConservativeSwitchLocalDisablesFew(t *testing.T) {
	// Figure 10(b): the safe mapping sc = √c ≈ 0.775 meets the constraint
	// but each 5-uplink switch may disable only ⌊5·0.225⌋ = 1 link.
	net, _ := fig10(t)
	sl, err := NewSwitchLocal(net, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	if sc := sl.SC(); sc < 0.774 || sc > 0.776 {
		t.Fatalf("sc = %v, want √0.6 ≈ 0.7746", sc)
	}
	disabled := sl.Sweep(1e-6)
	if net.WorstToRFraction() < 0.60 {
		t.Fatal("conservative switch-local violated the constraint")
	}
	if len(disabled) > 6 {
		t.Fatalf("conservative switch-local disabled %d links; the example shows it can disable only a few", len(disabled))
	}
	// Strictly fewer than the optimum of 12.
	if len(disabled) >= 12 {
		t.Fatalf("switch-local disabled %d, should be far below the optimal 12", len(disabled))
	}
}

func TestFig10OptimizerFindsOptimal(t *testing.T) {
	// Figure 10(c): the optimal solution disables 12 of the 16 corrupting
	// links while keeping 15 of T's 25 paths (exactly 60%).
	net, _ := fig10(t)
	opt := NewOptimizer(net, LinearPenalty, OptimizerConfig{})
	disabled, st := opt.Run(1e-6)
	if len(disabled) != 12 {
		t.Fatalf("optimizer disabled %d links, want 12 (stats %+v)", len(disabled), st)
	}
	if frac := net.WorstToRFraction(); frac < 0.60 {
		t.Fatalf("optimizer violated the constraint: %v", frac)
	}
	if frac := net.WorstToRFraction(); frac != 0.60 {
		t.Fatalf("optimal solution should ride the limit exactly: %v", frac)
	}
}

func TestFig10FastCheckerBeatsSwitchLocal(t *testing.T) {
	// Even the fast checker, which is greedy, uses exact path counts and
	// therefore outperforms the conservative switch-local rule here.
	netFC, _ := fig10(t)
	fc := NewFastChecker(netFC)
	fcDisabled := fc.Sweep(1e-6)
	if netFC.WorstToRFraction() < 0.60 {
		t.Fatal("fast checker violated the constraint")
	}

	netSL, _ := fig10(t)
	sl, _ := NewSwitchLocal(netSL, 0.60)
	slDisabled := sl.Sweep(1e-6)

	if len(fcDisabled) <= len(slDisabled) {
		t.Fatalf("fast checker disabled %d, switch-local %d; expected the fast checker to win",
			len(fcDisabled), len(slDisabled))
	}
}
