package core

import (
	"fmt"
	"math"

	"corropt/internal/topology"
)

// SwitchLocal is the state-of-the-art link-disabling policy CorrOpt
// replaces (§5.1): a link may be disabled only if the switch it uplinks
// from keeps at least a fraction sc of its uplinks alive. To guarantee a
// ToR-to-spine capacity constraint of c on a topology with r tiers above
// the ToR level, sc must be c^(1/r) — each stage can independently lose
// paths, so the per-switch fractions multiply along a path. That mapping is
// exactly why the switch-local rule is so conservative (Figure 10b): on a
// three-stage Clos with c=60% each switch must keep √0.6 ≈ 77% of its
// uplinks.
type SwitchLocal struct {
	net *Network
	sc  float64
}

// NewSwitchLocal returns the switch-local checker configured to guarantee a
// global capacity constraint c on net's topology: sc = c^(1/r) with r =
// tiers above the ToR stage.
func NewSwitchLocal(net *Network, c float64) (*SwitchLocal, error) {
	if c < 0 || c > 1 {
		return nil, fmt.Errorf("core: capacity constraint %v out of [0,1]", c)
	}
	r := net.Topology().Tiers()
	if r < 1 {
		return nil, fmt.Errorf("core: topology has no tiers above the ToR stage")
	}
	sc := math.Pow(c, 1/float64(r))
	return &SwitchLocal{net: net, sc: sc}, nil
}

// NewSwitchLocalRaw returns a switch-local checker with an explicit
// per-switch threshold sc, for reproducing Figure 10(a)'s naive sc = c
// configuration.
func NewSwitchLocalRaw(net *Network, sc float64) (*SwitchLocal, error) {
	if sc < 0 || sc > 1 {
		return nil, fmt.Errorf("core: switch threshold %v out of [0,1]", sc)
	}
	return &SwitchLocal{net: net, sc: sc}, nil
}

// SC reports the per-switch keep fraction in use.
func (s *SwitchLocal) SC() float64 { return s.sc }

// CanDisable reports whether link l may be disabled under the switch-local
// rule: the switch whose uplink it is must retain at least ⌈m·sc⌉ active
// uplinks afterwards (equivalently, at most ⌊m·(1-sc)⌋ of m uplinks may be
// down).
func (s *SwitchLocal) CanDisable(l topology.LinkID) bool {
	if s.net.Disabled(l) {
		return true
	}
	sw := s.net.Topology().Switch(s.net.Topology().Link(l).Lower)
	m := len(sw.Uplinks)
	maxDown := int(math.Floor(float64(m) * (1 - s.sc) * (1 + 1e-12)))
	down := 0
	for _, ul := range sw.Uplinks {
		if s.net.Disabled(ul) {
			down++
		}
	}
	return down < maxDown
}

// DisableIfSafe disables l if the switch-local rule allows it and reports
// whether it did.
func (s *SwitchLocal) DisableIfSafe(l topology.LinkID) bool {
	if s.net.Disabled(l) {
		return false
	}
	if !s.CanDisable(l) {
		return false
	}
	s.net.Disable(l)
	return true
}

// Sweep applies the switch-local check to every active corrupting link at
// or above threshold, worst first, disabling those that pass — the re-check
// production systems run when a link is re-enabled. It returns the links it
// disabled.
func (s *SwitchLocal) Sweep(threshold float64) []topology.LinkID {
	active := s.net.ActiveCorrupting(threshold)
	for i := 1; i < len(active); i++ {
		for j := i; j > 0 && s.net.CorruptionRate(active[j]) > s.net.CorruptionRate(active[j-1]); j-- {
			active[j], active[j-1] = active[j-1], active[j]
		}
	}
	var disabled []topology.LinkID
	for _, l := range active {
		if s.DisableIfSafe(l) {
			disabled = append(disabled, l)
		}
	}
	return disabled
}
