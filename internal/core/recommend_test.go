package core

import (
	"testing"

	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/rngutil"
	"corropt/internal/telemetry"
	"corropt/internal/topology"
)

func diagTech() optics.Technology {
	return optics.Technology{Name: "t", NominalTx: 0, TxThreshold: -4, RxThreshold: -10, PathLoss: 3}
}

// base returns healthy-optics diagnostics to be perturbed per case.
func base() Diagnostics {
	return Diagnostics{
		HasOptics: true,
		Rx1:       -3, Rx2: -3, Tx2: 0,
		Tech: diagTech(),
	}
}

func TestRecommendSharedComponent(t *testing.T) {
	d := base()
	d.NeighborCorrupting = true
	if got := Recommend(d); got != faults.ActionReplaceSharedComponent {
		t.Fatalf("got %v", got)
	}
	// Neighbor corruption dominates every other symptom (Algorithm 1
	// checks it first).
	d.Rx1 = -15
	d.Tx2 = -8
	if got := Recommend(d); got != faults.ActionReplaceSharedComponent {
		t.Fatalf("got %v with other symptoms present", got)
	}
}

func TestRecommendBidirectionalCorruption(t *testing.T) {
	d := base()
	d.OppositeCorrupting = true
	if got := Recommend(d); got != faults.ActionReplaceFiber {
		t.Fatalf("got %v", got)
	}
}

func TestRecommendDecayingTransmitter(t *testing.T) {
	d := base()
	d.Tx2 = -5 // below the -4 threshold
	d.Rx1 = -12
	if got := Recommend(d); got != faults.ActionReplaceOppositeTransceiver {
		t.Fatalf("got %v", got)
	}
}

func TestRecommendDamagedFiber(t *testing.T) {
	d := base()
	d.Rx1 = -12
	d.Rx2 = -11
	if got := Recommend(d); got != faults.ActionReplaceFiber {
		t.Fatalf("got %v", got)
	}
}

func TestRecommendCleanFiber(t *testing.T) {
	d := base()
	d.Rx1 = -12 // one-sided low Rx
	if got := Recommend(d); got != faults.ActionCleanFiber {
		t.Fatalf("got %v", got)
	}
}

func TestRecommendTransceiverPath(t *testing.T) {
	d := base() // all power levels healthy
	if got := Recommend(d); got != faults.ActionReseatTransceiver {
		t.Fatalf("first attempt: got %v", got)
	}
	d.RecentlyReseated = true
	if got := Recommend(d); got != faults.ActionReplaceTransceiver {
		t.Fatalf("after reseat: got %v", got)
	}
}

func TestRecommendNoOptics(t *testing.T) {
	d := base()
	d.HasOptics = false
	if got := Recommend(d); got != faults.ActionUnknown {
		t.Fatalf("got %v", got)
	}
}

func TestRecommendDeployedSimplifications(t *testing.T) {
	// The deployed engine keeps the counter-derived neighbor input (it
	// needs no optics)...
	d := base()
	d.NeighborCorrupting = true
	if got := RecommendDeployed(d); got != faults.ActionReplaceSharedComponent {
		t.Fatalf("got %v", got)
	}
	// ...but without history it never escalates a reseat to replacement.
	d = base()
	d.RecentlyReseated = true
	if got := RecommendDeployed(d); got != faults.ActionReseatTransceiver {
		t.Fatalf("got %v", got)
	}
	// The optical rules are unchanged.
	d = base()
	d.Rx1 = -12
	if got := RecommendDeployed(d); got != faults.ActionCleanFiber {
		t.Fatalf("got %v", got)
	}
}

// TestRecommendMatchesInjectedFaults drives the full loop: inject faults of
// known root cause, poll telemetry, diagnose, recommend — and check the
// recommendation repairs the true cause in the large majority of cases,
// reproducing §7.2's ≈80% first-attempt accuracy when recommendations are
// followed.
func TestRecommendMatchesInjectedFaults(t *testing.T) {
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 4, ToRsPerPod: 4, AggsPerPod: 4, Spines: 8, SpineUplinksPerAgg: 4, BreakoutSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tech := diagTech()
	st := faults.NewState(topo, tech)
	inj, err := faults.NewInjector(topo, tech, faults.InjectorConfig{}, rngutil.New(77).Split("inj"))
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector(st, nil, nil, telemetry.Config{})

	correct, total := 0, 0
	perCause := make(map[faults.RootCause][2]int)
	for i := 0; i < 400; i++ {
		f := inj.NewFault(0)
		st.Apply(f)
		col.Poll(0)
		for _, l := range f.Links() {
			d, ok := Diagnose(col, topo, tech, l, 1e-7, false)
			if !ok {
				continue
			}
			rec := Recommend(d)
			total++
			hit := false
			for _, a := range f.Cause.Repairs() {
				if rec == a {
					hit = true
					break
				}
			}
			// Reseat-then-replace: a reseat recommendation for a bad
			// transceiver counts; Algorithm 1 escalates on the next try.
			if hit {
				correct++
			}
			pc := perCause[f.Cause]
			pc[1]++
			if hit {
				pc[0]++
			}
			perCause[f.Cause] = pc
		}
		st.Clear(f.ID)
	}
	if total < 300 {
		t.Fatalf("too few diagnosable faults: %d", total)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.70 {
		for c, pc := range perCause {
			t.Logf("%v: %d/%d", c, pc[0], pc[1])
		}
		t.Fatalf("first-attempt accuracy = %v, want ≥ 0.70 (paper: 0.80)", acc)
	}
}

func TestDiagnoseSkipsHealthyAndDisabled(t *testing.T) {
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 1, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2, SpineUplinksPerAgg: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tech := diagTech()
	st := faults.NewState(topo, tech)
	col := telemetry.NewCollector(st, nil, nil, telemetry.Config{})
	// Before any poll: no diagnostics.
	if _, ok := Diagnose(col, topo, tech, 0, 1e-7, false); ok {
		t.Fatal("diagnosed before first poll")
	}
	col.Poll(0)
	if _, ok := Diagnose(col, topo, tech, 0, 1e-7, false); ok {
		t.Fatal("diagnosed a healthy link")
	}
}

// TestMixedTechnologyFabric: per-link technologies flow through diagnosis,
// and the deployed engine's single global threshold misclassifies links
// whose technology has a different sensitivity — the §7.2 simplification
// made concrete.
func TestMixedTechnologyFabric(t *testing.T) {
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 1, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2, SpineUplinksPerAgg: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Even links: a sensitive long-reach technology (threshold -14);
	// odd links: the default (-10). The deployed global threshold is -10.
	sensitive := optics.Technology{Name: "100G-LR", NominalTx: 0, TxThreshold: -4, RxThreshold: -14, PathLoss: 3}
	standard := diagTech()
	st := faults.NewMultiTechState(topo, func(l topology.LinkID) optics.Technology {
		if l%2 == 0 {
			return sensitive
		}
		return standard
	})
	if st.TechOf(0).Name != "100G-LR" || st.TechOf(1).Name != "t" {
		t.Fatalf("tech assignment broken: %v %v", st.TechOf(0), st.TechOf(1))
	}

	// Contamination on link 0 (sensitive): drops Rx to -16 — below the
	// true -14 threshold but ALSO below the global -10, so both engines
	// get this one right.
	st.Apply(&faults.Fault{ID: 1, Cause: faults.ConnectorContamination,
		Effects: []faults.LinkEffect{{Link: 0, ExtraLossFrom: [2]optics.DB{optics.LowerSide: 13}}}})
	d, ok := DiagnoseState(st, 0, 1e-7, false)
	if !ok {
		t.Fatal("no diagnostics for link 0")
	}
	if d.Tech.Name != "100G-LR" {
		t.Fatalf("diagnostics carry wrong tech: %v", d.Tech.Name)
	}
	if got := Recommend(d); got != faults.ActionCleanFiber {
		t.Fatalf("full engine: %v", got)
	}

	// Contamination on link 2 (sensitive) with a milder loss: Rx = -12 —
	// below the true -14?? no: -12 > -14 means still healthy for the
	// sensitive tech... construct the opposite: a tech with a HIGHER
	// (less sensitive) threshold, -9.9-style, where Rx between -10 and
	// the true threshold confuses the global engine.
	st.Clear(1)
	tolerant := optics.Technology{Name: "10G-SR", NominalTx: 0, TxThreshold: -4, RxThreshold: -7, PathLoss: 3}
	st2 := faults.NewMultiTechState(topo, func(topology.LinkID) optics.Technology { return tolerant })
	// Loss pushing Rx to -8.5: below the true -7 threshold (starved for
	// this tech, corrupting) but ABOVE the global -10.
	st2.Apply(&faults.Fault{ID: 2, Cause: faults.ConnectorContamination,
		Effects: []faults.LinkEffect{{Link: 4, ExtraLossFrom: [2]optics.DB{optics.LowerSide: 5.5}}}})
	d2, ok := DiagnoseState(st2, 4, 1e-9, false)
	if !ok {
		t.Fatalf("no diagnostics for the tolerant-tech link; rate up=%v", st2.CorruptionRate(4, topology.Up))
	}
	full := Recommend(d2)
	deployed := RecommendDeployed(d2)
	if full != faults.ActionCleanFiber {
		t.Fatalf("full engine with per-tech threshold: %v, want clean-fiber", full)
	}
	if deployed == faults.ActionCleanFiber {
		t.Fatal("deployed engine should miss the starved receiver (global threshold too low)")
	}
	if deployed != faults.ActionReseatTransceiver {
		t.Fatalf("deployed engine: %v, want the all-power-looks-fine fallback", deployed)
	}
}
