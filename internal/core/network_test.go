package core

import (
	"testing"

	"corropt/internal/topology"
)

func smallClos(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewNetworkValidation(t *testing.T) {
	topo := smallClos(t)
	if _, err := NewNetwork(topo, -0.1); err == nil {
		t.Fatal("negative constraint accepted")
	}
	if _, err := NewNetwork(topo, 1.1); err == nil {
		t.Fatal("constraint > 1 accepted")
	}
	n, err := NewNetwork(topo, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tor := range topo.ToRs() {
		if n.Constraint(tor) != 0.5 {
			t.Fatal("default constraint not applied")
		}
	}
}

func TestSetToRConstraint(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.5)
	tor := topo.ToRs()[0]
	if err := n.SetToRConstraint(tor, 0.75); err != nil {
		t.Fatal(err)
	}
	if n.Constraint(tor) != 0.75 {
		t.Fatal("constraint not updated")
	}
	spine := topo.Spines()[0]
	if err := n.SetToRConstraint(spine, 0.5); err == nil {
		t.Fatal("non-ToR constraint accepted")
	}
	if err := n.SetToRConstraint(tor, 2); err == nil {
		t.Fatal("out-of-range constraint accepted")
	}
}

func TestDisableEnable(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.5)
	if n.NumDisabled() != 0 {
		t.Fatal("fresh network has disabled links")
	}
	n.Disable(0)
	if !n.Disabled(0) || n.NumDisabled() != 1 {
		t.Fatal("Disable did not stick")
	}
	n.Enable(0)
	if n.Disabled(0) || n.NumDisabled() != 0 {
		t.Fatal("Enable did not stick")
	}
}

func TestViolatedToRs(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.75)
	if got := n.ViolatedToRs(nil); len(got) != 0 {
		t.Fatalf("healthy network violates constraints: %v", got)
	}
	// Disabling one of a ToR's two agg uplinks halves its paths: 0.5 < 0.75.
	tor := topo.ToRs()[0]
	l := topo.Switch(tor).Uplinks[0]
	violated := n.ViolatedToRs(map[topology.LinkID]bool{l: true})
	if len(violated) != 1 || violated[0] != tor {
		t.Fatalf("violated = %v, want [%d]", violated, tor)
	}
	if n.Feasible(map[topology.LinkID]bool{l: true}) {
		t.Fatal("Feasible contradicts ViolatedToRs")
	}
	// Per-ToR override: lowering this ToR's constraint legalizes it.
	if err := n.SetToRConstraint(tor, 0.5); err != nil {
		t.Fatal(err)
	}
	if !n.Feasible(map[topology.LinkID]bool{l: true}) {
		t.Fatal("per-ToR constraint not honored")
	}
}

func TestTotalPenalty(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.5)
	n.SetCorruption(0, 1e-3)
	n.SetCorruption(1, 1e-4)
	if got := n.TotalPenalty(LinearPenalty); got != 1e-3+1e-4 {
		t.Fatalf("penalty = %v", got)
	}
	n.Disable(0)
	if got := n.TotalPenalty(LinearPenalty); got != 1e-4 {
		t.Fatalf("penalty after disabling = %v", got)
	}
	n.SetCorruption(1, 0)
	if got := n.TotalPenalty(LinearPenalty); got != 0 {
		t.Fatalf("penalty after repair = %v", got)
	}
}

func TestActiveCorrupting(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.5)
	n.SetCorruption(2, 1e-3)
	n.SetCorruption(3, 1e-7)
	n.SetCorruption(4, 1e-5)
	n.Disable(4)
	active := n.ActiveCorrupting(1e-6)
	if len(active) != 1 || active[0] != 2 {
		t.Fatalf("active = %v, want [2]", active)
	}
}

func TestWorstAndMeanFractions(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.5)
	if n.WorstToRFraction() != 1 || n.MeanToRFraction() != 1 {
		t.Fatal("healthy network fractions != 1")
	}
	tor := topo.ToRs()[0]
	n.Disable(topo.Switch(tor).Uplinks[0])
	if w := n.WorstToRFraction(); w != 0.5 {
		t.Fatalf("worst fraction = %v, want 0.5", w)
	}
	if m := n.MeanToRFraction(); m <= 0.5 || m >= 1 {
		t.Fatalf("mean fraction = %v, want in (0.5, 1)", m)
	}
}

func TestPenaltyFunctions(t *testing.T) {
	if LinearPenalty(0.01) != 0.01 {
		t.Fatal("LinearPenalty broken")
	}
	if TCPThroughputPenalty(0) != 0 {
		t.Fatal("TCP penalty at zero loss should be 0")
	}
	// Monotonic and bounded.
	prev := -1.0
	for _, r := range []float64{1e-9, 1e-7, 1e-5, 1e-3, 1e-1, 1} {
		p := TCPThroughputPenalty(r)
		if p < prev || p < 0 || p > 1 {
			t.Fatalf("TCP penalty not monotone/bounded at %v: %v", r, p)
		}
		prev = p
	}
	step := StepPenalty(1e-6)
	if step(1e-7) != 0 || step(1e-6) != 1 || step(1e-3) != 1 {
		t.Fatal("StepPenalty broken")
	}
}

// TestNetworkReset pins that Reset restores a pooled Network to the exact
// observable state NewNetwork would construct, including after the penalty
// machinery and disabled set have been exercised.
func TestNetworkReset(t *testing.T) {
	topo := smallClos(t)
	n, _ := NewNetwork(topo, 0.5)
	n.RegisterPenalty(LinearPenalty)
	n.Disable(0)
	n.Disable(3)
	n.SetCorruption(1, 0.02)
	n.SetCorruption(3, 0.5)
	if err := n.SetToRConstraint(topo.ToRs()[0], 0.9); err != nil {
		t.Fatal(err)
	}

	if err := n.Reset(2); err == nil {
		t.Fatal("out-of-range constraint accepted by Reset")
	}
	if err := n.Reset(0.5); err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewNetwork(topo, 0.5)
	if n.NumDisabled() != 0 || n.Disabled(0) || n.Disabled(3) {
		t.Fatal("Reset left links disabled")
	}
	if n.CorruptionRate(1) != 0 || n.CorruptionRate(3) != 0 {
		t.Fatal("Reset left corruption rates")
	}
	if n.PenaltyRegistered() {
		t.Fatal("Reset left a penalty function registered")
	}
	for _, tor := range topo.ToRs() {
		if n.Constraint(tor) != fresh.Constraint(tor) {
			t.Fatalf("ToR %d constraint %v after Reset, want %v",
				tor, n.Constraint(tor), fresh.Constraint(tor))
		}
	}
	if !n.Feasible(nil) || n.WorstToRFraction() != fresh.WorstToRFraction() {
		t.Fatal("Reset state differs from a fresh network")
	}

	// The penalty path must behave identically post-Reset (reused buffers).
	n.RegisterPenalty(LinearPenalty)
	fresh.RegisterPenalty(LinearPenalty)
	for _, net := range []*Network{n, fresh} {
		net.SetCorruption(2, 0.1)
		net.Disable(5)
		net.SetCorruption(5, 0.3)
	}
	if n.PenaltySum() != fresh.PenaltySum() {
		t.Fatalf("penalty sum after Reset: %v, fresh: %v", n.PenaltySum(), fresh.PenaltySum())
	}
}
