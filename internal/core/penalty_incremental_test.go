package core

import (
	"math"
	"testing"

	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

// penaltyTestTopo builds a small Clos for the differential tests.
func penaltyTestTopo(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 3, ToRsPerPod: 4, AggsPerPod: 3,
		Spines: 9, SpineUplinksPerAgg: 3, BreakoutSize: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// drift reports the relative disagreement between the incremental sum and
// the reference scan.
func drift(inc, ref float64) float64 {
	diff := math.Abs(inc - ref)
	if diff == 0 {
		return 0
	}
	scale := math.Max(math.Abs(inc), math.Abs(ref))
	if scale == 0 {
		return diff
	}
	return diff / scale
}

// TestPenaltyIncrementalDifferential drives a long randomized sequence of
// SetCorruption / Disable / Enable operations and pins the O(1)-maintained
// PenaltySum to the fresh O(#links) TotalPenalty scan after every step:
// within a tight accumulation tolerance between rebuild epochs, and exactly
// (bit-for-bit) immediately after each exact rebuild.
func TestPenaltyIncrementalDifferential(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    PenaltyFunc
	}{
		{"linear", LinearPenalty},
		{"tcp-throughput", TCPThroughputPenalty},
		{"step", StepPenalty(1e-5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			topo := penaltyTestTopo(t)
			net, err := NewNetwork(topo, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			// Pre-existing corruption so registration starts non-trivial.
			rng := rngutil.New(7).Split("penalty-" + tc.name)
			for i := 0; i < 10; i++ {
				net.SetCorruption(topology.LinkID(rng.Intn(topo.NumLinks())), math.Pow(10, rng.Range(-8, -2)))
			}
			net.RegisterPenalty(tc.p)
			if got, want := net.PenaltySum(), net.TotalPenalty(tc.p); got != want {
				t.Fatalf("after RegisterPenalty: PenaltySum = %v, TotalPenalty = %v", got, want)
			}

			const steps = 5000
			const tol = 1e-12
			for i := 0; i < steps; i++ {
				l := topology.LinkID(rng.Intn(topo.NumLinks()))
				switch rng.Intn(5) {
				case 0:
					net.SetCorruption(l, math.Pow(10, rng.Range(-9, -2)))
				case 1:
					net.SetCorruption(l, 0)
				case 2:
					net.Disable(l)
				case 3:
					net.Enable(l)
				case 4:
					// Re-set to the same value: must be a no-op.
					net.SetCorruption(l, net.CorruptionRate(l))
				}
				inc, ref := net.PenaltySum(), net.TotalPenalty(tc.p)
				if d := drift(inc, ref); d > tol {
					t.Fatalf("step %d: PenaltySum = %v, TotalPenalty = %v (relative drift %g > %g)", i, inc, ref, d, tol)
				}
			}

			// Force an exact rebuild epoch and require bitwise equality.
			// Only updates that change a contribution count toward the
			// epoch, so drive an enabled link until the budget is spent.
			for done := 0; done < penaltyRebuildEvery+1; {
				l := topology.LinkID(done % topo.NumLinks())
				if net.Disabled(l) {
					net.Enable(l)
				}
				net.SetCorruption(l, math.Pow(10, rng.Range(-7, -3)))
				done++
			}
			if got, want := net.PenaltySum(), net.TotalPenalty(tc.p); got != want {
				t.Fatalf("after rebuild epoch: PenaltySum = %v, TotalPenalty = %v (must be bit-identical)", got, want)
			}
		})
	}
}

// TestPenaltyAccountingAcrossResetState pins the incremental sum across a
// wholesale disabled-set replacement (LoadState path).
func TestPenaltyAccountingAcrossResetState(t *testing.T) {
	topo := penaltyTestTopo(t)
	net, err := NewNetwork(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	net.RegisterPenalty(LinearPenalty)
	rng := rngutil.New(11).Split("reset")
	for i := 0; i < 25; i++ {
		net.SetCorruption(topology.LinkID(rng.Intn(topo.NumLinks())), math.Pow(10, rng.Range(-6, -2)))
	}
	var disabled []topology.LinkID
	for i := 0; i < 8; i++ {
		disabled = append(disabled, topology.LinkID(rng.Intn(topo.NumLinks())))
	}
	net.resetState(disabled)
	if got, want := net.PenaltySum(), net.TotalPenalty(LinearPenalty); got != want {
		t.Fatalf("after resetState: PenaltySum = %v, TotalPenalty = %v", got, want)
	}
}

// TestPenaltySumRequiresRegistration documents the contract: PenaltySum
// without RegisterPenalty is a programming error.
func TestPenaltySumRequiresRegistration(t *testing.T) {
	topo := penaltyTestTopo(t)
	net, err := NewNetwork(topo, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PenaltySum without RegisterPenalty did not panic")
		}
	}()
	net.PenaltySum()
}

// BenchmarkPenaltySum measures the O(1) incremental read against the full
// TotalPenalty rescan it replaces on the event path.
func BenchmarkPenaltySum(b *testing.B) {
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 45, ToRsPerPod: 40, AggsPerPod: 6,
		Spines: 96, SpineUplinksPerAgg: 16, BreakoutSize: 4,
	}) // the paper's O(15K)-link medium DCN
	if err != nil {
		b.Fatal(err)
	}
	net, err := NewNetwork(topo, 0.75)
	if err != nil {
		b.Fatal(err)
	}
	net.RegisterPenalty(LinearPenalty)
	rng := rngutil.New(3).Split("bench")
	for i := 0; i < 200; i++ {
		net.SetCorruption(topology.LinkID(rng.Intn(topo.NumLinks())), math.Pow(10, rng.Range(-6, -2)))
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			net.SetCorruption(topology.LinkID(i%topo.NumLinks()), 1e-4)
			sink += net.PenaltySum()
		}
		_ = sink
	})
	b.Run("rescan", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			net.SetCorruption(topology.LinkID(i%topo.NumLinks()), 1e-4)
			sink += net.TotalPenalty(LinearPenalty)
		}
		_ = sink
	})
}
