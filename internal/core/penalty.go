package core

import "math"

// PenaltyFunc is the monotonically increasing impact function I(f) mapping
// a link's corruption loss rate f to its application-level penalty (§5.1).
// CorrOpt minimizes Σ (1 - d_l) · I(f_l) over corrupting links.
type PenaltyFunc func(rate float64) float64

// LinearPenalty is I(f) = f, the function the paper's evaluation uses: the
// total penalty is then proportional to the number of corruption losses
// (assuming equal utilization on all links).
func LinearPenalty(rate float64) float64 { return rate }

// TCPThroughputPenalty models the application impact of loss on a
// loss-sensitive transport: by the Mathis/Padhye square-root law the
// achievable throughput scales as 1/sqrt(f), so the throughput lost
// relative to a loss-free link grows as 1 - min(1, k/sqrt(f)). The paper
// cites Padhye et al. [27] as the kind of relationship I(.) can encode;
// this concave penalty is provided for the ablation benches, which show how
// the choice of I changes which links the optimizer sacrifices.
func TCPThroughputPenalty(rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	// Normalize so that a 1e-6 loss rate (the operators' alarm level)
	// costs ~1% of throughput and the penalty saturates at 1.
	const k = 1e-4
	loss := 1 - k/math.Sqrt(rate)
	if loss < 0 {
		return 0
	}
	if loss > 1 {
		return 1
	}
	return loss
}

// StepPenalty returns a threshold penalty: links at or above cutoff cost 1,
// links below cost 0. With it, minimizing penalty reduces to maximizing the
// number of disabled corrupting links — the "optimizing for link removal"
// variant Appendix A also proves NP-complete.
func StepPenalty(cutoff float64) PenaltyFunc {
	return func(rate float64) float64 {
		if rate >= cutoff {
			return 1
		}
		return 0
	}
}
