package core

import (
	"testing"

	"corropt/internal/topology"
)

func TestEngineReportAndRepair(t *testing.T) {
	topo := smallClos(t)
	net, _ := NewNetwork(topo, 0.5)
	e := NewEngine(net, EngineConfig{})

	tor := topo.ToRs()[0]
	l1, l2 := topo.Switch(tor).Uplinks[0], topo.Switch(tor).Uplinks[1]

	// Below-threshold reports are recorded but not acted upon.
	d := e.ReportCorruption(l1, 1e-8)
	if d.Disabled {
		t.Fatal("sub-threshold corruption disabled a link")
	}
	if net.CorruptionRate(l1) != 1e-8 {
		t.Fatal("rate not recorded")
	}

	// A real report disables the link via the fast checker.
	d = e.ReportCorruption(l1, 1e-3)
	if !d.Disabled {
		t.Fatalf("link not disabled: %s", d.Reason)
	}
	if !net.Disabled(l1) {
		t.Fatal("network state not updated")
	}

	// The ToR has 2 uplinks and c=0.5: its second uplink must stay.
	d = e.ReportCorruption(l2, 1e-2)
	if d.Disabled {
		t.Fatal("disabling both uplinks would violate the constraint")
	}
	if d.Reason == "" {
		t.Fatal("negative decision carries no reason")
	}

	// Re-reporting a disabled link is a no-op positive.
	d = e.ReportCorruption(l1, 1e-3)
	if !d.Disabled || d.Reason != "already disabled" {
		t.Fatalf("re-report: %+v", d)
	}

	// Repairing l1 re-enables it and lets the optimizer disable l2 (the
	// worse link now active).
	newly := e.LinkRepaired(l1)
	if net.Disabled(l1) {
		t.Fatal("repaired link still disabled")
	}
	if net.CorruptionRate(l1) != 0 {
		t.Fatal("repaired link keeps its corruption record")
	}
	if len(newly) != 1 || newly[0] != l2 {
		t.Fatalf("optimizer disabled %v, want [%d]", newly, l2)
	}
	if !net.Disabled(l2) {
		t.Fatal("l2 not disabled after repair of l1")
	}
}

func TestEngineDefaultThreshold(t *testing.T) {
	topo := smallClos(t)
	net, _ := NewNetwork(topo, 0.5)
	e := NewEngine(net, EngineConfig{})
	if e.Threshold() != DefaultDetectionThreshold {
		t.Fatalf("threshold = %v", e.Threshold())
	}
	if e.Network() != net {
		t.Fatal("Network accessor broken")
	}
}

func TestEngineReoptimize(t *testing.T) {
	topo := smallClos(t)
	net, _ := NewNetwork(topo, 0.25)
	e := NewEngine(net, EngineConfig{})
	// Two corrupting links that the fast checker path never saw (e.g.
	// recorded out of band).
	net.SetCorruption(1, 1e-3)
	net.SetCorruption(2, 1e-3)
	disabled, st := e.Reoptimize()
	if len(disabled) != 2 {
		t.Fatalf("reoptimize disabled %d, want 2 (stats %+v)", len(disabled), st)
	}
}

func TestSwitchLocalMultiTier(t *testing.T) {
	// With r=3 tiers, sc must be c^(1/3).
	topo, err := topology.NewMultiTier([]int{8, 8, 8, 4}, []int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	net, _ := NewNetwork(topo, 0.5)
	sl, err := NewSwitchLocal(net, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.7937 // 0.5^(1/3)
	if sc := sl.SC(); sc < want-0.001 || sc > want+0.001 {
		t.Fatalf("sc = %v, want ≈%v", sc, want)
	}
}

func TestSwitchLocalGuaranteesConstraint(t *testing.T) {
	// Property: whatever corrupting set arrives, switch-local with
	// sc = c^(1/r) never violates the ToR capacity constraint.
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 2, ToRsPerPod: 3, AggsPerPod: 4, Spines: 8, SpineUplinksPerAgg: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 10; seed++ {
		net, _ := NewNetwork(topo, 0.6)
		// Corrupt every third link, shifted by seed.
		for l := seed; l < topo.NumLinks(); l += 3 {
			net.SetCorruption(topology.LinkID(l), 1e-3)
		}
		sl, err := NewSwitchLocal(net, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		sl.Sweep(1e-6)
		if frac := net.WorstToRFraction(); frac < 0.6 {
			t.Fatalf("seed %d: switch-local violated constraint: %v", seed, frac)
		}
	}
}

func TestSwitchLocalRawValidation(t *testing.T) {
	topo := smallClos(t)
	net, _ := NewNetwork(topo, 0.5)
	if _, err := NewSwitchLocalRaw(net, -0.5); err == nil {
		t.Fatal("negative sc accepted")
	}
	if _, err := NewSwitchLocal(net, 2); err == nil {
		t.Fatal("c > 1 accepted")
	}
}
