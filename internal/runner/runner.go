// Package runner is the bounded, deterministic worker pool behind the
// parallel experiment drivers: the paper's evaluation (§7) is a fan-out of
// independent scenario replays — policies × capacity constraints × DCN
// scales for the figures, 70 independent DCNs for the fleet study, a
// technicians × accuracy grid for the ticket-queue economics — which is
// embarrassingly parallel as long as the output stays byte-identical
// regardless of worker count and completion order.
//
// Determinism contract: Map collects results in index order, scenarios must
// derive any randomness from their own index or name (rngutil substreams
// rooted at the experiment seed — never from a stream shared across
// scenarios), and when several scenarios fail, the error of the
// lowest-indexed one is returned. Under that contract Map(1, ...) and
// Map(N, ...) are observationally identical, which the experiments package
// pins with a Workers∈{1,8} golden test.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic captured from a scenario so one crashing
// scenario fails the whole run with context instead of killing the process
// from a worker goroutine.
type PanicError struct {
	// Index is the scenario index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: scenario %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Unwrap exposes an error panic value (panic(err)) to errors.Is / errors.As
// chains; it returns nil for non-error panic values.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// captureStack snapshots the calling goroutine's stack, growing the buffer
// until the trace fits (a fixed buffer silently truncates the deep recursive
// stacks that are exactly the ones worth keeping when a scenario dies).
func captureStack() []byte {
	for size := 64 << 10; ; size *= 2 {
		buf := make([]byte, size)
		n := runtime.Stack(buf, false)
		if n < size || size >= 8<<20 {
			return buf[:n]
		}
	}
}

// Workers normalizes a worker-count knob: values <= 0 mean "one worker per
// CPU" (the -workers flag and experiments.Config.Workers default).
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on a pool of at most workers
// concurrent goroutines (workers <= 0 selects runtime.NumCPU) and returns
// the results in index order. All scenarios are attempted even when some
// fail; the returned error is that of the lowest-indexed failing scenario,
// with panics captured as *PanicError. workers == 1 or n <= 1 runs inline
// on the calling goroutine in index order, with no pool at all.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapScratch(workers, n,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) (T, error) { return fn(i) })
}

// chunkSize picks how many consecutive indices a worker claims per atomic
// operation: large enough to amortize the shared counter when n is big,
// small enough that a chunk of long scenarios cannot leave the other
// workers idle at the tail (at least 8 chunks per worker).
func chunkSize(workers, n int) int {
	c := n / (workers * 8)
	switch {
	case c < 1:
		return 1
	case c > 64:
		return 64
	default:
		return c
	}
}

// MapScratch is Map with per-worker scratch state: newScratch runs once per
// worker goroutine (and once total in the inline workers==1 path) and its
// value is threaded into every fn call that worker executes. Scenarios that
// reuse scratch must leave results independent of which worker — and in
// which order — ran them, the same determinism contract Map imposes;
// sim.Scratch's reset-between-scenarios discipline is the canonical
// example. Indices are claimed in contiguous chunks (chunkSize) to keep the
// shared counter off the hot path on large work lists; chunking is
// invisible in the output, which stays in index order.
func MapScratch[T, S any](workers, n int, newScratch func() S, fn func(i int, scratch S) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	call := func(i int, scratch S) {
		// The recover runs on the worker goroutine: a panicking scenario
		// must record its error and let the worker move on to the next
		// index, never tear down the pool (wg.Done sits above this frame).
		defer func() {
			if v := recover(); v != nil {
				errs[i] = &PanicError{Index: i, Value: v, Stack: captureStack()}
			}
		}()
		results[i], errs[i] = fn(i, scratch)
	}

	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		scratch := newScratch()
		for i := 0; i < n; i++ {
			call(i, scratch)
		}
	} else {
		// Workers pull the next chunk of scenario indices from a shared
		// counter, so long scenarios do not convoy short ones behind a
		// fixed striping.
		chunk := int64(chunkSize(workers, n))
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				scratch := newScratch()
				for {
					lo := int(next.Add(chunk)) - int(chunk)
					if lo >= n {
						return
					}
					hi := lo + int(chunk)
					if hi > n {
						hi = n
					}
					for i := lo; i < hi; i++ {
						call(i, scratch)
					}
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// ForEach is Map without per-scenario results: it runs fn(i) for every i in
// [0, n) under the same pool, ordering, and error contract.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
