package runner

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"corropt/internal/rngutil"
)

// TestMapOrderedResults pins the determinism contract: results come back in
// index order for every worker count, byte-identical to the serial run.
func TestMapOrderedResults(t *testing.T) {
	const n = 97
	scenario := func(i int) (string, error) {
		// Per-scenario substream, as the experiment drivers do.
		rng := rngutil.New(42).SplitIndex("scenario", i)
		return fmt.Sprintf("s%d:%x", i, rng.Int63()), nil
	}
	want, err := Map(1, n, scenario)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64, 0} {
		got, err := Map(workers, n, scenario)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from serial run", workers)
		}
	}
}

// TestMapBoundedConcurrency checks the pool never exceeds its worker bound.
func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(workers, 64, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent scenarios, bound is %d", p, workers)
	}
}

// TestMapLowestIndexError pins deterministic error selection: with several
// failures, the lowest-indexed scenario's error wins regardless of
// completion order.
func TestMapLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 32, func(i int) (int, error) {
			switch i {
			case 5:
				return 0, errLow
			case 20:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want the lowest-indexed error", workers, err)
		}
	}
}

// TestMapPanicCapture verifies a panicking scenario surfaces as *PanicError
// with its index and stack, and does not abort the other scenarios.
func TestMapPanicCapture(t *testing.T) {
	var completed atomic.Int64
	_, err := Map(4, 16, func(i int) (int, error) {
		if i == 7 {
			panic("boom")
		}
		completed.Add(1)
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Index != 7 {
		t.Fatalf("panic index = %d, want 7", pe.Index)
	}
	if !strings.Contains(pe.Error(), "boom") || len(pe.Stack) == 0 {
		t.Fatalf("panic error lacks value or stack: %v", pe)
	}
	if c := completed.Load(); c != 15 {
		t.Fatalf("only %d of 15 healthy scenarios completed", c)
	}
}

// TestMapEmptyAndSingle covers the degenerate sizes.
func TestMapEmptyAndSingle(t *testing.T) {
	if out, err := Map(8, 0, func(i int) (int, error) { return i, nil }); err != nil || out != nil {
		t.Fatalf("n=0: got (%v, %v)", out, err)
	}
	out, err := Map(8, 1, func(i int) (int, error) { return i + 100, nil })
	if err != nil || len(out) != 1 || out[0] != 100 {
		t.Fatalf("n=1: got (%v, %v)", out, err)
	}
}

// TestForEach covers the result-free variant.
func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

// TestWorkers pins the knob normalization.
func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.NumCPU() || Workers(-3) != runtime.NumCPU() {
		t.Fatal("Workers(<=0) must default to NumCPU")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
}

// TestPanicErrorUnwrap pins that panic(err) values stay reachable through
// errors.Is / errors.As across the pool boundary.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, err := Map(2, 4, func(i int) (int, error) {
		if i == 2 {
			panic(sentinel)
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is through PanicError failed: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Unwrap() != sentinel {
		t.Fatalf("Unwrap() = %v, want sentinel", err)
	}
	if (&PanicError{Value: "not an error"}).Unwrap() != nil {
		t.Fatal("Unwrap of a non-error panic value must be nil")
	}
}

// TestMapDeepPanicStack pins that the captured stack is not truncated for
// deep recursive panics: the trace must still reach back to the runner's
// call frame, which a fixed 64KB buffer loses.
func TestMapDeepPanicStack(t *testing.T) {
	var deep func(n int)
	deep = func(n int) {
		if n == 0 {
			panic("bottom")
		}
		deep(n - 1)
	}
	_, err := Map(1, 1, func(i int) (int, error) {
		deep(3000)
		return 0, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if len(pe.Stack) <= 64<<10 {
		t.Skipf("stack only %d bytes; recursion did not exceed the old fixed buffer", len(pe.Stack))
	}
	if !strings.Contains(string(pe.Stack), "TestMapDeepPanicStack") {
		t.Fatalf("deep stack truncated: %d bytes captured but the test frame is missing", len(pe.Stack))
	}
}

// TestMapAllPanicsNoDeadlock floods every worker with panicking scenarios:
// the pool must drain completely (no wedged wg.Wait), return the
// lowest-indexed panic, and still deliver the healthy results. Run with
// -race, this also shakes out unsynchronized error/result writes on the
// panic path.
func TestMapAllPanicsNoDeadlock(t *testing.T) {
	const n = 128
	results, err := Map(8, n, func(i int) (int, error) {
		if i%2 == 1 {
			panic(i)
		}
		return i * 10, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Index != 1 {
		t.Fatalf("panic index = %d, want the lowest-indexed panic (1)", pe.Index)
	}
	for i := 0; i < n; i += 2 {
		if results[i] != i*10 {
			t.Fatalf("healthy scenario %d lost its result: %d", i, results[i])
		}
	}
}
