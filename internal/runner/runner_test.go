package runner

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"corropt/internal/rngutil"
)

// TestMapOrderedResults pins the determinism contract: results come back in
// index order for every worker count, byte-identical to the serial run.
func TestMapOrderedResults(t *testing.T) {
	const n = 97
	scenario := func(i int) (string, error) {
		// Per-scenario substream, as the experiment drivers do.
		rng := rngutil.New(42).SplitIndex("scenario", i)
		return fmt.Sprintf("s%d:%x", i, rng.Int63()), nil
	}
	want, err := Map(1, n, scenario)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64, 0} {
		got, err := Map(workers, n, scenario)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from serial run", workers)
		}
	}
}

// TestMapBoundedConcurrency checks the pool never exceeds its worker bound.
func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(workers, 64, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent scenarios, bound is %d", p, workers)
	}
}

// TestMapLowestIndexError pins deterministic error selection: with several
// failures, the lowest-indexed scenario's error wins regardless of
// completion order.
func TestMapLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 32, func(i int) (int, error) {
			switch i {
			case 5:
				return 0, errLow
			case 20:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want the lowest-indexed error", workers, err)
		}
	}
}

// TestMapPanicCapture verifies a panicking scenario surfaces as *PanicError
// with its index and stack, and does not abort the other scenarios.
func TestMapPanicCapture(t *testing.T) {
	var completed atomic.Int64
	_, err := Map(4, 16, func(i int) (int, error) {
		if i == 7 {
			panic("boom")
		}
		completed.Add(1)
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Index != 7 {
		t.Fatalf("panic index = %d, want 7", pe.Index)
	}
	if !strings.Contains(pe.Error(), "boom") || len(pe.Stack) == 0 {
		t.Fatalf("panic error lacks value or stack: %v", pe)
	}
	if c := completed.Load(); c != 15 {
		t.Fatalf("only %d of 15 healthy scenarios completed", c)
	}
}

// TestMapEmptyAndSingle covers the degenerate sizes.
func TestMapEmptyAndSingle(t *testing.T) {
	if out, err := Map(8, 0, func(i int) (int, error) { return i, nil }); err != nil || out != nil {
		t.Fatalf("n=0: got (%v, %v)", out, err)
	}
	out, err := Map(8, 1, func(i int) (int, error) { return i + 100, nil })
	if err != nil || len(out) != 1 || out[0] != 100 {
		t.Fatalf("n=1: got (%v, %v)", out, err)
	}
}

// TestForEach covers the result-free variant.
func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

// TestMapScratchPerWorker pins the scratch contract: newScratch runs once
// per worker goroutine, every fn call receives that worker's own scratch,
// and no scratch value is shared across workers.
func TestMapScratchPerWorker(t *testing.T) {
	const workers, n = 4, 128
	var created atomic.Int64
	type scratch struct{ calls int }
	out, err := MapScratch(workers, n,
		func() *scratch {
			created.Add(1)
			return &scratch{}
		},
		func(i int, s *scratch) (*scratch, error) {
			s.calls++ // unsynchronized on purpose: -race flags sharing
			return s, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if c := created.Load(); c < 1 || c > workers {
		t.Fatalf("newScratch ran %d times, want 1..%d", c, workers)
	}
	// Every call must have been counted by exactly one scratch.
	total := 0
	seen := map[*scratch]bool{}
	for _, s := range out {
		if !seen[s] {
			seen[s] = true
			total += s.calls
		}
	}
	if total != n {
		t.Fatalf("scratch calls sum to %d, want %d", total, n)
	}
}

// TestMapScratchSerialReuse pins that the inline workers==1 path allocates
// exactly one scratch and reuses it for every index in order.
func TestMapScratchSerialReuse(t *testing.T) {
	var created int
	order := []int{}
	_, err := MapScratch(1, 10,
		func() int { created++; return created },
		func(i int, s int) (int, error) {
			if s != 1 {
				t.Fatalf("index %d got scratch %d, want the single instance", i, s)
			}
			order = append(order, i)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if created != 1 {
		t.Fatalf("newScratch ran %d times serially, want 1", created)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path visited %v, want ascending order", order)
		}
	}
}

// TestMapScratchChunkedDeterminism pins that chunked index claiming is
// invisible in the output across worker counts and n values that exercise
// chunk-boundary arithmetic (n not divisible by chunk, n < workers, large n).
func TestMapScratchChunkedDeterminism(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 65, 1000, 4097} {
		scenario := func(i int, _ struct{}) (string, error) {
			rng := rngutil.New(7).SplitIndex("chunk", i)
			return fmt.Sprintf("%d:%x", i, rng.Int63()), nil
		}
		want, err := MapScratch(1, n, func() struct{} { return struct{}{} }, scenario)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 0} {
			got, err := MapScratch(workers, n, func() struct{} { return struct{}{} }, scenario)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d workers=%d: results differ from serial run", n, workers)
			}
		}
	}
}

// TestMapScratchPanic pins that a panic mid-chunk records a *PanicError at
// the right index and the worker continues with the rest of its chunk.
func TestMapScratchPanic(t *testing.T) {
	var completed atomic.Int64
	_, err := MapScratch(2, 64,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) (struct{}, error) {
			if i == 9 {
				panic("mid-chunk")
			}
			completed.Add(1)
			return struct{}{}, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 9 {
		t.Fatalf("got %v, want *PanicError at index 9", err)
	}
	if c := completed.Load(); c != 63 {
		t.Fatalf("only %d of 63 healthy scenarios completed", c)
	}
}

// TestChunkSize pins the chunk heuristic's bounds: never below 1, never
// above 64, and small enough that every worker sees several chunks.
func TestChunkSize(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{8, 8, 1},       // tiny n: per-index claiming
		{8, 64, 1},      // n == workers*8: still 1
		{8, 128, 2},     // grows with n
		{1, 100000, 64}, // capped at 64
		{4, 0, 1},       // degenerate
	}
	for _, c := range cases {
		if got := chunkSize(c.workers, c.n); got != c.want {
			t.Errorf("chunkSize(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// TestWorkers pins the knob normalization.
func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.NumCPU() || Workers(-3) != runtime.NumCPU() {
		t.Fatal("Workers(<=0) must default to NumCPU")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
}

// TestPanicErrorUnwrap pins that panic(err) values stay reachable through
// errors.Is / errors.As across the pool boundary.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, err := Map(2, 4, func(i int) (int, error) {
		if i == 2 {
			panic(sentinel)
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is through PanicError failed: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Unwrap() != sentinel {
		t.Fatalf("Unwrap() = %v, want sentinel", err)
	}
	if (&PanicError{Value: "not an error"}).Unwrap() != nil {
		t.Fatal("Unwrap of a non-error panic value must be nil")
	}
}

// TestMapDeepPanicStack pins that the captured stack is not truncated for
// deep recursive panics: the trace must still reach back to the runner's
// call frame, which a fixed 64KB buffer loses.
func TestMapDeepPanicStack(t *testing.T) {
	var deep func(n int)
	deep = func(n int) {
		if n == 0 {
			panic("bottom")
		}
		deep(n - 1)
	}
	_, err := Map(1, 1, func(i int) (int, error) {
		deep(3000)
		return 0, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if len(pe.Stack) <= 64<<10 {
		t.Skipf("stack only %d bytes; recursion did not exceed the old fixed buffer", len(pe.Stack))
	}
	if !strings.Contains(string(pe.Stack), "TestMapDeepPanicStack") {
		t.Fatalf("deep stack truncated: %d bytes captured but the test frame is missing", len(pe.Stack))
	}
}

// TestMapAllPanicsNoDeadlock floods every worker with panicking scenarios:
// the pool must drain completely (no wedged wg.Wait), return the
// lowest-indexed panic, and still deliver the healthy results. Run with
// -race, this also shakes out unsynchronized error/result writes on the
// panic path.
func TestMapAllPanicsNoDeadlock(t *testing.T) {
	const n = 128
	results, err := Map(8, n, func(i int) (int, error) {
		if i%2 == 1 {
			panic(i)
		}
		return i * 10, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Index != 1 {
		t.Fatalf("panic index = %d, want the lowest-indexed panic (1)", pe.Index)
	}
	for i := 0; i < n; i += 2 {
		if results[i] != i*10 {
			t.Fatalf("healthy scenario %d lost its result: %d", i, results[i])
		}
	}
}
