package faults

import (
	"time"

	"corropt/internal/optics"
	"corropt/internal/topology"
)

// ID identifies a fault within one simulation.
type ID int64

// LinkEffect describes what a fault does to one link: extra optical loss per
// direction, transmitter power decay per side, and direct corruption-rate
// contributions for causes (bad transceiver, shared component) that corrupt
// packets without disturbing the optical power levels.
type LinkEffect struct {
	Link topology.LinkID
	// ExtraLossFrom[side] is excess attenuation added to the direction
	// transmitted from that side, in dB.
	ExtraLossFrom [2]optics.DB
	// TxDecay[side] lowers the transmit power at that side, in dB.
	TxDecay [2]optics.DB
	// DirectRate[dir] adds corruption in the given direction independent
	// of optics (topology.Up = 0, topology.Down = 1).
	DirectRate [2]float64
}

// Fault is one corruption event: a root cause striking one or more links at
// a point in simulated time. Shared-component faults carry several
// LinkEffects; all other causes exactly one.
type Fault struct {
	ID    ID
	Cause RootCause
	Start time.Duration
	// Effects lists the affected links. For SharedComponent faults all
	// effects sit on the same switch with similar corruption rates.
	Effects []LinkEffect
	// Reseatable distinguishes loosely-seated transceivers (fixed by
	// reseating) from genuinely bad ones (only replacement helps) for
	// BadTransceiver faults; §4's repair guidance is to reseat first and
	// replace if the issue persists.
	Reseatable bool
}

// Links returns the ids of all links the fault touches.
func (f *Fault) Links() []topology.LinkID {
	out := make([]topology.LinkID, len(f.Effects))
	for i, e := range f.Effects {
		out[i] = e.Link
	}
	return out
}

// PeakRate returns the largest direct corruption-rate contribution across
// the fault's effects; useful for ordering faults by severity in reports.
// Optics-mediated corruption is not included because it depends on the
// link's other active faults.
func (f *Fault) PeakRate() float64 {
	peak := 0.0
	for _, e := range f.Effects {
		for _, r := range e.DirectRate {
			if r > peak {
				peak = r
			}
		}
	}
	return peak
}
