package faults

import (
	"testing"
	"time"

	"corropt/internal/optics"
	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 4, ToRsPerPod: 4, AggsPerPod: 4, Spines: 8, SpineUplinksPerAgg: 4, BreakoutSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func testTech() optics.Technology {
	return optics.Technology{Name: "test", NominalTx: 0, TxThreshold: -4, RxThreshold: -10, PathLoss: 3}
}

func newInjector(t *testing.T, topo *topology.Topology, cfg InjectorConfig) *Injector {
	t.Helper()
	inj, err := NewInjector(topo, testTech(), cfg, rngutil.New(1).Split("inj"))
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestCauseMix(t *testing.T) {
	m := DefaultCauseMix()
	sum := 0.0
	for _, p := range m {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("default mix sums to %v", sum)
	}
	// Sampling the extremes.
	if m.Sample(0) != ConnectorContamination {
		t.Fatal("u=0 should sample the first cause")
	}
	if m.Sample(0.999999) != SharedComponent {
		t.Fatal("u→1 should sample the last cause")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("normalizing a zero mix should panic")
		}
	}()
	(CauseMix{}).Normalize()
}

func TestRepairsCoverAllCauses(t *testing.T) {
	for c := RootCause(0); c < RootCause(NumCauses); c++ {
		if len(c.Repairs()) == 0 {
			t.Fatalf("cause %v has no repair actions", c)
		}
		if c.String() == "" {
			t.Fatalf("cause %d has no name", c)
		}
	}
}

func TestApplyAndClear(t *testing.T) {
	topo := testTopo(t)
	st := NewState(topo, testTech())
	inj := newInjector(t, topo, InjectorConfig{})

	f := inj.NewFault(0)
	st.Apply(f)
	if st.NumActiveFaults() != 1 {
		t.Fatalf("active faults = %d", st.NumActiveFaults())
	}
	corrupting := st.CorruptingLinks(1e-8)
	if len(corrupting) == 0 {
		t.Fatal("fault produced no corrupting link")
	}
	// Applying twice is a no-op.
	st.Apply(f)
	if st.NumActiveFaults() != 1 {
		t.Fatal("duplicate Apply changed state")
	}
	st.Clear(f.ID)
	if st.NumActiveFaults() != 0 {
		t.Fatal("Clear did not remove fault")
	}
	if got := st.CorruptingLinks(1e-8); len(got) != 0 {
		t.Fatalf("links still corrupting after repair: %v", got)
	}
	// The optics must be fully restored.
	for _, l := range corrupting {
		ol := st.Optics(l)
		if ol.RxLow(optics.LowerSide) || ol.RxLow(optics.UpperSide) {
			t.Fatal("optics not restored after Clear")
		}
	}
	// Clearing twice is a no-op.
	st.Clear(f.ID)
}

func TestOverlappingFaults(t *testing.T) {
	topo := testTopo(t)
	st := NewState(topo, testTech())

	link := topology.LinkID(0)
	f1 := &Fault{ID: 1, Cause: BadTransceiver, Effects: []LinkEffect{{Link: link, DirectRate: [2]float64{0.01, 0}}}}
	f2 := &Fault{ID: 2, Cause: BadTransceiver, Effects: []LinkEffect{{Link: link, DirectRate: [2]float64{0.02, 0}}}}
	st.Apply(f1)
	st.Apply(f2)
	// The healthy optics contribute a sub-1e-8 floor, hence the tolerance.
	want := 1 - (1-0.01)*(1-0.02)
	if got := st.CorruptionRate(link, topology.Up); got < want || got > want+1e-7 {
		t.Fatalf("combined rate = %v, want ≈%v", got, want)
	}
	st.Clear(1)
	if got := st.CorruptionRate(link, topology.Up); got < 0.02 || got > 0.02+1e-7 {
		t.Fatalf("rate after clearing f1 = %v, want ≈0.02", got)
	}
	st.Clear(2)
	if got := st.CorruptionRate(link, topology.Up); got >= 1e-8 {
		t.Fatalf("rate after clearing all = %v", got)
	}
}

func TestContaminationSymptoms(t *testing.T) {
	topo := testTopo(t)
	st := NewState(topo, testTech())
	inj := newInjector(t, topo, InjectorConfig{})

	// Force a severe contamination fault.
	link := topology.LinkID(3)
	e := inj.singleLinkEffect(ConnectorContamination, link)
	// Make it strong enough to be over any detection threshold.
	for s := range e.ExtraLossFrom {
		if e.ExtraLossFrom[s] > 0 {
			e.ExtraLossFrom[s] = inj.lossFor(link, 0.01)
		}
	}
	f := &Fault{ID: 99, Cause: ConnectorContamination, Effects: []LinkEffect{e}}
	st.Apply(f)

	ol := st.Optics(link)
	// Contamination: Tx high on both sides, Rx low on at least one side.
	if ol.TxLow(optics.LowerSide) || ol.TxLow(optics.UpperSide) {
		t.Fatal("contamination must not lower TxPower")
	}
	if !ol.RxLow(optics.LowerSide) && !ol.RxLow(optics.UpperSide) {
		t.Fatal("contamination should starve one receiver")
	}
	if !st.Corrupting(link, 1e-6) {
		t.Fatalf("link not corrupting, worst rate %v", st.WorstRate(link))
	}
}

func TestDecayingTransmitterSymptoms(t *testing.T) {
	topo := testTopo(t)
	st := NewState(topo, testTech())
	inj := newInjector(t, topo, InjectorConfig{})

	link := topology.LinkID(5)
	var e LinkEffect
	e.Link = link
	e.TxDecay[optics.LowerSide] = inj.lossFor(link, 0.001)
	f := &Fault{ID: 100, Cause: DecayingTransmitter, Effects: []LinkEffect{e}}
	st.Apply(f)

	ol := st.Optics(link)
	if !ol.TxLow(optics.LowerSide) {
		t.Fatalf("decayed transmitter Tx = %v, threshold %v", ol.TxPower(optics.LowerSide), testTech().TxThreshold)
	}
	if !ol.RxLow(optics.UpperSide) {
		t.Fatal("receiver fed by decayed transmitter should be low")
	}
	if ol.RxLow(optics.LowerSide) {
		t.Fatal("reverse direction should be healthy")
	}
	if up, down := st.CorruptionRate(link, topology.Up), st.CorruptionRate(link, topology.Down); up < 1e-6 || down > 1e-8 {
		t.Fatalf("corruption should be one-way: up=%v down=%v", up, down)
	}
}

func TestSharedComponentLocality(t *testing.T) {
	topo := testTopo(t)
	st := NewState(topo, testTech())
	inj := newInjector(t, topo, InjectorConfig{Mix: CauseMix{SharedComponent: 1}})

	f := inj.NewFault(0)
	if f.Cause != SharedComponent {
		t.Fatalf("cause = %v", f.Cause)
	}
	if len(f.Effects) < 2 || len(f.Effects) > 4 {
		t.Fatalf("shared fault touches %d links, want 2..4", len(f.Effects))
	}
	st.Apply(f)
	// All affected links share a switch.
	counts := make(map[topology.SwitchID]int)
	for _, l := range f.Links() {
		lk := topo.Link(l)
		counts[lk.Lower]++
		counts[lk.Upper]++
	}
	shared := false
	for _, c := range counts {
		if c == len(f.Effects) {
			shared = true
		}
	}
	if !shared {
		t.Fatalf("shared-component links do not share a switch: %v", f.Links())
	}
	// Optical power stays good everywhere (the Table 2 signature).
	for _, l := range f.Links() {
		ol := st.Optics(l)
		if ol.RxLow(optics.LowerSide) || ol.RxLow(optics.UpperSide) || ol.TxLow(optics.LowerSide) || ol.TxLow(optics.UpperSide) {
			t.Fatal("shared-component fault should leave optics healthy")
		}
		if !st.Corrupting(l, 1e-8) {
			t.Fatal("shared-component link not corrupting")
		}
	}
}

func TestGeneratePoissonArrivals(t *testing.T) {
	topo := testTopo(t)
	inj := newInjector(t, topo, InjectorConfig{FaultsPerLinkPerDay: 0.01})
	horizon := 30 * 24 * time.Hour
	fs := inj.Generate(horizon)
	// Expected: 0.01 * numLinks * 30 days.
	want := 0.01 * float64(topo.NumLinks()) * 30
	if got := float64(len(fs)); got < want*0.6 || got > want*1.4 {
		t.Fatalf("generated %v faults, want ≈%v", got, want)
	}
	var prev time.Duration
	ids := make(map[ID]bool)
	for _, f := range fs {
		if f.Start < prev {
			t.Fatal("faults not ordered by start time")
		}
		if f.Start >= horizon {
			t.Fatal("fault beyond horizon")
		}
		if ids[f.ID] {
			t.Fatalf("duplicate fault id %d", f.ID)
		}
		ids[f.ID] = true
		prev = f.Start
	}
}

func TestGenerateDeterministic(t *testing.T) {
	topo := testTopo(t)
	a := newInjector(t, topo, InjectorConfig{FaultsPerLinkPerDay: 0.01})
	b := newInjector(t, topo, InjectorConfig{FaultsPerLinkPerDay: 0.01})
	fa := a.Generate(7 * 24 * time.Hour)
	fb := b.Generate(7 * 24 * time.Hour)
	if len(fa) != len(fb) {
		t.Fatalf("lengths differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Start != fb[i].Start || fa[i].Cause != fb[i].Cause || len(fa[i].Effects) != len(fb[i].Effects) {
			t.Fatalf("fault %d differs", i)
		}
	}
}

func TestCauseMixRespected(t *testing.T) {
	topo := testTopo(t)
	mix := CauseMix{ConnectorContamination: 0.5, BadTransceiver: 0.5}
	inj := newInjector(t, topo, InjectorConfig{Mix: mix, FaultsPerLinkPerDay: 0.05})
	fs := inj.Generate(30 * 24 * time.Hour)
	if len(fs) < 100 {
		t.Fatalf("too few faults to test mix: %d", len(fs))
	}
	counts := make(map[RootCause]int)
	for _, f := range fs {
		counts[f.Cause]++
	}
	if counts[DamagedFiber] > 0 || counts[SharedComponent] > 0 || counts[DecayingTransmitter] > 0 {
		t.Fatalf("zero-weight causes sampled: %v", counts)
	}
	frac := float64(counts[ConnectorContamination]) / float64(len(fs))
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("contamination fraction = %v, want ≈0.5", frac)
	}
}

func TestBidirectionalFraction(t *testing.T) {
	topo := testTopo(t)
	st := NewState(topo, testTech())
	inj := newInjector(t, topo, InjectorConfig{FaultsPerLinkPerDay: 0.02})
	fs := inj.Generate(6 * 30 * 24 * time.Hour)
	if len(fs) < 300 {
		t.Fatalf("too few faults: %d", len(fs))
	}
	// Apply each fault in isolation and measure directionality.
	bidi, total := 0, 0
	for _, f := range fs {
		st.Apply(f)
		for _, l := range f.Links() {
			if st.Corrupting(l, 1e-8) {
				total++
				if st.Bidirectional(l, 1e-8) {
					bidi++
				}
			}
		}
		st.Clear(f.ID)
	}
	frac := float64(bidi) / float64(total)
	// Paper: 8.2%; accept a generous band around it.
	if frac < 0.02 || frac > 0.20 {
		t.Fatalf("bidirectional fraction = %v, want ≈0.08", frac)
	}
}

func TestRateDistributionMatchesTable1(t *testing.T) {
	topo := testTopo(t)
	inj := newInjector(t, topo, InjectorConfig{})
	// Sample many rates and check bucket shares.
	n := 20000
	counts := [4]int{}
	for i := 0; i < n; i++ {
		r := inj.sampleRate()
		switch {
		case r < 1e-5:
			counts[0]++
		case r < 1e-4:
			counts[1]++
		case r < 1e-3:
			counts[2]++
		default:
			counts[3]++
		}
	}
	want := [4]float64{0.4723, 0.1843, 0.2166, 0.1267}
	for i := range counts {
		got := float64(counts[i]) / float64(n)
		if got < want[i]-0.03 || got > want[i]+0.03 {
			t.Fatalf("bucket %d share = %v, want ≈%v", i, got, want[i])
		}
	}
}

func TestInjectorConfigValidation(t *testing.T) {
	topo := testTopo(t)
	if _, err := NewInjector(topo, testTech(), InjectorConfig{SharedMinLinks: 1, SharedMaxLinks: 1}, rngutil.New(1)); err == nil {
		t.Fatal("SharedMinLinks < 2 accepted")
	}
	if _, err := NewInjector(topo, testTech(), InjectorConfig{FaultsPerLinkPerDay: -1}, rngutil.New(1)); err == nil {
		t.Fatal("negative fault rate accepted")
	}
	badTech := optics.Technology{Name: "bad", NominalTx: -20, RxThreshold: -10, PathLoss: 3}
	if _, err := NewInjector(topo, badTech, InjectorConfig{}, rngutil.New(1)); err == nil {
		t.Fatal("marginless technology accepted")
	}
}

func TestFaultAccessors(t *testing.T) {
	f := &Fault{
		ID:    7,
		Cause: BadTransceiver,
		Effects: []LinkEffect{
			{Link: 3, DirectRate: [2]float64{0.01, 0}},
			{Link: 9, DirectRate: [2]float64{0, 0.05}},
		},
	}
	links := f.Links()
	if len(links) != 2 || links[0] != 3 || links[1] != 9 {
		t.Fatalf("Links = %v", links)
	}
	if f.PeakRate() != 0.05 {
		t.Fatalf("PeakRate = %v", f.PeakRate())
	}
}

func TestSuppressLinkEffect(t *testing.T) {
	topo := testTopo(t)
	st := NewState(topo, testTech())
	f := &Fault{ID: 50, Cause: SharedComponent, Effects: []LinkEffect{
		{Link: 1, DirectRate: [2]float64{0.01, 0}},
		{Link: 2, DirectRate: [2]float64{0.01, 0}},
	}}
	st.Apply(f)
	st.SuppressLinkEffect(50, 1)
	if st.Corrupting(1, 1e-6) {
		t.Fatal("link 1 still corrupting after link-scoped repair")
	}
	if !st.Corrupting(2, 1e-6) {
		t.Fatal("link 2 should still corrupt")
	}
	if st.NumActiveFaults() != 1 {
		t.Fatal("fault should survive partial repair")
	}
	// Double suppression is a no-op.
	st.SuppressLinkEffect(50, 1)
	// Repairing the last link removes the fault entirely.
	st.SuppressLinkEffect(50, 2)
	if st.NumActiveFaults() != 0 {
		t.Fatal("fault should be gone after all links repaired")
	}
}

func TestRepairLink(t *testing.T) {
	topo := testTopo(t)
	st := NewState(topo, testTech())
	f1 := &Fault{ID: 60, Cause: BadTransceiver, Effects: []LinkEffect{{Link: 3, DirectRate: [2]float64{0.01, 0}}}}
	f2 := &Fault{ID: 61, Cause: ConnectorContamination, Effects: []LinkEffect{{Link: 3, ExtraLossFrom: [2]optics.DB{12, 0}}}}
	st.Apply(f1)
	st.Apply(f2)
	causes := st.RepairLink(3)
	if len(causes) != 2 {
		t.Fatalf("repaired causes = %v", causes)
	}
	if st.Corrupting(3, 1e-8) {
		t.Fatal("link still corrupting after RepairLink")
	}
	if st.NumActiveFaults() != 0 {
		t.Fatal("single-link faults should be fully cleared")
	}
}

// TestStateReset pins that Reset restores a pooled State to the healthy
// state a fresh construction would produce, including technology
// reassignment for a different fabric's optics mix.
func TestStateReset(t *testing.T) {
	topo := testTopo(t)
	st := NewState(topo, testTech())
	inj := newInjector(t, topo, InjectorConfig{})
	var cleared []ID
	for i := 0; i < 5; i++ {
		f := inj.NewFault(time.Duration(i) * time.Hour)
		st.Apply(f)
		if i%2 == 0 {
			cleared = append(cleared, f.ID)
		}
	}
	for _, id := range cleared[:1] {
		st.Clear(id)
	}

	tech2 := testTech()
	tech2.Name = "reassigned"
	tech2.NominalTx = 1
	st.Reset(func(topology.LinkID) optics.Technology { return tech2 })

	if st.NumActiveFaults() != 0 {
		t.Fatalf("%d faults survive Reset", st.NumActiveFaults())
	}
	if got := st.CorruptingLinks(1e-9); len(got) != 0 {
		t.Fatalf("links still corrupting after Reset: %v", got)
	}
	if st.Tech().Name != "reassigned" || st.TechOf(0).Name != "reassigned" {
		t.Fatal("Reset did not reassign technology")
	}
	for l := 0; l < topo.NumLinks(); l++ {
		ol := st.Optics(topology.LinkID(l))
		if ol.TxPower(optics.LowerSide) != 1 || ol.TxPower(optics.UpperSide) != 1 {
			t.Fatalf("link %d optics not re-dressed for the new tech", l)
		}
	}
	// The reset state must behave like a fresh one under new faults.
	f := inj.NewFault(0)
	st.Apply(f)
	fresh := NewState(topo, tech2)
	fresh.Apply(f)
	for l := 0; l < topo.NumLinks(); l++ {
		id := topology.LinkID(l)
		if st.WorstRate(id) != fresh.WorstRate(id) {
			t.Fatalf("link %d rate %v after Reset, fresh %v", l, st.WorstRate(id), fresh.WorstRate(id))
		}
	}
}
