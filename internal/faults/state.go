package faults

import (
	"corropt/internal/optics"
	"corropt/internal/topology"
)

// State tracks the optical condition and corruption rate of every link in a
// topology as faults are applied and repaired. It is the ground truth the
// telemetry layer reads and the mitigation algorithms react to.
//
// State is not safe for concurrent use; simulations drive it from a single
// event loop.
type State struct {
	topo *topology.Topology
	// tech is the first link's technology, kept for the common
	// single-technology case; techs holds the per-link assignment.
	tech   optics.Technology
	techs  []optics.Technology
	links  []*optics.Link
	active [][]*Fault // per link, faults touching it
	faults map[ID]*Fault
	// suppressed[id] marks links whose effects of fault id were repaired
	// individually (a link-scoped repair fixes the connector or
	// transceiver of one link without touching the fault's other links).
	suppressed map[ID]map[topology.LinkID]bool
	// direct[dir][link] is the combined direct (non-optical) corruption
	// rate in that direction.
	direct [2][]float64
}

// NewState returns a healthy State for the topology where every link uses
// the given transceiver technology.
func NewState(topo *topology.Topology, tech optics.Technology) *State {
	return NewMultiTechState(topo, func(topology.LinkID) optics.Technology { return tech })
}

// NewMultiTechState returns a healthy State where each link's transceiver
// technology is chosen by assign — real fabrics mix 10G/40G/100G optics
// with different power thresholds, which is why Algorithm 1 keys
// PowerThreshRx and PowerThreshTx per technology (§5.2).
func NewMultiTechState(topo *topology.Topology, assign func(topology.LinkID) optics.Technology) *State {
	n := topo.NumLinks()
	s := &State{
		topo:       topo,
		techs:      make([]optics.Technology, n),
		links:      make([]*optics.Link, n),
		active:     make([][]*Fault, n),
		faults:     make(map[ID]*Fault),
		suppressed: make(map[ID]map[topology.LinkID]bool),
	}
	for i := range s.links {
		s.techs[i] = assign(topology.LinkID(i))
		s.links[i] = optics.NewLink(s.techs[i])
	}
	if n > 0 {
		s.tech = s.techs[0]
	}
	s.direct[0] = make([]float64, n)
	s.direct[1] = make([]float64, n)
	return s
}

// Reset restores s to the healthy state NewMultiTechState(s.Topology(),
// assign) would construct, reusing every allocation: link objects are
// re-dressed in place, per-link fault lists are truncated, and the fault
// maps are cleared. The topology cannot change — scratch pools key reusable
// States by topology. After Reset the State is observationally identical to
// a fresh one, which the sim scratch differential tests pin.
func (s *State) Reset(assign func(topology.LinkID) optics.Technology) {
	for i := range s.links {
		s.techs[i] = assign(topology.LinkID(i))
		s.links[i].ResetTech(s.techs[i])
		s.active[i] = s.active[i][:0]
		s.direct[0][i] = 0
		s.direct[1][i] = 0
	}
	clear(s.faults)
	clear(s.suppressed)
	if len(s.links) > 0 {
		s.tech = s.techs[0]
	}
}

// TechOf reports the transceiver technology of link l.
func (s *State) TechOf(l topology.LinkID) optics.Technology { return s.techs[l] }

// Topology returns the underlying topology.
func (s *State) Topology() *topology.Topology { return s.topo }

// Tech returns the transceiver technology in use.
func (s *State) Tech() optics.Technology { return s.tech }

// Apply activates a fault, updating the optical state and corruption rates
// of every affected link.
func (s *State) Apply(f *Fault) {
	if _, dup := s.faults[f.ID]; dup {
		return
	}
	s.faults[f.ID] = f
	for _, e := range f.Effects {
		s.active[e.Link] = append(s.active[e.Link], f)
		s.recompute(e.Link)
	}
}

// Clear removes a fault (it has been repaired), restoring the affected
// links unless other faults still hold them down.
func (s *State) Clear(id ID) {
	f, ok := s.faults[id]
	if !ok {
		return
	}
	delete(s.faults, id)
	delete(s.suppressed, id)
	for _, e := range f.Effects {
		lst := s.active[e.Link]
		for i, af := range lst {
			if af.ID == id {
				s.active[e.Link] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
		s.recompute(e.Link)
	}
}

// SuppressLinkEffect removes fault id's effects on link l only — the
// outcome of a successful link-scoped repair (cleaning one connector,
// replacing one transceiver) on a fault that may span several links. When
// every affected link of the fault has been repaired this way, the fault is
// removed entirely.
func (s *State) SuppressLinkEffect(id ID, l topology.LinkID) {
	f, ok := s.faults[id]
	if !ok {
		return
	}
	m := s.suppressed[id]
	if m == nil {
		m = make(map[topology.LinkID]bool)
		s.suppressed[id] = m
	}
	if m[l] {
		return
	}
	m[l] = true
	lst := s.active[l]
	for i, af := range lst {
		if af.ID == id {
			s.active[l] = append(lst[:i], lst[i+1:]...)
			break
		}
	}
	s.recompute(l)
	if len(m) == len(f.Effects) {
		s.Clear(id)
	}
}

// RepairLink removes every active fault effect on link l (a fully
// successful link repair) and returns the root causes that were addressed.
func (s *State) RepairLink(l topology.LinkID) []RootCause {
	var causes []RootCause
	for len(s.active[l]) > 0 {
		f := s.active[l][0]
		causes = append(causes, f.Cause)
		s.SuppressLinkEffect(f.ID, l)
	}
	return causes
}

// recompute rebuilds link l's optical state and direct rates from its
// currently active faults.
func (s *State) recompute(l topology.LinkID) {
	ol := s.links[l]
	ol.Reset()
	s.direct[topology.Up][l] = 0
	s.direct[topology.Down][l] = 0
	for _, f := range s.active[l] {
		for _, e := range f.Effects {
			if e.Link != l {
				continue
			}
			ol.AddLoss(optics.LowerSide, e.ExtraLossFrom[optics.LowerSide])
			ol.AddLoss(optics.UpperSide, e.ExtraLossFrom[optics.UpperSide])
			if d := e.TxDecay[optics.LowerSide]; d != 0 {
				ol.SetTxPower(optics.LowerSide, ol.TxPower(optics.LowerSide)-optics.DBm(d))
			}
			if d := e.TxDecay[optics.UpperSide]; d != 0 {
				ol.SetTxPower(optics.UpperSide, ol.TxPower(optics.UpperSide)-optics.DBm(d))
			}
			s.direct[topology.Up][l] = combineRates(s.direct[topology.Up][l], e.DirectRate[topology.Up])
			s.direct[topology.Down][l] = combineRates(s.direct[topology.Down][l], e.DirectRate[topology.Down])
		}
	}
}

// combineRates composes two independent loss processes: a packet survives
// only if it survives both.
func combineRates(a, b float64) float64 { return 1 - (1-a)*(1-b) }

// Optics returns the optical state of link l. Callers must treat it as
// read-only; mutations belong to Apply/Clear.
func (s *State) Optics(l topology.LinkID) *optics.Link { return s.links[l] }

// CorruptionRate reports the corruption loss rate for frames traveling in
// the given direction over link l: the optics-derived rate at the receiving
// side combined with any direct (non-optical) fault contributions.
func (s *State) CorruptionRate(l topology.LinkID, dir topology.Direction) float64 {
	recv := optics.UpperSide
	if dir == topology.Down {
		recv = optics.LowerSide
	}
	return combineRates(s.links[l].CorruptionRate(recv), s.direct[dir][l])
}

// WorstRate reports the higher of the two directions' corruption rates,
// which is what link-disabling decisions consider given that links can only
// be disabled as a whole.
func (s *State) WorstRate(l topology.LinkID) float64 {
	up := s.CorruptionRate(l, topology.Up)
	down := s.CorruptionRate(l, topology.Down)
	if up > down {
		return up
	}
	return down
}

// Corrupting reports whether link l corrupts at or above threshold in
// either direction.
func (s *State) Corrupting(l topology.LinkID, threshold float64) bool {
	return s.WorstRate(l) >= threshold
}

// Bidirectional reports whether link l corrupts at or above threshold in
// both directions (the 8.2% case of Figure 5a).
func (s *State) Bidirectional(l topology.LinkID, threshold float64) bool {
	return s.CorruptionRate(l, topology.Up) >= threshold &&
		s.CorruptionRate(l, topology.Down) >= threshold
}

// CorruptingLinks returns all links corrupting at or above threshold.
func (s *State) CorruptingLinks(threshold float64) []topology.LinkID {
	var out []topology.LinkID
	for l := 0; l < s.topo.NumLinks(); l++ {
		if s.Corrupting(topology.LinkID(l), threshold) {
			out = append(out, topology.LinkID(l))
		}
	}
	return out
}

// ActiveFaults returns the faults currently affecting link l.
func (s *State) ActiveFaults(l topology.LinkID) []*Fault { return s.active[l] }

// Fault returns an active fault by id.
func (s *State) Fault(id ID) (*Fault, bool) {
	f, ok := s.faults[id]
	return f, ok
}

// NumActiveFaults reports how many faults are currently active.
func (s *State) NumActiveFaults() int { return len(s.faults) }
