package faults

import (
	"fmt"
	"math"
	"time"

	"corropt/internal/optics"
	"corropt/internal/rngutil"
	"corropt/internal/stats"
	"corropt/internal/topology"
)

// InjectorConfig parameterizes fault generation.
type InjectorConfig struct {
	// FaultsPerLinkPerDay is the Poisson arrival intensity per link. The
	// paper does not publish absolute fault rates; the default is chosen
	// so a few percent of links corrupt over a three-month trace, matching
	// the qualitative "corruption impacts few links" finding of §3.
	FaultsPerLinkPerDay float64
	// Mix is the root-cause distribution; zero value means
	// DefaultCauseMix.
	Mix CauseMix
	// RateBucketWeights gives the probability of each Table 1 corruption
	// bucket for a new fault's corruption rate; zero value means the
	// corruption column of Table 1 (47.23/18.43/21.66/12.67%).
	RateBucketWeights [4]float64
	// MaxRate caps sampled corruption rates; the open-ended last bucket
	// of Table 1 is sampled log-uniformly up to this value. Default 0.1
	// (Figures 7 and 9 show ~1e-2 loss as typical severe corruption).
	MaxRate float64
	// SharedMinLinks and SharedMaxLinks bound how many co-located links a
	// shared-component failure takes down; defaults 2 and 4 (a breakout
	// cable splits one port four ways).
	SharedMinLinks, SharedMaxLinks int
}

func (c *InjectorConfig) fillDefaults() {
	if c.FaultsPerLinkPerDay == 0 {
		c.FaultsPerLinkPerDay = 1.0 / (30 * 100) // one fault per link per 100 months
	}
	zero := CauseMix{}
	if c.Mix == zero {
		c.Mix = DefaultCauseMix()
	}
	if c.RateBucketWeights == [4]float64{} {
		c.RateBucketWeights = [4]float64{0.4723, 0.1843, 0.2166, 0.1267}
	}
	if c.MaxRate == 0 {
		c.MaxRate = 0.1
	}
	if c.SharedMinLinks == 0 {
		c.SharedMinLinks = 2
	}
	if c.SharedMaxLinks == 0 {
		c.SharedMaxLinks = 4
	}
}

// Injector generates Fault events over a topology.
type Injector struct {
	cfg    InjectorConfig
	topo   *topology.Topology
	techOf func(topology.LinkID) optics.Technology
	rng    *rngutil.Source
	next   ID
}

// NewInjector returns an Injector drawing randomness from rng, with every
// link using the same transceiver technology.
func NewInjector(topo *topology.Topology, tech optics.Technology, cfg InjectorConfig, rng *rngutil.Source) (*Injector, error) {
	return NewMultiTechInjector(topo, func(topology.LinkID) optics.Technology { return tech }, cfg, rng)
}

// NewMultiTechInjector returns an Injector for a fabric whose links mix
// transceiver technologies; loss magnitudes are derived from each link's
// own optical margin.
func NewMultiTechInjector(topo *topology.Topology, techOf func(topology.LinkID) optics.Technology, cfg InjectorConfig, rng *rngutil.Source) (*Injector, error) {
	cfg.fillDefaults()
	if cfg.SharedMinLinks < 2 || cfg.SharedMaxLinks < cfg.SharedMinLinks {
		return nil, fmt.Errorf("faults: invalid shared-component link bounds [%d, %d]", cfg.SharedMinLinks, cfg.SharedMaxLinks)
	}
	if cfg.FaultsPerLinkPerDay < 0 {
		return nil, fmt.Errorf("faults: negative fault rate %v", cfg.FaultsPerLinkPerDay)
	}
	for l := 0; l < topo.NumLinks(); l++ {
		tech := techOf(topology.LinkID(l))
		if healthyMargin(tech) <= 0 {
			return nil, fmt.Errorf("faults: technology %q (link %d) has no healthy optical margin", tech.Name, l)
		}
	}
	return &Injector{cfg: cfg, topo: topo, techOf: techOf, rng: rng}, nil
}

// healthyMargin is the optical margin of a fault-free link of the given
// technology.
func healthyMargin(tech optics.Technology) optics.DB {
	return optics.DB(tech.NominalTx - optics.DBm(tech.PathLoss) - tech.RxThreshold)
}

// Generate produces the faults arriving within [0, horizon), ordered by
// start time. Calling Generate again continues the fault ID sequence but
// restarts time at zero.
func (inj *Injector) Generate(horizon time.Duration) []*Fault {
	var out []*Fault
	totalPerDay := inj.cfg.FaultsPerLinkPerDay * float64(inj.topo.NumLinks())
	if totalPerDay <= 0 {
		return nil
	}
	meanGap := time.Duration(float64(24*time.Hour) / totalPerDay)
	t := time.Duration(float64(meanGap) * inj.rng.ExpFloat64())
	for t < horizon {
		out = append(out, inj.NewFault(t))
		t += time.Duration(float64(meanGap) * inj.rng.ExpFloat64())
	}
	return out
}

// NewFault creates a single fault starting at the given time, with root
// cause, location, severity and symptoms sampled from the configured
// distributions.
func (inj *Injector) NewFault(start time.Duration) *Fault {
	cause := inj.cfg.Mix.Sample(inj.rng.Float64())
	f := &Fault{ID: inj.next, Cause: cause, Start: start}
	inj.next++
	switch cause {
	case SharedComponent:
		f.Effects = inj.sharedEffects()
	case BadTransceiver:
		// Half are merely loose (reseating fixes them), half are dead.
		f.Reseatable = inj.rng.Bool(0.5)
		link := topology.LinkID(inj.rng.Intn(inj.topo.NumLinks()))
		f.Effects = []LinkEffect{inj.singleLinkEffect(cause, link)}
	default:
		link := topology.LinkID(inj.rng.Intn(inj.topo.NumLinks()))
		f.Effects = []LinkEffect{inj.singleLinkEffect(cause, link)}
	}
	return f
}

// sampleRate draws a corruption rate from the Table 1 bucket mix.
func (inj *Injector) sampleRate() float64 {
	buckets := stats.Table1Buckets()
	u := inj.rng.Float64()
	acc := 0.0
	idx := len(buckets) - 1
	for i, w := range inj.cfg.RateBucketWeights {
		acc += w
		if u < acc {
			idx = i
			break
		}
	}
	b := buckets[idx]
	hi := b.Hi
	if math.IsInf(hi, 1) {
		hi = inj.cfg.MaxRate
	}
	return stats.LogUniform(inj.rng.Float64(), b.Lo, hi)
}

// similarRate perturbs a base rate by up to ±25%, for the "similar
// corruption loss rates" of co-located and bidirectional corruption.
func (inj *Injector) similarRate(base float64) float64 {
	return base * inj.rng.Range(0.75, 1.25)
}

// marginFor inverts optics.CorruptionRateFromMargin for rates above its
// 1e-9 floor: the (negative) margin at which a receiver corrupts at the
// target rate.
func marginFor(rate float64) optics.DB {
	if rate < 1e-9 {
		rate = 1e-9
	}
	return optics.DB(-math.Log10(rate/1e-9) / 1.5)
}

// lossFor converts a target corruption rate into the excess attenuation
// that produces it on a healthy link of l's technology.
func (inj *Injector) lossFor(l topology.LinkID, rate float64) optics.DB {
	return healthyMargin(inj.techOf(l)) - marginFor(rate)
}

func dirSendSide(d topology.Direction) optics.Side {
	if d == topology.Up {
		return optics.LowerSide
	}
	return optics.UpperSide
}

func (inj *Injector) singleLinkEffect(cause RootCause, link topology.LinkID) LinkEffect {
	e := LinkEffect{Link: link}
	dir := topology.Direction(inj.rng.Intn(2))
	bidi := inj.rng.Bool(cause.BidirectionalProb())
	rate := inj.sampleRate()
	switch cause {
	case ConnectorContamination:
		// Not all contamination starves the receiver: some causes back
		// reflections that corrupt while RxPower stays high, which is why
		// the engine's accuracy cannot reach 100% (§4, root cause 1).
		if inj.rng.Bool(0.15) {
			e.DirectRate[dir] = rate
			if bidi {
				e.DirectRate[1-dir] = inj.similarRate(rate)
			}
			break
		}
		// The common form: dirt attenuates the light arriving at the
		// corrupting receiver — loss on the path transmitted from the
		// sending side of the corrupting direction, TxPower high on both
		// sides.
		e.ExtraLossFrom[dirSendSide(dir)] = inj.lossFor(link, rate)
		if bidi {
			e.ExtraLossFrom[dirSendSide(dir).Opposite()] = inj.lossFor(link, inj.similarRate(rate))
		}
	case DamagedFiber:
		// A bent fiber leaks in both directions, so RxPower drops on both
		// sides (§4's signature), but the corruption may still exceed the
		// detection threshold in only one direction.
		e.ExtraLossFrom[dirSendSide(dir)] = inj.lossFor(link, rate)
		other := dirSendSide(dir).Opposite()
		if bidi {
			e.ExtraLossFrom[other] = inj.lossFor(link, inj.similarRate(rate))
		} else {
			// Push the reverse direction just below the Rx threshold:
			// low power, but corruption still under the 1e-8 lossy floor
			// (the crossing sits ~0.67 dB below sensitivity).
			e.ExtraLossFrom[other] = healthyMargin(inj.techOf(link)) + optics.DB(inj.rng.Range(0.05, 0.6))
		}
	case DecayingTransmitter:
		// The aging laser launches less light: Tx low on the send side,
		// Rx low on the receive side, corruption one-way.
		e.TxDecay[dirSendSide(dir)] = inj.lossFor(link, rate)
	case BadTransceiver:
		// Power levels stay high; the transceiver just fails to decode.
		e.DirectRate[dir] = rate
		if bidi {
			e.DirectRate[1-dir] = inj.similarRate(rate)
		}
	default:
		panic("faults: singleLinkEffect called with " + cause.String())
	}
	return e
}

// sharedEffects builds the effects of a shared-component failure: several
// links on one switch corrupt at the same time with similar rates and good
// optical power everywhere.
func (inj *Injector) sharedEffects() []LinkEffect {
	// Pick a switch with at least SharedMinLinks attached links; prefer a
	// breakout group when the seed link has one. Breakout cables split a
	// high-speed port into several low-speed ones and therefore sit
	// between switches of different port speeds — in practice the
	// aggregation↔spine boundary — so seeds are biased away from the ToR
	// stage (backplane faults can still strike anywhere).
	var links []topology.LinkID
	for attempt := 0; attempt < 64 && len(links) < inj.cfg.SharedMinLinks; attempt++ {
		seed := topology.LinkID(inj.rng.Intn(inj.topo.NumLinks()))
		if inj.topo.Switch(inj.topo.Link(seed).Lower).Stage == 0 && inj.rng.Bool(0.8) {
			continue
		}
		if group := inj.topo.SameBreakout(seed); len(group) >= inj.cfg.SharedMinLinks {
			links = group
			continue
		}
		sw := inj.topo.Link(seed).Lower
		links = inj.topo.LinksOnSwitch(sw)
	}
	if len(links) < inj.cfg.SharedMinLinks {
		// Degenerate topology (e.g. single-link): fall back to whatever
		// is attached to the first switch.
		links = inj.topo.LinksOnSwitch(0)
	}
	n := inj.cfg.SharedMinLinks
	if spread := inj.cfg.SharedMaxLinks - inj.cfg.SharedMinLinks; spread > 0 {
		n += inj.rng.Intn(spread + 1)
	}
	if n > len(links) {
		n = len(links)
	}
	perm := inj.rng.Perm(len(links))
	base := inj.sampleRate()
	effects := make([]LinkEffect, 0, n)
	for i := 0; i < n; i++ {
		l := links[perm[i]]
		var e LinkEffect
		e.Link = l
		dir := topology.Direction(inj.rng.Intn(2))
		e.DirectRate[dir] = inj.similarRate(base)
		if inj.rng.Bool(SharedComponent.BidirectionalProb()) {
			e.DirectRate[1-dir] = inj.similarRate(base)
		}
		effects = append(effects, e)
	}
	return effects
}
