// Package faults models the root causes of packet corruption identified in
// §4 of the paper, the optical symptoms each produces, and a fault injector
// that generates corruption events with the statistical shape reported in
// §2–§3 (Table 1 loss buckets, 8.2% bidirectionality, weak spatial locality
// via shared-component failures).
package faults

import "fmt"

// RootCause enumerates the five corruption root causes of Table 2.
type RootCause int

const (
	// ConnectorContamination: dirt, oil, pits, chips or scratches on a
	// fiber connector. Symptom: high TxPower both sides, low RxPower in
	// one direction only. Repair: clean the fiber.
	ConnectorContamination RootCause = iota
	// DamagedFiber: a bent or physically damaged fiber leaking signal.
	// Symptom: low RxPower on both sides with high TxPower. Repair:
	// replace the cable/fiber.
	DamagedFiber
	// DecayingTransmitter: an aging laser with deteriorating launch power.
	// Symptom: low TxPower on the send side and low RxPower on the receive
	// side. Repair: replace the transceiver on the sending side.
	DecayingTransmitter
	// BadTransceiver: a faulty or loosely seated transceiver. Symptom:
	// good power levels on both sides yet the link corrupts, and only one
	// link on the switch is affected. Repair: reseat, then replace.
	BadTransceiver
	// SharedComponent: a faulty breakout cable or switch backplane taking
	// several co-located links down at once with similar corruption rates
	// and good optics. Repair: replace the shared component (or rewire).
	// This cause is primarily responsible for corruption's weak spatial
	// locality (§3).
	SharedComponent

	numCauses
)

// NumCauses is the number of distinct root causes.
const NumCauses = int(numCauses)

// String implements fmt.Stringer.
func (c RootCause) String() string {
	switch c {
	case ConnectorContamination:
		return "connector-contamination"
	case DamagedFiber:
		return "damaged-fiber"
	case DecayingTransmitter:
		return "decaying-transmitter"
	case BadTransceiver:
		return "bad-transceiver"
	case SharedComponent:
		return "shared-component"
	default:
		return fmt.Sprintf("RootCause(%d)", int(c))
	}
}

// RepairAction enumerates the concrete repairs Algorithm 1 can recommend.
type RepairAction int

const (
	// ActionUnknown means no recommendation could be produced (e.g. the
	// switch type exposes no optical power data, as for some switches in
	// the deployment of §7.2).
	ActionUnknown RepairAction = iota
	// ActionCleanFiber cleans connectors with an optical cleaning kit.
	ActionCleanFiber
	// ActionReplaceFiber replaces the cable/fiber.
	ActionReplaceFiber
	// ActionReseatTransceiver unplugs and replugs the transceiver.
	ActionReseatTransceiver
	// ActionReplaceTransceiver replaces the transceiver on the corrupting
	// link's receive side.
	ActionReplaceTransceiver
	// ActionReplaceOppositeTransceiver replaces the transceiver on the far
	// side (the decaying transmitter case).
	ActionReplaceOppositeTransceiver
	// ActionReplaceSharedComponent replaces a breakout cable or switch, or
	// rewires to unused ports.
	ActionReplaceSharedComponent
)

// String implements fmt.Stringer.
func (a RepairAction) String() string {
	switch a {
	case ActionUnknown:
		return "unknown"
	case ActionCleanFiber:
		return "clean-fiber"
	case ActionReplaceFiber:
		return "replace-fiber"
	case ActionReseatTransceiver:
		return "reseat-transceiver"
	case ActionReplaceTransceiver:
		return "replace-transceiver"
	case ActionReplaceOppositeTransceiver:
		return "replace-opposite-transceiver"
	case ActionReplaceSharedComponent:
		return "replace-shared-component"
	default:
		return fmt.Sprintf("RepairAction(%d)", int(a))
	}
}

// Repairs reports the actions that actually fix a fault with this root
// cause, in the order a technician would try them. Any action in the list
// counts as a correct repair; actions outside it leave the fault in place.
func (c RootCause) Repairs() []RepairAction {
	switch c {
	case ConnectorContamination:
		// Cleaning fixes contamination; a full fiber replacement renews
		// the connectors too.
		return []RepairAction{ActionCleanFiber, ActionReplaceFiber}
	case DamagedFiber:
		return []RepairAction{ActionReplaceFiber}
	case DecayingTransmitter:
		return []RepairAction{ActionReplaceOppositeTransceiver}
	case BadTransceiver:
		// Reseating fixes loose transceivers; replacement fixes bad ones.
		return []RepairAction{ActionReseatTransceiver, ActionReplaceTransceiver}
	case SharedComponent:
		return []RepairAction{ActionReplaceSharedComponent}
	default:
		return nil
	}
}

// CauseMix is a probability distribution over root causes.
type CauseMix [NumCauses]float64

// DefaultCauseMix returns the root-cause mix used by the fault injector,
// chosen at the midpoints of Table 2's contribution ranges and normalized:
// contamination 17–57%, bent/damaged fiber 14–48%, decaying transmitter
// <1%, bad/loose transceiver 6–45%, shared component 10–26%.
func DefaultCauseMix() CauseMix {
	return CauseMix{
		ConnectorContamination: 0.35,
		DamagedFiber:           0.27,
		DecayingTransmitter:    0.01,
		BadTransceiver:         0.22,
		SharedComponent:        0.15,
	}
}

// Normalize scales the mix so it sums to one. It panics on a non-positive
// total because an all-zero mix cannot be sampled from.
func (m CauseMix) Normalize() CauseMix {
	total := 0.0
	for _, p := range m {
		total += p
	}
	if total <= 0 {
		panic("faults: cause mix has non-positive total")
	}
	for i := range m {
		m[i] /= total
	}
	return m
}

// Sample draws a cause given a uniform value u in [0,1).
func (m CauseMix) Sample(u float64) RootCause {
	acc := 0.0
	for c, p := range m {
		acc += p
		if u < acc {
			return RootCause(c)
		}
	}
	return RootCause(NumCauses - 1)
}

// BidirectionalProb is the per-cause probability that a fault corrupts both
// directions of the link. The values are chosen so that the aggregate
// bidirectional fraction under DefaultCauseMix matches the 8.2% the paper
// measures (§3, Figure 5), with fiber damage — which attenuates both
// directions — contributing most of it.
func (c RootCause) BidirectionalProb() float64 {
	switch c {
	case ConnectorContamination:
		return 0.02
	case DamagedFiber:
		return 0.25
	case DecayingTransmitter:
		return 0
	case BadTransceiver:
		return 0.02
	case SharedComponent:
		return 0.03
	default:
		return 0
	}
}
