// Package traffic models link utilization and congestion loss, the foil
// against which the paper contrasts corruption (§2–§3):
//
//   - congestion loss is strongly correlated with outgoing utilization
//     (mean Pearson ≈ 0.62 on the log of loss rate),
//   - it varies by orders of magnitude over a day (high coefficient of
//     variation),
//   - it affects many links but almost always mildly (Table 1: 92.44% of
//     congested links lose under 1e-5),
//   - it exhibits strong spatial locality (Figure 4: the affected-switch
//     fraction is ~20% of a random spread) because congestion clusters on
//     hotspot switches,
//   - and it is usually bidirectional (Figure 5: 72.7% of congested links
//     lose in both directions).
//
// Utilization follows a diurnal pattern; loss is a convex function of
// utilization above a knee, with multiplicative sampling noise. All draws
// are deterministic in (seed, link, direction, time) so experiments
// reproduce exactly.
package traffic

import (
	"hash/fnv"
	"math"
	"time"

	"corropt/internal/rngutil"
	"corropt/internal/stats"
	"corropt/internal/topology"
)

// Config parameterizes the traffic model.
type Config struct {
	// CongestedLinkFraction is the fraction of link-directions that are
	// congestion-prone. Default 0.10.
	CongestedLinkFraction float64
	// BidirectionalProb is the probability that a congestion-prone link
	// is prone in both directions. Default 0.727 (Figure 5b).
	BidirectionalProb float64
	// Knee is the utilization above which loss begins. Default 0.7.
	Knee float64
	// SeverityBucketWeights distributes congested links' mean loss rates
	// over the Table 1 buckets. Default is the congestion column:
	// 92.44/6.35/0.99/0.22%.
	SeverityBucketWeights [4]float64
	// NoiseSigma is the standard deviation of the multiplicative
	// log-normal sampling noise on loss rates. Default 0.8.
	NoiseSigma float64
}

func (c *Config) fillDefaults() {
	if c.CongestedLinkFraction == 0 {
		c.CongestedLinkFraction = 0.10
	}
	if c.BidirectionalProb == 0 {
		c.BidirectionalProb = 0.727
	}
	if c.Knee == 0 {
		c.Knee = 0.7
	}
	if c.SeverityBucketWeights == [4]float64{} {
		c.SeverityBucketWeights = [4]float64{0.9244, 0.0635, 0.0099, 0.0022}
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.8
	}
}

// linkDirParams holds the per-direction traffic parameters of one link.
type linkDirParams struct {
	baseUtil float64 // mean utilization
	amp      float64 // diurnal amplitude
	phase    float64 // diurnal phase in radians
	severity float64 // peak loss scale; 0 for non-congested directions
}

// Model generates utilization and congestion loss time series.
type Model struct {
	cfg   Config
	topo  *topology.Topology
	seed  uint64
	par   [2][]linkDirParams // indexed by direction, link
	hot   map[topology.SwitchID]bool
	prone [2][]bool
}

// New builds a traffic model over the topology, deriving all randomness
// from rng.
func New(topo *topology.Topology, cfg Config, rng *rngutil.Source) *Model {
	cfg.fillDefaults()
	m := &Model{cfg: cfg, topo: topo, seed: rng.Seed(), hot: make(map[topology.SwitchID]bool)}
	n := topo.NumLinks()
	for d := 0; d < 2; d++ {
		m.par[d] = make([]linkDirParams, n)
		m.prone[d] = make([]bool, n)
	}

	// Congestion clusters in hotspot regions: a link failure or a traffic
	// surge congests a whole neighborhood, not isolated links (this is
	// what gives congestion its strong spatial locality in Figure 4 and
	// its high bidirectionality in Figure 5). We model a hotspot as a
	// pod whose bottom-stage (ToR↔aggregation) links all become prone;
	// a small scattered remainder is spread uniformly.
	targetDirs := int(cfg.CongestedLinkFraction * float64(2*n))
	assigned := 0
	mark := func(l topology.LinkID, d topology.Direction) {
		if !m.prone[d][l] {
			m.prone[d][l] = true
			assigned++
		}
	}
	markLink := func(l topology.LinkID) {
		d := topology.Direction(rng.Intn(2))
		mark(l, d)
		if rng.Bool(cfg.BidirectionalProb) {
			mark(l, 1-d)
		}
		lk := topo.Link(l)
		m.hot[lk.Lower] = true
		m.hot[lk.Upper] = true
	}

	// Group bottom-stage links by the pod of their lower endpoint.
	podLinks := make(map[int][]topology.LinkID)
	var pods []int
	topo.Links(func(l *topology.Link) {
		low := topo.Switch(l.Lower)
		if low.Stage != 0 {
			return
		}
		if _, seen := podLinks[low.Pod]; !seen {
			pods = append(pods, low.Pod)
		}
		podLinks[low.Pod] = append(podLinks[low.Pod], l.ID)
	})
	rng.Shuffle(len(pods), func(i, j int) { pods[i], pods[j] = pods[j], pods[i] })
	clustered := int(0.85 * float64(targetDirs))
	for _, pod := range pods {
		if assigned >= clustered {
			break
		}
		for _, l := range podLinks[pod] {
			if assigned >= clustered {
				break
			}
			markLink(l)
		}
	}
	for attempt := 0; assigned < targetDirs && attempt < 10*targetDirs; attempt++ {
		markLink(topology.LinkID(rng.Intn(n)))
	}

	// Per-direction parameters.
	day := make([]float64, 96) // 15-minute grid for severity calibration
	for li := 0; li < n; li++ {
		for d := 0; d < 2; d++ {
			p := &m.par[d][li]
			p.phase = rng.Range(0, 2*math.Pi)
			if m.prone[d][li] {
				// Congested directions ride near the knee so the diurnal
				// peak pushes them over it for part of the day.
				p.baseUtil = rng.Range(cfg.Knee-0.1, cfg.Knee+0.05)
				p.amp = rng.Range(0.15, 0.3)
				meanShape := m.meanShape(p, day)
				if meanShape <= 0 {
					meanShape = 1e-3
				}
				target := m.sampleSeverity(rng)
				p.severity = target / meanShape
			} else {
				p.baseUtil = rng.Range(0.05, cfg.Knee-0.15)
				p.amp = rng.Range(0.05, 0.15)
			}
		}
	}
	return m
}

// sampleSeverity draws a congested link's target mean loss rate from the
// configured Table 1 bucket weights.
func (m *Model) sampleSeverity(rng *rngutil.Source) float64 {
	buckets := stats.Table1Buckets()
	u := rng.Float64()
	acc := 0.0
	idx := len(buckets) - 1
	for i, w := range m.cfg.SeverityBucketWeights {
		acc += w
		if u < acc {
			idx = i
			break
		}
	}
	b := buckets[idx]
	hi := b.Hi
	if math.IsInf(hi, 1) {
		hi = 1e-2
	}
	return stats.LogUniform(rng.Float64(), b.Lo, hi)
}

// meanShape numerically averages the loss shape over one day for severity
// calibration.
func (m *Model) meanShape(p *linkDirParams, grid []float64) float64 {
	sum := 0.0
	for i := range grid {
		t := time.Duration(i) * 15 * time.Minute
		u := m.utilAt(p, t, 0) // noiseless
		sum += m.shape(u)
	}
	return sum / float64(len(grid))
}

// shape is the loss fraction of severity at utilization u.
func (m *Model) shape(u float64) float64 {
	if u <= m.cfg.Knee {
		return 0
	}
	x := (u - m.cfg.Knee) / (1 - m.cfg.Knee)
	return x * x
}

func (m *Model) utilAt(p *linkDirParams, at time.Duration, noise float64) float64 {
	day := float64(24 * time.Hour)
	u := p.baseUtil + p.amp*math.Sin(2*math.Pi*float64(at)/day+p.phase) + noise
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// hashNoise produces two deterministic uniform draws in (0,1) for a
// (link, direction, time) sample.
func (m *Model) hashNoise(l topology.LinkID, d topology.Direction, at time.Duration) (float64, float64) {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{m.seed, uint64(l), uint64(d), uint64(at / time.Second)} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	x := h.Sum64()
	// Split into two 32-bit halves, avoid exact 0.
	u1 := (float64(x>>32) + 1) / float64(1<<32+1)
	u2 := (float64(x&0xffffffff) + 1) / float64(1<<32+1)
	return u1, u2
}

// normal converts two uniforms into a standard normal via Box-Muller.
func normal(u1, u2 float64) float64 {
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Utilization reports the utilization of link l in direction d at virtual
// time at, in [0, 1].
func (m *Model) Utilization(l topology.LinkID, d topology.Direction, at time.Duration) float64 {
	u1, u2 := m.hashNoise(l, d, at)
	n := normal(u1, u2) * 0.02
	return m.utilAt(&m.par[d][l], at, n)
}

// LossRate reports the congestion loss rate of link l in direction d at
// virtual time at. Non-congested directions lose essentially nothing; prone
// directions lose as a convex function of utilization above the knee, with
// heavy multiplicative noise (this is what makes congestion's coefficient
// of variation large).
func (m *Model) LossRate(l topology.LinkID, d topology.Direction, at time.Duration) float64 {
	p := &m.par[d][l]
	if p.severity == 0 {
		return 0
	}
	u1, u2 := m.hashNoise(l, d, at)
	util := m.utilAt(p, at, normal(u1, u2)*0.02)
	s := m.shape(util)
	if s == 0 {
		return 0
	}
	noise := math.Exp(normal(u2, u1) * m.cfg.NoiseSigma)
	rate := p.severity * s * noise
	if rate > 1 {
		return 1
	}
	return rate
}

// Prone reports whether direction d of link l is congestion-prone.
func (m *Model) Prone(l topology.LinkID, d topology.Direction) bool { return m.prone[d][l] }

// CongestedLinks returns the links with at least one congestion-prone
// direction.
func (m *Model) CongestedLinks() []topology.LinkID {
	var out []topology.LinkID
	for l := 0; l < m.topo.NumLinks(); l++ {
		if m.prone[0][l] || m.prone[1][l] {
			out = append(out, topology.LinkID(l))
		}
	}
	return out
}

// Hotspots returns the switches hosting congestion-prone links.
func (m *Model) Hotspots() []topology.SwitchID {
	var out []topology.SwitchID
	for s := range m.hot {
		out = append(out, s)
	}
	return out
}
