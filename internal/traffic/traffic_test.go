package traffic

import (
	"math"
	"testing"
	"time"

	"corropt/internal/rngutil"
	"corropt/internal/stats"
	"corropt/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 8, ToRsPerPod: 8, AggsPerPod: 4, Spines: 16, SpineUplinksPerAgg: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func newModel(t *testing.T) (*Model, *topology.Topology) {
	t.Helper()
	topo := testTopo(t)
	return New(topo, Config{}, rngutil.New(42).Split("traffic")), topo
}

func TestUtilizationBounds(t *testing.T) {
	m, topo := newModel(t)
	for l := 0; l < topo.NumLinks(); l += 7 {
		for _, d := range []topology.Direction{topology.Up, topology.Down} {
			for h := 0; h < 48; h++ {
				u := m.Utilization(topology.LinkID(l), d, time.Duration(h)*time.Hour)
				if u < 0 || u > 1 {
					t.Fatalf("utilization out of range: %v", u)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	topo := testTopo(t)
	a := New(topo, Config{}, rngutil.New(42).Split("traffic"))
	b := New(topo, Config{}, rngutil.New(42).Split("traffic"))
	for l := 0; l < 50; l++ {
		at := time.Duration(l) * 13 * time.Minute
		if a.LossRate(topology.LinkID(l), topology.Up, at) != b.LossRate(topology.LinkID(l), topology.Up, at) {
			t.Fatal("loss rates not deterministic")
		}
		if a.Utilization(topology.LinkID(l), topology.Down, at) != b.Utilization(topology.LinkID(l), topology.Down, at) {
			t.Fatal("utilizations not deterministic")
		}
	}
}

func TestCongestedFraction(t *testing.T) {
	m, topo := newModel(t)
	congested := m.CongestedLinks()
	frac := float64(len(congested)) / float64(topo.NumLinks())
	// 10% of directions prone; as links it lands in a looser band because
	// of bidirectional assignments.
	if frac < 0.04 || frac > 0.25 {
		t.Fatalf("congested link fraction = %v", frac)
	}
}

func TestNonProneLosesNothing(t *testing.T) {
	m, topo := newModel(t)
	for l := 0; l < topo.NumLinks(); l++ {
		for _, d := range []topology.Direction{topology.Up, topology.Down} {
			if m.Prone(topology.LinkID(l), d) {
				continue
			}
			for h := 0; h < 24; h++ {
				if r := m.LossRate(topology.LinkID(l), d, time.Duration(h)*time.Hour); r != 0 {
					t.Fatalf("non-prone link %d dir %v loses %v", l, d, r)
				}
			}
		}
	}
}

func TestBidirectionalCongestion(t *testing.T) {
	m, _ := newModel(t)
	both, total := 0, 0
	for _, l := range m.CongestedLinks() {
		total++
		if m.Prone(l, topology.Up) && m.Prone(l, topology.Down) {
			both++
		}
	}
	if total == 0 {
		t.Fatal("no congested links")
	}
	frac := float64(both) / float64(total)
	// Paper: 72.7% of links with congestion lose bidirectionally.
	if frac < 0.5 || frac > 0.9 {
		t.Fatalf("bidirectional congestion fraction = %v, want ≈0.73", frac)
	}
}

func TestLocality(t *testing.T) {
	m, topo := newModel(t)
	congested := m.CongestedLinks()
	if len(congested) < 10 {
		t.Fatalf("too few congested links: %d", len(congested))
	}
	affected := topo.SwitchesWithLinks(congested)
	// Random baseline: scatter the same number of links uniformly.
	rng := rngutil.New(7)
	randomLinks := make([]topology.LinkID, len(congested))
	for i := range randomLinks {
		randomLinks[i] = topology.LinkID(rng.Intn(topo.NumLinks()))
	}
	randomAffected := topo.SwitchesWithLinks(randomLinks)
	ratio := float64(len(affected)) / float64(len(randomAffected))
	// Figure 4: congestion's ratio ≈ 0.2; require clearly sub-random.
	if ratio > 0.6 {
		t.Fatalf("congestion locality ratio = %v, want strong locality (<0.6)", ratio)
	}
}

func TestLossCorrelatesWithUtilization(t *testing.T) {
	m, _ := newModel(t)
	congested := m.CongestedLinks()
	var correlations []float64
	for _, l := range congested {
		for _, d := range []topology.Direction{topology.Up, topology.Down} {
			if !m.Prone(l, d) {
				continue
			}
			var utils, logLoss []float64
			for i := 0; i < 7*96; i++ { // one week of 15-minute samples
				at := time.Duration(i) * 15 * time.Minute
				utils = append(utils, m.Utilization(l, d, at))
				logLoss = append(logLoss, log10floor(m.LossRate(l, d, at)))
			}
			r, err := stats.Pearson(utils, logLoss)
			if err != nil {
				t.Fatal(err)
			}
			correlations = append(correlations, r)
		}
		if len(correlations) >= 60 {
			break
		}
	}
	mean := stats.Mean(correlations)
	// Paper: mean Pearson between outgoing utilization and congestion loss
	// is 0.62; our synthetic model should be clearly positive.
	if mean < 0.4 {
		t.Fatalf("mean Pearson = %v, want strongly positive", mean)
	}
}

func TestCongestionCVIsHigh(t *testing.T) {
	m, _ := newModel(t)
	var cvs []float64
	for _, l := range m.CongestedLinks() {
		for _, d := range []topology.Direction{topology.Up, topology.Down} {
			if !m.Prone(l, d) {
				continue
			}
			var series []float64
			for i := 0; i < 7*96; i++ {
				series = append(series, m.LossRate(l, d, time.Duration(i)*15*time.Minute))
			}
			cvs = append(cvs, stats.CoefficientOfVariation(series))
		}
		if len(cvs) >= 40 {
			break
		}
	}
	med, err := stats.Quantile(cvs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Congestion loss switches on and off with the diurnal cycle; its CV
	// must be large (corruption's, by §3, stays small).
	if med < 1 {
		t.Fatalf("median congestion CV = %v, want > 1", med)
	}
}

func TestTable1CongestionBuckets(t *testing.T) {
	m, _ := newModel(t)
	var meanRates []float64
	for _, l := range m.CongestedLinks() {
		for _, d := range []topology.Direction{topology.Up, topology.Down} {
			if !m.Prone(l, d) {
				continue
			}
			sum := 0.0
			n := 7 * 96
			for i := 0; i < n; i++ {
				sum += m.LossRate(l, d, time.Duration(i)*15*time.Minute)
			}
			meanRates = append(meanRates, sum/float64(n))
		}
	}
	shares := stats.BucketShares(meanRates, stats.Table1Buckets())
	// Congestion column of Table 1: the lightest bucket dominates and the
	// heaviest is rare.
	if shares[0] < 0.75 {
		t.Fatalf("lightest congestion bucket share = %v, want > 0.75 (paper: 0.92)", shares[0])
	}
	if shares[3] > 0.05 {
		t.Fatalf("heaviest congestion bucket share = %v, want < 0.05 (paper: 0.0022)", shares[3])
	}
}

func log10floor(x float64) float64 {
	if x < 1e-9 {
		x = 1e-9
	}
	return math.Log10(x)
}
