// Package gcdiag runs the Go compiler's optimization-diagnostics mode
// (`go build -gcflags=-json=0,<dir>`) over a module and parses the LSP-style
// JSON stream it emits per package: heap escapes, bounds checks, inlining
// decisions, nil-check eliminations. The escapes analyzer
// (internal/analysis) cross-checks these against the hotalloc analyzer's
// static allocation-freedom proofs: the static analysis reasons over the
// source-level allocation catalogue, the compiler reports what actually
// survived escape analysis and bounds-check elimination — a missed inline or
// an escaping local turns a "proved 0 allocs" hot path into a real heap path
// that only the benchmark ratchet would catch, late and without a source
// position. Running both closes that gap at lint time.
//
// Mechanics: the -json=0,<dir> flag writes one <dir>/<pkg path>/<pkg>.json
// file per compiled package, a stream of JSON objects. Header objects carry
// a "file" key (absolute path) and set the current file for the diagnostics
// that follow; diagnostic objects carry an LSP Diagnostic shape — a "range"
// with 1-based lines, a "code" ("escapes", "leak", "isInBounds",
// "isSliceInBounds", "canInlineFunction", ...), and a human "message".
// Because the temp dir appears inside the -gcflags value,
// every Collect call gets a fresh build-cache key and the module packages
// always recompile (stdlib dependencies stay cached), so diagnostics are
// never swallowed by a warm cache.
package gcdiag

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Diag is one compiler diagnostic, attributed to a file and 1-based line.
type Diag struct {
	// File is the absolute path of the source file.
	File string `json:"file"`
	// Line is the 1-based source line (the compiler emits 1-based lines in
	// the LSP range, unlike the LSP spec's 0-based convention).
	Line int `json:"line"`
	// Code is the diagnostic kind: "escapes" (a local moved to the heap),
	// "escape" (a value boxed by an interface conversion — this flavor also
	// emits an empty-message twin diagnostic on the same line), "leak",
	// "isInBounds", "isSliceInBounds", "canInlineFunction",
	// "cannotInlineFunction", "inlineCall", "nilcheck", ...
	Code string `json:"code"`
	// Message is the compiler's text, e.g. "x escapes to heap".
	Message string `json:"message"`
}

// A Report is the parsed diagnostic set of one build, indexed by file.
type Report struct {
	// ByFile maps absolute file paths to their diagnostics, line order.
	ByFile map[string][]Diag `json:"by_file"`
}

// Diags returns the diagnostics of one file (by absolute path), nil when
// the file produced none.
func (r *Report) Diags(file string) []Diag {
	if r == nil {
		return nil
	}
	return r.ByFile[file]
}

// Total counts all diagnostics in the report.
func (r *Report) Total() int {
	n := 0
	for _, ds := range r.ByFile {
		n += len(ds)
	}
	return n
}

// Collect compiles the given patterns of the module rooted at dir with
// optimization diagnostics enabled and parses every emitted package stream
// into one Report. Binaries land in a temp dir, never in the tree.
func Collect(dir string, patterns ...string) (*Report, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	tmp, err := os.MkdirTemp("", "gcdiag-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	diagDir := filepath.Join(tmp, "diag")
	binDir := filepath.Join(tmp, "bin")
	if err := os.MkdirAll(diagDir, 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(binDir, 0o755); err != nil {
		return nil, err
	}

	var run func(output bool) error
	run = func(output bool) error {
		args := []string{"build"}
		if output {
			args = append(args, "-o", binDir+string(filepath.Separator))
		}
		args = append(args, "-gcflags=-json=0,"+diagDir)
		args = append(args, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			// Library-only modules (analyzer test fixtures) reject -o; retry
			// without it — with no main packages nothing is written anywhere.
			if output && strings.Contains(stderr.String(), "no main packages") {
				return run(false)
			}
			return fmt.Errorf("gcdiag: go build: %w\n%s", err, stderr.String())
		}
		return nil
	}
	if err := run(true); err != nil {
		return nil, err
	}

	report := &Report{ByFile: make(map[string][]Diag)}
	err = filepath.WalkDir(diagDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".json") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return parseStream(f, report)
	})
	if err != nil {
		return nil, err
	}
	for file := range report.ByFile {
		ds := report.ByFile[file]
		sort.SliceStable(ds, func(i, j int) bool { return ds[i].Line < ds[j].Line })
	}
	return report, nil
}

// streamObject is the union of the two object shapes in a package's
// diagnostic stream: headers carry File (and version/package metadata);
// diagnostics carry Code/Message/Range.
type streamObject struct {
	File    string `json:"file"`
	Code    string `json:"code"`
	Message string `json:"message"`
	Range   struct {
		Start struct {
			Line int `json:"line"`
		} `json:"start"`
	} `json:"range"`
}

// parseStream reads one package's JSON object stream into the report.
// Header objects ({"file": "/abs/path", "version": ...}) switch the current
// file; diagnostic objects attach to it.
func parseStream(f *os.File, report *Report) error {
	dec := json.NewDecoder(bufio.NewReader(f))
	current := ""
	for dec.More() {
		var obj streamObject
		if err := dec.Decode(&obj); err != nil {
			return fmt.Errorf("gcdiag: %s: %w", f.Name(), err)
		}
		if obj.File != "" && obj.Code == "" {
			current = obj.File
			continue
		}
		if current == "" || obj.Code == "" {
			continue
		}
		report.ByFile[current] = append(report.ByFile[current], Diag{
			File:    current,
			Line:    obj.Range.Start.Line,
			Code:    obj.Code,
			Message: obj.Message,
		})
	}
	return nil
}
