package analysis

import (
	"go/token"
	"path/filepath"
	"strconv"
	"strings"

	"corropt/internal/analysis/flow"
)

// HotAlloc proves the event hot paths allocation-free: every function whose
// doc comment carries `//lint:hotpath` must be transitively free of
// heap-allocating operations — make/new, append growth, map writes, slice
// and &-composite literals, closure capture, interface boxing, string
// concatenation, goroutine spawns, and calls the analysis cannot prove
// allocation-free (dynamic calls, non-allowlisted standard-library calls).
// The walk follows the module-wide static call graph built by
// internal/analysis/flow, descends into nested function literals, and
// reports each offending site once per root with the shortest root→site
// call chain.
//
// Sanctioned escapes use the standard `//lint:allow hotalloc <reason>`
// machinery, at either end of a chain:
//   - at the allocation or call site, the annotation sanctions that line
//     for every root that reaches it (amortized append growth, documented
//     slow paths) — this works across packages because sites are marked at
//     summarize time;
//   - at the root declaration, it accepts every remaining finding for that
//     root (findings are reported at the root's position).
//
// The proof is conservative where the compiler is smarter: non-escaping
// closures and value composite literals are stack-allocated in practice,
// and the analysis has no escape information — see flow/alloc.go for the
// exact operation catalogue and its documented caveats. Annotated roots are
// additionally tied to 0 allocs/op benchmark floors in
// scripts/bench_floors.txt (see the hotpath floor family), so the static
// proof and the measured ratchet cannot drift apart.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "proves //lint:hotpath annotated functions transitively " +
		"allocation-free over the module call graph, reporting the " +
		"shortest root→site chain per violation (DESIGN.md §8)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	w := pass.world()
	for _, root := range w.PackageFacts(pass.Path) {
		if !root.Hotpath || root.Fn == nil {
			continue
		}
		reportHotpathAllocs(pass, w, root)
	}
	return nil
}

// reportHotpathAllocs BFSes the call graph from one hot-path root and
// reports every reachable unsanctioned allocation at the root's position
// (so a root-level lint:allow accepts them) with the shortest call chain to
// the site. Visited summaries are pruned by the world's transitive
// allocation-effect closure, so provably clean subtrees cost nothing.
func reportHotpathAllocs(pass *Pass, w *flow.World, root *flow.FuncFacts) {
	type entry struct {
		fs    *flow.FuncFacts
		chain []string
	}
	visited := map[*flow.FuncFacts]bool{root: true}
	queue := []entry{{root, []string{root.Name}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, a := range cur.fs.Allocs {
			if a.Sanctioned {
				continue
			}
			reportHotAlloc(pass, root, a.What, a.Pos, cur.chain)
		}
		push := func(next *flow.FuncFacts, hop string) {
			if visited[next] {
				return
			}
			visited[next] = true
			if !w.MayAlloc(next) {
				return // transitively allocation-free: nothing to report below
			}
			chain := make([]string, len(cur.chain)+1)
			copy(chain, cur.chain)
			chain[len(cur.chain)] = hop
			queue = append(queue, entry{next, chain})
		}
		for _, cs := range cur.fs.CallSites {
			if cs.Sanctioned {
				continue
			}
			callee := w.FuncFactsOf(cs.Callee)
			if callee == nil {
				if !flow.NonAllocCallee(cs.Callee) {
					reportHotAlloc(pass, root,
						"call to "+flow.FuncDisplayName(cs.Callee)+" — cannot prove it allocation-free (no body in the analyzed module)",
						cs.Pos, cur.chain)
				}
				continue
			}
			push(callee, callee.Name)
		}
		// Nested literals run inline on the hot path (callback iteration,
		// deferred closures); spawned literals run off it and are covered by
		// the go-statement alloc site instead.
		for _, lit := range cur.fs.Lits {
			push(lit, "func literal")
		}
	}
}

func reportHotAlloc(pass *Pass, root *flow.FuncFacts, what string, pos token.Pos, chain []string) {
	msg := "hot path " + root.Name + " is not allocation-free: " + what +
		" at " + shortPos(pass.Fset, pos)
	if len(chain) > 1 {
		msg += " (chain: " + strings.Join(chain, " -> ") + ")"
	}
	pass.Reportf(root.Pos, "%s", msg)
}

// shortPos renders a position as base-filename:line, keeping messages
// stable across checkouts.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}
