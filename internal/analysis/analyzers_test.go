package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"corropt/internal/analysis"
	"corropt/internal/analysis/analysistest"
	"corropt/internal/analysis/gcdiag"
)

// TestNoDeterminism pins the nodeterminism analyzer against golden packages:
// nodet carries every forbidden entropy source plus lint:allow negative
// cases, nodet_wall checks the per-package rules mapping (wall clock only),
// and nodet_off must produce nothing because it is absent from the config.
func TestNoDeterminism(t *testing.T) {
	a := analysis.NewNoDeterminism(map[string]analysis.Rules{
		"nodet":      analysis.RulesAll,
		"nodet_wall": analysis.ForbidWallClock,
	})
	analysistest.Run(t, "testdata", a, "nodet", "nodet_wall", "nodet_off")
}

// TestMapRange pins the maprange analyzer: map-order leaks are flagged,
// collect-then-sort / commutative reductions / annotated loops are not.
func TestMapRange(t *testing.T) {
	a := analysis.NewMapRange(map[string]bool{"mapr": true})
	analysistest.Run(t, "testdata", a, "mapr")
}

// TestErrWrap pins the errwrap analyzer: %w enforcement plus dropped-error
// detection in errw, %w only in wraponly.
func TestErrWrap(t *testing.T) {
	a := analysis.NewErrWrap(analysis.ErrWrapConfig{
		WrapPrefixes:    []string{"errw", "wraponly"},
		DroppedPrefixes: []string{"errw"},
	})
	analysistest.Run(t, "testdata", a, "errw", "wraponly")
}

// TestMutexHeld pins the mutexheld analyzer: guarded.Net's fields may only
// be written by the sanctioned writers, closures inherit their enclosing
// writer's sanction, same-named methods on other types stay exempt, and
// cross-package writes to exported guarded fields are flagged.
func TestMutexHeld(t *testing.T) {
	a := analysis.NewMutexHeld([]analysis.GuardedStruct{{
		Pkg:     "guarded",
		Type:    "Net",
		Fields:  []string{"sum", "items", "count", "Pub"},
		Writers: []string{"New", "Add", "Apply"},
	}})
	analysistest.Run(t, "testdata", a, "guarded", "guardedx")
}

// TestLockOrder pins the lockorder analyzer: opposite-order acquisition
// cycles (reported once at the earliest witness), direct and call-mediated
// reacquisition, and channel/WaitGroup/IO blocking under a held lock —
// including `defer Unlock` held-through-body semantics, a multi-line
// blocking call, and lint:allow handling (valid reason suppresses, missing
// reason is itself a finding).
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockOrder, "lockord")
}

// TestGoroLife pins the gorolife analyzer with `// want` expectations on
// `go func` literal lines: WaitGroup joins, channel send/close joins, stop
// channels, and contexts are accepted (directly or through callees);
// fire-and-forget literals, leaky declared functions, and dynamic function
// values are flagged.
func TestGoroLife(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GoroLife, "goro")
}

// TestAliasEscape pins the aliasescape analyzer across a provider/consumer
// package pair: mutator calls and element writes on values aliasing
// aliasprov.Owner's internals are flagged, Clone (whole-expression,
// reassignment, but not one-sided conditional) breaks the chain, copies are
// chased, and parameters of unknown origin stay silent.
func TestAliasEscape(t *testing.T) {
	a := analysis.NewAliasEscape([]analysis.AliasTarget{{
		Pkg:      "aliasprov",
		Type:     "Set",
		Mutators: []string{"Add", "Remove", "Clear"},
	}})
	analysistest.Run(t, "testdata", a, "aliasprov", "aliasmut")
}

// TestStaleCache pins the stalecache analyzer: element writes and LinkSet
// mutator calls that reach guarded Netw state through local aliases are
// flagged outside the sanctioned writers, while writers themselves, scalar
// copies, fresh slices, and read-only aliases stay silent.
func TestStaleCache(t *testing.T) {
	a := analysis.NewStaleCache([]analysis.GuardedStruct{{
		Pkg:     "stale",
		Type:    "Netw",
		Fields:  []string{"contrib", "disabled", "sum", "count"},
		Writers: []string{"New", "Disable"},
	}})
	analysistest.Run(t, "testdata", a, "stale")
}

// TestHotAlloc pins the hotalloc analyzer against single-package and
// cross-package goldens: direct allocations, multi-hop and shortest-path
// chains, chains through inline func literals, dynamic-call and
// external-callee unprovability, map writes and goroutine spawns — all
// reported at the root declaration — plus the two sanction shapes
// (lint:allow at the allocation site, including across packages, and at the
// root) and the math / sync/atomic allowlist.
func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotAlloc, "hotal", "hotalroot", "hotaldep")
}

// TestFloatOrder pins the floatorder analyzer: += / -= / x = x + y folds of
// float accumulators over map iteration or channel arrival order are
// flagged (including struct-field accumulators and direct receives), while
// sorted-key sweeps, integer folds, loop-local accumulators, and annotated
// folds stay silent.
func TestFloatOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FloatOrder, "floatord")
}

// TestCtxDeadline pins the ctxdeadline analyzer over a golden deployment
// package: op-owner reporting at unguarded blocking ops (including the
// one-branch-only and deferred-setter must-analysis cases), caller-guards
// contract inference (exchange arms pump's read, so only the unguarded call
// sites are findings, with one- and two-hop chains), stop-channel and
// ctx.Done exemptions, goroutine handoff, and lint:allow suppression.
func TestCtxDeadline(t *testing.T) {
	a := analysis.NewCtxDeadline(map[string]bool{"ctxdl": true})
	analysistest.Run(t, "testdata", a, "ctxdl")
}

// TestResLife pins the reslife analyzer: leaks on early returns, unstopped
// tickers, err-variable reuse across acquisitions, and literal bodies are
// flagged at the acquisition; error-guard edges, deferred Close, returns,
// struct-field adoption, map registration, goroutine/channel/closure
// handoff, nil-guards, and lint:allow stay silent.
func TestResLife(t *testing.T) {
	a := analysis.NewResLife(map[string]bool{"reslf": true})
	analysistest.Run(t, "testdata", a, "reslf")
}

// TestEscapes pins the escapes analyzer's attribution logic against a fake
// compiler collector that synthesizes diagnostics from gc:escapes /
// gc:bounds markers in the golden sources: escapes anywhere in the root's
// transitive chain (with the chain in the message), bounds checks only in
// the root's own loops, hotalloc-sanctioned lines skipped, non-hotpath
// functions ignored.
func TestEscapes(t *testing.T) {
	// HotAlloc rides along so the golden's `//lint:allow hotalloc` site
	// sanction is a known annotation — and to pin that hotalloc itself stays
	// silent on escp: &local is deliberately outside its catalogue, which is
	// exactly the gap the escapes cross-check closes.
	analysistest.RunAll(t, "testdata",
		[]*analysis.Analyzer{analysis.NewEscapes(markerCollector(t)), analysis.HotAlloc}, "escp")
}

// markerCollector builds a gcdiag report from gc:escapes / gc:bounds line
// markers in the golden package's sources, keyed by the same relative paths
// the analysistest loader hands the fileset.
func markerCollector(t *testing.T) analysis.Collector {
	return func(dir string) (*gcdiag.Report, error) {
		t.Helper()
		report := &gcdiag.Report{ByFile: map[string][]gcdiag.Diag{}}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			for i, line := range strings.Split(string(data), "\n") {
				switch {
				case strings.Contains(line, "// gc:escapes"):
					report.ByFile[path] = append(report.ByFile[path], gcdiag.Diag{
						File: path, Line: i + 1, Code: "escapes", Message: "value escapes to heap",
					})
				case strings.Contains(line, "// gc:bounds"):
					report.ByFile[path] = append(report.ByFile[path], gcdiag.Diag{
						File: path, Line: i + 1, Code: "isInBounds", Message: "Found IsInBounds",
					})
				}
			}
		}
		return report, nil
	}
}
