package analysis_test

import (
	"testing"

	"corropt/internal/analysis"
	"corropt/internal/analysis/analysistest"
)

// TestNoDeterminism pins the nodeterminism analyzer against golden packages:
// nodet carries every forbidden entropy source plus lint:allow negative
// cases, nodet_wall checks the per-package rules mapping (wall clock only),
// and nodet_off must produce nothing because it is absent from the config.
func TestNoDeterminism(t *testing.T) {
	a := analysis.NewNoDeterminism(map[string]analysis.Rules{
		"nodet":      analysis.RulesAll,
		"nodet_wall": analysis.ForbidWallClock,
	})
	analysistest.Run(t, "testdata", a, "nodet", "nodet_wall", "nodet_off")
}

// TestMapRange pins the maprange analyzer: map-order leaks are flagged,
// collect-then-sort / commutative reductions / annotated loops are not.
func TestMapRange(t *testing.T) {
	a := analysis.NewMapRange(map[string]bool{"mapr": true})
	analysistest.Run(t, "testdata", a, "mapr")
}

// TestErrWrap pins the errwrap analyzer: %w enforcement plus dropped-error
// detection in errw, %w only in wraponly.
func TestErrWrap(t *testing.T) {
	a := analysis.NewErrWrap(analysis.ErrWrapConfig{
		WrapPrefixes:    []string{"errw", "wraponly"},
		DroppedPrefixes: []string{"errw"},
	})
	analysistest.Run(t, "testdata", a, "errw", "wraponly")
}

// TestMutexHeld pins the mutexheld analyzer: guarded.Net's fields may only
// be written by the sanctioned writers, closures inherit their enclosing
// writer's sanction, same-named methods on other types stay exempt, and
// cross-package writes to exported guarded fields are flagged.
func TestMutexHeld(t *testing.T) {
	a := analysis.NewMutexHeld([]analysis.GuardedStruct{{
		Pkg:     "guarded",
		Type:    "Net",
		Fields:  []string{"sum", "items", "count", "Pub"},
		Writers: []string{"New", "Add", "Apply"},
	}})
	analysistest.Run(t, "testdata", a, "guarded", "guardedx")
}
