package analysis

import (
	"corropt/internal/analysis/flow"
)

// GoroLife enforces the repository's goroutine-lifecycle discipline: every
// `go` statement must spawn work whose completion is observable (joined via
// sync.WaitGroup.Done, a channel close, or a channel send) or that can be
// asked to stop (receives from a stop channel — directly, via range, or via
// select — or watches context.Context.Done). Fire-and-forget goroutines leak
// across experiment repetitions and make shutdown nondeterministic, which
// violates the determinism contract of DESIGN.md §7.
//
// Facts come from internal/analysis/flow: a spawned function literal
// contributes its own join bits plus those of its static callees; a spawned
// declared function contributes its transitive bits over the module call
// graph. Spawns of dynamic function values (or functions outside the module)
// cannot be verified and are flagged — wrap them in a literal that
// participates in a WaitGroup or stop channel.
var GoroLife = &Analyzer{
	Name: "gorolife",
	Doc: "requires every spawned goroutine to be joined (WaitGroup, channel " +
		"close/send) or cancellable (stop channel, context) (DESIGN.md §8)",
	Run: runGoroLife,
}

func runGoroLife(pass *Pass) error {
	w := pass.world()
	for _, fs := range w.PackageFacts(pass.Path) {
		for _, sp := range fs.GoSpawns {
			var bits flow.JoinBits
			known := false
			switch {
			case sp.Lit != nil:
				bits, known = w.LitJoinFacts(sp.Lit), true
			case sp.Callee != nil:
				bits, known = w.JoinFacts(sp.Callee)
			}
			if !known {
				pass.Reportf(sp.Pos,
					"goroutine lifecycle cannot be verified: spawn target is not a statically-known module function; wrap it in a literal that signals completion or watches a stop channel")
				continue
			}
			if !bits.Joined() && !bits.Cancellable() {
				pass.Reportf(sp.Pos,
					"goroutine is neither joined (WaitGroup.Done, channel close/send) nor cancellable (stop channel, context.Done): it can outlive its spawner")
			}
		}
	}
	return nil
}
