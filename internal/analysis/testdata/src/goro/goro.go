// Package goro is the gorolife golden: spawned goroutines must be joined
// (WaitGroup.Done, channel close/send) or cancellable (stop channel,
// context.Done). Expectations sit directly on `go func` literal lines.
package goro

import (
	"context"
	"sync"
)

type worker struct {
	wg   sync.WaitGroup
	stop chan struct{}
	out  chan int
}

// runJoined is the WaitGroup pool shape (runner.Map's workers).
func (w *worker) runJoined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

// runSignals reports completion by sending a result (the optimizer's
// done-channel workers).
func (w *worker) runSignals() {
	go func() {
		w.out <- 42
	}()
}

// runCloser announces completion by closing a channel.
func (w *worker) runCloser() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

// runCancellable can be asked to stop through the stop channel.
func (w *worker) runCancellable() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			default:
			}
		}
	}()
}

// runCtx watches its context.
func (w *worker) runCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// leak is a fire-and-forget literal: nothing joins it, nothing stops it.
func (w *worker) leak() {
	go func() { // want "neither joined .* nor cancellable"
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

func spin() {
	for {
	}
}

// spawnLeakFn leaks through a declared function.
func (w *worker) spawnLeakFn() {
	go spin() // want "neither joined .* nor cancellable"
}

func signalDone(w *worker) {
	w.wg.Done()
}

// spawnJoinedViaCallee joins transitively: the literal's callee calls
// wg.Done, which the module-wide summary closure propagates to the spawn.
func (w *worker) spawnJoinedViaCallee() {
	w.wg.Add(1)
	go func() {
		defer signalDone(w)
		work()
	}()
}

func work() {}

// dynamic spawns a function value: the lifecycle cannot be verified
// statically, which is itself a finding.
func (w *worker) dynamic(fn func()) {
	go fn() // want "cannot be verified"
}

// allowedLeak documents a sanctioned fire-and-forget goroutine.
func (w *worker) allowedLeak() {
	go func() { //lint:allow gorolife process-lifetime logger, exits with the binary
		for {
		}
	}()
}
