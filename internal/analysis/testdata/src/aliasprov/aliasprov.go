// Package aliasprov is the provider half of the aliasescape golden: a
// LinkSet-shaped bitset plus an owner whose accessors return live internal
// state (View, Cache) or defensive copies (Fresh, Clone).
package aliasprov

// Set is an in-place-mutable bitset.
type Set struct{ bits []uint64 }

// NewSet returns an empty set sized for n elements.
func NewSet(n int) *Set {
	return &Set{bits: make([]uint64, (n+63)/64)}
}

// Add inserts i.
func (s *Set) Add(i int) { s.bits[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i.
func (s *Set) Remove(i int) { s.bits[i>>6] &^= 1 << (uint(i) & 63) }

// Clear empties the set.
func (s *Set) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
}

// Has reports membership.
func (s *Set) Has(i int) bool { return s.bits[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clone returns an independent copy: mutations on the clone never reach the
// original.
func (s *Set) Clone() *Set {
	return &Set{bits: append([]uint64(nil), s.bits...)}
}

// Owner holds a live set and a cache slice.
type Owner struct {
	set   *Set
	cache []float64
}

// NewOwner builds an owner for n elements.
func NewOwner(n int) *Owner {
	return &Owner{set: NewSet(n), cache: make([]float64, n)}
}

// View returns the live set; callers must not mutate it.
func (o *Owner) View() *Set { return o.set }

// Cache returns the live cache slice; callers must not write through it.
func (o *Owner) Cache() []float64 { return o.cache }

// Fresh returns an independent copy of the cache.
func (o *Owner) Fresh() []float64 {
	out := make([]float64, len(o.cache))
	copy(out, o.cache)
	return out
}
