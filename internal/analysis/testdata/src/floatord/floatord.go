// Package floatord is the floatorder golden package: += / -= (and
// x = x ± y) folds of floating-point accumulators over map iteration or
// channel arrival order are flagged; sorted-key sweeps, integer folds,
// per-key accumulators that die inside the loop, and annotated folds are
// not.
package floatord

import "sort"

// mapSum is the canonical bug: float terms arrive in randomized map order.
func mapSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `order-sensitive floating-point accumulation folds map values in iteration order`
	}
	return total
}

// mapSumAssign spells the fold as x = x + y; same bug.
func mapSumAssign(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want `folds map values in iteration order`
	}
	return total
}

// fieldSub folds into a struct field through -=; fields outlive any loop.
type acc struct{ sum float64 }

func (a *acc) fieldSub(m map[int]float64) {
	for _, v := range m {
		a.sum -= v // want `folds map values in iteration order`
	}
}

// chanSum merges goroutine results in arrival order.
func chanSum(ch chan float64) float64 {
	sum := 0.0
	for v := range ch {
		sum += v // want `folds channel-received values in arrival order`
	}
	return sum
}

// recvSum accumulates direct receives; order-sensitive with or without a
// range loop.
func recvSum(ch chan float64, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += <-ch // want `folds channel-received values in arrival order`
	}
	return sum
}

// sortedSum is the sanctioned idiom: collect keys, sort, fold in key order.
func sortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// intSum folds integers: addition is associative there, and maprange
// already owns the integer-determinism story.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// perKey folds into an accumulator that is declared inside the map loop and
// dies with each iteration: map order never reaches a surviving float.
func perKey(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		t := 0.0
		for _, v := range vs {
			t += v
		}
		out[k] = t
	}
	return out
}

// allowedSum documents an accepted order drift with the standard annotation.
func allowedSum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		//lint:allow floatorder tolerance-checked aggregate, drift accepted
		s += v
	}
	return s
}
