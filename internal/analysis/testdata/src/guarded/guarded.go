// Package guarded is the mutexheld golden package: Net's fields may only be
// written by the sanctioned writers (New, Add, Apply) configured in the
// test.
package guarded

// Net mimics core.Network: cached aggregate state that must only change
// through methods that update every piece together.
type Net struct {
	sum   float64
	items []int
	count int
	// Pub is exported so cross-package writes can be exercised (guardedx).
	Pub int
}

// New is a sanctioned constructor.
func New() *Net {
	n := &Net{}
	n.count = 0
	return n
}

// Add is a sanctioned writer.
func (n *Net) Add(v int) {
	n.items = append(n.items, v)
	n.count++
	n.sum += float64(v)
}

// Apply is sanctioned; its closure inherits the sanction.
func (n *Net) Apply(vs []int) {
	each(vs, func(v int) {
		n.sum += float64(v)
		n.items = append(n.items, v)
	})
	n.count += len(vs)
}

func each(vs []int, f func(int)) {
	for _, v := range vs {
		f(v)
	}
}

// Reset is NOT sanctioned: every write is a finding.
func (n *Net) Reset() {
	n.count = 0 // want `guarded field Net\.count`
	n.sum = 0   // want `guarded field Net\.sum`
}

// bump is NOT sanctioned.
func (n *Net) bump() {
	n.count++ // want `guarded field Net\.count`
}

// setItem writes through the field: element writes count as field writes.
func (n *Net) setItem(i, v int) {
	n.items[i] = v // want `guarded field Net\.items`
}

// Sum only reads: reads are always fine.
func (n *Net) Sum() float64 { return n.sum }

// allowedWrite documents its exception.
func (n *Net) allowedWrite() {
	n.count = 7 //lint:allow mutexheld golden negative case: test-only reset
}

// other has a same-named Add method on an unrelated type: its writes to its
// own fields must not be flagged.
type other struct {
	count int
}

func (o *other) Add(v int) { o.count += v }
func (o *other) Reset()    { o.count = 0 }
