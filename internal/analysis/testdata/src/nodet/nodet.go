// Package nodet is the nodeterminism golden package: configured with
// RulesAll in the test, so wall-clock reads, math/rand, and environment
// lookups are all flagged, and lint:allow annotations suppress them.
package nodet

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()      // want `time\.Now forbidden`
	return time.Since(t0) // want `time\.Since forbidden`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until forbidden`
}

func virtualOK(d time.Duration) time.Duration {
	// Duration arithmetic and formatting are fine; only clock reads are not.
	return d + 5*time.Minute
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand\.Intn forbidden`
}

func localRand() float64 {
	r := rand.New(rand.NewSource(1)) // want `math/rand\.New forbidden` `math/rand\.NewSource forbidden`
	return r.Float64()
}

func env() string {
	return os.Getenv("HOME") // want `os\.Getenv forbidden`
}

func envLookup() bool {
	_, ok := os.LookupEnv("HOME") // want `os\.LookupEnv forbidden`
	return ok
}

func captured() func() time.Time {
	return time.Now // want `time\.Now forbidden`
}

func allowed() time.Time {
	return time.Now() //lint:allow nodeterminism golden negative case: suppression keeps this line clean
}

func allowedAbove() time.Time {
	//lint:allow nodeterminism golden negative case: standalone annotation covers the next line
	return time.Now()
}
