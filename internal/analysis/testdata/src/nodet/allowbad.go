package nodet

import "time"

func reasonMissing() time.Time {
	return time.Now() /* want `time\.Now forbidden` `missing a reason` */ //lint:allow nodeterminism
}

func unknownAnalyzer() time.Time {
	return time.Now() /* want `time\.Now forbidden` `unknown analyzer` */ //lint:allow bogus some reason
}
