package nodet

import "math/rand" // want `import of math/rand forbidden`

// holder smuggles in rand types without calling any package-level function:
// the import itself is flagged in that case.
type holder struct {
	rng *rand.Rand
}

func (h *holder) draw() float64 { return h.rng.Float64() }
