// Package reslf is the reslife golden package: acquired resources —
// net.Conn / net.PacketConn / net.Listener / *os.File / *time.Ticker /
// *time.Timer, matched by result type so dynamic dialers count — must reach
// a Close/Stop on every CFG path from the acquisition, or leave the
// function's custody first (returned, passed on, stored into longer-lived
// state, sent on a channel, captured). Findings are reported at the
// acquisition with the earliest witnessing exit; `if err != nil { return }`
// straight after the acquisition never counts as a leak.
package reslf

import (
	"errors"
	"net"
	"os"
	"time"
)

// leakEarlyReturn closes on the happy path but leaks on the early return.
func leakEarlyReturn(dial func(string) (net.Conn, error), flag bool) error {
	conn, err := dial("x") // want `net\.Conn conn acquired here may leak: no Close, ownership transfer, or adoption on the path to the return at reslf\.go:\d+`
	if err != nil {
		return err
	}
	if flag {
		return errors.New("early")
	}
	return conn.Close()
}

// leakTicker never stops the ticker: receiving from t.C is a use, not a
// discharge, so the leak witnesses the end of the function.
func leakTicker(d time.Duration) {
	t := time.NewTicker(d) // want `time\.Ticker t acquired here may leak: no Stop, ownership transfer, or adoption on the path to the end of the function`
	select {
	case <-t.C:
	default:
	}
}

// leakSecond: the second acquisition reuses err, and its guard says nothing
// about a's validity — a leaks on b's error return.
func leakSecond(open func(string) (*os.File, error)) error {
	a, err := open("a") // want `os\.File a acquired here may leak: no Close, ownership transfer, or adoption on the path to the return at reslf\.go:\d+`
	if err != nil {
		return err
	}
	b, err := open("b")
	if err != nil {
		return err
	}
	_ = b.Close()
	return a.Close()
}

// leakInLiteral: function literals are checked as their own bodies; a
// method call on the resource is not a discharge.
func leakInLiteral(dial func(string) (net.Conn, error)) func() {
	return func() {
		conn, err := dial("x") // want `net\.Conn conn acquired here may leak: no Close, ownership transfer, or adoption on the path to the end of the function`
		if err != nil {
			return
		}
		_ = conn.RemoteAddr()
	}
}

// cleanErrGuard: the error-guard edge discharges vacuously — no finding.
func cleanErrGuard(dial func(string) (net.Conn, error)) error {
	conn, err := dial("x")
	if err != nil {
		return err
	}
	return conn.Close()
}

// cleanDefer: a deferred Close discharges every path after it.
func cleanDefer(dial func(string) (net.Conn, error), buf []byte) error {
	conn, err := dial("x")
	if err != nil {
		return err
	}
	defer conn.Close()
	_, err = conn.Read(buf)
	return err
}

// cleanReturn: returning the resource transfers ownership to the caller —
// the constructor-return pattern.
func cleanReturn(ln net.Listener) (net.Conn, error) {
	conn, err := ln.Accept()
	if err != nil {
		return nil, err
	}
	return conn, nil
}

type holder struct{ conn net.Conn }

// cleanAdopt: storing into a struct field is adoption by longer-lived
// state; the obligation moves with it.
func cleanAdopt(h *holder, dial func(string) (net.Conn, error)) error {
	conn, err := dial("x")
	if err != nil {
		return err
	}
	h.conn = conn
	return nil
}

// cleanRegister: a map insert keyed by the resource transfers custody to
// the registry (the ctlplane conns-set pattern).
func cleanRegister(reg map[net.Conn]bool, dial func(string) (net.Conn, error)) error {
	conn, err := dial("x")
	if err != nil {
		return err
	}
	reg[conn] = true
	return nil
}

// cleanSpawn: handing the resource to a goroutine transfers custody.
func cleanSpawn(dial func(string) (net.Conn, error), handle func(net.Conn)) error {
	conn, err := dial("x")
	if err != nil {
		return err
	}
	go handle(conn)
	return nil
}

// cleanCapture: a nested literal capturing the resource owns it now.
func cleanCapture(dial func(string) (net.Conn, error)) (func() error, error) {
	conn, err := dial("x")
	if err != nil {
		return nil, err
	}
	return func() error { return conn.Close() }, nil
}

// cleanSend: sending the resource on a channel transfers custody.
func cleanSend(dial func(string) (net.Conn, error), sink chan net.Conn) error {
	conn, err := dial("x")
	if err != nil {
		return err
	}
	sink <- conn
	return nil
}

// cleanNilGuard: the resource's own nil-check guards the invalid branch.
func cleanNilGuard(pick func() net.Conn) error {
	conn := pick()
	if conn == nil {
		return errors.New("no conn")
	}
	return conn.Close()
}

// allowedTicker: the annotated acquisition is a sanctioned process-lifetime
// resource — the finding is suppressed, so no want here.
func allowedTicker(d time.Duration) {
	//lint:allow reslife process-lifetime ticker, stopped by exit
	t := time.NewTicker(d)
	select {
	case <-t.C:
	default:
	}
}
