// Package escp is the escapes golden package, driven by a fake compiler
// collector: the test scans these sources for `gc:escapes` / `gc:bounds`
// markers and synthesizes the corresponding gcdiag report, so the golden
// pins the analyzer's attribution logic (transitive chain walk for escapes,
// own-loops-only for bounds checks, hotalloc-sanction skipping) without
// depending on a particular compiler version's escape-analysis verdicts.
// Findings anchor at the root declaration, like hotalloc.
package escp

var sink *int

// escRoot's own body has a compiler-reported escape.
//
//lint:hotpath
func escRoot() *int { // want `hot path escRoot has a compiler-reported heap escape in escRoot: value escapes to heap at escp\.go:\d+$`
	x := 0
	return &x // gc:escapes
}

// chainRoot reaches an escape two hops down; the finding carries the chain.
//
//lint:hotpath
func chainRoot() { // want `hot path chainRoot has a compiler-reported heap escape in leafEsc: value escapes to heap at escp\.go:\d+ \(chain: chainRoot -> midEsc -> leafEsc\)`
	midEsc()
}

func midEsc() { leafEsc() }

func leafEsc() {
	y := 1
	sink = &y // gc:escapes
}

// loopRoot has a bounds check inside its own loop.
//
//lint:hotpath
func loopRoot(xs []int) int { // want `hot path loopRoot has a compiler-reported bounds check in its inner loop at escp\.go:\d+`
	s := 0
	for i := 0; i < len(xs); i++ {
		s += xs[i] // gc:bounds
	}
	return s
}

// calleeLoopRoot's bounds check sits in a callee's loop, not the root's
// own: bounds attribution is own-loops-only, so no finding.
//
//lint:hotpath
func calleeLoopRoot(xs []int) int {
	return sumIndexed(xs)
}

func sumIndexed(xs []int) int {
	s := 0
	for i := range xs {
		s += xs[i] // gc:bounds
	}
	return s
}

// straightRoot's bounds check is outside any loop: per-call, not per-event
// — no finding.
//
//lint:hotpath
func straightRoot(xs []int) int {
	return xs[0] // gc:bounds
}

// sanctionedRoot's escape sits on a line hotalloc already sanctions: an
// acknowledged allocation, not a cross-check failure.
//
//lint:hotpath
func sanctionedRoot() []int {
	//lint:allow hotalloc warmup growth, amortized away
	buf := make([]int, 8) // gc:escapes
	return buf
}

// notHot is no hotpath root: its escape concerns nobody.
func notHot() *int {
	z := 2
	return &z // gc:escapes
}
