// Package hotal is the hotalloc golden package: functions whose doc comment
// carries //lint:hotpath must be transitively allocation-free. Findings are
// reported at the root's declaration line with the shortest root→site call
// chain, so every `want` here sits on a `func` line; sanctioned escapes use
// `//lint:allow hotalloc <reason>` at the allocation site (pre-sanctions the
// site for every root) or at the root declaration (accepts the remaining
// debt for that root).
package hotal

import (
	"math"
	"sync/atomic"
)

var counter atomic.Int64

var buf []int

// directMake allocates right in the root body.
//
//lint:hotpath
func directMake(n int) []int { // want `hot path directMake is not allocation-free: make allocates at hotal\.go:\d+$`
	return make([]int, n)
}

// rootChain reaches the allocation two hops down; the finding carries the
// full chain.
//
//lint:hotpath
func rootChain() { // want `hot path rootChain is not allocation-free: make allocates at hotal\.go:\d+ \(chain: rootChain -> mid -> leaf\)`
	mid()
}

func mid() { leaf() }

func leaf() { _ = make([]int, 8) }

// rootDiamond reaches leaf both directly and through mid; BFS reports the
// shortest chain only.
//
//lint:hotpath
func rootDiamond() { // want `make allocates at hotal\.go:\d+ \(chain: rootDiamond -> leaf\)`
	mid()
	leaf()
}

// rootClosure passes an allocating literal to a callback iterator: the
// literal's body is walked as an inline hop, and the dynamic fn(x) call
// inside each is flagged as unprovable.
//
//lint:hotpath
func rootClosure(xs []int) { // want `make allocates at hotal\.go:\d+ \(chain: rootClosure -> func literal\)` `call through a function value — cannot prove it allocation-free at hotal\.go:\d+ \(chain: rootClosure -> each\)`
	each(xs, func(x int) {
		_ = make([]int, x)
	})
}

func each(xs []int, fn func(int)) {
	for _, x := range xs {
		fn(x)
	}
}

// rootMapWrite writes through a map, which may grow a bucket.
//
//lint:hotpath
func rootMapWrite(m map[int]int, k int) { // want `map write may allocate \(bucket growth\)`
	m[k] = 1
}

// rootGo spawns a goroutine; the go statement itself is the allocation (the
// spawned body runs off the hot path and is not descended into).
//
//lint:hotpath
func rootGo() { // want `go statement allocates a goroutine`
	go leaf()
}

// rootSanctionedSite calls a helper whose amortized append carries a
// site-level allow: the site is pre-sanctioned for every root, so nothing
// is reported here.
//
//lint:hotpath
func rootSanctionedSite(x int) {
	reserve(x)
}

func reserve(x int) {
	//lint:allow hotalloc amortized growth into a reused buffer
	buf = append(buf, x)
}

// rootAccepted carries a root-level allow: every finding for this root lands
// on the declaration line below, so one annotation accepts the whole debt.
//
//lint:hotpath
//lint:allow hotalloc accepted startup-path debt
func rootAccepted(n int) []int {
	return make([]int, n)
}

// rootClean exercises the allowlist: math and sync/atomic calls are known
// allocation-free, so a clean root produces nothing.
//
//lint:hotpath
func rootClean(x float64) float64 {
	return math.Sqrt(x) + float64(counter.Load())
}

// notARoot allocates freely: only //lint:hotpath functions are walked.
func notARoot() []int {
	return append(make([]int, 0, 4), 1, 2, 3)
}
