// Package aliasmut is the consumer half of the aliasescape golden:
// mutations of values that alias aliasprov.Owner's internal state are
// flagged unless a Clone (or fresh copy) breaks the chain first.
package aliasmut

import "aliasprov"

// mutateAlias mutates the live set straight out of the accessor.
func mutateAlias(o *aliasprov.Owner) {
	v := o.View()
	v.Add(1) // want "Add\\(\\) mutates \"v\", which aliases internal state returned by Owner.View"
}

// cloneFirst is the sanctioned shape: Clone returns a fresh set.
func cloneFirst(o *aliasprov.Owner) {
	v := o.View().Clone()
	v.Add(1)
	v.Clear()
}

// cloneReassign breaks the chain with an explicit reassignment.
func cloneReassign(o *aliasprov.Owner) {
	v := o.View()
	v = v.Clone()
	v.Remove(2)
}

// condClone clones on only one path: the un-cloned definition still reaches
// the mutation, so it is flagged.
func condClone(o *aliasprov.Owner, c bool) {
	v := o.View()
	if c {
		v = v.Clone()
	}
	v.Add(3) // want "Add\\(\\) mutates \"v\", which aliases internal state returned by Owner.View"
}

// copyChain launders the alias through a second local; the def-use chase
// follows the copy.
func copyChain(o *aliasprov.Owner) {
	v := o.View()
	w := v
	w.Remove(4) // want "Remove\\(\\) mutates \"w\", which aliases internal state returned by Owner.View"
}

// sliceWrite writes through the live cache slice.
func sliceWrite(o *aliasprov.Owner) {
	c := o.Cache()
	c[0] = 1 // want "element write mutates \"c\", which aliases internal state returned by Owner.Cache"
}

// freshWrite writes through an independent copy: fine.
func freshWrite(o *aliasprov.Owner) {
	c := o.Fresh()
	c[0] = 1
}

// readOnly never mutates the alias: fine.
func readOnly(o *aliasprov.Owner) bool {
	return o.View().Has(5)
}

// paramUnknown mutates a parameter: origin unknown, not flagged (the
// analysis reports only proven aliases).
func paramUnknown(v *aliasprov.Set) {
	v.Add(6)
}

// allowedAlias documents a sanctioned in-place mutation of the live set.
func allowedAlias(o *aliasprov.Owner) {
	v := o.View()
	v.Add(7) //lint:allow aliasescape owner delegates mutation here by contract
}
