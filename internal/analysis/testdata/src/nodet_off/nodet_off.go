// Package nodet_off is absent from the analyzer's config: nothing here may
// be flagged even though every forbidden source appears.
package nodet_off

import (
	"math/rand"
	"os"
	"time"
)

func f() (time.Time, int, string) {
	return time.Now(), rand.Intn(3), os.Getenv("HOME")
}
