// Package stale is the stalecache golden: writes that reach guarded Netw
// state through local aliases are flagged outside the sanctioned writers —
// the dataflow hole that plain mutexheld (which only sees syntactic
// n.field writes) cannot close.
package stale

// LinkSet mirrors the repository's bitset shape.
type LinkSet struct{ bits []uint64 }

// Add inserts l.
func (s *LinkSet) Add(l int) { s.bits[l>>6] |= 1 << (uint(l) & 63) }

// Clear empties the set.
func (s *LinkSet) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
}

// Netw models core.Network: incremental caches that must only change
// together, inside the sanctioned writers.
type Netw struct {
	contrib  []float64
	disabled *LinkSet
	sum      float64
	count    int
}

// New is a sanctioned writer.
func New(n int) *Netw {
	return &Netw{contrib: make([]float64, n), disabled: &LinkSet{bits: make([]uint64, (n+63)/64)}}
}

// Disable is a sanctioned writer: aliasing the caches inside it is fine.
func (n *Netw) Disable(l int) {
	c := n.contrib
	n.sum -= c[l]
	c[l] = 0
	n.disabled.Add(l)
	n.count++
}

// Sum is a read-only accessor.
func (n *Netw) Sum() float64 { return n.sum }

// badElem desynchronizes contrib from sum through a local alias.
func badElem(n *Netw) {
	c := n.contrib
	c[0] = 1 // want "element write through \"c\" reaches guarded field Netw.contrib"
}

// badSet mutates the guarded disabled set through an alias.
func badSet(n *Netw) {
	d := n.disabled
	d.Add(1) // want "Add\\(\\) through \"d\" reaches guarded field Netw.disabled"
}

// badChain launders the alias through a second local.
func badChain(n *Netw) {
	c := n.contrib
	d := c
	d[2] = 3 // want "element write through \"d\" reaches guarded field Netw.contrib"
}

// valueCopies copy scalars: no aliasing, no finding.
func valueCopies(n *Netw) float64 {
	s := n.sum
	s++
	k := n.count
	k++
	return s + float64(k)
}

// freshSlice writes into an independent slice: fine.
func freshSlice(n *Netw) []float64 {
	out := make([]float64, len(n.contrib))
	copy(out, n.contrib)
	out[0] = 9
	return out
}

// reads may alias without writing: fine.
func reads(n *Netw) float64 {
	c := n.contrib
	return c[0]
}

// allowedAlias documents a sanctioned out-of-band write.
func allowedAlias(n *Netw) {
	c := n.contrib
	c[1] = 0 //lint:allow stalecache test fixture resets contrib before reload
}
