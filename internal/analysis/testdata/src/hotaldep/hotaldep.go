// Package hotaldep is the dependency half of the cross-package hotalloc
// golden: roots in hotalroot call into it, and findings surface at the
// root's declaration in the calling package. Reserve shows the site-level
// sanction working across packages — sites are marked sanctioned when this
// package is summarized, so a root in another package calling it stays
// clean.
package hotaldep

var buf []int

// Grow allocates; rootCross in hotalroot reports it with a cross-package
// chain.
func Grow(n int) []int {
	return make([]int, n)
}

// Reserve appends under a site-level sanction.
func Reserve(x int) {
	//lint:allow hotalloc amortized append growth, steady capacity after warmup
	buf = append(buf, x)
}
