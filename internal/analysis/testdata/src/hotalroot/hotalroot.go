// Package hotalroot is the root half of the cross-package hotalloc golden:
// its //lint:hotpath roots call into hotaldep, and every finding is
// reported here, at the root's declaration, with the cross-package chain.
package hotalroot

import "hotaldep"

// rootCross reaches an allocation in the dependency package.
//
//lint:hotpath
func rootCross(n int) []int { // want `hot path rootCross is not allocation-free: make allocates at hotaldep\.go:\d+ \(chain: rootCross -> Grow\)`
	return hotaldep.Grow(n)
}

// rootCrossSanctioned calls the dependency's sanctioned append: the site was
// marked allowed when hotaldep was summarized, so the chain ends clean.
//
//lint:hotpath
func rootCrossSanctioned(x int) {
	hotaldep.Reserve(x)
}
