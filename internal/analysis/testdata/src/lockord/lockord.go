// Package lockord is the lockorder golden: acquisition-order cycles,
// reacquisition of held mutexes (directly and through calls), and blocking
// operations under a held lock, plus lint:allow negative cases.
package lockord

import (
	"net"
	"sync"
)

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

var p pair

// lockAB and lockBA acquire the two mutexes in opposite orders: a classic
// deadlock cycle. The cycle is reported once, at its earliest witness edge.
func lockAB() {
	p.a.Lock()
	p.b.Lock() // want "lock-order cycle between lockord.pair.a, lockord.pair.b"
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// reacquire takes a mutex it already holds: sync.Mutex is not reentrant.
func reacquire() {
	p.a.Lock()
	p.a.Lock() // want "may already be held at this acquisition"
	p.a.Unlock()
	p.a.Unlock()
}

func helperLocksA() {
	p.a.Lock()
	p.a.Unlock()
}

// reacquireViaCall reaches the second acquisition through a call edge.
func reacquireViaCall() {
	p.a.Lock()
	helperLocksA() // want "call to helperLocksA acquires it again"
	p.a.Unlock()
}

// blockUnderLock performs channel operations and blocking I/O while the
// deferred Unlock keeps the mutex held through the whole body.
func blockUnderLock(ch chan int, conn net.Conn) {
	p.a.Lock()
	defer p.a.Unlock()
	<-ch    // want "channel receive while holding lockord.pair.a"
	ch <- 1 // want "channel send while holding lockord.pair.a"
	buf := make([]byte, 8)
	_, _ = conn.Read( // want "network read .* while holding lockord.pair.a"
		buf,
	)
}

func waitUnderLock(wg *sync.WaitGroup) {
	p.b.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait while holding lockord.pair.b"
	p.b.Unlock()
}

func dial() {
	c, err := net.Dial("tcp", "127.0.0.1:1")
	if err == nil {
		c.Close()
	}
}

// callDialUnderLock blocks transitively: dial performs OS-level I/O.
func callDialUnderLock() {
	p.b.Lock()
	dial() // want "call to dial .* while holding lockord.pair.b"
	p.b.Unlock()
}

// releaseFirst is the clean shape: the lock is dropped before blocking.
func releaseFirst(ch chan int) {
	p.a.Lock()
	p.a.Unlock()
	<-ch
}

// allowed documents a sanctioned exception: the annotation carries a reason,
// so the finding is suppressed.
func allowed(ch chan int) {
	p.a.Lock()
	defer p.a.Unlock()
	<-ch //lint:allow lockorder shutdown path, writer is guaranteed gone
}

// allowedBad has a lint:allow with no reason: the suppression is rejected
// and the malformed annotation is itself a finding, so the line carries both
// expectations (block comment, since only one line comment fits).
func allowedBad(ch chan int) {
	p.b.Lock()
	defer p.b.Unlock()
	<-ch /* want "channel receive while holding lockord.pair.b" "missing a reason" */ //lint:allow lockorder
}
