// Package guardedx exercises cross-package enforcement: even a function
// named like a sanctioned writer may not mutate guarded.Net's exported
// state from outside its home package.
package guardedx

import "guarded"

// Add shares a sanctioned writer's name but lives in the wrong package.
func Add(n *guarded.Net, v int) {
	n.Pub = v // want `guarded field Net\.Pub`
}

// Read-only access is fine.
func Sum(n *guarded.Net) float64 { return n.Sum() }
