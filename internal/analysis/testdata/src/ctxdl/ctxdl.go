// Package ctxdl is the ctxdeadline golden package: blocking network ops
// must be dominated on every CFG path by a Set*Deadline call, or the
// enclosing function must carry its own cancellation signal. Functions that
// at least one caller guards become caller-guards primitives — their
// remaining unguarded call sites are the findings, reported with the chain
// down to the op; functions no caller guards own their ops and are reported
// at the op site.
package ctxdl

import (
	"context"
	"net"
	"time"
)

// serveOwned owns its read: nobody arms a deadline before calling it, no
// cancellation signal, so the op site is the finding.
func serveOwned(c net.Conn, buf []byte) {
	_, _ = c.Read(buf) // want `network read \(\(Conn\)\.Read\) in serveOwned has no deadline`
}

// serveGuarded arms a read deadline on every path before reading.
func serveGuarded(c net.Conn, buf []byte) {
	_ = c.SetReadDeadline(time.Time{}.Add(time.Second))
	_, _ = c.Read(buf)
}

// serveBranch arms the deadline on only one branch: the merge is a
// must-analysis AND, so the read stays unguarded.
func serveBranch(c net.Conn, buf []byte, fast bool) {
	if fast {
		_ = c.SetReadDeadline(time.Time{}.Add(time.Second))
	}
	_, _ = c.Read(buf) // want `network read \(\(Conn\)\.Read\) in serveBranch has no deadline`
}

// serveDeferred defers the setter: a deferred Set*Deadline runs after the
// read, so it does not arm.
func serveDeferred(c net.Conn, buf []byte) {
	defer c.SetDeadline(time.Time{})
	_, _ = c.Read(buf) // want `network read \(\(Conn\)\.Read\) in serveDeferred has no deadline`
}

// serveStop carries its own cancellation signal (a stop-channel receive),
// so it can be shut down without a deadline: exempt.
func serveStop(c net.Conn, buf []byte, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

// serveCtx reads ctx.Done in its own body: exempt.
func serveCtx(ctx context.Context, c net.Conn, buf []byte) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

// pump is a caller-guards primitive: exchange arms a deadline before
// calling it, so its own unguarded read is the callers' responsibility and
// produces no op-site finding. The unguarded call in relayNoDeadline is the
// finding, reported at the call with the chain down to the op.
func pump(c net.Conn, buf []byte) error {
	_, err := c.Read(buf)
	return err
}

func exchange(c net.Conn, buf []byte) error {
	if err := c.SetReadDeadline(time.Time{}.Add(time.Second)); err != nil {
		return err
	}
	return pump(c, buf)
}

func relayNoDeadline(c net.Conn, buf []byte) error {
	return pump(c, buf) // want `call to pump with no deadline armed reaches undeadlined network read \(\(Conn\)\.Read\) at ctxdl\.go:\d+ \(chain: pump\)`
}

// relayTwoHops reaches pump through mid, which no caller guards either but
// which exchangeMid guards: the chain spans both hops.
func mid(c net.Conn, buf []byte) error {
	return pump(c, buf)
}

func exchangeMid(c net.Conn, buf []byte) error {
	_ = c.SetWriteDeadline(time.Time{}.Add(time.Second))
	return mid(c, buf)
}

func relayTwoHops(c net.Conn, buf []byte) error {
	return mid(c, buf) // want `call to mid with no deadline armed reaches undeadlined network read \(\(Conn\)\.Read\) at ctxdl\.go:\d+ \(chain: mid -> pump\)`
}

// serveAllowed is the suppression case: the accept has no deadline API, and
// the annotation carries a reason, so no finding survives.
func serveAllowed(ln net.Listener) {
	for {
		//lint:allow ctxdeadline Accept is unblocked by Close and Listener has no Set\*Deadline
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_ = conn.Close()
	}
}

// spawner hands the connection to a goroutine: the spawned function owns
// its ops (the report lands inside it via serveOwned's want above), and the
// go statement itself is not a deadline call site.
func spawner(c net.Conn, buf []byte) {
	go serveOwned(c, buf)
}
