// Package errw is the errwrap golden package: both the %w-wrapping check
// and the dropped-error check are enabled here.
package errw

import (
	"fmt"
	"os"
	"strings"
)

func wrapBadV(err error) error {
	return fmt.Errorf("open config: %v", err) // want `non-wrapping verb`
}

func wrapBadS(err error) error {
	return fmt.Errorf("open config: %s", err) // want `non-wrapping verb`
}

func wrapGood(err error) error {
	return fmt.Errorf("open config: %w", err)
}

func wrapGoodMixed(name string, err error) error {
	return fmt.Errorf("open %q: %w", name, err)
}

func wrapNoError(name string) error {
	return fmt.Errorf("no such experiment %q", name)
}

func wrapAllowed(err error) error {
	return fmt.Errorf("boundary: %v", err) //lint:allow errwrap deliberately sever the cause chain at the API boundary
}

func dropBad(f *os.File) {
	f.Close() // want `silently discarded`
}

func dropChmod(name string) {
	os.Chmod(name, 0o644) // want `silently discarded`
}

func dropGood(f *os.File) error {
	return f.Close()
}

func dropBlank(f *os.File) {
	_ = f.Close()
}

func dropDefer(f *os.File) {
	defer f.Close()
}

func dropExemptWriters(b *strings.Builder) {
	b.WriteString("x")
	fmt.Println("x")
}

func dropAllowed(f *os.File) {
	f.Close() //lint:allow errwrap golden negative case: close on already-failed path
}

func dropClosure() {
	fail := func() error { return nil }
	fail() // want `silently discarded`
}
