// Package wraponly gets only the %w check in the test's config: the dropped
// error below must NOT be flagged, pinning the two checks' separate scoping.
package wraponly

import (
	"fmt"
	"os"
)

func wrapBad(err error) error {
	return fmt.Errorf("x: %v", err) // want `non-wrapping verb`
}

func dropNotChecked(f *os.File) {
	f.Close()
}
