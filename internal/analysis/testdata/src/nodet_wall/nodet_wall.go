// Package nodet_wall is configured with only ForbidWallClock: the rand use
// must NOT be flagged, pinning the per-package rules mapping.
package nodet_wall

import (
	"math/rand"
	"time"
)

func f() int {
	_ = time.Now() // want `time\.Now forbidden`
	return rand.Intn(3)
}
