// Package mapr is the maprange golden package: map iteration that can leak
// runtime map order into output is flagged; the collect-then-sort idiom,
// commutative numeric reductions, and annotated loops are not.
package mapr

import (
	"fmt"
	"sort"
)

// stringConcat builds output in map order: the canonical bug.
func stringConcat(m map[string]int) string {
	out := ""
	for k := range m { // want `map iteration order`
		out += k
	}
	return out
}

// directPrint emits lines in map order.
func directPrint(m map[string]int) {
	for k, v := range m { // want `map iteration order`
		fmt.Println(k, v)
	}
}

// appendNoSort collects values but never sorts them.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order`
		keys = append(keys, k)
	}
	return keys
}

// collectThenSort is the sanctioned idiom.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectThenSortSlice uses sort.Slice on a struct collector.
func collectThenSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// sumReduce is a commutative numeric reduction.
func sumReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// countReduce uses ++ and a guarded reduction.
func countReduce(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// setCopy inserts into another map: order-free.
func setCopy(m map[string]int) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// annotated documents why ordering cannot escape.
func annotated(m map[string]int) {
	for k, v := range m { //lint:allow maprange golden negative case: sink discards ordering
		sink(k, v)
	}
}

func sink(string, int) {}

// sortOtherVar sorts a different slice than the collector: still flagged.
func sortOtherVar(m map[string]int) []string {
	var keys []string
	other := []string{"b", "a"}
	for k := range m { // want `map iteration order`
		keys = append(keys, k)
	}
	sort.Strings(other)
	return keys
}
