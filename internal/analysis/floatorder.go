package analysis

// FloatOrder machine-checks the float-determinism argument of DESIGN.md
// §7.5: floating-point addition is not associative, so a += / -= (or
// x = x ± y) reduction whose terms arrive in a nondeterministic order — map
// iteration (randomized per run) or goroutine/channel arrival — produces
// run-dependent last bits, which the byte-identical report and snapshot
// contracts (TestRunManyMatchesRun, TestFleetMatchesSerial) cannot
// tolerate. maprange deliberately accepts numeric += folds as commutative
// for its integer-determinism purposes; floatorder closes exactly the
// floating-point gap that maprange's acceptance documents.
//
// The sanctioned writers — core.Network's incremental penalty sum and
// internal/fleet's per-segment accumulators — stay clean by construction:
// they fold in event order over deterministic containers (bitset iteration
// in ascending link order) and re-sum exactly every penaltyRebuildEvery /
// segRebuildEvery updates, so they contain no map-order or arrival-order
// folds for this analyzer to flag. Anything else that needs an
// order-sensitive fold must sort its keys first, re-sum in a fixed order,
// or carry a `//lint:allow floatorder <reason>` annotation.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc: "flags order-sensitive floating-point accumulation over map " +
		"iteration or goroutine/channel arrival order (DESIGN.md §7.5, §8)",
	Run: runFloatOrder,
}

func runFloatOrder(pass *Pass) error {
	w := pass.world()
	for _, fs := range w.PackageFacts(pass.Path) {
		for _, fa := range fs.FloatAccums {
			pass.Reportf(fa.Pos,
				"order-sensitive floating-point accumulation folds %s: float addition is not associative, so the result depends on run order; iterate sorted keys or merge in a fixed order (DESIGN.md §7.5)",
				fa.What)
		}
	}
	return nil
}
