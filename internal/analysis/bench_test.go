package analysis

import (
	"testing"

	"corropt/internal/runner"
)

// BenchmarkLintRepo measures one full analyzer pass over the already-loaded
// repository: flow world construction plus all eight analyzers fanned out
// per package on the runner pool — exactly the work cmd/corropt-lint does
// after `go list` returns. Package loading is benchmarked separately
// (BenchmarkLintLoad) because it is dominated by the go list subprocess and
// type-checking, not by the analyzers.
func BenchmarkLintRepo(b *testing.B) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	analyzers := All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world := BuildWorld(pkgs)
		perPkg, err := runner.Map(0, len(pkgs), func(j int) ([]Finding, error) {
			return RunDetailed(pkgs[j], analyzers, world)
		})
		if err != nil {
			b.Fatal(err)
		}
		live := 0
		for _, findings := range perPkg {
			for _, f := range findings {
				if !f.Suppressed {
					live++
				}
			}
		}
		if live != 0 {
			b.Fatalf("lint found %d live findings; benchmark tree must be clean", live)
		}
	}
}

// BenchmarkLintLoad measures package enumeration and type-checking — the
// `go list -export -deps -json` walk plus source checking of every module
// package — which is the fixed startup cost of every corropt-lint run.
func BenchmarkLintLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Load("../..", "./..."); err != nil {
			b.Fatal(err)
		}
	}
}
