package analysis

import (
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// Rules is a bitmask of entropy sources the nodeterminism analyzer forbids
// in a package.
type Rules uint

const (
	// ForbidWallClock forbids reading the wall clock (time.Now, time.Since,
	// time.Until). Simulation-replayable code must take time from
	// simclock.Clock (virtual) or simclock.WallClock (injectable).
	ForbidWallClock Rules = 1 << iota
	// ForbidGlobalRand forbids math/rand and math/rand/v2 entirely: both the
	// global convenience functions (rand.Intn, rand.Float64, ...) whose
	// shared state makes draws depend on goroutine interleaving, and locally
	// constructed generators (rand.New) that bypass the named-substream
	// discipline of internal/rngutil. All randomness in determinism-critical
	// packages must be drawn from an rngutil.Source substream.
	ForbidGlobalRand
	// ForbidEnv forbids reading the process environment (os.Getenv,
	// os.LookupEnv, os.Environ): environment-dependent behavior makes
	// experiment reports machine-dependent.
	ForbidEnv

	// RulesAll enables every rule.
	RulesAll = ForbidWallClock | ForbidGlobalRand | ForbidEnv
)

// DeterminismConfig maps import paths to the rules enforced there. Packages
// absent from the map are not checked.
//
// The first block is the determinism-critical core: every byte of a §7
// experiment report is derived inside these packages, and PR 2's
// byte-identical-for-any-worker-count contract (TestParallelRunnerDeterminism)
// holds only while they stay free of wall-clock reads, global rand state,
// and environment lookups. internal/rngutil is included so that its sole
// sanctioned use of math/rand stays visible as an audited lint:allow
// annotation rather than silently exempt.
//
// The second block is wall-clock hygiene for the deployment path: snmplite,
// ctlplane, and corropt-agent run against real sockets but are also driven
// from sim-replayable harnesses, so they must take time through an
// injectable simclock.WallClock instead of calling time.Now directly.
var DeterminismConfig = map[string]Rules{
	"corropt/internal/sim":         RulesAll,
	"corropt/internal/experiments": RulesAll,
	"corropt/internal/fleet":       RulesAll,
	"corropt/internal/core":        RulesAll,
	"corropt/internal/topology":    RulesAll,
	"corropt/internal/runner":      RulesAll,
	"corropt/internal/trace":       RulesAll,
	"corropt/internal/rngutil":     RulesAll,
	"corropt/internal/simclock":    RulesAll,
	"corropt/internal/scenario":    RulesAll,
	"corropt/internal/backoff":     RulesAll,
	"corropt/internal/netchaos":    RulesAll,

	"corropt/internal/snmplite": ForbidWallClock,
	"corropt/internal/ctlplane": ForbidWallClock,
	"corropt/cmd/corropt-agent": ForbidWallClock,
}

// forbiddenFuncs maps source package path -> function name -> the rule that
// forbids referencing it.
var forbiddenFuncs = map[string]map[string]Rules{
	"time": {
		"Now":   ForbidWallClock,
		"Since": ForbidWallClock,
		"Until": ForbidWallClock,
	},
	"os": {
		"Getenv":    ForbidEnv,
		"LookupEnv": ForbidEnv,
		"Environ":   ForbidEnv,
	},
}

// randPackages are the import paths covered by ForbidGlobalRand.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// NewNoDeterminism returns the nodeterminism analyzer configured with the
// given package->rules map. The canonical instance is NoDeterminism; tests
// construct instances pointed at golden packages.
func NewNoDeterminism(config map[string]Rules) *Analyzer {
	a := &Analyzer{
		Name: "nodeterminism",
		Doc: "forbids wall-clock reads, math/rand, and environment lookups in " +
			"determinism-critical packages (DESIGN.md §8)",
	}
	a.Run = func(pass *Pass) error {
		rules, ok := config[pass.Path]
		if !ok || rules == 0 {
			return nil
		}
		runNoDeterminism(pass, rules)
		return nil
	}
	return a
}

// NoDeterminism is the canonical nodeterminism analyzer over
// DeterminismConfig.
var NoDeterminism = NewNoDeterminism(DeterminismConfig)

func runNoDeterminism(pass *Pass, rules Rules) {
	// Any reference to a forbidden package-level function is a finding,
	// whether called directly or captured as a value: iterate the use map
	// rather than walking call sites. Findings are sorted by Run, so map
	// order does not leak into output.
	type finding struct {
		pos token.Pos
		msg string
	}
	var found []finding
	flaggedRandFile := make(map[string]bool)
	for ident, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		pkgPath := fn.Pkg().Path()
		if rules&ForbidGlobalRand != 0 && randPackages[pkgPath] && fn.Parent() == fn.Pkg().Scope() {
			found = append(found, finding{ident.Pos(),
				pkgPath + "." + fn.Name() + " forbidden in determinism-critical package: draw randomness from an rngutil.Source substream"})
			flaggedRandFile[pass.Fset.Position(ident.Pos()).Filename] = true
			continue
		}
		byName, ok := forbiddenFuncs[pkgPath]
		if !ok {
			continue
		}
		rule, ok := byName[fn.Name()]
		if !ok || rules&rule == 0 || fn.Parent() != fn.Pkg().Scope() {
			continue
		}
		var hint string
		switch rule {
		case ForbidWallClock:
			hint = "take time from simclock.Clock (virtual) or an injected simclock.WallClock"
		case ForbidEnv:
			hint = "thread configuration through explicit parameters"
		}
		found = append(found, finding{ident.Pos(),
			pkgPath + "." + fn.Name() + " forbidden in determinism-critical package: " + hint})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, f := range found {
		pass.Reportf(f.pos, "%s", f.msg)
	}

	// A math/rand import with no flagged call still smuggles in rand types
	// (e.g. a stored *rand.Rand); flag the import itself in that case.
	if rules&ForbidGlobalRand == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !randPackages[path] {
				continue
			}
			if flaggedRandFile[pass.Fset.Position(imp.Pos()).Filename] {
				continue
			}
			pass.Reportf(imp.Pos(), "import of %s forbidden in determinism-critical package: derive randomness from rngutil substreams", path)
		}
	}
}
