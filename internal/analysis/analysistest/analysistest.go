// Package analysistest runs an analyzer over golden packages under a
// testdata directory and checks its diagnostics against `// want "regex"`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Golden packages live in testdata/src/<importpath>/*.go. Imports between
// golden packages resolve within testdata/src; all other imports (the
// standard library) resolve from compiled export data, so runs are hermetic.
// Because diagnostics flow through analysis.Run, `//lint:allow` suppression
// is exercised exactly as cmd/corropt-lint applies it: golden negative cases
// are annotated lines that must produce no surviving finding.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"corropt/internal/analysis"
)

// Run loads each golden package and checks a's diagnostics against the
// `// want` expectations in its sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunAll(t, testdata, []*analysis.Analyzer{a}, pkgPaths...)
}

// RunAll is Run with several analyzers sharing one load and one world —
// for goldens whose `//lint:allow` annotations name a second analyzer (the
// allow machinery reports annotations naming analyzers outside the running
// set), and for pinning cross-analyzer interplay like escapes honoring
// hotalloc's site sanctions.
func RunAll(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	loaded := make(map[string]*analysis.Package)
	checked := make(map[string]*types.Package)

	// Parse the requested packages and, transitively, their testdata-local
	// imports; collect the external (standard-library) imports.
	type parsedPkg struct {
		path  string
		dir   string
		files []*ast.File
		local []string
	}
	parsed := make(map[string]*parsedPkg)
	externals := make(map[string]bool)
	var parsePkg func(path string) error
	parsePkg = func(path string) error {
		if _, ok := parsed[path]; ok {
			return nil
		}
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("golden package %q: %w", path, err)
		}
		p := &parsedPkg{path: path, dir: dir}
		parsed[path] = p
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("golden package %q: %w", path, err)
			}
			p.files = append(p.files, f)
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if _, err := os.Stat(filepath.Join(testdata, "src", filepath.FromSlash(ipath))); err == nil {
					p.local = append(p.local, ipath)
					if err := parsePkg(ipath); err != nil {
						return err
					}
				} else {
					externals[ipath] = true
				}
			}
		}
		return nil
	}
	for _, path := range pkgPaths {
		if err := parsePkg(path); err != nil {
			t.Fatal(err)
		}
	}

	var extList []string
	for path := range externals {
		extList = append(extList, path)
	}
	sort.Strings(extList)
	exports := make(map[string]string)
	if len(extList) > 0 {
		var err error
		exports, err = analysis.ExportData(testdata, extList...)
		if err != nil {
			t.Fatal(err)
		}
	}
	imp := analysis.NewImporter(fset, exports, checked)

	// Type-check in dependency order (DFS post-order over local imports).
	var typeCheck func(path string) (*analysis.Package, error)
	typeCheck = func(path string) (*analysis.Package, error) {
		if pkg, ok := loaded[path]; ok {
			return pkg, nil
		}
		p := parsed[path]
		for _, dep := range p.local {
			if _, err := typeCheck(dep); err != nil {
				return nil, err
			}
		}
		info := analysis.NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking golden package %q: %w", path, err)
		}
		pkg := &analysis.Package{
			Path: path, Dir: p.dir, Fset: fset,
			Files: p.files, Types: tpkg, Info: info,
		}
		loaded[path] = pkg
		checked[path] = tpkg
		return pkg, nil
	}

	// Type-check everything first, then build one flow world spanning all
	// golden packages (and their local deps) so cross-package facts —
	// lock-order edges, join bits, alias-returning accessors — resolve the
	// same way cmd/corropt-lint resolves them over the module.
	for _, path := range pkgPaths {
		if _, err := typeCheck(path); err != nil {
			t.Fatal(err)
		}
	}
	var all []*analysis.Package
	var allPaths []string
	for path := range loaded {
		allPaths = append(allPaths, path)
	}
	sort.Strings(allPaths)
	for _, path := range allPaths {
		all = append(all, loaded[path])
	}
	world := analysis.BuildWorld(all)

	for _, path := range pkgPaths {
		pkg := loaded[path]
		diags, err := analysis.RunW(pkg, analyzers, world)
		if err != nil {
			t.Fatal(err)
		}
		checkWants(t, pkg, diags)
	}
}

// wantRe extracts the quoted expectation strings of a want comment.
var wantRe = regexp.MustCompile(`^want\s+(.*)$`)

// checkWants compares the diagnostics against the package's `// want`
// comments: every diagnostic must match an expectation on its line, and
// every expectation must be consumed.
func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if strings.HasPrefix(text, "//") {
					text = strings.TrimPrefix(text, "//")
				} else {
					// Block comments carry wants on lines that also need a
					// //lint:allow annotation (only one //-comment fits).
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				}
				text = strings.TrimSpace(text)
				m := wantRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, text)
					}
					lit, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: malformed want string %q", pos.Filename, pos.Line, q)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	var keys []key
	for k, res := range wants {
		if len(res) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}
