package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"corropt/internal/runner"
)

// loadRepo loads module packages matching patterns from the repository root.
func loadRepo(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	pkgs, err := Load("../..", patterns...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	return pkgs
}

// TestRepoIsLintClean is the self-check gate: the canonical analyzer suite
// (exactly what cmd/corropt-lint and `make lint` run) must produce zero
// diagnostics over the whole module. A regression here means either shipping
// code violated the determinism contract or an analyzer grew a false
// positive; both block the build.
func TestRepoIsLintClean(t *testing.T) {
	pkgs := loadRepo(t, "./...")

	// Guard against silently analyzing nothing: the determinism-critical
	// core must actually be present in the load set under the exact import
	// paths DeterminismConfig names.
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for path := range DeterminismConfig {
		if !seen[path] {
			t.Errorf("DeterminismConfig names %s, but it was not loaded; config drifted from the module layout", path)
		}
	}

	// Module-wide flow world, exactly as cmd/corropt-lint builds it: the
	// flow analyzers must see cross-package lock edges and join facts, not
	// per-package approximations.
	world := BuildWorld(pkgs)
	for _, pkg := range pkgs {
		diags, err := RunW(pkg, All(), world)
		if err != nil {
			t.Fatalf("Run(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s: %s", pkg.Path, pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}

// TestRngutilAllowIsAudited pins the shape of rngutil's sanctioned math/rand
// use: the raw analyzer DOES see the rand.New / rand.NewSource references
// (so the exemption is a visible, line-scoped lint:allow annotation, not a
// blanket package exemption), and the filtered Run — the same path the
// driver uses — suppresses exactly those findings.
func TestRngutilAllowIsAudited(t *testing.T) {
	pkgs := loadRepo(t, "./internal/rngutil")
	var pkg *Package
	for _, p := range pkgs {
		if p.Path == "corropt/internal/rngutil" {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatal("corropt/internal/rngutil not loaded")
	}

	// Raw pass, bypassing suppression.
	var raw []Diagnostic
	pass := &Pass{
		Analyzer:  NoDeterminism,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Path:      pkg.Path,
		diags:     &raw,
	}
	if err := NoDeterminism.Run(pass); err != nil {
		t.Fatalf("raw run: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("raw nodeterminism pass found nothing in rngutil; the math/rand use became invisible to the analyzer")
	}
	// Every raw finding must sit on a line covered by a lint:allow
	// annotation for nodeterminism (the line after the comment).
	allowLines := allowedLinesFor(t, pkg, "nodeterminism")
	for _, d := range raw {
		pos := pkg.Fset.Position(d.Pos)
		if !strings.Contains(d.Message, "math/rand") {
			t.Errorf("unexpected raw finding %s: %s", pos, d.Message)
		}
		if !allowLines[lineKey{pos.Filename, pos.Line}] {
			t.Errorf("raw finding at %s is not covered by a lint:allow annotation", pos)
		}
	}

	// Filtered path: same as the driver. Must be clean.
	diags, err := Run(pkg, []*Analyzer{NoDeterminism})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("suppression failed: %s: %s", pkg.Fset.Position(d.Pos), d.Message)
	}
}

// allowedLinesFor returns the set of file:line keys suppressed for the named
// analyzer in pkg.
func allowedLinesFor(t *testing.T, pkg *Package, analyzer string) map[lineKey]bool {
	t.Helper()
	allows, bad := collectAllows(pkg, map[string]bool{analyzer: true})
	if len(bad) != 0 {
		t.Fatalf("malformed lint:allow annotations in %s: %v", pkg.Path, bad)
	}
	out := make(map[lineKey]bool)
	for key, names := range allows {
		if names[analyzer] {
			out[key] = true
		}
	}
	return out
}

// TestSeededViolationsAreCaught is the negative control demanded by the §8
// acceptance criteria: a deliberate time.Now seeded into a sim package and a
// deliberate rand.Intn seeded into an experiments package must each produce
// a finding through the exact Load+Run pipeline the lint driver uses. The
// violations are planted in a throwaway module so the real tree stays clean.
func TestSeededViolationsAreCaught(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module demo\n\ngo 1.22\n")
	write("sim/sim.go", `package sim

import "time"

// Stamp deliberately reads the wall clock.
func Stamp() time.Time { return time.Now() }
`)
	write("experiments/exp.go", `package experiments

import "math/rand"

// Draw deliberately uses global math/rand state.
func Draw() int { return rand.Intn(10) }
`)

	a := NewNoDeterminism(map[string]Rules{
		"demo/sim":         RulesAll,
		"demo/experiments": RulesAll,
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(demo): %v", err)
	}
	var msgs []string
	for _, pkg := range pkgs {
		diags, err := Run(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("Run(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			msgs = append(msgs, pkg.Path+": "+d.Message)
		}
	}
	if len(msgs) != 2 {
		t.Fatalf("want exactly 2 findings (time.Now in sim, rand.Intn in experiments), got %d: %v", len(msgs), msgs)
	}
	wantSubstrings := []string{"demo/sim: time.Now forbidden", "demo/experiments: math/rand.Intn forbidden"}
	for i, want := range wantSubstrings {
		if !strings.Contains(msgs[i], want) && !strings.Contains(msgs[1-i], want) {
			t.Errorf("no finding matching %q in %v", want, msgs)
		}
	}
}

// TestSeededFlowViolationsAreCaught is the flow-suite negative control: a
// deliberate goroutine leak, a deliberate lock-order inversion, and a
// deliberate un-cloned LinkSet-style alias mutation are planted in a
// throwaway module and must each produce a finding through the exact
// Load + BuildWorld + RunW pipeline the lint driver uses.
func TestSeededFlowViolationsAreCaught(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module demo\n\ngo 1.22\n")
	write("leak/leak.go", `package leak

// Spawn deliberately leaks a goroutine: nothing joins it, nothing stops it.
func Spawn() {
	go func() {
		for {
		}
	}()
}
`)
	write("inversion/inversion.go", `package inversion

import "sync"

type state struct {
	a sync.Mutex
	b sync.Mutex
}

var s state

// AB and BA deliberately acquire the two mutexes in opposite orders.
func AB() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func BA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`)
	write("ds/ds.go", `package ds

type Set struct{ bits []uint64 }

func (s *Set) Add(i int)  { s.bits[i>>6] |= 1 << (uint(i) & 63) }
func (s *Set) Clone() *Set {
	return &Set{bits: append([]uint64(nil), s.bits...)}
}

type Owner struct{ set *Set }

func NewOwner() *Owner { return &Owner{set: &Set{bits: make([]uint64, 4)}} }

// View returns the live set.
func (o *Owner) View() *Set { return o.set }

// Mutate deliberately mutates the un-cloned alias.
func Mutate(o *Owner) {
	v := o.View()
	v.Add(1)
}
`)

	aliasDemo := NewAliasEscape([]AliasTarget{{
		Pkg: "demo/ds", Type: "Set", Mutators: []string{"Add"},
	}})
	suite := []*Analyzer{GoroLife, LockOrder, aliasDemo}

	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(demo): %v", err)
	}
	world := BuildWorld(pkgs)
	byAnalyzer := make(map[string][]string)
	for _, pkg := range pkgs {
		diags, err := RunW(pkg, suite, world)
		if err != nil {
			t.Fatalf("Run(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], pkg.Path+": "+d.Message)
		}
	}
	check := func(analyzer, substr string) {
		t.Helper()
		for _, msg := range byAnalyzer[analyzer] {
			if strings.Contains(msg, substr) {
				return
			}
		}
		t.Errorf("seeded %s violation not caught: no finding containing %q in %v", analyzer, substr, byAnalyzer[analyzer])
	}
	check("gorolife", "neither joined")
	check("lockorder", "lock-order cycle")
	check("aliasescape", "aliases internal state returned by Owner.View")
}

// TestHotpathFloorsCoverRoots pins the static proof to the measured ratchet:
// every //lint:hotpath annotated declaration in the module must have exactly
// one `hotpath <root> <benchmark>` 0-allocs/op floor (or one explicit
// `hotpath_exempt <root> <reason>`) in scripts/bench_floors.txt, and every
// floor entry must name a root that still exists. Either direction drifting
// means the hotalloc proof and the benchmark evidence no longer cover the
// same set of functions.
func TestHotpathFloorsCoverRoots(t *testing.T) {
	pkgs := loadRepo(t, "./...")
	world := BuildWorld(pkgs)
	roots := make(map[string]bool)
	for _, fs := range world.HotpathRoots() {
		roots[fs.Pkg+"."+fs.Name] = true
	}
	if len(roots) == 0 {
		t.Fatal("no //lint:hotpath roots found in the module; the annotations or the flow summary went missing")
	}

	data, err := os.ReadFile("../../scripts/bench_floors.txt")
	if err != nil {
		t.Fatalf("read bench_floors.txt: %v", err)
	}
	floors := make(map[string]string) // root -> "hotpath" | "hotpath_exempt"
	for i, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "hotpath":
			if len(fields) != 3 {
				t.Errorf("bench_floors.txt:%d: hotpath wants exactly <root> <benchmark>: %q", i+1, line)
				continue
			}
		case "hotpath_exempt":
			if len(fields) < 3 {
				t.Errorf("bench_floors.txt:%d: hotpath_exempt wants <root> <reason...>: %q", i+1, line)
				continue
			}
		default:
			continue
		}
		root := fields[1]
		if prev, dup := floors[root]; dup {
			t.Errorf("bench_floors.txt:%d: %s already has a %s entry", i+1, root, prev)
			continue
		}
		floors[root] = fields[0]
	}

	for root := range roots {
		if _, ok := floors[root]; !ok {
			t.Errorf("//lint:hotpath root %s has no hotpath (or hotpath_exempt) entry in scripts/bench_floors.txt", root)
		}
	}
	for root, kind := range floors {
		if !roots[root] {
			t.Errorf("bench_floors.txt %s entry names %s, which is not a //lint:hotpath root in the module", kind, root)
		}
	}
}

// TestSeededHotpathViolationsAreCaught is the call-graph-suite negative
// control: a deliberate allocation on a //lint:hotpath path in a sim-shaped
// package (two hops down, so the chain machinery is exercised) and a
// deliberate map-ordered float sum in a fleet-shaped package are planted in
// a throwaway module and must each fail the gate through the exact
// Load + BuildWorld + RunW pipeline the lint driver uses.
func TestSeededHotpathViolationsAreCaught(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module demo\n\ngo 1.22\n")
	write("sim/sim.go", `package sim

type Sim struct{ samples []float64 }

// Settle deliberately allocates two hops down a hot path.
//
//lint:hotpath per-event settle
func (s *Sim) Settle(p float64) {
	s.record(p)
}

func (s *Sim) record(p float64) {
	s.samples = append(s.samples, p)
}
`)
	write("fleet/fleet.go", `package fleet

// Sum deliberately folds float shard penalties in map iteration order.
func Sum(shards map[int]float64) float64 {
	total := 0.0
	for _, p := range shards {
		total += p
	}
	return total
}
`)

	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(demo): %v", err)
	}
	world := BuildWorld(pkgs)
	byAnalyzer := make(map[string][]string)
	for _, pkg := range pkgs {
		diags, err := RunW(pkg, All(), world)
		if err != nil {
			t.Fatalf("Run(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], pkg.Path+": "+d.Message)
		}
	}
	check := func(analyzer, substr string) {
		t.Helper()
		for _, msg := range byAnalyzer[analyzer] {
			if strings.Contains(msg, substr) {
				return
			}
		}
		t.Errorf("seeded %s violation not caught: no finding containing %q in %v", analyzer, substr, byAnalyzer[analyzer])
	}
	check("hotalloc", "hot path (*Sim).Settle is not allocation-free: append may grow its backing array")
	check("hotalloc", "(chain: (*Sim).Settle -> (*Sim).record)")
	check("floatorder", "folds map values in iteration order")
}

// TestSeededDeploymentViolationsAreCaught is the liveness-suite negative
// control: a deadline-less blocking read, a ticker leaked on an error path,
// and a forced heap escape plus bounds check on a //lint:hotpath root are
// planted in a throwaway module — named corropt, so the production
// DeploymentPackages gate itself is what fires — and must each fail the
// gate through the exact Load + BuildWorld + RunW pipeline the lint driver
// uses. The escapes control runs the real compiler harness over the temp
// module, pinning the gcdiag plumbing end to end.
func TestSeededDeploymentViolationsAreCaught(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module corropt\n\ngo 1.22\n")
	write("internal/snmplite/pump.go", `package snmplite

import "net"

// Pump deliberately reads with no deadline and no cancellation signal.
func Pump(c net.Conn, buf []byte) {
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}
`)
	write("internal/ctlplane/tick.go", `package ctlplane

import (
	"errors"
	"time"
)

// Watch deliberately leaks its ticker on the error path.
func Watch(d time.Duration, bad bool) error {
	t := time.NewTicker(d)
	if bad {
		return errors.New("setup failed")
	}
	t.Stop()
	return nil
}
`)
	write("internal/hotshape/hot.go", `package hotshape

var sink *int

// Hot deliberately forces a heap escape and an unprovable bounds check on
// a hot path.
//
//lint:hotpath forced escape negative control
func Hot(xs []int, i int) int {
	x := 3
	sink = &x
	s := 0
	for k := 0; k < 4; k++ {
		s += xs[i]
	}
	return s
}
`)

	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(corropt seed): %v", err)
	}
	world := BuildWorld(pkgs)
	byAnalyzer := make(map[string][]string)
	for _, pkg := range pkgs {
		diags, err := RunW(pkg, All(), world)
		if err != nil {
			t.Fatalf("Run(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], pkg.Path+": "+d.Message)
		}
	}
	check := func(analyzer, substr string) {
		t.Helper()
		for _, msg := range byAnalyzer[analyzer] {
			if strings.Contains(msg, substr) {
				return
			}
		}
		t.Errorf("seeded %s violation not caught: no finding containing %q in %v", analyzer, substr, byAnalyzer[analyzer])
	}
	check("ctxdeadline", "network read ((Conn).Read) in Pump has no deadline")
	check("reslife", "time.Ticker t acquired here may leak")
	check("escapes", "hot path Hot has a compiler-reported heap escape in Hot: x escapes to heap")
	check("escapes", "hot path Hot has a compiler-reported bounds check in its inner loop")
}

// TestLintParallelMatchesSerial pins the driver's determinism contract: the
// merged findings (including suppressed ones) produced by the runner.Map
// fan-out that cmd/corropt-lint uses are byte-identical for 1 worker and 8.
func TestLintParallelMatchesSerial(t *testing.T) {
	pkgs := loadRepo(t, "./...")
	world := BuildWorld(pkgs)
	collect := func(workers int) []string {
		t.Helper()
		perPkg, err := runner.Map(workers, len(pkgs), func(i int) ([]Finding, error) {
			return RunDetailed(pkgs[i], All(), world)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var out []string
		for i, findings := range perPkg {
			for _, f := range findings {
				out = append(out, fmt.Sprintf("%s: %s: %s suppressed=%v",
					pkgs[i].Fset.Position(f.Pos), f.Analyzer, f.Message, f.Suppressed))
			}
		}
		return out
	}
	serial := collect(1)
	if len(serial) == 0 {
		t.Fatal("expected at least the suppressed rngutil findings; got none — suppression state is not being reported")
	}
	parallel := collect(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel lint output differs from serial:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}
