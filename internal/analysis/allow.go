package analysis

import (
	"strings"
)

// allowPrefix introduces a suppression annotation:
//
//	//lint:allow <analyzer> <reason>
//
// The annotation suppresses <analyzer>'s diagnostics on the annotation's own
// line and on the line directly below it (so both trailing and standalone
// placements work). The reason is mandatory: an exception without a recorded
// justification is itself reported as a finding, as is an annotation naming
// an analyzer that is not part of the suite — both keep the allowlist
// auditable.
const allowPrefix = "lint:allow"

// lineKey identifies one source line.
type lineKey struct {
	file string
	line int
}

// collectAllows scans the package's comments for lint:allow annotations.
// It returns the per-line suppression map and a list of diagnostics for
// malformed annotations. known is the set of valid analyzer names.
func collectAllows(pkg *Package, known map[string]bool) (map[lineKey]map[string]bool, []Diagnostic) {
	allows := make(map[lineKey]map[string]bool)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintallow",
						Message:  "malformed lint:allow: missing analyzer name and reason",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintallow",
						Message:  "lint:allow names unknown analyzer \"" + name + "\"",
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintallow",
						Message:  "lint:allow " + name + " is missing a reason — document why the exception is sound",
					})
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := lineKey{file: pos.Filename, line: line}
					if allows[k] == nil {
						allows[k] = make(map[string]bool)
					}
					allows[k][name] = true
				}
			}
		}
	}
	return allows, bad
}
