package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
	"testing"
)

// parseAndCheck type-checks one synthetic file and returns its pieces.
func parseAndCheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return fset, f, pkg, info
}

// funcBody returns the declaration of the named function.
func funcBody(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func TestCFGShapes(t *testing.T) {
	src := `package x

func loops(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			continue
		}
		s += i
		if s > 100 {
			break
		}
	}
	switch {
	case s > 10:
		s = 10
	default:
		s = 0
	}
	return s
}
`
	_, f, _, _ := parseAndCheck(t, src)
	fd := funcBody(t, f, "loops")
	cfg := NewCFG(fd.Body)
	if cfg.Entry == nil || len(cfg.Blocks) < 6 {
		t.Fatalf("unexpectedly small CFG: %d blocks", len(cfg.Blocks))
	}
	// Every reachable block's successors must point back via preds.
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds() {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("block %d -> %d edge missing back-pointer", b.Index, s.Index)
			}
		}
	}
}

// reachingFor finds the identifier with the given name at a use site inside
// fn and returns its reaching RHS expressions rendered as strings.
func reachingFor(t *testing.T, fset *token.FileSet, fd *ast.FuncDecl, info *types.Info, du *DefUse, name string, afterLine int) ([]string, bool) {
	t.Helper()
	var got []string
	var unknown bool
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if fset.Position(id.Pos()).Line != afterLine {
			return true
		}
		exprs, unk := du.Reaching(id)
		found = true
		unknown = unk
		for _, e := range exprs {
			var sb strings.Builder
			start := fset.Position(e.Pos())
			end := fset.Position(e.End())
			_ = start
			_ = end
			switch e := e.(type) {
			case *ast.CallExpr:
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
					sb.WriteString(sel.Sel.Name + "()")
				} else if id, ok := e.Fun.(*ast.Ident); ok {
					sb.WriteString(id.Name + "()")
				} else {
					sb.WriteString("call")
				}
			case *ast.Ident:
				sb.WriteString(e.Name)
			default:
				sb.WriteString("expr")
			}
			got = append(got, sb.String())
		}
		return false
	})
	if !found {
		t.Fatalf("no use of %q on line %d", name, afterLine)
	}
	return got, unknown
}

func TestDefUseCloneBreaksChain(t *testing.T) {
	src := `package x

type set struct{ bits []uint64 }

func (s *set) Clone() *set { return &set{bits: append([]uint64(nil), s.bits...)} }
func (s *set) Add(i int)   { s.bits[i/64] |= 1 << (i % 64) }

type owner struct{ s *set }

func (o *owner) View() *set { return o.s }

func use(o *owner, cond bool) {
	v := o.View()
	if cond {
		v = v.Clone()
	}
	v.Add(1)
	w := o.View()
	w = w.Clone()
	w.Add(2)
}
`
	fset, f, _, info := parseAndCheck(t, src)
	fd := funcBody(t, f, "use")
	cfg := NewCFG(fd.Body)
	du := BuildDefUse(cfg, info, fd.Type, fd.Recv)

	// v.Add(1) on line 17: both the raw View() def and the Clone() def reach.
	got, unknown := reachingFor(t, fset, fd, info, du, "v", 17)
	if unknown {
		t.Errorf("v at line 17: unexpected unknown def")
	}
	joined := strings.Join(got, ",")
	if !strings.Contains(joined, "View()") || !strings.Contains(joined, "Clone()") {
		t.Errorf("v at line 17: want both View() and Clone() reaching, got %v", got)
	}

	// w.Add(2) on line 20: only the Clone() def reaches (strong kill).
	got, unknown = reachingFor(t, fset, fd, info, du, "w", 20)
	if unknown {
		t.Errorf("w at line 20: unexpected unknown def")
	}
	if len(got) != 1 || got[0] != "Clone()" {
		t.Errorf("w at line 20: want exactly [Clone()], got %v", got)
	}
}

func TestWorldLockFacts(t *testing.T) {
	src := `package x

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

var ga a
var gb b

func lockAB() {
	ga.mu.Lock()
	gb.mu.Lock()
	gb.mu.Unlock()
	ga.mu.Unlock()
}

func lockBviaCall() {
	gb.mu.Lock()
	helper()
	gb.mu.Unlock()
}

func helper() {
	ga.mu.Lock()
	ga.mu.Unlock()
}

func reacquire() {
	ga.mu.Lock()
	ga.mu.Lock()
	ga.mu.Unlock()
	ga.mu.Unlock()
}
`
	fset, f, pkg, info := parseAndCheck(t, src)
	w := NewWorld()
	w.AddPackage("x", fset, []*ast.File{f}, pkg, info)
	w.Finalize()

	cycles := w.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("want 1 lock cycle (a.mu <-> b.mu), got %d: %+v", len(cycles), cycles)
	}
	keys := cycles[0].Keys
	if len(keys) != 2 || keys[0] != "x.a.mu" || keys[1] != "x.b.mu" {
		t.Errorf("cycle keys = %v, want [x.a.mu x.b.mu]", keys)
	}
	if len(cycles[0].Edges) != 2 {
		t.Errorf("cycle edges = %d, want 2", len(cycles[0].Edges))
	}

	reacq := w.Reacquires()
	if len(reacq) != 1 || reacq[0].Key != "x.a.mu" {
		t.Errorf("reacquires = %+v, want one on x.a.mu", reacq)
	}
}

func TestWorldJoinAndAliasFacts(t *testing.T) {
	src := `package x

import "sync"

type srv struct {
	wg   sync.WaitGroup
	done chan struct{}
	data []int
}

func (s *srv) loopDone() {
	defer close(s.done)
	for i := 0; i < 10; i++ {
	}
}

func (s *srv) loopWG() {
	defer s.wg.Done()
}

func (s *srv) Data() []int { return s.data }

func (s *srv) Fresh() []int {
	out := make([]int, len(s.data))
	copy(out, s.data)
	return out
}

func leak() {
	for {
	}
}
`
	fset, f, pkg, info := parseAndCheck(t, src)
	w := NewWorld()
	w.AddPackage("x", fset, []*ast.File{f}, pkg, info)
	w.Finalize()

	find := func(name string) *types.Func {
		t.Helper()
		for fn := range w.byFunc {
			if fn.Name() == name {
				return fn
			}
		}
		t.Fatalf("function %s not summarized", name)
		return nil
	}

	if bits, _ := w.JoinFacts(find("loopDone")); !bits.Joined() {
		t.Errorf("loopDone: want Joined (closes done channel)")
	}
	if bits, _ := w.JoinFacts(find("loopWG")); !bits.Joined() {
		t.Errorf("loopWG: want Joined (wg.Done)")
	}
	if bits, _ := w.JoinFacts(find("leak")); bits.Joined() || bits.Cancellable() {
		t.Errorf("leak: want neither joined nor cancellable, got %b", bits)
	}
	if !w.ReturnsAlias(find("Data")) {
		t.Errorf("Data: want ReturnsAlias")
	}
	if w.ReturnsAlias(find("Fresh")) {
		t.Errorf("Fresh: must not be alias-returning (copies)")
	}
}

func TestWorldConcurrentAddPackage(t *testing.T) {
	t.Parallel()
	src := `package x

import "sync"

type g struct{ mu sync.Mutex }

var gg g

func f() {
	gg.mu.Lock()
	gg.mu.Unlock()
}
`
	w := NewWorld()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		name := "p" + string(rune('0'+i))
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, name+".go", strings.Replace(src, "package x", "package "+name, 1), 0)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: importer.Default()}
		pkg, err := conf.Check(name, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-check: %v", err)
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			w.AddPackage(name, fset, []*ast.File{f}, pkg, info)
		}(name)
	}
	wg.Wait()
	w.Finalize()
	for i := 0; i < 8; i++ {
		name := "p" + string(rune('0'+i))
		if len(w.PackageFacts(name)) == 0 {
			t.Errorf("package %s has no facts after concurrent add", name)
		}
	}
}

func TestHeldBlocksAndDeferUnlock(t *testing.T) {
	src := `package x

import "sync"

type s struct {
	mu   sync.Mutex
	done chan struct{}
	wg   sync.WaitGroup
}

func (x *s) closeBad() {
	x.mu.Lock()
	defer x.mu.Unlock()
	<-x.done
}

func (x *s) closeGood() {
	x.mu.Lock()
	x.mu.Unlock()
	<-x.done
	x.wg.Wait()
}
`
	fset, f, pkg, info := parseAndCheck(t, src)
	w := NewWorld()
	w.AddPackage("x", fset, []*ast.File{f}, pkg, info)
	w.Finalize()

	byName := make(map[string]*FuncFacts)
	for _, fs := range w.PackageFacts("x") {
		byName[fs.Name] = fs
	}
	bad := byName["(*s).closeBad"]
	if bad == nil || len(bad.HeldBlocks) != 1 || bad.HeldBlocks[0].What != "channel receive" {
		t.Fatalf("closeBad: want one channel-receive held block, got %+v", bad)
	}
	good := byName["(*s).closeGood"]
	if good == nil || len(good.HeldBlocks) != 0 {
		t.Fatalf("closeGood: want no held blocks, got %+v", good.HeldBlocks)
	}
}
