package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A LockKey names a mutex for lock-order purposes: "pkg.Type.field" for a
// mutex field (all instances of one struct type share a key, the standard
// lock-hierarchy granularity), "pkg.Type.(embedded)" for an embedded
// sync.Mutex, and "pkg.var" for a package-level mutex variable. Local mutex
// variables are not keyed (they cannot participate in cross-function
// ordering).
type LockKey string

// An Acquire is one mutex acquisition with the set of keys already held.
type Acquire struct {
	Key  LockKey
	Pos  token.Pos
	Read bool // RLock rather than Lock
	Held []LockKey
}

// A HeldCall is a call made while holding at least one mutex.
type HeldCall struct {
	// Callee is the static callee, nil for dynamic calls through function
	// values. Interface method calls resolve to the interface method.
	Callee *types.Func
	Pos    token.Pos
	Held   []LockKey
}

// A HeldBlock is a potentially-blocking operation (channel send/receive,
// select without default, sync.WaitGroup.Wait, or a known blocking I/O call)
// executed while holding at least one mutex.
type HeldBlock struct {
	What string // human-readable description of the operation
	Pos  token.Pos
	Held []LockKey
}

// A GoSpawn is one `go` statement.
type GoSpawn struct {
	Pos token.Pos
	// Callee is the spawned function when it is a static function or method;
	// nil when the spawn target is a function literal (see Lit) or a dynamic
	// function value (both nil: unknown).
	Callee *types.Func
	// Lit holds the facts of a spawned function literal.
	Lit *FuncFacts
}

// JoinBits describes how a function participates in goroutine lifecycle
// discipline.
type JoinBits uint

const (
	// JoinWGDone: calls (*sync.WaitGroup).Done — the spawner can Wait.
	JoinWGDone JoinBits = 1 << iota
	// JoinClosesChan: closes a channel — completion is observable.
	JoinClosesChan
	// JoinSendsChan: sends on a channel — completion/result is observable.
	JoinSendsChan
	// CancelRecvsChan: receives from or ranges over a channel, or selects on
	// one — the goroutine can be stopped by closing that channel.
	CancelRecvsChan
	// CancelCtxDone: references context.Context.Done — cancellable.
	CancelCtxDone
)

// Joined reports whether the bits prove the goroutine's completion is
// observable by another goroutine.
func (j JoinBits) Joined() bool {
	return j&(JoinWGDone|JoinClosesChan|JoinSendsChan) != 0
}

// Cancellable reports whether the bits prove the goroutine can be asked to
// stop.
func (j JoinBits) Cancellable() bool {
	return j&(CancelRecvsChan|CancelCtxDone) != 0
}

// FuncFacts is the summary of one function body: a function declaration, or
// a function literal (Fn == nil).
type FuncFacts struct {
	// Pkg is the import path of the package declaring the function.
	Pkg string
	// Fn identifies declared functions and methods; nil for literals.
	Fn *types.Func
	// Name is the display name ("(*Controller).Close", "func literal").
	Name string
	// Pos locates the function (the func keyword).
	Pos token.Pos

	// Acquires are the mutex acquisitions in this body with held-sets.
	Acquires []Acquire
	// HeldCalls are the calls made while holding at least one mutex.
	HeldCalls []HeldCall
	// HeldBlocks are potentially-blocking operations under a held mutex.
	HeldBlocks []HeldBlock
	// DirectLocks is the deduplicated set of keys this body acquires.
	DirectLocks []LockKey
	// Calls is the deduplicated set of static callees (excluding calls made
	// inside nested function literals, which carry their own facts).
	Calls []*types.Func
	// DirectBlocking is set when the body itself performs a known blocking
	// I/O call (independent of lock state); see blockingCalls.
	DirectBlocking bool
	// Join records the body's goroutine-lifecycle signals.
	Join JoinBits
	// ReturnsAlias is set when some return statement returns a pointer,
	// slice, or map rooted in the receiver's (or a parameter's) internal
	// state — the escape that aliasescape tracks at call sites.
	ReturnsAlias bool
	// GoSpawns are the `go` statements in this body.
	GoSpawns []GoSpawn
	// Lits are the facts of nested function literals (other than those
	// attached to GoSpawns, which appear in both places).
	Lits []*FuncFacts

	// Hotpath is set when the declaration's doc comment carries
	// `//lint:hotpath`: the hotalloc analyzer must prove the function
	// transitively allocation-free.
	Hotpath bool
	// Allocs are the potentially heap-allocating operations in this body
	// (see alloc.go for the operation catalogue and sanction semantics).
	Allocs []AllocSite
	// CallSites are the static calls with positions, one entry per call
	// expression (unlike Calls, not deduplicated), excluding calls inside
	// nested literals.
	CallSites []CallSite
	// FloatAccums are the order-sensitive floating-point reductions in this
	// body (map-iteration or channel-arrival folds).
	FloatAccums []FloatAccum

	// End is the position just past the body's closing brace; with Pos it
	// spans the declaration so the escapes analyzer can attribute
	// compiler-reported diagnostics to the enclosing function by line.
	End token.Pos
	// Loops are the source spans of the body's for/range statements (nested
	// literals excluded) — the escapes analyzer attributes compiler-reported
	// bounds checks inside them to this function's inner loops.
	Loops []Span
	// NetOps are the blocking network operations in this body (see netOps),
	// each carrying the verdict of the deadline must-analysis in deadline.go:
	// Guarded means a Set*Deadline call dominates the op on every CFG path.
	NetOps []NetOp
	// DeadlineCalls are the static call sites with the deadline-armed state
	// at the call; World.Finalize aggregates them into per-callee
	// caller-guard counts and the undeadlined-exposure closure that
	// ctxdeadline consults.
	DeadlineCalls []DeadlineCall
	// SetsDeadline is set when the body itself arms a deadline
	// (SetDeadline / SetReadDeadline / SetWriteDeadline, not deferred).
	SetsDeadline bool
}

// blockingCalls are functions and methods known to block on I/O or timers.
// Matched against types.Func.FullName. Interface methods match their
// interface identity (e.g. a call through net.Conn matches "(net.Conn).Read")
// — concrete implementations invoked through the interface are not
// devirtualized, a documented soundness caveat.
var blockingCalls = map[string]string{
	"(net.Conn).Read":               "network read",
	"(net.Conn).Write":              "network write",
	"(net.Listener).Accept":         "accept",
	"(net.PacketConn).ReadFrom":     "network read",
	"(net.PacketConn).WriteTo":      "network write",
	"net.Dial":                      "dial",
	"net.DialTimeout":               "dial",
	"net.Listen":                    "listen",
	"net.ListenPacket":              "listen",
	"time.Sleep":                    "sleep",
	"(*os/exec.Cmd).Run":            "subprocess",
	"(*os/exec.Cmd).Wait":           "subprocess wait",
	"(*os/exec.Cmd).Output":         "subprocess",
	"(*os/exec.Cmd).CombinedOutput": "subprocess",
	"(*net/http.Client).Do":         "http request",
	"net/http.Get":                  "http request",
	"net/http.Post":                 "http request",
}

// funcSummarizer extracts FuncFacts for one package's functions.
type funcSummarizer struct {
	pkgPath string
	fset    *token.FileSet
	info    *types.Info
	// allowLines is the hotalloc-sanctioned line set of the file currently
	// being summarized (see hotallocAllowLines); nested literals summarized
	// during the file's walk share it.
	allowLines map[int]bool
}

// summarizeFile returns the facts of every function declaration in f, each
// with its nested literals attached.
func (s *funcSummarizer) summarizeFile(f *ast.File) []*FuncFacts {
	s.allowLines = hotallocAllowLines(s.fset, f)
	var out []*FuncFacts
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn, _ := s.info.Defs[fd.Name].(*types.Func)
		name := fd.Name.Name
		if fn != nil {
			name = displayName(fn)
		}
		facts := s.summarizeBody(fn, name, fd.Pos(), fd.Type, fd.Recv, fd.Body)
		facts.Hotpath = hasHotpathDoc(fd.Doc)
		out = append(out, facts)
	}
	return out
}

func displayName(fn *types.Func) string {
	full := fn.FullName()
	if fn.Pkg() != nil {
		full = strings.ReplaceAll(full, fn.Pkg().Path()+".", "")
	}
	return full
}

// summarizeBody computes the facts of one function body.
func (s *funcSummarizer) summarizeBody(fn *types.Func, name string, pos token.Pos, fnType *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) *FuncFacts {
	facts := &FuncFacts{
		Pkg:  s.pkgPath,
		Fn:   fn,
		Name: name,
		Pos:  pos,
		End:  body.End(),
	}

	cfg := NewCFG(body)

	// Pass 1: held-lock fixpoint over the CFG. State is the may-held set of
	// lock keys at block entry.
	in := make([]map[LockKey]bool, len(cfg.Blocks))
	out := make([]map[LockKey]bool, len(cfg.Blocks))
	for i := range out {
		out[i] = map[LockKey]bool{}
		in[i] = map[LockKey]bool{}
	}
	transfer := func(bi int, record bool) map[LockKey]bool {
		held := make(map[LockKey]bool, len(in[bi]))
		for k := range in[bi] {
			held[k] = true
		}
		for _, n := range cfg.Blocks[bi].Nodes {
			s.walkNode(n, held, facts, record)
		}
		return held
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range cfg.Blocks {
			merged := make(map[LockKey]bool)
			for _, p := range blk.Preds() {
				for k := range out[p.Index] {
					merged[k] = true
				}
			}
			in[blk.Index] = merged
			next := transfer(blk.Index, false)
			if !sameKeySet(next, out[blk.Index]) {
				out[blk.Index] = next
				changed = true
			}
		}
	}
	// Pass 2: record facts with the converged held-sets.
	for _, blk := range cfg.Blocks {
		transfer(blk.Index, true)
	}

	// Deadline must-analysis over the same CFG (deadline.go): which blocking
	// network ops and call sites run with a Set*Deadline armed on all paths.
	s.deadlineFacts(cfg, facts)

	// Lexical facts that do not need flow: join bits, alias returns, direct
	// lock set, call set.
	s.lexicalFacts(body, facts, fnType, recv)
	facts.Loops = loopSpans(body)

	// Allocation-effect and float-accumulation facts for the hotalloc and
	// floatorder analyzers (alloc.go); like lexicalFacts these exclude
	// nested literals, which carry their own facts.
	s.allocFacts(body, facts)
	s.floatAccumFacts(body, facts)

	return facts
}

// walkNode processes one CFG node, updating held in place and, when record is
// set, appending facts. Nested function literals are summarized separately
// (they execute at an unknown time, not at their lexical position).
func (s *funcSummarizer) walkNode(n ast.Node, held map[LockKey]bool, facts *FuncFacts, record bool) {
	heldSnapshot := func() []LockKey {
		if len(held) == 0 {
			return nil
		}
		keys := make([]LockKey, 0, len(held))
		for k := range held {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return keys
	}

	isDefer := false
	if d, ok := n.(*ast.DeferStmt); ok {
		isDefer = true
		n = d.Call
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if record {
				lit := s.summarizeBody(nil, "func literal", n.Pos(), n.Type, nil, n.Body)
				facts.Lits = append(facts.Lits, lit)
			}
			return false

		case *ast.GoStmt:
			if record {
				spawn := GoSpawn{Pos: n.Pos()}
				switch fun := ast.Unparen(n.Call.Fun).(type) {
				case *ast.FuncLit:
					spawn.Lit = s.summarizeBody(nil, "func literal", fun.Pos(), fun.Type, nil, fun.Body)
				default:
					spawn.Callee = s.staticCallee(n.Call)
				}
				facts.GoSpawns = append(facts.GoSpawns, spawn)
			}
			// Argument expressions evaluate now; the call itself does not.
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false

		case *ast.SendStmt:
			if record && len(held) > 0 {
				facts.HeldBlocks = append(facts.HeldBlocks, HeldBlock{
					What: "channel send", Pos: n.Pos(), Held: heldSnapshot(),
				})
			}
			return true

		case *ast.UnaryExpr:
			if n.Op == token.ARROW && record && len(held) > 0 {
				facts.HeldBlocks = append(facts.HeldBlocks, HeldBlock{
					What: "channel receive", Pos: n.Pos(), Held: heldSnapshot(),
				})
			}
			return true

		case *ast.CallExpr:
			// Arguments (and nested calls inside them) first.
			for _, arg := range n.Args {
				ast.Inspect(arg, walk)
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				ast.Inspect(sel.X, walk)
			}
			fn := s.staticCallee(n)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				if key, read, acquire, ok := s.lockOp(n, fn); ok {
					if isDefer {
						// defer mu.Unlock() keeps the lock held through the
						// rest of the body; defer mu.Lock() is nonsense we
						// ignore.
						return false
					}
					if acquire {
						if record {
							facts.Acquires = append(facts.Acquires, Acquire{
								Key: key, Pos: n.Pos(), Read: read, Held: heldSnapshot(),
							})
						}
						held[key] = true
					} else {
						delete(held, key)
					}
					return false
				}
				if fn.Name() == "Wait" && isWaitGroupMethod(fn) {
					if record && len(held) > 0 {
						facts.HeldBlocks = append(facts.HeldBlocks, HeldBlock{
							What: "sync.WaitGroup.Wait", Pos: n.Pos(), Held: heldSnapshot(),
						})
					}
					return false
				}
			}
			if record {
				if fn != nil {
					if what, ok := blockingCalls[fn.FullName()]; ok && len(held) > 0 {
						facts.HeldBlocks = append(facts.HeldBlocks, HeldBlock{
							What: what + " (" + displayName(fn) + ")", Pos: n.Pos(), Held: heldSnapshot(),
						})
					}
				}
				if fn != nil && len(held) > 0 {
					facts.HeldCalls = append(facts.HeldCalls, HeldCall{
						Callee: fn, Pos: n.Pos(), Held: heldSnapshot(),
					})
				}
			}
			return false

		case *ast.SelectStmt:
			// The CFG decomposes select bodies; a SelectStmt appearing as a
			// node would be unusual, but guard anyway: a select without a
			// default case blocks.
			return false
		}
		return true
	}
	ast.Inspect(n, walk)
}

// staticCallee resolves the called function of a call expression: a
// package-level function, a method (concrete or interface), or nil for calls
// through function values and built-ins.
func (s *funcSummarizer) staticCallee(call *ast.CallExpr) *types.Func {
	return StaticCallee(s.info, call)
}

// StaticCallee resolves the statically-called function of a call expression:
// a package-level function, a method (concrete or interface), or nil for
// calls through function values and for built-ins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// lockOp classifies a call to a sync.Mutex / sync.RWMutex method and derives
// the lock key from the receiver expression. ok is false for other sync
// functions or unkeyable (local) mutexes.
func (s *funcSummarizer) lockOp(call *ast.CallExpr, fn *types.Func) (key LockKey, read, acquire, ok bool) {
	recvType := methodRecvNamed(fn)
	if recvType == nil {
		return "", false, false, false
	}
	if name := recvType.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", false, false, false
	}
	switch fn.Name() {
	case "Lock":
		read, acquire = false, true
	case "RLock":
		read, acquire = true, true
	case "Unlock":
		read, acquire = false, false
	case "RUnlock":
		read, acquire = true, false
	default:
		return "", false, false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false, false
	}
	key, ok = s.lockKeyOf(sel.X)
	return key, read, acquire, ok
}

// lockKeyOf derives the LockKey of the mutex denoted by expr.
func (s *funcSummarizer) lockKeyOf(expr ast.Expr) (LockKey, bool) {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		sel, ok := s.info.Selections[e]
		if ok && sel.Kind() == types.FieldVal {
			field, ok := sel.Obj().(*types.Var)
			if !ok {
				return "", false
			}
			owner := namedOf(sel.Recv())
			if owner == nil {
				return "", false
			}
			return typeFieldKey(owner, field.Name()), true
		}
		// pkg.Var selector.
		if obj, ok := s.info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return LockKey(obj.Pkg().Path() + "." + obj.Name()), true
		}
	case *ast.Ident:
		obj, ok := s.info.Uses[e].(*types.Var)
		if !ok {
			return "", false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			// Package-level mutex variable.
			return LockKey(obj.Pkg().Path() + "." + obj.Name()), true
		}
		// Receiver or parameter of struct type with an embedded mutex:
		// x.Lock() — key the embedding type.
		if owner := namedOf(obj.Type()); owner != nil {
			return typeFieldKey(owner, "(embedded)"), true
		}
	case *ast.StarExpr:
		return s.lockKeyOf(e.X)
	}
	return "", false
}

func typeFieldKey(owner *types.Named, field string) LockKey {
	name := owner.Obj().Name()
	if p := owner.Obj().Pkg(); p != nil {
		name = p.Path() + "." + name
	}
	return LockKey(name + "." + field)
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// methodRecvNamed returns the named type of fn's receiver, nil for
// package-level functions.
func methodRecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

func isWaitGroupMethod(fn *types.Func) bool {
	recv := methodRecvNamed(fn)
	return recv != nil && recv.Obj().Name() == "WaitGroup" &&
		recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "sync"
}

// lexicalFacts fills the flow-insensitive parts of facts: join bits, direct
// lock and call sets, blocking-call presence, and alias-returning results.
// Nested function literals are excluded — each carries its own facts.
func (s *funcSummarizer) lexicalFacts(body *ast.BlockStmt, facts *FuncFacts, fnType *ast.FuncType, recv *ast.FieldList) {
	lockSeen := make(map[LockKey]bool)
	callSeen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			facts.Join |= JoinSendsChan
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				facts.Join |= CancelRecvsChan
			}
		case *ast.RangeStmt:
			if t := s.info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					facts.Join |= CancelRecvsChan
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := s.info.Uses[id].(*types.Builtin); isBuiltin {
					facts.Join |= JoinClosesChan
					return true
				}
			}
			fn := s.staticCallee(n)
			if fn == nil {
				return true
			}
			if fn.Name() == "Done" {
				if isWaitGroupMethod(fn) {
					facts.Join |= JoinWGDone
				}
				if recvT := methodRecvNamed(fn); recvT != nil &&
					recvT.Obj().Pkg() != nil && recvT.Obj().Pkg().Path() == "context" {
					facts.Join |= CancelCtxDone
				}
			}
			if recvT := methodRecvNamed(fn); recvT == nil || recvT.Obj().Pkg() == nil ||
				recvT.Obj().Pkg().Path() != "sync" {
				if !callSeen[fn] {
					callSeen[fn] = true
					facts.Calls = append(facts.Calls, fn)
				}
			}
			if _, ok := blockingCalls[fn.FullName()]; ok {
				facts.DirectBlocking = true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				if key, _, acquire, ok := s.lockOp(n, fn); ok && acquire && !lockSeen[key] {
					lockSeen[key] = true
					facts.DirectLocks = append(facts.DirectLocks, key)
				}
			}
		case *ast.ReturnStmt:
			if s.returnsAlias(n, fnType, recv) {
				facts.ReturnsAlias = true
			}
		}
		return true
	})
	sort.Slice(facts.DirectLocks, func(i, j int) bool { return facts.DirectLocks[i] < facts.DirectLocks[j] })
}

// returnsAlias reports whether ret returns a pointer, slice, or map rooted in
// the receiver's or a parameter's internal state: `return x.f`, `return
// &x.f`, `return x.f[i]`, for x the receiver or a pointer parameter.
func (s *funcSummarizer) returnsAlias(ret *ast.ReturnStmt, fnType *ast.FuncType, recv *ast.FieldList) bool {
	roots := make(map[*types.Var]bool)
	addRoots := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := s.info.Defs[name].(*types.Var); ok {
					roots[v] = true
				}
			}
		}
	}
	addRoots(recv)
	if fnType != nil {
		addRoots(fnType.Params)
	}
	for _, res := range ret.Results {
		t := s.info.TypeOf(res)
		if t == nil {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map:
		default:
			continue
		}
		if exprRootedInField(res, s.info, roots) {
			return true
		}
	}
	return false
}

// exprRootedInField reports whether e is a selector/index/address chain that
// reaches a struct field through one of the given root variables.
func exprRootedInField(e ast.Expr, info *types.Info, roots map[*types.Var]bool) bool {
	sawField := false
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				sawField = true
			}
			e = x.X
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			return ok && roots[v] && sawField
		default:
			return false
		}
	}
}
