package flow

// The flow layer of the ctxdeadline analyzer: a must-analysis over the
// function CFG that decides, for every blocking network operation and every
// static call site, whether a deadline was armed — SetDeadline /
// SetReadDeadline / SetWriteDeadline called, not deferred — on *all* paths
// from function entry. The per-function verdicts land in
// FuncFacts.NetOps/DeadlineCalls; World.Finalize aggregates them into
// per-callee caller-guard counts and the undeadlined-exposure closure
// (world.go), and the ctxdeadline analyzer turns those into findings gated
// on the deployment packages.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Span is a half-open source range [Start, End).
type Span struct {
	Start, End token.Pos
}

// A NetOp is one blocking network operation (see netOps) with the verdict of
// the deadline must-analysis: Guarded means a deadline-setter call dominates
// the op on every CFG path from function entry.
type NetOp struct {
	// What describes the operation, e.g. "network read (io.ReadFull)".
	What    string
	Pos     token.Pos
	Guarded bool
}

// A DeadlineCall is one static call site with the deadline-armed state at
// the call. Every static call is recorded (not just blocking ones): the
// exposure closure in World.Finalize needs the guard state of calls to
// arbitrary in-module functions, since any of them may transitively reach an
// undeadlined network op.
type DeadlineCall struct {
	Callee  *types.Func
	Pos     token.Pos
	Guarded bool
}

// netOps are the blocking network operations ctxdeadline requires a deadline
// or cancellation signal for. Matched like blockingCalls against
// types.Func.FullName — interface identities, no devirtualization. The io
// entries matter because the repo's framing primitives (ctlplane.ReadMsg /
// WriteMsg) block through io.Reader / io.Writer rather than net.Conn; a
// bytes.Buffer passed through those interfaces cannot block, so call sites
// that only ever frame into memory take a `//lint:allow ctxdeadline` with
// that reason.
var netOps = map[string]string{
	"(net.Conn).Read":           "network read",
	"(net.Conn).Write":          "network write",
	"(net.PacketConn).ReadFrom": "network read",
	"(net.PacketConn).WriteTo":  "network write",
	"(net.Listener).Accept":     "accept",
	"(io.Reader).Read":          "network read",
	"(io.Writer).Write":         "network write",
	"io.ReadFull":               "network read",
}

// isDeadlineSetter reports whether fn is a Set[Read|Write]Deadline method on
// any receiver — net.Conn implementations, netchaos wrappers, and test fakes
// all count, so injected dialers keep their guarding effect.
func isDeadlineSetter(fn *types.Func) bool {
	switch fn.Name() {
	case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Recv() != nil
	}
	return false
}

// deadlineFacts runs the deadline must-analysis over the function body's
// CFG, recording NetOps and DeadlineCalls with their all-paths verdicts.
// State is one boolean per block: "a deadline has been armed on every path
// reaching here". Entry starts unarmed; joins merge by AND; blocks with no
// predecessors other than entry start at the must-analysis top (armed) so
// unreachable post-return continuations cannot poison reachable joins.
func (s *funcSummarizer) deadlineFacts(cfg *CFG, facts *FuncFacts) {
	n := len(cfg.Blocks)
	in := make([]bool, n)
	out := make([]bool, n)
	for i := range out {
		in[i], out[i] = true, true
	}
	entry := cfg.Entry.Index

	transfer := func(bi int, record bool) bool {
		armed := in[bi]
		for _, node := range cfg.Blocks[bi].Nodes {
			armed = s.deadlineNode(node, armed, facts, record)
		}
		return armed
	}

	changed := true
	for changed {
		changed = false
		for _, blk := range cfg.Blocks {
			var armed bool
			if blk.Index == entry {
				armed = false
			} else {
				armed = true
				for _, p := range blk.Preds() {
					armed = armed && out[p.Index]
				}
			}
			in[blk.Index] = armed
			if next := transfer(blk.Index, false); next != out[blk.Index] {
				out[blk.Index] = next
				changed = true
			}
		}
	}
	for _, blk := range cfg.Blocks {
		transfer(blk.Index, true)
	}
}

// deadlineNode processes one CFG node under the current armed state and
// returns the state after it. Nested function literals carry their own facts
// (they execute at an unknown time); go-statement arguments evaluate inline
// but the spawned call itself runs concurrently, so it is neither a NetOp of
// this body nor a DeadlineCall edge.
func (s *funcSummarizer) deadlineNode(n ast.Node, armed bool, facts *FuncFacts, record bool) bool {
	isDefer := false
	if d, ok := n.(*ast.DeferStmt); ok {
		// A deferred Set*Deadline runs at function exit and guards nothing;
		// deferred calls are recorded with the state at the defer statement.
		isDefer = true
		n = d.Call
	}
	var walk func(ast.Node) bool
	walk = func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false

		case *ast.GoStmt:
			for _, arg := range nd.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false

		case *ast.CallExpr:
			for _, arg := range nd.Args {
				ast.Inspect(arg, walk)
			}
			if sel, ok := ast.Unparen(nd.Fun).(*ast.SelectorExpr); ok {
				ast.Inspect(sel.X, walk)
			}
			fn := s.staticCallee(nd)
			if fn == nil {
				return false
			}
			if isDeadlineSetter(fn) {
				if !isDefer {
					armed = true
					if record {
						facts.SetsDeadline = true
					}
				}
				return false
			}
			if record {
				if what, ok := netOps[fn.FullName()]; ok {
					facts.NetOps = append(facts.NetOps, NetOp{
						What: what + " (" + displayName(fn) + ")", Pos: nd.Pos(), Guarded: armed,
					})
				}
				facts.DeadlineCalls = append(facts.DeadlineCalls, DeadlineCall{
					Callee: fn, Pos: nd.Pos(), Guarded: armed,
				})
			}
			return false
		}
		return true
	}
	ast.Inspect(n, walk)
	return armed
}

// loopSpans collects the source spans of the body's for/range statements,
// excluding loops inside nested function literals (which carry their own
// facts).
func loopSpans(body *ast.BlockStmt) []Span {
	var spans []Span
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			spans = append(spans, Span{n.Pos(), n.End()})
		case *ast.RangeStmt:
			spans = append(spans, Span{n.Pos(), n.End()})
		}
		return true
	})
	return spans
}
