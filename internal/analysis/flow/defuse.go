package flow

import (
	"go/ast"
	"go/types"
)

// A definition is one assignment of a value to a tracked local variable.
type definition struct {
	id int
	v  *types.Var
	// rhs is the defining expression: the right-hand side of a 1:1
	// assignment, nil when the value's origin is untracked (parameters,
	// multi-value assignments, range bindings, writes from nested function
	// literals).
	rhs ast.Expr
	// weak definitions (assignments inside nested function literals, whose
	// execution time is unknown) add to the reaching set without killing
	// other definitions.
	weak bool
}

// DefUse holds the reaching-definition chains of one function body: for every
// identifier use of a function-local variable, the set of defining
// expressions that may reach it.
type DefUse struct {
	// reaching maps a use identifier to the rhs expressions of its reaching
	// definitions; nil entries mark definitions of unknown origin.
	reaching map[*ast.Ident][]ast.Expr
}

// Reaching returns the defining expressions that may reach the given use of a
// function-local variable, plus whether any reaching definition has an
// unknown origin (parameter, multi-value assignment, closure write). A nil,
// false return means the identifier is not a tracked local use (field,
// package-level variable, or not part of this function).
func (d *DefUse) Reaching(id *ast.Ident) (exprs []ast.Expr, unknown bool) {
	defs, ok := d.reaching[id]
	if !ok {
		return nil, false
	}
	for _, e := range defs {
		if e == nil {
			unknown = true
		} else {
			exprs = append(exprs, e)
		}
	}
	return exprs, unknown
}

// BuildDefUse computes reaching definitions over cfg for the function with
// the given type signature (fnType supplies parameters and named results,
// recv the method receiver; either may be nil). Tracked variables are the
// function's own locals, parameters, and receiver; package-level variables
// and struct fields are out of scope by design — aliasing through them is
// handled by the summary layer.
func BuildDefUse(cfg *CFG, info *types.Info, fnType *ast.FuncType, recv *ast.FieldList) *DefUse {
	b := &defUseBuilder{
		info:    info,
		varDefs: make(map[*types.Var][]int),
		reach:   make(map[*ast.Ident][]ast.Expr),
	}

	// Parameters, receiver, and named results are definitions of unknown
	// origin at function entry.
	var entryDefs []int
	declFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					entryDefs = append(entryDefs, b.newDef(v, nil, false))
				}
			}
		}
	}
	declFields(recv)
	if fnType != nil {
		declFields(fnType.Params)
		declFields(fnType.Results)
	}

	// Collect per-block definitions in order.
	blockDefs := make([][]blockDef, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		for ni, n := range blk.Nodes {
			b.collectDefs(blk.Index, ni, n, &blockDefs[blk.Index])
		}
	}

	// Gen/kill per block. gen is the surviving definitions emitted by the
	// block; kill is every other definition of a variable the block strongly
	// redefines.
	type flowSets struct {
		gen  map[int]bool
		kill map[int]bool
		in   map[int]bool
		out  map[int]bool
	}
	sets := make([]flowSets, len(cfg.Blocks))
	for i := range sets {
		sets[i] = flowSets{
			gen:  make(map[int]bool),
			kill: make(map[int]bool),
			in:   make(map[int]bool),
			out:  make(map[int]bool),
		}
		for _, bd := range blockDefs[i] {
			d := b.defs[bd.def]
			if !d.weak {
				// A strong def kills every other def of the same var,
				// including earlier gens in this block.
				for _, other := range b.varDefs[d.v] {
					if other != d.id {
						sets[i].kill[other] = true
						delete(sets[i].gen, other)
					}
				}
			}
			sets[i].gen[d.id] = true
			delete(sets[i].kill, d.id)
		}
	}

	// Entry block starts with the entry definitions.
	entryIn := make(map[int]bool)
	for _, id := range entryDefs {
		entryIn[id] = true
	}

	// Iterate to fixpoint: in[b] = ∪ out[preds]; out[b] = gen ∪ (in − kill).
	changed := true
	for changed {
		changed = false
		for _, blk := range cfg.Blocks {
			s := &sets[blk.Index]
			in := make(map[int]bool)
			if blk == cfg.Entry {
				for id := range entryIn {
					in[id] = true
				}
			}
			for _, p := range blk.Preds() {
				for id := range sets[p.Index].out {
					in[id] = true
				}
			}
			s.in = in
			out := make(map[int]bool, len(in))
			for id := range in {
				if !s.kill[id] {
					out[id] = true
				}
			}
			for id := range s.gen {
				out[id] = true
			}
			if len(out) != len(s.out) {
				changed = true
			} else {
				for id := range out {
					if !s.out[id] {
						changed = true
						break
					}
				}
			}
			s.out = out
		}
	}

	// Final pass: walk each block's nodes in order, recording the reaching
	// set at every tracked-variable use, then applying the node's defs.
	for _, blk := range cfg.Blocks {
		cur := make(map[int]bool, len(sets[blk.Index].in))
		for id := range sets[blk.Index].in {
			cur[id] = true
		}
		defIdx := 0
		for ni, n := range blk.Nodes {
			// Record uses before applying this node's definitions: in
			// `v = v.Clone()` the right-hand use of v sees the old defs.
			b.recordUses(n, cur)
			for defIdx < len(blockDefs[blk.Index]) && blockDefs[blk.Index][defIdx].node == ni {
				d := b.defs[blockDefs[blk.Index][defIdx].def]
				if !d.weak {
					for _, other := range b.varDefs[d.v] {
						delete(cur, other)
					}
				}
				cur[d.id] = true
				defIdx++
			}
		}
	}

	return &DefUse{reaching: b.reach}
}

type blockDef struct {
	node int // index into Block.Nodes
	def  int // definition id
}

type defUseBuilder struct {
	info    *types.Info
	defs    []definition
	varDefs map[*types.Var][]int
	reach   map[*ast.Ident][]ast.Expr
}

func (b *defUseBuilder) newDef(v *types.Var, rhs ast.Expr, weak bool) int {
	id := len(b.defs)
	b.defs = append(b.defs, definition{id: id, v: v, rhs: rhs, weak: weak})
	b.varDefs[v] = append(b.varDefs[v], id)
	return id
}

// localVar resolves id to the variable it defines or uses, nil when it is not
// a plain variable (fields and methods resolve through Selections, not here).
func (b *defUseBuilder) localVar(id *ast.Ident) *types.Var {
	if v, ok := b.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := b.info.Uses[id].(*types.Var); ok {
		// Struct fields also appear as *types.Var; exclude them.
		if v.IsField() {
			return nil
		}
		return v
	}
	return nil
}

// collectDefs appends the definitions produced by node n (the ni'th node of
// block bi) to out. Assignments inside nested function literals are collected
// as weak definitions; the literal body itself is otherwise opaque here (it
// has its own CFG and DefUse when analyzed).
func (b *defUseBuilder) collectDefs(bi, ni int, n ast.Node, out *[]blockDef) {
	add := func(v *types.Var, rhs ast.Expr, weak bool) {
		*out = append(*out, blockDef{node: ni, def: b.newDef(v, rhs, weak)})
	}
	var walk func(n ast.Node, weak bool)
	walk = func(n ast.Node, weak bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				walk(m.Body, true)
				return false
			case *ast.AssignStmt:
				oneToOne := len(m.Lhs) == len(m.Rhs)
				for i, lhs := range m.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue // v[i] = x and v.f = x are uses, not defs
					}
					v := b.localVar(id)
					if v == nil {
						continue
					}
					var rhs ast.Expr
					if oneToOne {
						rhs = m.Rhs[i]
					}
					add(v, rhs, weak)
				}
			case *ast.ValueSpec:
				oneToOne := len(m.Names) == len(m.Values)
				for i, name := range m.Names {
					v, ok := b.info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					var rhs ast.Expr
					if oneToOne {
						rhs = m.Values[i]
					}
					add(v, rhs, weak)
				}
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{m.Key, m.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if v := b.localVar(id); v != nil {
							add(v, nil, weak)
						}
					}
				}
				// The range body lives in its own CFG blocks; only the
				// operand and bindings belong to this node.
				return false
			case *ast.IncDecStmt:
				if id, ok := m.X.(*ast.Ident); ok {
					if v := b.localVar(id); v != nil {
						add(v, nil, weak)
					}
				}
			case *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt:
				// Nested control flow has its own CFG blocks; this node only
				// covers the init/cond parts that the CFG placed here.
				return false
			}
			return true
		})
	}
	walk(n, false)
}

// recordUses snapshots the current reaching set at every tracked-variable use
// inside node n.
func (b *defUseBuilder) recordUses(n ast.Node, cur map[int]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // nested control flow has its own blocks
		case *ast.RangeStmt:
			// Only the operand belongs to this node.
			b.recordUses(m.X, cur)
			return false
		case *ast.Ident:
			v := b.localVar(m)
			if v == nil {
				return true
			}
			if _, seen := b.reach[m]; seen {
				return true
			}
			var exprs []ast.Expr
			for id := range cur {
				d := b.defs[id]
				if d.v == v {
					exprs = append(exprs, d.rhs)
				}
			}
			if exprs == nil {
				// Tracked variable with no reaching defs (e.g. use before
				// any assignment on some path): mark unknown.
				exprs = []ast.Expr{nil}
			}
			b.reach[m] = exprs
		}
		return true
	})
}
