package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// World accumulates per-function summaries across packages and, once
// Finalize is called, exposes the module-wide facts the flow analyzers
// consult: transitive lock sets, the global lock-order graph and its cycles,
// may-block classification, goroutine join/cancel closure, and
// alias-returning functions.
//
// Usage: AddPackage for every loaded package (dependency order not required;
// facts are keyed by *types.Func identity, which loaders share across
// packages of one load), then Finalize exactly once, then query freely.
// AddPackage is safe for concurrent use; queries are safe for concurrent use
// after Finalize.
type World struct {
	mu        sync.Mutex
	finalized bool

	// byFunc indexes declared functions; byPkg lists every summarized
	// function (declarations and nested literals) per package, in position
	// order.
	byFunc map[*types.Func]*FuncFacts
	byPkg  map[string][]*FuncFacts

	// Finalize products.
	transLocks map[*types.Func][]LockKey
	mayBlock   map[*types.Func]bool
	joinTrans  map[*types.Func]JoinBits
	edges      map[lockEdge]*EdgeWitness
	cycles     []LockCycle
	reacquires []Reacquire
	// mayAllocF / floatAccF are the allocation-effect and float-accumulation
	// closures, keyed by summary (declared functions and literals alike) so
	// chains through closures resolve; see Finalize.
	mayAllocF map[*FuncFacts]bool
	floatAccF map[*FuncFacts]bool
	// deadlineCallers counts, per declared function, the in-module static
	// call sites and how many of those run with a deadline already armed;
	// exposesF is the undeadlined-exposure closure ctxdeadline consults
	// (see Finalize).
	deadlineCallers map[*types.Func]callerCounts
	exposesF        map[*FuncFacts]bool
	stats           WorldStats
}

// callerCounts tallies a function's in-module call sites for the deadline
// analysis: how many exist, and how many are deadline-guarded.
type callerCounts struct {
	total, guarded int
}

// WorldStats summarizes the finalized call graph — surfaced by
// cmd/corropt-lint -json so the CI artifact records how much of the module
// the transitive proofs actually cover.
type WorldStats struct {
	// Packages and Functions count the summarized packages and declared
	// functions; FuncLits counts nested function literals.
	Packages  int `json:"packages"`
	Functions int `json:"functions"`
	FuncLits  int `json:"func_lits"`
	// CallEdges counts the deduplicated static call edges between summaries.
	CallEdges int `json:"call_edges"`
	// HotpathRoots counts the `//lint:hotpath` annotated declarations the
	// hotalloc analyzer proves allocation-free.
	HotpathRoots int `json:"hotpath_roots"`
	// NetOps counts the blocking network operations the deadline
	// must-analysis classified (guarded or not) across all summaries.
	NetOps int `json:"net_ops"`
}

type lockEdge struct {
	from, to LockKey
}

// EdgeWitness is the first (lowest-position) site at which one lock was
// acquired — directly or through a call — while another was held.
type EdgeWitness struct {
	From, To LockKey
	Pos      token.Pos
	Pkg      string
	Fn       string
	// Via names the callee when the edge comes from a call made under the
	// lock rather than a literal acquisition.
	Via string
}

// LockCycle is one strongly-connected component of the lock-order graph with
// more than one lock: an inconsistent acquisition order that can deadlock.
type LockCycle struct {
	// Keys are the cycle's locks, sorted.
	Keys []LockKey
	// Edges are the witness edges internal to the cycle, sorted by position.
	Edges []*EdgeWitness
	// Pos/Pkg locate the report: the lowest-position witness edge.
	Pos token.Pos
	Pkg string
}

// Reacquire is an acquisition of a lock already held on some path —
// sync.Mutex is not reentrant, so this self-deadlocks (or, for RLock under a
// pending writer, can).
type Reacquire struct {
	Key LockKey
	Pos token.Pos
	Pkg string
	Fn  string
	Via string // callee name when the reacquisition happens through a call
}

// NewWorld returns an empty World.
func NewWorld() *World {
	return &World{
		byFunc: make(map[*types.Func]*FuncFacts),
		byPkg:  make(map[string][]*FuncFacts),
	}
}

// AddPackage summarizes every function of one type-checked package into the
// world. Safe for concurrent use before Finalize.
func (w *World) AddPackage(path string, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) {
	s := &funcSummarizer{pkgPath: path, fset: fset, info: info}
	var all []*FuncFacts
	for _, f := range files {
		all = append(all, s.summarizeFile(f)...)
	}
	// Flatten nested literals into the package list so their lock events and
	// spawns are visible; keep declaration facts indexed by *types.Func.
	var flat []*FuncFacts
	var flatten func(fs *FuncFacts)
	flatten = func(fs *FuncFacts) {
		flat = append(flat, fs)
		for _, lit := range fs.Lits {
			flatten(lit)
		}
		for _, sp := range fs.GoSpawns {
			if sp.Lit != nil {
				flatten(sp.Lit)
			}
		}
	}
	for _, fs := range all {
		flatten(fs)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].Pos < flat[j].Pos })

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.finalized {
		panic("flow: AddPackage after Finalize")
	}
	w.byPkg[path] = flat
	for _, fs := range flat {
		if fs.Fn != nil {
			w.byFunc[fs.Fn] = fs
		}
	}
}

// Finalize closes the summaries over the static call graph. Must be called
// exactly once, after every AddPackage.
func (w *World) Finalize() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.finalized {
		return
	}
	w.finalized = true

	// Deterministic function order: by position.
	var funcs []*FuncFacts
	var pkgs []string
	for p := range w.byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		funcs = append(funcs, w.byPkg[p]...)
	}

	// Transitive closure of direct lock sets, may-block, and join bits over
	// static call edges. Iterate to fixpoint (the call graph may have
	// cycles).
	w.transLocks = make(map[*types.Func][]LockKey)
	w.mayBlock = make(map[*types.Func]bool)
	w.joinTrans = make(map[*types.Func]JoinBits)
	transSet := make(map[*types.Func]map[LockKey]bool)
	for _, fs := range funcs {
		if fs.Fn == nil {
			continue
		}
		set := make(map[LockKey]bool, len(fs.DirectLocks))
		for _, k := range fs.DirectLocks {
			set[k] = true
		}
		transSet[fs.Fn] = set
		w.mayBlock[fs.Fn] = fs.DirectBlocking
		w.joinTrans[fs.Fn] = fs.Join
	}
	// Calls to functions outside the world (stdlib): blocking-ness comes
	// from the blockingCalls table (already folded into DirectBlocking);
	// lock sets are empty.
	changed := true
	for changed {
		changed = false
		for _, fs := range funcs {
			if fs.Fn == nil {
				continue
			}
			set := transSet[fs.Fn]
			for _, callee := range fs.Calls {
				if cs, ok := transSet[callee]; ok {
					for k := range cs {
						if !set[k] {
							set[k] = true
							changed = true
						}
					}
				}
				if w.mayBlock[callee] && !w.mayBlock[fs.Fn] {
					w.mayBlock[fs.Fn] = true
					changed = true
				}
				if bits, ok := w.joinTrans[callee]; ok {
					if merged := w.joinTrans[fs.Fn] | bits; merged != w.joinTrans[fs.Fn] {
						w.joinTrans[fs.Fn] = merged
						changed = true
					}
				}
			}
		}
	}
	for fn, set := range transSet {
		keys := make([]LockKey, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.transLocks[fn] = keys
	}

	// Build the global lock-order graph. An edge A→B means "B was acquired
	// (directly or via a call) while A was held", witnessed at the earliest
	// such site.
	w.edges = make(map[lockEdge]*EdgeWitness)
	addEdge := func(from, to LockKey, pos token.Pos, pkg, fn, via string) {
		if from == to {
			w.reacquires = append(w.reacquires, Reacquire{
				Key: from, Pos: pos, Pkg: pkg, Fn: fn, Via: via,
			})
			return
		}
		e := lockEdge{from, to}
		if cur, ok := w.edges[e]; !ok || pos < cur.Pos {
			w.edges[e] = &EdgeWitness{From: from, To: to, Pos: pos, Pkg: pkg, Fn: fn, Via: via}
		}
	}
	for _, fs := range funcs {
		for _, acq := range fs.Acquires {
			for _, held := range acq.Held {
				addEdge(held, acq.Key, acq.Pos, fs.Pkg, fs.Name, "")
			}
		}
		for _, hc := range fs.HeldCalls {
			callee, ok := w.byFunc[hc.Callee]
			if !ok {
				continue
			}
			for _, k := range w.transLocksOf(hc.Callee) {
				for _, held := range hc.Held {
					addEdge(held, k, hc.Pos, fs.Pkg, fs.Name, callee.Name)
				}
			}
		}
	}
	sort.Slice(w.reacquires, func(i, j int) bool { return w.reacquires[i].Pos < w.reacquires[j].Pos })

	w.cycles = w.findCycles()

	// Allocation-effect and float-accumulation closures, keyed by summary so
	// nested literals participate. A summary "may allocate" when its body has
	// an unsanctioned alloc site, makes an unsanctioned call to a callee
	// outside the module that is not provably allocation-free, or reaches
	// either transitively through in-module calls or nested literals. The
	// hotalloc walk uses the closure to prune allocation-free subtrees;
	// floatorder's closure mirrors the shape for order-sensitive float folds.
	// Spawned literals are excluded: their bodies run off the spawner's path
	// (the go statement itself is already an alloc site).
	w.mayAllocF = make(map[*FuncFacts]bool, len(funcs))
	w.floatAccF = make(map[*FuncFacts]bool, len(funcs))
	for _, fs := range funcs {
		direct := false
		for _, a := range fs.Allocs {
			if !a.Sanctioned {
				direct = true
				break
			}
		}
		for _, cs := range fs.CallSites {
			if direct {
				break
			}
			if cs.Sanctioned {
				continue
			}
			if _, in := w.byFunc[cs.Callee]; !in && !NonAllocCallee(cs.Callee) {
				direct = true
			}
		}
		w.mayAllocF[fs] = direct
		w.floatAccF[fs] = len(fs.FloatAccums) > 0
	}
	changed = true
	for changed {
		changed = false
		for _, fs := range funcs {
			may, acc := w.mayAllocF[fs], w.floatAccF[fs]
			for _, cs := range fs.CallSites {
				if cs.Sanctioned {
					continue
				}
				if cf, ok := w.byFunc[cs.Callee]; ok {
					may = may || w.mayAllocF[cf]
					acc = acc || w.floatAccF[cf]
				}
			}
			for _, lit := range fs.Lits {
				may = may || w.mayAllocF[lit]
				acc = acc || w.floatAccF[lit]
			}
			if may != w.mayAllocF[fs] {
				w.mayAllocF[fs] = may
				changed = true
			}
			if acc != w.floatAccF[fs] {
				w.floatAccF[fs] = acc
				changed = true
			}
		}
	}

	// Deadline-exposure closure for ctxdeadline (deadline.go). Caller-guard
	// counts first: per declared function, how many in-module static call
	// sites it has and how many of those run with a deadline already armed.
	w.deadlineCallers = make(map[*types.Func]callerCounts)
	for _, fs := range funcs {
		for _, dc := range fs.DeadlineCalls {
			c := w.deadlineCallers[dc.Callee]
			c.total++
			if dc.Guarded {
				c.guarded++
			}
			w.deadlineCallers[dc.Callee] = c
		}
	}
	// A summary "exposes" an undeadlined blocking op when its contract is
	// caller-guards — at least one in-module call site arms a deadline before
	// calling it, which is the evidence that deadlines are the caller's job —
	// yet some path through it still reaches a blocking network op with no
	// deadline armed and no cancellation signal of its own. Functions with no
	// guarded caller anywhere own their ops instead (ctxdeadline reports at
	// the op or call site inside them), so exposure never cascades past a
	// function that is itself reportable: one root cause, one finding.
	w.exposesF = make(map[*FuncFacts]bool, len(funcs))
	callerGuards := func(fs *FuncFacts) bool {
		return fs.Fn != nil && w.deadlineCallers[fs.Fn].guarded > 0
	}
	for _, fs := range funcs {
		if !callerGuards(fs) || fs.Join.Cancellable() {
			continue
		}
		for _, op := range fs.NetOps {
			if !op.Guarded {
				w.exposesF[fs] = true
				break
			}
		}
	}
	changed = true
	for changed {
		changed = false
		for _, fs := range funcs {
			if w.exposesF[fs] || !callerGuards(fs) || fs.Join.Cancellable() {
				continue
			}
			for _, dc := range fs.DeadlineCalls {
				if dc.Guarded {
					continue
				}
				if cf, ok := w.byFunc[dc.Callee]; ok && w.exposesF[cf] {
					w.exposesF[fs] = true
					changed = true
					break
				}
			}
		}
	}

	w.stats.Packages = len(pkgs)
	for _, fs := range funcs {
		if fs.Fn != nil {
			w.stats.Functions++
		} else {
			w.stats.FuncLits++
		}
		w.stats.CallEdges += len(fs.Calls)
		if fs.Hotpath && fs.Fn != nil {
			w.stats.HotpathRoots++
		}
		w.stats.NetOps += len(fs.NetOps)
	}
}

func (w *World) transLocksOf(fn *types.Func) []LockKey {
	if fn == nil {
		return nil
	}
	return w.transLocks[fn]
}

// findCycles runs Tarjan's SCC over the lock graph and converts every
// multi-node component into a LockCycle.
func (w *World) findCycles() []LockCycle {
	// Deterministic node and adjacency order.
	nodeSet := make(map[LockKey]bool)
	for e := range w.edges {
		nodeSet[e.from] = true
		nodeSet[e.to] = true
	}
	var nodes []LockKey
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	adj := make(map[LockKey][]LockKey)
	for e := range w.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, a := range adj {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}

	index := make(map[LockKey]int)
	low := make(map[LockKey]int)
	onStack := make(map[LockKey]bool)
	var stack []LockKey
	next := 0
	var comps [][]LockKey
	var strongconnect func(v LockKey)
	strongconnect = func(v LockKey) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, u := range adj[v] {
			if _, seen := index[u]; !seen {
				strongconnect(u)
				if low[u] < low[v] {
					low[v] = low[u]
				}
			} else if onStack[u] && index[u] < low[v] {
				low[v] = index[u]
			}
		}
		if low[v] == index[v] {
			var comp []LockKey
			for {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[u] = false
				comp = append(comp, u)
				if u == v {
					break
				}
			}
			if len(comp) > 1 {
				comps = append(comps, comp)
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	var cycles []LockCycle
	for _, comp := range comps {
		inComp := make(map[LockKey]bool, len(comp))
		for _, k := range comp {
			inComp[k] = true
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		var edges []*EdgeWitness
		for e, wit := range w.edges {
			if inComp[e.from] && inComp[e.to] {
				edges = append(edges, wit)
			}
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].Pos < edges[j].Pos })
		if len(edges) == 0 {
			continue
		}
		cycles = append(cycles, LockCycle{
			Keys:  comp,
			Edges: edges,
			Pos:   edges[0].Pos,
			Pkg:   edges[0].Pkg,
		})
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i].Pos < cycles[j].Pos })
	return cycles
}

// PackageFacts returns the summaries (declared functions and nested
// literals) of one package, sorted by position.
func (w *World) PackageFacts(path string) []*FuncFacts {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.byPkg[path]
}

// FuncFactsOf returns the summary of a declared function, nil when unknown.
func (w *World) FuncFactsOf(fn *types.Func) *FuncFacts {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.byFunc[fn]
}

// Cycles returns the lock-order cycles found at Finalize.
func (w *World) Cycles() []LockCycle { return w.cycles }

// Reacquires returns the same-lock reacquisition sites found at Finalize.
func (w *World) Reacquires() []Reacquire { return w.reacquires }

// MayBlock reports whether fn — directly or transitively through static
// calls inside the module — performs a known blocking I/O operation.
func (w *World) MayBlock(fn *types.Func) bool { return fn != nil && w.mayBlock[fn] }

// TransLocks returns the set of lock keys fn may acquire, directly or
// transitively, sorted.
func (w *World) TransLocks(fn *types.Func) []LockKey { return w.transLocksOf(fn) }

// JoinFacts returns the transitive join/cancel bits of a declared function;
// ok is false when the function is not summarized (outside the module).
func (w *World) JoinFacts(fn *types.Func) (JoinBits, bool) {
	if fn == nil {
		return 0, false
	}
	bits, ok := w.joinTrans[fn]
	return bits, ok
}

// LitJoinFacts computes the transitive join/cancel bits of a spawned
// function literal: its own bits plus the closure over its static callees.
func (w *World) LitJoinFacts(lit *FuncFacts) JoinBits {
	bits := lit.Join
	for _, callee := range lit.Calls {
		if b, ok := w.joinTrans[callee]; ok {
			bits |= b
		}
	}
	// One level through the literal's own nested literals that it calls
	// inline is approximated by including them directly.
	for _, nested := range lit.Lits {
		bits |= nested.Join
	}
	return bits
}

// DeadlineCallers returns the in-module static call-site counts of a
// declared function: how many sites exist and how many run with a deadline
// armed on all paths to the call. Computed at Finalize.
func (w *World) DeadlineCallers(fn *types.Func) (total, guarded int) {
	if fn == nil {
		return 0, 0
	}
	c := w.deadlineCallers[fn]
	return c.total, c.guarded
}

// ExposesUndeadlined reports whether a summary's deadline contract is
// caller-guards (at least one in-module call site arms a deadline first)
// while some path through it — directly or via further unguarded calls —
// still reaches a blocking network op with no deadline armed and no
// cancellation signal. Every remaining call site of such a function must arm
// a deadline before the call. Computed at Finalize.
func (w *World) ExposesUndeadlined(fs *FuncFacts) bool { return fs != nil && w.exposesF[fs] }

// MayAlloc reports whether a summary — declared function or literal — may
// allocate, directly or transitively through unsanctioned in-module calls
// and nested literals. Computed at Finalize.
func (w *World) MayAlloc(fs *FuncFacts) bool { return fs != nil && w.mayAllocF[fs] }

// MayFloatAccum reports whether a summary transitively contains an
// order-sensitive floating-point reduction. Computed at Finalize.
func (w *World) MayFloatAccum(fs *FuncFacts) bool { return fs != nil && w.floatAccF[fs] }

// Stats returns the finalized call-graph statistics.
func (w *World) Stats() WorldStats { return w.stats }

// HotpathRoots returns every `//lint:hotpath` annotated declaration across
// the world, sorted by package then position.
func (w *World) HotpathRoots() []*FuncFacts {
	var pkgs []string
	for p := range w.byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	var roots []*FuncFacts
	for _, p := range pkgs {
		for _, fs := range w.byPkg[p] {
			if fs.Hotpath && fs.Fn != nil {
				roots = append(roots, fs)
			}
		}
	}
	return roots
}

// ReturnsAlias reports whether fn returns a pointer, slice, or map rooted in
// its receiver's or parameters' internal state.
func (w *World) ReturnsAlias(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	fs, ok := w.byFunc[fn]
	return ok && fs.ReturnsAlias
}

func sameKeySet(a, b map[LockKey]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
