package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file collects the allocation-effect and float-accumulation facts that
// back the hotalloc and floatorder analyzers: which operations in a function
// body may hit the heap, which static calls could reach one transitively
// (closed over the call graph in World.Finalize, like the lock and may-block
// summaries), and which floating-point reductions fold their terms in a
// nondeterministic order.

// An AllocSite is one operation that may allocate on the heap: make/new,
// append growth, a map write, a composite literal that escapes to the heap,
// closure capture, interface boxing, string concatenation, a goroutine
// spawn, or a call the analysis cannot prove allocation-free (dynamic calls
// and non-allowlisted stdlib calls are recorded at classification time).
type AllocSite struct {
	// What describes the operation ("append may grow its backing array").
	What string
	Pos  token.Pos
	// Sanctioned is set when the site's line carries a
	// `//lint:allow hotalloc <reason>` annotation (on the line itself or the
	// line above, mirroring the analyzer-level allow machinery). Sanctioned
	// sites are invisible to the hot-path walk — this is how cross-package
	// escapes are sanctioned at the site rather than at every root that
	// reaches it. Reason-less annotations are still flagged by the standard
	// lintallow validation.
	Sanctioned bool
}

// A CallSite is one static call with its position — unlike FuncFacts.Calls
// it is not deduplicated, so the hot-path walk can report the exact line a
// chain passes through and honor per-line sanctions.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
	// Sanctioned: the call line carries `//lint:allow hotalloc <reason>`;
	// the callee's whole subtree is accepted as a sanctioned escape.
	Sanctioned bool
}

// A FloatAccum is one order-sensitive floating-point reduction: a +=/-=
// (or x = x + y) fold whose accumulator lives outside the loop and whose
// terms arrive in map-iteration or goroutine/channel-arrival order.
type FloatAccum struct {
	// What names the nondeterministic order source.
	What string
	Pos  token.Pos
}

// nonAllocCalls are standard-library functions and methods known not to
// allocate, matched by types.Func.FullName. Calls to stdlib callees outside
// this table (and the package allowlist in NonAllocCallee) are conservatively
// treated as potential allocations: the analysis sees no body for them, so
// "cannot prove allocation-free" is the sound default.
var nonAllocCalls = map[string]bool{
	"(time.Duration).Seconds":      true,
	"(time.Duration).Nanoseconds":  true,
	"(time.Duration).Microseconds": true,
	"(time.Duration).Milliseconds": true,
	"(time.Duration).Minutes":      true,
	"(time.Duration).Hours":        true,
	"(time.Time).Sub":              true,
	"(time.Time).Before":           true,
	"(time.Time).After":            true,
	"(time.Time).Equal":            true,
	"(time.Time).IsZero":           true,
	"(time.Time).Unix":             true,
	"(time.Time).UnixNano":         true,
	"(*sync.Mutex).Lock":           true,
	"(*sync.Mutex).Unlock":         true,
	"(*sync.Mutex).TryLock":        true,
	"(*sync.RWMutex).Lock":         true,
	"(*sync.RWMutex).Unlock":       true,
	"(*sync.RWMutex).RLock":        true,
	"(*sync.RWMutex).RUnlock":      true,
	"(*sync.WaitGroup).Add":        true,
	"(*sync.WaitGroup).Done":       true,
}

// NonAllocCallee reports whether a callee outside the analyzed module is
// known not to allocate: everything in math, math/bits, and sync/atomic,
// plus the nonAllocCalls table (duration arithmetic, mutex operations).
func NonAllocCallee(fn *types.Func) bool {
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "math", "math/bits", "sync/atomic":
			return true
		}
	}
	return nonAllocCalls[fn.FullName()]
}

// FuncDisplayName returns fn's name with its package path stripped, the
// form FuncFacts.Name uses ("(*PathCounter).Apply").
func FuncDisplayName(fn *types.Func) string { return displayName(fn) }

// hotallocAllowLines scans one file's comments for line-scoped
// `//lint:allow hotalloc` annotations and returns the sanctioned line set
// (the annotation's line and the line below, mirroring collectAllows in
// internal/analysis). The flow layer duplicates this one rule because alloc
// sites are sanctioned at summarize time — a root in another package never
// sees the annotation's package pass — while reason validation stays with
// the analyzer-level lintallow machinery.
func hotallocAllowLines(fset *token.FileSet, f *ast.File) map[int]bool {
	var lines map[int]bool
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			fields := strings.Fields(text)
			if len(fields) < 2 || fields[0] != "lint:allow" || fields[1] != "hotalloc" {
				continue
			}
			if lines == nil {
				lines = make(map[int]bool)
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// sanctioned reports whether pos falls on a hotalloc-sanctioned line of the
// file currently being summarized.
func (s *funcSummarizer) sanctioned(pos token.Pos) bool {
	return s.allowLines[s.fset.Position(pos).Line]
}

// hasHotpathDoc reports whether a declaration's doc comment carries the
// `//lint:hotpath` annotation that marks it as a root the hotalloc analyzer
// must prove transitively allocation-free.
func hasHotpathDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "lint:hotpath" || strings.HasPrefix(text, "lint:hotpath ") {
			return true
		}
	}
	return false
}

func (s *funcSummarizer) addAlloc(facts *FuncFacts, pos token.Pos, what string) {
	facts.Allocs = append(facts.Allocs, AllocSite{
		What: what, Pos: pos, Sanctioned: s.sanctioned(pos),
	})
}

// allocFacts walks one function body (excluding nested literals, which carry
// their own facts) recording every operation that may allocate and every
// static call site. Documented caveats, all on the conservative side for a
// zero-alloc proof except the last two:
//   - closures are flagged on capture even though non-escaping ones are
//     stack-allocated (the analysis has no escape information);
//   - value composite literals (T{...} not &-taken, no slice/map type) are
//     treated as stack constructions;
//   - taking the address of a local (&x) is not flagged — whether it
//     escapes depends on what the pointer reaches, which the per-line
//     sanction machinery is too coarse to express usefully.
func (s *funcSummarizer) allocFacts(body *ast.BlockStmt, facts *FuncFacts) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if free := capturesOuter(s.info, n); free != "" {
				s.addAlloc(facts, n.Pos(), "function literal captures "+free+" (closure allocates when it escapes; the analysis cannot prove it stays on the stack)")
			}
			return false // the literal's own body carries its own facts

		case *ast.GoStmt:
			s.addAlloc(facts, n.Pos(), "go statement allocates a goroutine")
			// Argument expressions evaluate on the spawning goroutine; the
			// spawned body runs off the hot path and is not descended into.
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false

		case *ast.CallExpr:
			return s.allocCall(n, facts, walk)

		case *ast.CompositeLit:
			switch s.typeUnder(n).(type) {
			case *types.Slice:
				s.addAlloc(facts, n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				s.addAlloc(facts, n.Pos(), "map literal allocates")
			}
			return true

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					s.addAlloc(facts, n.Pos(), "&composite literal allocates")
				}
			}
			return true

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(s.info.TypeOf(n.X)) {
				s.addAlloc(facts, n.Pos(), "string concatenation allocates")
			}
			return true

		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := s.typeUnder(idx.X).(*types.Map); isMap {
						s.addAlloc(facts, lhs.Pos(), "map write may allocate (bucket growth)")
					}
				}
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(s.info.TypeOf(n.Lhs[0])) {
				s.addAlloc(facts, n.Pos(), "string concatenation allocates")
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// allocCall classifies one call expression: builtins by name, conversions by
// shape, dynamic calls as unprovable, and static calls as CallSites for the
// transitive walk (with boxing checks on interface-typed parameters).
func (s *funcSummarizer) allocCall(n *ast.CallExpr, facts *FuncFacts, walk func(ast.Node) bool) bool {
	if tv, ok := s.info.Types[n.Fun]; ok && tv.IsType() {
		s.allocConversion(n, facts)
		return true
	}
	if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
		if b, ok := s.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				s.addAlloc(facts, n.Pos(), "append may grow its backing array")
			case "make":
				s.addAlloc(facts, n.Pos(), "make allocates")
			case "new":
				s.addAlloc(facts, n.Pos(), "new allocates")
				// len/cap/copy/delete/clear/min/max/real/imag/panic/recover
				// do not allocate (panic fires only on the failure path).
			}
			return true
		}
	}
	fn := s.staticCallee(n)
	if fn == nil {
		s.addAlloc(facts, n.Pos(), "call through a function value — cannot prove it allocation-free")
		return true
	}
	facts.CallSites = append(facts.CallSites, CallSite{
		Callee: fn, Pos: n.Pos(), Sanctioned: s.sanctioned(n.Pos()),
	})
	s.allocBoxedArgs(n, fn, facts)
	return true
}

// allocConversion flags the conversions that allocate: string <-> []byte /
// []rune, and conversion of a multi-word concrete value to an interface.
// Numeric and named-type conversions are free.
func (s *funcSummarizer) allocConversion(n *ast.CallExpr, facts *FuncFacts) {
	if len(n.Args) != 1 {
		return
	}
	dst := s.info.TypeOf(n)
	src := s.info.TypeOf(n.Args[0])
	if dst == nil || src == nil {
		return
	}
	switch {
	case boxes(src, dst):
		s.addAlloc(facts, n.Pos(), "interface conversion boxes a "+src.String()+" value")
	case isString(dst) && isByteOrRuneSlice(src), isByteOrRuneSlice(dst) && isString(src):
		s.addAlloc(facts, n.Pos(), "string/slice conversion copies and allocates")
	}
}

// allocBoxedArgs flags arguments that box into interface-typed parameters of
// a statically-known callee (the fmt.Sprintf("%d", n) shape). Spread calls
// (f(xs...)) pass an existing slice and do not box.
func (s *funcSummarizer) allocBoxedArgs(n *ast.CallExpr, fn *types.Func, facts *FuncFacts) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || n.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			sl, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				return
			}
			pt = sl.Elem()
		default:
			return
		}
		if at := s.info.TypeOf(arg); at != nil && boxes(at, pt) {
			s.addAlloc(facts, arg.Pos(), "argument boxes a "+at.String()+" value into an interface parameter")
		}
	}
}

// boxes reports whether assigning a value of type src to dst stores it in an
// interface and needs a heap allocation: dst is an interface, src is a
// concrete type that does not fit the interface's data word (pointers,
// maps, channels, funcs, and unsafe pointers fit; everything else is boxed).
func boxes(src, dst types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return false
	}
	if src == types.Typ[types.UntypedNil] {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// capturesOuter returns the name of a variable the literal references but
// does not declare (receiver, parameter, or local of an enclosing function),
// or "" when the literal is capture-free (and compiles to a static func
// value with no closure allocation).
func capturesOuter(info *types.Info, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level variable, not a capture
		}
		// Declared outside the literal's span → captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

// floatAccumFacts records the order-sensitive floating-point reductions in
// one body: += / -= (and x = x ± y) folds into an accumulator declared
// outside the loop, where the loop ranges over a map (randomized iteration
// order) or a channel (goroutine arrival order), plus direct accumulation of
// channel receives. Nested literals carry their own facts; a literal's body
// loses the enclosing loop context (documented caveat — the closure-callback
// iteration idiom over deterministic containers stays clean).
func (s *funcSummarizer) floatAccumFacts(body *ast.BlockStmt, facts *FuncFacts) {
	var walk func(n ast.Node, loop *ast.RangeStmt, what string) bool
	walk = func(n ast.Node, loop *ast.RangeStmt, what string) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false

		case *ast.RangeStmt:
			inner, innerWhat := loop, what
			switch s.typeUnder(n.X).(type) {
			case *types.Map:
				inner, innerWhat = n, "map values in iteration order"
			case *types.Chan:
				inner, innerWhat = n, "channel-received values in arrival order"
			}
			ast.Inspect(n.X, func(m ast.Node) bool { return walk(m, loop, what) })
			ast.Inspect(n.Body, func(m ast.Node) bool { return walk(m, inner, innerWhat) })
			return false

		case *ast.AssignStmt:
			s.floatAccumAssign(n, loop, what, facts)
			return true
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, nil, "") })
}

// floatAccumAssign classifies one assignment as an order-sensitive float
// fold, reporting it into facts.
func (s *funcSummarizer) floatAccumAssign(n *ast.AssignStmt, loop *ast.RangeStmt, what string, facts *FuncFacts) {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return
	}
	lhs := ast.Unparen(n.Lhs[0])
	if !isFloat(s.info.TypeOf(lhs)) {
		return
	}
	fold := false
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		fold = true
	case token.ASSIGN:
		// x = x + y / x = x - y with x an identifier.
		if id, ok := lhs.(*ast.Ident); ok {
			if bin, ok := ast.Unparen(n.Rhs[0]).(*ast.BinaryExpr); ok &&
				(bin.Op == token.ADD || bin.Op == token.SUB) {
				if xid, ok := ast.Unparen(bin.X).(*ast.Ident); ok &&
					s.info.Uses[xid] != nil && s.info.Uses[xid] == s.info.Uses[id] {
					fold = true
				}
			}
		}
	}
	if !fold {
		return
	}
	// Accumulation of direct channel receives is order-sensitive with or
	// without an enclosing loop.
	recv := false
	ast.Inspect(n.Rhs[0], func(m ast.Node) bool {
		if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			recv = true
		}
		return !recv
	})
	if recv {
		facts.FloatAccums = append(facts.FloatAccums, FloatAccum{
			What: "channel-received values in arrival order", Pos: n.Pos(),
		})
		return
	}
	if loop == nil || !s.declaredOutside(lhs, loop) {
		return
	}
	facts.FloatAccums = append(facts.FloatAccums, FloatAccum{What: what, Pos: n.Pos()})
}

// declaredOutside reports whether the accumulator expression's root variable
// is declared outside the loop's span — i.e. the fold survives the loop, so
// term order reaches the result. Fields and index targets count as outside.
func (s *funcSummarizer) declaredOutside(e ast.Expr, loop *ast.RangeStmt) bool {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return true // field or qualified var: outlives the loop body
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, ok := s.info.Uses[x].(*types.Var)
			if !ok {
				return false
			}
			return v.Pos() < loop.Pos() || v.Pos() > loop.End()
		default:
			return false
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func (s *funcSummarizer) typeUnder(e ast.Expr) types.Type {
	t := s.info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}
