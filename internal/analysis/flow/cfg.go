// Package flow is the intraprocedural dataflow engine underneath the
// repository's flow-sensitive analyzers (lockorder, gorolife, aliasescape,
// stalecache — see internal/analysis and DESIGN.md §8). It provides three
// layers, all built on the standard library's go/ast + go/types:
//
//  1. a control-flow graph over function bodies (NewCFG),
//  2. reaching-definitions / def-use chains over the CFG (BuildDefUse), and
//  3. a World of per-function summaries (locks acquired and the order they
//     nest, goroutines spawned, channels joined, receiver internals escaping
//     through return values) propagated across the module call graph
//     (AddPackage + Finalize).
//
// The engine is deliberately intraprocedural at the aliasing level and
// summary-based at the call-graph level: each function body is analyzed once,
// and cross-function facts (transitive lock sets, may-block, join/cancel
// signals) are closed over static call edges in Finalize. Dynamic dispatch is
// resolved to the interface method's identity, reflection and cgo are
// invisible, and function values passed as arguments are not tracked; the
// analyzers built on top treat absence of a fact as "unknown", erring toward
// reporting for liveness properties (a goroutine that cannot be proven joined
// is flagged) and toward silence for ordering properties (an unknown callee
// contributes no lock edges).
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of statements in a function's control-flow
// graph. Nodes holds the statements (and for/if conditions, range operands,
// switch tags) in execution order; Succs are the possible successor blocks.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0). Blocks are
	// numbered in construction order, which follows source order closely
	// enough for deterministic iteration.
	Index int
	// Nodes are the AST nodes evaluated in this block, in order.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to after the last node.
	Succs []*Block

	preds []*Block
}

// Preds returns the blocks with an edge into b.
func (b *Block) Preds() []*Block { return b.preds }

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Blocks lists every block, indexed by Block.Index. Unreachable blocks
	// (after return/branch statements) are retained so their statements are
	// still visible to syntactic walks, but carry no predecessor edges.
	Blocks []*Block
}

// cfgBuilder incrementally constructs a CFG. cur is the block new statements
// append to; loop/switch scopes push break and continue targets.
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// breakTargets / continueTargets are stacks of the innermost enclosing
	// targets; labeled entries carry the label name so labeled break/continue
	// resolve correctly.
	breakTargets    []labeledBlock
	continueTargets []labeledBlock

	// labels maps label names to the block a goto jumps to; gotos seen before
	// their label are resolved at the end.
	labels       map[string]*Block
	pendingGotos []pendingGoto

	// pendingLabel is the label naming the next loop/switch statement, so
	// `L: for ...` registers L as a break/continue target.
	pendingLabel string

	// fallthroughTarget is the next case block while building a switch
	// clause; fallthrough is only legal as the final statement of a clause,
	// so a single slot suffices (saved/restored around nested switches by
	// switchStmt resetting it per clause).
	fallthroughTarget *Block
}

type labeledBlock struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// NewCFG builds the control-flow graph of body. A nil body (declared-only
// functions) yields a CFG with a single empty block.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
	}
	b.cur = b.newBlock()
	b.cfg.Entry = b.cur
	if body != nil {
		b.stmtList(body.List)
	}
	for _, g := range b.pendingGotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.preds = append(to.preds, from)
}

// startBlock makes blk current, linking it from the previous current block
// when linkFromCur is set.
func (b *cfgBuilder) startBlock(blk *Block, linkFromCur bool) {
	if linkFromCur {
		b.edge(b.cur, blk)
	}
	b.cur = blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt translates one statement into the graph.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		cond := b.cur
		thenBlk := b.newBlock()
		b.edge(cond, thenBlk)
		join := b.newBlock()
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(cond, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		b.edge(head, body)
		join := b.newBlock()
		if s.Cond != nil {
			b.edge(head, join)
		}
		// continue → post (or head when absent); break → join.
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		contTarget := head
		if post != nil {
			contTarget = post
		}
		b.pushLoop(label, join, contTarget)
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, contTarget)
		b.popLoop()
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		head.Nodes = append(head.Nodes, s)
		b.edge(b.cur, head)
		body := b.newBlock()
		join := b.newBlock()
		b.edge(head, body)
		b.edge(head, join)
		b.pushLoop(label, join, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.popLoop()
		b.cur = join

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		entry := b.cur
		join := b.newBlock()
		b.pushBreak(label, join)
		for _, clause := range s.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(entry, blk)
			if comm.Comm != nil {
				blk.Nodes = append(blk.Nodes, comm.Comm)
			}
			b.cur = blk
			b.stmtList(comm.Body)
			b.edge(b.cur, join)
		}
		b.popBreak()
		b.cur = join

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	default:
		// Straight-line statements: assignments, declarations, expression
		// statements, go/defer/send/incdec/empty, and anything a future Go
		// version adds.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	var init ast.Stmt
	var tag ast.Node
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, clauses = s.Init, s.Body.List
		if s.Tag != nil {
			tag = s.Tag
		}
	case *ast.TypeSwitchStmt:
		init, clauses = s.Init, s.Body.List
		tag = s.Assign
	}
	if init != nil {
		b.cur.Nodes = append(b.cur.Nodes, init)
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	entry := b.cur
	join := b.newBlock()
	b.pushBreak(label, join)
	savedFallthrough := b.fallthroughTarget
	hasDefault := false
	var caseBlocks []*Block
	// First create all case blocks so fallthrough can target the next one.
	for range clauses {
		caseBlocks = append(caseBlocks, b.newBlock())
	}
	for i, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := caseBlocks[i]
		b.edge(entry, blk)
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.cur = blk
		// fallthrough inside this clause targets the next case block.
		b.fallthroughTarget = nil
		if i+1 < len(caseBlocks) {
			b.fallthroughTarget = caseBlocks[i+1]
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, join)
	}
	b.fallthroughTarget = savedFallthrough
	if !hasDefault {
		b.edge(entry, join)
	}
	b.popBreak()
	b.cur = join
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.cur.Nodes = append(b.cur.Nodes, s)
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(b.breakTargets, s.Label); t != nil {
			b.edge(b.cur, t)
		}
	case token.CONTINUE:
		if t := b.findTarget(b.continueTargets, s.Label); t != nil {
			b.edge(b.cur, t)
		}
	case token.GOTO:
		if s.Label != nil {
			if t, ok := b.labels[s.Label.Name]; ok {
				b.edge(b.cur, t)
			} else {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{b.cur, s.Label.Name})
			}
		}
	case token.FALLTHROUGH:
		if b.fallthroughTarget != nil {
			b.edge(b.cur, b.fallthroughTarget)
		}
	}
	b.cur = b.newBlock() // unreachable continuation
}

func (b *cfgBuilder) findTarget(stack []labeledBlock, label *ast.Ident) *Block {
	if len(stack) == 0 {
		return nil
	}
	if label == nil {
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, labeledBlock{label, brk})
	b.continueTargets = append(b.continueTargets, labeledBlock{label, cont})
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) pushBreak(label string, brk *Block) {
	b.breakTargets = append(b.breakTargets, labeledBlock{label, brk})
}

func (b *cfgBuilder) popBreak() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
}
