package analysis

import (
	"go/ast"
	"go/types"

	"corropt/internal/analysis/flow"
)

// AliasTarget configures aliasescape for one shared in-place-mutable type.
type AliasTarget struct {
	// Pkg and Type name the aliased type (e.g. corropt/internal/topology's
	// LinkSet).
	Pkg, Type string
	// Mutators are the methods that mutate the receiver in place. Calling
	// one on a value obtained from an alias-returning accessor mutates the
	// owner's internal state.
	Mutators []string
}

// linkSetMutators are topology.LinkSet's in-place mutation methods, shared
// with stalecache.
var linkSetMutators = []string{"Add", "Remove", "Clear", "Reset", "CopyFrom", "Union"}

// AliasEscapeConfig covers the repository's shared bitset. The optimizer's
// PathCounter is deliberately absent: its live disabled-set is mutated
// through Apply/Revert by documented contract (core/optimizer.go), and its
// workers Clone before touching anything.
var AliasEscapeConfig = []AliasTarget{
	{Pkg: "corropt/internal/topology", Type: "LinkSet", Mutators: linkSetMutators},
}

// NewAliasEscape returns the aliasescape analyzer for the given targets.
//
// aliasescape flags in-place mutation of values that alias another object's
// internal state: a local whose reaching definitions (per the flow def-use
// engine) include a call to an alias-returning accessor (one that returns a
// pointer/slice/map rooted in its receiver's fields, e.g.
// Network.DisabledLinks) must be Clone()d before any mutator runs on it.
// Clone breaks the chain naturally — its result is a fresh composite, so a
// `v = v.Clone()` redefinition removes the taint on every path it dominates.
// Index writes into slices and maps obtained from alias-returning accessors
// are flagged the same way. Locals of unknown origin (parameters, multi-value
// assignments) are not flagged: the analysis only reports what it can prove.
func NewAliasEscape(config []AliasTarget) *Analyzer {
	a := &Analyzer{
		Name: "aliasescape",
		Doc: "flags in-place mutation of values aliasing another object's " +
			"internal state (Clone before mutating) (DESIGN.md §8)",
	}
	a.Run = func(pass *Pass) error {
		runAliasEscape(pass, config)
		return nil
	}
	return a
}

// AliasEscape is the canonical aliasescape analyzer over AliasEscapeConfig.
var AliasEscape = NewAliasEscape(AliasEscapeConfig)

func runAliasEscape(pass *Pass, config []AliasTarget) {
	mutators := make(map[string]map[string]bool, len(config)) // "pkg.Type" -> methods
	for _, t := range config {
		key := t.Pkg + "." + t.Type
		mutators[key] = make(map[string]bool, len(t.Mutators))
		for _, m := range t.Mutators {
			mutators[key][m] = true
		}
	}
	w := pass.world()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cfg := flow.NewCFG(fd.Body)
			du := flow.BuildDefUse(cfg, pass.TypesInfo, fd.Type, fd.Recv)
			checkAliasMutations(pass, w, du, fd.Body, mutators)
		}
	}
}

// aliasSource chases id's reaching definitions through local copies and
// returns the alias-returning accessor that produced the value, nil when no
// reaching definition is a proven alias. Clone-style calls (not
// alias-returning) and composite literals terminate a chain cleanly.
func aliasSource(pass *Pass, w *flow.World, du *flow.DefUse, id *ast.Ident) *types.Func {
	seen := make(map[*ast.Ident]bool)
	var chase func(id *ast.Ident) *types.Func
	chase = func(id *ast.Ident) *types.Func {
		if seen[id] {
			return nil
		}
		seen[id] = true
		exprs, _ := du.Reaching(id)
		for _, e := range exprs {
			switch e := ast.Unparen(e).(type) {
			case *ast.CallExpr:
				if fn := flow.StaticCallee(pass.TypesInfo, e); fn != nil && w.ReturnsAlias(fn) {
					return fn
				}
			case *ast.Ident:
				// Local copy: v := w. The RHS ident is itself a recorded
				// use with its own reaching definitions.
				if fn := chase(e); fn != nil {
					return fn
				}
			}
		}
		return nil
	}
	return chase(id)
}

func checkAliasMutations(pass *Pass, w *flow.World, du *flow.DefUse, body *ast.BlockStmt, mutators map[string]map[string]bool) {
	report := func(pos ast.Node, id *ast.Ident, what string, src *types.Func) {
		name := src.Name()
		if recv := src.Type().(*types.Signature).Recv(); recv != nil {
			if named, ok := deref(recv.Type()).(*types.Named); ok {
				name = named.Obj().Name() + "." + name
			}
		}
		pass.Reportf(pos.Pos(),
			"%s mutates %q, which aliases internal state returned by %s: Clone it before mutating",
			what, id.Name, name)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			named, ok := deref(pass.TypesInfo.TypeOf(sel.X)).(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if !mutators[key][sel.Sel.Name] {
				return true
			}
			if src := aliasSource(pass, w, du, id); src != nil {
				report(n, id, sel.Sel.Name+"()", src)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(ix.X).(*ast.Ident)
				if !ok {
					continue
				}
				t := pass.TypesInfo.TypeOf(ix.X)
				if t == nil {
					continue
				}
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
				default:
					continue
				}
				if src := aliasSource(pass, w, du, id); src != nil {
					report(ix, id, "element write", src)
				}
			}
		}
		return true
	})
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
