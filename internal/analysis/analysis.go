// Package analysis is a self-contained static-analysis framework plus the
// repository's determinism & safety lint suite.
//
// The framework half (Analyzer, Pass, Diagnostic, Load) mirrors the shape of
// golang.org/x/tools/go/analysis so the analyzers could be ported to a
// multichecker verbatim, but is implemented entirely on the standard
// library's go/ast + go/types: packages are enumerated with `go list -export
// -deps -json`, module packages are type-checked from source, and external
// (standard-library) dependencies are imported from the build cache's
// compiled export data. No network access and no third-party modules are
// required, which keeps `make lint` runnable in the same hermetic
// environment as `go test`.
//
// The analyzer half enforces the determinism contract established in
// DESIGN.md §7 (byte-identical experiment reports for any worker count) and
// the core.Network mutation discipline of §6–§7: see NoDeterminism,
// MapRange, ErrWrap, and MutexHeld, and DESIGN.md §8 for the rationale of
// each.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppression annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes the analyzer on one package, reporting findings through
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path (e.g. "corropt/internal/sim").
	Path string

	diags *[]Diagnostic
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Message describes the finding.
	Message string
}

// Report records a diagnostic against the pass's package.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the canonical analyzer suite run by cmd/corropt-lint and
// `make lint`: nodeterminism, maprange, errwrap, and mutexheld, each over
// its repository-wide default configuration.
func All() []*Analyzer {
	return []*Analyzer{NoDeterminism, MapRange, ErrWrap, MutexHeld}
}

// Run executes the given analyzers over one loaded package and returns the
// surviving diagnostics: findings on lines carrying a valid
// `//lint:allow <analyzer> <reason>` annotation are suppressed, malformed
// annotations are themselves reported (see allow.go), and the result is
// sorted by position so output is deterministic regardless of analyzer
// traversal order.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Path:      pkg.Path,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	allows, bad := collectAllows(pkg, names)
	diags = filterAllowed(pkg.Fset, diags, allows)
	diags = append(diags, bad...)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
