// Package analysis is a self-contained static-analysis framework plus the
// repository's determinism & safety lint suite.
//
// The framework half (Analyzer, Pass, Diagnostic, Load) mirrors the shape of
// golang.org/x/tools/go/analysis so the analyzers could be ported to a
// multichecker verbatim, but is implemented entirely on the standard
// library's go/ast + go/types: packages are enumerated with `go list -export
// -deps -json`, module packages are type-checked from source, and external
// (standard-library) dependencies are imported from the build cache's
// compiled export data. No network access and no third-party modules are
// required, which keeps `make lint` runnable in the same hermetic
// environment as `go test`.
//
// The analyzer half enforces the determinism contract established in
// DESIGN.md §7 (byte-identical experiment reports for any worker count) and
// the core.Network mutation discipline of §6–§7: see NoDeterminism,
// MapRange, ErrWrap, and MutexHeld, and DESIGN.md §8 for the rationale of
// each. The flow-powered half (LockOrder, GoroLife, AliasEscape, StaleCache)
// layers a CFG + reaching-definitions engine and cross-package function
// summaries (internal/analysis/flow) on the same loader; see DESIGN.md §8
// "Flow analyses".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"corropt/internal/analysis/flow"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppression annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes the analyzer on one package, reporting findings through
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path (e.g. "corropt/internal/sim").
	Path string
	// Dir is the package's source directory; the escapes analyzer walks up
	// from it to the module root before invoking the compiler harness.
	Dir string
	// World holds the module-wide flow summaries (lock graph, goroutine
	// join facts, alias-returning functions) shared by every package's
	// passes. It may be nil for single-package runs; analyzers that need it
	// go through world(), which lazily builds a single-package world.
	World *flow.World

	diags *[]Diagnostic
}

// world returns the pass's flow world, building a transient single-package
// one when the caller did not supply a module-wide world (raw Pass
// construction in tests, or Run without BuildWorld). Single-package worlds
// see no cross-package call edges, so transitive facts degrade gracefully to
// intraprocedural ones.
func (p *Pass) world() *flow.World {
	if p.World == nil {
		w := flow.NewWorld()
		w.AddPackage(p.Path, p.Fset, p.Files, p.Pkg, p.TypesInfo)
		w.Finalize()
		p.World = w
	}
	return p.World
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Message describes the finding.
	Message string
}

// Report records a diagnostic against the pass's package.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the canonical analyzer suite run by cmd/corropt-lint and
// `make lint`: nodeterminism, maprange, errwrap, and mutexheld over their
// repository-wide default configurations, plus the flow-powered lockorder,
// gorolife, aliasescape, stalecache, and the call-graph proof analyzers
// hotalloc and floatorder.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism, MapRange, ErrWrap, MutexHeld,
		LockOrder, GoroLife, AliasEscape, StaleCache,
		HotAlloc, FloatOrder, CtxDeadline, ResLife,
		Escapes,
	}
}

// A Finding is one diagnostic plus its suppression state: Suppressed
// findings matched a valid `//lint:allow` annotation and do not fail the
// gate, but are still reported (cmd/corropt-lint -json exposes them so the
// exception inventory stays visible).
type Finding struct {
	Diagnostic
	Suppressed bool
}

// BuildWorld summarizes every package into one flow.World and finalizes it.
// The result is read-only and safe to share across concurrent RunW calls.
func BuildWorld(pkgs []*Package) *flow.World {
	w := flow.NewWorld()
	for _, pkg := range pkgs {
		w.AddPackage(pkg.Path, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	}
	w.Finalize()
	return w
}

// Run executes the given analyzers over one loaded package and returns the
// surviving diagnostics: findings on lines carrying a valid
// `//lint:allow <analyzer> <reason>` annotation are suppressed, malformed
// annotations are themselves reported (see allow.go), and the result is
// sorted by position so output is deterministic regardless of analyzer
// traversal order. Flow analyzers run against a transient single-package
// world; use RunW with BuildWorld for module-wide facts.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunW(pkg, analyzers, nil)
}

// RunW is Run with an explicit module-wide flow world (nil behaves like Run).
func RunW(pkg *Package, analyzers []*Analyzer, world *flow.World) ([]Diagnostic, error) {
	findings, err := RunDetailed(pkg, analyzers, world)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, f := range findings {
		if !f.Suppressed {
			diags = append(diags, f.Diagnostic)
		}
	}
	return diags, nil
}

// RunDetailed executes the given analyzers over one loaded package and
// returns every finding with its suppression state, sorted by position.
// world supplies module-wide flow facts to the flow analyzers; nil falls
// back to a transient single-package world.
func RunDetailed(pkg *Package, analyzers []*Analyzer, world *flow.World) ([]Finding, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Path:      pkg.Path,
			Dir:       pkg.Dir,
			World:     world,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	allows, bad := collectAllows(pkg, names)
	findings := make([]Finding, 0, len(diags)+len(bad))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		suppressed := allows[lineKey{file: pos.Filename, line: pos.Line}][d.Analyzer]
		findings = append(findings, Finding{Diagnostic: d, Suppressed: suppressed})
	}
	for _, d := range bad {
		findings = append(findings, Finding{Diagnostic: d})
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(findings[i].Pos), pkg.Fset.Position(findings[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}
