package analysis

import (
	"go/ast"
	"go/types"
)

// MapRangeConfig lists the packages where map iteration order can leak into
// ordered output. Experiment reports are compared byte-for-byte across
// worker counts (DESIGN.md §7.2), so any `range` over a map inside these
// packages must either follow the collect-then-sort idiom, be an
// order-independent reduction (a single commutative accumulation), or carry
// a lint:allow annotation explaining why ordering cannot escape.
var MapRangeConfig = map[string]bool{
	"corropt/internal/experiments": true,
	"corropt/internal/sim":         true,
	"corropt/internal/core":        true,
	"corropt/internal/trace":       true,
}

// NewMapRange returns the maprange analyzer scoped to the given packages.
func NewMapRange(config map[string]bool) *Analyzer {
	a := &Analyzer{
		Name: "maprange",
		Doc: "flags map iteration whose order can reach report output unless " +
			"results are evidently sorted afterwards (DESIGN.md §8)",
	}
	a.Run = func(pass *Pass) error {
		if !config[pass.Path] {
			return nil
		}
		runMapRange(pass)
		return nil
	}
	return a
}

// MapRange is the canonical maprange analyzer over MapRangeConfig.
var MapRange = NewMapRange(MapRangeConfig)

func runMapRange(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					continue
				}
				if mapRangeSafe(pass, rs, list[i+1:]) {
					continue
				}
				pass.Reportf(rs.Pos(), "map iteration order may reach ordered output: collect keys and sort, or annotate with lint:allow if ordering cannot escape")
			}
			return true
		})
	}
}

// mapRangeSafe reports whether the map-range statement is one of the two
// evidently order-independent shapes:
//
//  1. collect-then-sort: the body only appends to / indexes into collector
//     variables, and every appended-to slice is passed to a sort.* or
//     slices.Sort* call in a later statement of the same block;
//  2. commutative reduction: every body statement is an x += e, x -= e,
//     x++, x--, or map/set insertion — accumulations whose result is
//     independent of visit order.
func mapRangeSafe(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	collectors := make(map[types.Object]bool)
	safeBody := true
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if !assignIsCollectOrReduce(pass, s, collectors) {
				safeBody = false
			}
		case *ast.IncDecStmt:
			// x++ / x-- are commutative.
		case *ast.IfStmt:
			// A guarded collect/reduce (if cond { ... }) is safe when its
			// body is; conservative: require the same shapes inside.
			if s.Else != nil || !stmtsAreCollectOrReduce(pass, s.Body.List, collectors) {
				safeBody = false
			}
		default:
			safeBody = false
		}
		if !safeBody {
			return false
		}
	}
	// Pure reduction (no collectors) is order-independent as-is.
	if len(collectors) == 0 {
		return true
	}
	// Collectors must all be sorted later in the same block.
	sorted := make(map[types.Object]bool)
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSortCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil && collectors[obj] {
							sorted[obj] = true
						}
					}
					return true
				})
			}
			return true
		})
	}
	for obj := range collectors {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// stmtsAreCollectOrReduce reports whether every statement is a collect or
// commutative-reduce shape, recording collector objects.
func stmtsAreCollectOrReduce(pass *Pass, stmts []ast.Stmt, collectors map[types.Object]bool) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if !assignIsCollectOrReduce(pass, s, collectors) {
				return false
			}
		case *ast.IncDecStmt:
		default:
			return false
		}
	}
	return true
}

// assignIsCollectOrReduce classifies one assignment inside a map-range body.
// Collect shapes record the collector object.
func assignIsCollectOrReduce(pass *Pass, s *ast.AssignStmt, collectors map[types.Object]bool) bool {
	// x += e / x -= e / x |= e / x &= e on numeric operands: commutative
	// accumulations. String += is explicitly NOT exempt — concatenation in
	// map order is exactly the bug this analyzer exists to catch. (Float +=
	// is order-sensitive in the last bits; this analyzer accepts numeric +=
	// wholesale and the floatorder analyzer owns the float gap: it flags
	// exactly the surviving-accumulator float folds over map iteration that
	// this acceptance would otherwise let through — DESIGN.md §7.5, §8.)
	switch s.Tok.String() {
	case "+=", "-=", "|=", "&=", "^=":
		if len(s.Lhs) != 1 {
			return false
		}
		t := pass.TypesInfo.TypeOf(s.Lhs[0])
		if t == nil {
			return false
		}
		basic, ok := t.Underlying().(*types.Basic)
		return ok && basic.Info()&types.IsNumeric != 0
	}
	if s.Tok.String() != "=" && s.Tok.String() != ":=" {
		return false
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	// m[k] = v: insertion into another map (order-free).
	if idx, ok := s.Lhs[0].(*ast.IndexExpr); ok {
		if t := pass.TypesInfo.TypeOf(idx.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return true
			}
		}
		return false
	}
	// v = append(v, ...): collect into v, to be sorted later.
	lhsIdent, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fnIdent, ok := call.Fun.(*ast.Ident)
	if !ok || fnIdent.Name != "append" {
		return false
	}
	if _, ok := pass.TypesInfo.Uses[fnIdent].(*types.Builtin); !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(lhsIdent)
	if obj == nil {
		return false
	}
	collectors[obj] = true
	return true
}

// isSortCall reports whether call invokes a function from package sort or
// slices (sort.Slice, sort.Strings, slices.Sort, slices.SortFunc, ...).
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}
