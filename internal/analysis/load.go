package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, parsed, and type-checked module package ready for
// analysis.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset positions all files of this load.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's resolution maps.
	Info *types.Info
	// Imports are the package's direct imports as listed by the go tool
	// (all of them, module-internal and standard-library alike). The lint
	// driver's -diff mode builds its reverse-dependency closure from these.
	Imports []string
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
	Standard   bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, e.g.
// "./..."), type-checks every package belonging to the enclosing module from
// source, and returns them in dependency order. Dependencies outside the
// module — in this repository, only the standard library — are imported from
// compiled export data located via `go list -export`, so loading works
// offline and never re-type-checks the standard library from source.
//
// Test files are excluded: the determinism contract binds shipping code, and
// tests legitimately use wall clocks and ad-hoc randomness.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.String())
	}

	// -deps emits dependencies before dependents, so a single in-order walk
	// sees every import already resolved.
	var listed []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		listed = append(listed, &p)
	}

	fset := token.NewFileSet()
	exports := make(map[string]string)         // import path -> export data file
	checked := make(map[string]*types.Package) // module packages checked from source
	imp := newChainImporter(fset, exports, checked)

	var out []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Module == nil || lp.Standard {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
			continue
		}
		pkg, err := typeCheck(fset, lp, imp)
		if err != nil {
			return nil, err
		}
		checked[lp.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// typeCheck parses and type-checks one module package.
func typeCheck(fset *token.FileSet, lp *listedPackage, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:    lp.ImportPath,
		Dir:     lp.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Imports: lp.Imports,
	}, nil
}

// NewInfo returns a types.Info with every resolution map the analyzers
// consume allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ExportData locates compiled export data for the named packages and their
// transitive dependencies via `go list -export` (run in dir, which must lie
// inside a module so the pinned toolchain applies). It returns import path ->
// export data file. Packages are compiled on demand into the build cache, so
// this works offline.
func ExportData(dir string, pkgs ...string) (map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list -export: %w\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewImporter returns a types importer that resolves packages present in
// checked from that map and everything else from the given export data.
// Used by the analysistest harness to type-check golden packages that mix
// testdata-local imports with standard-library ones.
func NewImporter(fset *token.FileSet, exports map[string]string, checked map[string]*types.Package) types.ImporterFrom {
	return newChainImporter(fset, exports, checked)
}

// chainImporter resolves module packages from the source-checked map and
// everything else from compiled export data via the gc importer.
type chainImporter struct {
	checked map[string]*types.Package
	gc      types.ImporterFrom
}

func newChainImporter(fset *token.FileSet, exports map[string]string, checked map[string]*types.Package) *chainImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	gc, ok := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	if !ok {
		panic("analysis: gc importer does not implement ImporterFrom")
	}
	return &chainImporter{checked: checked, gc: gc}
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := c.checked[path]; ok {
		return pkg, nil
	}
	return c.gc.ImportFrom(path, srcDir, mode)
}
