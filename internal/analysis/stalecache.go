package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"corropt/internal/analysis/flow"
)

// NewStaleCache returns the stalecache analyzer for the given guarded
// structs (the same configuration type mutexheld uses).
//
// stalecache closes mutexheld's aliasing hole with dataflow: mutexheld
// catches `n.contrib[l] = x` written outside the sanctioned mutation
// methods, but not `d := n.contrib; d[l] = x` — the write lands in the same
// backing array and desynchronizes the incremental caches (penaltySum stops
// matching contrib, the LoadState-class staleness bug). Using the flow
// def-use engine, stalecache finds locals whose reaching definitions alias a
// guarded reference-typed field (slice, map, or pointer — value copies are
// harmless) and flags element writes, pointer-target writes, and LinkSet
// mutator calls through them anywhere outside the sanctioned writers.
// Aliases of unknown origin (parameters, multi-value assignments) are not
// flagged; only proven field aliases are.
func NewStaleCache(config []GuardedStruct) *Analyzer {
	a := &Analyzer{
		Name: "stalecache",
		Doc: "flags writes that reach guarded struct state through local " +
			"aliases outside the sanctioned mutation methods (DESIGN.md §8)",
	}
	a.Run = func(pass *Pass) error {
		for i := range config {
			runStaleCache(pass, &config[i])
		}
		return nil
	}
	return a
}

// StaleCache is the canonical stalecache analyzer over the same guarded
// structs as mutexheld (MutexHeldConfig).
var StaleCache = NewStaleCache(MutexHeldConfig)

func runStaleCache(pass *Pass, g *GuardedStruct) {
	fields := make(map[string]bool, len(g.Fields))
	for _, f := range g.Fields {
		fields[f] = true
	}
	writers := make(map[string]bool, len(g.Writers))
	for _, w := range g.Writers {
		writers[w] = true
	}
	setMutators := make(map[string]bool, len(linkSetMutators))
	for _, m := range linkSetMutators {
		setMutators[m] = true
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if writers[fd.Name.Name] && writerBelongsTo(pass, fd, g) {
				continue
			}
			cfg := flow.NewCFG(fd.Body)
			du := flow.BuildDefUse(cfg, pass.TypesInfo, fd.Type, fd.Recv)
			checkStaleWrites(pass, g, fields, setMutators, du, fd)
		}
	}
}

// guardedAliasField chases id's reaching definitions (through local copies)
// for a selector of a guarded reference-typed field; it returns the field
// name, or "" when no reaching definition provably aliases guarded state.
func guardedAliasField(pass *Pass, g *GuardedStruct, fields map[string]bool, du *flow.DefUse, id *ast.Ident) string {
	seen := make(map[*ast.Ident]bool)
	var chase func(id *ast.Ident) string
	chase = func(id *ast.Ident) string {
		if seen[id] {
			return ""
		}
		seen[id] = true
		exprs, _ := du.Reaching(id)
		for _, e := range exprs {
			e = ast.Unparen(e)
			if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
				e = ast.Unparen(u.X)
			}
			switch e := e.(type) {
			case *ast.SelectorExpr:
				if name := guardedRefField(pass, g, fields, e); name != "" {
					return name
				}
			case *ast.Ident:
				if name := chase(e); name != "" {
					return name
				}
			}
		}
		return ""
	}
	return chase(id)
}

// guardedRefField reports whether sel selects a guarded field of reference
// type (slice, map, or pointer — the types whose local copies still alias
// the struct's backing storage) on the guarded struct.
func guardedRefField(pass *Pass, g *GuardedStruct, fields map[string]bool, sel *ast.SelectorExpr) string {
	selObj := pass.TypesInfo.Selections[sel]
	if selObj == nil || selObj.Kind() != types.FieldVal {
		return ""
	}
	field, ok := selObj.Obj().(*types.Var)
	if !ok || field.Pkg() == nil || field.Pkg().Path() != g.Pkg || !fields[field.Name()] {
		return ""
	}
	named, ok := deref(selObj.Recv()).(*types.Named)
	if !ok || named.Obj().Name() != g.Type {
		return ""
	}
	switch field.Type().Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return field.Name()
	}
	return ""
}

func checkStaleWrites(pass *Pass, g *GuardedStruct, fields, setMutators map[string]bool, du *flow.DefUse, fd *ast.FuncDecl) {
	report := func(n ast.Node, id *ast.Ident, field, what string) {
		pass.Reportf(n.Pos(),
			"%s through %q reaches guarded field %s.%s outside its sanctioned mutation methods (%s): the incremental caches go stale",
			what, id.Name, g.Type, field, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				lhs = ast.Unparen(lhs)
				switch l := lhs.(type) {
				case *ast.IndexExpr:
					if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
						if field := guardedAliasField(pass, g, fields, du, id); field != "" {
							report(l, id, field, "element write")
						}
					}
				case *ast.StarExpr:
					if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
						if field := guardedAliasField(pass, g, fields, du, id); field != "" {
							report(l, id, field, "pointer-target write")
						}
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !setMutators[sel.Sel.Name] {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			named, ok := deref(pass.TypesInfo.TypeOf(sel.X)).(*types.Named)
			if !ok || named.Obj().Name() != "LinkSet" {
				return true
			}
			if field := guardedAliasField(pass, g, fields, du, id); field != "" {
				report(n, id, field, sel.Sel.Name+"()")
			}
		}
		return true
	})
}
