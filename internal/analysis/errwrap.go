package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrapConfig scopes the errwrap analyzer.
type ErrWrapConfig struct {
	// WrapPrefixes: packages whose import path starts with one of these
	// prefixes get the fmt.Errorf %w check. Empty string matches all.
	WrapPrefixes []string
	// DroppedPrefixes: packages whose import path starts with one of these
	// prefixes additionally get the dropped-error-return check.
	DroppedPrefixes []string
}

// DefaultErrWrapConfig checks %w wrapping module-wide and dropped error
// returns inside internal/ (library code must propagate failures; cmds and
// examples surface them to the user at top level and are vetted by review).
var DefaultErrWrapConfig = ErrWrapConfig{
	WrapPrefixes:    []string{"corropt"},
	DroppedPrefixes: []string{"corropt/internal/"},
}

// NewErrWrap returns the errwrap analyzer for the given scope.
func NewErrWrap(config ErrWrapConfig) *Analyzer {
	a := &Analyzer{
		Name: "errwrap",
		Doc: "requires %w when fmt.Errorf wraps an error and flags silently " +
			"dropped error returns in library code (DESIGN.md §8)",
	}
	a.Run = func(pass *Pass) error {
		if hasPrefix(pass.Path, config.WrapPrefixes) {
			runErrWrapf(pass)
		}
		if hasPrefix(pass.Path, config.DroppedPrefixes) {
			runDroppedErrors(pass)
		}
		return nil
	}
	return a
}

// ErrWrap is the canonical errwrap analyzer over DefaultErrWrapConfig.
var ErrWrap = NewErrWrap(DefaultErrWrapConfig)

func hasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// runErrWrapf flags fmt.Errorf calls that format an error argument with a
// non-wrapping verb: errors.Is / errors.As against the returned error only
// work when the cause is wrapped with %w.
func runErrWrapf(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // non-constant format: out of scope
			}
			format := constant.StringVal(tv.Value)
			if strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				at := pass.TypesInfo.TypeOf(arg)
				if at == nil {
					continue
				}
				if types.Implements(at, errType.Underlying().(*types.Interface)) ||
					types.Identical(at, errType) {
					pass.Reportf(arg.Pos(), "error formatted with a non-wrapping verb: use %%w so callers can errors.Is/errors.As the cause (or lint:allow to deliberately sever it)")
					return true // one finding per call is enough
				}
			}
			return true
		})
	}
}

// droppedExemptCalls never meaningfully fail: fmt printing (errors only on a
// broken writer, and the writers used here are stderr/stdout/builders) and
// the in-memory writers whose Write methods are documented to always succeed.
func droppedErrorExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Calls to local identifiers (closures, builtins) are exempt only
		// when they are builtins; local error-returning closures must be
		// checked.
		if id, ok := call.Fun.(*ast.Ident); ok {
			_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
			return builtin
		}
		return false
	}
	// Writes into hashes never fail (hash.Hash documents Write as never
	// returning an error); exempt by the receiver's static type.
	if t := pass.TypesInfo.TypeOf(sel.X); t != nil {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			pp := named.Obj().Pkg().Path()
			if pp == "hash" || strings.HasPrefix(pp, "hash/") {
				return true
			}
		}
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// runDroppedErrors flags statement-position calls whose error result is
// silently discarded. An explicit `_ =` assignment is accepted as a
// deliberate drop; defer/go statements follow established idiom and are
// exempt.
func runDroppedErrors(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	returnsError := func(call *ast.CallExpr) bool {
		t := pass.TypesInfo.TypeOf(call)
		if t == nil {
			return false
		}
		switch t := t.(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if types.Identical(t.At(i).Type(), errType) {
					return true
				}
			}
			return false
		default:
			return types.Identical(t, errType)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(call) || droppedErrorExempt(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error return silently discarded: handle it, assign to _, or lint:allow with a reason")
			return true
		})
	}
}
