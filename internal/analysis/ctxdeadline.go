package analysis

// ctxdeadline: every blocking network operation in the deployment packages
// must be dominated on all CFG paths by a SetDeadline / SetReadDeadline /
// SetWriteDeadline, or the enclosing function must carry a reachable
// cancellation signal (a stop-channel receive or ctx.Done). This is the
// liveness half of the paper's mitigation loop: a controller that wedges on
// an undeadlined read stops voting links out, which is exactly the silent
// agent failure mode Arzani et al. attribute production mitigation outages
// to.
//
// The analyzer is interprocedural over the flow world. The deadline
// must-analysis (flow/deadline.go) classifies every blocking network op and
// every static call site as deadline-guarded or not; World.Finalize infers
// each function's contract from its call sites: a function some caller
// guards (arms a deadline before calling) is a *caller-guards* primitive —
// its own unguarded ops are fine, but every remaining unguarded call site is
// a finding (reported at the call, with the chain down to the op). A
// function no caller guards owns its ops — unguarded ops are reported at
// the op site inside it. Exposure never propagates past an op-owning
// function, so one root cause yields one finding.
//
// Functions with a direct cancellation signal — a channel receive / select
// or a ctx.Done reference in the body itself — are exempt: they can be
// stopped without a deadline. The bits are deliberately *not* taken from the
// transitive join closure: reaching a cancellable helper deep in the call
// graph does not make the blocking loop up top stoppable.

import (
	"go/token"
	"strings"

	"corropt/internal/analysis/flow"
)

// DeploymentPackages are the packages whose code runs against live sockets
// in production — the ctxdeadline and reslife gate. Everything else
// (simulator, experiments, analysis itself) never blocks on a peer.
var DeploymentPackages = map[string]bool{
	"corropt/internal/ctlplane": true,
	"corropt/internal/snmplite": true,
	"corropt/cmd/corroptd":      true,
	"corropt/cmd/corropt-agent": true,
}

// CtxDeadline is the canonical instance gated on DeploymentPackages.
var CtxDeadline = NewCtxDeadline(DeploymentPackages)

// NewCtxDeadline returns a ctxdeadline analyzer gated on the given package
// set; the analysistest negative controls instantiate it over temp modules.
func NewCtxDeadline(pkgs map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "ctxdeadline",
		Doc:  "blocking network ops in deployment packages must be deadline-dominated or cancellable",
		Run: func(pass *Pass) error {
			if !pkgs[pass.Path] {
				return nil
			}
			w := pass.World
			if w == nil {
				return nil
			}
			for _, fs := range w.PackageFacts(pass.Path) {
				if fs.Join.Cancellable() {
					continue
				}
				// Caller-guards primitives (some caller arms a deadline
				// before calling) get their findings at their call sites,
				// not at the ops — or unguarded calls — inside them: their
				// guarding callers took responsibility for the whole
				// subtree, so only functions no caller guards report.
				_, guarded := w.DeadlineCallers(fs.Fn)
				if guarded > 0 {
					continue
				}
				for _, op := range fs.NetOps {
					if !op.Guarded {
						pass.Reportf(op.Pos,
							"%s in %s has no deadline: no Set*Deadline dominates it and %s has no cancellation signal (stop channel or ctx.Done)",
							op.What, fs.Name, fs.Name)
					}
				}
				for _, dc := range fs.DeadlineCalls {
					if dc.Guarded {
						continue
					}
					cf := w.FuncFactsOf(dc.Callee)
					if !w.ExposesUndeadlined(cf) {
						continue
					}
					path, what, opPos := deadlineChain(w, cf)
					pass.Reportf(dc.Pos,
						"call to %s with no deadline armed reaches undeadlined %s at %s (chain: %s)",
						cf.Name, what, shortPos(pass.Fset, opPos), strings.Join(path, " -> "))
				}
			}
			return nil
		},
	}
}

// deadlineChain walks breadth-first from an exposing callee through
// unguarded call edges to the nearest unguarded blocking network op,
// returning the hop names, the op description, and its position. Exposure is
// a finalized fixpoint, so a witness op always exists; the fallback covers
// only summaries mutated after Finalize (which the driver never does).
func deadlineChain(w *flow.World, start *flow.FuncFacts) ([]string, string, token.Pos) {
	type entry struct {
		fs   *flow.FuncFacts
		path []string
	}
	visited := map[*flow.FuncFacts]bool{start: true}
	queue := []entry{{start, []string{start.Name}}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		for _, op := range e.fs.NetOps {
			if !op.Guarded {
				return e.path, op.What, op.Pos
			}
		}
		for _, dc := range e.fs.DeadlineCalls {
			if dc.Guarded {
				continue
			}
			cf := w.FuncFactsOf(dc.Callee)
			if cf == nil || visited[cf] || !w.ExposesUndeadlined(cf) {
				continue
			}
			visited[cf] = true
			path := make([]string, len(e.path), len(e.path)+1)
			copy(path, e.path)
			queue = append(queue, entry{cf, append(path, cf.Name)})
		}
	}
	return []string{start.Name}, "a blocking network op", start.Pos
}
