package analysis

// reslife: resources acquired in the deployment packages — net.Conn,
// net.PacketConn, net.Listener, *time.Ticker, *time.Timer, *os.File, and
// anything (netchaos wrappers included) returned behind those types — must
// reach a Close/Stop on every CFG path from the acquisition, or leave the
// function's custody first. A controller that leaks one conn or ticker per
// reconnect dies slowly at production scale; this is the lifecycle half of
// the liveness gate next to ctxdeadline.
//
// The analysis is intraprocedural per function body (declarations and
// literals alike): each acquisition — an assignment whose single
// call-expression RHS either matches the resource-constructor table
// (time.NewTicker, os.Open, net.Dial, ...) or returns a resource type
// through any callee, dynamic dialer fields included — starts an obligation
// on the assigned local. The obligation is discharged by v.Close()/v.Stop()
// (deferred or not) and by every ownership-transfer event: v passed as a
// call argument, returned, sent on a channel, stored into a field, map, or
// composite literal (struct-field adoption — the constructor-return pattern
// that must not false-positive), aliased with &v, or captured by a nested
// function literal. A path that reaches a return or the function end with
// the obligation outstanding is a leak, reported at the acquisition with the
// earliest witnessing exit. Error-result guards are path-sensitive: on the
// `err != nil` branch of the acquisition's error partner (and the nil branch
// of the resource itself) the obligation is vacuously discharged, so
// `if err != nil { return err }` straight after a dial never false-positives.

import (
	"go/ast"
	"go/token"
	"go/types"

	"corropt/internal/analysis/flow"
)

// ResLife is the canonical instance gated on DeploymentPackages.
var ResLife = NewResLife(DeploymentPackages)

// resourceType classifies t as a tracked resource, returning its display
// name and release verb. Matching is by result type, not by constructor
// name, so the stdlib constructors (time.NewTicker, os.Open, net.Dial,
// net.Listen, ...), dynamic dialers (cfg.Dial function fields), and netchaos
// wrappers returning net.Conn / net.PacketConn / net.Listener are all
// tracked by the same rule.
func resourceType(t types.Type) (desc, verb string, ok bool) {
	named := namedOfType(t)
	if named == nil {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	switch obj.Pkg().Path() {
	case "net":
		switch obj.Name() {
		case "Conn", "PacketConn", "Listener":
			return "net." + obj.Name(), "Close", true
		}
	case "os":
		if obj.Name() == "File" {
			return "os.File", "Close", true
		}
	case "time":
		switch obj.Name() {
		case "Ticker", "Timer":
			return "time." + obj.Name(), "Stop", true
		}
	}
	return "", "", false
}

func namedOfType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// An acquisition is one tracked resource obligation: the assignment that
// creates it, the obligated local, and its error-result partner (nil when
// the constructor returns no error).
type acquisition struct {
	stmt *ast.AssignStmt
	v    *types.Var
	err  *types.Var
	desc string
	verb string
	pos  token.Pos
}

// NewResLife returns a reslife analyzer gated on the given package set; the
// analysistest negative controls instantiate it over temp modules.
func NewResLife(pkgs map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "reslife",
		Doc:  "acquired resources in deployment packages must be Closed/Stopped or transferred on every path",
		Run: func(pass *Pass) error {
			if !pkgs[pass.Path] {
				return nil
			}
			r := &reslifeChecker{pass: pass}
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					r.checkBody(fd.Body)
				}
				ast.Inspect(f, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						r.checkBody(lit.Body)
					}
					return true
				})
			}
			return nil
		},
	}
}

type reslifeChecker struct {
	pass *Pass
}

func (r *reslifeChecker) varOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := r.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := r.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// acquisitions collects the tracked resource obligations of one body,
// excluding nested function literals (checked as their own bodies).
func (r *reslifeChecker) acquisitions(body *ast.BlockStmt) []acquisition {
	info := r.pass.TypesInfo
	var acqs []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		// Result types, tuple or single.
		var results []types.Type
		switch t := info.TypeOf(call).(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				results = append(results, t.At(i).Type())
			}
		case nil:
			return true
		default:
			results = []types.Type{t}
		}
		if len(results) != len(as.Lhs) {
			return true
		}
		var errVar *types.Var
		for i, t := range results {
			if t != nil && t.String() == "error" {
				errVar = r.varOf(as.Lhs[i])
			}
		}
		for i, t := range results {
			desc, verb, isRes := resourceType(t)
			if !isRes {
				continue
			}
			v := r.varOf(as.Lhs[i])
			if v == nil || v.Name() == "_" {
				continue
			}
			// Track locals only: assignment to a field (selector LHS, varOf
			// nil) or a package variable is adoption by longer-lived state,
			// someone else's obligation.
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				continue
			}
			acqs = append(acqs, acquisition{
				stmt: as, v: v, err: errVar, desc: desc, verb: verb, pos: as.Lhs[i].Pos(),
			})
		}
		return true
	})
	return acqs
}

// checkBody runs the per-acquisition obligation analysis over one body's
// CFG. State is one boolean per block: "the obligation is discharged on
// every path reaching here" — trivially true before the acquisition, forced
// false by it, restored by any discharge event. Merge is AND; error-guard
// branches discharge on their error edge.
func (r *reslifeChecker) checkBody(body *ast.BlockStmt) {
	acqs := r.acquisitions(body)
	if len(acqs) == 0 {
		return
	}
	cfg := flow.NewCFG(body)
	for _, acq := range acqs {
		r.checkAcq(cfg, body, acq)
	}
}

func (r *reslifeChecker) checkAcq(cfg *flow.CFG, body *ast.BlockStmt, acq acquisition) {
	n := len(cfg.Blocks)
	in := make([]bool, n)
	out := make([]bool, n)
	for i := range in {
		in[i], out[i] = true, true
	}

	transfer := func(bi int) bool {
		state := in[bi]
		for _, node := range cfg.Blocks[bi].Nodes {
			if node == ast.Node(acq.stmt) {
				state = false
				continue
			}
			if !state && r.nodeResolves(node, acq.v) {
				state = true
			}
		}
		return state
	}

	// acqBlock is the CFG block containing the acquisition statement. The
	// error-partner guard below only applies to branches leaving this block:
	// a later acquisition typically reuses the same err variable, and its
	// guard says nothing about this resource's validity.
	acqBlock := -1
	for _, blk := range cfg.Blocks {
		for _, node := range blk.Nodes {
			if node == ast.Node(acq.stmt) {
				acqBlock = blk.Index
			}
		}
	}

	// edgeOut is out[p] adjusted for error-guard branches: when p ends in a
	// nil-comparison of the acquisition's error partner (or the resource
	// itself), the branch on which the resource is invalid discharges the
	// obligation vacuously.
	edgeOut := func(p *flow.Block, succ *flow.Block) bool {
		if out[p.Index] {
			return true
		}
		if len(p.Nodes) == 0 || len(p.Succs) < 2 {
			return out[p.Index]
		}
		bin, ok := p.Nodes[len(p.Nodes)-1].(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return out[p.Index]
		}
		var operand ast.Expr
		if isNilIdent(bin.Y, r.pass.TypesInfo) {
			operand = bin.X
		} else if isNilIdent(bin.X, r.pass.TypesInfo) {
			operand = bin.Y
		} else {
			return out[p.Index]
		}
		v := r.varOf(operand)
		if v == nil || (v != acq.err && v != acq.v) {
			return out[p.Index]
		}
		// The err partner is only meaningful straight out of the acquisition's
		// block; the resource's own nil-check is meaningful anywhere.
		if v == acq.err && p.Index != acqBlock {
			return out[p.Index]
		}
		// err != nil / v == nil: the then branch (Succs[0]) is the invalid
		// path; err == nil / v != nil: every other branch is.
		invalidThen := (v == acq.err) == (bin.Op == token.NEQ)
		onThen := succ == p.Succs[0]
		if invalidThen == onThen {
			return true
		}
		return out[p.Index]
	}

	entry := cfg.Entry.Index
	changed := true
	for changed {
		changed = false
		for _, blk := range cfg.Blocks {
			state := true
			if blk.Index != entry {
				for _, p := range blk.Preds() {
					state = state && edgeOut(p, blk)
				}
			}
			in[blk.Index] = state
			if next := transfer(blk.Index); next != out[blk.Index] {
				out[blk.Index] = next
				changed = true
			}
		}
	}

	// Witness pass: the earliest return (or function end) reached with the
	// obligation outstanding.
	witness := token.NoPos
	note := ""
	record := func(pos token.Pos, what string) {
		if witness == token.NoPos || pos < witness {
			witness, note = pos, what
		}
	}
	for _, blk := range cfg.Blocks {
		state := in[blk.Index]
		for _, node := range blk.Nodes {
			if node == ast.Node(acq.stmt) {
				state = false
				continue
			}
			if ret, ok := node.(*ast.ReturnStmt); ok {
				if !state && !r.nodeResolves(node, acq.v) {
					record(ret.Pos(), "the return at "+shortPos(r.pass.Fset, ret.Pos()))
				}
			}
			if !state && r.nodeResolves(node, acq.v) {
				state = true
			}
		}
		if len(blk.Succs) == 0 && !state {
			record(body.End(), "the end of the function")
		}
	}
	if witness != token.NoPos {
		r.pass.Reportf(acq.pos,
			"%s %s acquired here may leak: no %s, ownership transfer, or adoption on the path to %s",
			acq.desc, acq.v.Name(), acq.verb, note)
	}
}

func isNilIdent(e ast.Expr, info *types.Info) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// nodeResolves reports whether one CFG node discharges the obligation on v:
// v.Close()/v.Stop() (deferred included), v as a call argument, in return
// results, on an assignment RHS or LHS map index, sent on a channel, &v, or
// captured by a nested literal. A method call on v other than Close/Stop is
// a use, not a discharge.
func (r *reslifeChecker) nodeResolves(node ast.Node, v *types.Var) bool {
	resolved := false
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		if resolved {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if r.valueUses(n, v) {
				resolved = true
			}
			return false
		case *ast.DeferStmt:
			if r.callResolves(n.Call, v) {
				resolved = true
			}
			return !resolved
		case *ast.GoStmt:
			if r.callResolves(n.Call, v) {
				resolved = true
			}
			return !resolved
		case *ast.CallExpr:
			if r.callResolves(n, v) {
				resolved = true
			}
			return !resolved
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if r.valueUses(e, v) {
					resolved = true
				}
			}
			return !resolved
		case *ast.AssignStmt:
			for _, e := range n.Rhs {
				if r.valueUses(e, v) {
					resolved = true
				}
			}
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && r.valueUses(ix.Index, v) {
					resolved = true
				}
			}
			return !resolved
		case *ast.SendStmt:
			if r.valueUses(n.Value, v) {
				resolved = true
			}
			return !resolved
		case *ast.UnaryExpr:
			if n.Op == token.AND && r.valueUses(n.X, v) {
				resolved = true
			}
			return !resolved
		}
		return true
	}
	ast.Inspect(node, walk)
	return resolved
}

// callResolves: v.Close()/v.Stop() discharges; any other method on v does
// not; v appearing in the arguments transfers ownership to the callee.
func (r *reslifeChecker) callResolves(call *ast.CallExpr, v *types.Var) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if r.varOf(sel.X) == v {
			return sel.Sel.Name == "Close" || sel.Sel.Name == "Stop"
		}
	}
	for _, a := range call.Args {
		if r.valueUses(a, v) {
			return true
		}
	}
	return false
}

// valueUses reports whether e mentions v in a value position — one that
// copies or stores the resource — as opposed to a comparison or a method
// receiver.
func (r *reslifeChecker) valueUses(e ast.Node, v *types.Var) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return r.varOf(x) == v
	case *ast.ParenExpr:
		return r.valueUses(x.X, v)
	case *ast.UnaryExpr:
		if x.Op == token.AND || x.Op == token.ARROW {
			return r.valueUses(x.X, v)
		}
		return false
	case *ast.StarExpr:
		return r.valueUses(x.X, v)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if r.valueUses(kv.Value, v) || r.valueUses(kv.Key, v) {
					return true
				}
				continue
			}
			if r.valueUses(el, v) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		for _, a := range x.Args {
			if r.valueUses(a, v) {
				return true
			}
		}
		return false
	case *ast.FuncLit:
		captured := false
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && r.varOf(id) == v {
				captured = true
			}
			return !captured
		})
		return captured
	}
	return false
}
