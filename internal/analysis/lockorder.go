package analysis

import (
	"strings"

	"corropt/internal/analysis/flow"
)

// LockOrder detects three deadlock shapes over the module-wide lock-order
// graph built by internal/analysis/flow:
//
//  1. Acquisition-order cycles: lock A held while B is acquired in one place
//     and B held while A is acquired in another (directly or through calls).
//     Each cycle is reported once, at its earliest witness edge.
//  2. Reacquisition: taking a sync.Mutex that may already be held on some
//     path through the function (sync mutexes are not reentrant).
//  3. Blocking under a lock: a channel send/receive, sync.WaitGroup.Wait, or
//     a known blocking I/O call (see flow's blocking table) executed while a
//     mutex is held — the classic shape of snmplite/ctlplane shutdown hangs.
//
// Held-lock state is a may-analysis (union over CFG predecessors), and
// `defer mu.Unlock()` keeps the lock held through the rest of the body.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "detects mutex acquisition-order cycles, reacquisition of held " +
		"mutexes, and blocking operations performed under a lock " +
		"(DESIGN.md §8)",
	Run: runLockOrder,
}

func joinLockKeys(keys []flow.LockKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = string(k)
	}
	return strings.Join(parts, ", ")
}

func runLockOrder(pass *Pass) error {
	w := pass.world()

	// Cycles and reacquires are global facts; each is attributed to exactly
	// one package (its witness site) so module-wide runs report it once.
	for _, cyc := range w.Cycles() {
		if cyc.Pkg != pass.Path {
			continue
		}
		var wits []string
		for _, e := range cyc.Edges {
			wit := string(e.From) + " -> " + string(e.To) + " in " + e.Fn
			if e.Via != "" {
				wit += " (via " + e.Via + ")"
			}
			wits = append(wits, wit)
		}
		pass.Reportf(cyc.Pos,
			"lock-order cycle between %s: acquisition order is inconsistent (%s); pick one order and use it everywhere",
			joinLockKeys(cyc.Keys), strings.Join(wits, "; "))
	}
	for _, r := range w.Reacquires() {
		if r.Pkg != pass.Path {
			continue
		}
		if r.Via != "" {
			pass.Reportf(r.Pos,
				"%s may already be held here and the call to %s acquires it again: sync mutexes are not reentrant",
				r.Key, r.Via)
		} else {
			pass.Reportf(r.Pos,
				"%s may already be held at this acquisition: sync mutexes are not reentrant",
				r.Key)
		}
	}

	// Blocking under a held lock: direct channel/WaitGroup/I-O operations
	// are recorded per function; calls into module functions that
	// transitively perform blocking I/O are flagged through the call edge.
	for _, fs := range w.PackageFacts(pass.Path) {
		for _, hb := range fs.HeldBlocks {
			pass.Reportf(hb.Pos,
				"%s while holding %s: blocked goroutines wedge every other user of the lock; release it first",
				hb.What, joinLockKeys(hb.Held))
		}
		for _, hc := range fs.HeldCalls {
			if w.FuncFactsOf(hc.Callee) == nil || !w.MayBlock(hc.Callee) {
				continue
			}
			callee := w.FuncFactsOf(hc.Callee)
			pass.Reportf(hc.Pos,
				"call to %s (may block on I/O) while holding %s: release the lock before blocking",
				callee.Name, joinLockKeys(hc.Held))
		}
	}
	return nil
}
