package analysis

import (
	"go/ast"
	"go/types"
)

// GuardedStruct declares a struct whose listed fields may only be written
// inside a sanctioned set of functions. This is how the core.Network state
// machine is locked down: the incremental caches (path-count mirror, penalty
// sum, constraint status) stay consistent only because every mutation flows
// through the small set of methods that update all of them together
// (DESIGN.md §6–§7). A write from anywhere else — a new helper, another file
// in the package — silently desynchronizes the caches, so the analyzer makes
// such writes a lint failure until the new writer is consciously added here.
type GuardedStruct struct {
	// Pkg is the import path of the package defining the struct.
	Pkg string
	// Type is the struct's type name.
	Type string
	// Fields lists the guarded field names. Writes cover plain assignment,
	// op-assignment, ++/--, and element writes through the field (x.f[i] = v).
	Fields []string
	// Writers are the names of the functions (methods of the struct or
	// package-level functions in Pkg) sanctioned to write the fields.
	Writers []string
}

// MutexHeldConfig guards core.Network. Every field is listed: Network's
// documented contract is that all state changes go through NewNetwork /
// SetToRConstraint / SetCorruption / RegisterPenalty / Disable / Enable /
// LoadState(resetState) and their private helpers.
var MutexHeldConfig = []GuardedStruct{
	{
		Pkg:  "corropt/internal/core",
		Type: "Network",
		Fields: []string{
			"topo", "pc", "disabled", "numDisabled", "rate", "constraint",
			"meetsNow", "numViolated",
			"penalty", "contrib", "penaltySum", "corrupting", "penaltyOps",
		},
		Writers: []string{
			"NewNetwork", "SetToRConstraint", "Disable", "Enable",
			"SetCorruption", "RegisterPenalty", "PenaltySum",
			"setContrib", "penaltyOnToggle", "rebuildPenaltySum",
			"refreshToR", "refreshToRs", "recomputeViolated", "resetState",
			"Reset",
		},
	},
}

// NewMutexHeld returns the mutexheld analyzer for the given guarded structs.
func NewMutexHeld(config []GuardedStruct) *Analyzer {
	a := &Analyzer{
		Name: "mutexheld",
		Doc: "restricts writes to guarded struct state to the sanctioned " +
			"mutation methods (DESIGN.md §8)",
	}
	a.Run = func(pass *Pass) error {
		for i := range config {
			runMutexHeld(pass, &config[i])
		}
		return nil
	}
	return a
}

// MutexHeld is the canonical mutexheld analyzer over MutexHeldConfig.
var MutexHeld = NewMutexHeld(MutexHeldConfig)

func runMutexHeld(pass *Pass, g *GuardedStruct) {
	fields := make(map[string]bool, len(g.Fields))
	for _, f := range g.Fields {
		fields[f] = true
	}
	writers := make(map[string]bool, len(g.Writers))
	for _, w := range g.Writers {
		writers[w] = true
	}

	// guardedWrite reports whether expr is a write target rooted at a
	// guarded field selector (x.f, x.f[i], *x.f, ...).
	guardedWrite := func(expr ast.Expr) (ast.Expr, bool) {
		for {
			switch e := expr.(type) {
			case *ast.IndexExpr:
				expr = e.X
			case *ast.StarExpr:
				expr = e.X
			case *ast.ParenExpr:
				expr = e.X
			case *ast.SelectorExpr:
				selObj := pass.TypesInfo.Selections[e]
				if selObj == nil || selObj.Kind() != types.FieldVal {
					return nil, false
				}
				field, ok := selObj.Obj().(*types.Var)
				if !ok || field.Pkg() == nil {
					return nil, false
				}
				if field.Pkg().Path() != g.Pkg || !fields[field.Name()] {
					return nil, false
				}
				recv := selObj.Recv()
				if p, ok := recv.(*types.Pointer); ok {
					recv = p.Elem()
				}
				named, ok := recv.(*types.Named)
				if !ok || named.Obj().Name() != g.Type {
					return nil, false
				}
				return e, true
			default:
				return nil, false
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Function literals inside a sanctioned writer inherit its
			// sanction: the closure runs as part of the method's update.
			if writers[fd.Name.Name] && writerBelongsTo(pass, fd, g) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel, ok := guardedWrite(lhs); ok {
							pass.Reportf(sel.Pos(), "write to guarded field %s.%s outside its sanctioned mutation methods (%s)", g.Type, sel.(*ast.SelectorExpr).Sel.Name, fd.Name.Name)
						}
					}
				case *ast.IncDecStmt:
					if sel, ok := guardedWrite(n.X); ok {
						pass.Reportf(sel.Pos(), "write to guarded field %s.%s outside its sanctioned mutation methods (%s)", g.Type, sel.(*ast.SelectorExpr).Sel.Name, fd.Name.Name)
					}
				}
				return true
			})
		}
	}
}

// writerBelongsTo reports whether the sanctioned-by-name function fd is
// really one of the guarded package's own functions: a method on the guarded
// type, or (for constructors) a package-level function declared in g.Pkg.
// Same-named methods on unrelated types stay unsanctioned.
func writerBelongsTo(pass *Pass, fd *ast.FuncDecl, g *GuardedStruct) bool {
	if pass.Path != g.Pkg {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true // package-level function in the guarded package
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == g.Type
}
