package analysis

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// escapeFindingRe extracts the root name and finding kind from an escapes
// finding message ("hot path <root> has a compiler-reported heap escape ..."
// / "... bounds check ...").
var escapeFindingRe = regexp.MustCompile(`^hot path (\S+) has a compiler-reported (heap escape|bounds check)`)

// TestEscapeBaselineIsFresh regenerates the scripts/escape_baseline.txt
// content — one `root <pkg.func> escapes <n> bounds <n>` line per
// //lint:hotpath root, counting live escapes-analyzer findings from a real
// `go build -gcflags=-json` pass — and fails when the committed file drifts:
// a root added or removed without a baseline entry, or any count moving in
// either direction. The zero ratchet itself (every count == 0) is enforced
// by scripts/bench_check.sh and by this test's companion check below, so an
// escape regression fails both the Go suite and the bench gate with the
// same attribution.
func TestEscapeBaselineIsFresh(t *testing.T) {
	pkgs := loadRepo(t, "./...")
	world := BuildWorld(pkgs)

	type counts struct{ escapes, bounds int }
	byRoot := make(map[string]*counts)
	for _, fs := range world.HotpathRoots() {
		byRoot[fs.Pkg+"."+fs.Name] = &counts{}
	}
	if len(byRoot) == 0 {
		t.Fatal("no //lint:hotpath roots found in the module; the annotations or the flow summary went missing")
	}

	// Count live (unsuppressed) escapes findings through the same
	// RunDetailed pipeline the lint driver uses; the full suite runs so the
	// repo's lint:allow annotations resolve against the complete known set.
	for _, pkg := range pkgs {
		findings, err := RunDetailed(pkg, All(), world)
		if err != nil {
			t.Fatalf("RunDetailed(%s): %v", pkg.Path, err)
		}
		for _, f := range findings {
			if f.Analyzer != "escapes" || f.Suppressed {
				continue
			}
			m := escapeFindingRe.FindStringSubmatch(f.Message)
			if m == nil {
				t.Errorf("%s: escapes finding with unparseable message: %q", pkg.Path, f.Message)
				continue
			}
			key := pkg.Path + "." + m[1]
			c, ok := byRoot[key]
			if !ok {
				t.Errorf("escapes finding attributed to %s, which is not a known //lint:hotpath root", key)
				continue
			}
			if m[2] == "heap escape" {
				c.escapes++
			} else {
				c.bounds++
			}
		}
	}

	var roots []string
	for root := range byRoot {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	var want strings.Builder
	for _, root := range roots {
		c := byRoot[root]
		fmt.Fprintf(&want, "root %s escapes %d bounds %d\n", root, c.escapes, c.bounds)
		// The companion zero check: the analyzer already fails the lint gate
		// on any live finding, but pin the ratchet here too so a future
		// "accept non-zero into the baseline" change has to confront the
		// contract explicitly.
		if c.escapes != 0 || c.bounds != 0 {
			t.Errorf("hotpath root %s holds %d escapes / %d bounds checks; the baseline is ratcheted at zero", root, c.escapes, c.bounds)
		}
	}

	data, err := os.ReadFile("../../scripts/escape_baseline.txt")
	if err != nil {
		t.Fatalf("read escape_baseline.txt: %v", err)
	}
	var got strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		if trimmed := strings.TrimSpace(line); trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		got.WriteString(line + "\n")
	}
	if got.String() != want.String() {
		t.Errorf("scripts/escape_baseline.txt is stale.\n-- committed --\n%s-- regenerated --\n%s", got.String(), want.String())
	}
}
