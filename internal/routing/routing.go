// Package routing computes ECMP link loads for valley-free routing on a
// (possibly degraded) Clos topology. It exists to quantify the premise
// behind CorrOpt's capacity constraints (§5.1): disabling corrupting links
// shrinks the path diversity ECMP spreads over, and blind disabling can
// concentrate traffic into hotspots — trading corruption losses for heavy
// congestion losses — or even partition ToRs from each other.
//
// Routing follows the valley-free discipline: a flow climbs zero or more
// stages, turns at most once, and descends to its destination. ECMP splits
// traffic equally across all next hops that lie on a shortest surviving
// valley-free path. Loads are computed exactly by mass diffusion over the
// shortest-path DAG of each destination.
package routing

import (
	"fmt"
	"math"
	"sort"

	"corropt/internal/topology"
)

// phase is the valley-free routing phase: climbing or descending.
type phase int

const (
	up phase = iota
	down
	numPhases
)

// Demand is one src→dst traffic demand between ToRs, in arbitrary rate
// units (loads come out in the same units).
type Demand struct {
	Src, Dst topology.SwitchID
	Rate     float64
}

// Loads is the result of routing a demand set.
type Loads struct {
	// PerLink holds the carried load per link and direction.
	PerLink [2][]float64
	// Unroutable sums the demand that found no surviving valley-free
	// path (the partition case).
	Unroutable float64
	// Routed sums the demand delivered.
	Routed float64
}

// MaxLoad returns the highest per-direction link load and the link carrying
// it.
func (l *Loads) MaxLoad() (float64, topology.LinkID, topology.Direction) {
	best, bestLink, bestDir := 0.0, topology.NoLink, topology.Up
	for d := 0; d < 2; d++ {
		for i, v := range l.PerLink[d] {
			if v > best {
				best, bestLink, bestDir = v, topology.LinkID(i), topology.Direction(d)
			}
		}
	}
	return best, bestLink, bestDir
}

// Load reports the carried load of one link direction.
func (l *Loads) Load(link topology.LinkID, dir topology.Direction) float64 {
	return l.PerLink[dir][link]
}

// Router routes demands over one topology. It keeps reusable buffers; a
// Router is not safe for concurrent use.
type Router struct {
	topo *topology.Topology
	// dist[phase][switch] is the hop distance to the current destination
	// in the valley-free state graph.
	dist [numPhases][]int32
	// mass[phase][switch] is the diffusion mass during load computation.
	mass [numPhases][]float64
	// queue is scratch for the BFS.
	queue []stateRef
	// order holds reachable states bucket-sorted by distance descending,
	// the sweep order of the load diffusion (every ECMP hop strictly
	// decreases distance-to-destination, so by the time a state is swept
	// all its mass has been deposited).
	order []stateRef
}

type stateRef struct {
	sw topology.SwitchID
	ph phase
}

// New returns a Router for t.
func New(t *topology.Topology) *Router {
	r := &Router{topo: t}
	for p := phase(0); p < numPhases; p++ {
		r.dist[p] = make([]int32, t.NumSwitches())
		r.mass[p] = make([]float64, t.NumSwitches())
	}
	return r
}

const unreachable = int32(math.MaxInt32)

// bfs fills dist with hop counts to dst over the reversed valley-free
// state graph, considering disabled links, and records the visit order.
func (r *Router) bfs(dst topology.SwitchID, disabled topology.DisabledFunc) {
	t := r.topo
	for p := phase(0); p < numPhases; p++ {
		for i := range r.dist[p] {
			r.dist[p][i] = unreachable
		}
	}
	r.queue = r.queue[:0]

	// Destination states: arriving while descending, or having never
	// climbed (the trivial same-ToR case starts in the up phase).
	r.dist[down][dst] = 0
	r.dist[up][dst] = 0
	r.queue = append(r.queue, stateRef{dst, down}, stateRef{dst, up})

	active := func(l topology.LinkID) bool { return disabled == nil || !disabled(l) }

	// Label-correcting relaxation: the free turn edge ((v,up) reaches
	// (v,down) at cost 0) breaks plain-BFS monotonicity, so improvements
	// re-enqueue. Distances only shrink, so this terminates quickly.
	relax := func(sw topology.SwitchID, ph phase, d int32) {
		if r.dist[ph][sw] > d {
			r.dist[ph][sw] = d
			r.queue = append(r.queue, stateRef{sw, ph})
		}
	}
	for len(r.queue) > 0 {
		cur := r.queue[0]
		r.queue = r.queue[1:]
		d := r.dist[cur.ph][cur.sw]
		sw := t.Switch(cur.sw)
		switch cur.ph {
		case down:
			// Predecessors descend into cur.sw from above via its
			// uplinks' upper ends (cost 1), or turn here: the same
			// switch in the up phase (cost 0).
			for _, l := range sw.Uplinks {
				if active(l) {
					relax(t.Link(l).Upper, down, d+1)
				}
			}
			relax(cur.sw, up, d)
		case up:
			// Predecessors climb into cur.sw from below via its
			// downlinks' lower ends, still in the up phase.
			for _, l := range sw.Downlinks {
				if active(l) {
					relax(t.Link(l).Lower, up, d+1)
				}
			}
		}
	}

	// Bucket states by final distance, descending, for the diffusion.
	maxD := int32(0)
	for p := phase(0); p < numPhases; p++ {
		for _, d := range r.dist[p] {
			if d != unreachable && d > maxD {
				maxD = d
			}
		}
	}
	buckets := make([][]stateRef, maxD+1)
	// Within a distance bucket, up-phase states must precede down-phase
	// ones: the only equal-distance hop is the free turn (v,up)→(v,down),
	// so sweeping up before down keeps mass flowing forward. Iterating
	// phases in declaration order (up=0 first) guarantees it.
	for p := phase(0); p < numPhases; p++ {
		for sw, d := range r.dist[p] {
			if d != unreachable {
				buckets[d] = append(buckets[d], stateRef{topology.SwitchID(sw), p})
			}
		}
	}
	r.order = r.order[:0]
	for d := maxD; d >= 0; d-- {
		r.order = append(r.order, buckets[d]...)
	}
}

// Route computes exact ECMP loads for the demand set under the disabled
// set. Demands between non-ToR switches are rejected.
func (r *Router) Route(demands []Demand, disabled topology.DisabledFunc) (*Loads, error) {
	t := r.topo
	out := &Loads{}
	for d := 0; d < 2; d++ {
		out.PerLink[d] = make([]float64, t.NumLinks())
	}
	// Group demands by destination: one BFS + diffusion per dst.
	byDst := make(map[topology.SwitchID][]Demand)
	for _, dm := range demands {
		if t.Switch(dm.Src).Stage != 0 || t.Switch(dm.Dst).Stage != 0 {
			return nil, fmt.Errorf("routing: demands must connect ToRs, got %s -> %s",
				t.Switch(dm.Src).Name, t.Switch(dm.Dst).Name)
		}
		if dm.Rate < 0 {
			return nil, fmt.Errorf("routing: negative demand rate %v", dm.Rate)
		}
		if dm.Src == dm.Dst || dm.Rate == 0 {
			continue // delivered without touching any link
		}
		byDst[dm.Dst] = append(byDst[dm.Dst], dm)
	}
	active := func(l topology.LinkID) bool { return disabled == nil || !disabled(l) }

	// Sweep destinations in ascending id order, not map order: Routed,
	// Unroutable, and PerLink accumulate across destinations, and float
	// addition is not associative — a map-order sweep would leave
	// run-dependent last bits in the loads (the floatorder analyzer's
	// contract, DESIGN.md §7.5).
	dsts := make([]topology.SwitchID, 0, len(byDst))
	for dst := range byDst {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })

	for _, dst := range dsts {
		dms := byDst[dst]
		r.bfs(dst, disabled)
		for p := phase(0); p < numPhases; p++ {
			for i := range r.mass[p] {
				r.mass[p][i] = 0
			}
		}
		// Seed source masses; unreachable sources are partitioned.
		seeded := false
		for _, dm := range dms {
			if r.dist[up][dm.Src] == unreachable {
				out.Unroutable += dm.Rate
				continue
			}
			r.mass[up][dm.Src] += dm.Rate
			out.Routed += dm.Rate
			seeded = true
		}
		if !seeded {
			continue
		}
		// Diffuse along the shortest-path DAG in distance-descending
		// order: every hop strictly decreases distance-to-dst, so all of
		// a state's incoming mass is present before it is swept.
		for _, cur := range r.order {
			m := r.mass[cur.ph][cur.sw]
			if m == 0 {
				continue
			}
			d := r.dist[cur.ph][cur.sw]
			if d == 0 {
				continue // delivered
			}
			sw := t.Switch(cur.sw)
			// Collect equal-cost next hops.
			type hop struct {
				link topology.LinkID
				dir  topology.Direction
				to   stateRef
			}
			var hops []hop
			if cur.ph == up {
				// Turn in place (free) if descending from here works.
				if r.dist[down][cur.sw] == d {
					hops = append(hops, hop{link: topology.NoLink, to: stateRef{cur.sw, down}})
				}
				for _, l := range sw.Uplinks {
					if !active(l) {
						continue
					}
					upSw := t.Link(l).Upper
					if r.dist[up][upSw] == d-1 {
						hops = append(hops, hop{link: l, dir: topology.Up, to: stateRef{upSw, up}})
					}
				}
			} else {
				for _, l := range sw.Downlinks {
					if !active(l) {
						continue
					}
					lowSw := t.Link(l).Lower
					if r.dist[down][lowSw] == d-1 {
						hops = append(hops, hop{link: l, dir: topology.Down, to: stateRef{lowSw, down}})
					}
				}
			}
			if len(hops) == 0 {
				// Cannot happen if dist is consistent.
				return nil, fmt.Errorf("routing: internal: no next hop from %s/%v at distance %d",
					sw.Name, cur.ph, d)
			}
			share := m / float64(len(hops))
			for _, h := range hops {
				if h.link != topology.NoLink {
					out.PerLink[h.dir][h.link] += share
				}
				r.mass[h.to.ph][h.to.sw] += share
			}
			r.mass[cur.ph][cur.sw] = 0
		}
	}
	return out, nil
}

// UniformAllToAll builds an all-pairs demand set with the given rate per
// ToR pair.
func UniformAllToAll(t *topology.Topology, rate float64) []Demand {
	tors := t.ToRs()
	out := make([]Demand, 0, len(tors)*(len(tors)-1))
	for _, s := range tors {
		for _, d := range tors {
			if s != d {
				out = append(out, Demand{Src: s, Dst: d, Rate: rate})
			}
		}
	}
	return out
}
