package routing

import (
	"math"
	"testing"

	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

func clos(t *testing.T, pods, tors, aggs, spines, uplinks int) *topology.Topology {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: pods, ToRsPerPod: tors, AggsPerPod: aggs,
		Spines: spines, SpineUplinksPerAgg: uplinks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSingleDemandHealthy(t *testing.T) {
	topo := clos(t, 2, 2, 2, 4, 2)
	r := New(topo)
	src, dst := topo.ToRs()[0], topo.ToRs()[2] // different pods
	if topo.Switch(src).Pod == topo.Switch(dst).Pod {
		t.Fatal("test expects cross-pod ToRs")
	}
	loads, err := r.Route([]Demand{{Src: src, Dst: dst, Rate: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loads.Unroutable != 0 || !almost(loads.Routed, 1) {
		t.Fatalf("routed=%v unroutable=%v", loads.Routed, loads.Unroutable)
	}
	// Conservation: src's uplinks carry the full unit up; dst's downlinks
	// carry it down.
	sumUp := 0.0
	for _, l := range topo.Switch(src).Uplinks {
		sumUp += loads.Load(l, topology.Up)
	}
	if !almost(sumUp, 1) {
		t.Fatalf("src uplink load = %v, want 1", sumUp)
	}
	sumDown := 0.0
	for _, l := range topo.Switch(dst).Uplinks { // dst's uplinks, Down direction
		sumDown += loads.Load(l, topology.Down)
	}
	if !almost(sumDown, 1) {
		t.Fatalf("dst downlink load = %v, want 1", sumDown)
	}
	// ECMP at the source splits equally over its 2 uplinks.
	for _, l := range topo.Switch(src).Uplinks {
		if !almost(loads.Load(l, topology.Up), 0.5) {
			t.Fatalf("src uplink share = %v, want 0.5", loads.Load(l, topology.Up))
		}
	}
}

func TestIntraPodUsesTurnAtAgg(t *testing.T) {
	topo := clos(t, 1, 2, 2, 2, 1)
	r := New(topo)
	src, dst := topo.ToRs()[0], topo.ToRs()[1] // same pod
	loads, err := r.Route([]Demand{{Src: src, Dst: dst, Rate: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(loads.Routed, 1) {
		t.Fatalf("routed = %v", loads.Routed)
	}
	// The shortest path turns at the shared aggs: no spine link touched.
	topo.Links(func(l *topology.Link) {
		if topo.Switch(l.Upper).Stage == 2 {
			if loads.Load(l.ID, topology.Up) != 0 || loads.Load(l.ID, topology.Down) != 0 {
				t.Fatalf("intra-pod traffic climbed to the spine via link %d", l.ID)
			}
		}
	})
}

func TestSelfDemandTouchesNothing(t *testing.T) {
	topo := clos(t, 1, 2, 2, 2, 1)
	r := New(topo)
	tor := topo.ToRs()[0]
	loads, err := r.Route([]Demand{{Src: tor, Dst: tor, Rate: 5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m, _, _ := loads.MaxLoad(); m != 0 {
		t.Fatalf("self demand loaded a link: %v", m)
	}
}

func TestRejectsNonToRDemand(t *testing.T) {
	topo := clos(t, 1, 2, 2, 2, 1)
	r := New(topo)
	if _, err := r.Route([]Demand{{Src: topo.Spines()[0], Dst: topo.ToRs()[0], Rate: 1}}, nil); err == nil {
		t.Fatal("spine demand accepted")
	}
	if _, err := r.Route([]Demand{{Src: topo.ToRs()[0], Dst: topo.ToRs()[1], Rate: -1}}, nil); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestDisabledLinksAvoided(t *testing.T) {
	topo := clos(t, 2, 2, 2, 4, 2)
	r := New(topo)
	src, dst := topo.ToRs()[0], topo.ToRs()[2]
	dead := topo.Switch(src).Uplinks[0]
	loads, err := r.Route([]Demand{{Src: src, Dst: dst, Rate: 1}},
		func(l topology.LinkID) bool { return l == dead })
	if err != nil {
		t.Fatal(err)
	}
	if loads.Load(dead, topology.Up) != 0 || loads.Load(dead, topology.Down) != 0 {
		t.Fatal("traffic crossed a disabled link")
	}
	// The surviving uplink carries everything.
	other := topo.Switch(src).Uplinks[1]
	if !almost(loads.Load(other, topology.Up), 1) {
		t.Fatalf("surviving uplink load = %v, want 1", loads.Load(other, topology.Up))
	}
}

func TestPartitionDetected(t *testing.T) {
	topo := clos(t, 2, 2, 2, 4, 2)
	r := New(topo)
	src, dst := topo.ToRs()[0], topo.ToRs()[2]
	// Kill all of src's uplinks.
	dead := make(map[topology.LinkID]bool)
	for _, l := range topo.Switch(src).Uplinks {
		dead[l] = true
	}
	loads, err := r.Route([]Demand{
		{Src: src, Dst: dst, Rate: 1},
		{Src: dst, Dst: topo.ToRs()[3], Rate: 2},
	}, func(l topology.LinkID) bool { return dead[l] })
	if err != nil {
		t.Fatal(err)
	}
	if !almost(loads.Unroutable, 1) {
		t.Fatalf("unroutable = %v, want 1", loads.Unroutable)
	}
	if !almost(loads.Routed, 2) {
		t.Fatalf("routed = %v, want 2", loads.Routed)
	}
}

// TestConservationProperty: for random demand sets and random disabled
// sets, every ToR's uplink load in the Up direction equals its routable
// egress demand, and total Routed+Unroutable equals offered load.
func TestConservationProperty(t *testing.T) {
	topo := clos(t, 3, 3, 3, 9, 3)
	r := New(topo)
	rng := rngutil.New(11)
	tors := topo.ToRs()
	for trial := 0; trial < 20; trial++ {
		var demands []Demand
		offered := 0.0
		for i := 0; i < 15; i++ {
			s := tors[rng.Intn(len(tors))]
			d := tors[rng.Intn(len(tors))]
			if s == d {
				continue
			}
			rate := rng.Range(0.1, 2)
			demands = append(demands, Demand{Src: s, Dst: d, Rate: rate})
			offered += rate
		}
		dead := make(map[topology.LinkID]bool)
		for i := 0; i < topo.NumLinks()/10; i++ {
			dead[topology.LinkID(rng.Intn(topo.NumLinks()))] = true
		}
		loads, err := r.Route(demands, func(l topology.LinkID) bool { return dead[l] })
		if err != nil {
			t.Fatal(err)
		}
		if !almost(loads.Routed+loads.Unroutable, offered) {
			t.Fatalf("trial %d: routed %v + unroutable %v != offered %v",
				trial, loads.Routed, loads.Unroutable, offered)
		}
		// No load on dead links, no negative loads.
		topo.Links(func(l *topology.Link) {
			for _, dir := range []topology.Direction{topology.Up, topology.Down} {
				v := loads.Load(l.ID, dir)
				if v < 0 {
					t.Fatalf("negative load %v", v)
				}
				if dead[l.ID] && v != 0 {
					t.Fatalf("dead link %d carries %v", l.ID, v)
				}
			}
		})
	}
}

// TestUniformLoadSymmetric: on a healthy symmetric Clos, uniform all-to-all
// demand loads every ToR uplink equally.
func TestUniformLoadSymmetric(t *testing.T) {
	topo := clos(t, 2, 2, 2, 4, 2)
	r := New(topo)
	loads, err := r.Route(UniformAllToAll(topo, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	var want float64 = -1
	for _, tor := range topo.ToRs() {
		for _, l := range topo.Switch(tor).Uplinks {
			v := loads.Load(l, topology.Up)
			if want < 0 {
				want = v
			} else if !almost(v, want) {
				t.Fatalf("asymmetric uplink loads: %v vs %v", v, want)
			}
		}
	}
	if want <= 0 {
		t.Fatal("no load computed")
	}
}

// TestDisablingConcentratesLoad: the §5.1 motivation — disabling most of a
// ToR's uplinks multiplies the load on the survivors.
func TestDisablingConcentratesLoad(t *testing.T) {
	topo := clos(t, 2, 4, 4, 8, 4)
	r := New(topo)
	demands := UniformAllToAll(topo, 1)
	base, err := r.Route(demands, nil)
	if err != nil {
		t.Fatal(err)
	}
	tor := topo.ToRs()[0]
	up := topo.Switch(tor).Uplinks
	dead := map[topology.LinkID]bool{up[0]: true, up[1]: true, up[2]: true}
	degraded, err := r.Route(demands, func(l topology.LinkID) bool { return dead[l] })
	if err != nil {
		t.Fatal(err)
	}
	survivor := up[3]
	if degraded.Load(survivor, topology.Up) < 3.9*base.Load(survivor, topology.Up) {
		t.Fatalf("survivor load %v, want ≈4x the baseline %v",
			degraded.Load(survivor, topology.Up), base.Load(survivor, topology.Up))
	}
}
