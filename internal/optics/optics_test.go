package optics

import (
	"testing"
	"testing/quick"
)

func tech() Technology {
	return Technology{Name: "test", NominalTx: 0, TxThreshold: -4, RxThreshold: -10, PathLoss: 3}
}

func TestHealthyLink(t *testing.T) {
	l := NewLink(tech())
	if l.TxPower(LowerSide) != 0 || l.TxPower(UpperSide) != 0 {
		t.Fatal("nominal Tx not applied")
	}
	if rx := l.RxPower(UpperSide); rx != -3 {
		t.Fatalf("Rx = %v, want -3 (nominal minus path loss)", rx)
	}
	if l.RxLow(LowerSide) || l.RxLow(UpperSide) || l.TxLow(LowerSide) || l.TxLow(UpperSide) {
		t.Fatal("healthy link reports low power")
	}
	if m := l.Margin(UpperSide); m != 7 {
		t.Fatalf("margin = %v, want 7", m)
	}
	if r := l.CorruptionRate(UpperSide); r >= 1e-8 {
		t.Fatalf("healthy corruption rate = %v, want < 1e-8", r)
	}
}

func TestContaminationIsUnidirectional(t *testing.T) {
	l := NewLink(tech())
	// Dirt on the up-direction path: Lower transmits into a dirty connector.
	l.AddLoss(LowerSide, 12)
	if !l.RxLow(UpperSide) {
		t.Fatal("upper receiver should be starved")
	}
	if l.RxLow(LowerSide) {
		t.Fatal("down direction should be unaffected")
	}
	// TxPower on both sides stays high (the §4 contamination signature).
	if l.TxLow(LowerSide) || l.TxLow(UpperSide) {
		t.Fatal("contamination must not alter transmit power")
	}
	if r := l.CorruptionRate(UpperSide); r < 1e-4 {
		t.Fatalf("starved receiver corruption rate = %v, want high", r)
	}
}

func TestFiberDamageHitsBothDirections(t *testing.T) {
	l := NewLink(tech())
	l.AddLoss(LowerSide, 10)
	l.AddLoss(UpperSide, 10)
	if !l.RxLow(LowerSide) || !l.RxLow(UpperSide) {
		t.Fatal("both receivers should be starved after fiber damage")
	}
}

func TestDecayingTransmitter(t *testing.T) {
	l := NewLink(tech())
	l.SetTxPower(LowerSide, -8) // Rx at upper = -8 - 3 = -11, below the -10 threshold
	if !l.TxLow(LowerSide) {
		t.Fatal("decayed transmitter not below threshold")
	}
	if !l.RxLow(UpperSide) {
		t.Fatal("receiver fed by decayed transmitter should be low")
	}
	if l.RxLow(LowerSide) {
		t.Fatal("reverse direction should be healthy")
	}
}

func TestReset(t *testing.T) {
	l := NewLink(tech())
	l.AddLoss(LowerSide, 10)
	l.SetTxPower(UpperSide, -9)
	l.Reset()
	if l.RxLow(LowerSide) || l.RxLow(UpperSide) || l.TxLow(LowerSide) || l.TxLow(UpperSide) {
		t.Fatal("Reset did not restore health")
	}
}

func TestSideOpposite(t *testing.T) {
	if LowerSide.Opposite() != UpperSide || UpperSide.Opposite() != LowerSide {
		t.Fatal("Opposite broken")
	}
	if LowerSide.String() != "lower" || UpperSide.String() != "upper" {
		t.Fatal("String broken")
	}
}

func TestCorruptionRateMonotone(t *testing.T) {
	// More margin never means more corruption.
	f := func(a, b float64) bool {
		ma, mb := DB(a), DB(b)
		if ma > mb {
			ma, mb = mb, ma
		}
		return CorruptionRateFromMargin(ma) >= CorruptionRateFromMargin(mb)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionRateBounds(t *testing.T) {
	for _, m := range []DB{-100, -10, -1, 0, 1, 10, 100} {
		r := CorruptionRateFromMargin(m)
		if r < 0 || r > 1 {
			t.Fatalf("rate(%v) = %v out of [0,1]", m, r)
		}
	}
	if r := CorruptionRateFromMargin(-20); r != 1 {
		t.Fatalf("deep negative margin rate = %v, want saturation at 1", r)
	}
	if r := CorruptionRateFromMargin(0); r >= 1e-8 {
		t.Fatalf("zero-margin rate = %v, want below lossy threshold", r)
	}
}

func TestDefaultTechnologies(t *testing.T) {
	techs := DefaultTechnologies()
	if len(techs) == 0 {
		t.Fatal("no default technologies")
	}
	seen := make(map[string]bool)
	for _, tc := range techs {
		if seen[tc.Name] {
			t.Fatalf("duplicate technology %q", tc.Name)
		}
		seen[tc.Name] = true
		if tc.RxThreshold >= tc.NominalTx-DBm(tc.PathLoss) {
			t.Fatalf("technology %q has no healthy margin", tc.Name)
		}
		if tc.TxThreshold >= tc.NominalTx {
			t.Fatalf("technology %q nominal Tx below its own threshold", tc.Name)
		}
	}
}

// TestResetTech pins that ResetTech is NewLink-in-place for a new
// technology.
func TestResetTech(t *testing.T) {
	a := Technology{Name: "a", NominalTx: 0, TxThreshold: -4, RxThreshold: -10, PathLoss: 3}
	b := Technology{Name: "b", NominalTx: 2, TxThreshold: -2, RxThreshold: -8, PathLoss: 1}
	l := NewLink(a)
	l.AddLoss(LowerSide, 7)
	l.SetTxPower(UpperSide, -20)
	l.ResetTech(b)
	want := NewLink(b)
	if *l != *want {
		t.Fatalf("ResetTech: got %+v, want %+v", *l, *want)
	}
}
