// Package optics models the optical layer of data center links: transceiver
// technologies with transmit/receive power levels and thresholds, fiber
// attenuation, and the mapping between optical margin and packet corruption.
//
// §4 of the paper diagnoses corruption root causes almost entirely from
// TxPower/RxPower symptoms; this package produces those symptoms. Power is
// expressed in dBm and losses in dB, matching how transceivers report via
// digital optical monitoring.
package optics

import "math"

// DBm is an absolute optical power level in decibel-milliwatts.
type DBm float64

// DB is a relative power difference in decibels.
type DB float64

// Technology describes one transceiver/fiber technology. The deployed
// recommendation engine (§7.2) initially used a single global RxPower
// threshold because per-technology data was unavailable; the full design
// (§5.2) keys thresholds by technology, which this type enables.
type Technology struct {
	// Name identifies the technology, e.g. "40G-LR4".
	Name string
	// NominalTx is the healthy transmitter launch power.
	NominalTx DBm
	// TxThreshold is PowerThreshTx: transmit power below this indicates a
	// decaying transmitter (root cause 3).
	TxThreshold DBm
	// RxThreshold is PowerThreshRx: receive power below this indicates an
	// optical-path problem (contamination or fiber damage).
	RxThreshold DBm
	// PathLoss is the loss budget of a healthy fiber path end to end.
	PathLoss DB
}

// DefaultTechnologies returns a representative set of optical technologies
// with thresholds in the ranges typical for data center transceivers.
func DefaultTechnologies() []Technology {
	return []Technology{
		{Name: "10G-SR", NominalTx: -1.0, TxThreshold: -5.0, RxThreshold: -9.9, PathLoss: 2.0},
		{Name: "40G-LR4", NominalTx: 1.0, TxThreshold: -3.0, RxThreshold: -11.5, PathLoss: 3.0},
		{Name: "100G-CWDM4", NominalTx: 0.5, TxThreshold: -4.0, RxThreshold: -10.0, PathLoss: 3.5},
	}
}

// Side selects one end of a bidirectional link.
type Side int

const (
	// LowerSide is the end at the lower (ToR-ward) switch.
	LowerSide Side = iota
	// UpperSide is the end at the upper (spine-ward) switch.
	UpperSide
)

// Opposite returns the other side.
func (s Side) Opposite() Side {
	if s == LowerSide {
		return UpperSide
	}
	return LowerSide
}

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == LowerSide {
		return "lower"
	}
	return "upper"
}

// Link models the optical state of one bidirectional link: a transmitter on
// each side and per-direction excess path loss. The Up direction carries
// light from the LowerSide transmitter to the UpperSide receiver.
type Link struct {
	tech Technology
	// tx holds the current transmit power per side.
	tx [2]DBm
	// extraLoss holds excess attenuation beyond the healthy budget per
	// direction, indexed by the transmitting side: extraLoss[LowerSide]
	// affects the Lower→Upper (up) direction.
	extraLoss [2]DB
}

// NewLink returns a healthy link of the given technology: both transmitters
// at nominal power and no excess loss.
func NewLink(tech Technology) *Link {
	return &Link{tech: tech, tx: [2]DBm{tech.NominalTx, tech.NominalTx}}
}

// Tech returns the link's technology.
func (l *Link) Tech() Technology { return l.tech }

// TxPower reports the transmit power at the given side.
func (l *Link) TxPower(s Side) DBm { return l.tx[s] }

// RxPower reports the receive power at the given side: the opposite side's
// transmit power minus the healthy path loss and any excess loss in that
// direction.
func (l *Link) RxPower(s Side) DBm {
	from := s.Opposite()
	return l.tx[from] - DBm(l.tech.PathLoss) - DBm(l.extraLoss[from])
}

// SetTxPower overrides the transmit power at side s (decaying transmitter,
// root cause 3).
func (l *Link) SetTxPower(s Side, p DBm) { l.tx[s] = p }

// AddLoss adds excess attenuation to the direction transmitted from side s
// (contamination affects one direction; fiber damage both).
func (l *Link) AddLoss(fromSide Side, loss DB) { l.extraLoss[fromSide] += loss }

// SetLoss sets the excess attenuation for the direction transmitted from
// side s.
func (l *Link) SetLoss(fromSide Side, loss DB) { l.extraLoss[fromSide] = loss }

// Reset restores the link to its healthy state.
func (l *Link) Reset() {
	l.tx = [2]DBm{l.tech.NominalTx, l.tech.NominalTx}
	l.extraLoss = [2]DB{}
}

// ResetTech reassigns the link's technology and restores the healthy state
// for it — equivalent to NewLink(tech) in place, so pooled simulation
// scratch can re-dress a recycled link for a different fabric.
func (l *Link) ResetTech(tech Technology) {
	l.tech = tech
	l.Reset()
}

// TxLow reports whether side s transmits below the technology threshold.
func (l *Link) TxLow(s Side) bool { return l.tx[s] < l.tech.TxThreshold }

// RxLow reports whether side s receives below the technology threshold.
func (l *Link) RxLow(s Side) bool { return l.RxPower(s) < l.tech.RxThreshold }

// Margin reports how far above the receive threshold side s is; negative
// margins mean the receiver is starved of light.
func (l *Link) Margin(s Side) DB { return DB(l.RxPower(s) - l.tech.RxThreshold) }

// CorruptionRateFromMargin maps an optical margin to a packet corruption
// rate. Receivers with positive margin decode essentially perfectly (below
// the 1e-8 lossy threshold of §2); as the margin goes negative the bit error
// rate — and with 64b/66b style coding, the frame corruption rate — climbs
// steeply, saturating at total loss. The exact curve is transceiver
// specific; this one reproduces the qualitative behaviour RAIL and §4
// describe: a sharp cliff below sensitivity.
func CorruptionRateFromMargin(margin DB) float64 {
	if margin >= 0 {
		// Healthy: comfortably below the lossy-link floor.
		return 1e-9 * math.Pow(10, -float64(margin)/3)
	}
	// Each dB below sensitivity costs roughly 1.5 orders of magnitude,
	// starting from the 1e-9 floor; the 1e-8 lossy threshold of §2 is
	// crossed about 0.67 dB below sensitivity, so a slightly starved
	// receiver shows low RxPower without yet being classified lossy.
	rate := 1e-9 * math.Pow(10, -1.5*float64(margin))
	if rate > 1 {
		return 1
	}
	return rate
}

// CorruptionRate reports the corruption rate experienced by frames received
// at side s, derived from that receiver's optical margin.
func (l *Link) CorruptionRate(s Side) float64 {
	return CorruptionRateFromMargin(l.Margin(s))
}
