package simclock

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	c := New()
	var order []int
	c.After(3*time.Second, func(time.Duration) { order = append(order, 3) })
	c.After(1*time.Second, func(time.Duration) { order = append(order, 1) })
	c.After(2*time.Second, func(time.Duration) { order = append(order, 2) })
	c.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v", order)
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("clock at %v, want 3s", c.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(time.Second, func(time.Duration) { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestSchedulingInPast(t *testing.T) {
	c := New()
	c.After(time.Second, func(time.Duration) {})
	c.Run()
	if _, err := c.At(0, func(time.Duration) {}); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
}

func TestCancel(t *testing.T) {
	c := New()
	fired := false
	h := c.After(time.Second, func(time.Duration) { fired = true })
	h.Cancel()
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEvery(t *testing.T) {
	c := New()
	ticks := 0
	h := c.Every(time.Minute, func(now time.Duration) {
		ticks++
		if ticks == 5 {
			// Cancelling from inside the callback must stop the series.
		}
	})
	c.RunUntil(5 * time.Minute)
	if ticks != 5 {
		t.Fatalf("got %d ticks in 5 minutes, want 5", ticks)
	}
	h.Cancel()
	c.RunUntil(10 * time.Minute)
	if ticks != 5 {
		t.Fatalf("cancelled Every still ticking: %d", ticks)
	}
}

func TestEveryCancelFromCallback(t *testing.T) {
	c := New()
	ticks := 0
	var h Handle
	h = c.Every(time.Minute, func(now time.Duration) {
		ticks++
		if ticks == 3 {
			h.Cancel()
		}
	})
	c.RunUntil(time.Hour)
	if ticks != 3 {
		t.Fatalf("got %d ticks, want 3 after self-cancel", ticks)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	c := New()
	c.After(time.Second, func(time.Duration) {})
	c.After(time.Hour, func(time.Duration) {})
	c.RunUntil(time.Minute)
	if c.Now() != time.Minute {
		t.Fatalf("clock at %v, want 1m", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	c := New()
	var seq []time.Duration
	c.After(time.Second, func(now time.Duration) {
		seq = append(seq, now)
		c.After(time.Second, func(now time.Duration) {
			seq = append(seq, now)
		})
	})
	c.Run()
	if len(seq) != 2 || seq[0] != time.Second || seq[1] != 2*time.Second {
		t.Fatalf("chained events: %v", seq)
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) should panic")
		}
	}()
	New().Every(0, func(time.Duration) {})
}

// TestClockReset pins that Reset rewinds to a fresh-clock state and that a
// reused clock replays the same schedule identically.
func TestClockReset(t *testing.T) {
	c := New()
	run := func() []time.Duration {
		var fired []time.Duration
		c.After(time.Second, func(now time.Duration) { fired = append(fired, now) })
		h := c.After(2*time.Second, func(now time.Duration) { fired = append(fired, now) })
		c.After(3*time.Second, func(now time.Duration) { fired = append(fired, now) })
		h.Cancel()
		c.RunUntil(10 * time.Second)
		return fired
	}
	first := run()
	if c.Now() != 10*time.Second {
		t.Fatalf("clock at %v before Reset", c.Now())
	}
	c.Reset()
	if c.Now() != 0 || c.Pending() != 0 {
		t.Fatalf("Reset left now=%v pending=%d", c.Now(), c.Pending())
	}
	second := run()
	if len(first) != 2 || len(second) != len(first) {
		t.Fatalf("replay fired %v, first run fired %v", second, first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay fired at %v, first run at %v", second[i], first[i])
		}
	}
}

// TestClockResetRecyclesItems pins the arena: after a warm-up cycle, a
// schedule/run/Reset round allocates no event items.
func TestClockResetRecyclesItems(t *testing.T) {
	c := New()
	fn := func(time.Duration) {}
	cycle := func() {
		for i := 0; i < 32; i++ {
			c.After(time.Duration(i)*time.Minute, fn)
		}
		c.Run()
		c.Reset()
	}
	cycle() // warm up the free list and heap capacity
	allocs := testing.AllocsPerRun(10, cycle)
	if allocs > 0 {
		t.Fatalf("warm schedule/run/Reset cycle allocates %v per run, want 0", allocs)
	}
}
