package simclock

import "time"

// WallClock abstracts absolute wall-clock reads for components that run both
// against real time (the deployed agent and its UDP/TCP clients) and against
// replayed virtual time (simulation harnesses). Production wiring injects
// Real; sim-replayable wiring injects a Virtual bound to the experiment's
// event clock, which keeps the nodeterminism analyzer's no-time.Now contract
// intact without blanket-allowlisting whole files (DESIGN.md §8).
type WallClock interface {
	// Now reports the current absolute time.
	Now() time.Time
}

// Real reads the system clock.
type Real struct{}

// Now returns the system time. This is the one sanctioned wall-clock read on
// the deployment path; everything else takes a WallClock.
func (Real) Now() time.Time {
	//lint:allow nodeterminism Real is the audited wall-clock source; sim-replayable code injects Virtual instead
	return time.Now()
}

// Virtual adapts an event Clock to WallClock: the virtual offset is applied
// to a fixed epoch, so replaying the same event sequence yields the same
// timestamps on every run.
type Virtual struct {
	// Clock supplies the virtual offset.
	Clock *Clock
	// Epoch anchors offset zero. For pure bookkeeping (timestamps compared
	// only with each other) the zero time is a fine epoch; when the clock
	// feeds Set*Deadline on real sockets (ctlplane, snmplite), anchor it
	// near real now — the kernel evaluates deadlines against real time, so
	// a zero epoch makes every deadline already expired.
	Epoch time.Time
}

// Now returns the epoch advanced by the clock's virtual offset.
func (v Virtual) Now() time.Time { return v.Epoch.Add(v.Clock.Now()) }
