// Package simclock implements the discrete-event simulation core that drives
// every trace-based experiment in this repository: a virtual clock, an event
// heap ordered by firing time, and helpers for periodic tasks such as the
// 15-minute telemetry polls the paper's monitoring system performs.
//
// The simulator is single-goroutine by design: all experiment state is
// mutated from event callbacks in deterministic order, which keeps the
// regenerated tables and figures reproducible.
package simclock

import (
	"container/heap"
	"errors"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now time.Duration)

type item struct {
	at   time.Duration
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	fn   Event
	dead bool
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ it *item }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.it != nil {
		h.it.dead = true
	}
}

// Clock is a virtual clock with an event queue.
//
// A Clock recycles event items across Reset: every item popped by Step is
// parked and handed back to At by the next simulation run, so a reused
// Clock's event path allocates nothing in steady state. Items are only
// recycled wholesale at Reset — never while their Handles could still be
// cancelled — so Cancel stays safe for the whole run that created the
// Handle.
type Clock struct {
	now time.Duration
	q   eventHeap
	seq uint64
	// free holds recycled items available to At; spent holds items popped by
	// Step since the last Reset, parked until Reset moves them to free.
	free  []*item
	spent []*item
}

// New returns a Clock at virtual time zero.
func New() *Clock { return &Clock{} }

// Reset rewinds the clock to virtual time zero with an empty queue,
// recycling every event item (pending and fired) for reuse by subsequent
// scheduling. Handles obtained before Reset are invalidated: cancelling one
// afterwards could mark a recycled item dead and silently drop an unrelated
// future event, so callers must drop all Handles before resetting — the
// discipline sim.Scratch follows between scenarios.
func (c *Clock) Reset() {
	for _, it := range c.q {
		it.fn = nil
		c.free = append(c.free, it)
	}
	c.q = c.q[:0]
	c.free = append(c.free, c.spent...)
	c.spent = c.spent[:0]
	c.now = 0
	c.seq = 0
}

// newItem returns a zeroed item, recycled when the free list has one.
func (c *Clock) newItem() *item {
	if n := len(c.free); n > 0 {
		it := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		*it = item{}
		return it
	}
	return &item{}
}

// Now reports the current virtual time as an offset from the simulation
// start.
func (c *Clock) Now() time.Duration { return c.now }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// is an error.
func (c *Clock) At(at time.Duration, fn Event) (Handle, error) {
	if at < c.now {
		return Handle{}, errors.New("simclock: schedule in the past")
	}
	it := c.newItem()
	it.at, it.seq, it.fn = at, c.seq, fn
	c.seq++
	heap.Push(&c.q, it)
	return Handle{it: it}, nil
}

// After schedules fn to run d after the current virtual time.
func (c *Clock) After(d time.Duration, fn Event) Handle {
	h, err := c.At(c.now+d, fn)
	if err != nil {
		// c.now+d < c.now only on overflow; treat as immediate.
		h, _ = c.At(c.now, fn)
	}
	return h
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Handle is cancelled or the simulation ends.
func (c *Clock) Every(period time.Duration, fn Event) Handle {
	if period <= 0 {
		panic("simclock: non-positive period")
	}
	// The outer item stands for the whole series so a single Cancel stops
	// future firings even though each firing schedules the next one.
	series := &item{}
	var tick Event
	tick = func(now time.Duration) {
		if series.dead {
			return
		}
		fn(now)
		if series.dead {
			return
		}
		c.After(period, tick)
	}
	c.After(period, tick)
	return Handle{it: series}
}

// Step runs the earliest pending event, advancing the clock to its firing
// time. It reports false when the queue is empty.
func (c *Clock) Step() bool {
	for c.q.Len() > 0 {
		it := heap.Pop(&c.q).(*item)
		if it.dead {
			// Park the cancelled item too: its Handle can still be
			// re-cancelled (a no-op on a dead item), so recycling waits for
			// Reset like everything else.
			it.fn = nil
			c.spent = append(c.spent, it)
			continue
		}
		c.now = it.at
		// Park before firing; Cancel on an already-fired Handle stays a
		// harmless dead-mark because the item is out of the queue and only
		// recycled at the next Reset.
		fn := it.fn
		it.fn = nil
		c.spent = append(c.spent, it)
		fn(c.now)
		return true
	}
	return false
}

// RunUntil processes events in order until the queue is empty or the next
// event would fire after deadline, then advances the clock to deadline.
func (c *Clock) RunUntil(deadline time.Duration) {
	for c.q.Len() > 0 {
		// Peek: find the earliest live event.
		it := c.q[0]
		if it.dead {
			heap.Pop(&c.q)
			continue
		}
		if it.at > deadline {
			break
		}
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// Run processes all pending events to completion.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// Pending reports the number of events (including cancelled but not yet
// reaped ones) in the queue; useful in tests.
func (c *Clock) Pending() int {
	n := 0
	for _, it := range c.q {
		if !it.dead {
			n++
		}
	}
	return n
}
