package topology

// Scoped path counting: evaluate valley-free path counts only over the
// upward closure of a set of ToRs.
//
// A ToR's count depends only on the counts of switches reachable by walking
// upward from it (its "cone"), so a feasibility check for a handful of ToRs
// never needs to touch the rest of the data center. The paper's §5.1
// refinement ("check only the downstream of l") and §8's segmentation
// argument both rest on this locality; CountScoped turns it into an
// O(cone) sweep instead of the O(|V|+|E|) full recount.
//
// The closure is discovered per call with epoch-marked scratch (no
// allocation after the first call) and evaluated top-down by stage, exactly
// like the full sweep, so scoped counts are bit-identical to the
// corresponding entries of Count for the same disabled set — a property the
// differential fuzz tests assert.

// CountScoped computes path counts for every switch in the upward closure
// of tors, under the given disabled predicate, and returns a slice indexed
// by SwitchID. Only the entries of switches inside the closure (which
// includes tors themselves) are valid; all other entries are stale. The
// returned slice is reused by subsequent CountScoped calls.
//
// A nil disabled means all links are active.
func (pc *PathCounter) CountScoped(tors []SwitchID, disabled DisabledFunc) []int64 {
	pc.collectClosure(tors)
	t := pc.t
	top := Stage(t.Stages() - 1)
	for st := int(top); st >= 0; st-- {
		for _, id := range pc.stageBucket[st] {
			if Stage(st) == top {
				pc.scoped[id] = 1
				continue
			}
			var n int64
			for _, l := range t.Switch(id).Uplinks {
				if disabled != nil && disabled(l) {
					continue
				}
				n += pc.scoped[t.Link(l).Upper]
			}
			pc.scoped[id] = n
		}
	}
	return pc.scoped
}

// CountScopedSet is CountScoped with the disabled set expressed as the
// union of two bitsets (either may be nil): the persistent disabled set and
// a tentative extra overlay. This is the branch-predictable hot-path form
// used by the core package's feasibility checks.
func (pc *PathCounter) CountScopedSet(tors []SwitchID, disabled, extra *LinkSet) []int64 {
	pc.collectClosure(tors)
	t := pc.t
	top := Stage(t.Stages() - 1)
	for st := int(top); st >= 0; st-- {
		for _, id := range pc.stageBucket[st] {
			if Stage(st) == top {
				pc.scoped[id] = 1
				continue
			}
			var n int64
			for _, l := range t.Switch(id).Uplinks {
				if disabled.Has(l) || extra.Has(l) {
					continue
				}
				n += pc.scoped[t.Link(l).Upper]
			}
			pc.scoped[id] = n
		}
	}
	return pc.scoped
}

// ScopeSize reports how many switches the upward closure of tors contains —
// the work a scoped count performs. Exposed for instrumentation and tests.
func (pc *PathCounter) ScopeSize(tors []SwitchID) int {
	pc.collectClosure(tors)
	n := 0
	for _, b := range pc.stageBucket {
		n += len(b)
	}
	return n
}

// collectClosure fills pc.stageBucket with the upward closure of tors,
// bucketed by stage, using epoch-marked membership so repeated calls do not
// allocate. The closure follows every uplink regardless of disabled state:
// membership is structural, values are what depend on the disabled set.
func (pc *PathCounter) collectClosure(tors []SwitchID) {
	t := pc.t
	pc.markEpoch++
	e := pc.markEpoch
	if e == 0 { // wrapped: invalidate all stale marks
		for i := range pc.mark {
			pc.mark[i] = 0
		}
		pc.markEpoch = 1
		e = 1
	}
	for st := range pc.stageBucket {
		pc.stageBucket[st] = pc.stageBucket[st][:0]
	}
	for _, tor := range tors {
		if pc.mark[tor] != e {
			pc.mark[tor] = e
			sw := t.Switch(tor)
			pc.stageBucket[sw.Stage] = append(pc.stageBucket[sw.Stage], tor)
		}
	}
	// Walk upward stage by stage; a switch's uplink partners are always one
	// stage higher, so the per-stage buckets are completed bottom-up before
	// being consumed top-down.
	for st := 0; st < len(pc.stageBucket)-1; st++ {
		for _, id := range pc.stageBucket[st] {
			for _, l := range t.Switch(id).Uplinks {
				up := t.Link(l).Upper
				if pc.mark[up] != e {
					pc.mark[up] = e
					pc.stageBucket[st+1] = append(pc.stageBucket[st+1], up)
				}
			}
		}
	}
}
