package topology

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomTopology builds a random multi-stage topology from the seed:
// 2–4 stages, 1–6 switches per stage, every non-top switch gets 1 or more
// uplinks to random switches one stage above. The result always passes
// Build's validation, so fuzzers can explore freely.
func randomTopology(tb testing.TB, seed int64) *Topology {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	stages := 2 + rng.Intn(3)
	perStage := make([][]SwitchID, stages)
	b := NewBuilder()
	for st := 0; st < stages; st++ {
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			perStage[st] = append(perStage[st],
				b.AddSwitch(fmt.Sprintf("s%d-%d", st, i), Stage(st), 0))
		}
	}
	for st := 0; st < stages-1; st++ {
		uppers := perStage[st+1]
		for _, lo := range perStage[st] {
			// Guaranteed uplink plus a few extras (possibly parallel links,
			// which the counting engines must handle).
			nup := 1 + rng.Intn(3)
			for k := 0; k < nup; k++ {
				b.AddLink(lo, uppers[rng.Intn(len(uppers))], -1)
			}
		}
	}
	topo, err := b.Build()
	if err != nil {
		tb.Fatalf("randomTopology(%d): %v", seed, err)
	}
	return topo
}

// randomLinkSet picks each link with probability p.
func randomLinkSet(t *Topology, rng *rand.Rand, p float64) *LinkSet {
	s := NewLinkSet(t.NumLinks())
	for l := 0; l < t.NumLinks(); l++ {
		if rng.Float64() < p {
			s.Add(LinkID(l))
		}
	}
	return s
}
