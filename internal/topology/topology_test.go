package topology

import (
	"bytes"
	"strings"
	"testing"
)

// buildFig10 constructs the example of Figure 10: ToR T with five uplinks to
// aggregation switches A..E, each of which has five uplinks to distinct
// spine switches. It returns the topology, T's uplinks indexed by agg, and
// the agg uplink sets.
func buildFig10(t *testing.T) (*Topology, []LinkID, [][]LinkID) {
	t.Helper()
	b := NewBuilder()
	spines := make([]SwitchID, 25)
	for i := range spines {
		spines[i] = b.AddSwitch(spineName(i), 2, -1)
	}
	aggs := make([]SwitchID, 5)
	for i := range aggs {
		aggs[i] = b.AddSwitch(string(rune('A'+i)), 1, 0)
	}
	tor := b.AddSwitch("T", 0, 0)
	torUp := make([]LinkID, 5)
	aggUp := make([][]LinkID, 5)
	for i, agg := range aggs {
		torUp[i] = b.AddLink(tor, agg, -1)
		aggUp[i] = make([]LinkID, 5)
		for j := 0; j < 5; j++ {
			aggUp[i][j] = b.AddLink(agg, spines[i*5+j], -1)
		}
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo, torUp, aggUp
}

func spineName(i int) string {
	return "spine" + string(rune('a'+i/5)) + string(rune('0'+i%5))
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	b.AddSwitch("x", 0, 0)
	b.AddSwitch("x", 0, 0) // duplicate
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate switch name accepted")
	}

	b = NewBuilder()
	a := b.AddSwitch("a", 0, 0)
	c := b.AddSwitch("c", 2, -1)
	b.AddLink(a, c, -1) // skips a stage
	if _, err := b.Build(); err == nil {
		t.Fatal("non-adjacent link accepted")
	}

	b = NewBuilder()
	b.AddSwitch("lonely", 0, 0)
	b.AddSwitch("top", 1, -1)
	if _, err := b.Build(); err == nil {
		t.Fatal("ToR without uplinks accepted")
	}

	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("empty topology accepted")
	}
}

func TestFig10Structure(t *testing.T) {
	topo, torUp, aggUp := buildFig10(t)
	if topo.NumSwitches() != 31 {
		t.Fatalf("switches = %d, want 31", topo.NumSwitches())
	}
	if topo.NumLinks() != 30 {
		t.Fatalf("links = %d, want 30", topo.NumLinks())
	}
	if topo.Stages() != 3 || topo.Tiers() != 2 {
		t.Fatalf("stages = %d tiers = %d", topo.Stages(), topo.Tiers())
	}
	if len(topo.ToRs()) != 1 || len(topo.Spines()) != 25 {
		t.Fatalf("tors = %d spines = %d", len(topo.ToRs()), len(topo.Spines()))
	}
	tor := topo.ToRs()[0]
	if got := len(topo.Switch(tor).Uplinks); got != 5 {
		t.Fatalf("ToR uplinks = %d", got)
	}
	_ = torUp
	_ = aggUp
}

func TestPathCountingFig10(t *testing.T) {
	topo, torUp, aggUp := buildFig10(t)
	pc := NewPathCounter(topo)
	tor := topo.ToRs()[0]
	total := pc.Total()
	if total[tor] != 25 {
		t.Fatalf("total ToR paths = %d, want 25", total[tor])
	}

	// Figure 10(a): disable 2 uplinks on T... actually the paper's (a)
	// disables 2 of every switch's 5 uplinks: 8 links total (T keeps
	// 3 uplinks, three aggs lose 2 spine links... ). We reproduce the
	// arithmetic directly: T with 3 uplinks to aggs that each keep 3
	// spine uplinks gives 9 of 25 paths.
	disabled := map[LinkID]bool{
		torUp[0]: true, torUp[1]: true,
		aggUp[2][0]: true, aggUp[2][1]: true,
		aggUp[3][0]: true, aggUp[3][1]: true,
		aggUp[4][0]: true, aggUp[4][1]: true,
	}
	counts := pc.Count(func(l LinkID) bool { return disabled[l] })
	if counts[tor] != 9 {
		t.Fatalf("paths after switch-local disabling = %d, want 9", counts[tor])
	}
	frac := pc.ToRFractions(func(l LinkID) bool { return disabled[l] })
	if got := frac[tor]; got != 9.0/25.0 {
		t.Fatalf("fraction = %v, want 0.36", got)
	}
}

func TestWorstAndMeanToRFraction(t *testing.T) {
	topo, err := NewClos(ClosConfig{Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 2})
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPathCounter(topo)
	if w := pc.WorstToRFraction(nil); w != 1 {
		t.Fatalf("worst fraction with no disabling = %v", w)
	}
	if m := pc.MeanToRFraction(nil); m != 1 {
		t.Fatalf("mean fraction with no disabling = %v", m)
	}
	// Disable one ToR's single uplink to its first agg.
	tor := topo.ToRs()[0]
	l := topo.Switch(tor).Uplinks[0]
	w := pc.WorstToRFraction(func(id LinkID) bool { return id == l })
	if w >= 1 || w <= 0 {
		t.Fatalf("worst fraction = %v, want in (0,1)", w)
	}
}

func TestDownstreamToRs(t *testing.T) {
	topo, torUp, aggUp := buildFig10(t)
	tor := topo.ToRs()[0]
	for _, l := range torUp {
		tors := topo.DownstreamToRs(l)
		if len(tors) != 1 || tors[0] != tor {
			t.Fatalf("DownstreamToRs(torUp) = %v", tors)
		}
	}
	tors := topo.DownstreamToRs(aggUp[0][0])
	if len(tors) != 1 || tors[0] != tor {
		t.Fatalf("DownstreamToRs(aggUp) = %v", tors)
	}
}

func TestUpstreamLinks(t *testing.T) {
	topo, _, _ := buildFig10(t)
	tor := topo.ToRs()[0]
	up := topo.UpstreamLinks([]SwitchID{tor})
	if len(up) != topo.NumLinks() {
		t.Fatalf("upstream of the only ToR covers %d links, want all %d", len(up), topo.NumLinks())
	}
	// No ToRs means no upstream links.
	if got := topo.UpstreamLinks(nil); len(got) != 0 {
		t.Fatalf("upstream of empty set = %d links", len(got))
	}
}

func TestUpstreamLinksPartial(t *testing.T) {
	topo, err := NewClos(ClosConfig{Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 2})
	if err != nil {
		t.Fatal(err)
	}
	tor := topo.ToRs()[0]
	up := topo.UpstreamLinks([]SwitchID{tor})
	// The other pod's ToR uplinks must not be upstream of this ToR.
	otherTor := topo.ToRs()[len(topo.ToRs())-1]
	if topo.Switch(otherTor).Pod == topo.Switch(tor).Pod {
		t.Fatal("test assumes ToRs in different pods")
	}
	for _, l := range topo.Switch(otherTor).Uplinks {
		if up[l] {
			t.Fatalf("link %d of a different pod's ToR marked upstream", l)
		}
	}
}

func TestOpposite(t *testing.T) {
	topo, torUp, _ := buildFig10(t)
	lk := topo.Link(torUp[0])
	if topo.Opposite(torUp[0], lk.Lower) != lk.Upper {
		t.Fatal("Opposite(lower) != upper")
	}
	if topo.Opposite(torUp[0], lk.Upper) != lk.Lower {
		t.Fatal("Opposite(upper) != lower")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	topo, err := NewClos(ClosConfig{Pods: 2, ToRsPerPod: 3, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 2, BreakoutSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := topo.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSwitches() != topo.NumSwitches() || got.NumLinks() != topo.NumLinks() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			got.NumSwitches(), got.NumLinks(), topo.NumSwitches(), topo.NumLinks())
	}
	// Path counts must be identical.
	a := NewPathCounter(topo).Total()
	b := NewPathCounter(got).Total()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("path counts diverge at switch %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Read(bytes.NewBufferString(`{"switches":[{"name":"a","stage":0,"pod":0}],"links":[{"lower":"a","upper":"ghost","breakout_group":-1}]}`)); err == nil {
		t.Fatal("unknown switch reference accepted")
	}
}

func TestSameBreakout(t *testing.T) {
	topo, err := NewClos(ClosConfig{Pods: 1, ToRsPerPod: 1, AggsPerPod: 4, Spines: 8, SpineUplinksPerAgg: 4, BreakoutSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Breakout cables sit at the aggregation→spine boundary: each agg's
	// four spine uplinks share a cable.
	agg, ok := topo.SwitchByName("agg-0-0")
	if !ok {
		t.Fatal("agg-0-0 missing")
	}
	l := topo.Switch(agg).Uplinks[0]
	group := topo.SameBreakout(l)
	if len(group) != 4 {
		t.Fatalf("breakout group size = %d, want 4", len(group))
	}
	// ToR uplinks are never grouped.
	tor := topo.ToRs()[0]
	lt := topo.Switch(tor).Uplinks[0]
	if got := topo.SameBreakout(lt); len(got) != 1 || got[0] != lt {
		t.Fatalf("ToR uplink SameBreakout = %v, want singleton", got)
	}
	// A link without any grouping is alone.
	topo2, err := NewClos(ClosConfig{Pods: 1, ToRsPerPod: 1, AggsPerPod: 4, Spines: 8, SpineUplinksPerAgg: 4})
	if err != nil {
		t.Fatal(err)
	}
	l2 := topo2.Switch(topo2.ToRs()[0]).Uplinks[0]
	if got := topo2.SameBreakout(l2); len(got) != 1 || got[0] != l2 {
		t.Fatalf("ungrouped SameBreakout = %v", got)
	}
}

func TestWriteDOT(t *testing.T) {
	topo, err := NewClos(ClosConfig{Pods: 1, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2, SpineUplinksPerAgg: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := topo.WriteDOT(&buf, func(l LinkID) bool { return l == 0 }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph dcn {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a DOT document:\n%s", out)
	}
	if strings.Count(out, "--") != topo.NumLinks() {
		t.Fatalf("edge count %d, want %d", strings.Count(out, "--"), topo.NumLinks())
	}
	if strings.Count(out, "style=dashed") != 1 {
		t.Fatal("disabled link not marked")
	}
	if strings.Count(out, "rank=same") != topo.Stages() {
		t.Fatal("stage ranks missing")
	}
}
