package topology

import (
	"testing"
	"testing/quick"
)

func TestClosConfigValidate(t *testing.T) {
	good := ClosConfig{Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []ClosConfig{
		{},
		{Pods: 1, ToRsPerPod: 1, AggsPerPod: 1, Spines: 1},                                          // zero uplinks
		{Pods: 1, ToRsPerPod: 1, AggsPerPod: 1, Spines: 1, SpineUplinksPerAgg: 2},                   // more uplinks than spines
		{Pods: 1, ToRsPerPod: 1, AggsPerPod: 1, Spines: 1, SpineUplinksPerAgg: 1, BreakoutSize: -1}, // negative breakout
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestClosSizes(t *testing.T) {
	cfg := ClosConfig{Pods: 4, ToRsPerPod: 8, AggsPerPod: 4, Spines: 16, SpineUplinksPerAgg: 8}
	topo, err := NewClos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSwitches := 16 /* spines */ + 4*4 /* aggs */ + 4*8 /* tors */
	if topo.NumSwitches() != wantSwitches {
		t.Fatalf("switches = %d, want %d", topo.NumSwitches(), wantSwitches)
	}
	if topo.NumLinks() != cfg.NumLinks() {
		t.Fatalf("links = %d, want %d", topo.NumLinks(), cfg.NumLinks())
	}
	if len(topo.ToRs()) != 32 {
		t.Fatalf("tors = %d, want 32", len(topo.ToRs()))
	}
	// Every ToR has AggsPerPod uplinks and total paths AggsPerPod*SpineUplinksPerAgg.
	pc := NewPathCounter(topo)
	total := pc.Total()
	for _, tor := range topo.ToRs() {
		if got := len(topo.Switch(tor).Uplinks); got != cfg.AggsPerPod {
			t.Fatalf("ToR uplinks = %d, want %d", got, cfg.AggsPerPod)
		}
		want := int64(cfg.AggsPerPod * cfg.SpineUplinksPerAgg)
		if total[tor] != want {
			t.Fatalf("ToR total paths = %d, want %d", total[tor], want)
		}
	}
}

func TestClosPathsProperty(t *testing.T) {
	// For any valid 3-stage Clos, every ToR's total path count equals
	// AggsPerPod * SpineUplinksPerAgg.
	f := func(pods, tors, aggs, uplinks uint8) bool {
		cfg := ClosConfig{
			Pods:               int(pods%3) + 1,
			ToRsPerPod:         int(tors%4) + 1,
			AggsPerPod:         int(aggs%4) + 1,
			SpineUplinksPerAgg: int(uplinks%4) + 1,
		}
		cfg.Spines = cfg.SpineUplinksPerAgg * 2
		topo, err := NewClos(cfg)
		if err != nil {
			return false
		}
		pc := NewPathCounter(topo)
		total := pc.Total()
		want := int64(cfg.AggsPerPod * cfg.SpineUplinksPerAgg)
		for _, tor := range topo.ToRs() {
			if total[tor] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFatTree(t *testing.T) {
	topo, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 4 cores, 8 aggs, 8 tors; links: 8 tors*2 + 8 aggs*2 = 32.
	if topo.NumSwitches() != 20 {
		t.Fatalf("switches = %d, want 20", topo.NumSwitches())
	}
	if topo.NumLinks() != 32 {
		t.Fatalf("links = %d, want 32", topo.NumLinks())
	}
	pc := NewPathCounter(topo)
	total := pc.Total()
	for _, tor := range topo.ToRs() {
		if total[tor] != 4 { // (k/2)^2
			t.Fatalf("fat-tree ToR paths = %d, want 4", total[tor])
		}
	}
	if _, err := NewFatTree(3); err == nil {
		t.Fatal("odd arity accepted")
	}
	if _, err := NewFatTree(0); err == nil {
		t.Fatal("zero arity accepted")
	}
}

func TestMultiTier(t *testing.T) {
	topo, err := NewMultiTier([]int{8, 4, 4, 2}, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Tiers() != 3 {
		t.Fatalf("tiers = %d, want 3", topo.Tiers())
	}
	pc := NewPathCounter(topo)
	total := pc.Total()
	for _, tor := range topo.ToRs() {
		if total[tor] != 8 { // 2*2*2
			t.Fatalf("multi-tier ToR paths = %d, want 8", total[tor])
		}
	}
	if _, err := NewMultiTier([]int{4}, nil); err == nil {
		t.Fatal("single stage accepted")
	}
	if _, err := NewMultiTier([]int{4, 4}, []int{8}); err == nil {
		t.Fatal("fanout exceeding next stage accepted")
	}
	if _, err := NewMultiTier([]int{4, 0}, []int{1}); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestBreakoutGroupsDistinctAcrossSwitches(t *testing.T) {
	topo, err := NewClos(ClosConfig{Pods: 2, ToRsPerPod: 2, AggsPerPod: 4, Spines: 8, SpineUplinksPerAgg: 4, BreakoutSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Group ids on different switches must not collide within SameBreakout:
	// each returned group must only contain links of one switch pair set.
	topo.Links(func(l *Link) {
		group := topo.SameBreakout(l.ID)
		for _, g := range group {
			gl := topo.Link(g)
			if gl.BreakoutGroup != l.BreakoutGroup {
				t.Fatalf("mixed breakout groups: link %d (g%d) with link %d (g%d)",
					l.ID, l.BreakoutGroup, g, gl.BreakoutGroup)
			}
		}
	})
}
