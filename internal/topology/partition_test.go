package topology

import (
	"slices"
	"testing"

	"corropt/internal/rngutil"
)

func testClos(t *testing.T) *Topology {
	t.Helper()
	topo, err := NewClos(ClosConfig{
		Pods:               4,
		ToRsPerPod:         8,
		AggsPerPod:         4,
		Spines:             16,
		SpineUplinksPerAgg: 4,
		BreakoutSize:       4,
	})
	if err != nil {
		t.Fatalf("NewClos: %v", err)
	}
	return topo
}

// TestPartitionClosPods pins the headline structural fact: on a Clos fabric
// the segments are exactly the pods.
func TestPartitionClosPods(t *testing.T) {
	topo := testClos(t)
	segs := topo.Partition()
	if len(segs) != 4 {
		t.Fatalf("got %d segments, want 4 (one per pod)", len(segs))
	}
	linkTotal, torTotal := 0, 0
	seenLinks := make(map[LinkID]int)
	seenToRs := make(map[SwitchID]int)
	for si, seg := range segs {
		linkTotal += len(seg.Links)
		torTotal += len(seg.ToRs)
		if len(seg.ToRs) != 8 {
			t.Errorf("segment %d: %d ToRs, want 8", si, len(seg.ToRs))
		}
		if !slices.IsSorted(seg.Links) || !slices.IsSorted(seg.ToRs) {
			t.Errorf("segment %d: links/tors not ascending", si)
		}
		pod := -2
		for _, l := range seg.Links {
			if prev, dup := seenLinks[l]; dup {
				t.Fatalf("link %d in segments %d and %d", l, prev, si)
			}
			seenLinks[l] = si
			lower := topo.Switch(topo.Link(l).Lower)
			if pod == -2 {
				pod = lower.Pod
			} else if lower.Pod != pod {
				t.Errorf("segment %d spans pods %d and %d", si, pod, lower.Pod)
			}
		}
		for _, tor := range seg.ToRs {
			if prev, dup := seenToRs[tor]; dup {
				t.Fatalf("ToR %d in segments %d and %d", tor, prev, si)
			}
			seenToRs[tor] = si
			if topo.Switch(tor).Pod != pod {
				t.Errorf("segment %d: ToR %d outside pod %d", si, tor, pod)
			}
		}
	}
	if linkTotal != topo.NumLinks() {
		t.Errorf("segments cover %d links, topology has %d", linkTotal, topo.NumLinks())
	}
	if torTotal != len(topo.ToRs()) {
		t.Errorf("segments cover %d ToRs, topology has %d", torTotal, len(topo.ToRs()))
	}
}

// TestPartitionConeClosed verifies the boundary invariant directly: every
// ToR's upstream cone is contained in its segment's link set.
func TestPartitionConeClosed(t *testing.T) {
	for name, topo := range map[string]*Topology{
		"clos":      testClos(t),
		"multitier": testMultiTierPartition(t),
	} {
		segs := topo.Partition()
		var w UpstreamWalker
		cone := NewLinkSet(topo.NumLinks())
		for si, seg := range segs {
			inSeg := NewLinkSet(topo.NumLinks())
			for _, l := range seg.Links {
				inSeg.Add(l)
			}
			for _, tor := range seg.ToRs {
				cone.Clear()
				w.FromToR(topo, tor, cone)
				cone.Each(func(l LinkID) {
					if !inSeg.Has(l) {
						t.Errorf("%s: segment %d: ToR %d cone link %d outside segment", name, si, tor, l)
					}
				})
			}
		}
	}
}

func testMultiTierPartition(t *testing.T) *Topology {
	t.Helper()
	topo, err := NewMultiTier([]int{8, 4, 4, 2}, []int{2, 2, 2})
	if err != nil {
		t.Fatalf("NewMultiTier: %v", err)
	}
	return topo
}

// TestPartitionOrphanLinks builds a topology with a switch chain that has no
// ToR below it and checks the orphan links still land in exactly one
// segment, without acquiring ToRs.
func TestPartitionOrphanLinks(t *testing.T) {
	b := NewBuilder()
	tor := b.AddSwitch("tor", 0, 0)
	agg := b.AddSwitch("agg", 1, 0)
	orphan := b.AddSwitch("orphan-agg", 1, 1) // no downlinks: ToR-less
	spine := b.AddSwitch("spine", 2, -1)
	b.AddLink(tor, agg, -1)
	b.AddLink(agg, spine, -1)
	ol := b.AddLink(orphan, spine, -1)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	segs := topo.Partition()
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	var orphanSeg *Segment
	for i := range segs {
		if slices.Contains(segs[i].Links, ol) {
			orphanSeg = &segs[i]
		}
	}
	if orphanSeg == nil {
		t.Fatalf("orphan link %d in no segment", ol)
	}
	if len(orphanSeg.ToRs) != 0 || len(orphanSeg.Links) != 1 {
		t.Errorf("orphan segment = %+v, want 1 link and no ToRs", *orphanSeg)
	}
}

// TestPartitionNoLinks covers the degenerate single-stage topology.
func TestPartitionNoLinks(t *testing.T) {
	b := NewBuilder()
	b.AddSwitch("lone", 0, 0)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	segs := topo.Partition()
	if len(segs) != 1 || len(segs[0].Links) != 0 || len(segs[0].ToRs) != 1 {
		t.Fatalf("got %+v, want one linkless segment with one ToR", segs)
	}
}

// TestSegmentGraphCountsMatch is the differential that licenses sharding:
// for random disabled subsets drawn inside one segment, per-ToR valley-free
// path counts in the induced subgraph equal the counts in the full topology
// with the same (source-id) links disabled.
func TestSegmentGraphCountsMatch(t *testing.T) {
	for name, topo := range map[string]*Topology{
		"clos":      testClos(t),
		"multitier": testMultiTierPartition(t),
	} {
		rng := rngutil.New(7).Split(name)
		segs := topo.Partition()
		full := NewPathCounter(topo)
		disabled := NewLinkSet(topo.NumLinks())
		for si, seg := range segs {
			sg, err := topo.SegmentGraph([]Segment{seg})
			if err != nil {
				t.Fatalf("%s: SegmentGraph(%d): %v", name, si, err)
			}
			if got := sg.Topo.NumLinks(); got != len(seg.Links) {
				t.Fatalf("%s: segment %d graph has %d links, want %d", name, si, got, len(seg.Links))
			}
			sub := NewPathCounter(sg.Topo)
			for trial := 0; trial < 8; trial++ {
				disabled.Clear()
				subDisabled := NewLinkSet(sg.Topo.NumLinks())
				for local, src := range sg.Links {
					if rng.Bool(0.3) {
						disabled.Add(src)
						subDisabled.Add(LinkID(local))
					}
				}
				fullCounts := full.Count(disabled.Func())
				subCounts := sub.Count(subDisabled.Func())
				for localToR, subSw := range sg.Switches {
					sw := topo.Switch(subSw)
					if sw.Stage != 0 {
						continue
					}
					if fullCounts[subSw] != subCounts[localToR] {
						t.Fatalf("%s: segment %d trial %d: ToR %s count %d in subgraph, %d in full topology",
							name, si, trial, sw.Name, subCounts[localToR], fullCounts[subSw])
					}
				}
			}
		}
	}
}

// TestSegmentGraphMapping checks the id-mapping tables and metadata carry
// over: ascending maps, preserved names/stages/pods/breakout groups.
func TestSegmentGraphMapping(t *testing.T) {
	topo := testClos(t)
	segs := topo.Partition()
	sg, err := topo.SegmentGraph(segs[1:3])
	if err != nil {
		t.Fatalf("SegmentGraph: %v", err)
	}
	if !slices.IsSorted(sg.Links) || !slices.IsSorted(sg.Switches) {
		t.Fatalf("mapping tables not ascending")
	}
	if want := len(segs[1].Links) + len(segs[2].Links); sg.Topo.NumLinks() != want {
		t.Fatalf("got %d links, want %d", sg.Topo.NumLinks(), want)
	}
	for local, src := range sg.Switches {
		got, want := sg.Topo.Switch(SwitchID(local)), topo.Switch(src)
		if got.Name != want.Name || got.Stage != want.Stage || got.Pod != want.Pod {
			t.Errorf("switch %d: got (%s,%d,%d), want (%s,%d,%d)",
				local, got.Name, got.Stage, got.Pod, want.Name, want.Stage, want.Pod)
		}
	}
	for local, src := range sg.Links {
		got, want := sg.Topo.Link(LinkID(local)), topo.Link(src)
		if sg.Switches[got.Lower] != want.Lower || sg.Switches[got.Upper] != want.Upper {
			t.Errorf("link %d: endpoint mapping mismatch", local)
		}
		if got.BreakoutGroup != want.BreakoutGroup {
			t.Errorf("link %d: breakout group %d, want %d", local, got.BreakoutGroup, want.BreakoutGroup)
		}
	}
	if _, err := topo.SegmentGraph(nil); err == nil {
		t.Fatalf("SegmentGraph(nil) succeeded, want error")
	}
}
