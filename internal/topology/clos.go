package topology

import "fmt"

// ClosConfig parameterizes a three-stage Clos network (ToR → aggregation →
// spine), the design the paper's data centers use and its evaluation
// simulates at O(15K) and O(35K) links.
type ClosConfig struct {
	// Pods is the number of pods.
	Pods int
	// ToRsPerPod is the number of top-of-rack switches per pod.
	ToRsPerPod int
	// AggsPerPod is the number of aggregation switches per pod. Every ToR
	// connects to every aggregation switch in its pod.
	AggsPerPod int
	// Spines is the number of spine switches.
	Spines int
	// SpineUplinksPerAgg is how many spine switches each aggregation switch
	// connects to (striped across the spine).
	SpineUplinksPerAgg int
	// BreakoutSize, if positive, groups each aggregation switch's spine
	// uplinks into breakout cables of this many links (root cause 5's
	// shared component). Breakout cables split a high-speed port into
	// several low-speed ones and therefore sit between switches of
	// different port speeds — the aggregation↔spine boundary — so ToR
	// uplinks are never grouped. Zero disables breakout grouping.
	BreakoutSize int
}

// Validate checks the configuration for consistency.
func (c ClosConfig) Validate() error {
	switch {
	case c.Pods <= 0 || c.ToRsPerPod <= 0 || c.AggsPerPod <= 0 || c.Spines <= 0:
		return fmt.Errorf("topology: all Clos dimensions must be positive, got %+v", c)
	case c.SpineUplinksPerAgg <= 0:
		return fmt.Errorf("topology: SpineUplinksPerAgg must be positive, got %d", c.SpineUplinksPerAgg)
	case c.SpineUplinksPerAgg > c.Spines:
		return fmt.Errorf("topology: SpineUplinksPerAgg %d exceeds Spines %d", c.SpineUplinksPerAgg, c.Spines)
	case c.BreakoutSize < 0:
		return fmt.Errorf("topology: negative BreakoutSize %d", c.BreakoutSize)
	}
	return nil
}

// NumLinks reports the number of links the configuration will produce.
func (c ClosConfig) NumLinks() int {
	perPod := c.ToRsPerPod*c.AggsPerPod + c.AggsPerPod*c.SpineUplinksPerAgg
	return c.Pods * perPod
}

// NewClos builds a three-stage Clos network from the configuration.
func NewClos(c ClosConfig) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder()
	spines := make([]SwitchID, c.Spines)
	for i := range spines {
		spines[i] = b.AddSwitch(fmt.Sprintf("spine-%d", i), 2, -1)
	}
	nextGroup := 0
	group := func(j int) int {
		// Caller advances nextGroup per switch; j indexes that switch's
		// uplinks in creation order.
		if c.BreakoutSize <= 0 {
			return -1
		}
		return nextGroup + j/c.BreakoutSize
	}
	groupsUsed := func(n int) {
		if c.BreakoutSize > 0 {
			nextGroup += (n + c.BreakoutSize - 1) / c.BreakoutSize
		}
	}
	for p := 0; p < c.Pods; p++ {
		aggs := make([]SwitchID, c.AggsPerPod)
		for a := range aggs {
			aggs[a] = b.AddSwitch(fmt.Sprintf("agg-%d-%d", p, a), 1, p)
		}
		for t := 0; t < c.ToRsPerPod; t++ {
			tor := b.AddSwitch(fmt.Sprintf("tor-%d-%d", p, t), 0, p)
			for _, agg := range aggs {
				b.AddLink(tor, agg, -1)
			}
		}
		for a, agg := range aggs {
			base := (p*c.AggsPerPod + a) * c.SpineUplinksPerAgg
			for j := 0; j < c.SpineUplinksPerAgg; j++ {
				spine := spines[(base+j)%c.Spines]
				b.AddLink(agg, spine, group(j))
			}
			groupsUsed(c.SpineUplinksPerAgg)
		}
	}
	return b.Build()
}

// NewFatTree builds a canonical k-ary fat-tree: k pods each with k/2 ToR and
// k/2 aggregation switches, and (k/2)^2 core switches. k must be even and at
// least 2. The Appendix A hardness gadget is constructed on such trees.
func NewFatTree(k int) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity must be even and >= 2, got %d", k)
	}
	half := k / 2
	b := NewBuilder()
	cores := make([]SwitchID, half*half)
	for i := range cores {
		cores[i] = b.AddSwitch(fmt.Sprintf("core-%d", i), 2, -1)
	}
	for p := 0; p < k; p++ {
		aggs := make([]SwitchID, half)
		for a := range aggs {
			aggs[a] = b.AddSwitch(fmt.Sprintf("agg-%d-%d", p, a), 1, p)
		}
		for t := 0; t < half; t++ {
			tor := b.AddSwitch(fmt.Sprintf("tor-%d-%d", p, t), 0, p)
			for _, agg := range aggs {
				b.AddLink(tor, agg, -1)
			}
		}
		for a, agg := range aggs {
			for j := 0; j < half; j++ {
				b.AddLink(agg, cores[a*half+j], -1)
			}
		}
	}
	return b.Build()
}

// NewMultiTier builds a synthetic folded-Clos-like topology with an
// arbitrary number of tiers for exercising the r-tier generalization of the
// switch-local threshold (sc = c^(1/r)). widths[s] gives the number of
// switches at stage s (stage 0 is the ToR level) and fanout[s] how many
// next-stage switches each stage-s switch connects to, striped modulo the
// next stage's width.
func NewMultiTier(widths []int, fanout []int) (*Topology, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("topology: need at least 2 stages, got %d", len(widths))
	}
	if len(fanout) != len(widths)-1 {
		return nil, fmt.Errorf("topology: need %d fanout entries, got %d", len(widths)-1, len(fanout))
	}
	b := NewBuilder()
	ids := make([][]SwitchID, len(widths))
	for s, w := range widths {
		if w <= 0 {
			return nil, fmt.Errorf("topology: stage %d has non-positive width %d", s, w)
		}
		ids[s] = make([]SwitchID, w)
		for i := 0; i < w; i++ {
			pod := -1
			if s < len(widths)-1 {
				pod = 0
			}
			ids[s][i] = b.AddSwitch(fmt.Sprintf("s%d-%d", s, i), Stage(s), pod)
		}
	}
	for s := 0; s < len(widths)-1; s++ {
		f := fanout[s]
		if f <= 0 || f > widths[s+1] {
			return nil, fmt.Errorf("topology: stage %d fanout %d out of range (next width %d)", s, f, widths[s+1])
		}
		for i, sw := range ids[s] {
			for j := 0; j < f; j++ {
				up := ids[s+1][(i*f+j)%widths[s+1]]
				b.AddLink(sw, up, -1)
			}
		}
	}
	return b.Build()
}
