package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// The wire format is a plain JSON document so topologies can be shared with
// external tooling and checked into test fixtures.

type wireTopology struct {
	Switches []wireSwitch `json:"switches"`
	Links    []wireLink   `json:"links"`
}

type wireSwitch struct {
	Name  string `json:"name"`
	Stage int    `json:"stage"`
	Pod   int    `json:"pod"`
}

type wireLink struct {
	Lower         string `json:"lower"`
	Upper         string `json:"upper"`
	BreakoutGroup int    `json:"breakout_group"`
}

// WriteTo serializes the topology as JSON.
func (t *Topology) WriteTo(w io.Writer) (int64, error) {
	var wt wireTopology
	t.Switches(func(s *Switch) {
		wt.Switches = append(wt.Switches, wireSwitch{Name: s.Name, Stage: int(s.Stage), Pod: s.Pod})
	})
	t.Links(func(l *Link) {
		wt.Links = append(wt.Links, wireLink{
			Lower:         t.Switch(l.Lower).Name,
			Upper:         t.Switch(l.Upper).Name,
			BreakoutGroup: l.BreakoutGroup,
		})
	})
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	if err := enc.Encode(wt); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read parses a topology from its JSON serialization.
func Read(r io.Reader) (*Topology, error) {
	var wt wireTopology
	if err := json.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	b := NewBuilder()
	ids := make(map[string]SwitchID, len(wt.Switches))
	for _, s := range wt.Switches {
		ids[s.Name] = b.AddSwitch(s.Name, Stage(s.Stage), s.Pod)
	}
	for _, l := range wt.Links {
		lo, ok := ids[l.Lower]
		if !ok {
			return nil, fmt.Errorf("topology: link references unknown switch %q", l.Lower)
		}
		up, ok := ids[l.Upper]
		if !ok {
			return nil, fmt.Errorf("topology: link references unknown switch %q", l.Upper)
		}
		b.AddLink(lo, up, l.BreakoutGroup)
	}
	return b.Build()
}

// WriteDOT renders the topology in Graphviz DOT form, stages as ranks,
// for quick visual inspection of generated fabrics. disabled, if non-nil,
// draws administratively-down links dashed and red.
func (t *Topology) WriteDOT(w io.Writer, disabled DisabledFunc) error {
	cw := &countingWriter{w: w}
	fmt.Fprintln(cw, "graph dcn {")
	fmt.Fprintln(cw, "  rankdir=BT;")
	byStage := make([][]string, t.Stages())
	t.Switches(func(s *Switch) {
		byStage[s.Stage] = append(byStage[s.Stage], s.Name)
	})
	for st, names := range byStage {
		fmt.Fprintf(cw, "  { rank=same; // stage %d\n", st)
		for _, n := range names {
			fmt.Fprintf(cw, "    %q;\n", n)
		}
		fmt.Fprintln(cw, "  }")
	}
	var err error
	t.Links(func(l *Link) {
		attrs := ""
		if disabled != nil && disabled(l.ID) {
			attrs = ` [style=dashed, color=red]`
		}
		if _, werr := fmt.Fprintf(cw, "  %q -- %q%s;\n",
			t.Switch(l.Lower).Name, t.Switch(l.Upper).Name, attrs); werr != nil {
			err = werr
		}
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(cw, "}")
	return err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
