package topology

// Incremental path counting: maintain exact per-switch counts under
// single-link disable/enable toggles.
//
// Disabling link l = (lower, upper) removes exactly count(upper) paths from
// lower, and nothing above lower changes. Because count(v) is a sum over
// v's active uplinks of the upper endpoints' counts, a change of d at one
// switch propagates additively down the switch's downstream cone. Apply and
// Revert push that exact integer delta stage by stage, visiting only
// switches whose counts actually change — O(downstream cone) work, which on
// a Clos topology is one pod or less, against O(|V|+|E|) for a full sweep.
//
// The deltas are exact (not approximations), so the incremental counts
// after any sequence of Apply/Revert calls equal a fresh full sweep under
// the resulting disabled set, in any order of operations — the property the
// differential fuzz tests assert. This is what turns the fast checker's
// per-link decision and the optimizer DFS's one-link-at-a-time probes into
// sub-millisecond updates.

// Clone returns an independent PathCounter seeded with pc's current
// incremental state. The topology-derived immutable pieces (evaluation
// order, all-active totals) are shared; all mutable scratch is fresh, so
// the clone can run on another goroutine as long as the source is not
// mutated during the copy. Cloning is O(|V|) copies — no path-count sweep —
// which is what makes per-worker counters cheap for the parallel optimizer.
func (pc *PathCounter) Clone() *PathCounter {
	t := pc.t
	n := t.NumSwitches()
	c := &PathCounter{
		t:           t,
		counts:      make([]int64, n),
		order:       pc.order, // immutable after construction
		total:       pc.total, // immutable after construction
		scoped:      make([]int64, n),
		mark:        make([]uint32, n),
		stageBucket: make([][]SwitchID, t.Stages()),
		inc:         make([]int64, n),
		delta:       make([]int64, n),
		dirty:       make([]uint32, n),
		dirtyStage:  make([][]SwitchID, t.Stages()),
	}
	copy(c.inc, pc.inc)
	c.incDisabled.CopyFrom(&pc.incDisabled)
	return c
}

// ResetIncremental (re)initializes the incremental state to the given
// disabled set (nil for all-active) with one full sweep. The set is copied;
// later mutations of the caller's set are not observed.
func (pc *PathCounter) ResetIncremental(disabled *LinkSet) {
	pc.incDisabled.CopyFrom(disabled)
	if len(pc.incDisabled.words)*64 < pc.t.NumLinks() {
		// Preserve capacity semantics when given a nil/smaller set.
		w := (pc.t.NumLinks() + 63) / 64
		for len(pc.incDisabled.words) < w {
			pc.incDisabled.words = append(pc.incDisabled.words, 0)
		}
	}
	t := pc.t
	top := Stage(t.Stages() - 1)
	for _, id := range pc.order {
		sw := t.Switch(id)
		if sw.Stage == top {
			pc.inc[id] = 1
			continue
		}
		var n int64
		for _, l := range sw.Uplinks {
			if pc.incDisabled.Has(l) {
				continue
			}
			n += pc.inc[t.Link(l).Upper]
		}
		pc.inc[id] = n
	}
}

// IncCounts returns the per-switch counts under the incremental disabled
// set, indexed by SwitchID. The slice is live: Apply/Revert mutate it in
// place. Callers must not modify it.
func (pc *PathCounter) IncCounts() []int64 { return pc.inc }

// IncDisabled returns the incremental engine's disabled set. The set is
// live and owned by the counter; callers must mutate it only through
// Apply/Revert/ResetIncremental.
func (pc *PathCounter) IncDisabled() *LinkSet { return &pc.incDisabled }

// ChangedToRs returns the ToRs whose counts were changed by the most recent
// Apply or Revert, in discovery order. The slice is scratch, invalidated by
// the next Apply/Revert.
func (pc *PathCounter) ChangedToRs() []SwitchID { return pc.changedToRs }

// Apply disables link l in the incremental state and propagates the exact
// count delta through l's downstream cone. It returns the ToRs whose counts
// changed (the same slice ChangedToRs reports). Applying an
// already-disabled link is a no-op returning nil.
//
//lint:hotpath the optimizer probes Apply/Revert per candidate link
func (pc *PathCounter) Apply(l LinkID) []SwitchID {
	if pc.incDisabled.Has(l) {
		return nil
	}
	pc.incDisabled.Add(l)
	lk := pc.t.Link(l)
	return pc.propagate(lk.Lower, -pc.inc[lk.Upper])
}

// Revert re-enables link l in the incremental state and propagates the
// exact count delta through l's downstream cone, returning the changed
// ToRs. Reverting an enabled link is a no-op returning nil. Apply followed
// by Revert restores counts bit-exactly, and Apply/Revert sequences compose
// in any order.
//
//lint:hotpath paired with Apply on every feasibility probe
func (pc *PathCounter) Revert(l LinkID) []SwitchID {
	if !pc.incDisabled.Has(l) {
		return nil
	}
	pc.incDisabled.Remove(l)
	lk := pc.t.Link(l)
	// l's upper endpoint is unaffected by l itself, so its current count is
	// exactly the number of paths the re-enabled link contributes to lower.
	return pc.propagate(lk.Lower, pc.inc[lk.Upper])
}

// propagate adds d0 to start's count and pushes the change down the
// downstream cone, stage by stage. All deltas in one propagation share
// d0's sign, so no cancellation can occur and every visited switch with a
// non-zero delta is genuinely changed.
func (pc *PathCounter) propagate(start SwitchID, d0 int64) []SwitchID {
	pc.changedToRs = pc.changedToRs[:0]
	if d0 == 0 {
		return pc.changedToRs
	}
	t := pc.t
	startStage := int(t.Switch(start).Stage)
	pc.dirtyEpoch++
	e := pc.dirtyEpoch
	if e == 0 { // wrapped: invalidate stale marks
		for i := range pc.dirty {
			pc.dirty[i] = 0
		}
		pc.dirtyEpoch = 1
		e = 1
	}
	pc.dirty[start] = e
	pc.delta[start] = d0
	//lint:allow hotalloc appends into per-stage scratch buffers that reach steady capacity after warmup
	pc.dirtyStage[startStage] = append(pc.dirtyStage[startStage][:0], start)
	for st := startStage; st >= 0; st-- {
		bucket := pc.dirtyStage[st]
		for _, u := range bucket {
			d := pc.delta[u]
			pc.delta[u] = 0
			if d == 0 {
				continue
			}
			pc.inc[u] += d
			if st == 0 {
				//lint:allow hotalloc append into reused changedToRs scratch, steady capacity after warmup
				pc.changedToRs = append(pc.changedToRs, u)
				continue
			}
			for _, dl := range t.Switch(u).Downlinks {
				if pc.incDisabled.Has(dl) {
					continue
				}
				v := t.Link(dl).Lower
				if pc.dirty[v] != e {
					pc.dirty[v] = e
					pc.delta[v] = 0
					//lint:allow hotalloc append into reused per-stage scratch, steady capacity after warmup
					pc.dirtyStage[st-1] = append(pc.dirtyStage[st-1], v)
				}
				pc.delta[v] += d
			}
		}
		pc.dirtyStage[st] = bucket[:0]
	}
	return pc.changedToRs
}
