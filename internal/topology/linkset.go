package topology

import "math/bits"

// LinkSet is a fixed-capacity bitset over LinkIDs. It replaces
// map[LinkID]bool and DisabledFunc closures on the hot feasibility-check
// paths: membership is a single word load plus a shift, with no hashing, no
// pointer chasing, and no per-call closure allocation.
//
// The zero value is an empty set with zero capacity; use NewLinkSet (or
// Reset) to size it for a topology. All methods are nil-safe for reads: a
// nil *LinkSet behaves as the empty set.
type LinkSet struct {
	words []uint64
}

// NewLinkSet returns an empty set with capacity for links 0..numLinks-1.
func NewLinkSet(numLinks int) *LinkSet {
	return &LinkSet{words: make([]uint64, (numLinks+63)/64)}
}

// Reset re-sizes the set for numLinks links and clears it, reusing the
// existing storage when large enough.
func (s *LinkSet) Reset(numLinks int) {
	n := (numLinks + 63) / 64
	if cap(s.words) < n {
		s.words = make([]uint64, n)
		return
	}
	s.words = s.words[:n]
	for i := range s.words {
		s.words[i] = 0
	}
}

// Has reports whether l is in the set. Out-of-range and negative ids are
// reported as absent, so a set built for one topology never panics when
// probed with a sentinel NoLink.
func (s *LinkSet) Has(l LinkID) bool {
	if s == nil || l < 0 {
		return false
	}
	w := uint(l) >> 6
	if w >= uint(len(s.words)) {
		return false
	}
	return s.words[w]>>(uint(l)&63)&1 != 0
}

// Add inserts l. Adding beyond the constructed capacity grows the set; hot
// paths (PathCounter.Apply on the incremental disabled set) always add
// within the capacity NewLinkSet sized for the topology, so the growth loop
// body never runs there.
func (s *LinkSet) Add(l LinkID) {
	w := int(uint(l) >> 6)
	for w >= len(s.words) {
		//lint:allow hotalloc growth only when adding past constructed capacity; hot paths stay within it
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(l) & 63)
}

// Remove deletes l; removing an absent link is a no-op.
func (s *LinkSet) Remove(l LinkID) {
	w := int(uint(l) >> 6)
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(l) & 63)
	}
}

// Clear empties the set, keeping its capacity.
func (s *LinkSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Len reports the number of links in the set (a popcount over the words).
func (s *LinkSet) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// CopyFrom makes s an exact copy of other (nil other clears s).
func (s *LinkSet) CopyFrom(other *LinkSet) {
	if other == nil {
		s.Clear()
		return
	}
	if cap(s.words) < len(other.words) {
		s.words = make([]uint64, len(other.words))
	}
	s.words = s.words[:len(other.words)]
	copy(s.words, other.words)
}

// Union adds every link of other to s (growing s if needed).
func (s *LinkSet) Union(other *LinkSet) {
	if other == nil {
		return
	}
	for len(s.words) < len(other.words) {
		s.words = append(s.words, 0)
	}
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// Clone returns an independent copy of the set.
func (s *LinkSet) Clone() *LinkSet {
	c := &LinkSet{}
	c.CopyFrom(s)
	return c
}

// Each calls fn for every link in the set in increasing id order.
func (s *LinkSet) Each(fn func(LinkID)) {
	if s == nil {
		return
	}
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(LinkID(wi*64 + b))
			w &= w - 1
		}
	}
}

// Words exposes the underlying bit words (word i covers links
// i*64..i*64+63, LSB first) so hot paths can iterate the set without the
// Each closure: a `for` over Words with bits.TrailingZeros64 compiles to
// the same loop with zero captures. The slice is the live storage — callers
// must not mutate it.
func (s *LinkSet) Words() []uint64 {
	if s == nil {
		return nil
	}
	return s.words
}

// Func adapts the set to the DisabledFunc interface for callers that still
// take a predicate.
func (s *LinkSet) Func() DisabledFunc {
	return func(l LinkID) bool { return s.Has(l) }
}
