package topology

import (
	"math/rand"
	"testing"
)

// checkIncrementalState asserts that pc's incremental counts equal a fresh
// full sweep under pc's incremental disabled set, for every switch.
func checkIncrementalState(t *testing.T, pc *PathCounter, context string) {
	t.Helper()
	want := pc.Count(pc.IncDisabled().Func())
	got := pc.IncCounts()
	for id := range got {
		if got[id] != want[id] {
			t.Fatalf("%s: inc count[%d] = %d, full = %d (disabled=%d)",
				context, id, got[id], want[id], pc.IncDisabled().Len())
		}
	}
}

func TestApplyRevertMatchesFullRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		topo := randomTopology(t, seed)
		pc := NewPathCounter(topo)
		rng := rand.New(rand.NewSource(seed + 2000))
		for op := 0; op < 100; op++ {
			l := LinkID(rng.Intn(topo.NumLinks()))
			before := append([]int64(nil), pc.IncCounts()...)
			var changed []SwitchID
			if pc.IncDisabled().Has(l) {
				changed = pc.Revert(l)
			} else {
				changed = pc.Apply(l)
			}
			checkIncrementalState(t, pc, "after toggle")
			// ChangedToRs must be exactly the ToRs whose counts changed.
			changedSet := make(map[SwitchID]bool, len(changed))
			for _, tor := range changed {
				if topo.Switch(tor).Stage != 0 {
					t.Fatalf("ChangedToRs contains non-ToR %d", tor)
				}
				if changedSet[tor] {
					t.Fatalf("ChangedToRs contains %d twice", tor)
				}
				changedSet[tor] = true
			}
			after := pc.IncCounts()
			for _, tor := range topo.ToRs() {
				if (before[tor] != after[tor]) != changedSet[tor] {
					t.Fatalf("seed %d: ToR %d change mismatch: before=%d after=%d reported=%v",
						seed, tor, before[tor], after[tor], changedSet[tor])
				}
			}
		}
	}
}

func TestApplyRevertRoundTrip(t *testing.T) {
	topo := randomTopology(t, 5)
	pc := NewPathCounter(topo)
	rng := rand.New(rand.NewSource(5))
	base := randomLinkSet(topo, rng, 0.3)
	pc.ResetIncremental(base)
	snapshot := append([]int64(nil), pc.IncCounts()...)
	// Apply a batch in one order, revert in another: counts must round-trip
	// bit-exactly (order independence of exact deltas).
	var links []LinkID
	for l := 0; l < topo.NumLinks(); l++ {
		if !base.Has(LinkID(l)) && rng.Intn(2) == 0 {
			links = append(links, LinkID(l))
		}
	}
	for _, l := range links {
		pc.Apply(l)
	}
	rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	for _, l := range links {
		pc.Revert(l)
	}
	for id, want := range snapshot {
		if got := pc.IncCounts()[id]; got != want {
			t.Fatalf("round trip count[%d] = %d, want %d", id, got, want)
		}
	}
	if pc.IncDisabled().Len() != base.Len() {
		t.Fatalf("round trip disabled Len = %d, want %d", pc.IncDisabled().Len(), base.Len())
	}
}

func TestApplyRevertNoOps(t *testing.T) {
	topo := randomTopology(t, 11)
	pc := NewPathCounter(topo)
	l := LinkID(0)
	if got := pc.Revert(l); got != nil {
		t.Fatalf("Revert of enabled link returned %v, want nil", got)
	}
	pc.Apply(l)
	if got := pc.Apply(l); got != nil {
		t.Fatalf("Apply of disabled link returned %v, want nil", got)
	}
	checkIncrementalState(t, pc, "after no-ops")
}

func TestResetIncremental(t *testing.T) {
	topo := randomTopology(t, 17)
	pc := NewPathCounter(topo)
	rng := rand.New(rand.NewSource(17))
	set := randomLinkSet(topo, rng, 0.4)
	pc.ResetIncremental(set)
	checkIncrementalState(t, pc, "after reset")
	// Mutating the caller's set must not leak into the counter.
	set.Clear()
	checkIncrementalState(t, pc, "after caller mutation")
	pc.ResetIncremental(nil)
	for id, want := range pc.Total() {
		if got := pc.IncCounts()[id]; got != want {
			t.Fatalf("reset(nil) count[%d] = %d, want total %d", id, got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	topo := randomTopology(t, 23)
	pc := NewPathCounter(topo)
	pc.Apply(LinkID(0))
	clone := pc.Clone()
	checkIncrementalState(t, clone, "clone initial")
	// Diverge the two counters; each must stay self-consistent.
	pc.Apply(LinkID(1 % topo.NumLinks()))
	clone.Revert(LinkID(0))
	checkIncrementalState(t, pc, "source after divergence")
	checkIncrementalState(t, clone, "clone after divergence")
	if pc.IncDisabled().Has(0) == false {
		t.Fatal("source lost link 0 after clone reverted it")
	}
}

// TestIncrementalInterleavedWithScopedAndFull asserts the three engines
// share one PathCounter without stepping on each other's state.
func TestIncrementalInterleavedWithScopedAndFull(t *testing.T) {
	topo := randomTopology(t, 31)
	pc := NewPathCounter(topo)
	rng := rand.New(rand.NewSource(31))
	for op := 0; op < 50; op++ {
		l := LinkID(rng.Intn(topo.NumLinks()))
		if pc.IncDisabled().Has(l) {
			pc.Revert(l)
		} else {
			pc.Apply(l)
		}
		// Interleave full and scoped counts over unrelated disabled sets.
		other := randomLinkSet(topo, rng, 0.3)
		pc.Count(other.Func())
		pc.CountScopedSet(topo.ToRs(), other, nil)
		checkIncrementalState(t, pc, "after interleaving")
	}
}

// FuzzIncrementalCounts drives random toggle sequences on fuzzer-chosen
// topologies and cross-checks the incremental counts against a full sweep
// after every operation.
func FuzzIncrementalCounts(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 1, 0})
	f.Add(int64(9), []byte{5, 5, 5})
	f.Add(int64(77), []byte{0xff, 0x01, 0x80, 0x01, 0xff})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 128 {
			ops = ops[:128]
		}
		topo := randomTopology(t, seed)
		pc := NewPathCounter(topo)
		for _, b := range ops {
			l := LinkID(int(b) % topo.NumLinks())
			if pc.IncDisabled().Has(l) {
				pc.Revert(l)
			} else {
				pc.Apply(l)
			}
			want := pc.Count(pc.IncDisabled().Func())
			for id := range want {
				if got := pc.IncCounts()[id]; got != want[id] {
					t.Fatalf("seed %d: count[%d] = %d, full = %d", seed, id, got, want[id])
				}
			}
		}
	})
}
