package topology

import "testing"

func TestLinkSetBasics(t *testing.T) {
	s := NewLinkSet(200)
	if s.Len() != 0 {
		t.Fatalf("new set has Len %d", s.Len())
	}
	for _, l := range []LinkID{0, 63, 64, 127, 199} {
		if s.Has(l) {
			t.Fatalf("empty set contains %d", l)
		}
		s.Add(l)
		if !s.Has(l) {
			t.Fatalf("set missing %d after Add", l)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	s.Remove(64)
	if s.Has(64) || s.Len() != 4 {
		t.Fatalf("Remove(64) failed: Has=%v Len=%d", s.Has(64), s.Len())
	}
	s.Remove(64) // no-op
	if s.Len() != 4 {
		t.Fatal("double Remove changed Len")
	}
	s.Clear()
	if s.Len() != 0 || s.Has(0) {
		t.Fatal("Clear left elements behind")
	}
}

func TestLinkSetNilAndOutOfRange(t *testing.T) {
	var s *LinkSet
	if s.Has(3) {
		t.Fatal("nil set Has(3)")
	}
	if s.Len() != 0 {
		t.Fatal("nil set Len != 0")
	}
	s.Each(func(LinkID) { t.Fatal("nil set Each fired") })
	ns := NewLinkSet(10)
	if ns.Has(1000) || ns.Has(NoLink) {
		t.Fatal("out-of-range/NoLink membership")
	}
	ns.Remove(1000) // must not panic
}

func TestLinkSetGrowCopyUnion(t *testing.T) {
	a := NewLinkSet(10)
	a.Add(700) // beyond initial capacity: grows
	if !a.Has(700) {
		t.Fatal("Add beyond capacity lost the bit")
	}
	b := NewLinkSet(10)
	b.Add(3)
	b.Union(a)
	if !b.Has(3) || !b.Has(700) {
		t.Fatal("Union missing elements")
	}
	c := b.Clone()
	b.Remove(3)
	if !c.Has(3) {
		t.Fatal("Clone aliased the source")
	}
	var d LinkSet
	d.CopyFrom(c)
	if !d.Has(700) || d.Len() != c.Len() {
		t.Fatal("CopyFrom mismatch")
	}
	d.CopyFrom(nil)
	if d.Len() != 0 {
		t.Fatal("CopyFrom(nil) did not clear")
	}
}

func TestLinkSetEachOrder(t *testing.T) {
	s := NewLinkSet(300)
	want := []LinkID{2, 5, 64, 190, 255}
	for _, l := range want {
		s.Add(l)
	}
	var got []LinkID
	s.Each(func(l LinkID) { got = append(got, l) })
	if len(got) != len(want) {
		t.Fatalf("Each visited %d links, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order: got %v, want %v", got, want)
		}
	}
}

func TestLinkSetFunc(t *testing.T) {
	s := NewLinkSet(16)
	s.Add(7)
	fn := s.Func()
	if !fn(7) || fn(8) {
		t.Fatal("Func predicate mismatch")
	}
}
