// Package topology models multi-stage Clos data center networks: switches
// arranged in stages (ToR at the bottom, spine at the top), bidirectional
// optical links between adjacent stages, pods, and breakout-cable groups.
//
// It provides the structural queries CorrOpt's algorithms are built on:
// valley-free path counting from every ToR to the spine (total and under a
// set of disabled links), and upstream/downstream closures used by the
// optimizer's topology pruning.
//
// A Topology is immutable once built. Mutable link state (enabled/disabled,
// corrupting) lives with the algorithms that own it, so several mitigation
// strategies can be simulated against one topology concurrently.
package topology

import (
	"fmt"
	"sort"
)

// SwitchID identifies a switch within one Topology.
type SwitchID int32

// LinkID identifies a bidirectional link within one Topology.
type LinkID int32

// NoSwitch and NoLink are sentinel invalid identifiers.
const (
	NoSwitch SwitchID = -1
	NoLink   LinkID   = -1
)

// Stage is the vertical position of a switch: 0 for ToR, increasing toward
// the spine. The paper's "r tiers above the ToR-level" corresponds to a
// topology whose top stage is r.
type Stage int

// Switch is one network switch.
type Switch struct {
	ID    SwitchID
	Name  string
	Stage Stage
	// Pod groups switches that share a pod; -1 for spine switches.
	Pod int
	// Uplinks are links whose lower endpoint is this switch.
	Uplinks []LinkID
	// Downlinks are links whose upper endpoint is this switch.
	Downlinks []LinkID
}

// Link is a bidirectional switch-to-switch optical link between adjacent
// stages. Corruption is directional (§3: only 8.2% of corrupting links
// corrupt both ways) but disabling a link always takes down both directions,
// as current hardware cannot run unidirectional links.
type Link struct {
	ID LinkID
	// Lower is the endpoint at the smaller stage, Upper at Lower's stage+1.
	Lower, Upper SwitchID
	// BreakoutGroup is a shared breakout-cable identifier: links on the
	// same switch with equal non-negative groups share a physical cable
	// (root cause 5 in §4 takes all of them down together). -1 if none.
	BreakoutGroup int
}

// Direction selects one of the two directions of a Link.
type Direction int

const (
	// Up is the Lower→Upper direction (toward the spine).
	Up Direction = iota
	// Down is the Upper→Lower direction.
	Down
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Topology is an immutable multi-stage network.
type Topology struct {
	switches []Switch
	links    []Link
	byName   map[string]SwitchID
	stages   int // number of stages = top stage + 1
	tors     []SwitchID
	spines   []SwitchID
}

// NumSwitches reports the number of switches.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// NumLinks reports the number of bidirectional links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Stages reports the number of stages (ToR plus r tiers above it gives
// r+1 stages).
func (t *Topology) Stages() int { return t.stages }

// Tiers reports r, the number of tiers above the ToR level, the quantity
// that drives the switch-local checker's sc = c^(1/r) threshold mapping.
func (t *Topology) Tiers() int { return t.stages - 1 }

// Switch returns the switch with the given id. The returned pointer is into
// the topology's storage; callers must not mutate it.
func (t *Topology) Switch(id SwitchID) *Switch { return &t.switches[id] }

// Link returns the link with the given id. The returned pointer is into the
// topology's storage; callers must not mutate it.
func (t *Topology) Link(id LinkID) *Link { return &t.links[id] }

// SwitchByName looks a switch up by name.
func (t *Topology) SwitchByName(name string) (SwitchID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// ToRs returns the stage-0 switches. The returned slice is shared; callers
// must not mutate it.
func (t *Topology) ToRs() []SwitchID { return t.tors }

// Spines returns the top-stage switches. The returned slice is shared;
// callers must not mutate it.
func (t *Topology) Spines() []SwitchID { return t.spines }

// Switches calls fn for every switch in id order.
func (t *Topology) Switches(fn func(*Switch)) {
	for i := range t.switches {
		fn(&t.switches[i])
	}
}

// Links calls fn for every link in id order.
func (t *Topology) Links(fn func(*Link)) {
	for i := range t.links {
		fn(&t.links[i])
	}
}

// Opposite returns the switch on the other end of link l from s.
func (t *Topology) Opposite(l LinkID, s SwitchID) SwitchID {
	lk := &t.links[l]
	if lk.Lower == s {
		return lk.Upper
	}
	return lk.Lower
}

// LinksOnSwitch returns all links (up and down) attached to s.
func (t *Topology) LinksOnSwitch(s SwitchID) []LinkID {
	sw := &t.switches[s]
	out := make([]LinkID, 0, len(sw.Uplinks)+len(sw.Downlinks))
	out = append(out, sw.Uplinks...)
	out = append(out, sw.Downlinks...)
	return out
}

// SameBreakout returns the links that share l's breakout cable, including l
// itself. A link with no breakout group is alone in its cable.
func (t *Topology) SameBreakout(l LinkID) []LinkID {
	lk := &t.links[l]
	if lk.BreakoutGroup < 0 {
		return []LinkID{l}
	}
	var out []LinkID
	for _, cand := range t.LinksOnSwitch(lk.Lower) {
		c := &t.links[cand]
		if c.BreakoutGroup == lk.BreakoutGroup && sharesEndpoint(c, lk) {
			out = append(out, cand)
		}
	}
	return out
}

func sharesEndpoint(a, b *Link) bool {
	return a.Lower == b.Lower || a.Lower == b.Upper || a.Upper == b.Lower || a.Upper == b.Upper
}

// Builder assembles a Topology. It is the low-level construction interface;
// most callers use the Clos or fat-tree generators instead. Builders are not
// safe for concurrent use.
type Builder struct {
	t   Topology
	err error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{t: Topology{byName: make(map[string]SwitchID)}}
}

// AddSwitch adds a switch and returns its id. Names must be unique.
func (b *Builder) AddSwitch(name string, stage Stage, pod int) SwitchID {
	if b.err != nil {
		return NoSwitch
	}
	if stage < 0 {
		b.err = fmt.Errorf("topology: switch %q has negative stage %d", name, stage)
		return NoSwitch
	}
	if _, dup := b.t.byName[name]; dup {
		b.err = fmt.Errorf("topology: duplicate switch name %q", name)
		return NoSwitch
	}
	id := SwitchID(len(b.t.switches))
	b.t.switches = append(b.t.switches, Switch{ID: id, Name: name, Stage: stage, Pod: pod})
	b.t.byName[name] = id
	return id
}

// AddLink adds a bidirectional link between lower and upper, which must sit
// on adjacent stages (upper one stage above lower). breakoutGroup is -1 for
// links not on a breakout cable.
func (b *Builder) AddLink(lower, upper SwitchID, breakoutGroup int) LinkID {
	if b.err != nil {
		return NoLink
	}
	if int(lower) >= len(b.t.switches) || int(upper) >= len(b.t.switches) || lower < 0 || upper < 0 {
		b.err = fmt.Errorf("topology: link endpoints out of range (%d, %d)", lower, upper)
		return NoLink
	}
	lo, up := &b.t.switches[lower], &b.t.switches[upper]
	if up.Stage != lo.Stage+1 {
		b.err = fmt.Errorf("topology: link %s(stage %d) -> %s(stage %d) does not connect adjacent stages",
			lo.Name, lo.Stage, up.Name, up.Stage)
		return NoLink
	}
	id := LinkID(len(b.t.links))
	b.t.links = append(b.t.links, Link{ID: id, Lower: lower, Upper: upper, BreakoutGroup: breakoutGroup})
	lo.Uplinks = append(lo.Uplinks, id)
	up.Downlinks = append(up.Downlinks, id)
	return id
}

// Build validates the topology and returns it. After Build the Builder must
// not be reused.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := &b.t
	if len(t.switches) == 0 {
		return nil, fmt.Errorf("topology: no switches")
	}
	top := Stage(0)
	for i := range t.switches {
		if s := t.switches[i].Stage; s > top {
			top = s
		}
	}
	t.stages = int(top) + 1
	for i := range t.switches {
		sw := &t.switches[i]
		switch {
		case sw.Stage == 0:
			t.tors = append(t.tors, sw.ID)
		case sw.Stage == top:
			t.spines = append(t.spines, sw.ID)
		}
		if sw.Stage < top && len(sw.Uplinks) == 0 {
			return nil, fmt.Errorf("topology: switch %q at stage %d has no uplinks", sw.Name, sw.Stage)
		}
	}
	if len(t.tors) == 0 {
		return nil, fmt.Errorf("topology: no ToR (stage 0) switches")
	}
	sort.Slice(t.tors, func(i, j int) bool { return t.tors[i] < t.tors[j] })
	sort.Slice(t.spines, func(i, j int) bool { return t.spines[i] < t.spines[j] })
	return t, nil
}
