package topology

import (
	"fmt"
	"slices"
)

// Segment is one atomic unit of the static sharding axis: a set of links
// closed under the valley-free upstream cones of its ToRs, together with
// those ToRs. Two links land in the same segment exactly when they are
// connected through a non-top switch, which is the transitive closure of
// "some ToR's upstream cone contains both".
//
// The boundary invariant that makes segments shardable: a ToR's valley-free
// path count depends only on links in its own upstream cone, and the cone of
// every ToR in a segment is contained in that segment's link set. Disabling
// or enabling a link therefore changes the counts of ToRs in its own segment
// only — a shard owning a union of whole segments can run
// PathCounter.Apply/Revert locally and never needs a global rescan.
//
// Links reachable from no ToR (a switch chain with no ToR below it) attach
// to whatever segment they share a non-top switch with, or form ToR-less
// segments of their own; disabling them changes no ToR's count.
type Segment struct {
	// Links is the segment's link set, ascending.
	Links []LinkID
	// ToRs are the stage-0 switches whose upstream cones the segment
	// closes over, ascending. Empty for a ToR-less orphan segment.
	ToRs []SwitchID
}

// Partition splits the topology's links into disjoint cone-closed segments,
// ordered by their smallest link id. Every link appears in exactly one
// segment and every ToR in exactly one segment (its cone's). On a Clos
// fabric the segments are exactly the pods: pods share spine switches but
// never links, and the top stage does not merge components.
func (t *Topology) Partition() []Segment {
	if t.NumLinks() == 0 {
		// Degenerate single-stage topology: one segment holding every
		// ToR and no links.
		return []Segment{{ToRs: slices.Clone(t.ToRs())}}
	}

	// Union-find over links: two links share a segment iff they are
	// incident to a common switch below the top stage. Top-stage switches
	// are excluded — valley-free paths end there, so two pods hanging off
	// the same spine stay separate segments.
	parent := make([]int32, t.NumLinks())
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b LinkID) {
		ra, rb := find(int32(a)), find(int32(b))
		if ra != rb {
			parent[rb] = ra
		}
	}

	top := Stage(t.Stages() - 1)
	t.Switches(func(sw *Switch) {
		if sw.Stage == top {
			return
		}
		first := NoLink
		for _, l := range sw.Uplinks {
			if first == NoLink {
				first = l
			} else {
				union(first, l)
			}
		}
		for _, l := range sw.Downlinks {
			if first == NoLink {
				first = l
			} else {
				union(first, l)
			}
		}
	})

	// Number segments by ascending smallest member link, so the partition
	// order is a pure function of the topology.
	segOf := make([]int32, t.NumLinks())
	for i := range segOf {
		segOf[i] = -1
	}
	var segs []Segment
	for l := 0; l < t.NumLinks(); l++ {
		r := find(int32(l))
		if segOf[r] < 0 {
			segOf[r] = int32(len(segs))
			segs = append(segs, Segment{})
		}
		si := segOf[r]
		segs[si].Links = append(segs[si].Links, LinkID(l))
	}
	for _, tor := range t.ToRs() {
		up := t.Switch(tor).Uplinks
		if len(up) == 0 {
			// Unreachable with links present: any link forces ≥2
			// stages, and Build rejects below-top switches without
			// uplinks. Kept as a guard for hand-built topologies.
			continue
		}
		si := segOf[find(int32(up[0]))]
		segs[si].ToRs = append(segs[si].ToRs, tor)
	}
	return segs
}

// SegmentGraph is a standalone compact topology induced by one or more
// segments of a source topology, with the id-mapping tables needed to route
// events between the two id spaces.
type SegmentGraph struct {
	// Topo is the induced topology. Switches keep their source names,
	// stages and pods; breakout groups carry over unchanged (breakout
	// siblings share a lower switch, so they are never split across
	// segments).
	Topo *Topology
	// Links maps local link id → source link id, ascending in both id
	// spaces: local id i is the i-th smallest source link.
	Links []LinkID
	// Switches maps local switch id → source switch id, ascending in both
	// id spaces.
	Switches []SwitchID
}

// SegmentGraph builds the induced subgraph of the given segments. The
// segments must come from this topology's Partition (link-disjoint); at
// least one must contain a ToR, since a topology cannot be built without
// one.
func (t *Topology) SegmentGraph(segs []Segment) (*SegmentGraph, error) {
	nLinks := 0
	for _, s := range segs {
		nLinks += len(s.Links)
	}
	if nLinks == 0 {
		return nil, fmt.Errorf("topology: segment graph needs at least one link")
	}
	links := make([]LinkID, 0, nLinks)
	for _, s := range segs {
		links = append(links, s.Links...)
	}
	slices.Sort(links)

	// Collect endpoint switches, ascending by source id.
	inGraph := make([]bool, t.NumSwitches())
	for _, l := range links {
		lk := t.Link(l)
		inGraph[lk.Lower] = true
		inGraph[lk.Upper] = true
	}
	switches := make([]SwitchID, 0, 2*len(links))
	localSwitch := make([]SwitchID, t.NumSwitches())
	for s := range inGraph {
		if inGraph[s] {
			localSwitch[s] = SwitchID(len(switches))
			switches = append(switches, SwitchID(s))
		}
	}

	b := NewBuilder()
	for _, src := range switches {
		sw := t.Switch(src)
		b.AddSwitch(sw.Name, sw.Stage, sw.Pod)
	}
	for _, src := range links {
		lk := t.Link(src)
		b.AddLink(localSwitch[lk.Lower], localSwitch[lk.Upper], lk.BreakoutGroup)
	}
	topo, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("topology: segment graph: %w", err)
	}
	return &SegmentGraph{Topo: topo, Links: links, Switches: switches}, nil
}
