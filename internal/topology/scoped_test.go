package topology

import (
	"math/rand"
	"testing"
)

// scopedAgreesWithFull asserts that CountScoped (and CountScopedSet) agree
// bit-exactly with a fresh full Count for every switch in the scope.
func scopedAgreesWithFull(t *testing.T, topo *Topology, pc *PathCounter, tors []SwitchID, disabled *LinkSet) {
	t.Helper()
	full := append([]int64(nil), pc.Count(disabled.Func())...)
	scoped := pc.CountScoped(tors, disabled.Func())
	for _, tor := range tors {
		if scoped[tor] != full[tor] {
			t.Fatalf("CountScoped[%d] = %d, full = %d (disabled %d links)",
				tor, scoped[tor], full[tor], disabled.Len())
		}
	}
	scopedSet := pc.CountScopedSet(tors, disabled, nil)
	for _, tor := range tors {
		if scopedSet[tor] != full[tor] {
			t.Fatalf("CountScopedSet[%d] = %d, full = %d", tor, scopedSet[tor], full[tor])
		}
	}
}

func TestCountScopedMatchesFullRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		topo := randomTopology(t, seed)
		pc := NewPathCounter(topo)
		rng := rand.New(rand.NewSource(seed + 1000))
		for trial := 0; trial < 10; trial++ {
			disabled := randomLinkSet(topo, rng, rng.Float64()*0.5)
			// Random non-empty ToR subset.
			var tors []SwitchID
			for _, tor := range topo.ToRs() {
				if rng.Intn(2) == 0 {
					tors = append(tors, tor)
				}
			}
			if len(tors) == 0 {
				tors = topo.ToRs()
			}
			scopedAgreesWithFull(t, topo, pc, tors, disabled)
		}
	}
}

func TestCountScopedMatchesFullClos(t *testing.T) {
	topo, err := NewClos(ClosConfig{
		Pods: 4, ToRsPerPod: 4, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPathCounter(topo)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		disabled := randomLinkSet(topo, rng, 0.2)
		tors := []SwitchID{topo.ToRs()[rng.Intn(len(topo.ToRs()))]}
		scopedAgreesWithFull(t, topo, pc, tors, disabled)
	}
}

// TestCountScopedExtraOverlay checks the two-set union form against a
// single merged set.
func TestCountScopedExtraOverlay(t *testing.T) {
	topo := randomTopology(t, 99)
	pc := NewPathCounter(topo)
	rng := rand.New(rand.NewSource(99))
	base := randomLinkSet(topo, rng, 0.2)
	extra := randomLinkSet(topo, rng, 0.2)
	merged := base.Clone()
	merged.Union(extra)
	tors := topo.ToRs()
	got := append([]int64(nil), pc.CountScopedSet(tors, base, extra)...)
	want := pc.Count(merged.Func())
	for _, tor := range tors {
		if got[tor] != want[tor] {
			t.Fatalf("overlay count[%d] = %d, want %d", tor, got[tor], want[tor])
		}
	}
}

// TestScopeSizeLocality: on a podded Clos, one ToR's cone must be far
// smaller than the whole topology — the property that makes scoped
// checks cheap.
func TestScopeSizeLocality(t *testing.T) {
	topo, err := NewClos(ClosConfig{
		Pods: 8, ToRsPerPod: 8, AggsPerPod: 4, Spines: 8, SpineUplinksPerAgg: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPathCounter(topo)
	tor := topo.ToRs()[0]
	size := pc.ScopeSize([]SwitchID{tor})
	// Cone = the ToR + its pod's aggs + the spines they reach.
	want := 1 + 4 + 8
	if size != want {
		t.Fatalf("ScopeSize = %d, want %d", size, want)
	}
	if size >= topo.NumSwitches() {
		t.Fatalf("cone (%d) not smaller than topology (%d)", size, topo.NumSwitches())
	}
	// All ToRs' union covers every switch that has a path role.
	all := pc.ScopeSize(topo.ToRs())
	if all > topo.NumSwitches() {
		t.Fatalf("closure larger than topology: %d > %d", all, topo.NumSwitches())
	}
}

// FuzzCountScoped cross-checks scoped against full counts on fuzzer-chosen
// topologies, disabled sets, and ToR subsets.
func FuzzCountScoped(f *testing.F) {
	f.Add(int64(1), uint64(0), uint16(0xffff))
	f.Add(int64(2), uint64(0xdeadbeef), uint16(0x3))
	f.Add(int64(42), ^uint64(0), uint16(0x1))
	f.Fuzz(func(t *testing.T, seed int64, disabledBits uint64, torBits uint16) {
		topo := randomTopology(t, seed)
		pc := NewPathCounter(topo)
		disabled := NewLinkSet(topo.NumLinks())
		for l := 0; l < topo.NumLinks(); l++ {
			if disabledBits>>(uint(l)%64)&1 == 1 {
				disabled.Add(LinkID(l))
			}
		}
		var tors []SwitchID
		for i, tor := range topo.ToRs() {
			if torBits>>(uint(i)%16)&1 == 1 {
				tors = append(tors, tor)
			}
		}
		if len(tors) == 0 {
			tors = topo.ToRs()
		}
		scopedAgreesWithFull(t, topo, pc, tors, disabled)
	})
}
