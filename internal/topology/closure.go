package topology

// Structural closure queries used by the optimizer's topology pruning
// (§5.1, Figure 11) and by the spatial-locality analysis (§3).

// DownstreamToRs returns the ToRs whose valley-free spine paths can traverse
// link l: exactly the ToRs reachable by walking downward from l's lower
// endpoint. The fast checker only needs to re-check the capacity constraints
// of these ToRs when deciding whether l can be disabled.
func (t *Topology) DownstreamToRs(l LinkID) []SwitchID {
	lower := t.Link(l).Lower
	return t.torsBelow(lower)
}

// torsBelow walks downward from s collecting stage-0 switches.
func (t *Topology) torsBelow(s SwitchID) []SwitchID {
	if t.Switch(s).Stage == 0 {
		return []SwitchID{s}
	}
	var tors []SwitchID
	seen := make(map[SwitchID]bool)
	stack := []SwitchID{s}
	seen[s] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sw := t.Switch(cur)
		if sw.Stage == 0 {
			tors = append(tors, cur)
			continue
		}
		for _, dl := range sw.Downlinks {
			nxt := t.Link(dl).Lower
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return tors
}

// UpstreamLinks returns every link that lies on some valley-free path from
// any ToR in tors to the spine. Disabling links outside this set cannot
// change those ToRs' path counts, which is what justifies the optimizer's
// pruning step: corrupting links not upstream of any at-risk ToR can be
// disabled unconditionally.
func (t *Topology) UpstreamLinks(tors []SwitchID) map[LinkID]bool {
	links := make(map[LinkID]bool)
	seen := make(map[SwitchID]bool)
	stack := make([]SwitchID, 0, len(tors))
	for _, tor := range tors {
		if !seen[tor] {
			seen[tor] = true
			stack = append(stack, tor)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ul := range t.Switch(cur).Uplinks {
			links[ul] = true
			nxt := t.Link(ul).Upper
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return links
}

// UpstreamLinkSet is UpstreamLinks with a bitset result: it adds to set
// every link on some valley-free path from any ToR in tors to the spine.
// set must be sized for this topology (NewLinkSet(t.NumLinks())); it is not
// cleared first, so callers can union several cones into one set.
func (t *Topology) UpstreamLinkSet(tors []SwitchID, set *LinkSet) {
	seen := make([]bool, len(t.switches))
	stack := make([]SwitchID, 0, len(tors))
	for _, tor := range tors {
		if !seen[tor] {
			seen[tor] = true
			stack = append(stack, tor)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ul := range t.Switch(cur).Uplinks {
			set.Add(ul)
			nxt := t.Link(ul).Upper
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
}

// UpstreamWalker recomputes upstream link cones repeatedly without
// re-allocating traversal state; the zero value is ready to use. The
// optimizer holds one per instance and walks a cone per endangered ToR on
// every run, so the visited array and stack amortize across the whole
// simulation. Not safe for concurrent use.
type UpstreamWalker struct {
	seen  []bool
	stack []SwitchID
}

// FromToR adds to set every link on some valley-free path from tor to the
// spine — UpstreamLinkSet for a single ToR, with the walker owning the
// visited/stack scratch. set must be sized for t and is not cleared first.
func (w *UpstreamWalker) FromToR(t *Topology, tor SwitchID, set *LinkSet) {
	if cap(w.seen) < len(t.switches) {
		w.seen = make([]bool, len(t.switches))
	}
	seen := w.seen[:len(t.switches)]
	clear(seen)
	stack := append(w.stack[:0], tor)
	seen[tor] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ul := range t.Switch(cur).Uplinks {
			set.Add(ul)
			nxt := t.Link(ul).Upper
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	w.seen, w.stack = seen, stack[:0]
}

// SwitchesWithLinks returns the distinct switches touched by the given
// links (either endpoint). The locality analysis of Figure 4 is a ratio of
// such switch-set sizes.
func (t *Topology) SwitchesWithLinks(links []LinkID) map[SwitchID]bool {
	out := make(map[SwitchID]bool)
	for _, l := range links {
		lk := t.Link(l)
		out[lk.Lower] = true
		out[lk.Upper] = true
	}
	return out
}
