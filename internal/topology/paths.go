package topology

// This file implements the valley-free path counting at the heart of
// CorrOpt's fast checker (§5.1). A valley-free ToR→spine path goes strictly
// upward through the stages, so the number of paths from switch v at stage s
// is the sum over v's active uplinks (v,u) of the number of paths from u,
// with every spine switch contributing exactly one path. One bottom-up sweep
// computes the counts for all switches in O(|V| + |E|), which is what lets
// the paper's fast checker answer "can link l be disabled?" in 100–300 ms on
// a 35K-link data center.

// DisabledFunc reports whether a link is currently disabled (or being
// considered for disabling). A nil DisabledFunc means all links are active.
type DisabledFunc func(LinkID) bool

// PathCounter computes per-switch valley-free path counts toward the spine.
// It keeps reusable scratch buffers, so one PathCounter amortizes
// allocations across the many recounts a simulation performs. A PathCounter
// is not safe for concurrent use.
//
// Beyond the full O(|V|+|E|) sweep of Count, a PathCounter offers two
// engines that scale with the affected part of the topology instead of the
// whole data center (the paper's §5.1 "check only the downstream of l"
// refinement taken to its conclusion):
//
//   - CountScoped evaluates counts only over the upward closure of a given
//     ToR set (see scoped.go);
//   - Apply/Revert maintain counts incrementally under single-link toggles
//     by propagating exact deltas through the link's downstream cone (see
//     incremental.go).
//
// The three engines share the topology's stage structure but use disjoint
// result buffers, so interleaving Count, CountScoped, and Apply/Revert is
// safe (though each method's returned slice is invalidated by the next call
// to the *same* method).
type PathCounter struct {
	t      *Topology
	counts []int64 // per switch, paths to spine (full-sweep scratch)
	order  []SwitchID
	total  []int64 // per switch, paths with all links active (lazily built)

	// Scoped-count scratch (scoped.go): epoch-marked membership plus
	// per-stage buckets of the closure, reused across calls.
	scoped      []int64 // per switch, valid only for the last scope
	mark        []uint32
	markEpoch   uint32
	stageBucket [][]SwitchID

	// Incremental state (incremental.go): exact counts under incDisabled,
	// maintained by Apply/Revert delta propagation.
	inc         []int64
	incDisabled LinkSet
	delta       []int64
	dirty       []uint32
	dirtyEpoch  uint32
	dirtyStage  [][]SwitchID
	changedToRs []SwitchID
}

// NewPathCounter returns a PathCounter for t. The counter starts in
// incremental mode with an empty disabled set: Apply/Revert and IncCounts
// are usable immediately.
func NewPathCounter(t *Topology) *PathCounter {
	n := t.NumSwitches()
	pc := &PathCounter{
		t:           t,
		counts:      make([]int64, n),
		scoped:      make([]int64, n),
		mark:        make([]uint32, n),
		stageBucket: make([][]SwitchID, t.Stages()),
		inc:         make([]int64, n),
		delta:       make([]int64, n),
		dirty:       make([]uint32, n),
		dirtyStage:  make([][]SwitchID, t.Stages()),
	}
	pc.incDisabled.Reset(t.NumLinks())
	// Evaluation order: stages top-down, so every switch is processed after
	// all switches one stage above it. Spines are seeded with one path each.
	byStage := make([][]SwitchID, t.Stages())
	t.Switches(func(s *Switch) {
		byStage[s.Stage] = append(byStage[s.Stage], s.ID)
	})
	for st := t.Stages() - 1; st >= 0; st-- {
		pc.order = append(pc.order, byStage[st]...)
	}
	// Compute the all-links-active totals eagerly: Count reuses the counts
	// slice, so a lazy Total() computed after a Count() call would alias
	// the caller's live result.
	pc.total = append([]int64(nil), pc.Count(nil)...)
	copy(pc.inc, pc.total)
	return pc
}

// Count fills the per-switch path counts considering disabled links and
// returns the slice, indexed by SwitchID. The returned slice is reused by
// subsequent calls; callers needing to keep it must copy.
func (pc *PathCounter) Count(disabled DisabledFunc) []int64 {
	t := pc.t
	top := Stage(t.Stages() - 1)
	for _, id := range pc.order {
		sw := t.Switch(id)
		if sw.Stage == top {
			pc.counts[id] = 1
			continue
		}
		var n int64
		for _, l := range sw.Uplinks {
			if disabled != nil && disabled(l) {
				continue
			}
			n += pc.counts[t.Link(l).Upper]
		}
		pc.counts[id] = n
	}
	return pc.counts
}

// Total returns the per-switch path counts with every link active,
// computed once at construction. Callers must not mutate the result.
func (pc *PathCounter) Total() []int64 { return pc.total }

// ToRFractions returns, for every ToR, the fraction of its valley-free
// paths to the spine that survive the disabled links — the capacity metric
// CorrOpt's constraints are expressed in. ToRs with zero total paths (which
// Build rejects) would report fraction 0.
func (pc *PathCounter) ToRFractions(disabled DisabledFunc) map[SwitchID]float64 {
	total := pc.Total()
	counts := pc.Count(disabled)
	out := make(map[SwitchID]float64, len(pc.t.ToRs()))
	for _, tor := range pc.t.ToRs() {
		if total[tor] == 0 {
			out[tor] = 0
			continue
		}
		out[tor] = float64(counts[tor]) / float64(total[tor])
	}
	return out
}

// WorstToRFraction returns the minimum per-ToR available-path fraction under
// the disabled set, the quantity Figures 15 and 16 plot.
func (pc *PathCounter) WorstToRFraction(disabled DisabledFunc) float64 {
	total := pc.Total()
	counts := pc.Count(disabled)
	worst := 1.0
	for _, tor := range pc.t.ToRs() {
		var f float64
		if total[tor] > 0 {
			f = float64(counts[tor]) / float64(total[tor])
		}
		if f < worst {
			worst = f
		}
	}
	return worst
}

// MeanToRFraction returns the average per-ToR available-path fraction, used
// by §7.3's capacity-cost measurement.
func (pc *PathCounter) MeanToRFraction(disabled DisabledFunc) float64 {
	total := pc.Total()
	counts := pc.Count(disabled)
	if len(pc.t.ToRs()) == 0 {
		return 0
	}
	sum := 0.0
	for _, tor := range pc.t.ToRs() {
		if total[tor] > 0 {
			sum += float64(counts[tor]) / float64(total[tor])
		}
	}
	return sum / float64(len(pc.t.ToRs()))
}
