// Package rngutil provides deterministic, splittable random number streams
// for reproducible simulations.
//
// All experiment code in this repository derives its randomness from a single
// root seed through named sub-streams, so that adding a new consumer of
// randomness does not perturb the draws seen by existing consumers. This is
// what makes the regenerated tables and figures stable across runs and across
// refactorings.
package rngutil

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic stream of pseudo-random numbers that can be
// split into independent named sub-streams.
type Source struct {
	seed uint64
	rng  *rand.Rand
}

// New returns a Source rooted at the given seed.
func New(seed uint64) *Source {
	return &Source{
		seed: seed,
		//lint:allow nodeterminism rngutil is the sole sanctioned consumer of math/rand; every draw flows through a named, seeded substream
		rng: rand.New(rand.NewSource(int64(seed))),
	}
}

// Split derives an independent sub-stream identified by name. Two Sources
// with the same seed always produce identical sub-streams for the same name,
// and sub-streams with different names are statistically independent.
func (s *Source) Split(name string) *Source {
	h := fnv.New64a()
	// Mixing the parent seed before the name keeps sibling streams of
	// different parents independent even when names collide.
	var buf [8]byte
	putUint64(buf[:], s.seed)
	h.Write(buf[:])
	h.Write([]byte(name))
	return New(h.Sum64())
}

// SplitIndex derives an independent sub-stream identified by an integer,
// convenient for per-link or per-switch streams.
func (s *Source) SplitIndex(name string, i int) *Source {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], s.seed)
	h.Write(buf[:])
	h.Write([]byte(name))
	putUint64(buf[:], uint64(i))
	h.Write(buf[:])
	return New(h.Sum64())
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Seed reports the seed this Source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// NormFloat64 returns a standard normal draw.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// ExpFloat64 returns an exponential draw with mean 1.
func (s *Source) ExpFloat64() float64 { return s.rng.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// Range returns a uniform draw in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}
