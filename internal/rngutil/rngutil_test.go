package rngutil

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42).Split("faults")
	b := New(42).Split("faults")
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("a")
	b := root.Split("b")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams %q and %q coincide on %d of 1000 draws", "a", "b", same)
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	root := New(7)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		s := root.SplitIndex("link", i)
		if seen[s.Seed()] {
			t.Fatalf("duplicate derived seed at index %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestSiblingParentsIndependent(t *testing.T) {
	// Same sub-stream name under different parents must differ.
	a := New(1).Split("x")
	b := New(2).Split("x")
	if a.Seed() == b.Seed() {
		t.Fatal("sub-streams of different parents collide")
	}
}

// TestSubstreamIsolation pins the property the whole determinism contract
// rests on (DESIGN.md §7/§8): consuming — or even creating — one sub-stream
// must not perturb the draws seen by a sibling. This is exactly what lets a
// new consumer of randomness be added without shifting every existing
// experiment's tables.
func TestSubstreamIsolation(t *testing.T) {
	// Reference run: only "faults" is consumed.
	ref := New(42)
	faults := ref.Split("faults")
	want := make([]float64, 50)
	for i := range want {
		want[i] = faults.Float64()
	}

	// Perturbed run: interleave creation and consumption of other
	// sub-streams between every "faults" draw.
	per := New(42)
	pf := per.Split("faults")
	noise := per.Split("noise")
	for i := range want {
		_ = noise.Float64()
		_ = per.Split("late-consumer").Intn(100)
		_ = per.SplitIndex("link", i).Float64()
		if got := pf.Float64(); got != want[i] {
			t.Fatalf("draw %d perturbed by sibling streams: got %v want %v", i, got, want[i])
		}
	}
}

// TestSubstreamCorrelation checks statistical independence between named
// sub-streams, not just inequality: the sample correlation of paired draws
// from two siblings must be indistinguishable from zero at n=10000
// (|r| < ~4/sqrt(n)).
func TestSubstreamCorrelation(t *testing.T) {
	root := New(1234)
	a := root.Split("alpha")
	b := root.Split("beta")
	const n = 10000
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x, y := a.Float64(), b.Float64()
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	r := cov / math.Sqrt(vx*vy)
	if math.Abs(r) > 4/math.Sqrt(n) {
		t.Fatalf("sub-streams alpha/beta correlated: r = %v", r)
	}
}

// TestSplitIndexIndependentOfSplit pins that SplitIndex(name, i) and
// Split(name) occupy distinct seed spaces: an indexed stream must never
// collide with the plain named stream of the same name.
func TestSplitIndexIndependentOfSplit(t *testing.T) {
	root := New(99)
	plain := root.Split("link")
	for i := 0; i < 1000; i++ {
		if s := root.SplitIndex("link", i); s.Seed() == plain.Seed() {
			t.Fatalf("SplitIndex(%q, %d) collides with Split(%q)", "link", i, "link")
		}
	}
}

func TestBool(t *testing.T) {
	s := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency = %v, want ~0.25", frac)
	}
}

func TestRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Range(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Range(2,5) produced %v", v)
		}
	}
}

func TestPermAndShuffle(t *testing.T) {
	s := New(5)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("Shuffle lost elements: %v (was %v)", xs, orig)
	}
}

func TestScalarDraws(t *testing.T) {
	s := New(6)
	if v := s.Int63(); v < 0 {
		t.Fatalf("Int63 negative: %d", v)
	}
	if v := s.ExpFloat64(); v < 0 {
		t.Fatalf("ExpFloat64 negative: %v", v)
	}
	if v := s.NormFloat64(); v != v { // NaN check
		t.Fatal("NormFloat64 NaN")
	}
	if s.Seed() != 6 {
		t.Fatalf("Seed = %d", s.Seed())
	}
	if n := s.Intn(3); n < 0 || n >= 3 {
		t.Fatalf("Intn out of range: %d", n)
	}
}
