package scenario

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden transcripts and error goldens")

const scenarioDir = "../../scenarios"

// minProfiles is the floor on the committed chaos-profile library; the
// golden gate fails if the corpus ever shrinks below it.
const minProfiles = 8

func scenarioFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(scenarioDir, "*.json"))
	if err != nil {
		t.Fatalf("glob scenarios: %v", err)
	}
	if len(files) < minProfiles {
		t.Fatalf("scenario corpus has %d profiles, want at least %d", len(files), minProfiles)
	}
	return files
}

// TestScenarioGoldens runs every committed profile at Workers=1 and
// Workers=8 and requires the transcripts to be byte-identical to each
// other and to the committed golden, with every declared assertion
// passing. Run with -update to regenerate the goldens.
func TestScenarioGoldens(t *testing.T) {
	for _, file := range scenarioFiles(t) {
		file := file
		base := strings.TrimSuffix(filepath.Base(file), ".json")
		t.Run(base, func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			s, err := Parse(data, filepath.Base(file))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if s.Name != base {
				t.Fatalf("scenario name %q does not match file base %q", s.Name, base)
			}
			c, err := Compile(s)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			one, err := Execute(c, Options{Workers: 1})
			if err != nil {
				t.Fatalf("execute workers=1: %v", err)
			}
			eight, err := Execute(c, Options{Workers: 8})
			if err != nil {
				t.Fatalf("execute workers=8: %v", err)
			}
			t1, t8 := []byte(one.Transcript()), []byte(eight.Transcript())
			if !bytes.Equal(t1, t8) {
				t.Fatalf("transcript differs between Workers=1 and Workers=8:\n%s", diffLines(t1, t8))
			}
			if !one.Passed {
				for _, a := range one.Assertions {
					if !a.Pass {
						t.Errorf("assertion failed: %s (got %.6g)", a.Desc, a.Value)
					}
				}
				t.Fatalf("scenario assertions failed")
			}
			goldenPath := filepath.Join(scenarioDir, "golden", base+".txt")
			if *update {
				if err := os.WriteFile(goldenPath, t1, 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(t1, want) {
				t.Fatalf("transcript differs from golden %s (run with -update to regenerate):\n%s",
					goldenPath, diffLines(want, t1))
			}
		})
	}
}

func diffLines(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	var b strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	shown := 0
	for i := 0; i < n && shown < 20; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
			shown++
		}
	}
	return b.String()
}
