package scenario

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestCommittedScenariosRoundtrip proves the fixpoint property on the
// real profile library: parse → encode → parse yields the identical
// Scenario, and a second encode yields identical bytes.
func TestCommittedScenariosRoundtrip(t *testing.T) {
	for _, file := range scenarioFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Parse(data, file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		enc := Encode(s)
		s2, err := Parse(enc, file+"(encoded)")
		if err != nil {
			t.Fatalf("%s: canonical encoding does not re-parse: %v\n%s", file, err, enc)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("%s: roundtrip changed the scenario\nfirst:  %+v\nsecond: %+v", file, s, s2)
		}
		if enc2 := Encode(s2); !bytes.Equal(enc, enc2) {
			t.Fatalf("%s: encoding is not stable:\n%s", file, diffLines(enc, enc2))
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `# leading comment
{
  # inside an object
  "version": 1, # trailing comment
  "name": "c",
  "horizon": "1d",
  "topology": {"kind": "fattree", "k": 4},
  "runs": [{"name": "a", "policy": "none"}]
}
# closing comment`
	s, err := Parse([]byte(src), "comments")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "c" || s.Horizon != 24*time.Hour {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseDurations(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{`"30d"`, 30 * 24 * time.Hour},
		{`"1.5d"`, 36 * time.Hour},
		{`"2h45m"`, 2*time.Hour + 45*time.Minute},
		{`"90s"`, 90 * time.Second},
	}
	for _, tc := range cases {
		src := `{"version": 1, "name": "d", "horizon": ` + tc.in + `,
  "topology": {"kind": "fattree", "k": 4},
  "runs": [{"name": "a", "policy": "none"}]}`
		s, err := Parse([]byte(src), "durations")
		if err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if s.Horizon != tc.want {
			t.Fatalf("%s: horizon = %v, want %v", tc.in, s.Horizon, tc.want)
		}
	}
}

func TestParseDepthLimit(t *testing.T) {
	src := strings.Repeat("[", 200) + strings.Repeat("]", 200)
	if _, err := Parse([]byte(src), "deep"); err == nil {
		t.Fatal("deeply nested document accepted")
	} else if !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestParseRejectsInvalidUTF8(t *testing.T) {
	src := []byte(`{"version": 1, "name": "` + string([]byte{0xff, 0xfe}) + `"}`)
	if _, err := Parse(src, "utf8"); err == nil {
		t.Fatal("invalid UTF-8 accepted")
	}
}

// TestEncodeGoldenShape pins the canonical encoding of a small scenario
// so format drift is a visible diff, not a silent change.
func TestEncodeGoldenShape(t *testing.T) {
	data, err := os.ReadFile("../../scenarios/fattree_drain.json")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(data, "fattree_drain.json")
	if err != nil {
		t.Fatal(err)
	}
	enc := string(Encode(s))
	for _, want := range []string{
		"\"version\": 1",
		"\"name\": \"fattree_drain\"",
		"\"horizon\": \"21d\"",
		"\"kind\": \"fattree\"",
		"\"drain_mode\": true",
		"\"detection_delay\": \"6h0m0s\"",
	} {
		if !strings.Contains(enc, want) {
			t.Errorf("canonical encoding missing %q:\n%s", want, enc)
		}
	}
	if !strings.HasSuffix(enc, "}\n") {
		t.Errorf("canonical encoding does not end with a closing brace and newline")
	}
}
