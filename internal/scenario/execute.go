package scenario

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"corropt/internal/runner"
	"corropt/internal/sim"
)

// Options parameterizes Execute.
type Options struct {
	// Workers sizes the worker pool; <=0 means 1. The transcript is
	// byte-identical for every worker count.
	Workers int
}

// AssertionResult is one evaluated assertion.
type AssertionResult struct {
	// Desc is the rendered form, e.g. "integrated_penalty[corropt] <= 200".
	Desc string
	// Value is the observed metric value.
	Value float64
	// Pass reports whether the bounds held.
	Pass bool
}

// Outcome is one executed scenario: per-run results in declaration order
// plus the evaluated assertions.
type Outcome struct {
	Compiled   *Compiled
	Results    []*sim.Result
	Assertions []AssertionResult
	// Passed is true when every assertion held.
	Passed bool
}

// Execute replays every run of the compiled scenario against the shared
// trace on a pooled worker pool and evaluates the assertions. Results land
// in run-declaration order regardless of worker scheduling, and each run's
// randomness comes only from its own seed's substreams, so the outcome —
// and the transcript derived from it — is deterministic for any Workers.
func Execute(c *Compiled, opt Options) (*Outcome, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	horizon := c.Scenario.Horizon
	results, err := runner.MapScratch(workers, len(c.Runs), sim.NewScratch,
		func(i int, sc *sim.Scratch) (*sim.Result, error) {
			s, err := sim.NewWithScratch(c.Topo, DefaultTech(), c.Runs[i].Config, sc)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: run %q: %w", c.Scenario.Name, c.Runs[i].Name, err)
			}
			res, err := s.RunEvents(c.Trace, c.Clears, horizon)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: run %q: %w", c.Scenario.Name, c.Runs[i].Name, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	o := &Outcome{Compiled: c, Results: results, Passed: true}
	byName := make(map[string]*sim.Result, len(results))
	for i, r := range c.Runs {
		byName[r.Name] = results[i]
	}
	for i := range c.Scenario.Assertions {
		ar := evalAssertion(&c.Scenario.Assertions[i], byName)
		if !ar.Pass {
			o.Passed = false
		}
		o.Assertions = append(o.Assertions, ar)
	}
	return o, nil
}

// runMetric extracts one per-run metric from a result.
func runMetric(name string, res *sim.Result) float64 {
	switch name {
	case "integrated_penalty":
		return res.IntegratedPenalty
	case "corruption_reports":
		return float64(res.CorruptionReports)
	case "tickets_opened":
		return float64(res.TicketsOpened)
	case "links_disabled":
		return float64(res.LinksDisabled)
	case "undisabled_events":
		return float64(res.UndisabledEvents)
	case "dampened_holds":
		return float64(res.DampenedHolds)
	case "first_attempt_success_rate":
		return res.FirstAttemptSuccessRate
	case "mean_attempts":
		return res.MeanAttempts
	case "min_worst_tor_fraction":
		minFrac := math.Inf(1)
		for i := range res.Samples {
			minFrac = math.Min(minFrac, res.Samples[i].WorstToRFraction)
		}
		return minFrac
	case "mean_tor_fraction":
		sum := 0.0
		for i := range res.Samples {
			sum += res.Samples[i].MeanToRFraction
		}
		return sum / float64(len(res.Samples))
	case "final_disabled":
		return float64(res.Samples[len(res.Samples)-1].Disabled)
	case "final_active_corrupting":
		return float64(res.Samples[len(res.Samples)-1].ActiveCorrupting)
	case "max_disabled":
		maxD := 0
		for i := range res.Samples {
			maxD = max(maxD, res.Samples[i].Disabled)
		}
		return float64(maxD)
	case "max_active_corrupting":
		maxA := 0
		for i := range res.Samples {
			maxA = max(maxA, res.Samples[i].ActiveCorrupting)
		}
		return float64(maxA)
	case "samples":
		return float64(len(res.Samples))
	default:
		return math.NaN()
	}
}

func evalAssertion(a *Assertion, byName map[string]*sim.Result) AssertionResult {
	var value float64
	var subject string
	if RatioMetrics[a.Metric] {
		num, den := byName[a.Runs[0]], byName[a.Runs[1]]
		var n, d float64
		switch a.Metric {
		case "penalty_ratio":
			n, d = num.IntegratedPenalty, den.IntegratedPenalty
		case "tickets_ratio":
			n, d = float64(num.TicketsOpened), float64(den.TicketsOpened)
		}
		switch {
		case d != 0:
			value = n / d
		case n == 0:
			value = 1 // 0/0: equal, by convention
		default:
			value = math.Inf(1)
		}
		subject = fmt.Sprintf("%s[%s/%s]", a.Metric, a.Runs[0], a.Runs[1])
	} else {
		value = runMetric(a.Metric, byName[a.Run])
		subject = fmt.Sprintf("%s[%s]", a.Metric, a.Run)
	}
	var desc string
	switch {
	case a.Min != nil && a.Max != nil:
		desc = fmt.Sprintf("%s in [%.6g, %.6g]", subject, *a.Min, *a.Max)
	case a.Min != nil:
		desc = fmt.Sprintf("%s >= %.6g", subject, *a.Min)
	default:
		desc = fmt.Sprintf("%s <= %.6g", subject, *a.Max)
	}
	pass := !math.IsNaN(value)
	if a.Min != nil && value < *a.Min {
		pass = false
	}
	if a.Max != nil && value > *a.Max {
		pass = false
	}
	return AssertionResult{Desc: desc, Value: value, Pass: pass}
}

// Transcript renders the outcome as the canonical golden text: scenario
// header, one block per run in declaration order, assertion verdicts, and
// the overall result. Every number is either integer, %.6g, or a hash of
// the full sample series, so the transcript is a compact but byte-exact
// fingerprint of the simulation.
func (o *Outcome) Transcript() string {
	var b strings.Builder
	c := o.Compiled
	s := c.Scenario
	fmt.Fprintf(&b, "corropt scenario transcript v%d\n", s.Version)
	fmt.Fprintf(&b, "scenario: %s\n", s.Name)
	if s.Description != "" {
		fmt.Fprintf(&b, "description: %s\n", s.Description)
	}
	fmt.Fprintf(&b, "seed: %d\n", s.Seed)
	fmt.Fprintf(&b, "horizon: %s\n", formatDur(s.Horizon))
	fmt.Fprintf(&b, "sample_interval: %s\n", formatDur(s.SampleInterval))
	switch s.Topology.Kind {
	case "clos":
		fmt.Fprintf(&b, "topology: clos pods=%d tors_per_pod=%d aggs_per_pod=%d spines=%d spine_uplinks_per_agg=%d breakout_size=%d",
			s.Topology.Pods, s.Topology.ToRsPerPod, s.Topology.AggsPerPod,
			s.Topology.Spines, s.Topology.SpineUplinksPerAgg, s.Topology.BreakoutSize)
	case "fattree":
		fmt.Fprintf(&b, "topology: fattree k=%d", s.Topology.K)
	}
	fmt.Fprintf(&b, " (%d links, %d switches, %d tors)\n",
		c.Topo.NumLinks(), c.Topo.NumSwitches(), len(c.Topo.ToRs()))
	if s.Chaos != nil {
		fmt.Fprintf(&b, "chaos: stream=%s faults_per_link_per_day=%.6g faults=%d\n",
			s.Chaos.Stream, s.Chaos.FaultsPerLinkPerDay, c.ChaosFaults)
	}
	fmt.Fprintf(&b, "schedule: %d faults (%d chaos + %d event), %d clears\n",
		len(c.Trace), c.ChaosFaults, c.EventFaults, len(c.Clears))
	for i, r := range c.Runs {
		res := o.Results[i]
		run := &s.Runs[i]
		fmt.Fprintf(&b, "run %s:\n", r.Name)
		fmt.Fprintf(&b, "  policy=%s capacity=%.6g detection_threshold=%.6g detection_delay=%s repair=%s accuracy=%.6g service_time=%s technicians=%d seed=%d\n",
			run.Policy, run.Capacity, run.DetectionThreshold, formatDur(run.DetectionDelay),
			run.RepairMode, run.Accuracy, formatDur(run.ServiceTime), run.Technicians, run.Seed)
		if run.Dampening != nil {
			fmt.Fprintf(&b, "  dampening: window=%s flaps=%d holddown=%s\n",
				formatDur(run.Dampening.Window), run.Dampening.Flaps, formatDur(run.Dampening.Holddown))
		}
		fmt.Fprintf(&b, "  corruption_reports=%d tickets_opened=%d links_disabled=%d undisabled_events=%d dampened_holds=%d\n",
			res.CorruptionReports, res.TicketsOpened, res.LinksDisabled, res.UndisabledEvents, res.DampenedHolds)
		fmt.Fprintf(&b, "  first_attempt_success_rate=%.6g mean_attempts=%.6g\n",
			res.FirstAttemptSuccessRate, res.MeanAttempts)
		fmt.Fprintf(&b, "  integrated_penalty=%.6g\n", res.IntegratedPenalty)
		fmt.Fprintf(&b, "  min_worst_tor_fraction=%.6g mean_tor_fraction=%.6g\n",
			runMetric("min_worst_tor_fraction", res), runMetric("mean_tor_fraction", res))
		fmt.Fprintf(&b, "  final_disabled=%d final_active_corrupting=%d max_disabled=%d max_active_corrupting=%d\n",
			int(runMetric("final_disabled", res)), int(runMetric("final_active_corrupting", res)),
			int(runMetric("max_disabled", res)), int(runMetric("max_active_corrupting", res)))
		fmt.Fprintf(&b, "  samples=%d series_hash=%016x\n", len(res.Samples), seriesHash(res))
	}
	for _, ar := range o.Assertions {
		verdict := "PASS"
		if !ar.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "assert %s: %s (%.6g)\n", ar.Desc, verdict, ar.Value)
	}
	if o.Passed {
		b.WriteString("result: PASS\n")
	} else {
		b.WriteString("result: FAIL\n")
	}
	return b.String()
}

// seriesHash is FNV-64a over the full sample series and per-day penalty
// buckets (exact float bits), pinning the whole output series to the
// golden without printing thousands of lines.
func seriesHash(res *sim.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	for i := range res.Samples {
		smp := &res.Samples[i]
		put(uint64(smp.At))
		put(math.Float64bits(smp.Penalty))
		put(math.Float64bits(smp.WorstToRFraction))
		put(math.Float64bits(smp.MeanToRFraction))
		put(uint64(smp.ActiveCorrupting))
		put(uint64(smp.Disabled))
	}
	for _, p := range res.PenaltyPerDay {
		put(math.Float64bits(p))
	}
	return h.Sum64()
}
