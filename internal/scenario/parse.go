package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

// Error is a position-bearing scenario error. Line and Col are 1-based;
// Line 0 means the error has no useful position (e.g. a cross-field
// compile-time failure).
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface as "file:line:col: msg".
func (e *Error) Error() string {
	name := e.File
	if name == "" {
		name = "scenario"
	}
	if e.Line == 0 {
		return fmt.Sprintf("%s: %s", name, e.Msg)
	}
	return fmt.Sprintf("%s:%d:%d: %s", name, e.Line, e.Col, e.Msg)
}

// pos is a 1-based source position.
type pos struct {
	line, col int
}

type vkind int

const (
	vObj vkind = iota
	vArr
	vStr
	vNum
	vBool
	vNull
)

func (k vkind) String() string {
	switch k {
	case vObj:
		return "object"
	case vArr:
		return "array"
	case vStr:
		return "string"
	case vNum:
		return "number"
	case vBool:
		return "boolean"
	default:
		return "null"
	}
}

// value is one node of the positioned parse tree.
type value struct {
	at     pos
	kind   vkind
	fields []vfield // vObj, in source order
	items  []*value // vArr
	str    string   // vStr
	num    float64  // vNum
	raw    string   // vNum: the source token, for exact integer decoding
	boolv  bool     // vBool
}

// vfield is one object member; at is the key's position.
type vfield struct {
	key string
	at  pos
	val *value
}

// field returns the member named key, or nil.
func (v *value) field(key string) *value {
	for _, f := range v.fields {
		if f.key == key {
			return f.val
		}
	}
	return nil
}

// maxParseDepth bounds object/array nesting so hostile (fuzzer) inputs
// cannot overflow the stack.
const maxParseDepth = 64

type parser struct {
	file  string
	data  []byte
	i     int
	line  int
	col   int
	depth int
}

// parseTree parses data into a positioned value tree. The grammar is
// strict JSON plus full-line or trailing `#` comments (the YAML-flavored
// authoring nicety); duplicate object keys, trailing commas, and invalid
// UTF-8 inside strings are rejected.
func parseTree(data []byte, file string) (*value, error) {
	p := &parser{file: file, data: data, line: 1, col: 1}
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.i < len(p.data) {
		return nil, p.errHere("trailing data after scenario value")
	}
	return v, nil
}

func (p *parser) errHere(format string, args ...any) error {
	return &Error{File: p.file, Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) errAt(at pos, format string, args ...any) error {
	return &Error{File: p.file, Line: at.line, Col: at.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) pos() pos { return pos{line: p.line, col: p.col} }

// advance consumes one byte, tracking line/column.
func (p *parser) advance() byte {
	c := p.data[p.i]
	p.i++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

func (p *parser) skipSpace() {
	for p.i < len(p.data) {
		switch p.data[p.i] {
		case ' ', '\t', '\r', '\n':
			p.advance()
		case '#':
			for p.i < len(p.data) && p.data[p.i] != '\n' {
				p.advance()
			}
		default:
			return
		}
	}
}

func (p *parser) parseValue() (*value, error) {
	if p.depth >= maxParseDepth {
		return nil, p.errHere("nesting deeper than %d levels", maxParseDepth)
	}
	p.depth++
	defer func() { p.depth-- }()
	p.skipSpace()
	if p.i >= len(p.data) {
		return nil, p.errHere("unexpected end of input")
	}
	at := p.pos()
	switch c := p.data[p.i]; {
	case c == '{':
		return p.parseObject(at)
	case c == '[':
		return p.parseArray(at)
	case c == '"':
		s, err := p.parseString()
		if err != nil {
			return nil, err
		}
		return &value{at: at, kind: vStr, str: s}, nil
	case c == 't' || c == 'f':
		word := "true"
		if c == 'f' {
			word = "false"
		}
		if err := p.expectWord(word); err != nil {
			return nil, err
		}
		return &value{at: at, kind: vBool, boolv: c == 't'}, nil
	case c == 'n':
		if err := p.expectWord("null"); err != nil {
			return nil, err
		}
		return &value{at: at, kind: vNull}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber(at)
	default:
		return nil, p.errHere("unexpected character %q", c)
	}
}

func (p *parser) expectWord(word string) error {
	if !strings.HasPrefix(string(p.data[p.i:]), word) {
		return p.errHere("invalid literal (expected %q)", word)
	}
	for range word {
		p.advance()
	}
	return nil
}

func (p *parser) parseObject(at pos) (*value, error) {
	p.advance() // '{'
	v := &value{at: at, kind: vObj}
	seen := make(map[string]bool)
	p.skipSpace()
	if p.i < len(p.data) && p.data[p.i] == '}' {
		p.advance()
		return v, nil
	}
	for {
		p.skipSpace()
		if p.i >= len(p.data) || p.data[p.i] != '"' {
			return nil, p.errHere("expected object key string")
		}
		keyAt := p.pos()
		key, err := p.parseString()
		if err != nil {
			return nil, err
		}
		if seen[key] {
			return nil, p.errAt(keyAt, "duplicate key %q", key)
		}
		seen[key] = true
		p.skipSpace()
		if p.i >= len(p.data) || p.data[p.i] != ':' {
			return nil, p.errHere("expected ':' after object key")
		}
		p.advance()
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		v.fields = append(v.fields, vfield{key: key, at: keyAt, val: val})
		p.skipSpace()
		if p.i >= len(p.data) {
			return nil, p.errHere("unterminated object")
		}
		switch p.data[p.i] {
		case ',':
			p.advance()
		case '}':
			p.advance()
			return v, nil
		default:
			return nil, p.errHere("expected ',' or '}' in object")
		}
	}
}

func (p *parser) parseArray(at pos) (*value, error) {
	p.advance() // '['
	v := &value{at: at, kind: vArr}
	p.skipSpace()
	if p.i < len(p.data) && p.data[p.i] == ']' {
		p.advance()
		return v, nil
	}
	for {
		item, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		v.items = append(v.items, item)
		p.skipSpace()
		if p.i >= len(p.data) {
			return nil, p.errHere("unterminated array")
		}
		switch p.data[p.i] {
		case ',':
			p.advance()
		case ']':
			p.advance()
			return v, nil
		default:
			return nil, p.errHere("expected ',' or ']' in array")
		}
	}
}

func (p *parser) parseString() (string, error) {
	p.advance() // opening '"'
	var b strings.Builder
	for {
		if p.i >= len(p.data) {
			return "", p.errHere("unterminated string")
		}
		c := p.data[p.i]
		switch {
		case c == '"':
			p.advance()
			return b.String(), nil
		case c == '\\':
			p.advance()
			if p.i >= len(p.data) {
				return "", p.errHere("unterminated escape")
			}
			e := p.advance()
			switch e {
			case '"', '\\', '/':
				b.WriteByte(e)
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case 'u':
				r, err := p.parseUnicodeEscape()
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			default:
				return "", p.errHere("invalid escape character %q", e)
			}
		case c < 0x20:
			return "", p.errHere("raw control character in string")
		case c < utf8.RuneSelf:
			p.advance()
			b.WriteByte(c)
		default:
			r, size := utf8.DecodeRune(p.data[p.i:])
			if r == utf8.RuneError && size == 1 {
				return "", p.errHere("invalid UTF-8 in string")
			}
			for j := 0; j < size; j++ {
				p.advance()
			}
			b.WriteRune(r)
		}
	}
}

// parseUnicodeEscape reads the XXXX of a \uXXXX escape (the backslash and
// 'u' are already consumed), combining surrogate pairs; lone surrogates
// are rejected so every parsed string is valid UTF-8 and the canonical
// encoder can round-trip it byte-exactly.
func (p *parser) parseUnicodeEscape() (rune, error) {
	hi, err := p.parseHex4()
	if err != nil {
		return 0, err
	}
	if !utf16.IsSurrogate(rune(hi)) {
		return rune(hi), nil
	}
	if p.i+1 >= len(p.data) || p.data[p.i] != '\\' || p.data[p.i+1] != 'u' {
		return 0, p.errHere("lone surrogate in \\u escape")
	}
	p.advance()
	p.advance()
	lo, err := p.parseHex4()
	if err != nil {
		return 0, err
	}
	r := utf16.DecodeRune(rune(hi), rune(lo))
	if r == utf8.RuneError {
		return 0, p.errHere("invalid surrogate pair in \\u escape")
	}
	return r, nil
}

func (p *parser) parseHex4() (uint32, error) {
	var x uint32
	for j := 0; j < 4; j++ {
		if p.i >= len(p.data) {
			return 0, p.errHere("unterminated \\u escape")
		}
		c := p.advance()
		switch {
		case c >= '0' && c <= '9':
			x = x<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			x = x<<4 | uint32(c-'a'+10)
		case c >= 'A' && c <= 'F':
			x = x<<4 | uint32(c-'A'+10)
		default:
			return 0, p.errHere("invalid hex digit %q in \\u escape", c)
		}
	}
	return x, nil
}

func (p *parser) parseNumber(at pos) (*value, error) {
	start := p.i
	if p.data[p.i] == '-' {
		p.advance()
	}
	digits := func() bool {
		n := 0
		for p.i < len(p.data) && p.data[p.i] >= '0' && p.data[p.i] <= '9' {
			p.advance()
			n++
		}
		return n > 0
	}
	// Integer part: either a single 0 or a nonzero-led digit run.
	if p.i < len(p.data) && p.data[p.i] == '0' {
		p.advance()
	} else if !digits() {
		return nil, p.errAt(at, "invalid number")
	}
	if p.i < len(p.data) && p.data[p.i] == '.' {
		p.advance()
		if !digits() {
			return nil, p.errAt(at, "invalid number (missing fraction digits)")
		}
	}
	if p.i < len(p.data) && (p.data[p.i] == 'e' || p.data[p.i] == 'E') {
		p.advance()
		if p.i < len(p.data) && (p.data[p.i] == '+' || p.data[p.i] == '-') {
			p.advance()
		}
		if !digits() {
			return nil, p.errAt(at, "invalid number (missing exponent digits)")
		}
	}
	raw := string(p.data[start:p.i])
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return nil, p.errAt(at, "number out of range")
	}
	return &value{at: at, kind: vNum, num: f, raw: raw}, nil
}
