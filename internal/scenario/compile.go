package scenario

import (
	"fmt"
	"math"
	"slices"
	"time"

	"corropt/internal/faults"
	"corropt/internal/rngutil"
	"corropt/internal/sim"
	"corropt/internal/topology"
)

// eventIDBase keeps scheduled-event fault IDs disjoint from the injector's
// sequential chaos-trace IDs: a merged trace can never collide.
const eventIDBase faults.ID = 1 << 40

// Compiled is a scenario lowered onto the simulator's inputs: the built
// topology, the merged (chaos + scheduled-event) fault trace sorted by
// start time, the external clears, and one sim.Config per run. A Compiled
// value is immutable once built and safe to Execute concurrently — runs
// share the trace exactly like the experiment drivers share theirs.
type Compiled struct {
	Scenario *Scenario
	Topo     *topology.Topology
	Trace    []*faults.Fault
	Clears   []sim.Clear
	// ChaosFaults and EventFaults split the trace by origin (ChaosFaults
	// from the random injector, EventFaults expanded from the schedule).
	ChaosFaults, EventFaults int
	Runs                     []CompiledRun
}

// CompiledRun pairs a run's name with its ready-to-go sim configuration.
type CompiledRun struct {
	Name   string
	Config sim.Config
}

// Compile validates a scenario's cross-field constraints (link ranges,
// breakout groups) against the built topology and lowers it onto the sim
// stack. The CLI's `validate` subcommand is Parse + Compile.
func Compile(s *Scenario) (*Compiled, error) {
	topo, err := buildTopology(&s.Topology)
	if err != nil {
		return nil, err
	}
	c := &Compiled{Scenario: s, Topo: topo}

	if s.Chaos != nil {
		inj, err := faults.NewInjector(topo, DefaultTech(), faults.InjectorConfig{
			FaultsPerLinkPerDay: s.Chaos.FaultsPerLinkPerDay,
			MaxRate:             s.Chaos.MaxRate,
			SharedMinLinks:      s.Chaos.SharedMinLinks,
			SharedMaxLinks:      s.Chaos.SharedMaxLinks,
		}, rngutil.New(s.Seed).Split(s.Chaos.Stream))
		if err != nil {
			return nil, fmt.Errorf("scenario %q: chaos profile: %w", s.Name, err)
		}
		c.Trace = inj.Generate(s.Horizon)
		c.ChaosFaults = len(c.Trace)
	}

	eventFaults, clears, err := expandEvents(s, topo)
	if err != nil {
		return nil, err
	}
	c.EventFaults = len(eventFaults)
	c.Trace = append(c.Trace, eventFaults...)
	// Total order on (start, ID): the injector's trace is time-sorted with
	// sequential IDs and event faults sit above eventIDBase, so the merge
	// is deterministic and chaos faults win same-instant ties.
	slices.SortFunc(c.Trace, func(a, b *faults.Fault) int {
		if a.Start != b.Start {
			if a.Start < b.Start {
				return -1
			}
			return 1
		}
		if a.ID != b.ID {
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		return 0
	})
	c.Clears = clears
	slices.SortFunc(c.Clears, func(a, b sim.Clear) int {
		if a.At != b.At {
			if a.At < b.At {
				return -1
			}
			return 1
		}
		return int(a.Fault - b.Fault)
	})

	for i := range s.Runs {
		r := &s.Runs[i]
		cfg, err := runConfig(s, r)
		if err != nil {
			return nil, err
		}
		c.Runs = append(c.Runs, CompiledRun{Name: r.Name, Config: cfg})
	}
	return c, nil
}

func buildTopology(t *Topology) (*topology.Topology, error) {
	switch t.Kind {
	case "clos":
		return topology.NewClos(topology.ClosConfig{
			Pods:               t.Pods,
			ToRsPerPod:         t.ToRsPerPod,
			AggsPerPod:         t.AggsPerPod,
			Spines:             t.Spines,
			SpineUplinksPerAgg: t.SpineUplinksPerAgg,
			BreakoutSize:       t.BreakoutSize,
		})
	case "fattree":
		return topology.NewFatTree(t.K)
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
}

func runConfig(s *Scenario, r *Run) (sim.Config, error) {
	cfg := sim.Config{
		Capacity:           r.Capacity,
		DetectionThreshold: r.DetectionThreshold,
		DetectionDelay:     r.DetectionDelay,
		FixedAccuracy:      r.Accuracy,
		IgnoreProb:         r.IgnoreProb,
		UseDeployedEngine:  r.DeployedEngine,
		NoOpticsFraction:   r.NoOpticsFraction,
		DrainMode:          r.DrainMode,
		RepairCollateral:   r.RepairCollateral,
		ServiceTime:        r.ServiceTime,
		Technicians:        r.Technicians,
		SampleInterval:     s.SampleInterval,
		Seed:               r.Seed,
	}
	switch r.Policy {
	case "none":
		cfg.Policy = sim.PolicyNone
	case "switch-local":
		cfg.Policy = sim.PolicySwitchLocal
	case "fast-only":
		cfg.Policy = sim.PolicyFastOnly
	case "corropt":
		cfg.Policy = sim.PolicyCorrOpt
	default:
		return cfg, fmt.Errorf("scenario %q: run %q: unknown policy %q", s.Name, r.Name, r.Policy)
	}
	switch r.RepairMode {
	case "fixed":
		cfg.Repair = sim.RepairFixedAccuracy
	case "recommendation":
		cfg.Repair = sim.RepairRecommendation
	default:
		return cfg, fmt.Errorf("scenario %q: run %q: unknown repair mode %q", s.Name, r.Name, r.RepairMode)
	}
	if r.Dampening != nil {
		cfg.Dampening = &sim.DampeningConfig{
			Window:   r.Dampening.Window,
			Flaps:    r.Dampening.Flaps,
			Holddown: r.Dampening.Holddown,
		}
	}
	return cfg, nil
}

// expandEvents lowers the schedule onto faults and clears. Every fault an
// event produces gets the next ID above eventIDBase, assigned in schedule
// order, so expansion is deterministic.
func expandEvents(s *Scenario, topo *topology.Topology) ([]*faults.Fault, []sim.Clear, error) {
	var trace []*faults.Fault
	var clears []sim.Clear
	nextID := eventIDBase
	labelID := make(map[string]faults.ID)

	checkLink := func(i, link int) (topology.LinkID, error) {
		if link >= topo.NumLinks() {
			return 0, fmt.Errorf("scenario %q: events[%d]: link %d out of range (topology has %d links)",
				s.Name, i, link, topo.NumLinks())
		}
		return topology.LinkID(link), nil
	}
	directRate := func(dir string, rate float64) [2]float64 {
		switch dir {
		case "down":
			return [2]float64{0, rate}
		case "both":
			return [2]float64{rate, rate}
		default:
			return [2]float64{rate, 0}
		}
	}
	addFault := func(f *faults.Fault, label string) {
		f.ID = nextID
		nextID++
		trace = append(trace, f)
		if label != "" {
			labelID[label] = f.ID
		}
	}

	for i := range s.Events {
		ev := &s.Events[i]
		switch ev.Kind {
		case EventCorrupt:
			l, err := checkLink(i, ev.Link)
			if err != nil {
				return nil, nil, err
			}
			addFault(&faults.Fault{
				Cause:   causeFromName(ev.Cause),
				Start:   ev.At,
				Effects: []faults.LinkEffect{{Link: l, DirectRate: directRate(ev.Direction, ev.Rate)}},
			}, ev.Label)
		case EventRepair:
			id, ok := labelID[ev.Target]
			if !ok {
				// The decoder verified the label exists somewhere in the
				// schedule; it must therefore appear later. Resolve it in a
				// second pass below.
				clears = append(clears, sim.Clear{At: ev.At, Fault: -faults.ID(i) - 1})
				continue
			}
			clears = append(clears, sim.Clear{At: ev.At, Fault: id})
		case EventFlap:
			l, err := checkLink(i, ev.Link)
			if err != nil {
				return nil, nil, err
			}
			period := ev.Up + ev.Down
			for n := 0; n < ev.Count; n++ {
				start := ev.Start + time.Duration(n)*period
				f := &faults.Fault{
					Cause:      faults.BadTransceiver,
					Start:      start,
					Reseatable: true, // a flapping link is the loose-transceiver case
					Effects:    []faults.LinkEffect{{Link: l, DirectRate: directRate(ev.Direction, ev.Rate)}},
				}
				addFault(f, "")
				clears = append(clears, sim.Clear{At: start + ev.Up, Fault: f.ID})
			}
		case EventRamp:
			l, err := checkLink(i, ev.Link)
			if err != nil {
				return nil, nil, err
			}
			step := ev.Duration / time.Duration(ev.Steps)
			if step <= 0 {
				return nil, nil, fmt.Errorf("scenario %q: events[%d]: ramp duration %v too short for %d steps",
					s.Name, i, ev.Duration, ev.Steps)
			}
			for n := 0; n < ev.Steps; n++ {
				// Rates interpolate log-uniformly from → to, matching how
				// optical degradation compounds multiplicatively; the final
				// step holds `to` and persists until repaired.
				frac := float64(n) / float64(ev.Steps-1)
				rate := ev.From * math.Pow(ev.To/ev.From, frac)
				start := ev.Start + time.Duration(n)*step
				f := &faults.Fault{
					Cause:   faults.DecayingTransmitter,
					Start:   start,
					Effects: []faults.LinkEffect{{Link: l, DirectRate: directRate(ev.Direction, rate)}},
				}
				addFault(f, "")
				if n < ev.Steps-1 {
					// Each step is replaced by the next: the clear lands at
					// the same instant and RunEvents resolves clear-first.
					clears = append(clears, sim.Clear{At: start + step, Fault: f.ID})
				}
			}
		case EventBreakout:
			l, err := checkLink(i, ev.Link)
			if err != nil {
				return nil, nil, err
			}
			group := topo.SameBreakout(l)
			if len(group) < 2 {
				return nil, nil, fmt.Errorf("scenario %q: events[%d]: link %d has no breakout siblings (group size %d)",
					s.Name, i, ev.Link, len(group))
			}
			effects := make([]faults.LinkEffect, len(group))
			for j, gl := range group {
				effects[j] = faults.LinkEffect{Link: gl, DirectRate: directRate(ev.Direction, ev.Rate)}
			}
			addFault(&faults.Fault{Cause: faults.SharedComponent, Start: ev.At, Effects: effects}, ev.Label)
		default:
			return nil, nil, fmt.Errorf("scenario %q: events[%d]: unknown kind %q", s.Name, i, ev.Kind)
		}
	}
	// Second pass: resolve repairs that targeted forward declarations.
	for j := range clears {
		if clears[j].Fault < 0 {
			i := int(-clears[j].Fault - 1)
			id, ok := labelID[s.Events[i].Target]
			if !ok {
				return nil, nil, fmt.Errorf("scenario %q: events[%d]: repair targets unknown event id %q",
					s.Name, i, s.Events[i].Target)
			}
			clears[j].Fault = id
		}
	}
	return trace, clears, nil
}

func causeFromName(name string) faults.RootCause {
	switch name {
	case "connector-contamination":
		return faults.ConnectorContamination
	case "damaged-fiber":
		return faults.DamagedFiber
	case "decaying-transmitter":
		return faults.DecayingTransmitter
	default:
		return faults.BadTransceiver
	}
}
