// Package scenario implements the declarative scenario DSL (DESIGN.md
// §7.6): a versioned, strictly-parsed JSON-subset format describing a
// topology, a chaos (random fault) profile, a timed event schedule, one or
// more mitigation-policy runs, and declarative assertions over the runs'
// results. Scenarios compile onto the existing sim + faults + core stack —
// the compiler produces a shared fault trace plus per-run sim.Configs, the
// executor replays every run on the pooled sim.Scratch worker pool — and
// each committed scenario under scenarios/ doubles as a golden-transcript
// regression test pinning the whole simulator surface byte-for-byte.
//
// Determinism: all randomness flows from the scenario's seed through
// rngutil substreams (the chaos stream for the injector, "sim" per run for
// repair outcomes), runs execute on runner.MapScratch with results
// collected in declaration order, and the transcript is assembled from
// those ordered results — so output is byte-identical for any worker count.
package scenario

import (
	"time"

	"corropt/internal/optics"
)

// Version is the scenario format version this package reads and writes.
const Version = 1

// Scenario is a fully decoded and default-filled scenario. The zero value
// is not valid; build one with Parse (which validates and fills defaults)
// or populate every field by hand and run it through Compile.
type Scenario struct {
	// Version is the format version; always Version after a Parse.
	Version int
	// Name identifies the scenario ([a-z0-9_]+); goldens live under
	// scenarios/golden/<name>.txt.
	Name string
	// Description is free-form prose for the transcript header.
	Description string
	// Seed is the root of every rngutil substream in the scenario.
	Seed uint64
	// Horizon is the simulated duration.
	Horizon time.Duration
	// SampleInterval is the output sampling cadence; default 1h.
	SampleInterval time.Duration
	// Topology describes the fabric to build.
	Topology Topology
	// Chaos optionally adds a random background fault trace.
	Chaos *Chaos
	// Events are the scheduled (deterministic) fault events.
	Events []Event
	// Runs are the policy configurations replayed against the shared
	// trace; at least one is required.
	Runs []Run
	// Assertions are checked against the runs' results.
	Assertions []Assertion
}

// Topology selects and sizes the fabric.
type Topology struct {
	// Kind is "clos" or "fattree".
	Kind string
	// Clos shape (Kind "clos").
	Pods, ToRsPerPod, AggsPerPod, Spines, SpineUplinksPerAgg, BreakoutSize int
	// K is the fat-tree arity (Kind "fattree").
	K int
}

// Chaos configures the random background fault trace. Zero values for the
// optional knobs mean the injector's defaults, exactly as when the
// experiment drivers build their traces.
type Chaos struct {
	// Stream names the rngutil substream the injector draws from; the
	// trace is rngutil.New(seed).Split(stream). Default "chaos".
	Stream string
	// FaultsPerLinkPerDay is the Poisson arrival intensity per link.
	FaultsPerLinkPerDay float64
	// MaxRate caps sampled corruption rates; 0 = injector default (0.1).
	MaxRate float64
	// SharedMinLinks/SharedMaxLinks bound shared-component fault spans;
	// 0 = injector defaults (2 and 4).
	SharedMinLinks, SharedMaxLinks int
}

// Event kinds.
const (
	// EventCorrupt starts corruption on one link at a fixed time.
	EventCorrupt = "corrupt"
	// EventRepair externally clears a labeled corrupt/breakout event.
	EventRepair = "repair"
	// EventFlap is a storm of short-lived corruption bursts on one link.
	EventFlap = "flap"
	// EventRamp is a stepwise optical-degradation trajectory on one link.
	EventRamp = "ramp"
	// EventBreakout corrupts a whole breakout-sibling group at once.
	EventBreakout = "breakout"
)

// Event is one scheduled entry; Kind decides which fields are meaningful
// (the decoder rejects fields that do not belong to the kind).
type Event struct {
	// Kind is one of the Event* constants.
	Kind string
	// Label optionally names a corrupt/breakout event so a repair event
	// can target it ("id" in the source form).
	Label string
	// At schedules corrupt, repair, and breakout events.
	At time.Duration
	// Link is the target link (corrupt, flap, ramp, and breakout — where
	// it seeds the sibling group).
	Link int
	// Rate is the direct corruption rate (corrupt, flap, breakout).
	Rate float64
	// Direction is "up", "down", or "both"; default "up".
	Direction string
	// Cause is the root-cause name for corrupt events; default
	// "bad-transceiver".
	Cause string
	// Target is the label a repair event clears.
	Target string
	// Start schedules flap and ramp events.
	Start time.Duration
	// Count is the number of flap bursts.
	Count int
	// Up and Down are the flap burst and gap durations.
	Up, Down time.Duration
	// Duration spans the ramp; Steps divides it; the rate interpolates
	// log-uniformly From → To across the steps.
	Duration time.Duration
	Steps    int
	From, To float64
}

// Run is one policy configuration replayed against the shared trace.
type Run struct {
	// Name identifies the run ([a-z0-9_]+, unique within the scenario).
	Name string
	// Policy is "none", "switch-local", "fast-only", or "corropt".
	Policy string
	// Capacity is the per-ToR constraint c; default 0.75.
	Capacity float64
	// DetectionThreshold triggers mitigation; default 1e-6.
	DetectionThreshold float64
	// DetectionDelay is monitoring latency; default 0.
	DetectionDelay time.Duration
	// RepairMode is "fixed" (fixed accuracy) or "recommendation"
	// (Algorithm 1 + technician); default "fixed".
	RepairMode string
	// Accuracy is the per-attempt success probability under "fixed";
	// default 0.8.
	Accuracy float64
	// IgnoreProb is the probability a recommendation is ignored.
	IgnoreProb float64
	// DeployedEngine swaps in the simplified deployed engine (§7.2).
	DeployedEngine bool
	// NoOpticsFraction is the fraction of links without optical data.
	NoOpticsFraction float64
	// DrainMode enables the §8 drain-instead-of-disable extension.
	DrainMode bool
	// RepairCollateral models breakout repair collateral (§8).
	RepairCollateral bool
	// ServiceTime is one repair attempt's duration; default 48h.
	ServiceTime time.Duration
	// Technicians bounds concurrent repairs; 0 = unlimited.
	Technicians int
	// Seed drives this run's repair randomness; defaults to the
	// scenario seed.
	Seed uint64
	// Dampening optionally enables link-flap dampening.
	Dampening *Dampening
}

// Dampening mirrors sim.DampeningConfig in the DSL.
type Dampening struct {
	Window   time.Duration
	Flaps    int
	Holddown time.Duration
}

// Assertion is one declarative check over the executed runs. Per-run
// metrics name one run; ratio metrics name two (numerator, denominator).
// At least one bound must be present.
type Assertion struct {
	// Metric names the quantity; see RunMetrics and RatioMetrics.
	Metric string
	// Run is the subject of a per-run metric.
	Run string
	// Runs is the [numerator, denominator] pair of a ratio metric.
	Runs [2]string
	// Min and Max bound the value (inclusive); nil = unbounded.
	Min, Max *float64
}

// RunMetrics enumerates the per-run assertion metrics: how each name maps
// onto the sim result is documented in DESIGN.md §7.6.
var RunMetrics = map[string]bool{
	"integrated_penalty":         true,
	"corruption_reports":         true,
	"tickets_opened":             true,
	"links_disabled":             true,
	"undisabled_events":          true,
	"dampened_holds":             true,
	"first_attempt_success_rate": true,
	"mean_attempts":              true,
	"min_worst_tor_fraction":     true,
	"mean_tor_fraction":          true,
	"final_disabled":             true,
	"final_active_corrupting":    true,
	"max_disabled":               true,
	"max_active_corrupting":      true,
	"samples":                    true,
}

// RatioMetrics enumerates the cross-run ratio metrics.
var RatioMetrics = map[string]bool{
	"penalty_ratio": true,
	"tickets_ratio": true,
}

// DefaultTech is the transceiver technology scenarios simulate with. It
// matches experiments.DefaultTech() — the differential test pins the two
// together — without making the compiler depend on the experiment drivers.
func DefaultTech() optics.Technology {
	return optics.Technology{Name: "40G-LR4", NominalTx: 0, TxThreshold: -4, RxThreshold: -10, PathLoss: 3}
}
