package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenarioParse drives the strict parser with arbitrary bytes. The
// contract under fuzzing is reject-or-roundtrip: any input either fails
// with an error (never a panic), or parses to a Scenario whose canonical
// encoding re-parses to the identical Scenario and re-encodes to the
// identical bytes (the fixpoint the committed profiles rely on).
func FuzzScenarioParse(f *testing.F) {
	for _, dir := range []string{filepath.Join("..", "..", "scenarios"), filepath.Join("testdata", "bad")} {
		files, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			f.Fatal(err)
		}
		for _, file := range files {
			data, err := os.ReadFile(file)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte(`{"version": 1}`))
	f.Add([]byte(`# comment only`))
	f.Add([]byte(`{"version": 1, "name": "f", "horizon": "1d",
  "topology": {"kind": "fattree", "k": 4},
  "runs": [{"name": "a", "policy": "none"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data, "fuzz")
		if err != nil {
			return
		}
		enc := Encode(s)
		s2, err := Parse(enc, "fuzz(encoded)")
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\ninput: %q\nencoded:\n%s", err, data, enc)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("roundtrip changed the scenario\ninput: %q\nfirst:  %+v\nsecond: %+v", data, s, s2)
		}
		if enc2 := Encode(s2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding unstable\ninput: %q\nfirst:\n%s\nsecond:\n%s", data, enc, enc2)
		}
	})
}
