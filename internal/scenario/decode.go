package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Parse parses, validates, and default-fills a scenario document. file is
// used only for error positions ("file:line:col: msg"). The grammar is
// strict: unknown fields, duplicate keys, wrong types, bad enum values,
// events before t=0, and assertions on unknown metrics or runs are all
// rejected with a position-bearing *Error. The returned Scenario has every
// default filled in, so Encode(Parse(x)) is a canonical form and
// Parse(Encode(Parse(x))) is a fixpoint (the property FuzzScenarioParse
// pins).
func Parse(data []byte, file string) (*Scenario, error) {
	root, err := parseTree(data, file)
	if err != nil {
		return nil, err
	}
	d := &decoder{file: file}
	return d.scenario(root)
}

type decoder struct {
	file string
}

func (d *decoder) errAt(at pos, format string, args ...any) error {
	return &Error{File: d.file, Line: at.line, Col: at.col, Msg: fmt.Sprintf(format, args...)}
}

// obj wraps an object value for strict field consumption: get marks a
// field as known, finish rejects the first unknown one.
type obj struct {
	d    *decoder
	v    *value
	what string
	used map[string]bool
}

func (d *decoder) object(v *value, what string) (*obj, error) {
	if v.kind != vObj {
		return nil, d.errAt(v.at, "%s must be an object, got %s", what, v.kind)
	}
	return &obj{d: d, v: v, what: what, used: make(map[string]bool)}, nil
}

func (o *obj) get(key string) *value {
	o.used[key] = true
	return o.v.field(key)
}

func (o *obj) require(key string) (*value, error) {
	v := o.get(key)
	if v == nil {
		return nil, o.d.errAt(o.v.at, "missing required field %q in %s", key, o.what)
	}
	return v, nil
}

func (o *obj) finish() error {
	for _, f := range o.v.fields {
		if !o.used[f.key] {
			return o.d.errAt(f.at, "unknown field %q in %s", f.key, o.what)
		}
	}
	return nil
}

func (d *decoder) str(v *value, what string) (string, error) {
	if v.kind != vStr {
		return "", d.errAt(v.at, "%s must be a string, got %s", what, v.kind)
	}
	return v.str, nil
}

func (d *decoder) num(v *value, what string) (float64, error) {
	if v.kind != vNum {
		return 0, d.errAt(v.at, "%s must be a number, got %s", what, v.kind)
	}
	return v.num, nil
}

func (d *decoder) boolean(v *value, what string) (bool, error) {
	if v.kind != vBool {
		return false, d.errAt(v.at, "%s must be a boolean, got %s", what, v.kind)
	}
	return v.boolv, nil
}

func (d *decoder) integer(v *value, what string) (int, error) {
	if v.kind != vNum {
		return 0, d.errAt(v.at, "%s must be an integer, got %s", what, v.kind)
	}
	if n, err := strconv.ParseInt(v.raw, 10, 64); err == nil {
		if n < math.MinInt32 || n > math.MaxInt32 {
			return 0, d.errAt(v.at, "%s out of range", what)
		}
		return int(n), nil
	}
	if v.num != math.Trunc(v.num) || math.Abs(v.num) > math.MaxInt32 {
		return 0, d.errAt(v.at, "%s must be an integer", what)
	}
	return int(v.num), nil
}

func (d *decoder) uintval(v *value, what string) (uint64, error) {
	if v.kind != vNum {
		return 0, d.errAt(v.at, "%s must be a non-negative integer, got %s", what, v.kind)
	}
	if n, err := strconv.ParseUint(v.raw, 10, 64); err == nil {
		return n, nil
	}
	if v.num != math.Trunc(v.num) || v.num < 0 || v.num > 1<<53 {
		return 0, d.errAt(v.at, "%s must be a non-negative integer", what)
	}
	return uint64(v.num), nil
}

// dur decodes a duration string: Go time.ParseDuration syntax plus a "Nd"
// days form ("30d", "1.5d").
func (d *decoder) dur(v *value, what string) (time.Duration, error) {
	if v.kind != vStr {
		return 0, d.errAt(v.at, "%s must be a duration string (e.g. \"48h\", \"30d\"), got %s", what, v.kind)
	}
	dur, err := parseDur(v.str)
	if err != nil {
		return 0, d.errAt(v.at, "%s: invalid duration %q", what, v.str)
	}
	return dur, nil
}

func (d *decoder) durPos(v *value, what string) (time.Duration, error) {
	dur, err := d.dur(v, what)
	if err != nil {
		return 0, err
	}
	if dur <= 0 {
		return 0, d.errAt(v.at, "%s must be positive, got %q", what, v.str)
	}
	return dur, nil
}

// durEventTime decodes an event timestamp, rejecting times before t=0.
func (d *decoder) durEventTime(v *value, what string) (time.Duration, error) {
	dur, err := d.dur(v, what)
	if err != nil {
		return 0, err
	}
	if dur < 0 {
		return 0, d.errAt(v.at, "%s is before t=0 (%q)", what, v.str)
	}
	return dur, nil
}

func parseDur(s string) (time.Duration, error) {
	if rest, ok := strings.CutSuffix(s, "d"); ok {
		if f, err := strconv.ParseFloat(rest, 64); err == nil {
			ns := f * float64(24*time.Hour)
			if math.IsNaN(ns) || math.Abs(ns) >= math.MaxInt64 {
				return 0, fmt.Errorf("duration %q out of range", s)
			}
			return time.Duration(ns), nil
		}
	}
	return time.ParseDuration(s)
}

// fraction decodes a number constrained to a half-open or closed unit
// interval; lo/hi are inclusive bounds.
func (d *decoder) fraction(v *value, what string, lo, hi float64) (float64, error) {
	f, err := d.num(v, what)
	if err != nil {
		return 0, err
	}
	if f < lo || f > hi || math.IsNaN(f) {
		return 0, d.errAt(v.at, "%s must be in [%v, %v], got %v", what, lo, hi, f)
	}
	return f, nil
}

func validName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// validStream additionally admits '-': chaos streams name rngutil
// substreams, and the pre-DSL experiment drivers use hyphenated stream
// labels (e.g. "fig14-small") that scenarios must reproduce exactly to
// get the same fault trace.
func validStream(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' && c != '-' {
			return false
		}
	}
	return true
}

func (d *decoder) stream(v *value, what string) (string, error) {
	s, err := d.str(v, what)
	if err != nil {
		return "", err
	}
	if !validStream(s) {
		return "", d.errAt(v.at, "%s must match [a-z0-9_-]{1,64}, got %q", what, s)
	}
	return s, nil
}

func (d *decoder) name(v *value, what string) (string, error) {
	s, err := d.str(v, what)
	if err != nil {
		return "", err
	}
	if !validName(s) {
		return "", d.errAt(v.at, "%s must match [a-z0-9_]{1,64}, got %q", what, s)
	}
	return s, nil
}

func (d *decoder) scenario(root *value) (*Scenario, error) {
	o, err := d.object(root, "scenario")
	if err != nil {
		return nil, err
	}
	s := &Scenario{SampleInterval: time.Hour, Seed: 1}

	vv, err := o.require("version")
	if err != nil {
		return nil, err
	}
	ver, err := d.integer(vv, `"version"`)
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, d.errAt(vv.at, "unsupported scenario version %d (this build reads version %d)", ver, Version)
	}
	s.Version = ver

	nv, err := o.require("name")
	if err != nil {
		return nil, err
	}
	if s.Name, err = d.name(nv, `"name"`); err != nil {
		return nil, err
	}
	if v := o.get("description"); v != nil {
		if s.Description, err = d.str(v, `"description"`); err != nil {
			return nil, err
		}
	}
	if v := o.get("seed"); v != nil {
		if s.Seed, err = d.uintval(v, `"seed"`); err != nil {
			return nil, err
		}
	}
	hv, err := o.require("horizon")
	if err != nil {
		return nil, err
	}
	if s.Horizon, err = d.durPos(hv, `"horizon"`); err != nil {
		return nil, err
	}
	if v := o.get("sample_interval"); v != nil {
		if s.SampleInterval, err = d.durPos(v, `"sample_interval"`); err != nil {
			return nil, err
		}
	}

	tv, err := o.require("topology")
	if err != nil {
		return nil, err
	}
	if s.Topology, err = d.topology(tv); err != nil {
		return nil, err
	}
	if v := o.get("chaos"); v != nil {
		if s.Chaos, err = d.chaos(v); err != nil {
			return nil, err
		}
	}
	if v := o.get("events"); v != nil {
		if s.Events, err = d.events(v); err != nil {
			return nil, err
		}
	}

	rv, err := o.require("runs")
	if err != nil {
		return nil, err
	}
	if s.Runs, err = d.runs(rv, s.Seed); err != nil {
		return nil, err
	}
	if v := o.get("assertions"); v != nil {
		if s.Assertions, err = d.assertions(v, s.Runs); err != nil {
			return nil, err
		}
	}
	return s, o.finish()
}

func (d *decoder) topology(v *value) (Topology, error) {
	var t Topology
	o, err := d.object(v, `"topology"`)
	if err != nil {
		return t, err
	}
	kv, err := o.require("kind")
	if err != nil {
		return t, err
	}
	kind, err := d.str(kv, `topology "kind"`)
	if err != nil {
		return t, err
	}
	t.Kind = kind
	intField := func(key string, dst *int, min int) error {
		fv, err := o.require(key)
		if err != nil {
			return err
		}
		n, err := d.integer(fv, fmt.Sprintf("topology %q", key))
		if err != nil {
			return err
		}
		if n < min {
			return d.errAt(fv.at, "topology %q must be >= %d, got %d", key, min, n)
		}
		*dst = n
		return nil
	}
	switch kind {
	case "clos":
		for _, f := range []struct {
			key string
			dst *int
			min int
		}{
			{"pods", &t.Pods, 1},
			{"tors_per_pod", &t.ToRsPerPod, 1},
			{"aggs_per_pod", &t.AggsPerPod, 1},
			{"spines", &t.Spines, 1},
			{"spine_uplinks_per_agg", &t.SpineUplinksPerAgg, 1},
			{"breakout_size", &t.BreakoutSize, 1},
		} {
			if err := intField(f.key, f.dst, f.min); err != nil {
				return t, err
			}
		}
	case "fattree":
		if err := intField("k", &t.K, 2); err != nil {
			return t, err
		}
	default:
		return t, d.errAt(kv.at, "unknown topology kind %q (want \"clos\" or \"fattree\")", kind)
	}
	return t, o.finish()
}

func (d *decoder) chaos(v *value) (*Chaos, error) {
	o, err := d.object(v, `"chaos"`)
	if err != nil {
		return nil, err
	}
	c := &Chaos{Stream: "chaos"}
	if sv := o.get("stream"); sv != nil {
		if c.Stream, err = d.stream(sv, `chaos "stream"`); err != nil {
			return nil, err
		}
	}
	rv, err := o.require("faults_per_link_per_day")
	if err != nil {
		return nil, err
	}
	rate, err := d.num(rv, `chaos "faults_per_link_per_day"`)
	if err != nil {
		return nil, err
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, d.errAt(rv.at, `chaos "faults_per_link_per_day" must be positive, got %v`, rate)
	}
	c.FaultsPerLinkPerDay = rate
	if mv := o.get("max_rate"); mv != nil {
		if c.MaxRate, err = d.fraction(mv, `chaos "max_rate"`, 1e-9, 1); err != nil {
			return nil, err
		}
	}
	if sv := o.get("shared_min_links"); sv != nil {
		if c.SharedMinLinks, err = d.integer(sv, `chaos "shared_min_links"`); err != nil {
			return nil, err
		}
		if c.SharedMinLinks < 2 {
			return nil, d.errAt(sv.at, `chaos "shared_min_links" must be >= 2, got %d`, c.SharedMinLinks)
		}
	}
	if sv := o.get("shared_max_links"); sv != nil {
		if c.SharedMaxLinks, err = d.integer(sv, `chaos "shared_max_links"`); err != nil {
			return nil, err
		}
		lo := c.SharedMinLinks
		if lo == 0 {
			lo = 2
		}
		if c.SharedMaxLinks < lo {
			return nil, d.errAt(sv.at, `chaos "shared_max_links" must be >= shared_min_links (%d), got %d`, lo, c.SharedMaxLinks)
		}
	}
	return c, o.finish()
}

var causeNames = map[string]bool{
	"connector-contamination": true,
	"damaged-fiber":           true,
	"decaying-transmitter":    true,
	"bad-transceiver":         true,
}

func (d *decoder) events(v *value) ([]Event, error) {
	if v.kind != vArr {
		return nil, d.errAt(v.at, `"events" must be an array, got %s`, v.kind)
	}
	// First sweep: collect the labels so repair events may target forward
	// declarations; duplicates are caught during the strict decode below.
	labels := make(map[string]bool)
	for _, item := range v.items {
		if item.kind != vObj {
			continue
		}
		if id := item.field("id"); id != nil && id.kind == vStr {
			labels[id.str] = true
		}
	}
	var out []Event
	seenLabels := make(map[string]bool)
	for i, item := range v.items {
		ev, err := d.event(item, i, labels, seenLabels)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

func (d *decoder) event(v *value, idx int, labels, seenLabels map[string]bool) (Event, error) {
	var ev Event
	what := fmt.Sprintf("events[%d]", idx)
	o, err := d.object(v, what)
	if err != nil {
		return ev, err
	}
	kv, err := o.require("kind")
	if err != nil {
		return ev, err
	}
	kind, err := d.str(kv, what+` "kind"`)
	if err != nil {
		return ev, err
	}
	ev.Kind = kind
	ev.Direction = "up"

	link := func() error {
		lv, err := o.require("link")
		if err != nil {
			return err
		}
		n, err := d.integer(lv, what+` "link"`)
		if err != nil {
			return err
		}
		if n < 0 {
			return d.errAt(lv.at, "%s \"link\" must be >= 0, got %d", what, n)
		}
		ev.Link = n
		return nil
	}
	at := func() error {
		av, err := o.require("at")
		if err != nil {
			return err
		}
		ev.At, err = d.durEventTime(av, what+` "at"`)
		return err
	}
	rate := func() error {
		rv, err := o.require("rate")
		if err != nil {
			return err
		}
		f, err := d.num(rv, what+` "rate"`)
		if err != nil {
			return err
		}
		if f <= 0 || f > 1 || math.IsNaN(f) {
			return d.errAt(rv.at, "%s \"rate\" must be in (0, 1], got %v", what, f)
		}
		ev.Rate = f
		return nil
	}
	direction := func() error {
		dv := o.get("direction")
		if dv == nil {
			return nil
		}
		s, err := d.str(dv, what+` "direction"`)
		if err != nil {
			return err
		}
		if s != "up" && s != "down" && s != "both" {
			return d.errAt(dv.at, "%s \"direction\" must be \"up\", \"down\", or \"both\", got %q", what, s)
		}
		ev.Direction = s
		return nil
	}
	label := func() error {
		iv := o.get("id")
		if iv == nil {
			return nil
		}
		s, err := d.name(iv, what+` "id"`)
		if err != nil {
			return err
		}
		if seenLabels[s] {
			return d.errAt(iv.at, "%s \"id\" %q already used by an earlier event", what, s)
		}
		seenLabels[s] = true
		ev.Label = s
		return nil
	}

	switch kind {
	case EventCorrupt:
		ev.Cause = "bad-transceiver"
		if err := first(at, link, rate, direction, label); err != nil {
			return ev, err
		}
		if cv := o.get("cause"); cv != nil {
			s, err := d.str(cv, what+` "cause"`)
			if err != nil {
				return ev, err
			}
			if !causeNames[s] {
				return ev, d.errAt(cv.at, "%s: unknown cause %q (single-link causes only)", what, s)
			}
			ev.Cause = s
		}
	case EventRepair:
		if err := at(); err != nil {
			return ev, err
		}
		tv, err := o.require("target")
		if err != nil {
			return ev, err
		}
		target, err := d.str(tv, what+` "target"`)
		if err != nil {
			return ev, err
		}
		if !labels[target] {
			return ev, d.errAt(tv.at, "%s: repair targets unknown event id %q", what, target)
		}
		ev.Target = target
	case EventFlap:
		if err := first(link, rate, direction); err != nil {
			return ev, err
		}
		sv, err := o.require("start")
		if err != nil {
			return ev, err
		}
		if ev.Start, err = d.durEventTime(sv, what+` "start"`); err != nil {
			return ev, err
		}
		cv, err := o.require("count")
		if err != nil {
			return ev, err
		}
		if ev.Count, err = d.integer(cv, what+` "count"`); err != nil {
			return ev, err
		}
		if ev.Count < 1 || ev.Count > 10000 {
			return ev, d.errAt(cv.at, "%s \"count\" must be in [1, 10000], got %d", what, ev.Count)
		}
		uv, err := o.require("up")
		if err != nil {
			return ev, err
		}
		if ev.Up, err = d.durPos(uv, what+` "up"`); err != nil {
			return ev, err
		}
		dv, err := o.require("down")
		if err != nil {
			return ev, err
		}
		if ev.Down, err = d.durPos(dv, what+` "down"`); err != nil {
			return ev, err
		}
	case EventRamp:
		if err := first(link, direction); err != nil {
			return ev, err
		}
		sv, err := o.require("start")
		if err != nil {
			return ev, err
		}
		if ev.Start, err = d.durEventTime(sv, what+` "start"`); err != nil {
			return ev, err
		}
		dv, err := o.require("duration")
		if err != nil {
			return ev, err
		}
		if ev.Duration, err = d.durPos(dv, what+` "duration"`); err != nil {
			return ev, err
		}
		stv, err := o.require("steps")
		if err != nil {
			return ev, err
		}
		if ev.Steps, err = d.integer(stv, what+` "steps"`); err != nil {
			return ev, err
		}
		if ev.Steps < 2 || ev.Steps > 1000 {
			return ev, d.errAt(stv.at, "%s \"steps\" must be in [2, 1000], got %d", what, ev.Steps)
		}
		for _, fld := range []struct {
			key string
			dst *float64
		}{{"from", &ev.From}, {"to", &ev.To}} {
			fv, err := o.require(fld.key)
			if err != nil {
				return ev, err
			}
			f, err := d.num(fv, fmt.Sprintf("%s %q", what, fld.key))
			if err != nil {
				return ev, err
			}
			if f <= 0 || f > 1 || math.IsNaN(f) {
				return ev, d.errAt(fv.at, "%s %q must be in (0, 1], got %v", what, fld.key, f)
			}
			*fld.dst = f
		}
	case EventBreakout:
		if err := first(at, link, rate, direction, label); err != nil {
			return ev, err
		}
	default:
		return ev, d.errAt(kv.at, "%s: unknown event kind %q", what, kind)
	}
	return ev, o.finish()
}

// first runs the checks in order, returning the first error.
func first(checks ...func() error) error {
	for _, c := range checks {
		if err := c(); err != nil {
			return err
		}
	}
	return nil
}

var policyNames = map[string]bool{
	"none":         true,
	"switch-local": true,
	"fast-only":    true,
	"corropt":      true,
}

func (d *decoder) runs(v *value, scenarioSeed uint64) ([]Run, error) {
	if v.kind != vArr {
		return nil, d.errAt(v.at, `"runs" must be an array, got %s`, v.kind)
	}
	if len(v.items) == 0 {
		return nil, d.errAt(v.at, `"runs" must name at least one run`)
	}
	seen := make(map[string]bool)
	var out []Run
	for i, item := range v.items {
		r, err := d.run(item, i, scenarioSeed)
		if err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, d.errAt(item.at, "duplicate run name %q", r.Name)
		}
		seen[r.Name] = true
		out = append(out, r)
	}
	return out, nil
}

func (d *decoder) run(v *value, idx int, scenarioSeed uint64) (Run, error) {
	what := fmt.Sprintf("runs[%d]", idx)
	r := Run{
		Capacity:           0.75,
		DetectionThreshold: 1e-6,
		RepairMode:         "fixed",
		Accuracy:           0.8,
		ServiceTime:        48 * time.Hour,
		Seed:               scenarioSeed,
	}
	o, err := d.object(v, what)
	if err != nil {
		return r, err
	}
	nv, err := o.require("name")
	if err != nil {
		return r, err
	}
	if r.Name, err = d.name(nv, what+` "name"`); err != nil {
		return r, err
	}
	pv, err := o.require("policy")
	if err != nil {
		return r, err
	}
	policy, err := d.str(pv, what+` "policy"`)
	if err != nil {
		return r, err
	}
	if !policyNames[policy] {
		return r, d.errAt(pv.at, "%s: unknown policy %q (want \"none\", \"switch-local\", \"fast-only\", or \"corropt\")", what, policy)
	}
	r.Policy = policy

	if fv := o.get("capacity"); fv != nil {
		if r.Capacity, err = d.fraction(fv, what+` "capacity"`, 1e-9, 1); err != nil {
			return r, err
		}
	}
	if fv := o.get("detection_threshold"); fv != nil {
		if r.DetectionThreshold, err = d.fraction(fv, what+` "detection_threshold"`, 1e-12, 1); err != nil {
			return r, err
		}
	}
	if fv := o.get("detection_delay"); fv != nil {
		if r.DetectionDelay, err = d.dur(fv, what+` "detection_delay"`); err != nil {
			return r, err
		}
		if r.DetectionDelay < 0 {
			return r, d.errAt(fv.at, "%s \"detection_delay\" must be >= 0", what)
		}
	}
	if fv := o.get("repair_mode"); fv != nil {
		mode, err := d.str(fv, what+` "repair_mode"`)
		if err != nil {
			return r, err
		}
		if mode != "fixed" && mode != "recommendation" {
			return r, d.errAt(fv.at, "%s \"repair_mode\" must be \"fixed\" or \"recommendation\", got %q", what, mode)
		}
		r.RepairMode = mode
	}
	if fv := o.get("accuracy"); fv != nil {
		if r.Accuracy, err = d.fraction(fv, what+` "accuracy"`, 1e-9, 1); err != nil {
			return r, err
		}
	}
	if fv := o.get("ignore_prob"); fv != nil {
		if r.IgnoreProb, err = d.fraction(fv, what+` "ignore_prob"`, 0, 1); err != nil {
			return r, err
		}
	}
	if fv := o.get("deployed_engine"); fv != nil {
		if r.DeployedEngine, err = d.boolean(fv, what+` "deployed_engine"`); err != nil {
			return r, err
		}
	}
	if fv := o.get("no_optics_fraction"); fv != nil {
		if r.NoOpticsFraction, err = d.fraction(fv, what+` "no_optics_fraction"`, 0, 1); err != nil {
			return r, err
		}
	}
	if fv := o.get("drain_mode"); fv != nil {
		if r.DrainMode, err = d.boolean(fv, what+` "drain_mode"`); err != nil {
			return r, err
		}
	}
	if fv := o.get("repair_collateral"); fv != nil {
		if r.RepairCollateral, err = d.boolean(fv, what+` "repair_collateral"`); err != nil {
			return r, err
		}
	}
	if fv := o.get("service_time"); fv != nil {
		if r.ServiceTime, err = d.durPos(fv, what+` "service_time"`); err != nil {
			return r, err
		}
	}
	if fv := o.get("technicians"); fv != nil {
		if r.Technicians, err = d.integer(fv, what+` "technicians"`); err != nil {
			return r, err
		}
		if r.Technicians < 0 {
			return r, d.errAt(fv.at, "%s \"technicians\" must be >= 0, got %d", what, r.Technicians)
		}
	}
	if fv := o.get("seed"); fv != nil {
		if r.Seed, err = d.uintval(fv, what+` "seed"`); err != nil {
			return r, err
		}
	}
	if fv := o.get("dampening"); fv != nil {
		if r.Dampening, err = d.dampening(fv, what); err != nil {
			return r, err
		}
	}
	return r, o.finish()
}

func (d *decoder) dampening(v *value, runWhat string) (*Dampening, error) {
	what := runWhat + ` "dampening"`
	o, err := d.object(v, what)
	if err != nil {
		return nil, err
	}
	dmp := &Dampening{}
	wv, err := o.require("window")
	if err != nil {
		return nil, err
	}
	if dmp.Window, err = d.durPos(wv, what+` "window"`); err != nil {
		return nil, err
	}
	fv, err := o.require("flaps")
	if err != nil {
		return nil, err
	}
	if dmp.Flaps, err = d.integer(fv, what+` "flaps"`); err != nil {
		return nil, err
	}
	if dmp.Flaps < 1 {
		return nil, d.errAt(fv.at, "%s \"flaps\" must be >= 1, got %d", what, dmp.Flaps)
	}
	hv, err := o.require("holddown")
	if err != nil {
		return nil, err
	}
	if dmp.Holddown, err = d.durPos(hv, what+` "holddown"`); err != nil {
		return nil, err
	}
	return dmp, o.finish()
}

func (d *decoder) assertions(v *value, runs []Run) ([]Assertion, error) {
	if v.kind != vArr {
		return nil, d.errAt(v.at, `"assertions" must be an array, got %s`, v.kind)
	}
	names := make(map[string]bool, len(runs))
	for _, r := range runs {
		names[r.Name] = true
	}
	var out []Assertion
	for i, item := range v.items {
		a, err := d.assertion(item, i, names, runs[0].Name, len(runs))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func (d *decoder) assertion(v *value, idx int, runNames map[string]bool, firstRun string, numRuns int) (Assertion, error) {
	var a Assertion
	what := fmt.Sprintf("assertions[%d]", idx)
	o, err := d.object(v, what)
	if err != nil {
		return a, err
	}
	mv, err := o.require("metric")
	if err != nil {
		return a, err
	}
	metric, err := d.str(mv, what+` "metric"`)
	if err != nil {
		return a, err
	}
	a.Metric = metric
	switch {
	case RatioMetrics[metric]:
		rv, err := o.require("runs")
		if err != nil {
			return a, err
		}
		if rv.kind != vArr || len(rv.items) != 2 {
			return a, d.errAt(rv.at, "%s \"runs\" must be a [numerator, denominator] pair of run names", what)
		}
		for j, item := range rv.items {
			name, err := d.str(item, what+` "runs" entry`)
			if err != nil {
				return a, err
			}
			if !runNames[name] {
				return a, d.errAt(item.at, "%s references unknown run %q", what, name)
			}
			a.Runs[j] = name
		}
	case RunMetrics[metric]:
		if rv := o.get("run"); rv != nil {
			name, err := d.str(rv, what+` "run"`)
			if err != nil {
				return a, err
			}
			if !runNames[name] {
				return a, d.errAt(rv.at, "%s references unknown run %q", what, name)
			}
			a.Run = name
		} else if numRuns == 1 {
			a.Run = firstRun
		} else {
			return a, d.errAt(v.at, "%s: \"run\" is required when the scenario has multiple runs", what)
		}
	default:
		return a, d.errAt(mv.at, "%s: unknown assertion metric %q", what, metric)
	}
	for _, fld := range []struct {
		key string
		dst **float64
	}{{"min", &a.Min}, {"max", &a.Max}} {
		fv := o.get(fld.key)
		if fv == nil {
			continue
		}
		f, err := d.num(fv, fmt.Sprintf("%s %q", what, fld.key))
		if err != nil {
			return a, err
		}
		if math.IsNaN(f) {
			return a, d.errAt(fv.at, "%s %q must not be NaN", what, fld.key)
		}
		val := f
		*fld.dst = &val
	}
	if a.Min == nil && a.Max == nil {
		return a, d.errAt(v.at, "%s must bound the metric with \"min\", \"max\", or both", what)
	}
	if a.Min != nil && a.Max != nil && *a.Min > *a.Max {
		return a, d.errAt(v.at, "%s: \"min\" (%v) exceeds \"max\" (%v)", what, *a.Min, *a.Max)
	}
	return a, o.finish()
}
