package scenario

import (
	"strconv"
	"strings"
	"time"
)

// Encode renders a scenario in canonical form: two-space indentation,
// fields in a fixed order, every default-filled value written explicitly,
// empty optional sections omitted. For any s produced by Parse,
// Parse(Encode(s)) returns a Scenario deeply equal to s (the fixpoint
// FuzzScenarioParse pins), and Encode is a pure function of the struct, so
// re-encoding is byte-stable.
func Encode(s *Scenario) []byte {
	e := &encoder{}
	e.open("{")
	e.field("version", strconv.Itoa(s.Version))
	e.field("name", quoteString(s.Name))
	if s.Description != "" {
		e.field("description", quoteString(s.Description))
	}
	e.field("seed", strconv.FormatUint(s.Seed, 10))
	e.field("horizon", quoteString(formatDur(s.Horizon)))
	e.field("sample_interval", quoteString(formatDur(s.SampleInterval)))
	e.key("topology")
	e.topology(&s.Topology)
	if s.Chaos != nil {
		e.key("chaos")
		e.chaos(s.Chaos)
	}
	if len(s.Events) > 0 {
		e.key("events")
		e.open("[")
		for i := range s.Events {
			e.item()
			e.event(&s.Events[i])
		}
		e.close("]")
	}
	e.key("runs")
	e.open("[")
	for i := range s.Runs {
		e.item()
		e.run(&s.Runs[i])
	}
	e.close("]")
	if len(s.Assertions) > 0 {
		e.key("assertions")
		e.open("[")
		for i := range s.Assertions {
			e.item()
			e.assertion(&s.Assertions[i])
		}
		e.close("]")
	}
	e.close("}")
	e.b.WriteByte('\n')
	return []byte(e.b.String())
}

// encoder writes nested JSON with layout state: indent depth and whether
// the current container already has a member (for comma placement).
type encoder struct {
	b      strings.Builder
	indent int
	first  []bool
}

func (e *encoder) line() {
	e.b.WriteByte('\n')
	for i := 0; i < e.indent; i++ {
		e.b.WriteString("  ")
	}
}

// pre starts a new member slot in the current container.
func (e *encoder) pre() {
	if n := len(e.first); n > 0 {
		if !e.first[n-1] {
			e.b.WriteByte(',')
		}
		e.first[n-1] = false
		e.line()
	}
}

func (e *encoder) open(bracket string) {
	e.b.WriteString(bracket)
	e.indent++
	e.first = append(e.first, true)
}

func (e *encoder) close(bracket string) {
	e.indent--
	if !e.first[len(e.first)-1] {
		e.line()
	}
	e.first = e.first[:len(e.first)-1]
	e.b.WriteString(bracket)
}

func (e *encoder) key(name string) {
	e.pre()
	e.b.WriteString(quoteString(name))
	e.b.WriteString(": ")
}

func (e *encoder) field(name, rendered string) {
	e.key(name)
	e.b.WriteString(rendered)
}

func (e *encoder) item() {
	e.pre()
}

func (e *encoder) topology(t *Topology) {
	e.open("{")
	e.field("kind", quoteString(t.Kind))
	switch t.Kind {
	case "clos":
		e.field("pods", strconv.Itoa(t.Pods))
		e.field("tors_per_pod", strconv.Itoa(t.ToRsPerPod))
		e.field("aggs_per_pod", strconv.Itoa(t.AggsPerPod))
		e.field("spines", strconv.Itoa(t.Spines))
		e.field("spine_uplinks_per_agg", strconv.Itoa(t.SpineUplinksPerAgg))
		e.field("breakout_size", strconv.Itoa(t.BreakoutSize))
	case "fattree":
		e.field("k", strconv.Itoa(t.K))
	}
	e.close("}")
}

func (e *encoder) chaos(c *Chaos) {
	e.open("{")
	e.field("stream", quoteString(c.Stream))
	e.field("faults_per_link_per_day", formatFloat(c.FaultsPerLinkPerDay))
	if c.MaxRate != 0 {
		e.field("max_rate", formatFloat(c.MaxRate))
	}
	if c.SharedMinLinks != 0 {
		e.field("shared_min_links", strconv.Itoa(c.SharedMinLinks))
	}
	if c.SharedMaxLinks != 0 {
		e.field("shared_max_links", strconv.Itoa(c.SharedMaxLinks))
	}
	e.close("}")
}

func (e *encoder) event(ev *Event) {
	e.open("{")
	e.field("kind", quoteString(ev.Kind))
	switch ev.Kind {
	case EventCorrupt:
		if ev.Label != "" {
			e.field("id", quoteString(ev.Label))
		}
		e.field("at", quoteString(formatDur(ev.At)))
		e.field("link", strconv.Itoa(ev.Link))
		e.field("rate", formatFloat(ev.Rate))
		e.field("direction", quoteString(ev.Direction))
		e.field("cause", quoteString(ev.Cause))
	case EventRepair:
		e.field("at", quoteString(formatDur(ev.At)))
		e.field("target", quoteString(ev.Target))
	case EventFlap:
		e.field("link", strconv.Itoa(ev.Link))
		e.field("start", quoteString(formatDur(ev.Start)))
		e.field("count", strconv.Itoa(ev.Count))
		e.field("up", quoteString(formatDur(ev.Up)))
		e.field("down", quoteString(formatDur(ev.Down)))
		e.field("rate", formatFloat(ev.Rate))
		e.field("direction", quoteString(ev.Direction))
	case EventRamp:
		e.field("link", strconv.Itoa(ev.Link))
		e.field("start", quoteString(formatDur(ev.Start)))
		e.field("duration", quoteString(formatDur(ev.Duration)))
		e.field("steps", strconv.Itoa(ev.Steps))
		e.field("from", formatFloat(ev.From))
		e.field("to", formatFloat(ev.To))
		e.field("direction", quoteString(ev.Direction))
	case EventBreakout:
		if ev.Label != "" {
			e.field("id", quoteString(ev.Label))
		}
		e.field("at", quoteString(formatDur(ev.At)))
		e.field("link", strconv.Itoa(ev.Link))
		e.field("rate", formatFloat(ev.Rate))
		e.field("direction", quoteString(ev.Direction))
	}
	e.close("}")
}

func (e *encoder) run(r *Run) {
	e.open("{")
	e.field("name", quoteString(r.Name))
	e.field("policy", quoteString(r.Policy))
	e.field("capacity", formatFloat(r.Capacity))
	e.field("detection_threshold", formatFloat(r.DetectionThreshold))
	if r.DetectionDelay != 0 {
		e.field("detection_delay", quoteString(formatDur(r.DetectionDelay)))
	}
	e.field("repair_mode", quoteString(r.RepairMode))
	e.field("accuracy", formatFloat(r.Accuracy))
	if r.IgnoreProb != 0 {
		e.field("ignore_prob", formatFloat(r.IgnoreProb))
	}
	if r.DeployedEngine {
		e.field("deployed_engine", "true")
	}
	if r.NoOpticsFraction != 0 {
		e.field("no_optics_fraction", formatFloat(r.NoOpticsFraction))
	}
	if r.DrainMode {
		e.field("drain_mode", "true")
	}
	if r.RepairCollateral {
		e.field("repair_collateral", "true")
	}
	e.field("service_time", quoteString(formatDur(r.ServiceTime)))
	if r.Technicians != 0 {
		e.field("technicians", strconv.Itoa(r.Technicians))
	}
	e.field("seed", strconv.FormatUint(r.Seed, 10))
	if r.Dampening != nil {
		e.key("dampening")
		e.open("{")
		e.field("window", quoteString(formatDur(r.Dampening.Window)))
		e.field("flaps", strconv.Itoa(r.Dampening.Flaps))
		e.field("holddown", quoteString(formatDur(r.Dampening.Holddown)))
		e.close("}")
	}
	e.close("}")
}

func (e *encoder) assertion(a *Assertion) {
	e.open("{")
	e.field("metric", quoteString(a.Metric))
	if RatioMetrics[a.Metric] {
		e.key("runs")
		e.b.WriteString("[" + quoteString(a.Runs[0]) + ", " + quoteString(a.Runs[1]) + "]")
	} else {
		e.field("run", quoteString(a.Run))
	}
	if a.Min != nil {
		e.field("min", formatFloat(*a.Min))
	}
	if a.Max != nil {
		e.field("max", formatFloat(*a.Max))
	}
	e.close("}")
}

// formatFloat renders a float so that parsing it back yields the exact
// same value (shortest round-trip form).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// formatDur renders a duration canonically: whole days as "Nd", everything
// else in Go's time.Duration syntax. parseDur inverts both forms exactly.
func formatDur(d time.Duration) string {
	const day = 24 * time.Hour
	if d > 0 && d%day == 0 {
		return strconv.FormatInt(int64(d/day), 10) + "d"
	}
	return d.String()
}

// quoteString renders a string as a JSON literal the parser inverts
// exactly: printable characters raw, the JSON short escapes, \uXXXX for
// the rest of the control range.
func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		case '\b':
			b.WriteString(`\b`)
		case '\f':
			b.WriteString(`\f`)
		default:
			if r < 0x20 {
				b.WriteString(`\u`)
				const hex = "0123456789abcdef"
				b.WriteByte('0')
				b.WriteByte('0')
				b.WriteByte(hex[(r>>4)&0xf])
				b.WriteByte(hex[r&0xf])
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
