package scenario

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestBadScenarios feeds every file in testdata/bad through Parse (and,
// for the files that parse, Compile) and pins the resulting error
// strings — including their line:col positions — in a single golden.
// A parser change that moves an error, loses its position, or starts
// accepting a malformed file shows up as a golden diff.
func TestBadScenarios(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "bad", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("bad-scenario corpus has %d files, want at least 10", len(files))
	}
	sort.Strings(files)

	var b strings.Builder
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(file)
		s, err := Parse(data, base)
		if err == nil {
			_, err = Compile(s)
		}
		if err == nil {
			t.Errorf("%s: malformed scenario accepted", base)
			fmt.Fprintf(&b, "%s: ACCEPTED\n", base)
			continue
		}
		fmt.Fprintf(&b, "%s: %v\n", base, err)
	}

	goldenPath := filepath.Join("testdata", "bad_errors.txt")
	got := []byte(b.String())
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("error strings differ from golden (run with -update):\n%s", diffLines(want, got))
	}
}

// TestErrorsCarryPositions spot-checks that parse errors point at the
// offending token, not just the file.
func TestErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		file string
		frag string
	}{
		{"unknown_field.json", "unknown field"},
		{"duplicate_key.json", "duplicate key"},
		{"negative_event_time.json", "before t=0"},
		{"unknown_metric.json", "metric"},
		{"bad_version.json", "version"},
	}
	for _, tc := range cases {
		data, err := os.ReadFile(filepath.Join("testdata", "bad", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		_, err = Parse(data, tc.file)
		if err == nil {
			t.Errorf("%s: accepted", tc.file)
			continue
		}
		var perr *Error
		if !asScenarioError(err, &perr) {
			t.Errorf("%s: error is %T, want *scenario.Error", tc.file, err)
			continue
		}
		if perr.Line <= 0 || perr.Col <= 0 {
			t.Errorf("%s: error carries no position: %v", tc.file, err)
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.file, err, tc.frag)
		}
		if !strings.Contains(err.Error(), tc.file+":") {
			t.Errorf("%s: error %q does not lead with the file name", tc.file, err)
		}
	}
}

func asScenarioError(err error, target **Error) bool {
	for err != nil {
		if e, ok := err.(*Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
