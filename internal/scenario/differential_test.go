package scenario

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"corropt/internal/experiments"
)

// TestFig14ScenarioMatchesDriver pins the DSL against the hard-coded
// experiments driver: scenarios/fig14_small.json declares the same
// topology, chaos stream, and policy pair the fig14 driver builds at
// ScaleSmall with Seed 1, so executing it and re-deriving the driver's
// report rows from the scenario results must reproduce the driver's
// report byte for byte. Any drift in the compiler's topology, injector
// wiring, or run-config mapping shows up here as a row diff.
func TestFig14ScenarioMatchesDriver(t *testing.T) {
	rep, err := experiments.Run("fig14", experiments.Config{Scale: experiments.ScaleSmall, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatalf("experiments fig14: %v", err)
	}

	data, err := os.ReadFile("../../scenarios/fig14_small.json")
	if err != nil {
		t.Fatalf("read scenario: %v", err)
	}
	s, err := Parse(data, "fig14_small.json")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out, err := Execute(c, Options{Workers: 1})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got, want := DefaultTech(), experiments.DefaultTech(); got != want {
		t.Fatalf("scenario.DefaultTech() = %+v, experiments.DefaultTech() = %+v", got, want)
	}
	if len(out.Results) != 2 || c.Runs[0].Name != "switch_local" || c.Runs[1].Name != "corropt" {
		t.Fatalf("unexpected run set in fig14_small.json")
	}
	sl, co := out.Results[0], out.Results[1]

	// Re-derive the driver's rows with its exact sampling and formatting.
	step := len(co.Samples) / 120
	if step == 0 {
		step = 1
	}
	var rows [][]string
	for i := 0; i < len(co.Samples) && i < len(sl.Samples); i += step {
		rows = append(rows, []string{
			"small",
			fmt.Sprintf("%d", int(co.Samples[i].At/time.Hour)),
			fmt.Sprintf("%.6g", sl.Samples[i].Penalty),
			fmt.Sprintf("%.6g", co.Samples[i].Penalty),
		})
	}
	if !reflect.DeepEqual(rows, rep.Rows) {
		max := len(rows)
		if len(rep.Rows) > max {
			max = len(rep.Rows)
		}
		for i := 0; i < max; i++ {
			var a, b []string
			if i < len(rows) {
				a = rows[i]
			}
			if i < len(rep.Rows) {
				b = rep.Rows[i]
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("row %d: scenario %v, driver %v", i, a, b)
			}
		}
		t.Fatalf("scenario-derived rows (%d) differ from driver report rows (%d)", len(rows), len(rep.Rows))
	}

	// The driver's first note embeds both integrated penalties at %.4g;
	// rebuilding it from the scenario results pins the integrals too.
	wantNote := fmt.Sprintf("%s DCN (%d links): integrated penalty switch-local %.4g vs corropt %.4g",
		"small", c.Topo.NumLinks(), sl.IntegratedPenalty, co.IntegratedPenalty)
	if len(rep.Notes) == 0 || rep.Notes[0] != wantNote {
		t.Fatalf("driver note mismatch:\n  want %q\n  got  %q", wantNote, rep.Notes)
	}
}
