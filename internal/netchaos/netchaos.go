// Package netchaos is a deterministic, in-process network fault-injection
// layer for the deployment path. It wraps net.Conn / net.PacketConn /
// net.Listener and the dial hooks the control-plane (ctlplane) and
// monitoring (snmplite) clients expose, and injects the faults the paper
// is about — drops, delays, duplicates, reorders, truncations, bit-flips,
// and mid-stream resets — into the traffic those components send.
//
// Determinism contract (DESIGN.md §7.3): every fault decision is drawn
// from a seeded `rngutil` substream, one substream per wrapped endpoint in
// creation order, and timestamps come from an injected simclock.WallClock.
// No wall-clock reads, no global randomness, no background goroutines:
// wrapping is purely synchronous, so a scenario replays byte-for-byte —
// same seed and operation sequence, same faults — and the package passes
// the `nodeterminism` gate with RulesAll and zero `lint:allow`.
//
// Faults are injected on the *write* path only. The writer's operation
// sequence is what the seeded stream indexes, so the schedule does not
// depend on reader timing; to fault both directions of a protocol, wrap
// both endpoints (e.g. the client's dialer and the server's listener).
//
// With a zero Config the wrappers are transparent: no RNG draws, no
// buffering, no behavior change — the clean-network baseline runs through
// the same code path as the chaos runs.
package netchaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"corropt/internal/rngutil"
	"corropt/internal/simclock"
)

// Kind enumerates the injected fault classes.
type Kind uint8

// Fault classes, in the cumulative-probability order Config is consulted.
const (
	KindNone Kind = iota
	KindDrop
	KindDup
	KindReorder
	KindCorrupt
	KindTruncate
	KindReset
	KindDelay
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDrop:
		return "drop"
	case KindDup:
		return "dup"
	case KindReorder:
		return "reorder"
	case KindCorrupt:
		return "corrupt"
	case KindTruncate:
		return "truncate"
	case KindReset:
		return "reset"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// Config sets per-write-operation fault probabilities. Probabilities are
// consulted cumulatively in field order from a single uniform draw per
// operation, so at most one fault fires per write; their sum should stay
// ≤ 1. The zero value disables all injection (and draws nothing).
type Config struct {
	// Drop swallows the write: the caller sees success, nothing is sent.
	Drop float64
	// Dup sends the payload twice.
	Dup float64
	// Reorder holds the payload back and emits it after the next write
	// (segment reordering on streams, datagram reordering on packets).
	Reorder float64
	// Corrupt flips 1–4 random bits of a copy of the payload.
	Corrupt float64
	// Truncate sends a strict prefix of the payload.
	Truncate float64
	// Reset tears the transport down mid-stream: the underlying conn is
	// closed and the write fails. On datagram sockets a reset manifests as
	// loss (the socket survives; the datagram does not), mirroring how UDP
	// sees a peer reset only as silence.
	Reset float64
	// Delay pauses via the injector's sleep hook before sending. The
	// magnitude is drawn uniformly in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds injected delays; default 10ms when Delay > 0.
	MaxDelay time.Duration
	// MaxFaults bounds the total number of faults the injector introduces
	// across all wrapped endpoints; once spent, traffic flows clean. This
	// is the convergence guarantee chaos tests lean on: a client whose
	// retry budget exceeds MaxFaults is guaranteed to get through. Zero
	// means unlimited.
	MaxFaults int
}

func (c Config) enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 || c.Corrupt > 0 ||
		c.Truncate > 0 || c.Reset > 0 || c.Delay > 0
}

// Stats counts injected faults by class, plus total write operations seen.
type Stats struct {
	Ops       int
	Drops     int
	Dups      int
	Reorders  int
	Corrupts  int
	Truncates int
	Resets    int
	Delays    int
}

// Faults is the total number of injected faults.
func (s Stats) Faults() int {
	return s.Drops + s.Dups + s.Reorders + s.Corrupts + s.Truncates + s.Resets + s.Delays
}

// Event records one injected fault, for replay debugging and the
// determinism pin in tests.
type Event struct {
	// At is the injected clock's reading when the fault fired.
	At time.Time
	// Endpoint is the wrapped endpoint's substream name ("conn-0", ...).
	Endpoint string
	// Op is the endpoint's 0-based write-operation index.
	Op int
	// Kind is the fault class.
	Kind Kind
}

// DialFunc matches the dial hooks ctlplane and snmplite clients accept.
type DialFunc func(network, address string) (net.Conn, error)

// Injector derives per-endpoint fault streams from one seeded source and
// enforces the shared fault budget. Safe for concurrent use; determinism
// holds per endpoint (each endpoint's schedule depends only on its own
// operation sequence, plus the shared budget's consumption order).
type Injector struct {
	cfg   Config
	clock simclock.WallClock
	root  *rngutil.Source

	mu        sync.Mutex
	sleep     func(time.Duration)
	endpoints int
	injected  int
	stats     Stats
	trace     []Event
	tracing   bool
}

// New returns an Injector drawing fault decisions from rng and timestamps
// from clock. A nil clock defaults to simclock.Real{}; injected delays are
// no-ops until SetSleep installs a sleeper (keeps virtual-time harnesses
// from stalling on real sleeps).
func New(rng *rngutil.Source, clock simclock.WallClock, cfg Config) *Injector {
	if rng == nil {
		rng = rngutil.New(0)
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	if cfg.Delay > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	return &Injector{cfg: cfg, clock: clock, root: rng, sleep: func(time.Duration) {}}
}

// SetSleep installs the function KindDelay faults call; production wiring
// passes time.Sleep, virtual-time harnesses leave the default no-op.
func (in *Injector) SetSleep(fn func(time.Duration)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if fn == nil {
		fn = func(time.Duration) {}
	}
	in.sleep = fn
}

// sleepFn snapshots the current sleep hook so callers can pause after
// releasing their own locks (blocking while holding one violates the
// repo's lockorder contract).
func (in *Injector) sleepFn() func(time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.sleep
}

// EnableTrace starts recording an Event per injected fault.
func (in *Injector) EnableTrace() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tracing = true
}

// Trace returns a copy of the recorded fault events.
func (in *Injector) Trace() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.trace))
	copy(out, in.trace)
	return out
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// newEndpoint allocates the next endpoint substream.
func (in *Injector) newEndpoint(prefix string) (string, *rngutil.Source) {
	in.mu.Lock()
	defer in.mu.Unlock()
	name := fmt.Sprintf("%s-%d", prefix, in.endpoints)
	in.endpoints++
	return name, in.root.SplitIndex(prefix, in.endpoints-1)
}

// decision is one resolved fault for one write operation.
type decision struct {
	kind  Kind
	cut   int           // KindTruncate: bytes kept
	flips []int         // KindCorrupt: bit indices to flip
	pause time.Duration // KindDelay: how long to sleep
}

// decide resolves the fault (if any) for one write of n bytes on the named
// endpoint. All RNG draws happen under the injector lock so concurrent
// endpoints stay race-free; each endpoint draws only from its own
// substream, so its schedule is independent of its neighbours'.
func (in *Injector) decide(rng *rngutil.Source, name string, op, n int) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Ops++
	if !in.cfg.enabled() || n == 0 {
		return decision{kind: KindNone}
	}
	if in.cfg.MaxFaults > 0 && in.injected >= in.cfg.MaxFaults {
		return decision{kind: KindNone}
	}
	u := rng.Float64()
	d := decision{kind: KindNone}
	acc := 0.0
	for _, c := range []struct {
		p float64
		k Kind
	}{
		{in.cfg.Drop, KindDrop},
		{in.cfg.Dup, KindDup},
		{in.cfg.Reorder, KindReorder},
		{in.cfg.Corrupt, KindCorrupt},
		{in.cfg.Truncate, KindTruncate},
		{in.cfg.Reset, KindReset},
		{in.cfg.Delay, KindDelay},
	} {
		acc += c.p
		if c.p > 0 && u < acc {
			d.kind = c.k
			break
		}
	}
	switch d.kind {
	case KindNone:
		return d
	case KindCorrupt:
		nbits := 1 + rng.Intn(4)
		d.flips = make([]int, nbits)
		for i := range d.flips {
			d.flips[i] = rng.Intn(n * 8)
		}
	case KindTruncate:
		d.cut = rng.Intn(n) // strict prefix: 0..n-1 bytes survive
	case KindDelay:
		d.pause = time.Duration(1 + rng.Int63()%int64(in.cfg.MaxDelay))
	}
	in.injected++
	in.count(d.kind)
	if in.tracing {
		in.trace = append(in.trace, Event{At: in.clock.Now(), Endpoint: name, Op: op, Kind: d.kind})
	}
	return d
}

func (in *Injector) count(k Kind) {
	switch k {
	case KindDrop:
		in.stats.Drops++
	case KindDup:
		in.stats.Dups++
	case KindReorder:
		in.stats.Reorders++
	case KindCorrupt:
		in.stats.Corrupts++
	case KindTruncate:
		in.stats.Truncates++
	case KindReset:
		in.stats.Resets++
	case KindDelay:
		in.stats.Delays++
	}
}

// corruptCopy returns a copy of b with the decided bit flips applied; the
// caller's buffer is never mutated (io.Writer contract).
func corruptCopy(b []byte, flips []int) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	for _, bit := range flips {
		out[bit/8] ^= 1 << (bit % 8)
	}
	return out
}

// Mutator applies the byte-level fault classes (corrupt, truncate, drop)
// to standalone packets — the primitive the protocol fuzzers round-trip
// frames through without needing a socket pair.
type Mutator struct {
	inj *Injector
	rng *rngutil.Source
	nm  string
	op  int
}

// NewMutator returns a Mutator drawing from its own endpoint substream of
// a fresh injector over cfg.
func NewMutator(rng *rngutil.Source, cfg Config) *Mutator {
	in := New(rng, nil, cfg)
	name, sub := in.newEndpoint("mutator")
	return &Mutator{inj: in, rng: sub, nm: name}
}

// Mutate returns a possibly-faulted copy of pkt and the fault class
// applied. KindDrop and KindReset yield a nil packet (lost); KindDup,
// KindReorder and KindDelay return the packet unchanged (those classes
// need a transport to be observable).
func (m *Mutator) Mutate(pkt []byte) ([]byte, Kind) {
	d := m.inj.decide(m.rng, m.nm, m.op, len(pkt))
	m.op++
	switch d.kind {
	case KindCorrupt:
		return corruptCopy(pkt, d.flips), d.kind
	case KindTruncate:
		out := make([]byte, d.cut)
		copy(out, pkt[:d.cut])
		return out, d.kind
	case KindDrop, KindReset:
		return nil, d.kind
	default:
		out := make([]byte, len(pkt))
		copy(out, pkt)
		return out, d.kind
	}
}
