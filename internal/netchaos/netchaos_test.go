package netchaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"corropt/internal/rngutil"
	"corropt/internal/simclock"
)

// fakeAddr satisfies net.Addr for the in-memory endpoints.
type fakeAddr string

func (a fakeAddr) Network() string { return "fake" }
func (a fakeAddr) String() string  { return string(a) }

// fakeConn records every Write as one payload, the way a datagram socket
// would see it.
type fakeConn struct {
	mu     sync.Mutex
	writes [][]byte
	closed bool
}

func (f *fakeConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes = append(f.writes, append([]byte(nil), b...))
	return len(b), nil
}
func (f *fakeConn) Read(b []byte) (int, error)         { return 0, errors.New("not readable") }
func (f *fakeConn) Close() error                       { f.mu.Lock(); defer f.mu.Unlock(); f.closed = true; return nil }
func (f *fakeConn) LocalAddr() net.Addr                { return fakeAddr("local") }
func (f *fakeConn) RemoteAddr() net.Addr               { return fakeAddr("remote") }
func (f *fakeConn) SetDeadline(t time.Time) error      { return nil }
func (f *fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (f *fakeConn) SetWriteDeadline(t time.Time) error { return nil }

func (f *fakeConn) recorded() [][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][]byte, len(f.writes))
	copy(out, f.writes)
	return out
}

func (f *fakeConn) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// fakePacketConn records every WriteTo with its destination.
type fakePacketConn struct {
	fakeConn
	addrs []net.Addr
}

func (f *fakePacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	f.mu.Lock()
	f.addrs = append(f.addrs, addr)
	f.mu.Unlock()
	return f.fakeConn.Write(b)
}
func (f *fakePacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	return 0, nil, errors.New("not readable")
}

func mustWrite(t *testing.T, c net.Conn, payload []byte) {
	t.Helper()
	n, err := c.Write(payload)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if n != len(payload) {
		t.Fatalf("Write reported %d bytes, want %d", n, len(payload))
	}
}

func TestZeroConfigIsTransparent(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{})
	c := inj.Conn(under)
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	for _, p := range payloads {
		mustWrite(t, c, p)
	}
	got := under.recorded()
	if len(got) != len(payloads) {
		t.Fatalf("recorded %d writes, want %d", len(got), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Errorf("write %d: got %q, want %q", i, got[i], p)
		}
	}
	if s := inj.Stats(); s.Faults() != 0 || s.Ops != len(payloads) {
		t.Errorf("stats = %+v, want 0 faults over %d ops", s, len(payloads))
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64) ([]Event, [][]byte) {
		under := &fakeConn{}
		clock := simclock.Virtual{Clock: simclock.New()}
		inj := New(rngutil.New(seed), clock, Config{
			Drop: 0.2, Dup: 0.1, Reorder: 0.1, Corrupt: 0.2, Truncate: 0.1,
		})
		inj.EnableTrace()
		c := inj.Conn(under)
		for i := 0; i < 64; i++ {
			mustWrite(t, c, []byte("payload-payload-payload"))
		}
		return inj.Trace(), under.recorded()
	}
	t1, w1 := run(42)
	t2, w2 := run(42)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("same seed produced different fault traces:\n%v\n%v", t1, t2)
	}
	if !reflect.DeepEqual(w1, w2) {
		t.Fatal("same seed produced different byte streams")
	}
	if len(t1) == 0 {
		t.Fatal("scenario injected no faults; probabilities too low for the test to mean anything")
	}
	t3, _ := run(43)
	if reflect.DeepEqual(t1, t3) {
		t.Error("different seeds produced identical fault traces")
	}
}

func TestDropSwallowsWrite(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Drop: 1})
	c := inj.Conn(under)
	mustWrite(t, c, []byte("gone"))
	if got := under.recorded(); len(got) != 0 {
		t.Fatalf("dropped write reached the wire: %q", got)
	}
	if s := inj.Stats(); s.Drops != 1 {
		t.Errorf("Drops = %d, want 1", s.Drops)
	}
}

func TestDupSendsTwice(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Dup: 1})
	c := inj.Conn(under)
	mustWrite(t, c, []byte("twice"))
	got := under.recorded()
	if len(got) != 2 || !bytes.Equal(got[0], []byte("twice")) || !bytes.Equal(got[1], []byte("twice")) {
		t.Fatalf("dup produced %q, want the payload twice", got)
	}
}

func TestReorderSwapsAdjacentWrites(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Reorder: 1})
	c := inj.Conn(under)
	mustWrite(t, c, []byte("first"))
	mustWrite(t, c, []byte("second"))
	got := under.recorded()
	if len(got) != 2 || !bytes.Equal(got[0], []byte("second")) || !bytes.Equal(got[1], []byte("first")) {
		t.Fatalf("reorder produced %q, want second then first", got)
	}
}

func TestReorderFlushedOnClose(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Reorder: 1, MaxFaults: 1})
	c := inj.Conn(under)
	mustWrite(t, c, []byte("held"))
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := under.recorded()
	if len(got) != 1 || !bytes.Equal(got[0], []byte("held")) {
		t.Fatalf("held payload not flushed on close: %q", got)
	}
	if !under.isClosed() {
		t.Error("underlying conn not closed")
	}
}

func TestCorruptFlipsBitsWithoutMutatingCaller(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Corrupt: 1})
	c := inj.Conn(under)
	orig := []byte("do-not-touch-me")
	payload := append([]byte(nil), orig...)
	mustWrite(t, c, payload)
	if !bytes.Equal(payload, orig) {
		t.Fatal("caller's buffer was mutated")
	}
	got := under.recorded()
	if len(got) != 1 || len(got[0]) != len(orig) {
		t.Fatalf("corrupt write count/len wrong: %q", got)
	}
	if bytes.Equal(got[0], orig) {
		t.Error("corrupt fault forwarded an unmodified payload")
	}
}

func TestTruncateSendsStrictPrefix(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Truncate: 1})
	c := inj.Conn(under)
	payload := []byte("a-long-enough-payload-to-truncate")
	for i := 0; i < 16; i++ {
		mustWrite(t, c, payload)
	}
	for i, got := range under.recorded() {
		if len(got) >= len(payload) {
			t.Fatalf("write %d: truncation kept %d bytes, want a strict prefix of %d", i, len(got), len(payload))
		}
		if !bytes.Equal(got, payload[:len(got)]) {
			t.Fatalf("write %d: %q is not a prefix of the payload", i, got)
		}
	}
}

func TestResetClosesStream(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Reset: 1})
	c := inj.Conn(under)
	if _, err := c.Write([]byte("doomed")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("reset write error = %v, want wrapped net.ErrClosed", err)
	}
	if !under.isClosed() {
		t.Error("reset did not close the underlying conn")
	}
	if _, err := c.Write([]byte("after")); !errors.Is(err, net.ErrClosed) {
		t.Errorf("post-reset write error = %v, want wrapped net.ErrClosed", err)
	}
}

func TestResetOnDatagramIsLoss(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Reset: 1, MaxFaults: 1})
	c := inj.DatagramConn(under)
	mustWrite(t, c, []byte("lost"))
	if under.isClosed() {
		t.Fatal("datagram reset closed the socket")
	}
	mustWrite(t, c, []byte("clean"))
	got := under.recorded()
	if len(got) != 1 || !bytes.Equal(got[0], []byte("clean")) {
		t.Fatalf("after datagram reset got %q, want only the clean datagram", got)
	}
}

func TestDelayUsesSleepHook(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Delay: 1, MaxDelay: 5 * time.Millisecond})
	var slept []time.Duration
	inj.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	c := inj.Conn(under)
	mustWrite(t, c, []byte("late"))
	if len(slept) != 1 || slept[0] <= 0 || slept[0] > 5*time.Millisecond {
		t.Fatalf("sleep calls = %v, want one in (0, 5ms]", slept)
	}
	got := under.recorded()
	if len(got) != 1 || !bytes.Equal(got[0], []byte("late")) {
		t.Fatalf("delayed payload not forwarded: %q", got)
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	under := &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Drop: 1, MaxFaults: 3})
	c := inj.Conn(under)
	for i := 0; i < 10; i++ {
		mustWrite(t, c, []byte("x"))
	}
	if got := len(under.recorded()); got != 7 {
		t.Errorf("recorded %d writes, want 7 (3 dropped)", got)
	}
	if s := inj.Stats(); s.Faults() != 3 || s.Drops != 3 {
		t.Errorf("stats = %+v, want exactly 3 drops", s)
	}
}

func TestBudgetSharedAcrossEndpoints(t *testing.T) {
	a, b := &fakeConn{}, &fakeConn{}
	inj := New(rngutil.New(1), nil, Config{Drop: 1, MaxFaults: 1})
	ca, cb := inj.Conn(a), inj.Conn(b)
	mustWrite(t, ca, []byte("one"))
	mustWrite(t, cb, []byte("two"))
	// The single budgeted fault went to whichever endpoint wrote first;
	// the second endpoint's write must flow clean.
	if got := len(a.recorded()) + len(b.recorded()); got != 1 {
		t.Errorf("total forwarded writes = %d, want 1 (one drop across both endpoints)", got)
	}
}

func TestPacketConnFaults(t *testing.T) {
	under := &fakePacketConn{}
	inj := New(rngutil.New(1), nil, Config{Dup: 1, MaxFaults: 1})
	pc := inj.PacketConn(under)
	addr := fakeAddr("peer")
	if _, err := pc.WriteTo([]byte("dgram"), addr); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got := under.recorded()
	if len(got) != 2 || !bytes.Equal(got[0], []byte("dgram")) || !bytes.Equal(got[1], []byte("dgram")) {
		t.Fatalf("packet dup produced %q", got)
	}
	for i, a := range under.addrs {
		if a != addr {
			t.Errorf("write %d went to %v, want %v", i, a, addr)
		}
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(rngutil.New(1), nil, Config{Drop: 1, MaxFaults: 1})
	ln := inj.Listener(raw)
	defer ln.Close()

	type acceptResult struct {
		conn net.Conn
		err  error
	}
	accepted := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		accepted <- acceptResult{c, err}
	}()

	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res := <-accepted
	if res.err != nil {
		t.Fatalf("Accept: %v", res.err)
	}
	defer res.conn.Close()

	// First server write is dropped (budget 1), second flows clean: the
	// client must receive only "world".
	mustWrite(t, res.conn, []byte("hello"))
	mustWrite(t, res.conn, []byte("world"))
	buf := make([]byte, 5)
	if err := cli.SetReadDeadline(inj.clock.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(cli, buf); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if string(buf) != "world" {
		t.Fatalf("client read %q, want %q (first write dropped)", buf, "world")
	}
}

func TestMutator(t *testing.T) {
	pkt := []byte("a-packet-worth-of-bytes")

	clean := NewMutator(rngutil.New(1), Config{})
	out, kind := clean.Mutate(pkt)
	if kind != KindNone || !bytes.Equal(out, pkt) {
		t.Fatalf("zero-config mutate = (%q, %v), want unchanged copy", out, kind)
	}

	drop := NewMutator(rngutil.New(1), Config{Drop: 1})
	if out, kind := drop.Mutate(pkt); out != nil || kind != KindDrop {
		t.Fatalf("drop mutate = (%q, %v), want (nil, drop)", out, kind)
	}

	corrupt := NewMutator(rngutil.New(1), Config{Corrupt: 1})
	out, kind = corrupt.Mutate(pkt)
	if kind != KindCorrupt || len(out) != len(pkt) || bytes.Equal(out, pkt) {
		t.Fatalf("corrupt mutate = (%q, %v), want a modified same-length copy", out, kind)
	}

	trunc := NewMutator(rngutil.New(1), Config{Truncate: 1})
	out, kind = trunc.Mutate(pkt)
	if kind != KindTruncate || len(out) >= len(pkt) || !bytes.Equal(out, pkt[:len(out)]) {
		t.Fatalf("truncate mutate = (%q, %v), want a strict prefix", out, kind)
	}

	// Same seed, same mutation sequence.
	m1 := NewMutator(rngutil.New(9), Config{Corrupt: 0.5, Truncate: 0.3, Drop: 0.2})
	m2 := NewMutator(rngutil.New(9), Config{Corrupt: 0.5, Truncate: 0.3, Drop: 0.2})
	for i := 0; i < 32; i++ {
		o1, k1 := m1.Mutate(pkt)
		o2, k2 := m2.Mutate(pkt)
		if k1 != k2 || !bytes.Equal(o1, o2) {
			t.Fatalf("mutation %d diverged between identically seeded mutators", i)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindNone: "none", KindDrop: "drop", KindDup: "dup", KindReorder: "reorder",
		KindCorrupt: "corrupt", KindTruncate: "truncate", KindReset: "reset",
		KindDelay: "delay", Kind(99): "kind-99",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), k.String(), s)
		}
	}
}
