package netchaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"corropt/internal/rngutil"
)

// errReset is the error surfaced by an injected mid-stream reset. It wraps
// net.ErrClosed so consumers' existing "connection is gone" handling
// (errors.Is(err, net.ErrClosed)) fires without netchaos-specific code.
func errReset() error {
	return fmt.Errorf("netchaos: injected connection reset: %w", net.ErrClosed)
}

// writePlan is the outcome of one fault decision: the payloads to forward
// (in order), an optional pause to serve first, and whether the write dies
// with an injected reset. The plan is computed under the endpoint's lock
// and executed after releasing it, so state updates stay serialized while
// no blocking I/O ever happens with a mutex held (the repo's lockorder
// contract).
type writePlan struct {
	sends [][]byte
	pause time.Duration
	sleep func(time.Duration)
	reset bool
}

// chaosConn wraps a net.Conn with write-path fault injection. datagram
// mode adapts the semantics to connected packet sockets: a reset becomes
// loss instead of closing the socket, and truncation keeps at least one
// byte-range prefix per datagram.
type chaosConn struct {
	net.Conn
	inj      *Injector
	rng      *rngutil.Source
	name     string
	datagram bool

	// mu serializes the decision/state half of the write and close paths:
	// net.Conn permits Close (and Write) from a goroutine concurrent with
	// a writer, and the held reorder buffer plus op counter must not race
	// when that happens. Lock ordering: mu is acquired before the
	// injector's lock (taken inside decide); never the other way around.
	// The forwarding I/O itself runs after mu is released.
	mu    sync.Mutex
	op    int
	held  []byte // payload held back by a pending reorder
	reset bool
}

// Conn wraps c with stream-semantics fault injection: an injected reset
// closes the underlying conn and fails the write, like a TCP RST.
func (in *Injector) Conn(c net.Conn) net.Conn {
	name, rng := in.newEndpoint("conn")
	return &chaosConn{Conn: c, inj: in, rng: rng, name: name}
}

// DatagramConn wraps a connected packet socket (e.g. a dialed UDP conn)
// with datagram-semantics fault injection: each Write is one datagram and
// an injected reset manifests as loss, the only way UDP sees one.
func (in *Injector) DatagramConn(c net.Conn) net.Conn {
	name, rng := in.newEndpoint("dconn")
	return &chaosConn{Conn: c, inj: in, rng: rng, name: name, datagram: true}
}

// Dialer wraps base so every dialed conn carries stream fault injection;
// pass net.Dial (or any DialFunc) as the base.
func (in *Injector) Dialer(base DialFunc) DialFunc {
	if base == nil {
		base = net.Dial
	}
	return func(network, address string) (net.Conn, error) {
		c, err := base(network, address)
		if err != nil {
			return nil, err
		}
		return in.Conn(c), nil
	}
}

// DatagramDialer is Dialer with datagram semantics for the wrapped conns.
func (in *Injector) DatagramDialer(base DialFunc) DialFunc {
	if base == nil {
		base = net.Dial
	}
	return func(network, address string) (net.Conn, error) {
		c, err := base(network, address)
		if err != nil {
			return nil, err
		}
		return in.DatagramConn(c), nil
	}
}

// Write applies at most one injected fault, then forwards. The caller's
// buffer is never modified; on success the caller always sees len(b)
// written (a dropped or truncated payload is the network's secret, exactly
// as a lossy path would behave above the socket API).
func (c *chaosConn) Write(b []byte) (int, error) {
	p, err := c.plan(b)
	if err != nil {
		return 0, err
	}
	if p.sleep != nil {
		p.sleep(p.pause)
	}
	if p.reset {
		_ = c.Conn.Close() // the reset is the error being reported
		return 0, errReset()
	}
	for _, payload := range p.sends {
		if err := c.forward(payload); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

// plan draws one fault decision and applies its state effects (op counter,
// reorder hold-back, reset latch) under mu, returning the I/O the caller
// must perform after the lock is released.
func (c *chaosConn) plan(b []byte) (writePlan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return writePlan{}, errReset()
	}
	d := c.inj.decide(c.rng, c.name, c.op, len(b))
	c.op++
	var p writePlan
	switch d.kind {
	case KindDrop:
		// Flush any held reorder payload so the stream doesn't starve,
		// then swallow this write.
		p.sends = c.takeHeld(p.sends)
		return p, nil
	case KindDup:
		p.sends = append(p.sends, b, b)
		return p, nil
	case KindReorder:
		if c.held == nil {
			c.held = append([]byte(nil), b...)
			return p, nil
		}
		// Already holding one payload: emit this write first, then the
		// held one — the swap is the reorder.
		p.sends = append(p.sends, b)
		p.sends = c.takeHeld(p.sends)
		return p, nil
	case KindCorrupt:
		p.sends = append(p.sends, corruptCopy(b, d.flips))
		return p, nil
	case KindTruncate:
		if d.cut > 0 {
			p.sends = append(p.sends, b[:d.cut])
		}
		return p, nil
	case KindReset:
		if c.datagram {
			// UDP cannot observe a reset mid-flight; the datagram is lost.
			return p, nil
		}
		c.reset = true
		p.reset = true
		return p, nil
	case KindDelay:
		p.pause = d.pause
		p.sleep = c.inj.sleepFn()
	}
	p.sends = c.takeHeld(p.sends)
	p.sends = append(p.sends, b)
	return p, nil
}

// takeHeld moves a pending reordered payload (if any) onto sends. Caller
// must hold mu.
func (c *chaosConn) takeHeld(sends [][]byte) [][]byte {
	if c.held != nil {
		sends = append(sends, c.held)
		c.held = nil
	}
	return sends
}

// forward writes p fully to the underlying conn.
func (c *chaosConn) forward(p []byte) error {
	_, err := c.Conn.Write(p)
	return err
}

// Close flushes a pending reordered payload (best-effort) and closes the
// underlying conn.
func (c *chaosConn) Close() error {
	c.mu.Lock()
	held := c.held
	c.held = nil
	wasReset := c.reset
	c.mu.Unlock()
	if held != nil && !wasReset {
		_ = c.forward(held) // best-effort: the conn is going away either way
	}
	return c.Conn.Close()
}

// chaosListener wraps accepted conns with stream fault injection.
type chaosListener struct {
	net.Listener
	inj *Injector
}

// Listener wraps ln so accepted conns carry stream fault injection on
// their write (server→client) path.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &chaosListener{Listener: ln, inj: in}
}

func (l *chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}

// dgramSend is one datagram of a packet-conn write plan.
type dgramSend struct {
	p    []byte
	addr net.Addr
}

// dgramPlan mirrors writePlan for the unconnected packet socket.
type dgramPlan struct {
	sends []dgramSend
	pause time.Duration
	sleep func(time.Duration)
}

// chaosPacketConn wraps a net.PacketConn with datagram fault injection on
// the WriteTo path.
type chaosPacketConn struct {
	net.PacketConn
	inj  *Injector
	rng  *rngutil.Source
	name string

	// mu serializes the decision/state half of WriteTo/Close, mirroring
	// chaosConn.mu (same lock ordering: mu before the injector's lock;
	// I/O happens after mu is released).
	mu       sync.Mutex
	op       int
	held     []byte
	heldAddr net.Addr
}

// PacketConn wraps pc with datagram fault injection; an injected reset
// manifests as loss (the socket survives).
func (in *Injector) PacketConn(pc net.PacketConn) net.PacketConn {
	name, rng := in.newEndpoint("pconn")
	return &chaosPacketConn{PacketConn: pc, inj: in, rng: rng, name: name}
}

func (c *chaosPacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	p := c.plan(b, addr)
	if p.sleep != nil {
		p.sleep(p.pause)
	}
	for _, s := range p.sends {
		if err := c.forward(s.p, s.addr); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

// plan is chaosConn.plan for the unconnected socket: fault decision and
// state effects under mu, blocking I/O left to the caller.
func (c *chaosPacketConn) plan(b []byte, addr net.Addr) dgramPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.inj.decide(c.rng, c.name, c.op, len(b))
	c.op++
	var p dgramPlan
	switch d.kind {
	case KindDrop, KindReset:
		p.sends = c.takeHeld(p.sends)
		return p
	case KindDup:
		p.sends = append(p.sends, dgramSend{b, addr}, dgramSend{b, addr})
		return p
	case KindReorder:
		if c.held == nil {
			c.held = append([]byte(nil), b...)
			c.heldAddr = addr
			return p
		}
		p.sends = append(p.sends, dgramSend{b, addr})
		p.sends = c.takeHeld(p.sends)
		return p
	case KindCorrupt:
		p.sends = append(p.sends, dgramSend{corruptCopy(b, d.flips), addr})
		return p
	case KindTruncate:
		if d.cut > 0 {
			p.sends = append(p.sends, dgramSend{b[:d.cut], addr})
		}
		return p
	case KindDelay:
		p.pause = d.pause
		p.sleep = c.inj.sleepFn()
	}
	p.sends = c.takeHeld(p.sends)
	p.sends = append(p.sends, dgramSend{b, addr})
	return p
}

// takeHeld moves a pending reordered datagram (if any) onto sends. Caller
// must hold mu.
func (c *chaosPacketConn) takeHeld(sends []dgramSend) []dgramSend {
	if c.held != nil {
		sends = append(sends, dgramSend{c.held, c.heldAddr})
		c.held, c.heldAddr = nil, nil
	}
	return sends
}

func (c *chaosPacketConn) forward(p []byte, addr net.Addr) error {
	_, err := c.PacketConn.WriteTo(p, addr)
	return err
}

// Close flushes a pending reordered datagram (best-effort) and closes the
// underlying socket.
func (c *chaosPacketConn) Close() error {
	c.mu.Lock()
	held, addr := c.held, c.heldAddr
	c.held, c.heldAddr = nil, nil
	c.mu.Unlock()
	if held != nil {
		_ = c.forward(held, addr) // best-effort: the socket is going away either way
	}
	return c.PacketConn.Close()
}
