// Package stats implements the descriptive statistics used throughout the
// corruption study: empirical CDFs, quantiles, coefficient of variation,
// Pearson correlation, histogram buckets over loss rates, and log-uniform
// sampling.
//
// The measurement sections of the paper (§2–§3) are expressed entirely in
// these terms, so keeping them in one small dependency-free package lets the
// experiment drivers read like the paper.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than
// two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefficientOfVariation returns stddev/mean, the measure Figure 2b uses to
// compare the temporal stability of corruption and congestion loss rates.
// It returns 0 when the mean is 0 (an all-zero series is perfectly stable).
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// Figure 3b applies it between link utilization and the logarithm of loss
// rate. It returns 0 when either series is constant, and an error when the
// series lengths differ or are empty.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: series length mismatch")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len reports the number of samples behind the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Inverse returns the smallest sample value v with P(X <= v) >= p.
func (c *CDF) Inverse(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	i := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Points returns up to n evenly spaced (value, cumulative probability)
// points, suitable for plotting the CDF curves of Figures 2b, 3b, and 18b.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		pts = append(pts, [2]float64{c.sorted[idx], float64(idx+1) / float64(len(c.sorted))})
	}
	return pts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
