package stats

import (
	"fmt"
	"math"
)

// LossBucket labels one row of Table 1: a half-open interval of loss rates.
type LossBucket struct {
	// Lo is the inclusive lower bound of the bucket.
	Lo float64
	// Hi is the exclusive upper bound; +Inf for the last bucket.
	Hi float64
}

// String renders the bucket the way Table 1 labels its rows.
func (b LossBucket) String() string {
	if math.IsInf(b.Hi, 1) {
		return fmt.Sprintf("[%.0e+)", b.Lo)
	}
	return fmt.Sprintf("[%.0e - %.0e)", b.Lo, b.Hi)
}

// Contains reports whether rate falls in the bucket.
func (b LossBucket) Contains(rate float64) bool {
	return rate >= b.Lo && rate < b.Hi
}

// Table1Buckets are the loss-rate buckets of Table 1 in the paper:
// [1e-8,1e-5), [1e-5,1e-4), [1e-4,1e-3), [1e-3,∞).
// Rates below 1e-8 are considered non-lossy (the IEEE 802.3 floor the paper
// conservatively adopts) and fall in no bucket.
func Table1Buckets() []LossBucket {
	return []LossBucket{
		{Lo: 1e-8, Hi: 1e-5},
		{Lo: 1e-5, Hi: 1e-4},
		{Lo: 1e-4, Hi: 1e-3},
		{Lo: 1e-3, Hi: math.Inf(1)},
	}
}

// BucketShares classifies each rate into buckets and returns the share of
// in-bucket rates per bucket, normalized so the shares sum to 1 (the
// normalization Table 1 applies per column). Rates below the first bucket's
// lower bound are excluded, mirroring the paper's lossy-link threshold.
func BucketShares(rates []float64, buckets []LossBucket) []float64 {
	counts := make([]int, len(buckets))
	total := 0
	for _, r := range rates {
		for i, b := range buckets {
			if b.Contains(r) {
				counts[i]++
				total++
				break
			}
		}
	}
	shares := make([]float64, len(buckets))
	if total == 0 {
		return shares
	}
	for i, c := range counts {
		shares[i] = float64(c) / float64(total)
	}
	return shares
}

// LogUniform maps a uniform draw u in [0,1) to a log-uniformly distributed
// value in [lo, hi). Loss rates within a Table 1 bucket are sampled this way
// because corruption rates span orders of magnitude.
func LogUniform(u, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("stats: LogUniform requires 0 < lo < hi")
	}
	return lo * math.Pow(hi/lo, u)
}
