package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1Buckets(t *testing.T) {
	bs := Table1Buckets()
	if len(bs) != 4 {
		t.Fatalf("want 4 buckets, got %d", len(bs))
	}
	cases := []struct {
		rate   float64
		bucket int // -1 for none
	}{
		{0, -1},
		{1e-9, -1},
		{1e-8, 0},
		{9.9e-6, 0},
		{1e-5, 1},
		{1e-4, 2},
		{1e-3, 3},
		{0.5, 3},
	}
	for _, tc := range cases {
		got := -1
		for i, b := range bs {
			if b.Contains(tc.rate) {
				got = i
				break
			}
		}
		if got != tc.bucket {
			t.Errorf("rate %v classified into bucket %d, want %d", tc.rate, got, tc.bucket)
		}
	}
}

func TestBucketString(t *testing.T) {
	bs := Table1Buckets()
	if s := bs[0].String(); s != "[1e-08 - 1e-05)" {
		t.Fatalf("bucket label = %q", s)
	}
	if s := bs[3].String(); s != "[1e-03+)" {
		t.Fatalf("last bucket label = %q", s)
	}
}

func TestBucketShares(t *testing.T) {
	bs := Table1Buckets()
	rates := []float64{1e-7, 1e-7, 1e-4, 1e-2, 1e-12 /* excluded */}
	shares := BucketShares(rates, bs)
	want := []float64{0.5, 0, 0.25, 0.25}
	for i := range want {
		if !almostEqual(shares[i], want[i], 1e-12) {
			t.Fatalf("shares = %v, want %v", shares, want)
		}
	}
	// Empty and all-excluded inputs give all-zero shares.
	if s := BucketShares(nil, bs); s[0] != 0 || s[3] != 0 {
		t.Fatalf("empty shares = %v", s)
	}
}

func TestBucketSharesSumToOne(t *testing.T) {
	bs := Table1Buckets()
	f := func(raw []float64) bool {
		var rates []float64
		anyIn := false
		for _, r := range raw {
			r = math.Abs(r)
			rates = append(rates, r)
			if r >= 1e-8 && !math.IsInf(r, 0) && !math.IsNaN(r) {
				anyIn = true
			}
		}
		shares := BucketShares(rates, bs)
		sum := 0.0
		for _, s := range shares {
			sum += s
		}
		if !anyIn {
			return sum == 0
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogUniform(t *testing.T) {
	if v := LogUniform(0, 1e-8, 1e-5); v != 1e-8 {
		t.Fatalf("LogUniform(0) = %v", v)
	}
	v := LogUniform(0.5, 1e-8, 1e-2)
	if !almostEqual(math.Log10(v), -5, 1e-9) {
		t.Fatalf("LogUniform(0.5, 1e-8, 1e-2) = %v, want 1e-5", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LogUniform with bad bounds should panic")
		}
	}()
	LogUniform(0.5, 0, 1)
}
