package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Fatalf("StdDev = %v, want 2", sd)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty sample should yield zeros")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	// A constant series is perfectly stable.
	if cv := CoefficientOfVariation([]float64{3, 3, 3}); cv != 0 {
		t.Fatalf("constant series CV = %v, want 0", cv)
	}
	// All-zero series must not divide by zero.
	if cv := CoefficientOfVariation([]float64{0, 0}); cv != 0 {
		t.Fatalf("zero series CV = %v, want 0", cv)
	}
	cv := CoefficientOfVariation([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(cv, 0.4, 1e-12) {
		t.Fatalf("CV = %v, want 0.4", cv)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, %v, want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
	// Constant series: correlation undefined, we define it as 0.
	r, err = Pearson(xs, []float64{1, 1, 1, 1, 1})
	if err != nil || r != 0 {
		t.Fatalf("Pearson with constant = %v, %v, want 0", r, err)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Fatal("length mismatch not reported")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Fatal("empty input not reported")
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		for _, x := range xs {
			// Magnitudes near MaxFloat64 overflow the sums of squares;
			// loss rates and utilizations are bounded, so cap the domain.
			if math.Abs(x) > 1e150 || math.IsNaN(x) {
				return true
			}
		}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = xs[(i+1)%len(xs)]
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return false
		}
		return r >= -1.0000001 && r <= 1.0000001 && !math.IsNaN(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil || !almostEqual(got, tc.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, %v, want %v", tc.q, got, err, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty quantile not reported")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range quantile not reported")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(2); got != 0.75 {
		t.Fatalf("At(2) = %v, want 0.75", got)
	}
	if got := c.At(3); got != 1 {
		t.Fatalf("At(3) = %v, want 1", got)
	}
	if got := c.Inverse(0.5); got != 2 {
		t.Fatalf("Inverse(0.5) = %v, want 2", got)
	}
	if got := c.Inverse(0); got != 1 {
		t.Fatalf("Inverse(0) = %v, want 1", got)
	}
	if got := c.Inverse(1); got != 3 {
		t.Fatalf("Inverse(1) = %v, want 3", got)
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		c := NewCDF(xs)
		prev := -1.0
		for _, x := range xs {
			p := c.At(x)
			if p < 0 || p > 1 {
				return false
			}
			_ = prev
		}
		// Monotonic over a sweep of thresholds.
		prev = 0
		for i := -10; i <= 10; i++ {
			p := c.At(float64(i))
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Fatalf("last point probability = %v, want 1", pts[len(pts)-1][1])
	}
	if got := c.Points(0); got != nil {
		t.Fatal("Points(0) should be nil")
	}
}
