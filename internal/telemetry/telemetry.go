// Package telemetry emulates the monitoring pipeline the paper's operators
// run: every 15 minutes, SNMP queries collect each link's packet totals,
// packet errors (CRC failures — corruption), packet drops (congestion), and
// the transceivers' optical transmit/receive power levels.
//
// A Collector polls ground truth (the fault state and the traffic model) and
// maintains cumulative counters plus, for watched links, an observation time
// series. Counter readings carry multiplicative measurement noise so that
// derived corruption-rate series have a small but non-zero coefficient of
// variation, as in Figure 2.
package telemetry

import (
	"hash/fnv"
	"math"
	"sync"
	"time"

	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/topology"
	"corropt/internal/traffic"
)

// DefaultInterval is the polling cadence used in the paper's data centers.
const DefaultInterval = 15 * time.Minute

// Observation is one polled snapshot of a link.
type Observation struct {
	At time.Duration
	// Disabled records that the link was administratively down at poll
	// time; disabled links carry no traffic and report no optics (§8
	// notes monitoring stops when a link is disabled).
	Disabled bool
	// Util is the link utilization per direction.
	Util [2]float64
	// CorruptionRate is errors/packets per direction over the interval.
	CorruptionRate [2]float64
	// CongestionRate is drops/packets per direction over the interval.
	CongestionRate [2]float64
	// TxPower and RxPower are the optical power readings per side
	// (indexed by optics.Side).
	TxPower [2]optics.DBm
	RxPower [2]optics.DBm
}

// Counters are the cumulative per-link SNMP counters, per direction.
type Counters struct {
	Packets [2]uint64
	Errors  [2]uint64
	Drops   [2]uint64
}

// Config parameterizes a Collector.
type Config struct {
	// Interval between polls; default DefaultInterval.
	Interval time.Duration
	// LineRatePPS is the packet throughput of a fully utilized direction;
	// default 1e6 packets/s (small frames at 10G would be higher; the
	// absolute value only scales counters).
	LineRatePPS float64
	// NoiseSigma is the log-normal measurement noise applied to error
	// counts; default 0.25, giving corruption-rate series a CV well under
	// congestion's.
	NoiseSigma float64
	// Seed makes the measurement noise reproducible.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.LineRatePPS == 0 {
		c.LineRatePPS = 1e6
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.25
	}
}

// Collector polls link state into counters and observation series.
//
// A Collector is safe for concurrent reads (Latest, Series, Counters) while
// one goroutine polls — the deployment shape, where the snmplite responder
// serves counter queries while the 15-minute poll loop runs.
type Collector struct {
	mu       sync.RWMutex
	cfg      Config
	topo     *topology.Topology
	state    *faults.State
	traffic  *traffic.Model
	disabled topology.DisabledFunc
	counters []Counters
	watched  map[topology.LinkID][]Observation
	latest   []Observation
	polled   []bool
}

// NewCollector builds a Collector over ground-truth sources. disabled, if
// non-nil, reports administratively-down links, which are observed as
// Disabled with no traffic. The traffic model may be nil, in which case all
// directions run at a fixed 50% utilization with no congestion.
func NewCollector(state *faults.State, tm *traffic.Model, disabled topology.DisabledFunc, cfg Config) *Collector {
	cfg.fillDefaults()
	topo := state.Topology()
	return &Collector{
		cfg:      cfg,
		topo:     topo,
		state:    state,
		traffic:  tm,
		disabled: disabled,
		counters: make([]Counters, topo.NumLinks()),
		watched:  make(map[topology.LinkID][]Observation),
		latest:   make([]Observation, topo.NumLinks()),
		polled:   make([]bool, topo.NumLinks()),
	}
}

// Interval reports the polling interval.
func (c *Collector) Interval() time.Duration { return c.cfg.Interval }

// Watch records full observation series for the given links. Unwatched
// links keep only their latest observation and cumulative counters, which
// bounds memory on large topologies.
func (c *Collector) Watch(links ...topology.LinkID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range links {
		if _, ok := c.watched[l]; !ok {
			c.watched[l] = nil
		}
	}
}

// Poll takes one snapshot of every link at virtual time now.
func (c *Collector) Poll(now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seconds := c.cfg.Interval.Seconds()
	for li := 0; li < c.topo.NumLinks(); li++ {
		l := topology.LinkID(li)
		obs := Observation{At: now}
		if c.disabled != nil && c.disabled(l) {
			obs.Disabled = true
		} else {
			ol := c.state.Optics(l)
			obs.TxPower[optics.LowerSide] = ol.TxPower(optics.LowerSide)
			obs.TxPower[optics.UpperSide] = ol.TxPower(optics.UpperSide)
			obs.RxPower[optics.LowerSide] = ol.RxPower(optics.LowerSide)
			obs.RxPower[optics.UpperSide] = ol.RxPower(optics.UpperSide)
			for _, d := range []topology.Direction{topology.Up, topology.Down} {
				util := 0.5
				congestion := 0.0
				if c.traffic != nil {
					util = c.traffic.Utilization(l, d, now)
					congestion = c.traffic.LossRate(l, d, now)
				}
				corruption := c.state.CorruptionRate(l, d) * c.noise(l, d, now)
				if corruption > 1 {
					corruption = 1
				}
				packets := util * c.cfg.LineRatePPS * seconds
				obs.Util[d] = util
				obs.CorruptionRate[d] = corruption
				obs.CongestionRate[d] = congestion
				c.counters[l].Packets[d] += uint64(packets)
				c.counters[l].Errors[d] += uint64(packets * corruption)
				c.counters[l].Drops[d] += uint64(packets * congestion)
			}
		}
		c.latest[l] = obs
		c.polled[l] = true
		if series, ok := c.watched[l]; ok {
			c.watched[l] = append(series, obs)
		}
	}
}

// noise returns the multiplicative measurement noise for one sample,
// deterministic in (seed, link, direction, time).
func (c *Collector) noise(l topology.LinkID, d topology.Direction, at time.Duration) float64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{c.cfg.Seed, uint64(l), uint64(d), uint64(at / time.Second)} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	x := h.Sum64()
	u1 := (float64(x>>32) + 1) / float64(1<<32+1)
	u2 := (float64(x&0xffffffff) + 1) / float64(1<<32+1)
	n := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(n * c.cfg.NoiseSigma)
}

// Latest returns the most recent observation of link l; ok is false before
// the first poll.
func (c *Collector) Latest(l topology.LinkID) (Observation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.latest[l], c.polled[l]
}

// Series returns the recorded observations of a watched link; nil for
// unwatched links. The returned slice must not be mutated; it remains valid
// across later polls (growth replaces the backing array atomically under
// the lock).
func (c *Collector) Series(l topology.LinkID) []Observation {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.watched[l]
}

// Counters returns the cumulative counters of link l.
func (c *Collector) Counters(l topology.LinkID) Counters {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.counters[l]
}
