package telemetry

import (
	"testing"
	"time"

	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/rngutil"
	"corropt/internal/stats"
	"corropt/internal/topology"
	"corropt/internal/traffic"
)

func setup(t *testing.T) (*topology.Topology, *faults.State, *traffic.Model) {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 2, ToRsPerPod: 4, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tech := optics.Technology{Name: "t", NominalTx: 0, TxThreshold: -4, RxThreshold: -10, PathLoss: 3}
	st := faults.NewState(topo, tech)
	tm := traffic.New(topo, traffic.Config{}, rngutil.New(5).Split("traffic"))
	return topo, st, tm
}

func TestPollAccumulatesCounters(t *testing.T) {
	_, st, tm := setup(t)
	c := NewCollector(st, tm, nil, Config{})
	c.Poll(0)
	c.Poll(15 * time.Minute)
	ctr := c.Counters(0)
	if ctr.Packets[topology.Up] == 0 {
		t.Fatal("no packets counted")
	}
	// Healthy link: error counters stay negligible relative to packets.
	if ctr.Errors[topology.Up] > ctr.Packets[topology.Up]/1000 {
		t.Fatalf("healthy link errors = %d of %d packets", ctr.Errors[topology.Up], ctr.Packets[topology.Up])
	}
}

func TestCorruptionShowsInErrors(t *testing.T) {
	_, st, tm := setup(t)
	f := &faults.Fault{
		ID:    1,
		Cause: faults.BadTransceiver,
		Effects: []faults.LinkEffect{
			{Link: 0, DirectRate: [2]float64{0.01, 0}},
		},
	}
	st.Apply(f)
	c := NewCollector(st, tm, nil, Config{})
	c.Poll(0)
	obs, ok := c.Latest(0)
	if !ok {
		t.Fatal("no observation after poll")
	}
	r := obs.CorruptionRate[topology.Up]
	if r < 0.005 || r > 0.02 {
		t.Fatalf("observed corruption rate = %v, want ≈0.01 with noise", r)
	}
	if obs.CorruptionRate[topology.Down] > 1e-6 {
		t.Fatalf("reverse direction corrupting: %v", obs.CorruptionRate[topology.Down])
	}
	ctr := c.Counters(0)
	if ctr.Errors[topology.Up] == 0 {
		t.Fatal("error counter did not move")
	}
}

func TestDisabledLinksNotObserved(t *testing.T) {
	_, st, tm := setup(t)
	down := map[topology.LinkID]bool{3: true}
	c := NewCollector(st, tm, func(l topology.LinkID) bool { return down[l] }, Config{})
	c.Poll(0)
	obs, _ := c.Latest(3)
	if !obs.Disabled {
		t.Fatal("disabled link observed as up")
	}
	if obs.Util[0] != 0 || obs.CorruptionRate[0] != 0 {
		t.Fatal("disabled link reports traffic")
	}
	if ctr := c.Counters(3); ctr.Packets[0] != 0 {
		t.Fatal("disabled link accumulated counters")
	}
	// Other links still observed.
	if obs, _ := c.Latest(0); obs.Disabled {
		t.Fatal("healthy link marked disabled")
	}
}

func TestWatchRecordsSeries(t *testing.T) {
	_, st, tm := setup(t)
	c := NewCollector(st, tm, nil, Config{})
	c.Watch(1, 2)
	for i := 0; i < 10; i++ {
		c.Poll(time.Duration(i) * 15 * time.Minute)
	}
	if got := len(c.Series(1)); got != 10 {
		t.Fatalf("watched series length = %d, want 10", got)
	}
	if got := c.Series(5); got != nil {
		t.Fatalf("unwatched link has series of length %d", len(got))
	}
	// Series is ordered by time.
	s := c.Series(2)
	for i := 1; i < len(s); i++ {
		if s[i].At <= s[i-1].At {
			t.Fatal("series not time-ordered")
		}
	}
}

func TestPowerReadings(t *testing.T) {
	_, st, tm := setup(t)
	// Inject a contamination-like loss and check the poll sees low Rx.
	f := &faults.Fault{
		ID:    2,
		Cause: faults.ConnectorContamination,
		Effects: []faults.LinkEffect{
			{Link: 4, ExtraLossFrom: [2]optics.DB{optics.LowerSide: 12}},
		},
	}
	st.Apply(f)
	c := NewCollector(st, tm, nil, Config{})
	c.Poll(0)
	obs, _ := c.Latest(4)
	tech := st.Tech()
	if obs.RxPower[optics.UpperSide] >= tech.RxThreshold {
		t.Fatalf("upper Rx = %v, want below %v", obs.RxPower[optics.UpperSide], tech.RxThreshold)
	}
	if obs.RxPower[optics.LowerSide] < tech.RxThreshold {
		t.Fatal("lower Rx should be healthy")
	}
	if obs.TxPower[optics.LowerSide] < tech.TxThreshold || obs.TxPower[optics.UpperSide] < tech.TxThreshold {
		t.Fatal("Tx power should stay high under contamination")
	}
}

func TestCorruptionCVSmall(t *testing.T) {
	// The measurement noise must leave corruption-rate series far more
	// stable than congestion (Figure 2's contrast).
	_, st, tm := setup(t)
	f := &faults.Fault{
		ID:    3,
		Cause: faults.BadTransceiver,
		Effects: []faults.LinkEffect{
			{Link: 7, DirectRate: [2]float64{1e-4, 0}},
		},
	}
	st.Apply(f)
	c := NewCollector(st, tm, nil, Config{})
	c.Watch(7)
	for i := 0; i < 7*96; i++ {
		c.Poll(time.Duration(i) * 15 * time.Minute)
	}
	var series []float64
	for _, o := range c.Series(7) {
		series = append(series, o.CorruptionRate[topology.Up])
	}
	cv := stats.CoefficientOfVariation(series)
	if cv > 0.5 {
		t.Fatalf("corruption CV = %v, want small (< 0.5)", cv)
	}
	if cv == 0 {
		t.Fatal("expected some measurement noise")
	}
}

func TestNoiseDeterministic(t *testing.T) {
	_, st, tm := setup(t)
	a := NewCollector(st, tm, nil, Config{Seed: 9})
	b := NewCollector(st, tm, nil, Config{Seed: 9})
	a.Poll(0)
	b.Poll(0)
	oa, _ := a.Latest(0)
	ob, _ := b.Latest(0)
	if oa != ob {
		t.Fatal("observations differ across identical collectors")
	}
}

// TestConcurrentReadsDuringPoll codifies the deployment contract: the
// snmplite responder reads counters while the poll loop runs. Run under
// -race this guards the Collector's locking.
func TestConcurrentReadsDuringPoll(t *testing.T) {
	_, st, tm := setup(t)
	c := NewCollector(st, tm, nil, Config{})
	c.Watch(0, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			c.Counters(0)
			c.Latest(1)
			c.Series(0)
		}
	}()
	for i := 0; i < 50; i++ {
		c.Poll(time.Duration(i) * 15 * time.Minute)
	}
	<-done
	if ctr := c.Counters(0); ctr.Packets[0] == 0 {
		t.Fatal("no packets counted under concurrency")
	}
}
