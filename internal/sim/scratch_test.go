package sim

import (
	"reflect"
	"testing"
	"time"

	"corropt/internal/optics"
	"corropt/internal/topology"
)

// scratchConfigs covers every simulator feature that touches pooled state:
// policies, bounded technicians, detection delay, recommendation repairs,
// drain mode, breakout collateral, and the multi-technology deployed-engine
// regime of the fleet and sec72 studies (TechAssign drives State.Reset's
// per-link re-dressing path).
func scratchConfigs() []Config {
	techs := optics.DefaultTechnologies()
	mixAssign := func(l topology.LinkID) optics.Technology {
		return techs[int(l)%len(techs)]
	}
	return []Config{
		{Policy: PolicyCorrOpt, Seed: 2},
		{Policy: PolicySwitchLocal, Seed: 3, Capacity: 0.5},
		{Policy: PolicyFastOnly, Seed: 4, DetectionDelay: 15 * time.Minute},
		{Policy: PolicyCorrOpt, Seed: 5, Technicians: 2, Repair: RepairRecommendation, IgnoreProb: 0.3},
		{Policy: PolicyCorrOpt, Seed: 6, DrainMode: true, RepairCollateral: true, FixedAccuracy: 0.5},
		{Policy: PolicyNone, Seed: 7},
		{Policy: PolicyCorrOpt, Seed: 8, Capacity: 0.5, Repair: RepairRecommendation,
			IgnoreProb: 0.3, NoOpticsFraction: 0.25, UseDeployedEngine: true, TechAssign: mixAssign},
	}
}

// TestScratchMatchesFresh is the sim-level differential test: replaying a
// sequence of scenarios through one pooled Scratch must produce Results
// deep-equal to fresh-allocation reference Sims, including when consecutive
// scenarios alternate configs and reuse dirties every pooled structure.
func TestScratchMatchesFresh(t *testing.T) {
	topo := simTopo(t)
	horizon := 21 * 24 * time.Hour
	trace := genTrace(t, topo, 0.004, horizon, 11)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	sc := NewScratch()
	// Two passes over the configs: the second pass hits a fully warmed
	// (and previously dirtied) scratch.
	for pass := 0; pass < 2; pass++ {
		for i, cfg := range scratchConfigs() {
			fresh, err := New(topo, simTech(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Run(trace, horizon)
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := NewWithScratch(topo, simTech(), cfg, sc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pooled.Run(trace, horizon)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pass %d config %d (%v): scratch result differs from fresh reference",
					pass, i, cfg.Policy)
			}
		}
	}
}

// TestScratchAcrossTopologies pins the per-topology pool: alternating
// scenarios between fabrics (forcing pool hits, misses, and LRU eviction)
// must still match fresh references on every one.
func TestScratchAcrossTopologies(t *testing.T) {
	horizon := 14 * 24 * time.Hour
	var topos []*topology.Topology
	for i := 0; i < maxTopoPools+2; i++ {
		topo, err := topology.NewClos(topology.ClosConfig{
			Pods: 2 + i, ToRsPerPod: 2, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		topos = append(topos, topo)
	}
	sc := NewScratch()
	cfg := Config{Policy: PolicyCorrOpt, Seed: 9}
	run := func(topo *topology.Topology, sc *Scratch) *Result {
		trace := genTrace(t, topo, 0.01, horizon, 21)
		s, err := NewWithScratch(topo, simTech(), cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(trace, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Walk the fabrics forward then backward: the second visit to the first
	// fabrics arrives after their pool entries were evicted.
	order := []int{0, 1, 2, 3, 4, 5, 4, 2, 0, 1}
	for _, i := range order {
		got := run(topos[i], sc)
		want := run(topos[i], nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fabric %d: scratch result differs from fresh reference", i)
		}
	}
}

// TestScratchPoolEviction pins the LRU bound and ordering directly.
func TestScratchPoolEviction(t *testing.T) {
	sc := NewScratch()
	var topos []*topology.Topology
	for i := 0; i < maxTopoPools+1; i++ {
		topo, err := topology.NewClos(topology.ClosConfig{
			Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		topos = append(topos, topo)
		if _, err := sc.pool(topo, 0.75, func(topology.LinkID) optics.Technology { return simTech() }); err != nil {
			t.Fatal(err)
		}
	}
	if len(sc.pools) != maxTopoPools {
		t.Fatalf("pool holds %d entries, cap is %d", len(sc.pools), maxTopoPools)
	}
	// topos[0] was evicted; the rest remain, most-recent last.
	for i, ts := range sc.pools {
		if ts.topo != topos[i+1] {
			t.Fatalf("pool slot %d holds the wrong topology", i)
		}
	}
	// Re-hitting the middle entry moves it to the MRU slot.
	if _, err := sc.pool(topos[2], 0.75, func(topology.LinkID) optics.Technology { return simTech() }); err != nil {
		t.Fatal(err)
	}
	if sc.pools[len(sc.pools)-1].topo != topos[2] {
		t.Fatal("pool hit did not move the entry to the MRU slot")
	}
}
