package sim

import (
	"testing"
	"time"

	"corropt/internal/faults"
	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

// benchTopo builds the ScaleSmall evaluation fabric (256 links).
func benchTopo(b *testing.B) *topology.Topology {
	b.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 4, ToRsPerPod: 8, AggsPerPod: 4, Spines: 16, SpineUplinksPerAgg: 8, BreakoutSize: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

// BenchmarkSimEventLoop measures the trace-driven event loop end to end and
// reports ns/event. With incremental penalty accounting, settle/accrue are
// O(1) per event instead of an O(#links) TotalPenalty rescan — this is the
// per-event speedup the parallel experiment runner multiplies across
// scenarios.
func BenchmarkSimEventLoop(b *testing.B) {
	topo := benchTopo(b)
	horizon := 60 * 24 * time.Hour
	inj, err := faults.NewInjector(topo, simTech(),
		faults.InjectorConfig{FaultsPerLinkPerDay: 0.01},
		rngutil.New(9).Split("bench-trace"))
	if err != nil {
		b.Fatal(err)
	}
	trace := inj.Generate(horizon)
	if len(trace) == 0 {
		b.Fatal("empty trace")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int
	for i := 0; i < b.N; i++ {
		s, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, Seed: 10})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(trace, horizon)
		if err != nil {
			b.Fatal(err)
		}
		// Every fault report and every repair completion is at least one
		// penalty-changing event; samples settle the integral too.
		events += res.CorruptionReports + res.TicketsOpened + len(res.Samples)
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

// BenchmarkSimSettle isolates the per-event settle cost (the paths the
// incremental penalty accounting made O(1)).
func BenchmarkSimSettle(b *testing.B) {
	topo := benchTopo(b)
	s, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	// Populate some corruption so the sum is non-trivial.
	for l := 0; l < topo.NumLinks(); l += 7 {
		s.net.SetCorruption(topology.LinkID(l), 1e-4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.settle()
	}
}
