package sim

import (
	"corropt/internal/core"
	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/simclock"
	"corropt/internal/tickets"
	"corropt/internal/topology"
)

// Scratch is the per-worker reusable state behind NewWithScratch: the event
// clock, the ticket queue (with its recycled-ticket arena), the bookkeeping
// maps, and a small pool of per-topology Network/State pairs that are Reset
// between scenarios instead of reallocated. A fresh Sim costs one
// PathCounter sweep plus O(links) allocations; a Scratch-backed Sim reuses
// all of it, which is what drives the experiment suite's event path toward
// zero allocations per scenario.
//
// Ownership rules:
//
//   - A Scratch serves one Sim at a time: NewWithScratch(.., sc) invalidates
//     every Sim previously built from sc, so a scenario's Run must finish
//     before the worker starts the next scenario. runner.MapScratch's
//     one-scratch-per-worker discipline guarantees this.
//   - A Scratch is not safe for concurrent use; never share one across
//     goroutines.
//   - Results returned by Run stay valid after the Scratch moves on — the
//     sample and per-day buffers are owned by the Result, never pooled.
type Scratch struct {
	clock *simclock.Clock
	queue *tickets.Queue
	// pools is a tiny LRU (most-recently-used last) of per-topology reusable
	// state. Scenario work lists are grouped by driver, so consecutive
	// scenarios on one worker overwhelmingly share a topology; the LRU keeps
	// the hit path O(maxTopoPools) with deterministic slice-order eviction
	// (no map iteration).
	pools []*topoScratch

	reseated   map[topology.LinkID]bool
	ticketed   map[topology.LinkID]bool
	collateral map[topology.LinkID]int
}

// topoScratch is the reusable per-topology state: the Network (owning the
// incremental PathCounter) and the fault State (owning one optics.Link per
// link).
type topoScratch struct {
	topo  *topology.Topology
	net   *core.Network
	state *faults.State
}

// maxTopoPools bounds the per-worker pool: Network+State are O(links) each,
// and workers that sweep many distinct fabrics (the fleet study) must not
// accumulate one pair per DCN.
const maxTopoPools = 4

// NewScratch returns an empty Scratch ready to back NewWithScratch calls.
func NewScratch() *Scratch {
	return &Scratch{
		clock:      simclock.New(),
		queue:      tickets.NewQueue(tickets.QueueConfig{}),
		reseated:   make(map[topology.LinkID]bool),
		ticketed:   make(map[topology.LinkID]bool),
		collateral: make(map[topology.LinkID]int),
	}
}

// pool returns reusable per-topology state for topo, reset to the
// fresh-construction state for the given capacity and technology
// assignment. On a miss it builds a new pair, evicting the
// least-recently-used entry once the pool is full.
func (sc *Scratch) pool(topo *topology.Topology, capacity float64,
	assign func(topology.LinkID) optics.Technology) (*topoScratch, error) {
	for i, ts := range sc.pools {
		if ts.topo != topo {
			continue
		}
		copy(sc.pools[i:], sc.pools[i+1:])
		sc.pools[len(sc.pools)-1] = ts
		if err := ts.net.Reset(capacity); err != nil {
			return nil, err
		}
		ts.state.Reset(assign)
		return ts, nil
	}
	net, err := core.NewNetwork(topo, capacity)
	if err != nil {
		return nil, err
	}
	ts := &topoScratch{topo: topo, net: net, state: faults.NewMultiTechState(topo, assign)}
	if len(sc.pools) >= maxTopoPools {
		copy(sc.pools, sc.pools[1:])
		sc.pools = sc.pools[:len(sc.pools)-1]
	}
	sc.pools = append(sc.pools, ts)
	return ts, nil
}
