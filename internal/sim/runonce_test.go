package sim

import (
	"strings"
	"testing"
	"time"
)

// TestRunIsOneShot pins the one-shot contract: a second Run on the same Sim
// must fail loudly instead of double-registering the sampler and
// re-accruing into the shared result.
func TestRunIsOneShot(t *testing.T) {
	topo := simTopo(t)
	horizon := 7 * 24 * time.Hour
	trace := genTrace(t, topo, 0.005, horizon, 5)
	s, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(trace, horizon); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(trace, horizon); err == nil {
		t.Fatal("second Run on the same Sim did not fail")
	} else if !strings.Contains(err.Error(), "one-shot") {
		t.Fatalf("second Run error does not explain the contract: %v", err)
	}
}

// TestIncrementalPenaltyMatchesRescan pins the sim-level invariant behind
// the O(1) settle: at every sample the incrementally-maintained penalty
// equals a fresh TotalPenalty rescan of the final state, and the recorded
// series is identical to what the pre-incremental code produced (both read
// the same registered function over the same state).
func TestIncrementalPenaltyMatchesRescan(t *testing.T) {
	topo := simTopo(t)
	horizon := 14 * 24 * time.Hour
	trace := genTrace(t, topo, 0.01, horizon, 7)
	s, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Network().PenaltySum(), s.Network().TotalPenalty(s.cfg.Penalty); got != want {
		t.Fatalf("final PenaltySum %v != TotalPenalty rescan %v", got, want)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	for _, smp := range res.Samples {
		if smp.Penalty < 0 {
			t.Fatalf("negative penalty sample at %v: %v", smp.At, smp.Penalty)
		}
	}
}
