package sim

import (
	"fmt"
	"time"

	"corropt/internal/faults"
	"corropt/internal/topology"
)

// Clear is an externally scheduled fault removal: at virtual time At, the
// ground-truth fault with the given ID stops on its own, without a repair
// ticket being worked. This is the event-path primitive behind scenario
// families the plain trace replay cannot express — link-flap storms (a
// loose connector corrupts intermittently), optical-degradation
// trajectories (each ramp step replaces the previous one), and transient
// environmental faults. A Clear whose fault is not currently active (never
// applied, already repaired, or already cleared) is a no-op.
type Clear struct {
	At    time.Duration
	Fault faults.ID
}

// DampeningConfig enables link-flap dampening, the mitigation policy for
// flap storms ("Ghost in the Datacenter"-style churn): when monitoring
// detects the same link corrupting Flaps times within Window, the link is
// held administratively down for Holddown after its next successful repair
// instead of being re-enabled immediately. A held link re-enters service at
// holddown expiry only if it is still healthy; if it is corrupting again it
// stays down and a fresh repair is booked — so a flapping link stops
// generating a ticket per flap. All three fields must be positive.
type DampeningConfig struct {
	// Window is the sliding window over detection events.
	Window time.Duration
	// Flaps is the number of detections within Window that trigger a hold.
	Flaps int
	// Holddown is how long a repaired-but-flappy link stays disabled.
	Holddown time.Duration
}

func (d *DampeningConfig) validate() error {
	if d.Window <= 0 || d.Flaps <= 0 || d.Holddown <= 0 {
		return fmt.Errorf("sim: dampening requires positive window, flaps, and holddown (got %v, %d, %v)",
			d.Window, d.Flaps, d.Holddown)
	}
	return nil
}

// RunEvents replays the fault trace plus externally scheduled fault clears
// until horizon and returns the result. Clears are scheduled before the
// trace, so a clear and a fault arriving at the same instant resolve
// clear-first — the replace semantics degradation ramps rely on. Like Run,
// RunEvents is one-shot; Run(trace, horizon) is RunEvents(trace, nil,
// horizon).
func (s *Sim) RunEvents(trace []*faults.Fault, clears []Clear, horizon time.Duration) (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: Run called twice on the same Sim; Sim is one-shot — build a new Sim to replay")
	}
	s.ran = true
	// Size the output series up front: one sample per interval plus the t=0
	// and horizon points, one penalty bucket per simulated day. Saves the
	// append-growth reallocations on every scenario.
	s.result.Samples = make([]Sample, 0, horizon/s.cfg.SampleInterval+2)
	s.result.PenaltyPerDay = make([]float64, 0, horizon/(24*time.Hour)+1)
	for _, c := range clears {
		if c.At >= horizon {
			continue
		}
		id := c.Fault
		if _, err := s.clock.At(c.At, func(now time.Duration) { s.onClear(id, now) }); err != nil {
			return nil, fmt.Errorf("sim: clear before t=0: %w", err)
		}
	}
	for _, f := range trace {
		f := f
		if f.Start >= horizon {
			break
		}
		if _, err := s.clock.At(f.Start, func(now time.Duration) { s.onFault(f, now) }); err != nil {
			return nil, fmt.Errorf("sim: trace not sorted: %w", err)
		}
	}
	s.clock.Every(s.cfg.SampleInterval, s.sample)
	s.sample(0)
	s.clock.RunUntil(horizon)
	// Close the penalty integral at the horizon.
	s.accrue(horizon)
	s.result.FirstAttemptSuccessRate = s.queue.FirstAttemptSuccessRate()
	s.result.MeanAttempts = s.queue.MeanAttempts()
	return &s.result, nil
}

// onClear removes a still-active fault from ground truth without touching
// the ticket workflow. Links the fault held over the detection threshold
// fall back to whatever their remaining faults produce; a repair in flight
// for such a link simply finds it healthy on completion (the flap ended
// before the technician arrived).
func (s *Sim) onClear(id faults.ID, now time.Duration) {
	f, ok := s.state.Fault(id)
	if !ok {
		return
	}
	s.accrue(now)
	defer s.settle()
	s.state.Clear(id)
	for _, e := range f.Effects {
		s.syncRate(e.Link)
	}
}

// noteFlap records a detection event on link l for the dampening window and
// arms (or extends) the link's holddown once the flap count trips.
func (s *Sim) noteFlap(l topology.LinkID, now time.Duration) {
	d := s.cfg.Dampening
	times := s.flapAt[l]
	keep := times[:0]
	for _, t := range times {
		if now-t <= d.Window {
			keep = append(keep, t)
		}
	}
	keep = append(keep, now)
	s.flapAt[l] = keep
	if len(keep) >= d.Flaps {
		if until := now + d.Holddown; until > s.dampUntil[l] {
			s.dampUntil[l] = until
		}
	}
}

// releaseDampened ends link l's holddown: a healthy link re-enters service
// (letting the policy react to the activation), while a link corrupting
// again stays down and books a fresh repair without ever re-exposing
// application traffic.
func (s *Sim) releaseDampened(l topology.LinkID, now time.Duration) {
	s.accrue(now)
	defer s.settle()
	delete(s.dampUntil, l)
	s.syncRate(l)
	if s.net.CorruptionRate(l) >= s.cfg.DetectionThreshold {
		s.result.CorruptionReports++
		s.openTicket(l, now)
		return
	}
	s.net.Enable(l)
	for _, nl := range s.pol.onActivation() {
		s.result.LinksDisabled++
		s.openTicket(nl, now)
	}
}
