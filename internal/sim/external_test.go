package sim

import (
	"reflect"
	"testing"
	"time"

	"corropt/internal/faults"
	"corropt/internal/topology"
)

func directFault(id faults.ID, l topology.LinkID, start time.Duration, rate float64) *faults.Fault {
	return &faults.Fault{
		ID:    id,
		Cause: faults.BadTransceiver,
		Start: start,
		Effects: []faults.LinkEffect{
			{Link: l, DirectRate: [2]float64{rate, 0}},
		},
	}
}

// flapTrace builds count fault+clear pairs on link l: corrupt at
// start + i*period, self-clearing up later.
func flapTrace(l topology.LinkID, start, period, up time.Duration, count int, rate float64) ([]*faults.Fault, []Clear) {
	var trace []*faults.Fault
	var clears []Clear
	for i := 0; i < count; i++ {
		at := start + time.Duration(i)*period
		f := directFault(faults.ID(1000+i), l, at, rate)
		trace = append(trace, f)
		clears = append(clears, Clear{At: at + up, Fault: f.ID})
	}
	return trace, clears
}

func TestRunEventsClearRemovesFault(t *testing.T) {
	topo := simTopo(t)
	l := topo.Link(0).ID
	f := directFault(1, l, time.Hour, 1e-4)
	s, err := New(topo, simTech(), Config{Policy: PolicyNone, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunEvents([]*faults.Fault{f}, []Clear{{At: 3 * time.Hour, Fault: 1}}, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Under PolicyNone nothing is disabled, so the fault corrupts for
	// exactly the 2h between application and clear (plus the healthy-link
	// optics-floor BER, hence the tolerance).
	want := 1e-4 * (2 * time.Hour).Seconds()
	if diff := res.IntegratedPenalty - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("integrated penalty %v, want %v", res.IntegratedPenalty, want)
	}
	for _, smp := range res.Samples {
		wantActive := 0
		if smp.At >= time.Hour && smp.At < 3*time.Hour {
			wantActive = 1
		}
		if smp.ActiveCorrupting != wantActive {
			t.Fatalf("at %v: ActiveCorrupting=%d, want %d", smp.At, smp.ActiveCorrupting, wantActive)
		}
	}
}

func TestRunEventsClearBeforeFaultAtSameInstant(t *testing.T) {
	topo := simTopo(t)
	l := topo.Link(0).ID
	// Ramp-style replacement: fault B lands at the exact instant fault A
	// clears. The clear must fire first, so the link ends at B's rate
	// rather than the worst of both.
	a := directFault(1, l, time.Hour, 1e-3)
	b := directFault(2, l, 2*time.Hour, 1e-5)
	s, err := New(topo, simTech(), Config{Policy: PolicyNone, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunEvents([]*faults.Fault{a, b}, []Clear{{At: 2 * time.Hour, Fault: 1}}, 4*time.Hour); err != nil {
		t.Fatal(err)
	}
	// The clear fired first, so only B's rate remains (the sub-1e-11
	// optics-floor BER rides on top; 1e-3 would mean A survived).
	if got := s.Network().CorruptionRate(l); got < 1e-5 || got > 2e-5 {
		t.Fatalf("rate after replacement %v, want ~1e-5", got)
	}
}

func TestRunEventsUnknownClearIsNoOp(t *testing.T) {
	topo := simTopo(t)
	horizon := 14 * 24 * time.Hour
	trace := genTrace(t, topo, 0.005, horizon, 3)
	run := func(clears []Clear) *Result {
		s, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunEvents(trace, clears, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	// Clears for IDs that never appear in the trace, plus one past the
	// horizon, must leave the run untouched.
	noop := run([]Clear{{At: time.Hour, Fault: 999999}, {At: horizon + time.Hour, Fault: 1}})
	if !reflect.DeepEqual(plain, noop) {
		t.Fatal("no-op clears changed the run result")
	}
}

func TestDampeningHoldsFlappingLink(t *testing.T) {
	topo := simTopo(t)
	l := topo.Link(0).ID
	horizon := 5 * 24 * time.Hour
	trace, clears := flapTrace(l, 0, 3*time.Hour, time.Hour, 10, 1e-4)
	run := func(d *DampeningConfig) *Result {
		s, err := New(topo, simTech(), Config{
			Policy:        PolicyCorrOpt,
			FixedAccuracy: 1.0, // repairs always "succeed" (the flap cleared anyway)
			ServiceTime:   2 * time.Hour,
			Dampening:     d,
			Seed:          1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunEvents(trace, clears, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	damped := run(&DampeningConfig{Window: 12 * time.Hour, Flaps: 3, Holddown: 48 * time.Hour})
	if plain.DampenedHolds != 0 {
		t.Fatalf("undamped run recorded %d holds", plain.DampenedHolds)
	}
	if plain.TicketsOpened < 5 {
		t.Fatalf("flap storm opened only %d tickets without dampening", plain.TicketsOpened)
	}
	if damped.DampenedHolds == 0 {
		t.Fatal("dampening never held the flapping link")
	}
	if damped.TicketsOpened >= plain.TicketsOpened {
		t.Fatalf("dampening did not cut tickets: %d (damped) vs %d (plain)",
			damped.TicketsOpened, plain.TicketsOpened)
	}
}

func TestDampeningReleaseReenablesHealthyLink(t *testing.T) {
	topo := simTopo(t)
	l := topo.Link(0).ID
	// Three quick flaps trip the dampener; the holddown expires well before
	// the horizon with no fault active, so the link must end enabled.
	trace, clears := flapTrace(l, 0, 3*time.Hour, time.Hour, 3, 1e-4)
	s, err := New(topo, simTech(), Config{
		Policy:        PolicyCorrOpt,
		FixedAccuracy: 1.0,
		ServiceTime:   2 * time.Hour,
		Dampening:     &DampeningConfig{Window: 12 * time.Hour, Flaps: 3, Holddown: 24 * time.Hour},
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunEvents(trace, clears, 10*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.DampenedHolds == 0 {
		t.Fatal("dampener never tripped")
	}
	if s.Network().Disabled(l) {
		t.Fatal("healthy link still disabled after holddown expiry")
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Disabled != 0 {
		t.Fatalf("final sample still shows %d disabled links", last.Disabled)
	}
}

func TestDampeningConfigValidation(t *testing.T) {
	topo := simTopo(t)
	bad := []*DampeningConfig{
		{Window: 0, Flaps: 3, Holddown: time.Hour},
		{Window: time.Hour, Flaps: 0, Holddown: time.Hour},
		{Window: time.Hour, Flaps: 3, Holddown: 0},
		{Window: -time.Hour, Flaps: 3, Holddown: time.Hour},
	}
	for _, d := range bad {
		if _, err := New(topo, simTech(), Config{Dampening: d}); err == nil {
			t.Fatalf("config %+v accepted", *d)
		}
	}
}

func TestRunDelegatesToRunEvents(t *testing.T) {
	topo := simTopo(t)
	horizon := 7 * 24 * time.Hour
	trace := genTrace(t, topo, 0.005, horizon, 5)
	s1, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Run(trace, horizon)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.RunEvents(trace, nil, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("Run and RunEvents(trace, nil) diverge")
	}
}
