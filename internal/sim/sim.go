// Package sim drives the trace-based mitigation simulations of §7: a fault
// trace replays against a topology while a mitigation policy (switch-local,
// fast checker only, or full CorrOpt) decides which corrupting links to
// disable; disabled links queue for repair; repairs succeed per the chosen
// repair model; re-enabled links trigger re-optimization. The simulator
// samples total penalty per second, the worst ToR's available-path
// fraction, and ticket statistics — the series behind Figures 14–19.
package sim

import (
	"fmt"
	"time"

	"corropt/internal/core"
	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/rngutil"
	"corropt/internal/simclock"
	"corropt/internal/tickets"
	"corropt/internal/topology"
)

// PolicyKind selects the link-disabling strategy under test.
type PolicyKind int

const (
	// PolicyNone never disables links; the do-nothing baseline that
	// calibrates how much any mitigation helps (the paper estimates
	// corruption losses would be two orders of magnitude higher without
	// automatic disabling, §2).
	PolicyNone PolicyKind = iota
	// PolicySwitchLocal is the production baseline: a link may go down
	// only if its switch keeps c^(1/r) of its uplinks.
	PolicySwitchLocal
	// PolicyFastOnly runs CorrOpt's fast checker for new corrupting links
	// and re-runs it (instead of the optimizer) on activations.
	PolicyFastOnly
	// PolicyCorrOpt is the full system: fast checker on arrival, global
	// optimizer on activation.
	PolicyCorrOpt
)

// String implements fmt.Stringer.
func (p PolicyKind) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicySwitchLocal:
		return "switch-local"
	case PolicyFastOnly:
		return "fast-only"
	case PolicyCorrOpt:
		return "corropt"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// RepairMode selects how repair outcomes are decided.
type RepairMode int

const (
	// RepairFixedAccuracy resolves each attempt successfully with a fixed
	// probability, the model §7.1 uses (80% with CorrOpt's
	// recommendations, 50% without).
	RepairFixedAccuracy RepairMode = iota
	// RepairRecommendation plays the full loop: Algorithm 1 diagnoses the
	// symptoms, a technician follows or ignores the recommendation, and
	// the attempt succeeds only if the action taken fixes the true root
	// cause (§7.2).
	RepairRecommendation
)

// Config parameterizes one simulation run.
type Config struct {
	// Capacity is the per-ToR constraint c; default 0.75 (the realistic
	// regime the paper highlights).
	Capacity float64
	// Policy is the link-disabling strategy; default PolicyCorrOpt.
	Policy PolicyKind
	// DetectionThreshold is the corruption rate that triggers
	// mitigation; default core.DefaultDetectionThreshold.
	DetectionThreshold float64
	// DetectionDelay is how long corruption runs before the controller
	// reacts — in production the SNMP poll interval plus alarm latency.
	// During the delay the link keeps corrupting application traffic,
	// which is the main way packets are lost to corruption even with
	// mitigation deployed (§2). Default 0 (instant detection).
	DetectionDelay time.Duration
	// Repair selects the repair model.
	Repair RepairMode
	// FixedAccuracy is the per-attempt success probability under
	// RepairFixedAccuracy; default 0.8.
	FixedAccuracy float64
	// IgnoreProb is the probability technicians ignore a recommendation
	// under RepairRecommendation (the early deployment measured ~30%,
	// §7.2); default 0 — recommendations are followed.
	IgnoreProb float64
	// UseDeployedEngine swaps in the simplified deployed recommendation
	// engine (§7.2) instead of full Algorithm 1.
	UseDeployedEngine bool
	// NoOpticsFraction is the fraction of links whose switches expose no
	// optical power data, so their tickets carry no recommendation (§7.2:
	// "we cannot get optical power information from all types of
	// switches"). Default 0.
	NoOpticsFraction float64
	// DrainMode enables the §8 extension "removing traffic instead of
	// disabling links": a mitigated link is drained (routing cost raised)
	// rather than shut down, so monitoring keeps flowing and a repair can
	// be verified with test traffic before the link carries real load
	// again. A failed repair is then detected without re-exposing
	// applications, eliminating the Figure 12 re-enable/re-corrupt cycle.
	DrainMode bool
	// RepairCollateral models the §8 observation that repairing one link
	// of a breakout cable takes its (healthy) sibling links down for the
	// duration of the repair.
	RepairCollateral bool
	// TechAssign optionally assigns per-link transceiver technologies
	// (real fabrics mix 10G/40G/100G optics with different power
	// thresholds); nil uses the technology passed to New for every link.
	TechAssign func(topology.LinkID) optics.Technology
	// ServiceTime is one repair attempt's duration; default 48h.
	ServiceTime time.Duration
	// Technicians bounds concurrent repairs; 0 = unlimited.
	Technicians int
	// Dampening enables link-flap dampening (see DampeningConfig); nil
	// disables it. The pointed-to config is read, never written.
	Dampening *DampeningConfig
	// SampleInterval is the penalty sampling cadence; default 1h.
	SampleInterval time.Duration
	// Penalty is the impact function; default core.LinearPenalty.
	Penalty core.PenaltyFunc
	// Optimizer tunes PolicyCorrOpt's second phase.
	Optimizer core.OptimizerConfig
	// Seed drives repair-outcome randomness.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Capacity == 0 {
		c.Capacity = 0.75
	}
	if c.DetectionThreshold == 0 {
		c.DetectionThreshold = core.DefaultDetectionThreshold
	}
	if c.FixedAccuracy == 0 {
		c.FixedAccuracy = 0.8
	}
	if c.ServiceTime == 0 {
		c.ServiceTime = 48 * time.Hour
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = time.Hour
	}
	if c.Penalty == nil {
		c.Penalty = core.LinearPenalty
	}
}

// Sample is one point of the simulation's output series.
type Sample struct {
	At time.Duration
	// Penalty is Σ (1-d_l)·I(f_l) at this instant (penalty per second
	// under the linear I).
	Penalty float64
	// WorstToRFraction and MeanToRFraction are the available-path
	// fractions of Figures 15/16 and §7.3.
	WorstToRFraction float64
	MeanToRFraction  float64
	// ActiveCorrupting counts enabled links over the detection threshold.
	ActiveCorrupting int
	// Disabled counts administratively-down links.
	Disabled int
}

// Result aggregates one run.
type Result struct {
	Samples []Sample
	// IntegratedPenalty is ∫ penalty dt over the horizon, in
	// penalty·seconds — the quantity Figure 17 takes ratios of. The
	// integral is exact (advanced at every penalty-changing event), so
	// exposure windows shorter than the sample interval are included.
	IntegratedPenalty float64
	// PenaltyPerDay is the same integral bucketed by simulated day;
	// multiplied by utilization × line rate it yields packets lost per
	// day to corruption (Figure 1's quantity).
	PenaltyPerDay []float64
	// TicketsOpened counts repair attempts; LinksDisabled counts disable
	// actions (both directions count once).
	TicketsOpened, LinksDisabled int
	// FirstAttemptSuccessRate and MeanAttempts summarize repairs.
	FirstAttemptSuccessRate float64
	MeanAttempts            float64
	// UndisabledEvents counts corruption reports the policy had to leave
	// active due to capacity constraints (§5.1 reports up to 15% in
	// realistic configurations).
	UndisabledEvents int
	// CorruptionReports counts above-threshold corruption reports.
	CorruptionReports int
	// DampenedHolds counts successful repairs whose re-enable was held
	// back by flap dampening (Config.Dampening).
	DampenedHolds int
}

// policy abstracts the three strategies behind a uniform interface.
type policy interface {
	// tryDisable attempts to disable l, returning success.
	tryDisable(l topology.LinkID) bool
	// onActivation is invoked after a link was re-enabled; it returns any
	// additional links disabled in response.
	onActivation() []topology.LinkID
}

type nonePolicy struct{}

func (nonePolicy) tryDisable(topology.LinkID) bool { return false }
func (nonePolicy) onActivation() []topology.LinkID { return nil }

type switchLocalPolicy struct {
	sl        *core.SwitchLocal
	threshold float64
}

func (p *switchLocalPolicy) tryDisable(l topology.LinkID) bool { return p.sl.DisableIfSafe(l) }
func (p *switchLocalPolicy) onActivation() []topology.LinkID   { return p.sl.Sweep(p.threshold) }

type fastOnlyPolicy struct {
	fc        *core.FastChecker
	threshold float64
}

func (p *fastOnlyPolicy) tryDisable(l topology.LinkID) bool { return p.fc.DisableIfSafe(l) }
func (p *fastOnlyPolicy) onActivation() []topology.LinkID   { return p.fc.Sweep(p.threshold) }

type corrOptPolicy struct {
	fc        *core.FastChecker
	opt       *core.Optimizer
	threshold float64
}

func (p *corrOptPolicy) tryDisable(l topology.LinkID) bool { return p.fc.DisableIfSafe(l) }
func (p *corrOptPolicy) onActivation() []topology.LinkID {
	disabled, _ := p.opt.Run(p.threshold)
	return disabled
}

// Sim is one configured simulation.
type Sim struct {
	cfg    Config
	topo   *topology.Topology
	state  *faults.State
	net    *core.Network
	pol    policy
	queue  *tickets.Queue
	tech   *tickets.Technician
	clock  *simclock.Clock
	rng    *rngutil.Source
	result Result
	// ran guards the one-shot Run contract: a second Run on the same Sim
	// would re-register the periodic sampler and re-accrue into the shared
	// result, silently corrupting both runs' outputs.
	ran bool

	// reseated tracks links whose transceiver was reseated since the last
	// successful repair (Algorithm 1's history input).
	reseated map[topology.LinkID]bool
	// ticketed marks links with an open ticket so overlapping faults on a
	// disabled link do not double-book repairs.
	ticketed map[topology.LinkID]bool
	// collateral counts, per healthy link, how many in-progress breakout
	// repairs are holding it down (RepairCollateral mode).
	collateral map[topology.LinkID]int
	// flapAt and dampUntil back flap dampening (Config.Dampening): recent
	// detection times per link, and the holddown expiry armed once the flap
	// count trips. Allocated only when dampening is enabled; deliberately
	// not pooled in Scratch — the maps are tiny (flapping links only) and
	// dampening runs are the exception, not the steady state.
	flapAt    map[topology.LinkID][]time.Duration
	dampUntil map[topology.LinkID]time.Duration

	// Exact penalty integration: lastPenalty held since lastAccrueAt; the
	// integral advances at every penalty-changing event, not just at
	// sample instants, so sub-sample exposure windows (e.g. the detection
	// delay) are accounted for exactly.
	lastAccrueAt time.Duration
	lastPenalty  float64
}

// New builds a simulation over the topology and transceiver technology with
// freshly allocated internals. It is NewWithScratch with a nil Scratch and
// remains the reference construction path the scratch differential tests
// compare against.
func New(topo *topology.Topology, tech optics.Technology, cfg Config) (*Sim, error) {
	return NewWithScratch(topo, tech, cfg, nil)
}

// NewWithScratch builds a simulation like New but, with a non-nil sc,
// borrows the Scratch's pooled internals (clock, ticket queue, bookkeeping
// maps, per-topology Network and fault State) instead of allocating fresh
// ones. The pooled state is reset to exactly the fresh-construction state,
// so a scratch-backed Sim's Run output is bit-identical to New's for the
// same inputs. Building a new Sim from sc invalidates every Sim previously
// built from it; see Scratch for the ownership rules.
func NewWithScratch(topo *topology.Topology, tech optics.Technology, cfg Config, sc *Scratch) (*Sim, error) {
	cfg.fillDefaults()
	assign := cfg.TechAssign
	if assign == nil {
		assign = func(topology.LinkID) optics.Technology { return tech }
	}
	s := &Sim{
		cfg:  cfg,
		topo: topo,
		rng:  rngutil.New(cfg.Seed).Split("sim"),
	}
	if sc == nil {
		net, err := core.NewNetwork(topo, cfg.Capacity)
		if err != nil {
			return nil, err
		}
		s.net = net
		s.state = faults.NewMultiTechState(topo, assign)
		s.queue = tickets.NewQueue(tickets.QueueConfig{ServiceTime: cfg.ServiceTime, Technicians: cfg.Technicians})
		s.clock = simclock.New()
		s.reseated = make(map[topology.LinkID]bool)
		s.ticketed = make(map[topology.LinkID]bool)
		s.collateral = make(map[topology.LinkID]int)
	} else {
		ts, err := sc.pool(topo, cfg.Capacity, assign)
		if err != nil {
			return nil, err
		}
		s.net = ts.net
		s.state = ts.state
		sc.queue.Reset(tickets.QueueConfig{ServiceTime: cfg.ServiceTime, Technicians: cfg.Technicians, Quiet: true})
		s.queue = sc.queue
		sc.clock.Reset()
		s.clock = sc.clock
		clear(sc.reseated)
		clear(sc.ticketed)
		clear(sc.collateral)
		s.reseated = sc.reseated
		s.ticketed = sc.ticketed
		s.collateral = sc.collateral
	}
	if cfg.Dampening != nil {
		if err := cfg.Dampening.validate(); err != nil {
			return nil, err
		}
		s.flapAt = make(map[topology.LinkID][]time.Duration)
		s.dampUntil = make(map[topology.LinkID]time.Duration)
	}
	// Incremental penalty accounting: the network maintains Σ (1-d_l)·I(f_l)
	// as O(1)-updatable state, so settle/sample read it instead of
	// rescanning every link per event.
	s.net.RegisterPenalty(cfg.Penalty)
	s.tech = tickets.NewTechnician(1-cfg.IgnoreProb, s.rng.Split("technician"))
	switch cfg.Policy {
	case PolicyNone:
		s.pol = nonePolicy{}
	case PolicySwitchLocal:
		sl, err := core.NewSwitchLocal(s.net, cfg.Capacity)
		if err != nil {
			return nil, err
		}
		s.pol = &switchLocalPolicy{sl: sl, threshold: cfg.DetectionThreshold}
	case PolicyFastOnly:
		s.pol = &fastOnlyPolicy{fc: core.NewFastChecker(s.net), threshold: cfg.DetectionThreshold}
	case PolicyCorrOpt:
		s.pol = &corrOptPolicy{
			fc:        core.NewFastChecker(s.net),
			opt:       core.NewOptimizer(s.net, cfg.Penalty, cfg.Optimizer),
			threshold: cfg.DetectionThreshold,
		}
	default:
		return nil, fmt.Errorf("sim: unknown policy %v", cfg.Policy)
	}
	return s, nil
}

// Network exposes the simulated network state (read-only use expected).
func (s *Sim) Network() *core.Network { return s.net }

// State exposes the ground-truth fault state.
func (s *Sim) State() *faults.State { return s.state }

// Run replays the fault trace until horizon and returns the result.
//
// Run is one-shot: a Sim accumulates its event queue, ticket state, and
// penalty integral across the run, so replaying on the same Sim would
// double-register the periodic sampler and re-accrue into the shared
// result. Build a fresh Sim (with the same Config and Seed for identical
// output) to run again; a second Run returns an error.
func (s *Sim) Run(trace []*faults.Fault, horizon time.Duration) (*Result, error) {
	return s.RunEvents(trace, nil, horizon)
}

// syncRate mirrors ground truth into the policy-visible network record.
// Rates under the IEEE 802.3 lossy floor are indistinguishable from a
// healthy link and mirror as zero.
func (s *Sim) syncRate(l topology.LinkID) {
	rate := s.state.WorstRate(l)
	if rate < core.LossyFloor {
		rate = 0
	}
	s.net.SetCorruption(l, rate)
}

// accrue advances the penalty integral to now; callers mutate state after.
//
//lint:hotpath runs before every event mutation and every sample
func (s *Sim) accrue(now time.Duration) {
	s.result.IntegratedPenalty += s.lastPenalty * (now - s.lastAccrueAt).Seconds()
	// Bucket by day, splitting intervals across midnight boundaries.
	const day = 24 * time.Hour
	for at := s.lastAccrueAt; at < now; {
		end := (at/day + 1) * day
		if end > now {
			end = now
		}
		// d is unsigned so both indexed adds below need only the upper bound,
		// which the guard (hot) and the grow loop's exit condition (cold)
		// each prove — the compiler inserts no bounds check on either line,
		// which the escapes analyzer holds hot-path inner loops to. at >= 0
		// always (lastAccrueAt only ever advances from zero).
		d := uint(at / day)
		ppd := s.result.PenaltyPerDay
		if d < uint(len(ppd)) {
			ppd[d] += s.lastPenalty * (end - at).Seconds()
		} else {
			// Cold: first interval of a new simulated day.
			for uint(len(ppd)) <= d {
				//lint:allow hotalloc grows once per simulated day, not per event
				ppd = append(ppd, 0)
			}
			ppd[d] += s.lastPenalty * (end - at).Seconds()
			s.result.PenaltyPerDay = ppd
		}
		at = end
	}
	s.lastAccrueAt = now
}

// settle records the post-mutation penalty level. O(1): the network
// maintains the penalty sum incrementally (no per-event rescan of the
// corrupting-link set).
//
//lint:hotpath runs after every event mutation (BenchmarkSimSettle floor)
func (s *Sim) settle() {
	s.lastPenalty = s.net.PenaltySum()
}

func (s *Sim) onFault(f *faults.Fault, now time.Duration) {
	s.accrue(now)
	defer s.settle()
	s.state.Apply(f)
	// Iterate Effects directly instead of f.Links(): Links() allocates a
	// fresh slice per call, and onFault runs once per trace fault.
	for _, e := range f.Effects {
		l := e.Link
		s.syncRate(l)
		if s.cfg.DetectionDelay > 0 {
			s.clock.After(s.cfg.DetectionDelay, func(at time.Duration) {
				s.accrue(at)
				defer s.settle()
				s.syncRate(l) // the fault may have evolved meanwhile
				s.detect(l, at)
			})
		} else {
			s.detect(l, now)
		}
	}
}

// detect reacts to link l possibly being over the detection threshold.
func (s *Sim) detect(l topology.LinkID, now time.Duration) {
	if s.net.Disabled(l) || s.net.CorruptionRate(l) < s.cfg.DetectionThreshold {
		return
	}
	s.result.CorruptionReports++
	if s.cfg.Dampening != nil {
		s.noteFlap(l, now)
	}
	if s.pol.tryDisable(l) {
		s.result.LinksDisabled++
		s.openTicket(l, now)
	} else {
		s.result.UndisabledEvents++
	}
}

// openTicket books a repair for the (just disabled) link l.
func (s *Sim) openTicket(l topology.LinkID, now time.Duration) {
	if s.ticketed[l] {
		return
	}
	s.ticketed[l] = true
	rec := faults.ActionUnknown
	if s.cfg.Repair == RepairRecommendation && !s.noOptics(l) {
		if d, ok := core.DiagnoseState(s.state, l, s.cfg.DetectionThreshold, s.reseated[l]); ok {
			if s.cfg.UseDeployedEngine {
				rec = core.RecommendDeployed(d)
			} else {
				rec = core.Recommend(d)
			}
		}
	}
	tk, done := s.queue.Open(l, rec, now)
	s.result.TicketsOpened++
	if s.cfg.RepairCollateral {
		// Working on one link of a breakout cable takes its healthy
		// siblings down for the duration of the repair (§8).
		for _, sib := range s.topo.SameBreakout(l) {
			if sib == l || s.net.Disabled(sib) {
				continue
			}
			s.collateral[sib]++
			s.net.Disable(sib)
		}
	}
	s.clock.After(done-now, func(at time.Duration) { s.completeRepair(tk, at) })
}

// releaseCollateral re-enables healthy siblings held down by l's repair.
func (s *Sim) releaseCollateral(l topology.LinkID) {
	if !s.cfg.RepairCollateral {
		return
	}
	for _, sib := range s.topo.SameBreakout(l) {
		if sib == l || s.collateral[sib] == 0 {
			continue
		}
		s.collateral[sib]--
		if s.collateral[sib] == 0 {
			delete(s.collateral, sib)
			s.net.Enable(sib)
		}
	}
}

// completeRepair finishes a repair attempt: decide the action and its
// outcome, update ground truth, re-enable the link, and let the policy
// react to the activation.
func (s *Sim) completeRepair(tk *tickets.Ticket, now time.Duration) {
	s.accrue(now)
	defer s.settle()
	l := tk.Link
	action := faults.ActionUnknown
	switch s.cfg.Repair {
	case RepairFixedAccuracy:
		if s.rng.Bool(s.cfg.FixedAccuracy) {
			s.state.RepairLink(l)
		}
	case RepairRecommendation:
		action = s.tech.ChooseAction(tk, s.primaryCause(l))
		s.applyAction(l, action)
	}
	s.syncRate(l)
	success := s.net.CorruptionRate(l) < s.cfg.DetectionThreshold
	if err := s.queue.Resolve(tk, now, action, success); err != nil {
		panic(err) // tickets are owned solely by the sim; double resolution is a bug
	}
	delete(s.ticketed, l)
	if success {
		delete(s.reseated, l)
	}
	s.releaseCollateral(l)

	if !success {
		if s.cfg.DrainMode {
			// §8 extension: the link was only drained, so test traffic
			// exposes the failed repair without ever putting application
			// traffic back on it — no corruption exposure, straight to
			// the next attempt.
			s.openTicket(l, now)
			return
		}
		// Figure 12's loop: the link corrupts as soon as it is enabled,
		// monitoring re-detects it (after the usual polling latency, with
		// application traffic exposed meanwhile), and a fresh ticket adds
		// two more days.
		s.net.Enable(l)
		if s.cfg.DetectionDelay > 0 {
			s.clock.After(s.cfg.DetectionDelay, func(at time.Duration) {
				s.accrue(at)
				defer s.settle()
				s.syncRate(l)
				s.detect(l, at)
			})
		} else {
			s.detect(l, now)
		}
		return
	}
	if s.cfg.Dampening != nil {
		if until, ok := s.dampUntil[l]; ok && until > now {
			// Flap dampening: the link repaired healthy but crossed the flap
			// threshold recently, so hold it down until the holddown expires
			// instead of re-enabling into the next flap.
			s.result.DampenedHolds++
			s.clock.After(until-now, func(at time.Duration) { s.releaseDampened(l, at) })
			return
		}
	}
	// A real activation: the policy may now disable other corrupting
	// links that previously had to stay up.
	s.net.Enable(l)
	for _, nl := range s.pol.onActivation() {
		s.result.LinksDisabled++
		s.openTicket(nl, now)
	}
}

// noOptics reports whether link l's switches expose no optical power data;
// the assignment is deterministic per link so one switch type covers whole
// regions consistently.
func (s *Sim) noOptics(l topology.LinkID) bool {
	if s.cfg.NoOpticsFraction <= 0 {
		return false
	}
	// Deterministic hash of (seed, link) into [0,1).
	x := uint64(l)*0x9e3779b97f4a7c15 + s.cfg.Seed
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return float64(x%1000)/1000 < s.cfg.NoOpticsFraction
}

// primaryCause returns the root cause of the worst active fault on l, the
// condition a technician physically encounters.
func (s *Sim) primaryCause(l topology.LinkID) faults.RootCause {
	var cause faults.RootCause
	bestRate := -1.0
	for _, f := range s.state.ActiveFaults(l) {
		r := f.PeakRate()
		if r > bestRate {
			bestRate = r
			cause = f.Cause
		}
	}
	return cause
}

// applyAction updates ground truth for a concrete repair action: it fixes
// exactly the faults the action addresses. Replacing a shared component
// repairs the whole fault across links; everything else is link-scoped.
func (s *Sim) applyAction(l topology.LinkID, action faults.RepairAction) {
	if action == faults.ActionReseatTransceiver {
		s.reseated[l] = true
	}
	active := append([]*faults.Fault(nil), s.state.ActiveFaults(l)...)
	for _, f := range active {
		if !tickets.ActionFixesFault(action, f) {
			continue
		}
		if f.Cause == faults.SharedComponent && action == faults.ActionReplaceSharedComponent {
			links := f.Links()
			s.state.Clear(f.ID)
			for _, fl := range links {
				s.syncRate(fl)
			}
		} else {
			s.state.SuppressLinkEffect(f.ID, l)
		}
	}
}

// sample records one output point.
//
//lint:hotpath runs once per sampling interval over the whole trace
func (s *Sim) sample(now time.Duration) {
	s.accrue(now)
	p := s.net.PenaltySum()
	s.lastPenalty = p
	//lint:allow hotalloc Samples is the output series; one append per sample interval
	s.result.Samples = append(s.result.Samples, Sample{
		At:               now,
		Penalty:          p,
		WorstToRFraction: s.net.WorstToRFraction(),
		MeanToRFraction:  s.net.MeanToRFraction(),
		ActiveCorrupting: s.net.NumActiveCorrupting(s.cfg.DetectionThreshold),
		Disabled:         s.net.NumDisabled(),
	})
}
