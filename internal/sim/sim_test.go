package sim

import (
	"testing"
	"time"

	"corropt/internal/core"
	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

func simTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 4, ToRsPerPod: 8, AggsPerPod: 4, Spines: 16, SpineUplinksPerAgg: 8, BreakoutSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func simTech() optics.Technology {
	return optics.Technology{Name: "t", NominalTx: 0, TxThreshold: -4, RxThreshold: -10, PathLoss: 3}
}

func genTrace(t *testing.T, topo *topology.Topology, perLinkPerDay float64, horizon time.Duration, seed uint64) []*faults.Fault {
	t.Helper()
	inj, err := faults.NewInjector(topo, simTech(), faults.InjectorConfig{FaultsPerLinkPerDay: perLinkPerDay}, rngutil.New(seed).Split("trace"))
	if err != nil {
		t.Fatal(err)
	}
	return inj.Generate(horizon)
}

func TestSimBasicRun(t *testing.T) {
	topo := simTopo(t)
	horizon := 30 * 24 * time.Hour
	trace := genTrace(t, topo, 0.005, horizon, 1)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	s, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptionReports == 0 {
		t.Fatal("no corruption detected over a month")
	}
	if res.TicketsOpened == 0 {
		t.Fatal("no tickets opened")
	}
	if len(res.Samples) < 24*30 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	if res.IntegratedPenalty < 0 {
		t.Fatal("negative integrated penalty")
	}
	// The capacity constraint must hold at every sample.
	for _, smp := range res.Samples {
		if smp.WorstToRFraction < 0.75 {
			t.Fatalf("constraint violated at %v: %v", smp.At, smp.WorstToRFraction)
		}
	}
}

func TestPolicyNoneNeverDisables(t *testing.T) {
	topo := simTopo(t)
	horizon := 14 * 24 * time.Hour
	trace := genTrace(t, topo, 0.005, horizon, 3)
	s, err := New(topo, simTech(), Config{Policy: PolicyNone, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinksDisabled != 0 || res.TicketsOpened != 0 {
		t.Fatalf("do-nothing policy acted: %+v", res)
	}
	if res.UndisabledEvents != res.CorruptionReports {
		t.Fatalf("undisabled %d != reports %d", res.UndisabledEvents, res.CorruptionReports)
	}
}

func TestCorrOptBeatsSwitchLocal(t *testing.T) {
	// The headline result (Figure 14/17): at a 75% capacity constraint
	// CorrOpt's integrated penalty is far below switch-local's.
	topo := simTopo(t)
	horizon := 60 * 24 * time.Hour
	trace := genTrace(t, topo, 0.01, horizon, 5)

	run := func(p PolicyKind) *Result {
		s, err := New(topo, simTech(), Config{Policy: p, Capacity: 0.75, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(trace, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	co := run(PolicyCorrOpt)
	sl := run(PolicySwitchLocal)
	none := run(PolicyNone)

	if co.IntegratedPenalty >= sl.IntegratedPenalty {
		t.Fatalf("CorrOpt penalty %v ≥ switch-local %v", co.IntegratedPenalty, sl.IntegratedPenalty)
	}
	if sl.IntegratedPenalty >= none.IntegratedPenalty {
		t.Fatalf("switch-local penalty %v ≥ do-nothing %v", sl.IntegratedPenalty, none.IntegratedPenalty)
	}
	// The gap should be large — the paper reports orders of magnitude.
	if co.IntegratedPenalty*5 > sl.IntegratedPenalty {
		t.Fatalf("CorrOpt %v vs switch-local %v: gap too small", co.IntegratedPenalty, sl.IntegratedPenalty)
	}
}

func TestLaxConstraintEqualizesPolicies(t *testing.T) {
	// Figure 17: at c=25% both methods disable almost everything and the
	// penalty ratio approaches 1.
	topo := simTopo(t)
	horizon := 30 * 24 * time.Hour
	trace := genTrace(t, topo, 0.005, horizon, 7)

	run := func(p PolicyKind) float64 {
		s, err := New(topo, simTech(), Config{Policy: p, Capacity: 0.25, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(trace, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return res.IntegratedPenalty
	}
	co := run(PolicyCorrOpt)
	sl := run(PolicySwitchLocal)
	if sl == 0 && co == 0 {
		return // both perfect
	}
	ratio := co / sl
	if ratio > 1.2 {
		t.Fatalf("at a lax constraint CorrOpt/switch-local penalty ratio = %v, want ≈1 or better", ratio)
	}
}

func TestRepairAccuracyAffectsPenalty(t *testing.T) {
	// Figure 19: better repair accuracy (80% vs 50%) lowers losses.
	topo := simTopo(t)
	horizon := 60 * 24 * time.Hour
	trace := genTrace(t, topo, 0.01, horizon, 9)

	run := func(acc float64) *Result {
		s, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, Capacity: 0.75, FixedAccuracy: acc, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(trace, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	good := run(0.8)
	bad := run(0.5)
	if got := good.FirstAttemptSuccessRate; got < 0.65 || got > 0.95 {
		t.Fatalf("first-attempt success at 0.8 accuracy = %v", got)
	}
	if got := bad.FirstAttemptSuccessRate; got < 0.35 || got > 0.65 {
		t.Fatalf("first-attempt success at 0.5 accuracy = %v", got)
	}
	if bad.MeanAttempts <= good.MeanAttempts {
		t.Fatalf("mean attempts: bad %v ≤ good %v", bad.MeanAttempts, good.MeanAttempts)
	}
}

func TestRecommendationRepairMode(t *testing.T) {
	// §7.2's loop end to end: the engine's recommendations, when always
	// followed, should repair ≈80% of links on the first attempt.
	topo := simTopo(t)
	horizon := 90 * 24 * time.Hour
	trace := genTrace(t, topo, 0.01, horizon, 11)

	s, err := New(topo, simTech(), Config{
		Policy:     PolicyCorrOpt,
		Capacity:   0.5,
		Repair:     RepairRecommendation,
		IgnoreProb: 0,
		Seed:       12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.TicketsOpened < 30 {
		t.Fatalf("too few tickets to judge: %d", res.TicketsOpened)
	}
	if got := res.FirstAttemptSuccessRate; got < 0.65 {
		t.Fatalf("recommendation-driven first-attempt success = %v, want ≳0.8", got)
	}
}

func TestRecommendationIgnoredLowersAccuracy(t *testing.T) {
	topo := simTopo(t)
	horizon := 90 * 24 * time.Hour
	trace := genTrace(t, topo, 0.01, horizon, 13)

	run := func(follow float64) float64 {
		s, err := New(topo, simTech(), Config{
			Policy:     PolicyCorrOpt,
			Capacity:   0.5,
			Repair:     RepairRecommendation,
			IgnoreProb: 1 - follow,
			Seed:       14,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(trace, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return res.FirstAttemptSuccessRate
	}
	followed := run(1.0)
	ignored := run(0.0)
	if ignored >= followed {
		t.Fatalf("ignoring recommendations should hurt: followed %v, ignored %v", followed, ignored)
	}
}

func TestFastOnlyBetween(t *testing.T) {
	// Figure 18: the optimizer only helps on top of the fast checker
	// occasionally, so fast-only should sit between switch-local and full
	// CorrOpt (or tie CorrOpt).
	topo := simTopo(t)
	horizon := 45 * 24 * time.Hour
	trace := genTrace(t, topo, 0.01, horizon, 15)

	run := func(p PolicyKind) float64 {
		s, err := New(topo, simTech(), Config{Policy: p, Capacity: 0.75, Seed: 16})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(trace, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return res.IntegratedPenalty
	}
	fast := run(PolicyFastOnly)
	co := run(PolicyCorrOpt)
	sl := run(PolicySwitchLocal)
	if fast > sl {
		t.Fatalf("fast-only penalty %v worse than switch-local %v", fast, sl)
	}
	if co > fast*1.001 {
		t.Fatalf("full CorrOpt penalty %v worse than fast-only %v", co, fast)
	}
}

func TestTraceMustBeSorted(t *testing.T) {
	topo := simTopo(t)
	s, err := New(topo, simTech(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []*faults.Fault{
		{ID: 1, Start: 10 * time.Hour, Cause: faults.BadTransceiver, Effects: []faults.LinkEffect{{Link: 0, DirectRate: [2]float64{0.01, 0}}}},
		{ID: 2, Start: 5 * time.Hour, Cause: faults.BadTransceiver, Effects: []faults.LinkEffect{{Link: 1, DirectRate: [2]float64{0.01, 0}}}},
	}
	// Unsorted traces are fine for scheduling (events are placed by
	// absolute time), so this must NOT fail...
	if _, err := s.Run(bad, 20*time.Hour); err != nil {
		t.Fatalf("unsorted trace rejected: %v", err)
	}
}

func TestPenaltyDropsAfterRepair(t *testing.T) {
	topo := simTopo(t)
	// One severe fault at t=0; CorrOpt disables it immediately, repair
	// completes at 48h with perfect accuracy.
	trace := []*faults.Fault{{
		ID: 1, Start: 0, Cause: faults.BadTransceiver,
		Effects: []faults.LinkEffect{{Link: 5, DirectRate: [2]float64{0.01, 0}}},
	}}
	s, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, FixedAccuracy: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, 96*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Penalty must be zero throughout: the link was disabled instantly.
	for _, smp := range res.Samples {
		if smp.Penalty != 0 {
			t.Fatalf("penalty %v at %v despite instant disable", smp.Penalty, smp.At)
		}
	}
	if res.TicketsOpened != 1 || res.LinksDisabled != 1 {
		t.Fatalf("bookkeeping: %+v", res)
	}
	// After 48h the link is repaired and enabled.
	if s.Network().Disabled(5) {
		t.Fatal("link still disabled after repair")
	}
	if s.State().NumActiveFaults() != 0 {
		t.Fatal("fault survived a perfect repair")
	}
}

func TestFailedRepairAddsAttempts(t *testing.T) {
	topo := simTopo(t)
	trace := []*faults.Fault{{
		ID: 1, Start: 0, Cause: faults.BadTransceiver,
		Effects: []faults.LinkEffect{{Link: 5, DirectRate: [2]float64{0.01, 0}}},
	}}
	// Accuracy 0: repairs never succeed; every 48h a new attempt.
	s, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, FixedAccuracy: 1e-12, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, 10*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.TicketsOpened < 4 {
		t.Fatalf("tickets = %d, want ≥ 4 over 10 days of failing repairs", res.TicketsOpened)
	}
	if res.FirstAttemptSuccessRate != 0 {
		t.Fatalf("first-attempt success = %v with hopeless repairs", res.FirstAttemptSuccessRate)
	}
}

func TestPolicyKindString(t *testing.T) {
	for _, p := range []PolicyKind{PolicyNone, PolicySwitchLocal, PolicyFastOnly, PolicyCorrOpt} {
		if p.String() == "" {
			t.Fatalf("policy %d has no name", int(p))
		}
	}
}

func TestOptimizerDisablesMoreOverTime(t *testing.T) {
	// Construct a scenario where the optimizer's activation hook matters:
	// a ToR with constraint leaving room for one disabled uplink; two
	// corrupting uplinks arrive; the second can only be disabled after
	// the first is repaired.
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 1, ToRsPerPod: 1, AggsPerPod: 2, Spines: 2, SpineUplinksPerAgg: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tor := topo.ToRs()[0]
	l1 := topo.Switch(tor).Uplinks[0]
	l2 := topo.Switch(tor).Uplinks[1]
	trace := []*faults.Fault{
		{ID: 1, Start: 0, Cause: faults.BadTransceiver,
			Effects: []faults.LinkEffect{{Link: l1, DirectRate: [2]float64{0.01, 0}}}},
		{ID: 2, Start: time.Hour, Cause: faults.BadTransceiver,
			Effects: []faults.LinkEffect{{Link: l2, DirectRate: [2]float64{0.001, 0}}}},
	}
	s, err := New(topo, simTech(), Config{Policy: PolicyCorrOpt, Capacity: 0.5, FixedAccuracy: 1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, 8*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// l1 disabled at t=0; l2 cannot be (would disconnect the ToR) → one
	// undisabled event. At 48h l1 repairs, optimizer disables l2.
	if res.UndisabledEvents == 0 {
		t.Fatal("expected a capacity-blocked corruption event")
	}
	if res.TicketsOpened != 2 {
		t.Fatalf("tickets = %d, want 2", res.TicketsOpened)
	}
	if s.State().NumActiveFaults() != 0 {
		t.Fatal("both faults should eventually be repaired")
	}
	_ = core.DefaultDetectionThreshold
}

func TestNoOpticsFractionDeterministic(t *testing.T) {
	topo := simTopo(t)
	trace := genTrace(t, topo, 0.02, 30*24*time.Hour, 21)
	run := func() *Result {
		s, err := New(topo, simTech(), Config{
			Policy:           PolicyCorrOpt,
			Capacity:         0.5,
			Repair:           RepairRecommendation,
			NoOpticsFraction: 0.5,
			Seed:             22,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(trace, 30*24*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FirstAttemptSuccessRate != b.FirstAttemptSuccessRate || a.TicketsOpened != b.TicketsOpened {
		t.Fatal("NoOpticsFraction runs not reproducible")
	}
	// Half the links lacking optics should cost accuracy relative to full
	// visibility.
	s2, err := New(topo, simTech(), Config{
		Policy:   PolicyCorrOpt,
		Capacity: 0.5,
		Repair:   RepairRecommendation,
		Seed:     22,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := s2.Run(trace, 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if a.FirstAttemptSuccessRate > full.FirstAttemptSuccessRate {
		t.Fatalf("missing optics should not improve accuracy: %v vs %v",
			a.FirstAttemptSuccessRate, full.FirstAttemptSuccessRate)
	}
}

func TestTechAssignFlowsThrough(t *testing.T) {
	topo := simTopo(t)
	odd := optics.Technology{Name: "odd", NominalTx: 1, TxThreshold: -3, RxThreshold: -12, PathLoss: 2}
	s, err := New(topo, simTech(), Config{
		TechAssign: func(l topology.LinkID) optics.Technology {
			if l%2 == 1 {
				return odd
			}
			return simTech()
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.State().TechOf(1).Name != "odd" || s.State().TechOf(2).Name != simTech().Name {
		t.Fatal("per-link technologies not applied")
	}
}
