package sim

import (
	"math"
	"testing"
	"time"

	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/topology"
)

// TestDrainModeAvoidsReExposure: with DrainMode, a failed repair never puts
// application traffic back on a corrupting link, so the penalty stays zero
// throughout the repair saga (vs the Figure 12 cycle without it).
func TestDrainModeAvoidsReExposure(t *testing.T) {
	topo := simTopo(t)
	mk := func(drain bool) *Result {
		trace := []*faults.Fault{{
			ID: 1, Start: 0, Cause: faults.DamagedFiber,
			Effects: []faults.LinkEffect{{Link: 5, ExtraLossFrom: [2]optics.DB{11, 11}}},
		}}
		s, err := New(topo, simTech(), Config{
			Policy:        PolicyCorrOpt,
			FixedAccuracy: 1e-12, // repairs never succeed
			DrainMode:     drain,
			Seed:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(trace, 12*24*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	drained := mk(true)
	cycled := mk(false)
	if drained.IntegratedPenalty != 0 {
		t.Fatalf("drain mode exposed traffic to corruption: %v", drained.IntegratedPenalty)
	}
	// Without drain mode the enable→corrupt→detect cycle is penalty-free
	// only because detection is instant here; with a detection delay the
	// difference becomes material.
	_ = cycled

	s, err := New(topo, simTech(), Config{
		Policy:         PolicyCorrOpt,
		FixedAccuracy:  1e-12,
		DetectionDelay: 15 * time.Minute,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := []*faults.Fault{{
		ID: 1, Start: 0, Cause: faults.DamagedFiber,
		Effects: []faults.LinkEffect{{Link: 5, ExtraLossFrom: [2]optics.DB{11, 11}}},
	}}
	res, err := s.Run(trace, 12*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntegratedPenalty <= 0 {
		t.Fatal("re-enable cycle with detection delay should expose traffic")
	}
}

// TestDrainModeKeepsRepairLoop: failed repairs still escalate attempts.
func TestDrainModeKeepsRepairLoop(t *testing.T) {
	topo := simTopo(t)
	trace := []*faults.Fault{{
		ID: 1, Start: 0, Cause: faults.BadTransceiver,
		Effects: []faults.LinkEffect{{Link: 2, DirectRate: [2]float64{0.01, 0}}},
	}}
	s, err := New(topo, simTech(), Config{
		Policy:        PolicyCorrOpt,
		FixedAccuracy: 1e-12,
		DrainMode:     true,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, 10*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.TicketsOpened < 4 {
		t.Fatalf("tickets = %d, want repeated attempts under drain mode", res.TicketsOpened)
	}
	// The link is drained once, not repeatedly "disabled".
	if res.LinksDisabled != 1 {
		t.Fatalf("links disabled = %d, want 1", res.LinksDisabled)
	}
}

// TestRepairCollateral: repairing one link of a breakout cable takes its
// healthy siblings down for the service window and restores them after.
func TestRepairCollateral(t *testing.T) {
	topo := simTopo(t) // built with BreakoutSize 4
	var link topology.LinkID = -1
	topo.Links(func(l *topology.Link) {
		if link < 0 && l.BreakoutGroup >= 0 {
			link = l.ID
		}
	})
	if link < 0 {
		t.Fatal("no breakout links in test topology")
	}
	siblings := topo.SameBreakout(link)
	if len(siblings) < 2 {
		t.Fatal("test needs a breakout group")
	}

	trace := []*faults.Fault{{
		ID: 1, Start: 0, Cause: faults.BadTransceiver,
		Effects: []faults.LinkEffect{{Link: link, DirectRate: [2]float64{0.01, 0}}},
	}}
	s, err := New(topo, simTech(), Config{
		Policy:           PolicyCorrOpt,
		Capacity:         0.25, // loose so collateral disabling is allowed
		FixedAccuracy:    1,
		RepairCollateral: true,
		SampleInterval:   time.Hour,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, 5*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// During the 48h repair, the whole breakout group is down.
	sawGroupDown := false
	for _, smp := range res.Samples {
		if smp.At > time.Hour && smp.At < 47*time.Hour && smp.Disabled >= len(siblings) {
			sawGroupDown = true
		}
	}
	if !sawGroupDown {
		t.Fatal("healthy siblings were not taken down during the repair")
	}
	// After the repair everything is back up.
	last := res.Samples[len(res.Samples)-1]
	if last.Disabled != 0 {
		t.Fatalf("links still down after repair: %d", last.Disabled)
	}
	if s.State().NumActiveFaults() != 0 {
		t.Fatal("fault not repaired")
	}
}

// TestCollateralOverlappingRepairs: two tickets in the same breakout group
// must not re-enable siblings while either repair is still running.
func TestCollateralOverlappingRepairs(t *testing.T) {
	topo := simTopo(t)
	var group []topology.LinkID
	topo.Links(func(l *topology.Link) {
		if group == nil && l.BreakoutGroup >= 0 {
			g := topo.SameBreakout(l.ID)
			if len(g) >= 3 {
				group = g
			}
		}
	})
	if group == nil {
		t.Skip("no breakout group of size >= 3")
	}
	trace := []*faults.Fault{
		{ID: 1, Start: 0, Cause: faults.BadTransceiver,
			Effects: []faults.LinkEffect{{Link: group[0], DirectRate: [2]float64{0.01, 0}}}},
		{ID: 2, Start: 24 * time.Hour, Cause: faults.BadTransceiver,
			Effects: []faults.LinkEffect{{Link: group[1], DirectRate: [2]float64{0.01, 0}}}},
	}
	s, err := New(topo, simTech(), Config{
		Policy:           PolicyCorrOpt,
		Capacity:         0.25,
		FixedAccuracy:    1,
		RepairCollateral: true,
		Seed:             6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, 8*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// First repair finishes at 48h while the second (started 24h) still
	// runs: the shared sibling must stay down at, say, hour 60.
	for _, smp := range res.Samples {
		if smp.At == 60*time.Hour && smp.Disabled < 2 {
			t.Fatalf("overlapping repairs released collateral early: %d down at 60h", smp.Disabled)
		}
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Disabled != 0 {
		t.Fatalf("links still down at the end: %d", last.Disabled)
	}
}

// TestPenaltyIntegralExact: the event-driven integral accounts for
// exposure windows shorter than the sampling interval exactly — one fault
// at a known rate, detected after a known delay, disabled instantly.
func TestPenaltyIntegralExact(t *testing.T) {
	topo := simTopo(t)
	const rate = 0.01
	delay := 15 * time.Minute
	trace := []*faults.Fault{{
		ID: 1, Start: 3 * time.Hour, Cause: faults.BadTransceiver,
		Effects: []faults.LinkEffect{{Link: 5, DirectRate: [2]float64{rate, 0}}},
	}}
	s, err := New(topo, simTech(), Config{
		Policy:         PolicyCorrOpt,
		FixedAccuracy:  1,
		DetectionDelay: delay,
		SampleInterval: 6 * time.Hour, // far coarser than the exposure
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	want := rate * delay.Seconds()
	if res.IntegratedPenalty < want*0.999 || res.IntegratedPenalty > want*1.001 {
		t.Fatalf("integral = %v, want exactly %v (rate x delay)", res.IntegratedPenalty, want)
	}
	// The day-bucketed view carries the same total.
	sum := 0.0
	for _, v := range res.PenaltyPerDay {
		sum += v
	}
	if sum < want*0.999 || sum > want*1.001 {
		t.Fatalf("per-day sum = %v, want %v", sum, want)
	}
}

// TestPenaltyIntegralSplitsDays: an exposure straddling midnight lands in
// both day buckets proportionally.
func TestPenaltyIntegralSplitsDays(t *testing.T) {
	topo := simTopo(t)
	const rate = 0.01
	trace := []*faults.Fault{{
		// Starts 10 minutes before midnight; detected 15 minutes later.
		ID: 1, Start: 24*time.Hour - 10*time.Minute, Cause: faults.BadTransceiver,
		Effects: []faults.LinkEffect{{Link: 5, DirectRate: [2]float64{rate, 0}}},
	}}
	s, err := New(topo, simTech(), Config{
		Policy:         PolicyCorrOpt,
		FixedAccuracy:  1,
		DetectionDelay: 15 * time.Minute,
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace, 48*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PenaltyPerDay) < 2 {
		t.Fatalf("day buckets: %v", res.PenaltyPerDay)
	}
	d0 := rate * (10 * time.Minute).Seconds()
	d1 := rate * (5 * time.Minute).Seconds()
	if math.Abs(res.PenaltyPerDay[0]-d0) > d0*0.001 {
		t.Fatalf("day 0 = %v, want %v", res.PenaltyPerDay[0], d0)
	}
	if math.Abs(res.PenaltyPerDay[1]-d1) > d1*0.001 {
		t.Fatalf("day 1 = %v, want %v", res.PenaltyPerDay[1], d1)
	}
}
