package ctlplane

import (
	"errors"
	"fmt"
	"net"
	"time"

	"corropt/internal/backoff"
	"corropt/internal/rngutil"
	"corropt/internal/simclock"
	"corropt/internal/topology"
)

// Timeout sentinels; wrap the underlying net error and are distinguishable
// via errors.Is so callers can tell which phase of an exchange starved.
var (
	// ErrWriteTimeout marks a request that could not be written before the
	// write-phase deadline.
	ErrWriteTimeout = errors.New("ctlplane: write timeout")
	// ErrReadTimeout marks a response that did not arrive before the
	// read-phase deadline.
	ErrReadTimeout = errors.New("ctlplane: read timeout")
	// ErrRetriesExhausted marks an exchange abandoned after the retry
	// policy's attempts (or budget) ran out; it wraps the last transport
	// error.
	ErrRetriesExhausted = errors.New("ctlplane: retries exhausted")
)

// DialFunc is the injectable transport hook: chaos harnesses substitute a
// netchaos-wrapped dialer, production uses net.Dial.
type DialFunc func(network, address string) (net.Conn, error)

// ClientConfig parameterizes a hardened Client. The zero value behaves
// like the legacy client: 5s per-phase deadlines, system clock, net.Dial,
// single attempt, no agent identity.
type ClientConfig struct {
	// WriteTimeout and ReadTimeout are the per-phase deadlines; each phase
	// gets its own deadline measured from its own start, so a slow write
	// no longer eats the read budget. Zero falls back to Timeout.
	WriteTimeout time.Duration
	ReadTimeout  time.Duration
	// Timeout is the legacy per-phase default when the per-phase fields
	// are zero (default 5s).
	Timeout time.Duration
	// Clock supplies deadline and budget reads; default simclock.Real.
	Clock simclock.WallClock
	// Dial opens (and re-opens) the controller connection; default
	// net.Dial. Chaos tests inject a netchaos wrapper here.
	Dial DialFunc
	// Retry is the reconnect/retry policy for transport failures; the zero
	// value means a single attempt (legacy behavior). Retries re-dial and
	// re-send the same sequence number, which the controller dedupes.
	Retry backoff.Policy
	// RNG jitters the retry schedule; default a fixed-seed substream (the
	// schedule stays deterministic unless the caller injects entropy).
	RNG *rngutil.Source
	// AgentID names this client to the controller, enabling idempotent
	// replay and liveness tracking. Empty disables both.
	AgentID string
	// Sleep pauses between retries; default time.Sleep. Virtual-time
	// harnesses inject a no-op or clock-advancing hook.
	Sleep func(time.Duration)
}

func (cfg ClientConfig) normalized() ClientConfig {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = cfg.Timeout
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = cfg.Timeout
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Dial == nil {
		cfg.Dial = net.Dial
	}
	if cfg.Retry.MaxAttempts <= 0 {
		// Legacy default: one attempt, no reconnect dance.
		cfg.Retry.MaxAttempts = 1
	}
	cfg.Retry = cfg.Retry.Normalized()
	if cfg.RNG == nil {
		cfg.RNG = rngutil.New(1).Split("ctlplane-retry")
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return cfg
}

// Client is a switch agent's connection to the CorrOpt controller. Calls
// are synchronous request/response; a Client is safe for sequential use
// only (agents report events one at a time). On transport failure the
// client re-dials with jittered exponential backoff and replays the same
// sequence-numbered request, which the controller answers idempotently.
type Client struct {
	addr string
	cfg  ClientConfig
	conn net.Conn
	seq  uint64
}

// Dial connects to the controller at addr with a per-phase deadline
// (default 5s when zero), reading deadlines from the system clock. Legacy
// single-attempt semantics; use DialConfig for the hardened client.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialConfig(addr, ClientConfig{Timeout: timeout})
}

// DialClock is Dial with an injected wall clock, for harnesses that replay
// the control plane against virtual time.
func DialClock(addr string, timeout time.Duration, clock simclock.WallClock) (*Client, error) {
	return DialConfig(addr, ClientConfig{Timeout: timeout, Clock: clock})
}

// DialConfig connects a configured client; the initial dial is eager so
// address errors surface immediately, reconnects are lazy.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg = cfg.normalized()
	conn, err := cfg.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: dial: %w", err)
	}
	return &Client{addr: addr, cfg: cfg, conn: conn}, nil
}

// Close tears the connection down.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// dropConn discards a connection known (or suspected) broken.
func (c *Client) dropConn() {
	if c.conn != nil {
		_ = c.conn.Close() // already failing; the transport error is the one reported
		c.conn = nil
	}
}

// exchange performs one write+read attempt with per-phase deadlines.
func (c *Client) exchange(req *Envelope) (*Envelope, error) {
	if c.conn == nil {
		conn, err := c.cfg.Dial("tcp", c.addr)
		if err != nil {
			return nil, fmt.Errorf("ctlplane: redial: %w", err)
		}
		c.conn = conn
	}
	if err := c.conn.SetWriteDeadline(c.cfg.Clock.Now().Add(c.cfg.WriteTimeout)); err != nil {
		return nil, fmt.Errorf("ctlplane: set write deadline: %w", err)
	}
	if err := WriteMsg(c.conn, req); err != nil {
		return nil, phaseErr("write request", ErrWriteTimeout, err)
	}
	if err := c.conn.SetReadDeadline(c.cfg.Clock.Now().Add(c.cfg.ReadTimeout)); err != nil {
		return nil, fmt.Errorf("ctlplane: set read deadline: %w", err)
	}
	resp, err := ReadMsg(c.conn)
	if err != nil {
		return nil, phaseErr("read response", ErrReadTimeout, err)
	}
	if req.Seq != 0 && resp.Seq != 0 && resp.Seq != req.Seq {
		return nil, fmt.Errorf("ctlplane: response seq %d does not match request seq %d", resp.Seq, req.Seq)
	}
	return resp, nil
}

// phaseErr wraps a transport error with its phase; timeouts additionally
// wrap the per-phase sentinel so errors.Is can tell the phases apart.
func phaseErr(phase string, sentinel error, err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("ctlplane: %s: %w: %w", phase, sentinel, err)
	}
	return fmt.Errorf("ctlplane: %s: %w", phase, err)
}

func (c *Client) roundTrip(req *Envelope) (*Envelope, error) {
	c.seq++
	req.Seq = c.seq
	req.Agent = c.cfg.AgentID
	p := c.cfg.Retry
	start := c.cfg.Clock.Now()
	var lastErr error
	for attempt := 0; !p.Exhausted(attempt); attempt++ {
		if attempt > 0 {
			c.cfg.Sleep(p.Delay(attempt-1, c.cfg.RNG))
		}
		if p.Budget > 0 && c.cfg.Clock.Now().Sub(start) > p.Budget {
			break
		}
		resp, err := c.exchange(req)
		if err == nil {
			if resp.Type == TypeError {
				// A semantic refusal from the controller: the transport is
				// healthy, so surface it without burning retries.
				return nil, fmt.Errorf("ctlplane: controller error: %s", resp.Error)
			}
			return resp, nil
		}
		lastErr = err
		c.dropConn()
	}
	if lastErr == nil {
		lastErr = errors.New("retry budget exhausted before first attempt")
	}
	return nil, fmt.Errorf("%w: %w", ErrRetriesExhausted, lastErr)
}

// Report announces corruption on a link and returns the controller's
// decision.
func (c *Client) Report(link topology.LinkID, rate float64) (*Decision, error) {
	resp, err := c.roundTrip(&Envelope{Type: TypeReport, Report: &Report{Link: link, Rate: rate}})
	if err != nil {
		return nil, err
	}
	if resp.Type != TypeDecision || resp.Decision == nil {
		return nil, fmt.Errorf("ctlplane: unexpected reply %q to report", resp.Type)
	}
	return resp.Decision, nil
}

// Activate announces a repaired link and returns the links the optimizer
// disabled in response.
func (c *Client) Activate(link topology.LinkID) ([]topology.LinkID, error) {
	resp, err := c.roundTrip(&Envelope{Type: TypeActivate, Activate: &Activate{Link: link}})
	if err != nil {
		return nil, err
	}
	if resp.Type != TypeActivateResult || resp.ActivateResult == nil {
		return nil, fmt.Errorf("ctlplane: unexpected reply %q to activate", resp.Type)
	}
	return resp.ActivateResult.Disabled, nil
}

// Status fetches the controller's state summary.
func (c *Client) Status() (*StatusResult, error) {
	resp, err := c.roundTrip(&Envelope{Type: TypeStatus})
	if err != nil {
		return nil, err
	}
	if resp.Type != TypeStatusResult || resp.Status == nil {
		return nil, fmt.Errorf("ctlplane: unexpected reply %q to status", resp.Type)
	}
	return resp.Status, nil
}
