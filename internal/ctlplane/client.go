package ctlplane

import (
	"fmt"
	"net"
	"time"

	"corropt/internal/simclock"
	"corropt/internal/topology"
)

// Client is a switch agent's connection to the CorrOpt controller. Calls
// are synchronous request/response; a Client is safe for sequential use
// only (agents report events one at a time).
type Client struct {
	conn    net.Conn
	timeout time.Duration
	clock   simclock.WallClock
}

// Dial connects to the controller at addr with a per-call deadline
// (default 5s when zero), reading deadlines from the system clock.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialClock(addr, timeout, simclock.Real{})
}

// DialClock is Dial with an injected wall clock, for harnesses that replay
// the control plane against virtual time.
func DialClock(addr string, timeout time.Duration, clock simclock.WallClock) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: dial: %w", err)
	}
	return &Client{conn: conn, timeout: timeout, clock: clock}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *Envelope) (*Envelope, error) {
	if err := c.conn.SetDeadline(c.clock.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	if err := WriteMsg(c.conn, req); err != nil {
		return nil, err
	}
	resp, err := ReadMsg(c.conn)
	if err != nil {
		return nil, err
	}
	if resp.Type == TypeError {
		return nil, fmt.Errorf("ctlplane: controller error: %s", resp.Error)
	}
	return resp, nil
}

// Report announces corruption on a link and returns the controller's
// decision.
func (c *Client) Report(link topology.LinkID, rate float64) (*Decision, error) {
	resp, err := c.roundTrip(&Envelope{Type: TypeReport, Report: &Report{Link: link, Rate: rate}})
	if err != nil {
		return nil, err
	}
	if resp.Type != TypeDecision || resp.Decision == nil {
		return nil, fmt.Errorf("ctlplane: unexpected reply %q to report", resp.Type)
	}
	return resp.Decision, nil
}

// Activate announces a repaired link and returns the links the optimizer
// disabled in response.
func (c *Client) Activate(link topology.LinkID) ([]topology.LinkID, error) {
	resp, err := c.roundTrip(&Envelope{Type: TypeActivate, Activate: &Activate{Link: link}})
	if err != nil {
		return nil, err
	}
	if resp.Type != TypeActivateResult || resp.ActivateResult == nil {
		return nil, fmt.Errorf("ctlplane: unexpected reply %q to activate", resp.Type)
	}
	return resp.ActivateResult.Disabled, nil
}

// Status fetches the controller's state summary.
func (c *Client) Status() (*StatusResult, error) {
	resp, err := c.roundTrip(&Envelope{Type: TypeStatus})
	if err != nil {
		return nil, err
	}
	if resp.Type != TypeStatusResult || resp.Status == nil {
		return nil, fmt.Errorf("ctlplane: unexpected reply %q to status", resp.Type)
	}
	return resp.Status, nil
}
