// Package ctlplane implements the control-plane protocol of Figure 13:
// switches (or the monitoring system acting on their behalf) report packet
// corruption to the CorrOpt controller over TCP; the controller answers
// each report with a disable/keep decision from the fast checker, and
// reacts to link-activation notifications by running the optimizer.
//
// Framing is a 4-byte big-endian length followed by one JSON-encoded
// message; message bodies are small and infrequent (corruption events, not
// packets), so readability wins over compactness here.
package ctlplane

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"corropt/internal/topology"
)

// MaxFrame bounds one frame to keep a misbehaving peer from ballooning
// memory.
const MaxFrame = 1 << 20

// MsgType discriminates protocol messages.
type MsgType string

const (
	// TypeReport is agent→controller: a link is corrupting.
	TypeReport MsgType = "report"
	// TypeDecision is controller→agent: the disable/keep answer.
	TypeDecision MsgType = "decision"
	// TypeActivate is agent→controller: a repaired link came back.
	TypeActivate MsgType = "activate"
	// TypeActivateResult is controller→agent: links newly disabled by the
	// optimizer in response.
	TypeActivateResult MsgType = "activate-result"
	// TypeStatus is agent→controller: request a state summary.
	TypeStatus MsgType = "status"
	// TypeStatusResult carries the summary.
	TypeStatusResult MsgType = "status-result"
	// TypeError reports a request the controller could not serve.
	TypeError MsgType = "error"
)

// Envelope is the frame body: a type tag plus one non-nil payload field.
type Envelope struct {
	Type MsgType `json:"type"`

	Report         *Report         `json:"report,omitempty"`
	Decision       *Decision       `json:"decision,omitempty"`
	Activate       *Activate       `json:"activate,omitempty"`
	ActivateResult *ActivateResult `json:"activate_result,omitempty"`
	Status         *StatusResult   `json:"status,omitempty"`
	Error          string          `json:"error,omitempty"`
}

// Report announces corruption on a link.
type Report struct {
	Link topology.LinkID `json:"link"`
	// Rate is the worst-direction corruption loss rate.
	Rate float64 `json:"rate"`
}

// Decision is the controller's reply to a Report.
type Decision struct {
	Link     topology.LinkID `json:"link"`
	Disabled bool            `json:"disabled"`
	Reason   string          `json:"reason,omitempty"`
	// Recommendation is the suggested repair for the ticket, when the
	// link was disabled; free-form action name.
	Recommendation string `json:"recommendation,omitempty"`
}

// Activate announces a repaired link being brought back.
type Activate struct {
	Link topology.LinkID `json:"link"`
}

// ActivateResult lists the links the optimizer disabled in response.
type ActivateResult struct {
	Disabled []topology.LinkID `json:"disabled"`
}

// StatusResult summarizes the controller's view.
type StatusResult struct {
	Links            int     `json:"links"`
	Disabled         int     `json:"disabled"`
	ActiveCorrupting int     `json:"active_corrupting"`
	WorstToRFraction float64 `json:"worst_tor_fraction"`
	TotalPenalty     float64 `json:"total_penalty"`
}

// WriteMsg frames and writes one envelope.
func WriteMsg(w io.Writer, e *Envelope) error {
	body, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ctlplane: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("ctlplane: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMsg reads one framed envelope.
func ReadMsg(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("ctlplane: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var e Envelope
	if err := json.Unmarshal(body, &e); err != nil {
		return nil, fmt.Errorf("ctlplane: unmarshal: %w", err)
	}
	return &e, nil
}
