// Package ctlplane implements the control-plane protocol of Figure 13:
// switches (or the monitoring system acting on their behalf) report packet
// corruption to the CorrOpt controller over TCP; the controller answers
// each report with a disable/keep decision from the fast checker, and
// reacts to link-activation notifications by running the optimizer.
//
// Framing is a 4-byte big-endian length, a 4-byte CRC-32C of the body,
// then one JSON-encoded message; message bodies are small and infrequent
// (corruption events, not packets), so readability wins over compactness
// here. The checksum exists because this control traffic crosses the same
// corrupting network the protocol manages (§5–§6): a frame that survives a
// bit-flip must be rejected loudly (the client retries), never silently
// misparsed into a wrong rate or link id.
package ctlplane

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"corropt/internal/topology"
)

// MaxFrame bounds one frame to keep a misbehaving peer from ballooning
// memory.
const MaxFrame = 1 << 20

// frameHeaderLen is the length prefix plus the body checksum.
const frameHeaderLen = 8

// ErrChecksum reports a frame whose body does not match its CRC-32C — the
// signature of in-flight corruption. Distinguish with errors.Is.
var ErrChecksum = errors.New("ctlplane: frame checksum mismatch")

// crcTable is the Castagnoli polynomial, the same one iSCSI and ext4 use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// MsgType discriminates protocol messages.
type MsgType string

const (
	// TypeReport is agent→controller: a link is corrupting.
	TypeReport MsgType = "report"
	// TypeDecision is controller→agent: the disable/keep answer.
	TypeDecision MsgType = "decision"
	// TypeActivate is agent→controller: a repaired link came back.
	TypeActivate MsgType = "activate"
	// TypeActivateResult is controller→agent: links newly disabled by the
	// optimizer in response.
	TypeActivateResult MsgType = "activate-result"
	// TypeStatus is agent→controller: request a state summary.
	TypeStatus MsgType = "status"
	// TypeStatusResult carries the summary.
	TypeStatusResult MsgType = "status-result"
	// TypeError reports a request the controller could not serve.
	TypeError MsgType = "error"
)

// Envelope is the frame body: a type tag plus one non-nil payload field.
// Agent and Seq, when set, make requests idempotent: the controller caches
// the reply per (agent, seq) and replays it verbatim when a reconnecting
// client retries a request whose response was lost, instead of re-running
// side effects like the optimizer.
type Envelope struct {
	Type MsgType `json:"type"`

	// Agent identifies the reporting client for idempotency and liveness
	// tracking; empty disables both (legacy clients).
	Agent string `json:"agent,omitempty"`
	// Seq is the client's monotonically increasing request number; replies
	// echo it so a client can reject stale responses after a reconnect.
	Seq uint64 `json:"seq,omitempty"`

	Report         *Report         `json:"report,omitempty"`
	Decision       *Decision       `json:"decision,omitempty"`
	Activate       *Activate       `json:"activate,omitempty"`
	ActivateResult *ActivateResult `json:"activate_result,omitempty"`
	Status         *StatusResult   `json:"status,omitempty"`
	Error          string          `json:"error,omitempty"`
}

// Report announces corruption on a link.
type Report struct {
	Link topology.LinkID `json:"link"`
	// Rate is the worst-direction corruption loss rate.
	Rate float64 `json:"rate"`
}

// Decision is the controller's reply to a Report.
type Decision struct {
	Link     topology.LinkID `json:"link"`
	Disabled bool            `json:"disabled"`
	Reason   string          `json:"reason,omitempty"`
	// Recommendation is the suggested repair for the ticket, when the
	// link was disabled; free-form action name.
	Recommendation string `json:"recommendation,omitempty"`
}

// Activate announces a repaired link being brought back.
type Activate struct {
	Link topology.LinkID `json:"link"`
}

// ActivateResult lists the links the optimizer disabled in response.
type ActivateResult struct {
	Disabled []topology.LinkID `json:"disabled"`
}

// StatusResult summarizes the controller's view.
type StatusResult struct {
	Links            int     `json:"links"`
	Disabled         int     `json:"disabled"`
	ActiveCorrupting int     `json:"active_corrupting"`
	WorstToRFraction float64 `json:"worst_tor_fraction"`
	TotalPenalty     float64 `json:"total_penalty"`
	// Agents is the number of live tracked agents; StaleAgents the
	// cumulative count marked stale by liveness sweeps.
	Agents      int `json:"agents,omitempty"`
	StaleAgents int `json:"stale_agents,omitempty"`
}

// WriteMsg frames and writes one envelope.
func WriteMsg(w io.Writer, e *Envelope) error {
	body, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ctlplane: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("ctlplane: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMsg reads one framed envelope, verifying the body checksum.
func ReadMsg(r io.Reader) (*Envelope, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("ctlplane: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if got, want := crc32.Checksum(body, crcTable), binary.BigEndian.Uint32(hdr[4:]); got != want {
		return nil, fmt.Errorf("%w: computed %08x, header says %08x", ErrChecksum, got, want)
	}
	var e Envelope
	if err := json.Unmarshal(body, &e); err != nil {
		return nil, fmt.Errorf("ctlplane: unmarshal: %w", err)
	}
	return &e, nil
}
