package ctlplane

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"corropt/internal/core"
	"corropt/internal/topology"
)

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Spines: 4, SpineUplinksPerAgg: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.NewNetwork(topo, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(net, core.EngineConfig{})
}

func TestFraming(t *testing.T) {
	var buf bytes.Buffer
	in := &Envelope{Type: TypeReport, Report: &Report{Link: 3, Rate: 0.01}}
	if err := WriteMsg(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != TypeReport || out.Report == nil || out.Report.Link != 3 || out.Report.Rate != 0.01 {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestFramingRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMsg(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFramingShortRead(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	if _, err := ReadMsg(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestControllerWorkflow(t *testing.T) {
	// The Figure 13 loop over a real TCP connection: report → decision →
	// activate → optimizer result.
	engine := testEngine(t)
	ctl, err := NewController("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	cli, err := Dial(ctl.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	topo := engine.Network().Topology()
	tor := topo.ToRs()[0]
	l1, l2 := topo.Switch(tor).Uplinks[0], topo.Switch(tor).Uplinks[1]

	d, err := cli.Report(l1, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Disabled {
		t.Fatalf("first report not disabled: %+v", d)
	}

	// Second uplink cannot be disabled at c=0.5.
	d, err = cli.Report(l2, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Disabled {
		t.Fatal("disabling both uplinks should be refused")
	}
	if d.Reason == "" {
		t.Fatal("refusal without reason")
	}

	st, err := cli.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Disabled != 1 || st.ActiveCorrupting != 1 {
		t.Fatalf("status: %+v", st)
	}

	// Repairing l1 should let the optimizer disable l2.
	newly, err := cli.Activate(l1)
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 1 || newly[0] != l2 {
		t.Fatalf("activation disabled %v, want [%d]", newly, l2)
	}

	st, err = cli.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Disabled != 1 || st.ActiveCorrupting != 0 {
		t.Fatalf("status after activation: %+v", st)
	}
}

func TestControllerRejectsUnknownLink(t *testing.T) {
	engine := testEngine(t)
	ctl, err := NewController("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	cli, err := Dial(ctl.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Report(99999, 1e-3); err == nil {
		t.Fatal("unknown link accepted")
	}
	// The connection stays usable after an error reply.
	if _, err := cli.Status(); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestControllerConcurrentClients(t *testing.T) {
	engine := testEngine(t)
	ctl, err := NewController("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	topo := engine.Network().Topology()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := Dial(ctl.Addr().String(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for i := 0; i < 20; i++ {
				l := topology.LinkID((w*20 + i) % topo.NumLinks())
				if _, err := cli.Report(l, 1e-7); err != nil {
					errs <- err
					return
				}
				if _, err := cli.Status(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestControllerCloseUnblocksClients(t *testing.T) {
	engine := testEngine(t)
	ctl, err := NewController("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(ctl.Addr().String(), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := ctl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Status(); err == nil {
		t.Fatal("call succeeded against a closed controller")
	}
	// Double close is a no-op.
	if err := ctl.Close(); err != nil {
		t.Fatal(err)
	}
}
