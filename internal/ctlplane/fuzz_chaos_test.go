package ctlplane

import (
	"bytes"
	"reflect"
	"testing"

	"corropt/internal/netchaos"
	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

// FuzzFaultyFrame round-trips well-formed envelopes through netchaos byte
// mutations (bit flips, truncation, loss) and requires the frame reader to
// either reject the damage or decode the original exactly — never panic,
// never silently misparse a corrupted frame into different content.
func FuzzFaultyFrame(f *testing.F) {
	f.Add(uint32(2), 1e-3, uint64(1))
	f.Add(uint32(9), 0.5, uint64(42))
	f.Add(uint32(0), 0.0, uint64(7))
	f.Fuzz(func(t *testing.T, link uint32, rate float64, seed uint64) {
		orig := &Envelope{
			Type:   TypeReport,
			Agent:  "fuzz-agent",
			Seq:    uint64(link) + 1,
			Report: &Report{Link: topology.LinkID(link), Rate: rate},
		}
		var buf bytes.Buffer
		if err := WriteMsg(&buf, orig); err != nil {
			t.Fatalf("encode: %v", err)
		}
		mut := netchaos.NewMutator(rngutil.New(seed), netchaos.Config{
			Corrupt: 0.5, Truncate: 0.3, Drop: 0.1,
		})
		pkt, kind := mut.Mutate(buf.Bytes())
		if pkt == nil {
			return // lost in flight; the client's retry covers this
		}
		got, err := ReadMsg(bytes.NewReader(pkt))
		if err != nil {
			return // damage rejected loudly — the required behavior
		}
		if !reflect.DeepEqual(got, orig) {
			t.Fatalf("silent misparse after %v fault:\norig: %+v\ngot:  %+v", kind, orig, got)
		}
	})
}
