package ctlplane

import (
	"bytes"
	"testing"
)

// FuzzReadMsg ensures arbitrary byte streams never panic the frame reader,
// and that well-formed envelopes round-trip.
func FuzzReadMsg(f *testing.F) {
	var buf bytes.Buffer
	WriteMsg(&buf, &Envelope{Type: TypeReport, Report: &Report{Link: 2, Rate: 1e-3}})
	f.Add(buf.Bytes())
	var buf2 bytes.Buffer
	WriteMsg(&buf2, &Envelope{Type: TypeActivate, Activate: &Activate{Link: 9}})
	f.Add(buf2.Bytes())
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMsg(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteMsg(&out, msg); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		msg2, err := ReadMsg(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if msg2.Type != msg.Type {
			t.Fatalf("type changed: %q vs %q", msg2.Type, msg.Type)
		}
	})
}
