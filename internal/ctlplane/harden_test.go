package ctlplane

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"corropt/internal/backoff"
	"corropt/internal/netchaos"
	"corropt/internal/rngutil"
	"corropt/internal/simclock"
)

func TestFramingRejectsBitFlip(t *testing.T) {
	var buf bytes.Buffer
	in := &Envelope{Type: TypeReport, Report: &Report{Link: 3, Rate: 0.01}}
	if err := WriteMsg(&buf, in); err != nil {
		t.Fatal(err)
	}
	pkt := buf.Bytes()
	// Flip one bit in the JSON body (past the 8-byte header).
	pkt[frameHeaderLen+2] ^= 0x10
	_, err := ReadMsg(bytes.NewReader(pkt))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("bit-flipped frame: err = %v, want ErrChecksum", err)
	}
}

// stubErr is a net.Error timeout for driving the per-phase sentinels.
type stubErr struct{}

func (stubErr) Error() string   { return "stub timeout" }
func (stubErr) Timeout() bool   { return true }
func (stubErr) Temporary() bool { return true }

// stubConn fails reads and/or writes with configured errors; successful
// writes are discarded, successful reads drain served.
type stubConn struct {
	writeErr error
	readErr  error
	served   bytes.Buffer
}

func (s *stubConn) Write(b []byte) (int, error) {
	if s.writeErr != nil {
		return 0, s.writeErr
	}
	return len(b), nil
}
func (s *stubConn) Read(b []byte) (int, error) {
	if s.readErr != nil {
		return 0, s.readErr
	}
	return s.served.Read(b)
}
func (s *stubConn) Close() error                       { return nil }
func (s *stubConn) LocalAddr() net.Addr                { return nil }
func (s *stubConn) RemoteAddr() net.Addr               { return nil }
func (s *stubConn) SetDeadline(t time.Time) error      { return nil }
func (s *stubConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *stubConn) SetWriteDeadline(t time.Time) error { return nil }

func stubDialer(mk func() net.Conn, dials *int) DialFunc {
	return func(network, address string) (net.Conn, error) {
		*dials++
		return mk(), nil
	}
}

func TestWriteTimeoutSentinel(t *testing.T) {
	var dials int
	cli, err := DialConfig("unused", ClientConfig{
		Dial:  stubDialer(func() net.Conn { return &stubConn{writeErr: stubErr{}} }, &dials),
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Status()
	if !errors.Is(err, ErrWriteTimeout) {
		t.Fatalf("err = %v, want wrapped ErrWriteTimeout", err)
	}
	if errors.Is(err, ErrReadTimeout) {
		t.Fatal("write-phase starvation also matched ErrReadTimeout")
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want wrapped ErrRetriesExhausted", err)
	}
}

func TestReadTimeoutSentinel(t *testing.T) {
	var dials int
	cli, err := DialConfig("unused", ClientConfig{
		Dial:  stubDialer(func() net.Conn { return &stubConn{readErr: stubErr{}} }, &dials),
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Status()
	if !errors.Is(err, ErrReadTimeout) {
		t.Fatalf("err = %v, want wrapped ErrReadTimeout", err)
	}
	if errors.Is(err, ErrWriteTimeout) {
		t.Fatal("read-phase starvation also matched ErrWriteTimeout")
	}
}

func TestRetriesExhaustedCountsAttempts(t *testing.T) {
	var dials int
	cli, err := DialConfig("unused", ClientConfig{
		Dial:  stubDialer(func() net.Conn { return &stubConn{writeErr: stubErr{}} }, &dials),
		Retry: backoff.Policy{MaxAttempts: 3},
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Status(); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	// One eager dial plus one redial per retry after the conn is dropped.
	if dials != 3 {
		t.Fatalf("dialed %d times, want 3 (eager + 2 redials)", dials)
	}
}

func TestClientReconnectsThroughReset(t *testing.T) {
	engine := testEngine(t)
	ctl, err := NewController("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// The first connection is reset mid-stream on its first write; the
	// budget then runs dry, so the client's redial gets a clean path.
	inj := netchaos.New(rngutil.New(3), nil, netchaos.Config{Reset: 1, MaxFaults: 1})
	cli, err := DialConfig(ctl.Addr().String(), ClientConfig{
		Dial:    DialFunc(inj.Dialer(nil)),
		Retry:   backoff.Policy{MaxAttempts: 4},
		AgentID: "reconnector",
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	topo := engine.Network().Topology()
	l := topo.Switch(topo.ToRs()[0]).Uplinks[0]
	d, err := cli.Report(l, 1e-3)
	if err != nil {
		t.Fatalf("report through reset: %v", err)
	}
	if !d.Disabled {
		t.Fatalf("decision = %+v, want disabled", d)
	}
	if s := inj.Stats(); s.Resets != 1 {
		t.Fatalf("stats = %+v, want exactly one injected reset", s)
	}
}

func TestIdempotentReplayDoesNotRerunOptimizer(t *testing.T) {
	engine := testEngine(t)
	ctl, err := NewController("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	topo := engine.Network().Topology()
	tor := topo.ToRs()[0]
	l1, l2 := topo.Switch(tor).Uplinks[0], topo.Switch(tor).Uplinks[1]

	conn, err := net.Dial("tcp", ctl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	exchange := func(e *Envelope) *Envelope {
		t.Helper()
		if err := WriteMsg(conn, e); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadMsg(conn)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Disable l1, get l2 refused at c=0.5, then repair l1: the optimizer
	// disables l2 in response.
	exchange(&Envelope{Type: TypeReport, Agent: "a", Seq: 1, Report: &Report{Link: l1, Rate: 1e-3}})
	exchange(&Envelope{Type: TypeReport, Agent: "a", Seq: 2, Report: &Report{Link: l2, Rate: 1e-2}})
	first := exchange(&Envelope{Type: TypeActivate, Agent: "a", Seq: 3, Activate: &Activate{Link: l1}})
	if first.Type != TypeActivateResult || len(first.ActivateResult.Disabled) != 1 {
		t.Fatalf("activate reply: %+v", first)
	}

	// A retransmitted Activate (same agent, same seq — the reply was
	// "lost") must replay the cached answer, not re-run LinkRepaired.
	replay := exchange(&Envelope{Type: TypeActivate, Agent: "a", Seq: 3, Activate: &Activate{Link: l1}})
	if !reflect.DeepEqual(first, replay) {
		t.Fatalf("replayed reply differs:\nfirst:  %+v\nreplay: %+v", first, replay)
	}
	if replay.Seq != 3 {
		t.Fatalf("replayed seq = %d, want 3", replay.Seq)
	}

	// State is as after a single activation: l2 disabled, l1 active.
	st := exchange(&Envelope{Type: TypeStatus, Agent: "a", Seq: 4})
	if st.Status == nil || st.Status.Disabled != 1 {
		t.Fatalf("status after replay: %+v", st.Status)
	}
}

func TestReplyCacheEviction(t *testing.T) {
	engine := testEngine(t)
	ctl, err := NewController("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// Push more than maxCachedReplies sequence numbers through one agent;
	// the cache must stay bounded and recent seqs must still replay.
	for seq := uint64(1); seq <= maxCachedReplies+8; seq++ {
		reply := ctl.handle(&Envelope{Type: TypeStatus, Agent: "a", Seq: seq})
		if reply.Type != TypeStatusResult {
			t.Fatalf("seq %d: %+v", seq, reply)
		}
	}
	ctl.mu.Lock()
	cached := len(ctl.agents["a"].replies)
	ctl.mu.Unlock()
	if cached != maxCachedReplies {
		t.Fatalf("cache holds %d replies, want %d", cached, maxCachedReplies)
	}
}

func TestSweepStale(t *testing.T) {
	engine := testEngine(t)
	// The epoch is anchored at real now: the controller arms socket
	// deadlines from this clock, and the kernel evaluates them against real
	// time — a zero epoch would make every deadline already expired.
	vc := simclock.Virtual{Clock: simclock.New(), Epoch: time.Now()}
	ctl, err := NewControllerClock("127.0.0.1:0", engine, vc)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	topo := engine.Network().Topology()
	l := topo.Switch(topo.ToRs()[0]).Uplinks[0]
	for _, agent := range []string{"a2", "a1"} {
		cli, err := DialConfig(ctl.Addr().String(), ClientConfig{AgentID: agent})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Report(l, 1e-9); err != nil {
			cli.Close()
			t.Fatal(err)
		}
		cli.Close()
	}
	if live, stale := ctl.AgentStats(); live != 2 || stale != 0 {
		t.Fatalf("AgentStats = (%d, %d), want (2, 0)", live, stale)
	}
	if names := ctl.SweepStale(time.Minute); len(names) != 0 {
		t.Fatalf("premature sweep marked %v stale", names)
	}

	vc.Clock.RunUntil(2 * time.Minute)
	names := ctl.SweepStale(time.Minute)
	if !reflect.DeepEqual(names, []string{"a1", "a2"}) {
		t.Fatalf("stale = %v, want sorted [a1 a2]", names)
	}
	if live, stale := ctl.AgentStats(); live != 0 || stale != 2 {
		t.Fatalf("AgentStats after sweep = (%d, %d), want (0, 2)", live, stale)
	}

	// The counters surface over the protocol.
	cli, err := Dial(ctl.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	st, err := cli.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Agents != 0 || st.StaleAgents != 2 {
		t.Fatalf("status agents = (%d, %d), want (0, 2)", st.Agents, st.StaleAgents)
	}
}

func TestLegacyClientsBypassIdempotency(t *testing.T) {
	engine := testEngine(t)
	ctl, err := NewController("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// No Agent set: nothing is tracked, nothing cached.
	cli, err := Dial(ctl.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Status(); err != nil {
		t.Fatal(err)
	}
	if live, stale := ctl.AgentStats(); live != 0 || stale != 0 {
		t.Fatalf("legacy client tracked: AgentStats = (%d, %d)", live, stale)
	}
}
