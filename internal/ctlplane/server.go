package ctlplane

import (
	"errors"
	"log"
	"net"
	"sync"

	"corropt/internal/core"
)

// Controller serves the CorrOpt control plane over TCP. All decisions run
// against one core.Engine guarded by a mutex: corruption events are rare
// (per §3, a handful of links per data center per day), so a single
// serialized decision path is both simple and far faster than needed.
type Controller struct {
	engine *core.Engine

	mu sync.Mutex // guards engine

	lnMu   sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logger receives connection-level errors; nil silences them.
	Logger *log.Logger
}

// NewController starts a controller for engine on addr (e.g.
// "127.0.0.1:0").
func NewController(addr string, engine *core.Engine) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Controller{engine: engine, ln: ln, conns: make(map[net.Conn]struct{})}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr reports the controller's bound address.
func (c *Controller) Addr() net.Addr { return c.ln.Addr() }

// Close stops the controller and tears down open connections.
func (c *Controller) Close() error {
	c.lnMu.Lock()
	if c.closed {
		c.lnMu.Unlock()
		return nil
	}
	c.closed = true
	err := c.ln.Close()
	for conn := range c.conns {
		_ = conn.Close() // best-effort teardown; the listener error is the one reported
	}
	c.lnMu.Unlock()
	c.wg.Wait()
	return err
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.lnMu.Lock()
		if c.closed {
			c.lnMu.Unlock()
			_ = conn.Close() // racing shutdown; nothing to report the error to
			return
		}
		c.conns[conn] = struct{}{}
		c.lnMu.Unlock()
		c.wg.Add(1)
		go c.serveConn(conn)
	}
}

func (c *Controller) serveConn(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		_ = conn.Close() // connection is done either way; error carries no signal here
		c.lnMu.Lock()
		delete(c.conns, conn)
		c.lnMu.Unlock()
	}()
	for {
		msg, err := ReadMsg(conn)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && c.Logger != nil {
				c.Logger.Printf("ctlplane: connection %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		reply := c.handle(msg)
		if err := WriteMsg(conn, reply); err != nil {
			if c.Logger != nil {
				c.Logger.Printf("ctlplane: write to %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

func (c *Controller) handle(msg *Envelope) *Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	net := c.engine.Network()
	switch msg.Type {
	case TypeReport:
		if msg.Report == nil {
			return errEnvelope("report message without report body")
		}
		r := msg.Report
		if int(r.Link) < 0 || int(r.Link) >= net.Topology().NumLinks() {
			return errEnvelope("unknown link")
		}
		d := c.engine.ReportCorruption(r.Link, r.Rate)
		return &Envelope{Type: TypeDecision, Decision: &Decision{
			Link:     d.Link,
			Disabled: d.Disabled,
			Reason:   d.Reason,
		}}
	case TypeActivate:
		if msg.Activate == nil {
			return errEnvelope("activate message without body")
		}
		a := msg.Activate
		if int(a.Link) < 0 || int(a.Link) >= net.Topology().NumLinks() {
			return errEnvelope("unknown link")
		}
		disabled := c.engine.LinkRepaired(a.Link)
		return &Envelope{Type: TypeActivateResult, ActivateResult: &ActivateResult{Disabled: disabled}}
	case TypeStatus:
		return &Envelope{Type: TypeStatusResult, Status: &StatusResult{
			Links:            net.Topology().NumLinks(),
			Disabled:         net.NumDisabled(),
			ActiveCorrupting: len(net.ActiveCorrupting(c.engine.Threshold())),
			WorstToRFraction: net.WorstToRFraction(),
			TotalPenalty:     net.TotalPenalty(core.LinearPenalty),
		}}
	default:
		return errEnvelope("unknown message type " + string(msg.Type))
	}
}

func errEnvelope(msg string) *Envelope {
	return &Envelope{Type: TypeError, Error: msg}
}
