package ctlplane

import (
	"errors"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"corropt/internal/core"
	"corropt/internal/simclock"
)

// maxCachedReplies bounds the per-agent idempotency cache; retries replay
// recent sequence numbers, so a small FIFO window is plenty.
const maxCachedReplies = 128

// connIdleTimeout bounds how long serveConn waits for an agent's next
// request, and connWriteTimeout how long one reply write may take. Agents
// poll far more often than the idle bound, so only a dead or wedged peer —
// the silent-agent failure mode the liveness sweep exists for — ever trips
// them; without the read deadline a connection whose peer vanished without
// a FIN (the common way a corrupting ToR uplink kills a TCP session) would
// pin its serveConn goroutine forever.
const (
	connIdleTimeout  = 5 * time.Minute
	connWriteTimeout = 30 * time.Second
)

// agentState tracks one reporting agent: when it was last heard from (for
// the liveness sweep) and its recent replies keyed by sequence number (for
// idempotent replay after a reconnect).
type agentState struct {
	lastSeen time.Time
	replies  map[uint64]*Envelope
	order    []uint64 // FIFO eviction order for replies
}

// Controller serves the CorrOpt control plane over TCP. All decisions run
// against one core.Engine guarded by a mutex: corruption events are rare
// (per §3, a handful of links per data center per day), so a single
// serialized decision path is both simple and far faster than needed.
//
// The controller is hardened against the network it manages (§5–§6):
// requests carrying an agent identity and sequence number are answered
// idempotently (replayed requests get the cached reply, so a retried
// Activate does not re-run the optimizer), and the liveness sweep marks
// agents that have gone silent as stale so the report→disable→ticket loop
// degrades gracefully instead of wedging on a vanished agent.
type Controller struct {
	engine *core.Engine
	clock  simclock.WallClock

	mu         sync.Mutex // guards engine, agents, staleTotal
	agents     map[string]*agentState
	staleTotal int

	lnMu   sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logger receives connection-level errors; nil silences them.
	Logger *log.Logger
}

// NewController starts a controller for engine on addr (e.g.
// "127.0.0.1:0"), reading liveness timestamps from the system clock.
func NewController(addr string, engine *core.Engine) (*Controller, error) {
	return NewControllerClock(addr, engine, simclock.Real{})
}

// NewControllerClock is NewController with an injected wall clock, for
// harnesses that drive liveness against virtual time.
func NewControllerClock(addr string, engine *core.Engine, clock simclock.WallClock) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListener(ln, engine, clock)
}

// ServeListener starts a controller on an existing listener — the
// injection point chaos harnesses use to wrap the accept path in fault
// injection. The controller owns ln and closes it on Close.
func ServeListener(ln net.Listener, engine *core.Engine, clock simclock.WallClock) (*Controller, error) {
	if clock == nil {
		clock = simclock.Real{}
	}
	c := &Controller{
		engine: engine,
		clock:  clock,
		agents: make(map[string]*agentState),
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr reports the controller's bound address.
func (c *Controller) Addr() net.Addr { return c.ln.Addr() }

// Close stops the controller and tears down open connections.
func (c *Controller) Close() error {
	c.lnMu.Lock()
	if c.closed {
		c.lnMu.Unlock()
		return nil
	}
	c.closed = true
	err := c.ln.Close()
	for conn := range c.conns {
		_ = conn.Close() // best-effort teardown; the listener error is the one reported
	}
	c.lnMu.Unlock()
	c.wg.Wait()
	return err
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		// net.Listener has no deadline API; Close unblocks Accept, which is
		// the only way this loop ever needs to stop.
		//lint:allow ctxdeadline Accept is unblocked by ln.Close and Listener has no Set*Deadline
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.lnMu.Lock()
		if c.closed {
			c.lnMu.Unlock()
			_ = conn.Close() // racing shutdown; nothing to report the error to
			return
		}
		c.conns[conn] = struct{}{}
		c.lnMu.Unlock()
		c.wg.Add(1)
		go c.serveConn(conn)
	}
}

func (c *Controller) serveConn(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		_ = conn.Close() // connection is done either way; error carries no signal here
		c.lnMu.Lock()
		delete(c.conns, conn)
		c.lnMu.Unlock()
	}()
	for {
		if err := conn.SetReadDeadline(c.clock.Now().Add(connIdleTimeout)); err != nil {
			return
		}
		msg, err := ReadMsg(conn)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && c.Logger != nil {
				c.Logger.Printf("ctlplane: connection %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		reply := c.handle(msg)
		if err := conn.SetWriteDeadline(c.clock.Now().Add(connWriteTimeout)); err != nil {
			return
		}
		if err := WriteMsg(conn, reply); err != nil {
			if c.Logger != nil {
				c.Logger.Printf("ctlplane: write to %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

// SweepStale removes agents not heard from within maxSilence and returns
// their names in sorted order. When any agent went stale the engine is
// re-optimized: a silent agent's pending activations are never coming, so
// the sweep keeps the mitigation loop making progress (the optimizer can
// still disable further links as repairs elsewhere create headroom)
// instead of wedging on the missing report→disable→ticket turn.
func (c *Controller) SweepStale(maxSilence time.Duration) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	var stale []string
	for name, st := range c.agents {
		if now.Sub(st.lastSeen) > maxSilence {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		delete(c.agents, name)
	}
	c.staleTotal += len(stale)
	if len(stale) > 0 {
		_, _ = c.engine.Reoptimize()
	}
	return stale
}

// AgentStats reports the number of live tracked agents and the cumulative
// count of agents marked stale by sweeps.
func (c *Controller) AgentStats() (live, stale int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agents), c.staleTotal
}

func (c *Controller) handle(msg *Envelope) *Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()

	var st *agentState
	if msg.Agent != "" {
		st = c.agents[msg.Agent]
		if st == nil {
			st = &agentState{replies: make(map[uint64]*Envelope)}
			c.agents[msg.Agent] = st
		}
		st.lastSeen = c.clock.Now()
		if msg.Seq != 0 {
			if cached, ok := st.replies[msg.Seq]; ok {
				return cached // idempotent replay: do not re-run side effects
			}
		}
	}

	reply := c.dispatch(msg)
	reply.Seq = msg.Seq
	if st != nil && msg.Seq != 0 {
		st.replies[msg.Seq] = reply
		st.order = append(st.order, msg.Seq)
		if len(st.order) > maxCachedReplies {
			delete(st.replies, st.order[0])
			st.order = st.order[1:]
		}
	}
	return reply
}

// dispatch runs one decoded request against the engine; c.mu is held.
func (c *Controller) dispatch(msg *Envelope) *Envelope {
	net := c.engine.Network()
	switch msg.Type {
	case TypeReport:
		if msg.Report == nil {
			return errEnvelope("report message without report body")
		}
		r := msg.Report
		if int(r.Link) < 0 || int(r.Link) >= net.Topology().NumLinks() {
			return errEnvelope("unknown link")
		}
		d := c.engine.ReportCorruption(r.Link, r.Rate)
		return &Envelope{Type: TypeDecision, Decision: &Decision{
			Link:     d.Link,
			Disabled: d.Disabled,
			Reason:   d.Reason,
		}}
	case TypeActivate:
		if msg.Activate == nil {
			return errEnvelope("activate message without body")
		}
		a := msg.Activate
		if int(a.Link) < 0 || int(a.Link) >= net.Topology().NumLinks() {
			return errEnvelope("unknown link")
		}
		disabled := c.engine.LinkRepaired(a.Link)
		return &Envelope{Type: TypeActivateResult, ActivateResult: &ActivateResult{Disabled: disabled}}
	case TypeStatus:
		return &Envelope{Type: TypeStatusResult, Status: &StatusResult{
			Links:            net.Topology().NumLinks(),
			Disabled:         net.NumDisabled(),
			ActiveCorrupting: net.NumActiveCorrupting(c.engine.Threshold()),
			WorstToRFraction: net.WorstToRFraction(),
			TotalPenalty:     net.TotalPenalty(core.LinearPenalty),
			Agents:           len(c.agents),
			StaleAgents:      c.staleTotal,
		}}
	default:
		return errEnvelope("unknown message type " + string(msg.Type))
	}
}

func errEnvelope(msg string) *Envelope {
	return &Envelope{Type: TypeError, Error: msg}
}
