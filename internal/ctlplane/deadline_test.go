package ctlplane

import (
	"net"
	"testing"
	"time"

	"corropt/internal/simclock"
)

// TestIdleConnDeadlineClosesDeadPeer pins the serveConn idle deadline: a
// peer that connects and then goes silent past connIdleTimeout — the
// silent-agent failure mode, a TCP session whose other end vanished without
// a FIN — must have its connection torn down by the controller instead of
// pinning a serveConn goroutine forever. The test can't wait five real
// minutes, so it drives the deadline through the injected clock: anchoring
// the virtual epoch connIdleTimeout+1m in the past makes the armed deadline
// (epoch + connIdleTimeout) already expired in kernel time, which is
// exactly the state a silent peer reaches after five idle minutes.
func TestIdleConnDeadlineClosesDeadPeer(t *testing.T) {
	engine := testEngine(t)
	vc := simclock.Virtual{Clock: simclock.New(), Epoch: time.Now().Add(-connIdleTimeout - time.Minute)}
	ctl, err := NewControllerClock("127.0.0.1:0", engine, vc)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	conn, err := net.Dial("tcp", ctl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The server must close the idle connection; without the read deadline
	// this read would sit for the full 5s bound and fail the test.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read from idle-deadlined connection succeeded; server never closed it")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server left idle connection open past its deadline (client read timed out after %v)", time.Since(start))
	}

	// Control: the same controller shape with a properly anchored clock
	// serves a round trip — the deadline arms liveness, not a request budget.
	vcLive := simclock.Virtual{Clock: simclock.New(), Epoch: time.Now()}
	live, err := NewControllerClock("127.0.0.1:0", engine, vcLive)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	cli, err := Dial(live.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Status(); err != nil {
		t.Fatalf("status on anchored clock: %v", err)
	}
}
