// Package detector implements the monitoring component of Figure 13: it
// periodically reads each link's packet and error counters (from a
// telemetry collector directly, or over the snmplite wire), derives
// per-interval corruption loss rates from counter deltas, applies the
// detection threshold with hysteresis, and reports state transitions —
// "link started corrupting", "link recovered" — to whoever mitigates.
//
// The counter-delta arithmetic deliberately mirrors what production SNMP
// pollers do: rates come from differences of monotonically increasing
// counters between polls, never from instantaneous gauges, so a counter
// that does not move contributes a rate of zero rather than NaN.
package detector

import (
	"fmt"

	"corropt/internal/topology"
)

// Reading is one poll of one link's cumulative counters, per direction.
type Reading struct {
	Link    topology.LinkID
	Packets [2]uint64
	Errors  [2]uint64
}

// Source supplies cumulative counters for a set of links. Implementations
// wrap a telemetry.Collector (in-process) or an snmplite client (remote).
type Source interface {
	// Read returns the current cumulative counters of the given link.
	Read(l topology.LinkID) (Reading, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(l topology.LinkID) (Reading, error)

// Read implements Source.
func (f SourceFunc) Read(l topology.LinkID) (Reading, error) { return f(l) }

// Event is a detection-state transition.
type Event struct {
	Link topology.LinkID
	// Corrupting is true when the link crossed above the detection
	// threshold; false when it recovered below the clear threshold.
	Corrupting bool
	// Rate is the worst-direction corruption rate over the last interval.
	Rate float64
}

// Config parameterizes a Detector.
type Config struct {
	// Threshold is the corruption rate that raises a corrupting event;
	// default 1e-6 (the operators' alarm level, §2).
	Threshold float64
	// ClearFactor scales the threshold for the recovery transition
	// (hysteresis): a link clears only when its rate falls below
	// Threshold×ClearFactor. Default 0.1, so a link flapping around the
	// threshold does not generate an event storm.
	ClearFactor float64
	// MinPackets is the minimum per-direction packet delta for a rate to
	// be meaningful; intervals with less traffic are skipped (a drained
	// or idle link tells us nothing). Default 1000.
	MinPackets uint64
}

func (c *Config) fillDefaults() {
	if c.Threshold == 0 {
		c.Threshold = 1e-6
	}
	if c.ClearFactor == 0 {
		c.ClearFactor = 0.1
	}
	if c.MinPackets == 0 {
		c.MinPackets = 1000
	}
}

// Detector tracks per-link detection state across polls.
type Detector struct {
	cfg    Config
	source Source
	links  []topology.LinkID
	last   map[topology.LinkID]Reading
	state  map[topology.LinkID]bool // true = currently flagged corrupting
}

// New returns a Detector polling the given links from source.
func New(source Source, links []topology.LinkID, cfg Config) (*Detector, error) {
	if source == nil {
		return nil, fmt.Errorf("detector: nil source")
	}
	cfg.fillDefaults()
	return &Detector{
		cfg:    cfg,
		source: source,
		links:  append([]topology.LinkID(nil), links...),
		last:   make(map[topology.LinkID]Reading, len(links)),
		state:  make(map[topology.LinkID]bool),
	}, nil
}

// Poll reads every link once and returns the state-transition events since
// the previous poll. The first poll only establishes baselines and returns
// no events.
func (d *Detector) Poll() ([]Event, error) {
	var events []Event
	for _, l := range d.links {
		cur, err := d.source.Read(l)
		if err != nil {
			return events, fmt.Errorf("detector: link %d: %w", l, err)
		}
		prev, seen := d.last[l]
		d.last[l] = cur
		if !seen {
			continue
		}
		rate, ok := worstRate(prev, cur, d.cfg.MinPackets)
		if !ok {
			continue
		}
		flagged := d.state[l]
		switch {
		case !flagged && rate >= d.cfg.Threshold:
			d.state[l] = true
			events = append(events, Event{Link: l, Corrupting: true, Rate: rate})
		case flagged && rate < d.cfg.Threshold*d.cfg.ClearFactor:
			d.state[l] = false
			events = append(events, Event{Link: l, Corrupting: false, Rate: rate})
		}
	}
	return events, nil
}

// Flagged reports whether the detector currently considers l corrupting.
func (d *Detector) Flagged(l topology.LinkID) bool { return d.state[l] }

// worstRate derives the worst-direction loss rate from two consecutive
// readings. Counter resets (cur < prev, e.g. a switch reboot) discard the
// interval rather than producing a bogus huge delta.
func worstRate(prev, cur Reading, minPackets uint64) (float64, bool) {
	worst := 0.0
	any := false
	for dir := 0; dir < 2; dir++ {
		if cur.Packets[dir] < prev.Packets[dir] || cur.Errors[dir] < prev.Errors[dir] {
			continue // counter reset
		}
		dp := cur.Packets[dir] - prev.Packets[dir]
		de := cur.Errors[dir] - prev.Errors[dir]
		if dp < minPackets {
			continue
		}
		any = true
		if r := float64(de) / float64(dp); r > worst {
			worst = r
		}
	}
	return worst, any
}
