package detector

import (
	"time"

	"corropt/internal/snmplite"
	"corropt/internal/telemetry"
	"corropt/internal/topology"
)

// CollectorSource adapts an in-process telemetry.Collector.
func CollectorSource(c *telemetry.Collector) Source {
	return SourceFunc(func(l topology.LinkID) (Reading, error) {
		ctr := c.Counters(l)
		return Reading{
			Link:    l,
			Packets: ctr.Packets,
			Errors:  ctr.Errors,
		}, nil
	})
}

// SNMPSource polls counters over the snmplite wire protocol, the way the
// production monitoring system reaches switches it does not share a
// process with.
func SNMPSource(addr string, timeout time.Duration, retries int) (Source, func() error, error) {
	cli, err := snmplite.Dial(addr, timeout, retries)
	if err != nil {
		return nil, nil, err
	}
	return SNMPSourceClient(cli), cli.Close, nil
}

// SNMPSourceClient adapts an already-dialed snmplite client — the way
// chaos harnesses and hardened deployments inject their own transport
// (custom dialers, backoff policies, virtual clocks) into the detector's
// polling path. The caller keeps ownership of cli and closes it.
func SNMPSourceClient(cli *snmplite.Client) Source {
	return SourceFunc(func(l topology.LinkID) (Reading, error) {
		values, err := cli.Get([]snmplite.Query{
			{Link: uint32(l), Counter: snmplite.CounterPacketsUp},
			{Link: uint32(l), Counter: snmplite.CounterPacketsDown},
			{Link: uint32(l), Counter: snmplite.CounterErrorsUp},
			{Link: uint32(l), Counter: snmplite.CounterErrorsDown},
		})
		if err != nil {
			return Reading{}, err
		}
		r := Reading{Link: l}
		for _, v := range values {
			switch v.Counter {
			case snmplite.CounterPacketsUp:
				r.Packets[0] = v.Value
			case snmplite.CounterPacketsDown:
				r.Packets[1] = v.Value
			case snmplite.CounterErrorsUp:
				r.Errors[0] = v.Value
			case snmplite.CounterErrorsDown:
				r.Errors[1] = v.Value
			}
		}
		return r, nil
	})
}
