package detector

import (
	"errors"
	"testing"
	"time"

	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/snmplite"
	"corropt/internal/telemetry"
	"corropt/internal/topology"
)

// fakeSource serves scripted readings.
type fakeSource struct {
	readings map[topology.LinkID]Reading
	err      error
}

func (f *fakeSource) Read(l topology.LinkID) (Reading, error) {
	if f.err != nil {
		return Reading{}, f.err
	}
	return f.readings[l], nil
}

func (f *fakeSource) set(l topology.LinkID, packets, errs uint64) {
	r := f.readings[l]
	r.Link = l
	r.Packets[0] += packets
	r.Errors[0] += errs
	f.readings[l] = r
}

func TestDetectorTransitions(t *testing.T) {
	src := &fakeSource{readings: make(map[topology.LinkID]Reading)}
	d, err := New(src, []topology.LinkID{1}, Config{Threshold: 1e-3})
	if err != nil {
		t.Fatal(err)
	}

	// First poll: baseline only.
	src.set(1, 1e6, 0)
	ev, err := d.Poll()
	if err != nil || len(ev) != 0 {
		t.Fatalf("baseline poll: %v %v", ev, err)
	}

	// Healthy interval: no event.
	src.set(1, 1e6, 10) // rate 1e-5 < 1e-3
	if ev, _ = d.Poll(); len(ev) != 0 {
		t.Fatalf("healthy interval raised %v", ev)
	}

	// Corruption starts.
	src.set(1, 1e6, 5000) // rate 5e-3
	ev, _ = d.Poll()
	if len(ev) != 1 || !ev[0].Corrupting || ev[0].Link != 1 {
		t.Fatalf("corruption not detected: %v", ev)
	}
	if ev[0].Rate < 4e-3 || ev[0].Rate > 6e-3 {
		t.Fatalf("rate = %v", ev[0].Rate)
	}
	if !d.Flagged(1) {
		t.Fatal("state not flagged")
	}

	// Still corrupting: no duplicate event.
	src.set(1, 1e6, 5000)
	if ev, _ = d.Poll(); len(ev) != 0 {
		t.Fatalf("duplicate event: %v", ev)
	}

	// Hysteresis: a rate just below the threshold does NOT clear.
	src.set(1, 1e6, 500) // 5e-4, above 1e-3*0.1
	if ev, _ = d.Poll(); len(ev) != 0 {
		t.Fatalf("flapping link cleared prematurely: %v", ev)
	}
	if !d.Flagged(1) {
		t.Fatal("hysteresis lost the flag")
	}

	// True recovery.
	src.set(1, 1e6, 0)
	ev, _ = d.Poll()
	if len(ev) != 1 || ev[0].Corrupting {
		t.Fatalf("recovery not reported: %v", ev)
	}
	if d.Flagged(1) {
		t.Fatal("flag not cleared")
	}
}

func TestDetectorCounterReset(t *testing.T) {
	src := &fakeSource{readings: make(map[topology.LinkID]Reading)}
	d, err := New(src, []topology.LinkID{1}, Config{Threshold: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	src.set(1, 1e6, 100)
	d.Poll()
	// Switch reboot: counters go backwards. No bogus event.
	src.readings[1] = Reading{Link: 1, Packets: [2]uint64{500, 0}, Errors: [2]uint64{5, 0}}
	if ev, _ := d.Poll(); len(ev) != 0 {
		t.Fatalf("counter reset produced events: %v", ev)
	}
	// Normal operation resumes from the new baseline.
	src.set(1, 1e6, 5000)
	if ev, _ := d.Poll(); len(ev) != 1 || !ev[0].Corrupting {
		t.Fatalf("post-reset detection broken: %v", ev)
	}
}

func TestDetectorLowTrafficSkipped(t *testing.T) {
	src := &fakeSource{readings: make(map[topology.LinkID]Reading)}
	d, err := New(src, []topology.LinkID{1}, Config{Threshold: 1e-3, MinPackets: 1000})
	if err != nil {
		t.Fatal(err)
	}
	src.set(1, 100, 0)
	d.Poll()
	// 50 packets, 10 errors: 20% — but the sample is too thin to trust.
	src.set(1, 50, 10)
	if ev, _ := d.Poll(); len(ev) != 0 {
		t.Fatalf("thin sample raised events: %v", ev)
	}
}

func TestDetectorSourceError(t *testing.T) {
	src := &fakeSource{readings: make(map[topology.LinkID]Reading), err: errors.New("boom")}
	d, err := New(src, []topology.LinkID{1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Poll(); err == nil {
		t.Fatal("source error swallowed")
	}
	if _, err := New(nil, nil, Config{}); err == nil {
		t.Fatal("nil source accepted")
	}
}

// TestDetectorOverSNMP runs the detection pipeline over a real UDP socket:
// ground truth → telemetry → snmplite server → SNMPSource → detector.
func TestDetectorOverSNMP(t *testing.T) {
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 1, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2, SpineUplinksPerAgg: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tech := optics.Technology{Name: "t", NominalTx: 0, TxThreshold: -4, RxThreshold: -10, PathLoss: 3}
	st := faults.NewState(topo, tech)
	col := telemetry.NewCollector(st, nil, nil, telemetry.Config{Seed: 3})
	srv, err := snmplite.NewServer("127.0.0.1:0", snmplite.CollectorProvider(col, topo.NumLinks()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	src, closeSrc, err := SNMPSource(srv.Addr().String(), time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSrc()

	var links []topology.LinkID
	for l := 0; l < topo.NumLinks(); l++ {
		links = append(links, topology.LinkID(l))
	}
	d, err := New(src, links, Config{Threshold: 1e-4})
	if err != nil {
		t.Fatal(err)
	}

	col.Poll(0)
	if _, err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	// Healthy interval.
	col.Poll(15 * time.Minute)
	if ev, err := d.Poll(); err != nil || len(ev) != 0 {
		t.Fatalf("healthy: %v %v", ev, err)
	}
	// A fault strikes; the next counter interval shows it.
	st.Apply(&faults.Fault{ID: 1, Cause: faults.BadTransceiver,
		Effects: []faults.LinkEffect{{Link: 2, DirectRate: [2]float64{0.01, 0}}}})
	col.Poll(30 * time.Minute)
	ev, err := d.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Link != 2 || !ev[0].Corrupting {
		t.Fatalf("events over SNMP: %v", ev)
	}
	// Repair; the detector clears.
	st.Clear(1)
	col.Poll(45 * time.Minute)
	ev, err = d.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Corrupting {
		t.Fatalf("recovery over SNMP: %v", ev)
	}
}
