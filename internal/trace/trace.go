// Package trace reads and writes fault traces as JSON Lines, so generated
// corruption workloads can be stored, shared, and replayed bit-identically
// — the role the production link-corruption traces from Oct–Dec 2016 play
// in the paper's evaluation (§7.1).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/topology"
)

// wireEffect mirrors faults.LinkEffect with stable JSON field names.
type wireEffect struct {
	Link     int32      `json:"link"`
	LossFrom [2]float64 `json:"loss_from,omitempty"`
	TxDecay  [2]float64 `json:"tx_decay,omitempty"`
	Rate     [2]float64 `json:"rate,omitempty"`
}

// wireFault is one trace line.
type wireFault struct {
	ID         int64        `json:"id"`
	Cause      string       `json:"cause"`
	StartNanos int64        `json:"start_ns"`
	Reseatable bool         `json:"reseatable,omitempty"`
	Effects    []wireEffect `json:"effects"`
}

var causeNames = map[string]faults.RootCause{
	faults.ConnectorContamination.String(): faults.ConnectorContamination,
	faults.DamagedFiber.String():           faults.DamagedFiber,
	faults.DecayingTransmitter.String():    faults.DecayingTransmitter,
	faults.BadTransceiver.String():         faults.BadTransceiver,
	faults.SharedComponent.String():        faults.SharedComponent,
}

// Write serializes the trace, one fault per line.
func Write(w io.Writer, trace []*faults.Fault) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, f := range trace {
		wf := wireFault{
			ID:         int64(f.ID),
			Cause:      f.Cause.String(),
			StartNanos: int64(f.Start),
			Reseatable: f.Reseatable,
		}
		for _, e := range f.Effects {
			wf.Effects = append(wf.Effects, wireEffect{
				Link:     int32(e.Link),
				LossFrom: [2]float64{float64(e.ExtraLossFrom[0]), float64(e.ExtraLossFrom[1])},
				TxDecay:  [2]float64{float64(e.TxDecay[0]), float64(e.TxDecay[1])},
				Rate:     e.DirectRate,
			})
		}
		if err := enc.Encode(wf); err != nil {
			return fmt.Errorf("trace: encode fault %d: %w", f.ID, err)
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write. Faults are returned in file order;
// Write preserves the generator's time order, so replaying needs no sort.
func Read(r io.Reader) ([]*faults.Fault, error) {
	var out []*faults.Fault
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var wf wireFault
		if err := json.Unmarshal(line, &wf); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		cause, ok := causeNames[wf.Cause]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown cause %q", lineNo, wf.Cause)
		}
		if len(wf.Effects) == 0 {
			return nil, fmt.Errorf("trace: line %d: fault without effects", lineNo)
		}
		f := &faults.Fault{
			ID:         faults.ID(wf.ID),
			Cause:      cause,
			Start:      time.Duration(wf.StartNanos),
			Reseatable: wf.Reseatable,
		}
		for _, e := range wf.Effects {
			if e.Link < 0 {
				return nil, fmt.Errorf("trace: line %d: negative link id", lineNo)
			}
			f.Effects = append(f.Effects, faults.LinkEffect{
				Link:          topology.LinkID(e.Link),
				ExtraLossFrom: [2]optics.DB{optics.DB(e.LossFrom[0]), optics.DB(e.LossFrom[1])},
				TxDecay:       [2]optics.DB{optics.DB(e.TxDecay[0]), optics.DB(e.TxDecay[1])},
				DirectRate:    e.Rate,
			})
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}
