package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

func genTrace(t *testing.T) []*faults.Fault {
	t.Helper()
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 2, ToRsPerPod: 4, AggsPerPod: 4, Spines: 8, SpineUplinksPerAgg: 4, BreakoutSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tech := optics.Technology{Name: "t", NominalTx: 0, TxThreshold: -4, RxThreshold: -10, PathLoss: 3}
	inj, err := faults.NewInjector(topo, tech, faults.InjectorConfig{FaultsPerLinkPerDay: 0.02}, rngutil.New(9).Split("x"))
	if err != nil {
		t.Fatal(err)
	}
	return inj.Generate(30 * 24 * time.Hour)
}

func TestRoundTrip(t *testing.T) {
	in := genTrace(t)
	if len(in) < 20 {
		t.Fatalf("trace too small: %d", len(in))
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("length changed: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(in[i], out[i]) {
			t.Fatalf("fault %d changed:\n in: %+v\nout: %+v", i, in[i], out[i])
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"id":1,"cause":"alien-interference","start_ns":0,"effects":[{"link":0}]}`,
		`{"id":1,"cause":"damaged-fiber","start_ns":0,"effects":[]}`,
		`{"id":1,"cause":"damaged-fiber","start_ns":0,"effects":[{"link":-3}]}`,
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := genTrace(t)[:3]
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	padded := "\n" + strings.ReplaceAll(buf.String(), "\n", "\n\n")
	out, err := Read(strings.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d faults", len(out))
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil || out != nil {
		t.Fatalf("empty round trip: %v %v", out, err)
	}
}
