package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures arbitrary trace files never panic the reader and that
// whatever parses re-serializes loss-free.
func FuzzRead(f *testing.F) {
	f.Add(`{"id":1,"cause":"damaged-fiber","start_ns":0,"effects":[{"link":3,"loss_from":[11,11]}]}`)
	f.Add(`{"id":2,"cause":"bad-transceiver","start_ns":5,"reseatable":true,"effects":[{"link":0,"rate":[0.01,0]}]}`)
	f.Add(`{not json`)
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		faults, err := Read(strings.NewReader(line))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, faults); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(again) != len(faults) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(faults))
		}
	})
}
