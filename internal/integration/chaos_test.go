// Chaos matrix: the deployment-path protocols (ctlplane over TCP, snmplite
// over UDP) are replayed through deterministic netchaos fault injection —
// drops, duplicates, reorders, bit-flips, and resets on both directions —
// and must converge to the exact same application-level transcript as the
// clean run. The whole matrix is additionally pinned byte-identical across
// runner worker counts, the same contract the experiment reports carry
// (DESIGN.md §7.2, §7.3).
package integration_test

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"corropt/internal/backoff"
	"corropt/internal/core"
	"corropt/internal/ctlplane"
	"corropt/internal/netchaos"
	"corropt/internal/rngutil"
	"corropt/internal/runner"
	"corropt/internal/snmplite"
	"corropt/internal/topology"
)

// chaosProfiles are the fault mixes of the matrix. Every profile bounds its
// damage with MaxFaults so a client whose retry budget exceeds the fault
// budget is guaranteed to converge.
var chaosProfiles = []struct {
	name string
	cfg  netchaos.Config
}{
	{"drop", netchaos.Config{Drop: 0.3, MaxFaults: 4}},
	{"dup", netchaos.Config{Dup: 0.3, MaxFaults: 4}},
	{"reorder", netchaos.Config{Reorder: 0.3, MaxFaults: 4}},
	{"corrupt", netchaos.Config{Corrupt: 0.3, MaxFaults: 4}},
	{"reset", netchaos.Config{Reset: 0.3, MaxFaults: 4}},
}

var chaosSeeds = []uint64{11, 23, 47}

// retryAttempts comfortably exceeds the worst case of both injectors
// spending their whole fault budget on one exchange.
const retryAttempts = 16

// runCtlScenario replays a fixed capacity-pressure workload against a live
// controller, with the client's dialer and the server's listener wrapped in
// fault injection, and returns the decision transcript.
func runCtlScenario(injClient, injServer *netchaos.Injector) (string, error) {
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 1, ToRsPerPod: 2, AggsPerPod: 4, Spines: 4, SpineUplinksPerAgg: 1,
	})
	if err != nil {
		return "", err
	}
	cnet, err := core.NewNetwork(topo, 0.5)
	if err != nil {
		return "", err
	}
	engine := core.NewEngine(cnet, core.EngineConfig{})

	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	ctl, err := ctlplane.ServeListener(injServer.Listener(rawLn), engine, nil)
	if err != nil {
		return "", err
	}
	defer ctl.Close()

	agent, err := ctlplane.DialConfig(ctl.Addr().String(), ctlplane.ClientConfig{
		WriteTimeout: 200 * time.Millisecond,
		ReadTimeout:  200 * time.Millisecond,
		Dial:         ctlplane.DialFunc(injClient.Dialer(nil)),
		Retry:        backoff.Policy{MaxAttempts: retryAttempts},
		AgentID:      "chaos-agent",
		Sleep:        func(time.Duration) {},
	})
	if err != nil {
		return "", err
	}
	defer agent.Close()

	var b strings.Builder
	tor := topo.ToRs()[0]
	up := topo.Switch(tor).Uplinks
	rates := []float64{1e-2, 1e-3, 1e-4, 1e-5}
	for i, l := range up {
		d, err := agent.Report(l, rates[i])
		if err != nil {
			return "", fmt.Errorf("report %d: %w", l, err)
		}
		fmt.Fprintf(&b, "report link=%d rate=%.0e disabled=%v\n", l, rates[i], d.Disabled)
	}
	newly, err := agent.Activate(up[0])
	if err != nil {
		return "", fmt.Errorf("activate: %w", err)
	}
	fmt.Fprintf(&b, "activate link=%d newly=%v\n", up[0], newly)
	st, err := agent.Status()
	if err != nil {
		return "", fmt.Errorf("status: %w", err)
	}
	fmt.Fprintf(&b, "status disabled=%d corrupting=%d worst=%.3f\n",
		st.Disabled, st.ActiveCorrupting, st.WorstToRFraction)
	return b.String(), nil
}

// runSnmpScenario polls a deterministic provider over real UDP, with the
// client's dialer and the server's socket wrapped in fault injection, and
// returns the reading transcript.
func runSnmpScenario(injClient, injServer *netchaos.Injector) (string, error) {
	provider := snmplite.ProviderFunc(func(link uint32, counter snmplite.CounterID) (uint64, error) {
		return uint64(link)*1000 + uint64(counter)*7, nil
	})
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv, err := snmplite.NewServerConn(injServer.PacketConn(conn), provider)
	if err != nil {
		_ = conn.Close() // constructor failed; nothing else owns the socket
		return "", err
	}
	defer srv.Close()

	cli, err := snmplite.DialConfig(srv.Addr().String(), snmplite.ClientConfig{
		Timeout: 200 * time.Millisecond,
		Retry:   backoff.Policy{MaxAttempts: retryAttempts},
		Dial:    snmplite.DialFunc(injClient.DatagramDialer(nil)),
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		return "", err
	}
	defer cli.Close()

	var b strings.Builder
	for link := topology.LinkID(0); link < 6; link++ {
		r, err := cli.PollLink(link)
		if err != nil {
			return "", fmt.Errorf("poll link %d: %w", link, err)
		}
		fmt.Fprintf(&b, "link=%d packets=%v errors=%v drops=%v\n", r.Link, r.Packets, r.Errors, r.Drops)
	}
	return b.String(), nil
}

type chaosCell struct {
	proto   string // "ctlplane" or "snmplite"
	profile string
	seed    uint64
	cfg     netchaos.Config
}

func chaosCells() []chaosCell {
	var cells []chaosCell
	for _, proto := range []string{"ctlplane", "snmplite"} {
		for _, p := range chaosProfiles {
			for _, seed := range chaosSeeds {
				cells = append(cells, chaosCell{proto: proto, profile: p.name, seed: seed, cfg: p.cfg})
			}
		}
	}
	return cells
}

// runCell executes one matrix cell: both directions are faulted, each from
// its own substream of the cell's seed.
func runCell(c chaosCell) (string, error) {
	root := rngutil.New(c.seed).Split("chaos-" + c.proto + "-" + c.profile)
	injClient := netchaos.New(root.Split("client"), nil, c.cfg)
	injServer := netchaos.New(root.Split("server"), nil, c.cfg)
	if c.proto == "ctlplane" {
		return runCtlScenario(injClient, injServer)
	}
	return runSnmpScenario(injClient, injServer)
}

// cleanTranscripts runs both scenarios through zero-config (transparent)
// injectors: the baseline every chaos cell must converge to.
func cleanTranscripts(t *testing.T) (ctl, snmp string) {
	t.Helper()
	cleanInj := func() *netchaos.Injector { return netchaos.New(rngutil.New(0), nil, netchaos.Config{}) }
	ctl, err := runCtlScenario(cleanInj(), cleanInj())
	if err != nil {
		t.Fatalf("clean ctlplane run: %v", err)
	}
	snmp, err = runSnmpScenario(cleanInj(), cleanInj())
	if err != nil {
		t.Fatalf("clean snmplite run: %v", err)
	}
	return ctl, snmp
}

// TestChaosMatrixConvergesToCleanRun is the tentpole assertion: for every
// fault profile, protocol, and seed, the hardened deployment path reaches
// the same application-level decisions as a fault-free run.
func TestChaosMatrixConvergesToCleanRun(t *testing.T) {
	cleanCtl, cleanSnmp := cleanTranscripts(t)
	for _, cell := range chaosCells() {
		cell := cell
		name := fmt.Sprintf("%s/%s/seed%d", cell.proto, cell.profile, cell.seed)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			got, err := runCell(cell)
			if err != nil {
				t.Fatalf("chaos run failed (retry budget %d vs 2×%d faults): %v",
					retryAttempts, cell.cfg.MaxFaults, err)
			}
			want := cleanCtl
			if cell.proto == "snmplite" {
				want = cleanSnmp
			}
			if got != want {
				t.Errorf("chaos transcript diverged from clean run:\n--- clean ---\n%s--- chaos ---\n%s", want, got)
			}
		})
	}
}

// TestChaosMatrixDeterministicAcrossWorkers replays the full matrix under
// different runner worker counts and requires the concatenated transcripts
// to be byte-identical — the same determinism contract the experiment
// reports carry.
func TestChaosMatrixDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix replay is seconds-long; skipped in -short")
	}
	cells := chaosCells()
	runMatrix := func(workers int) string {
		t.Helper()
		transcripts, err := runner.Map(workers, len(cells), func(i int) (string, error) {
			return runCell(cells[i])
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		for i, tr := range transcripts {
			fmt.Fprintf(&b, "=== %s/%s/seed%d ===\n%s", cells[i].proto, cells[i].profile, cells[i].seed, tr)
		}
		return b.String()
	}
	serial := runMatrix(1)
	parallel := runMatrix(runner.Workers(0))
	if serial != parallel {
		t.Fatal("matrix transcript differs between 1 worker and the full pool")
	}
	// And replaying with the same worker count is stable, too.
	if again := runMatrix(runner.Workers(0)); again != parallel {
		t.Fatal("matrix transcript differs between identical replays")
	}
}
