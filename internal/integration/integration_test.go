// Package integration_test wires every subsystem together the way the
// deployment of Figure 13 does — fault injection → optics → telemetry →
// snmplite polling over UDP → diagnosis → control-plane decisions over TCP
// → repair → re-optimization — and checks the end-to-end behaviour that no
// single package test can see.
package integration_test

import (
	"testing"
	"time"

	"corropt/internal/core"
	"corropt/internal/ctlplane"
	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/rngutil"
	"corropt/internal/snmplite"
	"corropt/internal/telemetry"
	"corropt/internal/tickets"
	"corropt/internal/topology"
)

func tech() optics.Technology {
	return optics.Technology{Name: "40G", NominalTx: 0, TxThreshold: -4, RxThreshold: -10, PathLoss: 3}
}

// TestFullPipelineOverTheWire runs the complete loop with real sockets:
// a fault strikes, the SNMP poller observes the error counters rise, the
// symptoms are diagnosed into a recommendation, the controller disables the
// link over TCP, the technician repairs it, and the optimizer reacts to the
// activation.
func TestFullPipelineOverTheWire(t *testing.T) {
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 2, ToRsPerPod: 4, AggsPerPod: 4, Spines: 8, SpineUplinksPerAgg: 4, BreakoutSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth and telemetry.
	state := faults.NewState(topo, tech())
	net, err := core.NewNetwork(topo, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	collector := telemetry.NewCollector(state, nil, net.DisabledFunc(), telemetry.Config{Seed: 7})

	// The monitoring plane: snmplite agent + poller over UDP.
	snmpSrv, err := snmplite.NewServer("127.0.0.1:0", snmplite.CollectorProvider(collector, topo.NumLinks()))
	if err != nil {
		t.Fatal(err)
	}
	defer snmpSrv.Close()
	poller, err := snmplite.Dial(snmpSrv.Addr().String(), time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer poller.Close()

	// The control plane: CorrOpt controller + agent client over TCP.
	engine := core.NewEngine(net, core.EngineConfig{})
	ctl, err := ctlplane.NewController("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	agent, err := ctlplane.Dial(ctl.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	// 1. A contamination fault strikes a ToR uplink.
	tor := topo.ToRs()[0]
	link := topo.Switch(tor).Uplinks[0]
	fault := &faults.Fault{
		ID:    1,
		Cause: faults.ConnectorContamination,
		Effects: []faults.LinkEffect{{
			Link:          link,
			ExtraLossFrom: [2]optics.DB{optics.LowerSide: 12},
		}},
	}
	state.Apply(fault)
	collector.Poll(0)
	collector.Poll(15 * time.Minute)

	// 2. The poller reads the counters over UDP and computes the rate.
	reading, err := poller.PollLink(link)
	if err != nil {
		t.Fatal(err)
	}
	if reading.Errors[0] == 0 {
		t.Fatal("poller saw no errors on a corrupting link")
	}
	rate := float64(reading.Errors[0]) / float64(reading.Packets[0])
	if rate < 1e-6 {
		t.Fatalf("measured rate %v below detection threshold", rate)
	}
	// Optical symptoms round-trip through the wire encoding.
	if reading.RxPower[1] >= float64(tech().RxThreshold) {
		t.Fatalf("upper Rx %v should be starved", reading.RxPower[1])
	}
	if reading.TxPower[0] < float64(tech().TxThreshold) {
		t.Fatal("contamination must not dim the transmitter")
	}

	// 3. Diagnose from telemetry; the engine should say "clean fiber".
	diag, ok := core.Diagnose(collector, topo, tech(), link, 1e-7, false)
	if !ok {
		t.Fatal("no diagnostics for a corrupting link")
	}
	rec := core.Recommend(diag)
	if rec != faults.ActionCleanFiber {
		t.Fatalf("recommendation = %v, want clean-fiber", rec)
	}

	// 4. Report over TCP; the fast checker disables the link.
	d, err := agent.Report(link, rate)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Disabled {
		t.Fatalf("controller kept the link: %+v", d)
	}

	// 5. The next poll shows the link administratively down.
	collector.Poll(30 * time.Minute)
	obs, _ := collector.Latest(link)
	if !obs.Disabled {
		t.Fatal("telemetry does not reflect the disable")
	}

	// 6. Ticket + technician: the recommended action fixes the fault.
	queue := tickets.NewQueue(tickets.QueueConfig{})
	tk, done := queue.Open(link, rec, 30*time.Minute)
	techn := tickets.NewTechnician(1.0, rngutil.New(5))
	action := techn.ChooseAction(tk, fault.Cause)
	if !tickets.ActionFixesFault(action, fault) {
		t.Fatalf("action %v does not fix %v", action, fault.Cause)
	}
	state.RepairLink(link)
	if err := queue.Resolve(tk, done, action, true); err != nil {
		t.Fatal(err)
	}

	// 7. Activation over TCP; state converges to healthy.
	if _, err := agent.Activate(link); err != nil {
		t.Fatal(err)
	}
	st, err := agent.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Disabled != 0 || st.ActiveCorrupting != 0 || st.WorstToRFraction != 1 {
		t.Fatalf("final state not healthy: %+v", st)
	}
	collector.Poll(45 * time.Minute)
	obs, _ = collector.Latest(link)
	if obs.Disabled || obs.CorruptionRate[0] > 1e-7 {
		t.Fatalf("link not healthy after repair: %+v", obs)
	}
}

// TestCapacityPressureOverTheWire reproduces the capacity-blocked case end
// to end: more corrupting uplinks on one ToR than the constraint allows,
// resolved by repairs unlocking the optimizer.
func TestCapacityPressureOverTheWire(t *testing.T) {
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 1, ToRsPerPod: 2, AggsPerPod: 4, Spines: 4, SpineUplinksPerAgg: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.NewNetwork(topo, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	engine := core.NewEngine(net, core.EngineConfig{})
	ctl, err := ctlplane.NewController("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	agent, err := ctlplane.Dial(ctl.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	tor := topo.ToRs()[0]
	up := topo.Switch(tor).Uplinks // 4 uplinks, c=0.5 → at most 2 down
	rates := []float64{1e-2, 1e-3, 1e-4, 1e-5}
	disabled := 0
	for i, l := range up {
		d, err := agent.Report(l, rates[i])
		if err != nil {
			t.Fatal(err)
		}
		if d.Disabled {
			disabled++
		}
	}
	if disabled != 2 {
		t.Fatalf("disabled %d of 4 uplinks, want exactly 2 at c=0.5", disabled)
	}
	// Repair the worst; the optimizer immediately swaps in the worst
	// remaining active link.
	newly, err := agent.Activate(up[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 1 || newly[0] != up[2] {
		t.Fatalf("optimizer disabled %v, want the 1e-4 link %d", newly, up[2])
	}
	st, err := agent.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Disabled != 2 {
		t.Fatalf("disabled = %d, want 2", st.Disabled)
	}
	if st.WorstToRFraction < 0.5 {
		t.Fatalf("constraint violated over the wire: %v", st.WorstToRFraction)
	}
}
