package experiments

import (
	"fmt"
	"sort"

	"corropt/internal/core"
	"corropt/internal/faults"
	"corropt/internal/optics"
	"corropt/internal/rngutil"
	"corropt/internal/topology"
)

func init() {
	register("tab2", "root causes, symptom signatures, and recommendation accuracy", tab2)
	register("fig7912", "optical power and corruption time series per root cause, incl. the failed-repair loop", fig7912)
}

// tab2 reproduces Table 2: for each root cause, the most likely optical
// symptom signature and its contribution to the fault population, plus the
// recommendation engine's per-cause accuracy (the tandem-monitoring
// methodology of §4 that the engine distills).
func tab2(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "tab2",
		Title:  "Root causes: symptom signatures, contribution, and engine accuracy",
		Header: []string{"root_cause", "observed_share", "paper_share", "engine_accuracy", "dominant_recommendation"},
	}
	topo, err := DCN(ScaleSmall) // fault population statistics do not need a big fabric
	if err != nil {
		return nil, err
	}
	rng := rngutil.New(cfg.Seed).Split("tab2")
	st := faults.NewState(topo, DefaultTech())
	inj, err := faults.NewInjector(topo, DefaultTech(), faults.InjectorConfig{}, rng.Split("faults"))
	if err != nil {
		return nil, err
	}

	const n = 2000
	counts := make(map[faults.RootCause]int)
	hits := make(map[faults.RootCause]int)
	diagnosed := make(map[faults.RootCause]int)
	recs := make(map[faults.RootCause]map[faults.RepairAction]int)
	for i := 0; i < n; i++ {
		f := inj.NewFault(0)
		counts[f.Cause]++
		st.Apply(f)
		for _, l := range f.Links() {
			d, ok := core.DiagnoseState(st, l, 1e-7, false)
			if !ok {
				continue
			}
			rec := core.Recommend(d)
			diagnosed[f.Cause]++
			if recs[f.Cause] == nil {
				recs[f.Cause] = make(map[faults.RepairAction]int)
			}
			recs[f.Cause][rec]++
			for _, a := range f.Cause.Repairs() {
				if rec == a {
					hits[f.Cause]++
					break
				}
			}
		}
		st.Clear(f.ID)
	}

	paperShare := map[faults.RootCause]string{
		faults.ConnectorContamination: "17-57%",
		faults.DamagedFiber:           "14-48%",
		faults.DecayingTransmitter:    "<1%",
		faults.BadTransceiver:         "6-45%",
		faults.SharedComponent:        "10-26%",
	}
	for c := faults.RootCause(0); c < faults.RootCause(faults.NumCauses); c++ {
		acc := 0.0
		if diagnosed[c] > 0 {
			acc = float64(hits[c]) / float64(diagnosed[c])
		}
		// Argmax in sorted action order: with map iteration the winner of a
		// tie depended on runtime map order, making the report row
		// nondeterministic. Ties now break toward the lowest action value.
		dominant, best := faults.ActionUnknown, 0
		var actions []faults.RepairAction
		for a := range recs[c] {
			actions = append(actions, a)
		}
		sort.Slice(actions, func(i, j int) bool { return actions[i] < actions[j] })
		for _, a := range actions {
			if k := recs[c][a]; k > best {
				dominant, best = a, k
			}
		}
		r.AddRow(c.String(),
			fmt.Sprintf("%.1f%%", 100*float64(counts[c])/float64(n)),
			paperShare[c],
			fmt.Sprintf("%.0f%%", 100*acc),
			dominant.String())
	}
	r.AddNote("symptom key (Table 2): contamination H→H/L←H one-sided; damaged fiber H→L/L←H both sides low Rx; decaying transmitter L←L; transceiver & shared component all-high power")
	r.AddNote("engine accuracy is below 100%% where symptoms are ambiguous (e.g. back-reflection contamination shows healthy power), as §4 explains")
	return r, nil
}

// fig7912 reproduces the time-series examples of Figures 7, 9 and 12: a
// dirty connector dropping one side's RxPower, a damaged fiber dropping
// both, and a link going through two failed repair attempts before the
// third one (replacing the fiber) eliminates corruption.
func fig7912(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "fig7912",
		Title:  "Per-root-cause optical/corruption time series",
		Header: []string{"scenario", "day", "rx_lower_dbm", "rx_upper_dbm", "tx_lower_dbm", "tx_upper_dbm", "corruption_rate"},
	}
	topo, err := topology.NewClos(topology.ClosConfig{
		Pods: 1, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2, SpineUplinksPerAgg: 1,
	})
	if err != nil {
		return nil, err
	}
	tech := DefaultTech()

	record := func(scenario string, st *faults.State, l topology.LinkID, day int) {
		ol := st.Optics(l)
		r.AddRow(scenario, fmt.Sprintf("%d", day),
			fmtF(float64(ol.RxPower(optics.LowerSide))), fmtF(float64(ol.RxPower(optics.UpperSide))),
			fmtF(float64(ol.TxPower(optics.LowerSide))), fmtF(float64(ol.TxPower(optics.UpperSide))),
			fmtF(st.WorstRate(l)))
	}

	// Figure 7: contamination strikes on day 5 (RxPower drops on one side,
	// corruption jumps to ~1e-2); cleaning on day 27 restores both.
	{
		st := faults.NewState(topo, tech)
		l := topology.LinkID(0)
		f := &faults.Fault{ID: 1, Cause: faults.ConnectorContamination,
			Effects: []faults.LinkEffect{{Link: l, ExtraLossFrom: [2]optics.DB{optics.LowerSide: 12.33}}}}
		for day := 0; day <= 30; day++ {
			if day == 5 {
				st.Apply(f)
			}
			if day == 27 {
				st.Clear(f.ID)
			}
			record("fig7-contamination", st, l, day)
		}
	}

	// Figure 9: fiber damage on day 3 drops RxPower on both sides at
	// once; replacement on day 33 restores them.
	{
		st := faults.NewState(topo, tech)
		l := topology.LinkID(1)
		f := &faults.Fault{ID: 2, Cause: faults.DamagedFiber,
			Effects: []faults.LinkEffect{{Link: l, ExtraLossFrom: [2]optics.DB{11.0, 11.5}}}}
		for day := 0; day <= 35; day++ {
			if day == 3 {
				st.Apply(f)
			}
			if day == 33 {
				st.Clear(f.ID)
			}
			record("fig9-damaged-fiber", st, l, day)
		}
	}

	// Figure 12: a fiber fault misrepaired twice. (a) healthy, (b)
	// corruption starts, (c) disabled for repair, (d) enabled after a
	// clean+reseat that did not address the cause, (e) disabled again,
	// (f) enabled after another failed attempt, (g) disabled and finally
	// fixed by replacing the fiber.
	{
		st := faults.NewState(topo, tech)
		l := topology.LinkID(2)
		f := &faults.Fault{ID: 3, Cause: faults.DamagedFiber,
			Effects: []faults.LinkEffect{{Link: l, ExtraLossFrom: [2]optics.DB{10.5, 10.8}}}}
		disabled := false
		for day := 0; day <= 16; day++ {
			switch day {
			case 2:
				st.Apply(f) // (b)
			case 4:
				disabled = true // (c) disabled, ticket: clean fiber
			case 6:
				disabled = false // (d) clean+reseat did not help
			case 8:
				disabled = true // (e)
			case 10:
				disabled = false // (f) reseat again, still corrupting
			case 12:
				disabled = true // (g) replace fiber
			case 14:
				st.Clear(f.ID)
				disabled = false
			}
			if disabled {
				r.AddRow("fig12-failed-repairs", fmt.Sprintf("%d", day), "disabled", "disabled", "disabled", "disabled", "0")
			} else {
				record("fig12-failed-repairs", st, l, day)
			}
		}
		r.AddNote("fig12: each failed attempt adds ~2 days of downtime; the third attempt (fiber replacement) eliminates corruption, matching the ticket diary the paper shows")
	}
	return r, nil
}
