package experiments

import (
	"fmt"
	"time"

	"corropt/internal/core"
	"corropt/internal/ctlplane"
	"corropt/internal/topology"
)

func init() {
	register("fig13", "controller workflow over the TCP control plane", fig13)
}

// fig13 drives the system-component workflow of Figure 13 end to end over
// a real localhost TCP connection: corruption reports flow to the
// controller, the fast checker answers, repairs trigger the optimizer.
func fig13(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "fig13",
		Title:  "CorrOpt controller workflow (report → decide → ticket → repair → optimize)",
		Header: []string{"step", "link", "outcome"},
	}
	topo, err := DCN(ScaleSmall)
	if err != nil {
		return nil, err
	}
	net, err := core.NewNetwork(topo, 0.75)
	if err != nil {
		return nil, err
	}
	engine := core.NewEngine(net, core.EngineConfig{})
	ctl, err := ctlplane.NewController("127.0.0.1:0", engine)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	cli, err := ctlplane.Dial(ctl.Addr().String(), 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	// Script: a burst of corruption reports on one ToR's uplinks, more
	// than capacity allows, then a repair freeing the optimizer.
	tor := topo.ToRs()[0]
	uplinks := topo.Switch(tor).Uplinks
	rates := []float64{1e-2, 1e-3, 1e-4}
	var blocked []topology.LinkID
	for i, l := range uplinks[:3] {
		d, err := cli.Report(l, rates[i])
		if err != nil {
			return nil, err
		}
		outcome := "disabled"
		if !d.Disabled {
			outcome = "kept active: " + d.Reason
			blocked = append(blocked, l)
		}
		r.AddRow(fmt.Sprintf("report rate=%.0e", rates[i]), topo.Switch(topo.Link(l).Lower).Name+"→"+topo.Switch(topo.Link(l).Upper).Name, outcome)
	}
	st, err := cli.Status()
	if err != nil {
		return nil, err
	}
	r.AddRow("status", "-", fmt.Sprintf("disabled=%d active_corrupting=%d worst_tor=%.2f", st.Disabled, st.ActiveCorrupting, st.WorstToRFraction))

	// Repair the worst link; the optimizer should now disable the blocked
	// one.
	newly, err := cli.Activate(uplinks[0])
	if err != nil {
		return nil, err
	}
	r.AddRow("activate (repaired)", "first uplink", fmt.Sprintf("optimizer disabled %d more", len(newly)))
	if len(blocked) > 0 {
		found := 0
		for _, l := range newly {
			for _, b := range blocked {
				if l == b {
					found++
				}
			}
		}
		r.AddNote("capacity-blocked links: %d; picked up by the optimizer after the repair: %d (the worst goes first; the rest wait for more capacity)", len(blocked), found)
	}
	st, err = cli.Status()
	if err != nil {
		return nil, err
	}
	r.AddRow("final status", "-", fmt.Sprintf("disabled=%d active_corrupting=%d", st.Disabled, st.ActiveCorrupting))
	return r, nil
}
