package experiments

import (
	"corropt/internal/faults"
	"corropt/internal/rngutil"
	"corropt/internal/runner"
	"corropt/internal/sim"
)

func init() {
	register("sec2", "§2: without automatic link disabling, corruption losses would be ~2 orders of magnitude higher", sec2)
}

// sec2 reproduces the estimate at the end of §2: the production
// (switch-local) disabling system, despite its limitations, keeps
// corruption losses about two orders of magnitude lower than doing nothing.
// We replay the same trace with mitigation off, with the production
// switch-local system, and with CorrOpt, on a fabric whose switch radix
// gives switch-local a usable (non-zero) disable budget.
func sec2(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "sec2",
		Title:  "Integrated corruption penalty: no mitigation vs switch-local vs CorrOpt",
		Header: []string{"mitigation", "integrated_penalty", "vs_no_mitigation"},
	}
	// Radix-8 switches so the production rule can actually disable links
	// (its budget is ⌊8·(1−√0.75)⌋ = 1 per switch).
	pods := 8
	if cfg.Scale != ScaleSmall {
		pods = 30
	}
	topo, err := closWithPods(pods)
	if err != nil {
		return nil, err
	}
	horizon := evalHorizon(cfg.Scale)
	inj, err := faults.NewInjector(topo, DefaultTech(),
		faults.InjectorConfig{FaultsPerLinkPerDay: 2 * FaultRate(cfg.Scale)},
		rngutil.New(cfg.Seed).Split("sec2"))
	if err != nil {
		return nil, err
	}
	trace := inj.Generate(horizon)

	// The three mitigation levels replay the same trace independently —
	// run them concurrently and normalize against the do-nothing baseline
	// once all are in.
	policies := []sim.PolicyKind{sim.PolicyNone, sim.PolicySwitchLocal, sim.PolicyCorrOpt}
	results, err := runner.Map(cfg.Workers, len(policies), func(i int) (*sim.Result, error) {
		s, err := sim.New(topo, DefaultTech(), sim.Config{
			Policy:        policies[i],
			Capacity:      0.75,
			FixedAccuracy: 0.5, // the pre-CorrOpt repair process
			Seed:          cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return s.Run(trace, horizon)
	})
	if err != nil {
		return nil, err
	}
	base := results[0].IntegratedPenalty
	for i, p := range policies {
		res := results[i]
		ratio := "1"
		if base > 0 && p != sim.PolicyNone {
			ratio = fmtF(res.IntegratedPenalty / base)
		}
		r.AddRow(p.String(), fmtF(res.IntegratedPenalty), ratio)
	}
	r.AddNote("paper §2: 'we estimate that without it, corruption-induced losses would be two orders of magnitude higher' — the switch-local row should sit around 1e-2 of the do-nothing row")
	return r, nil
}
