package experiments

import (
	"corropt/internal/sim"
)

func init() {
	registerSharded("sec2", "§2: without automatic link disabling, corruption losses would be ~2 orders of magnitude higher", sec2)
}

// sec2 reproduces the estimate at the end of §2: the production
// (switch-local) disabling system, despite its limitations, keeps
// corruption losses about two orders of magnitude lower than doing nothing.
// We replay the same trace with mitigation off, with the production
// switch-local system, and with CorrOpt, on a fabric whose switch radix
// gives switch-local a usable (non-zero) disable budget (its budget is
// ⌊8·(1−√0.75)⌋ = 1 per radix-8 switch).
func sec2(cfg Config) (*plan, error) {
	e, err := cachedSec2Trace(cfg.Seed, cfg.Scale)
	if err != nil {
		return nil, err
	}
	// The three mitigation levels replay the same trace independently —
	// fan them out and normalize against the do-nothing baseline once all
	// are in.
	policies := []sim.PolicyKind{sim.PolicyNone, sim.PolicySwitchLocal, sim.PolicyCorrOpt}
	scenarios := make([]simScenario, len(policies))
	for i, p := range policies {
		scenarios[i] = policyScenario(e.topo, e.trace, e.horizon, p, 0.75, 0.5, cfg.Seed)
	}
	finish := func(results []*sim.Result) (*Report, error) {
		r := &Report{
			ID:     "sec2",
			Title:  "Integrated corruption penalty: no mitigation vs switch-local vs CorrOpt",
			Header: []string{"mitigation", "integrated_penalty", "vs_no_mitigation"},
		}
		base := results[0].IntegratedPenalty
		for i, p := range policies {
			res := results[i]
			ratio := "1"
			if base > 0 && p != sim.PolicyNone {
				ratio = fmtF(res.IntegratedPenalty / base)
			}
			r.AddRow(p.String(), fmtF(res.IntegratedPenalty), ratio)
		}
		r.AddNote("paper §2: 'we estimate that without it, corruption-induced losses would be two orders of magnitude higher' — the switch-local row should sit around 1e-2 of the do-nothing row")
		return r, nil
	}
	return &plan{scenarios: scenarios, finish: finish}, nil
}
